// Package cdn implements the content-distribution tier that serves
// Alpenhorn mailboxes to clients (§7: "our prototype relies on a content
// distribution network, such as Akamai").
//
// Semantically a CDN is a read-only, immutable, versioned blob store: the
// last mixnet position publishes each round's mailboxes once, and any
// number of clients fetch them. Mailbox contents are public — every client
// fetches a mailbox whether or not anything in it is theirs — so this tier
// scales and hardens with ordinary storage-systems machinery without
// touching the privacy analysis.
//
// A Store splits into two layers:
//
//   - The Store itself owns round bookkeeping: the published-round index,
//     immutability (a round cannot be republished), per-service retention,
//     canonical round checksums (see RoundChecksum), and the fetch
//     accounting the benchmark harness reads.
//
//   - A Backend persists sealed rounds. MemoryBackend keeps everything in
//     a map (the original semantics, still the default). DiskBackend
//     writes one checksummed segment file per round, crash-safe via
//     temp+fsync+rename, with an fsync'd manifest — rounds survive a
//     process kill byte-identically, and a corrupt segment is rejected
//     cleanly at reopen so replication backfill can repair it.
//
// Publication has three paths: the coordinator calls Publish/PublishOwned
// in-process when it relays the chain itself; internal/rpc exposes the
// same store as a cdn.publish surface (RegisterCDN) for chain-forward
// rounds, including the sharded variant where every shard of the last
// group streams its own mailbox-ID slice; and cdn.replicate fans sealed
// rounds from the ingest node out to replica nodes (see rpc.CDNDaemon).
package cdn

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"alpenhorn/internal/wire"
)

type roundKey struct {
	service wire.Service
	round   uint32
}

// RoundInfo identifies one sealed round held by a backend, with the
// canonical content checksum it was sealed under.
type RoundInfo struct {
	Service  wire.Service
	Round    uint32
	Checksum [32]byte
}

// Backend persists sealed rounds for a Store. A backend is driven entirely
// under the owning Store's lock and needs no internal locking of its own.
// Mailbox and Sizes are only called for rounds a previous Seal (or reopen)
// reported present.
type Backend interface {
	// Seal persists a round. Ownership of the map and every slice in it
	// transfers to the backend. Seal is called at most once per round.
	Seal(service wire.Service, round uint32, mailboxes map[uint32][]byte, checksum [32]byte) error

	// Mailbox returns one mailbox's contents, or (nil, nil) when the round
	// holds no such mailbox. The returned bytes are owned by the caller.
	Mailbox(service wire.Service, round uint32, mailbox uint32) ([]byte, error)

	// Sizes returns the byte size of every mailbox in a round, keyed by
	// mailbox ID.
	Sizes(service wire.Service, round uint32) (map[uint32]int, error)

	// Delete drops a round (retention eviction).
	Delete(service wire.Service, round uint32) error

	// Rounds enumerates the rounds the backend already holds, used to seed
	// a Store's index when reopening a durable backend.
	Rounds() []RoundInfo

	// Close releases backend resources (file handles).
	Close() error
}

// RoundChecksum is the canonical content checksum of a round: SHA-256 over
// the mailbox count followed by each (id, length, bytes) triple in
// ascending mailbox-ID order. Replication (cdn.replicate, cdn.roundinfo)
// compares these checksums to decide whether two nodes hold the same
// bytes, and DiskBackend stores the checksum in each segment header.
func RoundChecksum(mailboxes map[uint32][]byte) [32]byte {
	ids := make([]uint32, 0, len(mailboxes))
	for id := range mailboxes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(ids)))
	h.Write(buf[:])
	for _, id := range ids {
		data := mailboxes[id]
		binary.LittleEndian.PutUint32(buf[:4], id)
		binary.LittleEndian.PutUint32(buf[4:], uint32(len(data)))
		h.Write(buf[:])
		h.Write(data)
	}
	var sum [32]byte
	h.Sum(sum[:0])
	return sum
}

// Store is a mailbox CDN node's store: a published-round index over a
// pluggable Backend. The zero value is not usable; call NewStore or
// NewStoreWithBackend.
type Store struct {
	mu      sync.RWMutex
	backend Backend
	sums    map[roundKey][32]byte

	// retention limits how many rounds per service are kept; older
	// rounds are evicted. Mailbox contents are public, so retention is
	// an availability knob, not a privacy one (§5.1: clients can fetch
	// old mailboxes "for a relatively long time").
	retention int
	order     map[wire.Service][]uint32

	bytesServed atomic.Uint64
	fetches     atomic.Uint64
}

// NewStore creates a memory-backed store retaining the given number of
// rounds per service (0 means unlimited).
func NewStore(retention int) *Store {
	s, _ := NewStoreWithBackend(NewMemoryBackend(), retention)
	return s
}

// NewStoreWithBackend creates a store over an existing backend. Rounds the
// backend already holds (a reopened DiskBackend) seed the index in
// ascending round order per service; if they exceed retention, the oldest
// are evicted immediately.
func NewStoreWithBackend(backend Backend, retention int) (*Store, error) {
	s := &Store{
		backend:   backend,
		sums:      make(map[roundKey][32]byte),
		retention: retention,
		order:     make(map[wire.Service][]uint32),
	}
	recovered := backend.Rounds()
	sort.Slice(recovered, func(i, j int) bool {
		if recovered[i].Service != recovered[j].Service {
			return recovered[i].Service < recovered[j].Service
		}
		return recovered[i].Round < recovered[j].Round
	})
	for _, ri := range recovered {
		s.sums[roundKey{ri.Service, ri.Round}] = ri.Checksum
		s.order[ri.Service] = append(s.order[ri.Service], ri.Round)
	}
	for service := range s.order {
		if err := s.evictLocked(service); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// OpenDiskStore opens (or creates) a disk-backed store rooted at dir.
// Corrupt segments found at reopen are rejected cleanly — the affected
// round is simply absent, healthy rounds are unaffected — so a replica can
// backfill it from a peer.
func OpenDiskStore(dir string, retention int) (*Store, error) {
	backend, err := NewDiskBackend(dir)
	if err != nil {
		return nil, err
	}
	s, err := NewStoreWithBackend(backend, retention)
	if err != nil {
		backend.Close()
		return nil, err
	}
	return s, nil
}

// Close releases the underlying backend's resources. Fetching from a
// closed disk-backed store fails; reopen the directory instead.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.backend.Close()
}

// Publish stores all mailboxes for a round. It fails if the round was
// already published: rounds are immutable. The store copies every mailbox;
// use PublishOwned when the caller is handing over freshly built buffers.
func (s *Store) Publish(service wire.Service, round uint32, mailboxes map[uint32][]byte) error {
	copied := make(map[uint32][]byte, len(mailboxes))
	for id, data := range mailboxes {
		b := make([]byte, len(data))
		copy(b, data)
		copied[id] = b
	}
	return s.PublishOwned(service, round, copied)
}

// PublishOwned is Publish without the defensive copy: the caller transfers
// ownership of the map and every byte slice in it and must not touch them
// afterward. The last mixnet position's mailbox builder allocates fresh
// buffers each round, so publishers hand them over directly rather than
// copying what at paper scale is gigabytes per round.
func (s *Store) PublishOwned(service wire.Service, round uint32, mailboxes map[uint32][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := roundKey{service, round}
	if _, ok := s.sums[k]; ok {
		return fmt.Errorf("cdn: round %d (%s) already published", round, service)
	}
	sum := RoundChecksum(mailboxes)
	if err := s.backend.Seal(service, round, mailboxes, sum); err != nil {
		return fmt.Errorf("cdn: sealing round %d (%s): %w", round, service, err)
	}
	s.sums[k] = sum
	s.order[service] = append(s.order[service], round)
	return s.evictLocked(service)
}

// evictLocked enforces retention for one service. Called with mu held.
func (s *Store) evictLocked(service wire.Service) error {
	if s.retention <= 0 {
		return nil
	}
	for len(s.order[service]) > s.retention {
		old := s.order[service][0]
		s.order[service] = s.order[service][1:]
		delete(s.sums, roundKey{service, old})
		if err := s.backend.Delete(service, old); err != nil {
			return fmt.Errorf("cdn: evicting round %d (%s): %w", old, service, err)
		}
	}
	return nil
}

// Fetch returns one mailbox's contents. A missing round and a missing
// mailbox are distinct errors: an empty mailbox in a published round
// returns empty bytes, not an error.
func (s *Store) Fetch(service wire.Service, round uint32, mailbox uint32) ([]byte, error) {
	s.mu.RLock()
	_, ok := s.sums[roundKey{service, round}]
	if !ok {
		s.mu.RUnlock()
		return nil, fmt.Errorf("cdn: round %d (%s) not published", round, service)
	}
	data, err := s.backend.Mailbox(service, round, mailbox)
	s.mu.RUnlock()
	if err != nil {
		return nil, fmt.Errorf("cdn: round %d (%s): %w", round, service, err)
	}
	if data == nil {
		data = []byte{}
	}
	s.bytesServed.Add(uint64(len(data)))
	s.fetches.Add(1)
	return data, nil
}

// MaxFetchRange bounds how many rounds one FetchRange call may cover, so
// a single request cannot ask the store to assemble an unbounded reply.
// It is far above any real client backlog (core.DefaultMaxDialBacklog).
const MaxFetchRange = 1024

// FetchRange returns one mailbox's contents for every PUBLISHED round in
// [fromRound, toRound], keyed by round. Rounds in the range that are not
// (or no longer) published are simply absent — a client draining a scan
// backlog treats them like a failed Fetch for that round. The whole range
// costs one request instead of one per round, which is what lets a client
// behind by N rounds catch up without N round trips.
func (s *Store) FetchRange(service wire.Service, fromRound, toRound uint32, mailbox uint32) (map[uint32][]byte, error) {
	if fromRound > toRound {
		return nil, fmt.Errorf("cdn: bad round range [%d, %d]", fromRound, toRound)
	}
	if toRound-fromRound >= MaxFetchRange {
		return nil, fmt.Errorf("cdn: round range [%d, %d] exceeds %d rounds", fromRound, toRound, MaxFetchRange)
	}
	out := make(map[uint32][]byte)
	s.mu.RLock()
	for r := fromRound; r <= toRound; r++ {
		if _, ok := s.sums[roundKey{service, r}]; !ok {
			continue
		}
		data, err := s.backend.Mailbox(service, r, mailbox)
		if err != nil {
			s.mu.RUnlock()
			return nil, fmt.Errorf("cdn: round %d (%s): %w", r, service, err)
		}
		if data == nil {
			data = []byte{}
		}
		out[r] = data
	}
	s.mu.RUnlock()

	var served uint64
	for _, b := range out {
		served += uint64(len(b))
	}
	s.bytesServed.Add(served)
	s.fetches.Add(1)
	return out, nil
}

// Published reports whether a round's mailboxes are available.
func (s *Store) Published(service wire.Service, round uint32) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.sums[roundKey{service, round}]
	return ok
}

// Checksum returns the canonical content checksum of a published round
// (see RoundChecksum) and whether the round is published at all.
func (s *Store) Checksum(service wire.Service, round uint32) ([32]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sum, ok := s.sums[roundKey{service, round}]
	return sum, ok
}

// Rounds returns the published rounds for one service with their
// checksums, in ascending round order. The cdn.roundinfo probe serves
// this so a restarted replica can discover what it missed.
func (s *Store) Rounds(service wire.Service) []RoundInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]RoundInfo, 0, len(s.order[service]))
	for _, r := range s.order[service] {
		out = append(out, RoundInfo{Service: service, Round: r, Checksum: s.sums[roundKey{service, r}]})
	}
	return out
}

// RoundSnapshot returns a private copy of every mailbox in a published
// round. Replication reads rounds through this rather than Fetch so that
// replica fan-out does not pollute the client fetch accounting.
func (s *Store) RoundSnapshot(service wire.Service, round uint32) (map[uint32][]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.sums[roundKey{service, round}]; !ok {
		return nil, fmt.Errorf("cdn: round %d (%s) not published", round, service)
	}
	sizes, err := s.backend.Sizes(service, round)
	if err != nil {
		return nil, fmt.Errorf("cdn: round %d (%s): %w", round, service, err)
	}
	out := make(map[uint32][]byte, len(sizes))
	for id := range sizes {
		data, err := s.backend.Mailbox(service, round, id)
		if err != nil {
			return nil, fmt.Errorf("cdn: round %d (%s): %w", round, service, err)
		}
		out[id] = data
	}
	return out, nil
}

// RoundSnapshotMailbox returns a private copy of one mailbox of a
// published round, without the client fetch accounting — the single-box
// flavor of RoundSnapshot, used by the paged cdn.pull surface.
func (s *Store) RoundSnapshotMailbox(service wire.Service, round uint32, mailbox uint32) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.sums[roundKey{service, round}]; !ok {
		return nil, fmt.Errorf("cdn: round %d (%s) not published", round, service)
	}
	data, err := s.backend.Mailbox(service, round, mailbox)
	if err != nil {
		return nil, fmt.Errorf("cdn: round %d (%s): %w", round, service, err)
	}
	if data == nil {
		data = []byte{}
	}
	return data, nil
}

// CloneRound copies one published round from src into dst, preserving the
// content checksum. Already-published destination rounds are left alone
// (replication is idempotent). This is the in-process replication path the
// simulator uses for its extra CDN replicas.
func CloneRound(dst, src *Store, service wire.Service, round uint32) error {
	if dst.Published(service, round) {
		return nil
	}
	boxes, err := src.RoundSnapshot(service, round)
	if err != nil {
		return err
	}
	return dst.PublishOwned(service, round, boxes)
}

// MailboxSizes returns the size in bytes of every mailbox in a round,
// keyed by mailbox ID. Used by the benchmark harness (Figures 6, 7, 10).
func (s *Store) MailboxSizes(service wire.Service, round uint32) (map[uint32]int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.sums[roundKey{service, round}]; !ok {
		return nil, fmt.Errorf("cdn: round %d (%s) not published", round, service)
	}
	sizes, err := s.backend.Sizes(service, round)
	if err != nil {
		return nil, fmt.Errorf("cdn: round %d (%s): %w", round, service, err)
	}
	return sizes, nil
}

// BytesServed returns the cumulative bytes served to clients.
func (s *Store) BytesServed() uint64 { return s.bytesServed.Load() }

// Fetches returns the cumulative number of Fetch calls.
func (s *Store) Fetches() uint64 { return s.fetches.Load() }
