// Package cdn simulates the content-distribution network that distributes
// Alpenhorn mailboxes to clients (§7: "our prototype relies on a content
// distribution network, such as Akamai").
//
// Semantically a CDN is a read-only, immutable, versioned blob store: the
// last mixnet server publishes each round's mailboxes once, and any number
// of clients fetch them. The in-memory implementation preserves exactly
// those semantics (a round's content cannot be republished) and adds
// byte-accounting so the benchmark harness can measure client bandwidth.
//
// Publication has two paths: the coordinator calls Publish/PublishOwned
// in-process when it relays the chain itself, and internal/rpc exposes
// the same store as a cdn.publish RPC surface (RegisterCDN) so the last
// mixer of a chain-forward round ships mailboxes here directly, bypassing
// the coordinator.
package cdn

import (
	"fmt"
	"sync"
	"sync/atomic"

	"alpenhorn/internal/wire"
)

type roundKey struct {
	service wire.Service
	round   uint32
}

// Store is an in-memory mailbox CDN. The zero value is not usable; call
// NewStore.
type Store struct {
	mu     sync.RWMutex
	rounds map[roundKey]map[uint32][]byte

	// retention limits how many rounds per service are kept; older
	// rounds are evicted. Mailbox contents are public, so retention is
	// an availability knob, not a privacy one (§5.1: clients can fetch
	// old mailboxes "for a relatively long time").
	retention int
	order     map[wire.Service][]uint32

	bytesServed atomic.Uint64
	fetches     atomic.Uint64
}

// NewStore creates a store retaining the given number of rounds per
// service (0 means unlimited).
func NewStore(retention int) *Store {
	return &Store{
		rounds:    make(map[roundKey]map[uint32][]byte),
		retention: retention,
		order:     make(map[wire.Service][]uint32),
	}
}

// Publish stores all mailboxes for a round. It fails if the round was
// already published: rounds are immutable. The store copies every mailbox;
// use PublishOwned when the caller is handing over freshly built buffers.
func (s *Store) Publish(service wire.Service, round uint32, mailboxes map[uint32][]byte) error {
	copied := make(map[uint32][]byte, len(mailboxes))
	for id, data := range mailboxes {
		b := make([]byte, len(data))
		copy(b, data)
		copied[id] = b
	}
	return s.PublishOwned(service, round, copied)
}

// PublishOwned is Publish without the defensive copy: the caller transfers
// ownership of the map and every byte slice in it and must not touch them
// afterward. The last mixnet server's mailbox builder allocates fresh
// buffers each round, so the coordinator publishes them directly rather
// than copying what at paper scale is gigabytes per round.
func (s *Store) PublishOwned(service wire.Service, round uint32, mailboxes map[uint32][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := roundKey{service, round}
	if _, ok := s.rounds[k]; ok {
		return fmt.Errorf("cdn: round %d (%s) already published", round, service)
	}
	s.rounds[k] = mailboxes
	s.order[service] = append(s.order[service], round)
	if s.retention > 0 {
		for len(s.order[service]) > s.retention {
			old := s.order[service][0]
			s.order[service] = s.order[service][1:]
			delete(s.rounds, roundKey{service, old})
		}
	}
	return nil
}

// Fetch returns one mailbox's contents. A missing round and a missing
// mailbox are distinct errors: an empty mailbox in a published round
// returns empty bytes, not an error.
func (s *Store) Fetch(service wire.Service, round uint32, mailbox uint32) ([]byte, error) {
	s.mu.RLock()
	boxes, ok := s.rounds[roundKey{service, round}]
	if !ok {
		s.mu.RUnlock()
		return nil, fmt.Errorf("cdn: round %d (%s) not published", round, service)
	}
	data := boxes[mailbox]
	s.mu.RUnlock()

	out := make([]byte, len(data))
	copy(out, data)
	s.bytesServed.Add(uint64(len(out)))
	s.fetches.Add(1)
	return out, nil
}

// MaxFetchRange bounds how many rounds one FetchRange call may cover, so
// a single request cannot ask the store to assemble an unbounded reply.
// It is far above any real client backlog (core.DefaultMaxDialBacklog).
const MaxFetchRange = 1024

// FetchRange returns one mailbox's contents for every PUBLISHED round in
// [fromRound, toRound], keyed by round. Rounds in the range that are not
// (or no longer) published are simply absent — a client draining a scan
// backlog treats them like a failed Fetch for that round. The whole range
// costs one request instead of one per round, which is what lets a client
// behind by N rounds catch up without N round trips.
func (s *Store) FetchRange(service wire.Service, fromRound, toRound uint32, mailbox uint32) (map[uint32][]byte, error) {
	if fromRound > toRound {
		return nil, fmt.Errorf("cdn: bad round range [%d, %d]", fromRound, toRound)
	}
	if toRound-fromRound >= MaxFetchRange {
		return nil, fmt.Errorf("cdn: round range [%d, %d] exceeds %d rounds", fromRound, toRound, MaxFetchRange)
	}
	out := make(map[uint32][]byte)
	s.mu.RLock()
	for r := fromRound; r <= toRound; r++ {
		boxes, ok := s.rounds[roundKey{service, r}]
		if !ok {
			continue
		}
		data := boxes[mailbox]
		b := make([]byte, len(data))
		copy(b, data)
		out[r] = b
	}
	s.mu.RUnlock()

	var served uint64
	for _, b := range out {
		served += uint64(len(b))
	}
	s.bytesServed.Add(served)
	s.fetches.Add(1)
	return out, nil
}

// Published reports whether a round's mailboxes are available.
func (s *Store) Published(service wire.Service, round uint32) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.rounds[roundKey{service, round}]
	return ok
}

// MailboxSizes returns the size in bytes of every mailbox in a round,
// keyed by mailbox ID. Used by the benchmark harness (Figures 6, 7, 10).
func (s *Store) MailboxSizes(service wire.Service, round uint32) (map[uint32]int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	boxes, ok := s.rounds[roundKey{service, round}]
	if !ok {
		return nil, fmt.Errorf("cdn: round %d (%s) not published", round, service)
	}
	sizes := make(map[uint32]int, len(boxes))
	for id, data := range boxes {
		sizes[id] = len(data)
	}
	return sizes, nil
}

// BytesServed returns the cumulative bytes served to clients.
func (s *Store) BytesServed() uint64 { return s.bytesServed.Load() }

// Fetches returns the cumulative number of Fetch calls.
func (s *Store) Fetches() uint64 { return s.fetches.Load() }
