package cdn

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"alpenhorn/internal/wire"
)

// testRound builds a deterministic multi-mailbox round.
func testRound(seed byte, boxes int) map[uint32][]byte {
	out := make(map[uint32][]byte, boxes)
	for i := 0; i < boxes; i++ {
		data := make([]byte, 16+i*7)
		for j := range data {
			data[j] = seed + byte(i) ^ byte(j)
		}
		out[uint32(i)] = data
	}
	out[uint32(boxes)] = []byte{} // empty mailboxes survive sealing too
	return out
}

// TestDiskStoreCrashRestart publishes rounds to a disk store, abandons it
// without Close (the SIGKILL stand-in: segments and manifest are already
// fsync'd), reopens the directory, and requires every mailbox back
// byte-identical — including via FetchRange — with checksums preserved.
func TestDiskStoreCrashRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	rounds := map[uint32]map[uint32][]byte{}
	for r := uint32(1); r <= 3; r++ {
		rounds[r] = testRound(byte(r), 5)
		if err := s.Publish(wire.Dialing, r, rounds[r]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Publish(wire.AddFriend, 7, testRound(9, 3)); err != nil {
		t.Fatal(err)
	}
	sums := make(map[uint32][32]byte)
	for r := range rounds {
		sums[r], _ = s.Checksum(wire.Dialing, r)
	}
	// No Close: the "crash". A leftover temp file from a hypothetical
	// mid-seal crash must also be cleaned up at reopen.
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"seg-crashed"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for r, want := range rounds {
		for id, box := range want {
			got, err := re.Fetch(wire.Dialing, r, id)
			if err != nil {
				t.Fatalf("round %d mailbox %d: %v", r, id, err)
			}
			if !bytes.Equal(got, box) {
				t.Fatalf("round %d mailbox %d differs after reopen", r, id)
			}
		}
		if sum, ok := re.Checksum(wire.Dialing, r); !ok || sum != sums[r] {
			t.Fatalf("round %d checksum changed across reopen", r)
		}
	}
	ranged, err := re.FetchRange(wire.Dialing, 1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for r := uint32(1); r <= 3; r++ {
		if !bytes.Equal(ranged[r], rounds[r][2]) {
			t.Fatalf("FetchRange round %d differs after reopen", r)
		}
	}
	if _, err := re.Fetch(wire.AddFriend, 7, 0); err != nil {
		t.Fatalf("other service lost across reopen: %v", err)
	}
	if entries, _ := filepath.Glob(filepath.Join(dir, tmpPrefix+"*")); len(entries) != 0 {
		t.Fatalf("temp files survived reopen: %v", entries)
	}
}

// TestDiskStoreRetentionOnReopen publishes more rounds than the reopened
// store's retention allows: reopen must evict the oldest — including
// their segment files — and keep the newest.
func TestDiskStoreRetentionOnReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for r := uint32(1); r <= 5; r++ {
		if err := s.Publish(wire.Dialing, r, testRound(byte(r), 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDiskStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for r := uint32(1); r <= 3; r++ {
		if re.Published(wire.Dialing, r) {
			t.Fatalf("round %d survived retention", r)
		}
		if _, err := os.Stat(filepath.Join(dir, segName(wire.Dialing, r))); !os.IsNotExist(err) {
			t.Fatalf("round %d segment file survived retention", r)
		}
	}
	for r := uint32(4); r <= 5; r++ {
		if !re.Published(wire.Dialing, r) {
			t.Fatalf("round %d evicted within retention", r)
		}
	}
}

// TestDiskBackendRejectsCorruption corrupts one round's segment on disk;
// reopen must reject that round cleanly (absent, listed in Rejected) and
// leave the healthy round untouched.
func TestDiskBackendRejectsCorruption(t *testing.T) {
	corruptions := []struct {
		name   string
		mangle func(path string) error
	}{
		{"flip-data-byte", func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			data[len(data)/2] ^= 0xff
			return os.WriteFile(path, data, 0o644)
		}},
		{"truncate", func(path string) error {
			fi, err := os.Stat(path)
			if err != nil {
				return err
			}
			return os.Truncate(path, fi.Size()/2)
		}},
		{"truncate-to-header", func(path string) error {
			return os.Truncate(path, segHeaderSize)
		}},
		{"bad-magic", func(path string) error {
			f, err := os.OpenFile(path, os.O_WRONLY, 0)
			if err != nil {
				return err
			}
			defer f.Close()
			_, err = f.WriteAt([]byte("NOTACDN!"), 0)
			return err
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenDiskStore(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			victim := testRound(1, 4)
			if err := s.Publish(wire.Dialing, 1, victim); err != nil {
				t.Fatal(err)
			}
			healthy := testRound(2, 4)
			if err := s.Publish(wire.Dialing, 2, healthy); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if err := tc.mangle(filepath.Join(dir, segName(wire.Dialing, 1))); err != nil {
				t.Fatal(err)
			}

			backend, err := NewDiskBackend(dir)
			if err != nil {
				t.Fatal(err)
			}
			if got := backend.Rejected(); len(got) != 1 || got[0] != segName(wire.Dialing, 1) {
				t.Fatalf("rejected = %v, want the corrupted segment", got)
			}
			re, err := NewStoreWithBackend(backend, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if re.Published(wire.Dialing, 1) {
				t.Fatal("corrupted round served")
			}
			for id, box := range healthy {
				got, err := re.Fetch(wire.Dialing, 2, id)
				if err != nil || !bytes.Equal(got, box) {
					t.Fatalf("healthy round mailbox %d: %q, %v", id, got, err)
				}
			}
		})
	}
}

// TestDiskBackendManifestDisagreement: a segment that verifies internally
// but contradicts the fsync'd manifest is treated as corrupt.
func TestDiskBackendManifestDisagreement(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(wire.Dialing, 1, testRound(1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Replace the segment with a DIFFERENT valid round 1 (an attacker or
	// a botched restore): self-checksum passes, manifest does not.
	if err := os.Remove(filepath.Join(dir, segName(wire.Dialing, 1))); err != nil {
		t.Fatal(err)
	}
	fb, err := NewDiskBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	forgedBoxes := testRound(99, 3)
	if err := fb.Seal(wire.Dialing, 1, forgedBoxes, RoundChecksum(forgedBoxes)); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(fb.Dir(), segName(wire.Dialing, 1)), filepath.Join(dir, segName(wire.Dialing, 1))); err != nil {
		t.Fatal(err)
	}

	backend, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := backend.Rejected(); len(got) != 1 {
		t.Fatalf("rejected = %v, want the forged segment", got)
	}
	backend.Close()
}

// FuzzDiskBackendReopen corrupts arbitrary bytes (or truncates) a sealed
// segment and reopens the directory: the backend must never panic, must
// either reject the segment or serve the round's original bytes exactly
// (mutations that touch only ignored regions — e.g. nothing — keep it
// valid), and must always keep the untouched healthy round intact.
func FuzzDiskBackendReopen(f *testing.F) {
	f.Add(uint32(0), byte(0xff), false)
	f.Add(uint32(8), byte(0x01), false)
	f.Add(uint32(17), byte(0x80), false)
	f.Add(uint32(60), byte(0xaa), true)
	f.Add(uint32(1<<20), byte(0x55), true)

	f.Fuzz(func(t *testing.T, pos uint32, mask byte, truncate bool) {
		dir := t.TempDir()
		s, err := OpenDiskStore(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		victim := testRound(3, 4)
		if err := s.Publish(wire.Dialing, 1, victim); err != nil {
			t.Fatal(err)
		}
		healthy := testRound(4, 4)
		if err := s.Publish(wire.AddFriend, 2, healthy); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		path := filepath.Join(dir, segName(wire.Dialing, 1))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		changed := false
		if truncate {
			n := int(pos) % (len(data) + 1)
			changed = n < len(data)
			data = data[:n]
		} else if len(data) > 0 {
			i := int(pos) % len(data)
			changed = mask != 0
			data[i] ^= mask
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		backend, err := NewDiskBackend(dir)
		if err != nil {
			t.Fatal(err)
		}
		re, err := NewStoreWithBackend(backend, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()

		if re.Published(wire.Dialing, 1) {
			if changed {
				t.Fatal("mutated segment accepted")
			}
			for id, box := range victim {
				got, err := re.Fetch(wire.Dialing, 1, id)
				if err != nil || !bytes.Equal(got, box) {
					t.Fatalf("mailbox %d: %q, %v", id, got, err)
				}
			}
		} else if !changed {
			t.Fatal("untouched segment rejected")
		}
		for id, box := range healthy {
			got, err := re.Fetch(wire.AddFriend, 2, id)
			if err != nil || !bytes.Equal(got, box) {
				t.Fatalf("healthy mailbox %d: %q, %v", id, got, err)
			}
		}
	})
}

// TestDiskStoreRoundAlreadyPublished pins the duplicate-publish error on
// the disk path (same contract as the memory store).
func TestDiskStoreRoundAlreadyPublished(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Publish(wire.Dialing, 1, testRound(1, 2)); err != nil {
		t.Fatal(err)
	}
	err = s.Publish(wire.Dialing, 1, testRound(2, 2))
	want := fmt.Sprintf("cdn: round %d (%s) already published", 1, wire.Dialing)
	if err == nil || err.Error() != want {
		t.Fatalf("duplicate publish: %v", err)
	}
}
