package cdn

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"alpenhorn/internal/wire"
)

// DiskBackend persists each sealed round as one immutable segment file.
//
// Segment layout (all integers little-endian):
//
//	magic     [8]byte  "ALPNCDN1"
//	service   uint8
//	round     uint32
//	count     uint32                      number of mailboxes
//	roundSum  [32]byte                    RoundChecksum of the contents
//	index     count × (id uint32, length uint32)
//	data      mailbox bytes, concatenated in index order
//	fileSum   [32]byte                    SHA-256 of everything above
//
// A segment is written to a temp file, fsync'd, then renamed into place
// (and the directory fsync'd), so a crash mid-seal leaves at most a temp
// file that reopen discards — never a half-visible round. The trailing
// file checksum makes each segment self-verifying: reopen re-hashes every
// segment and rejects corrupt or truncated ones cleanly, leaving the
// affected round absent (for replication backfill to repair) and healthy
// rounds untouched.
//
// The MANIFEST file records the sealed rounds and their content checksums,
// rewritten whole (temp+fsync+rename) after every seal and delete. Reopen
// treats it as a cross-check, not the source of truth: segments are
// self-checksummed, so a segment sealed just before a crash that never
// made it into the manifest is still recovered, while a manifest entry
// whose checksum disagrees with the segment's verified contents marks the
// round corrupt.
type DiskBackend struct {
	dir  string
	segs map[roundKey]*segment

	// rejected lists segment files that failed verification at reopen,
	// for tests and operator logs.
	rejected []string
}

const (
	segMagic      = "ALPNCDN1"
	segHeaderSize = 8 + 1 + 4 + 4 + 32
	segEntrySize  = 8
	manifestName  = "MANIFEST"
	tmpPrefix     = ".tmp-"
)

type span struct {
	off    int64 // absolute offset of the mailbox bytes in the file
	length uint32
}

type segment struct {
	f     *os.File
	path  string
	index map[uint32]span
	sum   [32]byte // content checksum (RoundChecksum)
}

type manifestEntry struct {
	Service  uint8  `json:"service"`
	Round    uint32 `json:"round"`
	File     string `json:"file"`
	Checksum string `json:"checksum"`
}

type manifest struct {
	Rounds []manifestEntry `json:"rounds"`
}

// NewDiskBackend opens (or creates) a segment directory. Every segment
// found is fully verified against its trailing checksum; corrupt or
// truncated segments are rejected (see Rejected) without affecting other
// rounds. Leftover temp files from a crashed seal are removed.
func NewDiskBackend(dir string) (*DiskBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cdn: creating %s: %w", dir, err)
	}
	d := &DiskBackend{dir: dir, segs: make(map[roundKey]*segment)}

	// The manifest is a cross-check: entries keyed by file name. A
	// missing or unparsable manifest falls back to trusting the
	// self-checksummed segments alone.
	manifestSums := make(map[string]string)
	if data, err := os.ReadFile(filepath.Join(dir, manifestName)); err == nil {
		var m manifest
		if json.Unmarshal(data, &m) == nil {
			for _, e := range m.Rounds {
				manifestSums[e.File] = e.Checksum
			}
		}
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cdn: reading %s: %w", dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, ".seg") {
			continue
		}
		path := filepath.Join(dir, name)
		seg, service, round, err := openSegment(path)
		if err != nil {
			d.rejected = append(d.rejected, name)
			continue
		}
		if want, ok := manifestSums[name]; ok && want != hex.EncodeToString(seg.sum[:]) {
			// Segment verifies internally but disagrees with the
			// fsync'd manifest: treat as corrupt.
			seg.f.Close()
			d.rejected = append(d.rejected, name)
			continue
		}
		k := roundKey{service, round}
		if old, ok := d.segs[k]; ok {
			old.f.Close()
		}
		d.segs[k] = seg
	}
	return d, nil
}

// Rejected returns the names of segment files that failed verification
// when the backend was opened.
func (d *DiskBackend) Rejected() []string { return append([]string(nil), d.rejected...) }

// Dir returns the backend's segment directory.
func (d *DiskBackend) Dir() string { return d.dir }

func segName(service wire.Service, round uint32) string {
	return fmt.Sprintf("%s-%010d.seg", service, round)
}

func (d *DiskBackend) Seal(service wire.Service, round uint32, mailboxes map[uint32][]byte, checksum [32]byte) error {
	ids := make([]uint32, 0, len(mailboxes))
	for id := range mailboxes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	tmp, err := os.CreateTemp(d.dir, tmpPrefix+"seg-")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())

	h := sha256.New()
	w := bufio.NewWriterSize(io.MultiWriter(tmp, h), 1<<20)

	var hdr [segHeaderSize]byte
	copy(hdr[:8], segMagic)
	hdr[8] = uint8(service)
	binary.LittleEndian.PutUint32(hdr[9:13], round)
	binary.LittleEndian.PutUint32(hdr[13:17], uint32(len(ids)))
	copy(hdr[17:49], checksum[:])
	w.Write(hdr[:])

	index := make(map[uint32]span, len(ids))
	off := int64(segHeaderSize + segEntrySize*len(ids))
	var ent [segEntrySize]byte
	for _, id := range ids {
		n := uint32(len(mailboxes[id]))
		binary.LittleEndian.PutUint32(ent[:4], id)
		binary.LittleEndian.PutUint32(ent[4:], n)
		w.Write(ent[:])
		index[id] = span{off: off, length: n}
		off += int64(n)
	}
	for _, id := range ids {
		w.Write(mailboxes[id])
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(h.Sum(nil)); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}

	path := filepath.Join(d.dir, segName(service, round))
	if err := os.Rename(tmp.Name(), path); err != nil {
		tmp.Close()
		return err
	}
	if err := syncDir(d.dir); err != nil {
		tmp.Close()
		return err
	}
	// Reopen read-only at the final path; the temp handle is still
	// positioned for writing and about to be closed.
	tmp.Close()
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	d.segs[roundKey{service, round}] = &segment{f: f, path: path, index: index, sum: checksum}
	return d.writeManifest()
}

func (d *DiskBackend) Mailbox(service wire.Service, round uint32, mailbox uint32) ([]byte, error) {
	seg, ok := d.segs[roundKey{service, round}]
	if !ok {
		return nil, errors.New("disk backend: round not sealed")
	}
	sp, ok := seg.index[mailbox]
	if !ok {
		return nil, nil
	}
	out := make([]byte, sp.length)
	if _, err := seg.f.ReadAt(out, sp.off); err != nil {
		return nil, fmt.Errorf("disk backend: reading %s: %w", filepath.Base(seg.path), err)
	}
	return out, nil
}

func (d *DiskBackend) Sizes(service wire.Service, round uint32) (map[uint32]int, error) {
	seg, ok := d.segs[roundKey{service, round}]
	if !ok {
		return nil, errors.New("disk backend: round not sealed")
	}
	sizes := make(map[uint32]int, len(seg.index))
	for id, sp := range seg.index {
		sizes[id] = int(sp.length)
	}
	return sizes, nil
}

func (d *DiskBackend) Delete(service wire.Service, round uint32) error {
	k := roundKey{service, round}
	seg, ok := d.segs[k]
	if !ok {
		return nil
	}
	delete(d.segs, k)
	seg.f.Close()
	if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return d.writeManifest()
}

func (d *DiskBackend) Rounds() []RoundInfo {
	out := make([]RoundInfo, 0, len(d.segs))
	for k, seg := range d.segs {
		out = append(out, RoundInfo{Service: k.service, Round: k.round, Checksum: seg.sum})
	}
	return out
}

func (d *DiskBackend) Close() error {
	var first error
	for _, seg := range d.segs {
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	d.segs = make(map[roundKey]*segment)
	return first
}

// writeManifest rewrites the manifest atomically (temp+fsync+rename).
func (d *DiskBackend) writeManifest() error {
	var m manifest
	for k, seg := range d.segs {
		m.Rounds = append(m.Rounds, manifestEntry{
			Service:  uint8(k.service),
			Round:    k.round,
			File:     filepath.Base(seg.path),
			Checksum: hex.EncodeToString(seg.sum[:]),
		})
	}
	sort.Slice(m.Rounds, func(i, j int) bool {
		if m.Rounds[i].Service != m.Rounds[j].Service {
			return m.Rounds[i].Service < m.Rounds[j].Service
		}
		return m.Rounds[i].Round < m.Rounds[j].Round
	})
	data, err := json.MarshalIndent(&m, "", "\t")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(d.dir, tmpPrefix+"manifest-")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	tmp.Close()
	if err := os.Rename(tmp.Name(), filepath.Join(d.dir, manifestName)); err != nil {
		return err
	}
	return syncDir(d.dir)
}

// openSegment verifies a segment's trailing file checksum by re-hashing
// the whole file, then parses its header and index. Any mismatch,
// truncation, or inconsistency rejects the segment.
func openSegment(path string) (*segment, wire.Service, uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, err
	}
	ok := false
	defer func() {
		if !ok {
			f.Close()
		}
	}()

	fi, err := f.Stat()
	if err != nil {
		return nil, 0, 0, err
	}
	size := fi.Size()
	if size < segHeaderSize+32 {
		return nil, 0, 0, errors.New("cdn: segment truncated")
	}

	// Verify the trailing checksum over everything before it.
	h := sha256.New()
	if _, err := io.Copy(h, io.NewSectionReader(f, 0, size-32)); err != nil {
		return nil, 0, 0, err
	}
	var want [32]byte
	if _, err := f.ReadAt(want[:], size-32); err != nil {
		return nil, 0, 0, err
	}
	var got [32]byte
	h.Sum(got[:0])
	if got != want {
		return nil, 0, 0, errors.New("cdn: segment checksum mismatch")
	}

	var hdr [segHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, 0, 0, err
	}
	if string(hdr[:8]) != segMagic {
		return nil, 0, 0, errors.New("cdn: bad segment magic")
	}
	service := wire.Service(hdr[8])
	round := binary.LittleEndian.Uint32(hdr[9:13])
	count := binary.LittleEndian.Uint32(hdr[13:17])
	seg := &segment{f: f, path: path}
	copy(seg.sum[:], hdr[17:49])

	indexBytes := int64(count) * segEntrySize
	dataStart := int64(segHeaderSize) + indexBytes
	if dataStart+32 > size {
		return nil, 0, 0, errors.New("cdn: segment index truncated")
	}
	raw := make([]byte, indexBytes)
	if _, err := f.ReadAt(raw, segHeaderSize); err != nil {
		return nil, 0, 0, err
	}
	seg.index = make(map[uint32]span, count)
	off := dataStart
	for i := int64(0); i < int64(count); i++ {
		id := binary.LittleEndian.Uint32(raw[i*segEntrySize:])
		n := binary.LittleEndian.Uint32(raw[i*segEntrySize+4:])
		if _, dup := seg.index[id]; dup {
			return nil, 0, 0, errors.New("cdn: duplicate mailbox in segment")
		}
		seg.index[id] = span{off: off, length: n}
		off += int64(n)
	}
	if off+32 != size {
		return nil, 0, 0, errors.New("cdn: segment data length mismatch")
	}
	ok = true
	return seg, service, round, nil
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	// Some platforms cannot fsync directories; the rename itself is
	// still atomic there, so ignore that failure.
	if err := f.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return err
	}
	return nil
}
