package cdn

import (
	"bytes"
	"testing"

	"alpenhorn/internal/wire"
)

func TestPublishFetch(t *testing.T) {
	s := NewStore(0)
	boxes := map[uint32][]byte{0: []byte("box0"), 1: []byte("box1")}
	if err := s.Publish(wire.AddFriend, 1, boxes); err != nil {
		t.Fatal(err)
	}
	got, err := s.Fetch(wire.AddFriend, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("box1")) {
		t.Fatalf("got %q", got)
	}
	// Missing mailbox in a published round is empty, not an error.
	empty, err := s.Fetch(wire.AddFriend, 1, 99)
	if err != nil || len(empty) != 0 {
		t.Fatalf("missing mailbox: %q, %v", empty, err)
	}
	// Unpublished round is an error.
	if _, err := s.Fetch(wire.AddFriend, 2, 0); err == nil {
		t.Fatal("unpublished round served")
	}
	if _, err := s.Fetch(wire.Dialing, 1, 0); err == nil {
		t.Fatal("wrong service served")
	}
}

func TestFetchRange(t *testing.T) {
	s := NewStore(0)
	for r := uint32(2); r <= 5; r++ {
		if r == 4 {
			continue // round 4 never published
		}
		if err := s.Publish(wire.Dialing, r, map[uint32][]byte{7: {byte(r)}}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.FetchRange(wire.Dialing, 1, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("ranged fetch returned %d rounds, want 3", len(got))
	}
	for _, r := range []uint32{2, 3, 5} {
		if len(got[r]) != 1 || got[r][0] != byte(r) {
			t.Fatalf("round %d: %v", r, got[r])
		}
	}
	if _, ok := got[4]; ok {
		t.Fatal("unpublished round present in ranged reply")
	}
	// The whole range is ONE fetch for accounting purposes.
	if s.Fetches() != 1 {
		t.Fatalf("fetches %d, want 1", s.Fetches())
	}
	if s.BytesServed() != 3 {
		t.Fatalf("bytes served %d, want 3", s.BytesServed())
	}
	// The reply is a private copy.
	got[2][0] = 99
	again, _ := s.Fetch(wire.Dialing, 2, 7)
	if again[0] != 2 {
		t.Fatal("ranged fetch aliases store buffer")
	}
	// Validation: inverted and oversized ranges are rejected.
	if _, err := s.FetchRange(wire.Dialing, 5, 2, 7); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := s.FetchRange(wire.Dialing, 0, MaxFetchRange, 7); err == nil {
		t.Fatal("oversized range accepted")
	}
}

func TestRoundsAreImmutable(t *testing.T) {
	s := NewStore(0)
	if err := s.Publish(wire.AddFriend, 1, map[uint32][]byte{0: []byte("v1")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(wire.AddFriend, 1, map[uint32][]byte{0: []byte("v2")}); err == nil {
		t.Fatal("republish accepted")
	}
}

func TestContentsAreCopied(t *testing.T) {
	s := NewStore(0)
	data := []byte("original")
	if err := s.Publish(wire.AddFriend, 1, map[uint32][]byte{0: data}); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	got, _ := s.Fetch(wire.AddFriend, 1, 0)
	if string(got) != "original" {
		t.Fatal("store aliases publisher buffer")
	}
	got[0] = 'Y'
	got2, _ := s.Fetch(wire.AddFriend, 1, 0)
	if string(got2) != "original" {
		t.Fatal("store aliases fetcher buffer")
	}
}

func TestRetention(t *testing.T) {
	s := NewStore(2)
	for r := uint32(1); r <= 3; r++ {
		if err := s.Publish(wire.Dialing, r, map[uint32][]byte{0: {byte(r)}}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Published(wire.Dialing, 1) {
		t.Fatal("evicted round still published")
	}
	if !s.Published(wire.Dialing, 2) || !s.Published(wire.Dialing, 3) {
		t.Fatal("recent rounds missing")
	}
}

func TestAccounting(t *testing.T) {
	s := NewStore(0)
	if err := s.Publish(wire.Dialing, 1, map[uint32][]byte{0: make([]byte, 100)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Fetch(wire.Dialing, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if s.BytesServed() != 300 {
		t.Fatalf("bytes served %d", s.BytesServed())
	}
	if s.Fetches() != 3 {
		t.Fatalf("fetches %d", s.Fetches())
	}
	sizes, err := s.MailboxSizes(wire.Dialing, 1)
	if err != nil || sizes[0] != 100 {
		t.Fatalf("sizes %v, %v", sizes, err)
	}
}

func TestPublishOwnedTransfersOwnership(t *testing.T) {
	s := NewStore(0)
	boxes := map[uint32][]byte{0: []byte("owned")}
	if err := s.PublishOwned(wire.AddFriend, 1, boxes); err != nil {
		t.Fatal(err)
	}
	// Rounds stay immutable: republishing either way fails.
	if err := s.PublishOwned(wire.AddFriend, 1, boxes); err == nil {
		t.Fatal("double PublishOwned accepted")
	}
	if err := s.Publish(wire.AddFriend, 1, boxes); err == nil {
		t.Fatal("Publish over PublishOwned accepted")
	}
	// Fetch still returns a private copy to each client.
	got, err := s.Fetch(wire.AddFriend, 1, 0)
	if err != nil || string(got) != "owned" {
		t.Fatalf("fetch: %q, %v", got, err)
	}
	got[0] = 'X'
	got2, _ := s.Fetch(wire.AddFriend, 1, 0)
	if string(got2) != "owned" {
		t.Fatal("fetch aliases store buffer")
	}
	// Retention applies to owned rounds like any other.
	s2 := NewStore(1)
	for r := uint32(1); r <= 2; r++ {
		if err := s2.PublishOwned(wire.Dialing, r, map[uint32][]byte{0: {byte(r)}}); err != nil {
			t.Fatal(err)
		}
	}
	if s2.Published(wire.Dialing, 1) {
		t.Fatal("evicted owned round still published")
	}
}
