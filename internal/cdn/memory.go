package cdn

import "alpenhorn/internal/wire"

// MemoryBackend holds sealed rounds in a map: the original cdn.Store
// semantics. It is the default backend (NewStore) and what the embedded
// coordinator CDN and the simulator use.
type MemoryBackend struct {
	rounds map[roundKey]map[uint32][]byte
	sums   map[roundKey][32]byte
}

// NewMemoryBackend creates an empty in-memory backend.
func NewMemoryBackend() *MemoryBackend {
	return &MemoryBackend{
		rounds: make(map[roundKey]map[uint32][]byte),
		sums:   make(map[roundKey][32]byte),
	}
}

func (m *MemoryBackend) Seal(service wire.Service, round uint32, mailboxes map[uint32][]byte, checksum [32]byte) error {
	k := roundKey{service, round}
	m.rounds[k] = mailboxes
	m.sums[k] = checksum
	return nil
}

func (m *MemoryBackend) Mailbox(service wire.Service, round uint32, mailbox uint32) ([]byte, error) {
	data, ok := m.rounds[roundKey{service, round}][mailbox]
	if !ok {
		return nil, nil
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

func (m *MemoryBackend) Sizes(service wire.Service, round uint32) (map[uint32]int, error) {
	boxes := m.rounds[roundKey{service, round}]
	sizes := make(map[uint32]int, len(boxes))
	for id, data := range boxes {
		sizes[id] = len(data)
	}
	return sizes, nil
}

func (m *MemoryBackend) Delete(service wire.Service, round uint32) error {
	k := roundKey{service, round}
	delete(m.rounds, k)
	delete(m.sums, k)
	return nil
}

func (m *MemoryBackend) Rounds() []RoundInfo {
	out := make([]RoundInfo, 0, len(m.rounds))
	for k := range m.rounds {
		out = append(out, RoundInfo{Service: k.service, Round: k.round, Checksum: m.sums[k]})
	}
	return out
}

func (m *MemoryBackend) Close() error { return nil }
