package wire

import (
	"bytes"
	"crypto/ed25519"
	"testing"
	"testing/quick"
)

func TestBufferReaderRoundTrip(t *testing.T) {
	b := NewBuffer(nil)
	b.Uint8(7)
	b.Uint32(123456)
	b.Uint64(1 << 40)
	b.Raw([]byte{1, 2, 3})
	b.Bytes16([]byte("hello"))
	b.Bytes32([]byte("world!"))
	b.String16("str")
	b.PaddedString("padded", 16)

	r := NewReader(b.Bytes())
	if got := r.Uint8(); got != 7 {
		t.Fatalf("Uint8 = %d", got)
	}
	if got := r.Uint32(); got != 123456 {
		t.Fatalf("Uint32 = %d", got)
	}
	if got := r.Uint64(); got != 1<<40 {
		t.Fatalf("Uint64 = %d", got)
	}
	if got := r.Raw(3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Raw = %v", got)
	}
	if got := r.Bytes16(); string(got) != "hello" {
		t.Fatalf("Bytes16 = %q", got)
	}
	if got := r.Bytes32(); string(got) != "world!" {
		t.Fatalf("Bytes32 = %q", got)
	}
	if got := r.String16(); got != "str" {
		t.Fatalf("String16 = %q", got)
	}
	if got := r.PaddedString(16); got != "padded" {
		t.Fatalf("PaddedString = %q", got)
	}
	if err := r.AllConsumed(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderErrorSticky(t *testing.T) {
	r := NewReader([]byte{1})
	_ = r.Uint32() // too short
	if r.Err() == nil {
		t.Fatal("no error after short read")
	}
	if got := r.Uint8(); got != 0 {
		t.Fatal("read after error returned data")
	}
}

func TestPaddedStringRejectsNonzeroPadding(t *testing.T) {
	b := NewBuffer(nil)
	b.PaddedString("ab", 8)
	data := b.Bytes()
	data[5] = 1 // corrupt padding
	r := NewReader(data)
	_ = r.PaddedString(8)
	if r.Err() == nil {
		t.Fatal("nonzero padding accepted (non-canonical encoding)")
	}
}

func TestFriendRequestRoundTrip(t *testing.T) {
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	fr := &FriendRequest{
		SenderEmail:  "alice@example.org",
		SenderKey:    pub,
		PKGSigs:      bytes.Repeat([]byte{2}, 64),
		DialingKey:   bytes.Repeat([]byte{3}, 32),
		DialingRound: 77,
	}
	fr.SenderSig = ed25519.Sign(priv, fr.SigningMessage())

	enc, err := fr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != FriendRequestSize {
		t.Fatalf("encoded size %d, want %d", len(enc), FriendRequestSize)
	}
	got, err := UnmarshalFriendRequest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.SenderEmail != fr.SenderEmail || got.DialingRound != 77 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !ed25519.Verify(got.SenderKey, got.SigningMessage(), got.SenderSig) {
		t.Fatal("signature broken by round trip")
	}
}

func TestFriendRequestSizeIsConstant(t *testing.T) {
	// Metadata privacy depends on all requests having identical size,
	// regardless of email length.
	pub, priv, _ := ed25519.GenerateKey(nil)
	sizes := map[int]bool{}
	for _, email := range []string{"a@b.c", "much-longer-address@subdomain.example.org"} {
		fr := &FriendRequest{
			SenderEmail: email,
			SenderKey:   pub,
			PKGSigs:     make([]byte, 64),
			DialingKey:  make([]byte, 32),
		}
		fr.SenderSig = ed25519.Sign(priv, fr.SigningMessage())
		enc, err := fr.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		sizes[len(enc)] = true
	}
	if len(sizes) != 1 {
		t.Fatalf("request size varies with email length: %v", sizes)
	}
}

func TestFriendRequestValidation(t *testing.T) {
	pub, _, _ := ed25519.GenerateKey(nil)
	bad := &FriendRequest{
		SenderEmail: string(bytes.Repeat([]byte{'a'}, MaxEmailLen+1)),
		SenderKey:   pub,
		SenderSig:   make([]byte, 64),
		PKGSigs:     make([]byte, 64),
		DialingKey:  make([]byte, 32),
	}
	if _, err := bad.Marshal(); err == nil {
		t.Fatal("oversized email accepted")
	}
	if _, err := UnmarshalFriendRequest(make([]byte, 10)); err == nil {
		t.Fatal("short encoding accepted")
	}
}

func TestMixPayloadRoundTrip(t *testing.T) {
	p := &MixPayload{Mailbox: 5, Body: make([]byte, AddFriendPayloadSize-4)}
	enc := p.Marshal()
	if len(enc) != AddFriendPayloadSize {
		t.Fatalf("payload size %d, want %d", len(enc), AddFriendPayloadSize)
	}
	got, err := UnmarshalMixPayload(AddFriend, enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mailbox != 5 || len(got.Body) != len(p.Body) {
		t.Fatal("payload round trip mismatch")
	}
	if _, err := UnmarshalMixPayload(Dialing, enc); err == nil {
		t.Fatal("add-friend payload accepted as dialing payload")
	}
}

func TestRoundSettingsVerify(t *testing.T) {
	mixPub, mixPriv, _ := ed25519.GenerateKey(nil)
	pkgPub, pkgPriv, _ := ed25519.GenerateKey(nil)

	onionKey := bytes.Repeat([]byte{1}, 32)
	masterKey := bytes.Repeat([]byte{2}, 128)
	rs := &RoundSettings{
		Service:      AddFriend,
		Round:        9,
		NumMailboxes: 4,
		Mixers: []MixerRoundKey{{
			OnionKey: onionKey,
			Sig:      ed25519.Sign(mixPriv, MixerKeyMessage(AddFriend, 9, onionKey)),
		}},
		PKGs: []PKGRoundKey{{
			MasterKey: masterKey,
			Sig:       ed25519.Sign(pkgPriv, PKGKeyMessage(9, masterKey)),
		}},
	}
	if err := rs.Verify([]ed25519.PublicKey{mixPub}, []ed25519.PublicKey{pkgPub}); err != nil {
		t.Fatal(err)
	}

	// Tampered mailbox count is caught structurally; tampered keys by
	// signatures.
	rs.NumMailboxes = 0
	if err := rs.Verify([]ed25519.PublicKey{mixPub}, []ed25519.PublicKey{pkgPub}); err == nil {
		t.Fatal("zero mailboxes accepted")
	}
	rs.NumMailboxes = 4
	rs.Mixers[0].OnionKey[0] ^= 1
	if err := rs.Verify([]ed25519.PublicKey{mixPub}, []ed25519.PublicKey{pkgPub}); err == nil {
		t.Fatal("tampered mixer key accepted")
	}
	rs.Mixers[0].OnionKey[0] ^= 1
	rs.PKGs[0].MasterKey[0] ^= 1
	if err := rs.Verify([]ed25519.PublicKey{mixPub}, []ed25519.PublicKey{pkgPub}); err == nil {
		t.Fatal("tampered PKG key accepted")
	}
	rs.PKGs[0].MasterKey[0] ^= 1
	if err := rs.Verify(nil, []ed25519.PublicKey{pkgPub}); err == nil {
		t.Fatal("wrong mixer count accepted")
	}
}

func TestRoundSettingsMarshalRoundTrip(t *testing.T) {
	rs := &RoundSettings{
		Service:      Dialing,
		Round:        3,
		NumMailboxes: 2,
		Mixers: []MixerRoundKey{
			{OnionKey: []byte{1, 2}, Sig: []byte{3}},
			{OnionKey: []byte{4}, Sig: []byte{5, 6}},
		},
	}
	got, err := UnmarshalRoundSettings(rs.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Service != Dialing || got.Round != 3 || got.NumMailboxes != 2 || len(got.Mixers) != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !bytes.Equal(got.Mixers[1].Sig, []byte{5, 6}) {
		t.Fatal("mixer field mismatch")
	}
	if _, err := UnmarshalRoundSettings(rs.Marshal()[:3]); err == nil {
		t.Fatal("truncated settings accepted")
	}
}

func TestMailboxID(t *testing.T) {
	// Deterministic, in range, spread across mailboxes.
	if MailboxID("alice@example.org", 7) != MailboxID("alice@example.org", 7) {
		t.Fatal("mailbox ID not deterministic")
	}
	seen := map[uint32]bool{}
	emails := []string{"a@x", "b@x", "c@x", "d@x", "e@x", "f@x", "g@x", "h@x"}
	for _, e := range emails {
		id := MailboxID(e, 4)
		if id >= 4 {
			t.Fatalf("mailbox ID %d out of range", id)
		}
		seen[id] = true
	}
	if len(seen) < 2 {
		t.Fatal("mailbox IDs suspiciously concentrated")
	}
}

func TestPaddedStringProperty(t *testing.T) {
	prop := func(raw []byte) bool {
		s := string(raw)
		if len(s) > 32 {
			s = s[:32]
		}
		b := NewBuffer(nil)
		b.PaddedString(s, 32)
		r := NewReader(b.Bytes())
		got := r.PaddedString(32)
		return r.Err() == nil && got == s
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRoundSettingsPairingVersion pins the pairing-version capability
// encoding: v1 settings marshal byte-identically to the pre-capability
// format (no trailing byte), v2 settings round-trip through the single
// trailing byte, and malformed capability bytes are rejected.
func TestRoundSettingsPairingVersion(t *testing.T) {
	base := &RoundSettings{
		Service:      AddFriend,
		Round:        7,
		NumMailboxes: 3,
		Mixers:       []MixerRoundKey{{OnionKey: []byte{1, 2}, Sig: []byte{3}}},
		PKGs:         []PKGRoundKey{{MasterKey: []byte{4}, Sig: []byte{5, 6}}},
	}
	v1Bytes := base.Marshal()
	// Versions 0 and 1 both mean the v1 tier and must encode identically.
	explicit := *base
	explicit.PairingVersion = 1
	if !bytes.Equal(explicit.Marshal(), v1Bytes) {
		t.Fatal("PairingVersion=1 settings are not byte-identical to version-0 settings")
	}
	got, err := UnmarshalRoundSettings(v1Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if got.PairingV2() {
		t.Fatal("v1 settings decoded as v2")
	}

	v2 := *base
	v2.PairingVersion = 2
	v2Bytes := v2.Marshal()
	if len(v2Bytes) != len(v1Bytes)+1 {
		t.Fatalf("v2 settings are %d bytes, want exactly one more than v1's %d", len(v2Bytes), len(v1Bytes))
	}
	got, err = UnmarshalRoundSettings(v2Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if !got.PairingV2() || got.PairingVersion != 2 {
		t.Fatalf("v2 settings decoded with PairingVersion=%d", got.PairingVersion)
	}

	// A trailing byte < 2 is not a valid capability (v1 encodes by
	// omission), and more than one trailing byte is garbage.
	if _, err := UnmarshalRoundSettings(append(append([]byte(nil), v1Bytes...), 1)); err == nil {
		t.Fatal("trailing byte 1 accepted")
	}
	if _, err := UnmarshalRoundSettings(append(append([]byte(nil), v2Bytes...), 2)); err == nil {
		t.Fatal("two trailing bytes accepted")
	}
}

// TestRoundSettingsPairingVersionSignatureBinding pins the domain
// separation of PKG round-key signatures: a key signed for the v1 tier
// does not verify in v2 settings and vice versa, so flipping the
// capability byte on signed settings cannot re-tier a round.
func TestRoundSettingsPairingVersionSignatureBinding(t *testing.T) {
	pkgPub, pkgPriv, _ := ed25519.GenerateKey(nil)
	masterKey := bytes.Repeat([]byte{2}, 128)
	rs := &RoundSettings{
		Service:        AddFriend,
		Round:          9,
		NumMailboxes:   4,
		PairingVersion: 2,
		PKGs: []PKGRoundKey{{
			MasterKey: masterKey,
			Sig:       ed25519.Sign(pkgPriv, PKGKeyMessageV2(9, masterKey)),
		}},
	}
	if err := rs.Verify(nil, []ed25519.PublicKey{pkgPub}); err != nil {
		t.Fatal(err)
	}
	// Downgrading the advertised version invalidates the v2 signature.
	rs.PairingVersion = 0
	if err := rs.Verify(nil, []ed25519.PublicKey{pkgPub}); err == nil {
		t.Fatal("v2-signed key verified in v1 settings")
	}
	// And a v1 signature does not carry into a v2 round.
	rs.PKGs[0].Sig = ed25519.Sign(pkgPriv, PKGKeyMessage(9, masterKey))
	if err := rs.Verify(nil, []ed25519.PublicKey{pkgPub}); err != nil {
		t.Fatal(err)
	}
	rs.PairingVersion = 2
	if err := rs.Verify(nil, []ed25519.PublicKey{pkgPub}); err == nil {
		t.Fatal("v1-signed key verified in v2 settings")
	}
}
