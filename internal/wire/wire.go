// Package wire defines Alpenhorn's binary message formats and a small
// error-sticky codec used to serialize them.
//
// Two properties of the encoding matter for metadata privacy:
//
//  1. Requests are FIXED SIZE. Every client submits exactly one
//     equally-sized onion per round (real or cover), so an observer learns
//     nothing from request sizes or presence.
//  2. Encodings are canonical: signatures are computed over the serialized
//     bytes, so there must be exactly one encoding per message.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Service identifies which of Alpenhorn's two protocols a round belongs to.
type Service uint8

const (
	// AddFriend is the add-friend protocol (§4).
	AddFriend Service = 1
	// Dialing is the dialing protocol (§5).
	Dialing Service = 2
)

// String implements fmt.Stringer.
func (s Service) String() string {
	switch s {
	case AddFriend:
		return "addfriend"
	case Dialing:
		return "dialing"
	default:
		return fmt.Sprintf("service(%d)", uint8(s))
	}
}

// Buffer is an append-only encoder. Write methods never fail.
type Buffer struct {
	b []byte
}

// NewBuffer returns an encoder, optionally wrapping an existing slice.
func NewBuffer(b []byte) *Buffer { return &Buffer{b: b} }

// Bytes returns the encoded bytes.
func (w *Buffer) Bytes() []byte { return w.b }

// Uint8 appends a byte.
func (w *Buffer) Uint8(v uint8) { w.b = append(w.b, v) }

// Uint32 appends a big-endian uint32.
func (w *Buffer) Uint32(v uint32) {
	w.b = binary.BigEndian.AppendUint32(w.b, v)
}

// Uint64 appends a big-endian uint64.
func (w *Buffer) Uint64(v uint64) {
	w.b = binary.BigEndian.AppendUint64(w.b, v)
}

// Raw appends bytes with no length prefix (fixed-size fields).
func (w *Buffer) Raw(v []byte) { w.b = append(w.b, v...) }

// Bytes16 appends a 16-bit length prefix followed by the bytes.
func (w *Buffer) Bytes16(v []byte) {
	if len(v) > 1<<16-1 {
		panic("wire: Bytes16 value too long")
	}
	w.b = binary.BigEndian.AppendUint16(w.b, uint16(len(v)))
	w.b = append(w.b, v...)
}

// Bytes32 appends a 32-bit length prefix followed by the bytes.
func (w *Buffer) Bytes32(v []byte) {
	if len(v) > 1<<31 {
		panic("wire: Bytes32 value too long")
	}
	w.b = binary.BigEndian.AppendUint32(w.b, uint32(len(v)))
	w.b = append(w.b, v...)
}

// String16 appends a length-prefixed string.
func (w *Buffer) String16(v string) { w.Bytes16([]byte(v)) }

// PaddedString appends a string into a fixed-size field: 1 length byte plus
// size content bytes (zero padded). It panics if the string is too long;
// callers validate lengths at API boundaries.
func (w *Buffer) PaddedString(v string, size int) {
	if len(v) > size || size > 255 {
		panic("wire: string does not fit padded field")
	}
	w.b = append(w.b, uint8(len(v)))
	w.b = append(w.b, v...)
	w.b = append(w.b, make([]byte, size-len(v))...)
}

// ErrShortMessage is returned when a decode runs past the end of input.
var ErrShortMessage = errors.New("wire: message too short")

// Reader is an error-sticky decoder: after the first failure, all further
// reads return zero values and Err() reports the failure.
type Reader struct {
	b   []byte
	err error
}

// NewReader returns a decoder over b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) }

// AllConsumed sets an error if any input remains (canonical encodings must
// consume everything).
func (r *Reader) AllConsumed() error {
	if r.err == nil && len(r.b) != 0 {
		r.err = fmt.Errorf("wire: %d trailing bytes", len(r.b))
	}
	return r.err
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = ErrShortMessage
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

// Uint8 reads one byte.
func (r *Reader) Uint8() uint8 {
	v := r.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

// Uint32 reads a big-endian uint32.
func (r *Reader) Uint32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint32(v)
}

// Uint64 reads a big-endian uint64.
func (r *Reader) Uint64() uint64 {
	v := r.take(8)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint64(v)
}

// Raw reads exactly n bytes (copied).
func (r *Reader) Raw(n int) []byte {
	v := r.take(n)
	if v == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, v)
	return out
}

// Bytes16 reads a 16-bit length-prefixed byte string.
func (r *Reader) Bytes16() []byte {
	v := r.take(2)
	if v == nil {
		return nil
	}
	return r.Raw(int(binary.BigEndian.Uint16(v)))
}

// Bytes32 reads a 32-bit length-prefixed byte string.
func (r *Reader) Bytes32() []byte {
	v := r.take(4)
	if v == nil {
		return nil
	}
	n := binary.BigEndian.Uint32(v)
	if uint64(n) > uint64(len(r.b)) {
		r.err = ErrShortMessage
		return nil
	}
	return r.Raw(int(n))
}

// String16 reads a length-prefixed string.
func (r *Reader) String16() string { return string(r.Bytes16()) }

// PaddedString reads a fixed-size string field written by
// Buffer.PaddedString.
func (r *Reader) PaddedString(size int) string {
	n := r.Uint8()
	content := r.take(size)
	if content == nil {
		return ""
	}
	if int(n) > size {
		r.err = fmt.Errorf("wire: padded string length %d exceeds field size %d", n, size)
		return ""
	}
	for _, b := range content[n:] {
		if b != 0 {
			r.err = errors.New("wire: nonzero padding in padded string")
			return ""
		}
	}
	return string(content[:n])
}
