package wire

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"time"
)

// RouteSpec is one mixer daemon's forwarding assignment for a round
// (mix.round.route): where its post-shuffle output goes and, when its
// chain position is sharded across machines, its place in the shard
// group. The zero shard fields describe an unsharded daemon, which the
// route surface treats exactly like a pre-shard chain-forward route.
type RouteSpec struct {
	NumMailboxes uint32
	ChunkSize    int
	// Successors is the NEXT position's full shard set (one address for
	// an unsharded successor); empty for the last position, which
	// publishes to CDNAddr instead. Only a group's merge server carries
	// either.
	Successors []string
	CDNAddr    string
	// Shard-group placement: this daemon is shard ShardIndex of
	// ShardCount serving its position; non-merge shards deposit their
	// peeled slice at MergeAddr. NumUpstream is how many upstream
	// end-of-streams close the daemon's onion intake (0 = 1).
	ShardIndex  int
	ShardCount  int
	MergeAddr   string
	NumUpstream int
	// BuildShards switches the LAST position's merge server to sharded
	// mailbox building: after the merged shuffle it deals request bodies
	// by mailbox ID to these addresses (its own shard group, in shard
	// order, merge member included at its own shard index) instead of
	// building every mailbox itself. Each shard, merge member included,
	// then builds its own mailbox-ID range and publishes it over its own
	// shard-tagged cdn.publish stream. Non-merge shards of such a group
	// carry CDNAddr (their publish target) but empty BuildShards.
	BuildShards []string
	// DeadlineMs bounds the daemon's data-plane work for the round:
	// peer-dial retries (successor streams, merge deposits, deal slices)
	// give up once the deadline passes instead of burning the whole
	// round against a dead peer. Milliseconds from route receipt; 0
	// means no deadline (legacy coordinators).
	DeadlineMs int64
}

// MixerRoundStats is one daemon's self-reported accounting for its
// data-plane role in a round, returned by the mix.round.wait long-poll:
// how long the role took (route open → resolution) and the batch bytes
// that crossed the daemon (onion intake + merge deposits in, forwarding +
// publishing out). The coordinator aggregates these into per-round health.
type MixerRoundStats struct {
	Duration time.Duration
	BytesIn  uint64
	BytesOut uint64
	// AbortReason classifies how the daemon's round ended so the
	// coordinator's scheduler can tell a slow daemon from a crashed or
	// misbehaving one: "" (completed), AbortSlow (round deadline),
	// AbortCrashed (peer transport failure), AbortUpstream (another
	// daemon aborted first), or AbortError (local failure).
	AbortReason string
}

// Abort-reason codes carried in MixerRoundStats.AbortReason.
const (
	AbortSlow     = "slow"
	AbortCrashed  = "crashed"
	AbortUpstream = "upstream"
	AbortError    = "error"
)

// RoundSettings describes everything a client needs to participate in one
// round of one protocol: the per-round keys of every mixer and (for
// add-friend rounds) every PKG, and the number of mailboxes. The
// coordinator assembles the settings; each server's contribution carries a
// signature under that server's long-term key so that clients can verify
// the settings against the keys pinned in the software package (§3.3).
type RoundSettings struct {
	Service Service
	Round   uint32

	// NumMailboxes is K in Algorithm 1: clients send to mailbox
	// H(recipient) mod K.
	NumMailboxes uint32

	// Mixers holds the per-round onion keys for each mixnet server, in
	// chain order (clients encrypt for index 0 last).
	Mixers []MixerRoundKey

	// PKGs holds the per-round IBE master public keys (add-friend rounds
	// only; empty for dialing).
	PKGs []PKGRoundKey

	// PairingVersion is the sealed-ciphertext tier negotiated for the
	// round: 0 and 1 both mean the v1 Tate tier (0 is simply "field
	// absent"), 2 means the optimal-ate v2 tier. The encoding is a single
	// trailing byte appended ONLY when the version is ≥ 2, so v1 settings
	// marshal byte-identically to pre-capability encodings and old
	// decoders reject v2 settings (trailing garbage) rather than silently
	// mis-keying a round. PKG round keys are domain-separated per version
	// (PKGKeyMessage vs PKGKeyMessageV2), so a round's signatures pin its
	// tier: a coordinator cannot advertise v2 over v1-signed keys.
	PairingVersion uint8
}

// PairingV2 reports whether the settings negotiate the optimal-ate v2
// sealed-ciphertext tier.
func (rs *RoundSettings) PairingV2() bool { return rs.PairingVersion >= 2 }

// MixerRoundKey is one mixer's per-round onion key, signed with the mixer's
// long-term ed25519 key over (service, round, key).
type MixerRoundKey struct {
	OnionKey []byte // 32-byte X25519 public key
	Sig      []byte // 64-byte ed25519 signature
}

// MixerKeyMessage returns the canonical bytes a mixer signs for its round
// key announcement.
func MixerKeyMessage(s Service, round uint32, onionKey []byte) []byte {
	b := NewBuffer(nil)
	b.Raw([]byte("alpenhorn/mixer-round-key:"))
	b.Uint8(uint8(s))
	b.Uint32(round)
	b.Raw(onionKey)
	return b.Bytes()
}

// PKGRoundKey is one PKG's per-round IBE master public key, signed with the
// PKG's long-term ed25519 key over (round, key).
type PKGRoundKey struct {
	MasterKey []byte // 128-byte IBE master public key
	Sig       []byte // 64-byte ed25519 signature
}

// PKGKeyMessage returns the canonical bytes a PKG signs for its round
// master key announcement.
func PKGKeyMessage(round uint32, masterKey []byte) []byte {
	b := NewBuffer(nil)
	b.Raw([]byte("alpenhorn/pkg-round-key:"))
	b.Uint32(round)
	b.Raw(masterKey)
	return b.Bytes()
}

// PKGKeyMessageV2 returns the canonical bytes a PKG signs when announcing
// a round key for the optimal-ate v2 tier. The domain tag differs from
// PKGKeyMessage so a signature binds the key to ONE pairing version: a
// v1 announcement cannot be replayed into a v2 round or vice versa.
func PKGKeyMessageV2(round uint32, masterKey []byte) []byte {
	b := NewBuffer(nil)
	b.Raw([]byte("alpenhorn/pkg-round-key-v2:"))
	b.Uint32(round)
	b.Raw(masterKey)
	return b.Bytes()
}

// Verify checks every signature in the settings against the given pinned
// long-term server keys (one per mixer, one per PKG, in order). It returns
// an error describing the first failure.
func (rs *RoundSettings) Verify(mixerKeys, pkgKeys []ed25519.PublicKey) error {
	if len(rs.Mixers) != len(mixerKeys) {
		return fmt.Errorf("wire: settings have %d mixers, expected %d", len(rs.Mixers), len(mixerKeys))
	}
	if len(rs.PKGs) != len(pkgKeys) {
		return fmt.Errorf("wire: settings have %d PKGs, expected %d", len(rs.PKGs), len(pkgKeys))
	}
	if rs.NumMailboxes == 0 || rs.NumMailboxes == CoverMailbox {
		return errors.New("wire: invalid mailbox count")
	}
	for i, m := range rs.Mixers {
		msg := MixerKeyMessage(rs.Service, rs.Round, m.OnionKey)
		if !ed25519.Verify(mixerKeys[i], msg, m.Sig) {
			return fmt.Errorf("wire: bad signature from mixer %d", i)
		}
	}
	for i, p := range rs.PKGs {
		msg := PKGKeyMessage(rs.Round, p.MasterKey)
		if rs.PairingV2() {
			msg = PKGKeyMessageV2(rs.Round, p.MasterKey)
		}
		if !ed25519.Verify(pkgKeys[i], msg, p.Sig) {
			return fmt.Errorf("wire: bad signature from PKG %d", i)
		}
	}
	return nil
}

// Marshal encodes the settings.
func (rs *RoundSettings) Marshal() []byte {
	b := NewBuffer(nil)
	b.Uint8(uint8(rs.Service))
	b.Uint32(rs.Round)
	b.Uint32(rs.NumMailboxes)
	b.Uint8(uint8(len(rs.Mixers)))
	for _, m := range rs.Mixers {
		b.Bytes16(m.OnionKey)
		b.Bytes16(m.Sig)
	}
	b.Uint8(uint8(len(rs.PKGs)))
	for _, p := range rs.PKGs {
		b.Bytes16(p.MasterKey)
		b.Bytes16(p.Sig)
	}
	// The pairing-version capability byte is appended only for v2+ so
	// that v1 settings stay byte-identical to the pre-capability format.
	if rs.PairingV2() {
		b.Uint8(rs.PairingVersion)
	}
	return b.Bytes()
}

// UnmarshalRoundSettings decodes settings encoded with Marshal.
func UnmarshalRoundSettings(data []byte) (*RoundSettings, error) {
	r := NewReader(data)
	rs := &RoundSettings{
		Service:      Service(r.Uint8()),
		Round:        r.Uint32(),
		NumMailboxes: r.Uint32(),
	}
	nMixers := int(r.Uint8())
	for i := 0; i < nMixers; i++ {
		rs.Mixers = append(rs.Mixers, MixerRoundKey{
			OnionKey: r.Bytes16(),
			Sig:      r.Bytes16(),
		})
	}
	nPKGs := int(r.Uint8())
	for i := 0; i < nPKGs; i++ {
		rs.PKGs = append(rs.PKGs, PKGRoundKey{
			MasterKey: r.Bytes16(),
			Sig:       r.Bytes16(),
		})
	}
	// A single leftover byte ≥ 2 is the pairing-version capability; any
	// other trailing bytes are garbage. (A leftover byte < 2 is rejected
	// too: v1 settings encode the version by omission.)
	if r.Err() == nil && r.Remaining() == 1 {
		v := r.Uint8()
		if v < 2 {
			return nil, errors.New("wire: invalid pairing version byte")
		}
		rs.PairingVersion = v
	}
	if err := r.AllConsumed(); err != nil {
		return nil, err
	}
	return rs, nil
}
