package wire

import (
	"crypto/sha256"
	"encoding/binary"
)

// MailboxID computes the mailbox a user's incoming requests land in:
// H(email) mod K (Algorithm 1, step 2a). Both senders and recipients
// compute it the same way, so no directory lookup — and therefore no
// metadata leak — is needed.
func MailboxID(email string, numMailboxes uint32) uint32 {
	if numMailboxes == 0 {
		panic("wire: zero mailboxes")
	}
	h := sha256.Sum256(append([]byte("alpenhorn/mailbox:"), email...))
	return uint32(binary.BigEndian.Uint64(h[:8]) % uint64(numMailboxes))
}
