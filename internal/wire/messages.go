package wire

import (
	"crypto/ed25519"
	"errors"
	"fmt"

	"alpenhorn/internal/ibe"
	"alpenhorn/internal/keywheel"
	"alpenhorn/internal/onionbox"
)

// Protocol size constants. Every client's request in a round serializes to
// exactly the same number of bytes; these constants pin down that size.
const (
	// MaxEmailLen bounds Alpenhorn usernames (email addresses).
	MaxEmailLen = 64

	// emailFieldSize is the wire size of a padded email field.
	emailFieldSize = 1 + MaxEmailLen

	// FriendRequestSize is the fixed plaintext size of a friend request
	// (the paper's Figure 3 structure): padded email + signing key +
	// sender signature + PKG multisignature + dialing DH key + dialing
	// round.
	FriendRequestSize = emailFieldSize + 32 + 64 + 64 + 32 + 4

	// EncryptedFriendRequestSize is a friend request after IBE
	// encryption. (The paper reports 244+64 = 308 bytes with compressed
	// BN-256 points; our uncompressed BN254 encoding is larger — see
	// EXPERIMENTS.md.)
	EncryptedFriendRequestSize = FriendRequestSize + ibe.Overhead

	// AddFriendPayloadSize is the innermost mixnet payload for the
	// add-friend protocol: destination mailbox ID plus the IBE
	// ciphertext (Algorithm 1, step 2).
	AddFriendPayloadSize = 4 + EncryptedFriendRequestSize

	// DialPayloadSize is the innermost mixnet payload for the dialing
	// protocol: destination mailbox ID plus a 256-bit dial token.
	DialPayloadSize = 4 + keywheel.TokenSize
)

// PayloadSize returns the innermost mixnet payload size for a service.
func PayloadSize(s Service) int {
	switch s {
	case AddFriend:
		return AddFriendPayloadSize
	case Dialing:
		return DialPayloadSize
	default:
		panic("wire: unknown service")
	}
}

// OnionSize returns the size of a client request onion for a service
// through n mixnet hops.
func OnionSize(s Service, n int) int {
	return onionbox.OnionSize(PayloadSize(s), n)
}

// FriendRequest is the plaintext of an add-friend message (Figure 3 of the
// paper). SenderSig covers (SenderEmail, SenderKey, DialingKey,
// DialingRound); PKGSigs is the PKGs' BLS multisignature over (SenderEmail,
// SenderKey, Round) issued during key extraction.
type FriendRequest struct {
	SenderEmail  string
	SenderKey    ed25519.PublicKey // long-term signing key
	SenderSig    []byte            // 64-byte ed25519 signature
	PKGSigs      []byte            // 64-byte BLS multisignature
	DialingKey   []byte            // 32-byte X25519 ephemeral public key
	DialingRound uint32            // keywheel start round (w)
}

// SigningMessage returns the canonical bytes covered by SenderSig.
func (fr *FriendRequest) SigningMessage() []byte {
	b := NewBuffer(nil)
	b.Raw([]byte("alpenhorn/friend-request-sig:"))
	b.PaddedString(fr.SenderEmail, MaxEmailLen)
	b.Raw(fr.SenderKey)
	b.Raw(fr.DialingKey)
	b.Uint32(fr.DialingRound)
	return b.Bytes()
}

// AttestationMessage returns the canonical bytes that each PKG signs when a
// user extracts their round key: the binding of identity to long-term key
// for one round (§4.5).
func AttestationMessage(email string, signingKey ed25519.PublicKey, round uint32) []byte {
	b := NewBuffer(nil)
	b.Raw([]byte("alpenhorn/pkg-attestation:"))
	b.PaddedString(email, MaxEmailLen)
	b.Raw(signingKey)
	b.Uint32(round)
	return b.Bytes()
}

// Marshal encodes the friend request into exactly FriendRequestSize bytes.
func (fr *FriendRequest) Marshal() ([]byte, error) {
	if len(fr.SenderEmail) > MaxEmailLen {
		return nil, fmt.Errorf("wire: email longer than %d bytes", MaxEmailLen)
	}
	if len(fr.SenderKey) != ed25519.PublicKeySize {
		return nil, errors.New("wire: bad sender key size")
	}
	if len(fr.SenderSig) != ed25519.SignatureSize {
		return nil, errors.New("wire: bad sender signature size")
	}
	if len(fr.PKGSigs) != 64 {
		return nil, errors.New("wire: bad PKG multisignature size")
	}
	if len(fr.DialingKey) != 32 {
		return nil, errors.New("wire: bad dialing key size")
	}
	b := NewBuffer(make([]byte, 0, FriendRequestSize))
	b.PaddedString(fr.SenderEmail, MaxEmailLen)
	b.Raw(fr.SenderKey)
	b.Raw(fr.SenderSig)
	b.Raw(fr.PKGSigs)
	b.Raw(fr.DialingKey)
	b.Uint32(fr.DialingRound)
	out := b.Bytes()
	if len(out) != FriendRequestSize {
		panic("wire: friend request size drifted")
	}
	return out, nil
}

// UnmarshalFriendRequest decodes a friend request.
func UnmarshalFriendRequest(data []byte) (*FriendRequest, error) {
	if len(data) != FriendRequestSize {
		return nil, fmt.Errorf("wire: friend request is %d bytes, want %d", len(data), FriendRequestSize)
	}
	r := NewReader(data)
	fr := &FriendRequest{
		SenderEmail:  r.PaddedString(MaxEmailLen),
		SenderKey:    ed25519.PublicKey(r.Raw(32)),
		SenderSig:    r.Raw(64),
		PKGSigs:      r.Raw(64),
		DialingKey:   r.Raw(32),
		DialingRound: r.Uint32(),
	}
	if err := r.AllConsumed(); err != nil {
		return nil, err
	}
	return fr, nil
}

// MixPayload is the innermost payload of a request onion: the destination
// mailbox and the opaque request body (an encrypted friend request, or a
// dial token). Mailbox == CoverMailbox marks cover traffic that the last
// mixer discards.
type MixPayload struct {
	Mailbox uint32
	Body    []byte
}

// CoverMailbox is the sentinel mailbox ID for cover traffic. Real mailbox
// IDs are 0 ≤ id < NumMailboxes < CoverMailbox.
const CoverMailbox = ^uint32(0)

// Marshal encodes the payload; Body length is implied by the service.
func (m *MixPayload) Marshal() []byte {
	b := NewBuffer(make([]byte, 0, 4+len(m.Body)))
	b.Uint32(m.Mailbox)
	b.Raw(m.Body)
	return b.Bytes()
}

// UnmarshalMixPayload decodes a payload for the given service.
func UnmarshalMixPayload(s Service, data []byte) (*MixPayload, error) {
	if len(data) != PayloadSize(s) {
		return nil, fmt.Errorf("wire: %s payload is %d bytes, want %d", s, len(data), PayloadSize(s))
	}
	r := NewReader(data)
	m := &MixPayload{
		Mailbox: r.Uint32(),
		Body:    r.Raw(len(data) - 4),
	}
	return m, r.AllConsumed()
}
