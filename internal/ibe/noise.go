package ibe

import (
	"io"

	"alpenhorn/internal/bn254"
)

// RandomCiphertext returns a blob indistinguishable from a real encryption
// of a msgLen-byte message: a uniformly random G2 point where rP would be,
// followed by uniformly random bytes where the AEAD output would be.
//
// This is how mixnet servers manufacture noise for add-friend mailboxes
// (§6). Indistinguishability relies on the ciphertext anonymity of
// Boneh-Franklin IBE (§4.3): real ciphertexts carry no recipient- or
// sender-dependent structure.
func RandomCiphertext(rand io.Reader, msgLen int) ([]byte, error) {
	r, err := bn254.RandomScalar(rand)
	if err != nil {
		return nil, err
	}
	u := new(bn254.G2).ScalarBaseMult(r)
	out := make([]byte, 0, msgLen+Overhead)
	out = append(out, u.Marshal()...)
	tail := make([]byte, msgLen+Overhead-128)
	if _, err := io.ReadFull(rand, tail); err != nil {
		return nil, err
	}
	return append(out, tail...), nil
}
