package ibe

import (
	"io"
	"math/big"

	"alpenhorn/internal/bn254"
)

// RandomCiphertext returns a blob indistinguishable from a real encryption
// of a msgLen-byte message: a uniformly random G2 point where rP would be,
// followed by uniformly random bytes where the AEAD output would be.
//
// This is how mixnet servers manufacture noise for add-friend mailboxes
// (§6). Indistinguishability relies on the ciphertext anonymity of
// Boneh-Franklin IBE (§4.3): real ciphertexts carry no recipient- or
// sender-dependent structure.
func RandomCiphertext(rand io.Reader, msgLen int) ([]byte, error) {
	outs, err := RandomCiphertexts(rand, msgLen, 1)
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// RandomCiphertexts generates n noise blobs in one pass: the comb-table
// scalar multiplications run in Jacobian form and share one affine-
// conversion inversion (bn254.G2ScalarBaseMultBatch). Randomness is
// consumed in exactly the per-message order of repeated RandomCiphertext
// calls — scalar i, then tail i — so a deterministic rand source produces
// byte-identical noise either way (a unit test pins this).
func RandomCiphertexts(rand io.Reader, msgLen, n int) ([][]byte, error) {
	outs := make([][]byte, n)
	scalars := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		r, err := bn254.RandomScalar(rand)
		if err != nil {
			return nil, err
		}
		scalars[i] = r
		buf := make([]byte, msgLen+Overhead)
		if _, err := io.ReadFull(rand, buf[128:]); err != nil {
			return nil, err
		}
		outs[i] = buf
	}
	for i, u := range bn254.G2ScalarBaseMultBatch(scalars) {
		copy(outs[i][:128], u.Marshal())
	}
	return outs, nil
}
