package ibe

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"testing"
)

// detRand is a deterministic io.Reader (a sha256 counter stream) for
// pinning randomness-consumption compatibility.
type detRand struct {
	seed []byte
	ctr  uint64
	buf  []byte
}

func newDetRand(seed string) *detRand { return &detRand{seed: []byte(seed)} }

func (d *detRand) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if len(d.buf) == 0 {
			h := sha256.New()
			h.Write(d.seed)
			var ctr [8]byte
			binary.BigEndian.PutUint64(ctr[:], d.ctr)
			d.ctr++
			h.Write(ctr[:])
			d.buf = h.Sum(nil)
		}
		c := copy(p, d.buf)
		d.buf = d.buf[c:]
		p = p[c:]
	}
	return n, nil
}

// mixedBatch builds a ciphertext batch interleaving real ciphertexts for
// the identity with foreign, corrupted, truncated, and noise blobs.
func mixedBatch(t testing.TB, mpk *MasterPublicKey, identity string) [][]byte {
	t.Helper()
	enc := func(id string, msg []byte) []byte {
		c, err := Encrypt(rand.Reader, mpk, id, msg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	good := enc(identity, []byte("hello from the batch"))
	corruptPoint := append([]byte(nil), good...)
	corruptPoint[17] ^= 1 // breaks the G2 encoding
	corruptTag := append([]byte(nil), enc(identity, []byte("doomed"))...)
	corruptTag[len(corruptTag)-1] ^= 1 // valid point, AEAD failure
	noise, err := RandomCiphertext(rand.Reader, 24)
	if err != nil {
		t.Fatal(err)
	}
	return [][]byte{
		good,
		enc("someone-else@example.org", []byte("not for us")),
		corruptPoint,
		[]byte{1, 2, 3}, // too short
		nil,
		corruptTag,
		noise,
		enc(identity, []byte("second real message")),
	}
}

// TestDecryptBatchMatchesDecrypt pins DecryptBatch element-wise against
// the scalar Decrypt on a batch interleaving every failure mode.
func TestDecryptBatchMatchesDecrypt(t *testing.T) {
	pubs, privs := setupN(t, 2)
	mpk := AggregateMasterKeys(pubs...)
	const identity = "bob@example.org"
	ipk := AggregatePrivateKeys(
		Extract(privs[0], identity),
		Extract(privs[1], identity),
	)
	ctxts := mixedBatch(t, mpk, identity)

	for _, precompute := range []bool{false, true} {
		if precompute {
			ipk.Precompute()
		}
		msgs, oks := DecryptBatch(ipk, ctxts)
		for i, c := range ctxts {
			wantMsg, wantOK := Decrypt(ipk, c)
			if oks[i] != wantOK || !bytes.Equal(msgs[i], wantMsg) {
				t.Fatalf("precompute=%v element %d: batch (%q, %v) != single (%q, %v)",
					precompute, i, msgs[i], oks[i], wantMsg, wantOK)
			}
		}
		if !oks[0] || !oks[7] {
			t.Fatal("batch rejected genuine ciphertexts")
		}
		if oks[1] || oks[2] || oks[3] || oks[4] || oks[5] || oks[6] {
			t.Fatal("batch accepted a foreign/corrupt/noise ciphertext")
		}
	}

	// Erased key: the batch must mirror the scalar path's rejections.
	ipk.Erase()
	msgs, oks := DecryptBatch(ipk, ctxts)
	for i, c := range ctxts {
		wantMsg, wantOK := Decrypt(ipk, c)
		if oks[i] != wantOK || !bytes.Equal(msgs[i], wantMsg) {
			t.Fatalf("erased key element %d: batch (%q, %v) != single (%q, %v)",
				i, msgs[i], oks[i], wantMsg, wantOK)
		}
	}
}

// TestRandomCiphertextsDeterministic pins the randomness-consumption
// order of the batched noise generator: with the same deterministic rand
// stream, RandomCiphertexts(n) must emit byte-identical blobs to n
// sequential RandomCiphertext calls.
func TestRandomCiphertextsDeterministic(t *testing.T) {
	const n, msgLen = 5, 48
	batched, err := RandomCiphertexts(newDetRand("noise-seed"), msgLen, n)
	if err != nil {
		t.Fatal(err)
	}
	seq := newDetRand("noise-seed")
	for i := 0; i < n; i++ {
		want, err := RandomCiphertext(seq, msgLen)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(batched[i], want) {
			t.Fatalf("noise blob %d differs between batched and sequential generation", i)
		}
		if len(want) != msgLen+Overhead {
			t.Fatalf("noise blob %d has length %d, want %d", i, len(want), msgLen+Overhead)
		}
	}
}

// TestDecryptBatchAllocations ratchets per-ciphertext heap allocations of
// the batched scan path. The bn254 pipeline underneath is pinned at zero
// allocations separately; at this layer a warm batch pays the result
// slices, one plaintext arena, and one AES key schedule per accepted
// element (gcmOpen; the pooled scratch absorbs the hash state and GHASH
// buffers). That lands well under 2 allocations per ciphertext — versus
// ~4.5 through the scalar stdlib AEAD path — and both tiers must hold
// the bound.
func TestDecryptBatchAllocations(t *testing.T) {
	pubs, privs := setupN(t, 1)
	const identity = "bob@example.org"
	ipk := Extract(privs[0], identity).Precompute().PrecomputeV2()
	const n = 4
	ctxts := make([][]byte, n)
	ctxtsV2 := make([][]byte, n)
	for i := range ctxts {
		c, err := Encrypt(rand.Reader, pubs[0], identity, []byte("msg"))
		if err != nil {
			t.Fatal(err)
		}
		ctxts[i] = c
		c2, err := EncryptV2(rand.Reader, pubs[0], identity, []byte("msg"))
		if err != nil {
			t.Fatal(err)
		}
		ctxtsV2[i] = c2
	}
	// Warm the scratch pool.
	DecryptBatch(ipk, ctxts)
	DecryptBatchV2(ipk, ctxtsV2)

	batched := testing.AllocsPerRun(3, func() {
		DecryptBatch(ipk, ctxts)
	}) / n
	batchedV2 := testing.AllocsPerRun(3, func() {
		DecryptBatchV2(ipk, ctxtsV2)
	}) / n
	scalar := testing.AllocsPerRun(3, func() {
		for _, c := range ctxts {
			Decrypt(ipk, c)
		}
	}) / n
	if batched > 2 {
		t.Fatalf("batched v1 path allocates %.2f/ctxt; want ≤ 2", batched)
	}
	if batchedV2 > 2 {
		t.Fatalf("batched v2 path allocates %.2f/ctxt; want ≤ 2", batchedV2)
	}
	if batched > scalar {
		t.Fatalf("batched path allocates %.2f/ctxt, more than the scalar path's %.2f/ctxt", batched, scalar)
	}
	t.Logf("allocations per ciphertext: batched v1 %.2f, v2 %.2f vs scalar %.2f", batched, batchedV2, scalar)
}

// FuzzDecryptBatchMatchesDecrypt asserts element-wise equivalence of
// DecryptBatch and Decrypt on adversarial batches: fuzz-derived blobs
// (arbitrary lengths, corrupted points, non-subgroup points) interleaved
// with a genuine ciphertext. The genuine element must keep decrypting
// correctly no matter what surrounds it — an invalid neighbor must never
// poison the shared-inversion pass.
func FuzzDecryptBatchMatchesDecrypt(f *testing.F) {
	pub, priv, err := Setup(rand.Reader)
	if err != nil {
		f.Fatal(err)
	}
	const identity = "bob@example.org"
	ipk := Extract(priv, identity).Precompute()
	secret := []byte("the real message")
	good, err := Encrypt(rand.Reader, pub, identity, secret)
	if err != nil {
		f.Fatal(err)
	}

	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, Overhead))
	f.Add(append([]byte(nil), good...))
	corrupt := append([]byte(nil), good...)
	corrupt[31] ^= 0xff
	f.Add(corrupt)
	// A twist point outside the prime-order subgroup: the small multiple
	// [3]·(curve point from x=0 search space) is easiest built by
	// perturbing a valid encoding until it lands on-curve off-subgroup;
	// seed with a tweaked y to let the fuzzer explore that region.
	offSub := append([]byte(nil), good...)
	offSub[127] ^= 2
	f.Add(offSub)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Slice the fuzz input into up to 6 blobs of plausible lengths.
		var ctxts [][]byte
		ctxts = append(ctxts, good)
		for len(data) > 0 && len(ctxts) < 7 {
			n := Overhead + 8
			if n > len(data) {
				n = len(data)
			}
			ctxts = append(ctxts, data[:n])
			data = data[n:]
		}
		ctxts = append(ctxts, good)

		msgs, oks := DecryptBatch(ipk, ctxts)
		for i, c := range ctxts {
			wantMsg, wantOK := Decrypt(ipk, c)
			if oks[i] != wantOK || !bytes.Equal(msgs[i], wantMsg) {
				t.Fatalf("element %d (%d bytes): batch (%q, %v) != single (%q, %v)",
					i, len(c), msgs[i], oks[i], wantMsg, wantOK)
			}
		}
		if !oks[0] || !bytes.Equal(msgs[0], secret) || !oks[len(ctxts)-1] {
			t.Fatal("genuine ciphertext was poisoned by its batch neighbors")
		}
	})
}
