package ibe

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"testing"

	"alpenhorn/internal/bn254"
)

// deterministicReader yields an unbounded keyed stream so two Encrypt
// calls can be replayed byte-for-byte.
type deterministicReader struct {
	key   []byte
	block [sha256.Size]byte
	off   int
	ctr   uint64
}

func (d *deterministicReader) Read(p []byte) (int, error) {
	for i := range p {
		if d.off == 0 {
			h := sha256.New()
			h.Write(d.key)
			var c [8]byte
			for j := 0; j < 8; j++ {
				c[j] = byte(d.ctr >> (8 * j))
			}
			h.Write(c[:])
			h.Sum(d.block[:0])
			d.ctr++
		}
		p[i] = d.block[d.off]
		d.off = (d.off + 1) % sha256.Size
	}
	return len(p), nil
}

// TestEncryptFoldedExponentMatchesGTExp pins the Encrypt hot-path rewrite:
// folding the randomizer into the G1 argument (e(r·Q, mpk)) must produce
// the exact ciphertext bytes of the original formula (e(Q, mpk)^r), for
// the same randomness.
func TestEncryptFoldedExponentMatchesGTExp(t *testing.T) {
	pub, _, err := Setup(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("fold the exponent into the curve")

	ctxt, err := Encrypt(&deterministicReader{key: []byte("pin")}, pub, "bob@example.org", msg)
	if err != nil {
		t.Fatal(err)
	}

	// The original construction, replayed on the same stream.
	rnd := &deterministicReader{key: []byte("pin")}
	r, err := bn254.RandomScalar(rnd)
	if err != nil {
		t.Fatal(err)
	}
	u := new(bn254.G2).ScalarBaseMult(r)
	q := bn254.HashToG1("bf-ibe-identity", []byte("bob@example.org"))
	g := bn254.Pair(q, pub.p)
	g.Exp(g, r)
	want := append(u.Marshal(), aeadSeal(sealKey(g), msg)...)

	if !bytes.Equal(ctxt, want) {
		t.Fatal("folded-exponent Encrypt changed ciphertext bytes")
	}
}

// TestPrecomputeEquivalence checks that precomputed keys encrypt and
// decrypt identically to plain keys, across aggregation and erasure.
func TestPrecomputeEquivalence(t *testing.T) {
	pub1, priv1, err := Setup(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	pub2, priv2, err := Setup(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	agg := AggregateMasterKeys(pub1, pub2)
	combined := AggregatePrivateKeys(
		Extract(priv1, "carol@example.org"),
		Extract(priv2, "carol@example.org"),
	)

	// Same randomness, precomputed vs not: identical ciphertext.
	plain, err := Encrypt(&deterministicReader{key: []byte("eq")}, agg, "carol@example.org", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	aggPre := AggregateMasterKeys(pub1, pub2).Precompute()
	pre, err := Encrypt(&deterministicReader{key: []byte("eq")}, aggPre, "carol@example.org", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, pre) {
		t.Fatal("precomputed master key changed ciphertext bytes")
	}

	// Decrypt with and without the identity-key precomputation.
	if pt, ok := Decrypt(combined, plain); !ok || string(pt) != "hi" {
		t.Fatal("plain decrypt failed")
	}
	combined.Precompute()
	if pt, ok := Decrypt(combined, plain); !ok || string(pt) != "hi" {
		t.Fatal("precomputed decrypt failed")
	}

	// Wrong-identity trial decryption must still fail cleanly on the
	// precomputed path (the mailbox-scan rejection case).
	other := AggregatePrivateKeys(
		Extract(priv1, "dave@example.org"),
		Extract(priv2, "dave@example.org"),
	).Precompute()
	if _, ok := Decrypt(other, plain); ok {
		t.Fatal("precomputed decrypt accepted someone else's ciphertext")
	}

	// Erase drops the precomputation along with the key.
	combined.Precompute()
	combined.Erase()
	if combined.pre != nil {
		t.Fatal("Erase left the Miller-loop precomputation behind")
	}
	if _, ok := Decrypt(combined, plain); ok {
		t.Fatal("erased key still decrypts")
	}
}
