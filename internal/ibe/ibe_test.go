package ibe

import (
	"bytes"
	"crypto/rand"
	"testing"
)

func setupN(t testing.TB, n int) (pubs []*MasterPublicKey, privs []*MasterPrivateKey) {
	t.Helper()
	for i := 0; i < n; i++ {
		pub, priv, err := Setup(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		pubs = append(pubs, pub)
		privs = append(privs, priv)
	}
	return pubs, privs
}

func TestEncryptDecryptSinglePKG(t *testing.T) {
	pubs, privs := setupN(t, 1)
	msg := []byte("hello bob, this is alice")
	ctxt, err := Encrypt(rand.Reader, pubs[0], "bob@example.org", msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ctxt) != len(msg)+Overhead {
		t.Fatalf("ciphertext length %d, want %d", len(ctxt), len(msg)+Overhead)
	}
	key := Extract(privs[0], "bob@example.org")
	got, ok := Decrypt(key, ctxt)
	if !ok {
		t.Fatal("decryption failed")
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("wrong plaintext")
	}
}

func TestDecryptWrongIdentityFails(t *testing.T) {
	pubs, privs := setupN(t, 1)
	ctxt, err := Encrypt(rand.Reader, pubs[0], "bob@example.org", []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	evil := Extract(privs[0], "eve@example.org")
	if _, ok := Decrypt(evil, ctxt); ok {
		t.Fatal("decryption with wrong identity key succeeded")
	}
}

func TestAnytrustAggregation(t *testing.T) {
	// The paper's core construction: encrypt under ΣMᵢpub, decrypt with
	// Σ identityᵢpriv (§4.2).
	pubs, privs := setupN(t, 3)
	agg := AggregateMasterKeys(pubs...)

	msg := []byte("anytrust friend request payload")
	ctxt, err := Encrypt(rand.Reader, agg, "bob@example.org", msg)
	if err != nil {
		t.Fatal(err)
	}

	var idKeys []*IdentityPrivateKey
	for _, priv := range privs {
		idKeys = append(idKeys, Extract(priv, "bob@example.org"))
	}
	combined := AggregatePrivateKeys(idKeys...)

	got, ok := Decrypt(combined, ctxt)
	if !ok {
		t.Fatal("anytrust decryption failed")
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("wrong plaintext")
	}
}

func TestAnytrustMissingShareFails(t *testing.T) {
	// Decrypting with only 2 of 3 identity key shares must fail: this is
	// exactly why one honest PKG (whose share the adversary lacks)
	// protects the ciphertext.
	pubs, privs := setupN(t, 3)
	agg := AggregateMasterKeys(pubs...)
	ctxt, err := Encrypt(rand.Reader, agg, "bob@example.org", []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	partial := AggregatePrivateKeys(
		Extract(privs[0], "bob@example.org"),
		Extract(privs[1], "bob@example.org"),
	)
	if _, ok := Decrypt(partial, ctxt); ok {
		t.Fatal("decryption without all shares succeeded")
	}
}

func TestCiphertextSizeIndependentOfPKGCount(t *testing.T) {
	msg := make([]byte, 100)
	for _, n := range []int{1, 3, 10} {
		pubs, _ := setupN(t, n)
		agg := AggregateMasterKeys(pubs...)
		ctxt, err := Encrypt(rand.Reader, agg, "bob@example.org", msg)
		if err != nil {
			t.Fatal(err)
		}
		if len(ctxt) != len(msg)+Overhead {
			t.Fatalf("n=%d: ciphertext length %d varies with PKG count", n, len(ctxt))
		}
	}
}

func TestCiphertextAnonymity(t *testing.T) {
	// Ciphertexts must not reveal the recipient: with the recipient's
	// key erased, the only component visible is a random group element
	// and an AEAD blob. We check the structural property that ciphertexts
	// to different identities are indistinguishable in form, and that a
	// mailbox scanner cannot distinguish "not for me" from "noise"
	// (both simply fail to decrypt).
	pubs, privs := setupN(t, 1)
	c1, _ := Encrypt(rand.Reader, pubs[0], "bob@example.org", make([]byte, 64))
	c2, _ := Encrypt(rand.Reader, pubs[0], "carol@example.org", make([]byte, 64))
	if len(c1) != len(c2) {
		t.Fatal("ciphertext lengths differ by identity")
	}
	key := Extract(privs[0], "dave@example.org")
	if _, ok := Decrypt(key, c1); ok {
		t.Fatal("scanner decrypted someone else's message")
	}
	if _, ok := Decrypt(key, c2); ok {
		t.Fatal("scanner decrypted someone else's message")
	}
}

func TestDecryptCorruptedCiphertext(t *testing.T) {
	pubs, privs := setupN(t, 1)
	ctxt, _ := Encrypt(rand.Reader, pubs[0], "bob@example.org", []byte("msg"))
	key := Extract(privs[0], "bob@example.org")

	for _, i := range []int{0, 64, 130, len(ctxt) - 1} {
		bad := bytes.Clone(ctxt)
		bad[i] ^= 0xff
		if _, ok := Decrypt(key, bad); ok {
			t.Fatalf("corrupted ciphertext (byte %d) decrypted", i)
		}
	}
	if _, ok := Decrypt(key, ctxt[:Overhead-1]); ok {
		t.Fatal("short ciphertext decrypted")
	}
}

func TestMasterKeyMarshalRoundTrip(t *testing.T) {
	pubs, privs := setupN(t, 1)
	pk2, err := UnmarshalMasterPublicKey(pubs[0].Marshal())
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip must preserve encryption compatibility.
	ctxt, _ := Encrypt(rand.Reader, pk2, "bob@example.org", []byte("m"))
	key := Extract(privs[0], "bob@example.org")
	if _, ok := Decrypt(key, ctxt); !ok {
		t.Fatal("round-tripped master key broke encryption")
	}

	sk2, err := UnmarshalMasterPrivateKey(privs[0].Marshal())
	if err != nil {
		t.Fatal(err)
	}
	key2 := Extract(sk2, "bob@example.org")
	if _, ok := Decrypt(key2, ctxt); !ok {
		t.Fatal("round-tripped master secret broke extraction")
	}
}

func TestIdentityKeyMarshalRoundTrip(t *testing.T) {
	pubs, privs := setupN(t, 1)
	ctxt, _ := Encrypt(rand.Reader, pubs[0], "bob@example.org", []byte("m"))
	key := Extract(privs[0], "bob@example.org")
	key2, err := UnmarshalIdentityPrivateKey(key.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Decrypt(key2, ctxt); !ok {
		t.Fatal("round-tripped identity key broke decryption")
	}
}

func TestErase(t *testing.T) {
	pubs, privs := setupN(t, 1)
	ctxt, _ := Encrypt(rand.Reader, pubs[0], "bob@example.org", []byte("m"))
	key := Extract(privs[0], "bob@example.org")

	privs[0].Erase()
	if !privs[0].Erased() {
		t.Fatal("master key not marked erased")
	}
	key.Erase()
	if _, ok := Decrypt(key, ctxt); ok {
		t.Fatal("erased identity key still decrypts")
	}
}

func TestOnionBaseline(t *testing.T) {
	pubs, privs := setupN(t, 3)
	msg := []byte("onion payload")
	ctxt, err := OnionEncrypt(rand.Reader, pubs, "bob@example.org", msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ctxt) != len(msg)+OnionOverhead(3) {
		t.Fatalf("onion ciphertext length %d, want %d", len(ctxt), len(msg)+OnionOverhead(3))
	}
	var idKeys []*IdentityPrivateKey
	for _, priv := range privs {
		idKeys = append(idKeys, Extract(priv, "bob@example.org"))
	}
	got, ok := OnionDecrypt(idKeys, ctxt)
	if !ok {
		t.Fatal("onion decryption failed")
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("wrong plaintext")
	}
	// Peeling with only two of three keys cannot reach the plaintext:
	// the result is the still-encrypted innermost layer.
	partial, ok := OnionDecrypt(idKeys[:2], ctxt)
	if ok && bytes.Equal(partial, msg) {
		t.Fatal("onion decryption with missing layer recovered plaintext")
	}
	// And using the wrong identity's keys fails outright at layer one.
	var wrongKeys []*IdentityPrivateKey
	for _, priv := range privs {
		wrongKeys = append(wrongKeys, Extract(priv, "eve@example.org"))
	}
	if _, ok := OnionDecrypt(wrongKeys, ctxt); ok {
		t.Fatal("onion decryption under wrong identity succeeded")
	}
	if _, err := OnionEncrypt(rand.Reader, nil, "x", msg); err == nil {
		t.Fatal("onion encryption with zero keys succeeded")
	}
}
