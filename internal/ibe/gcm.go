package ibe

import (
	"crypto/aes"
	"crypto/subtle"
	"encoding/binary"
)

// Hand-rolled AES-GCM opening for the batched scan path. The stdlib route
// (aes.NewCipher + cipher.NewGCM + Open) costs four heap allocations per
// ciphertext — the dominant allocation cost of DecryptBatch once the bn254
// pipeline underneath runs at zero. Driving the GCM mode by hand over the
// raw cipher.Block gets trial decryption down to ONE allocation per
// ciphertext (the AES key schedule), with plaintexts carved from a shared
// per-batch arena.
//
// GHASH uses Shoup's 4-bit table method. Table indices are ciphertext
// nibbles — public data — so lookups are not secret-dependent; the table
// CONTENTS depend on the hash key but are only ever XORed. Tag comparison
// is constant-time, and the ciphertext is only decrypted after the tag
// verifies. The stdlib path (aeadOpen) is retained untouched on the scalar
// Decrypt/DecryptV2 routes, and differential + fuzz tests pin this
// implementation against it on every batch shape.

const gcmTagSize = 16

// gf128 is an element of GF(2¹²⁸) in the GCM convention: bits are stored
// big-endian, so the coefficient of x⁰ is lo>>63 and the coefficient of
// x¹²⁷ is hi&1 ("doubling" is therefore a right shift).
type gf128 struct {
	lo, hi uint64
}

// gf128Double multiplies x by the polynomial x, reducing by the GCM
// modulus 1 + x + x² + x⁷ + x¹²⁸.
func gf128Double(x gf128) (d gf128) {
	msbSet := x.hi&1 == 1
	d.hi = x.hi >> 1
	d.hi |= x.lo << 63
	d.lo = x.lo >> 1
	if msbSet {
		d.lo ^= 0xe100000000000000
	}
	return
}

// gf128ReverseBits reverses the bit order of a 4-bit value — table slots
// are indexed by data nibbles, whose bits arrive in the reverse of the
// field's coefficient order.
func gf128ReverseBits(i int) int {
	i = ((i << 2) & 0xc) | ((i >> 2) & 0x3)
	i = ((i << 1) & 0xa) | ((i >> 1) & 0x5)
	return i
}

// gf128ReductionTable folds the four low-degree terms of the modulus for
// each possible 4-bit carry-out of a shift-by-16 step.
var gf128ReductionTable = [16]uint16{
	0x0000, 0x1c20, 0x3840, 0x2460, 0x7080, 0x6ca0, 0x48c0, 0x54e0,
	0xe100, 0xfd20, 0xd940, 0xc560, 0x9180, 0x8da0, 0xa9c0, 0xb5e0,
}

// ghashTable holds the sixteen multiples {0·H, 1·H, …, 15·H} of the hash
// key in bit-reversed slot order.
type ghashTable [16]gf128

func newGhashTable(h *[16]byte) (tbl ghashTable) {
	x := gf128{
		lo: binary.BigEndian.Uint64(h[:8]),
		hi: binary.BigEndian.Uint64(h[8:]),
	}
	tbl[gf128ReverseBits(1)] = x
	for i := 2; i < 16; i += 2 {
		tbl[gf128ReverseBits(i)] = gf128Double(tbl[gf128ReverseBits(i/2)])
		d := tbl[gf128ReverseBits(i)]
		tbl[gf128ReverseBits(i+1)] = gf128{d.lo ^ x.lo, d.hi ^ x.hi}
	}
	return
}

// mul sets y = y·H, four bits at a time: shift y through z nibble-wise,
// folding each carry through the reduction table and adding the matching
// precomputed multiple of H.
func (tbl *ghashTable) mul(y *gf128) {
	var z gf128
	for i := 0; i < 2; i++ {
		word := y.hi
		if i == 1 {
			word = y.lo
		}
		for j := 0; j < 64; j += 4 {
			msw := z.hi & 0xf
			z.hi >>= 4
			z.hi |= z.lo << 60
			z.lo >>= 4
			z.lo ^= uint64(gf128ReductionTable[msw]) << 48
			t := &tbl[word&0xf]
			z.lo ^= t.lo
			z.hi ^= t.hi
			word >>= 4
		}
	}
	*y = z
}

// absorb folds data into the running GHASH state y (Horner's rule), zero-
// padding the trailing partial block per the GCM spec.
func (tbl *ghashTable) absorb(y *gf128, data []byte) {
	for len(data) >= 16 {
		y.lo ^= binary.BigEndian.Uint64(data)
		y.hi ^= binary.BigEndian.Uint64(data[8:])
		tbl.mul(y)
		data = data[16:]
	}
	if len(data) > 0 {
		var partial [16]byte
		copy(partial[:], data)
		y.lo ^= binary.BigEndian.Uint64(partial[:8])
		y.hi ^= binary.BigEndian.Uint64(partial[8:])
		tbl.mul(y)
	}
}

// gcmScratch holds the block-sized buffers gcmOpen feeds through the
// cipher.Block interface. Escape analysis cannot keep slices that cross an
// interface call on the stack, so these live in the (pooled) caller
// scratch instead of allocating four times per ciphertext.
type gcmScratch struct {
	h, ctr, expect, ks [16]byte
}

// gcmOpen verifies and decrypts box (ciphertext ‖ 16-byte tag) under key
// with the all-zero 12-byte nonce and no additional data — exactly the
// parameters of aeadSeal/aeadOpen, whose keys are unique per encryption.
// The plaintext is appended to dst (a zero-length slice with capacity
// len(box)−16 plus a reused scr keep the call at one allocation: the AES
// key schedule); nil is returned on authentication failure, before any
// plaintext byte is produced.
func gcmOpen(key, dst, box []byte, scr *gcmScratch) ([]byte, bool) {
	if len(box) < gcmTagSize {
		return nil, false
	}
	if scr == nil {
		scr = new(gcmScratch)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		panic("ibe: " + err.Error())
	}
	ct := box[:len(box)-gcmTagSize]
	tag := box[len(box)-gcmTagSize:]

	// Hash key H = E_K(0¹²⁸).
	scr.h = [16]byte{}
	block.Encrypt(scr.h[:], scr.h[:])
	tbl := newGhashTable(&scr.h)

	// S = GHASH_H(C ‖ len(A)·8 ‖ len(C)·8), with A empty.
	var y gf128
	tbl.absorb(&y, ct)
	y.hi ^= uint64(len(ct)) * 8
	tbl.mul(&y)

	// Expected tag = S ⊕ E_K(J₀), J₀ = nonce ‖ 0x00000001.
	scr.ctr = [16]byte{}
	scr.ctr[15] = 1
	block.Encrypt(scr.expect[:], scr.ctr[:])
	binary.BigEndian.PutUint64(scr.expect[:8], binary.BigEndian.Uint64(scr.expect[:8])^y.lo)
	binary.BigEndian.PutUint64(scr.expect[8:], binary.BigEndian.Uint64(scr.expect[8:])^y.hi)
	if subtle.ConstantTimeCompare(scr.expect[:], tag) != 1 {
		return nil, false
	}

	// CTR keystream from counter 2 (counter 1 fed the tag mask).
	counter := uint32(1)
	for off := 0; off < len(ct); off += 16 {
		counter++
		binary.BigEndian.PutUint32(scr.ctr[12:], counter)
		block.Encrypt(scr.ks[:], scr.ctr[:])
		n := len(ct) - off
		if n > 16 {
			n = 16
		}
		for j := 0; j < n; j++ {
			dst = append(dst, ct[off+j]^scr.ks[j])
		}
	}
	return dst, true
}
