package ibe

import (
	"bytes"
	"crypto/rand"
	"testing"
)

// TestGCMOpenMatchesStdlib pins the hand-rolled GCM opening against the
// stdlib construction it replaces on the batch path: byte-identical
// plaintexts for every message length crossing the block boundaries, and
// identical rejection of tampered tags, tampered ciphertext bytes, and
// truncated boxes.
func TestGCMOpenMatchesStdlib(t *testing.T) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 15, 16, 17, 31, 32, 33, 48, 100, 256} {
		msg := make([]byte, n)
		if _, err := rand.Read(msg); err != nil {
			t.Fatal(err)
		}
		box := aeadSeal(key, msg)
		want, wantOK := aeadOpen(key, box)
		got, ok := gcmOpen(key, make([]byte, 0, n), box, nil)
		if !ok || !wantOK || !bytes.Equal(got, want) || !bytes.Equal(got, msg) {
			t.Fatalf("len %d: gcmOpen (%x, %v) != stdlib (%x, %v)", n, got, ok, want, wantOK)
		}
		for _, idx := range []int{0, len(box) / 2, len(box) - 1} {
			if len(box) == gcmTagSize && idx != len(box)-1 {
				continue
			}
			bad := append([]byte(nil), box...)
			bad[idx] ^= 1
			_, stdOK := aeadOpen(key, bad)
			badDst, handOK := gcmOpen(key, nil, bad, nil)
			if stdOK || handOK {
				t.Fatalf("len %d: tampered byte %d accepted (stdlib %v, hand %v)", n, idx, stdOK, handOK)
			}
			if badDst != nil {
				t.Fatalf("len %d: gcmOpen leaked plaintext on auth failure", n)
			}
		}
	}
	// Truncated and empty boxes reject on both paths.
	for _, box := range [][]byte{nil, {1, 2, 3}, make([]byte, gcmTagSize-1)} {
		if _, ok := gcmOpen(key, nil, box, nil); ok {
			t.Fatalf("gcmOpen accepted a %d-byte box", len(box))
		}
	}
}

// TestGCMOpenAllocations pins the batch-path AEAD at one allocation per
// call (the AES key schedule) when the caller supplies plaintext capacity.
func TestGCMOpenAllocations(t *testing.T) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 48)
	box := aeadSeal(key, msg)
	dst := make([]byte, 0, len(msg))
	scr := new(gcmScratch)
	allocs := testing.AllocsPerRun(10, func() {
		if _, ok := gcmOpen(key, dst, box, scr); !ok {
			t.Fatal("gcmOpen rejected a valid box")
		}
	})
	if allocs > 1 {
		t.Fatalf("gcmOpen allocated %.1f times per call; want ≤ 1", allocs)
	}
}
