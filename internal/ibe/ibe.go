// Package ibe implements Boneh-Franklin identity-based encryption over the
// bn254 pairing group, extended with Alpenhorn's Anytrust-IBE construction
// (§4.2 of the paper, Appendix A).
//
// In Anytrust-IBE there are n independent private-key generators (PKGs).
// Clients encrypt to the SUM of the master public keys and decrypt with the
// SUM of the identity private keys obtained from each PKG. The scheme stays
// secure as long as any single PKG keeps its master secret private, and —
// unlike the naive onion construction, also provided here as the paper's
// baseline (OnionEncrypt) — ciphertext size and decryption time are
// independent of the number of PKGs.
//
// Ciphertexts are anonymous (§4.3): they consist of a uniformly distributed
// group element and an AEAD blob keyed by the pairing value, so they reveal
// nothing about the recipient identity. This property is what lets the
// Alpenhorn mixnet generate indistinguishable noise messages.
package ibe

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"errors"
	"io"
	"math/big"

	"alpenhorn/internal/bn254"
)

// hashToG1Domain domain-separates identity hashing from other uses of the
// curve.
const hashToG1Domain = "bf-ibe-identity"

// Overhead is the ciphertext expansion in bytes: a marshalled G2 point plus
// an AES-GCM tag.
const Overhead = 128 + 16

// MasterPublicKey is a PKG's per-round master public key (or an aggregation
// of several PKGs' keys).
type MasterPublicKey struct {
	p *bn254.G2

	// pre caches the pairing precomputation for p. Set by Precompute;
	// nil keys work identically, just without the cached setup.
	pre *bn254.PrecomputedG2

	// preV2 caches the optimal-ate line ladder for the v2 sealed-
	// ciphertext tier. Set by PrecomputeV2.
	preV2 *bn254.AtePrecomputedG2
}

// Precompute caches the key's pairing evaluation point for repeated
// encryption against the same round key. The savings are small — in the
// Tate pairing the Miller ladder runs on the G1 side, which varies per
// identity in Encrypt, so only the fixed-argument setup is cacheable
// (the per-mailbox decrypt ladder on IdentityPrivateKey.Precompute is
// where fixed-argument precomputation pays). Encrypt produces identical
// ciphertexts either way. Not safe to call concurrently with Encrypt on
// the same key.
func (k *MasterPublicKey) Precompute() *MasterPublicKey {
	k.pre = bn254.PrecomputeG2(k.p)
	return k
}

// MasterPrivateKey is a PKG's per-round master secret.
type MasterPrivateKey struct {
	s *big.Int
}

// IdentityPrivateKey is the decryption key for one identity under one master
// key (or an aggregation of such keys under several masters).
type IdentityPrivateKey struct {
	d *bn254.G1

	// pre caches the fixed-argument Miller-loop line coefficients of d.
	// In the Tate pairing the G1 argument carries the Miller ladder, so a
	// mailbox scan that trial-decrypts thousands of ciphertexts with one
	// key replays the precomputed ladder instead of re-running it.
	pre *bn254.PrecomputedG1

	// preV2 caches the key's evaluation coordinates for the v2 (optimal-
	// ate) scan. Set by PrecomputeV2; scrubbed by Erase like pre.
	preV2 *bn254.AtePrecomputedG1
}

// Precompute runs the Miller-loop ladder for the key once, speeding up
// every subsequent Decrypt. Mailbox scans should call this before
// fanning trial decryptions out across cores. Decryption results are
// identical either way. Not safe to call concurrently with Decrypt on
// the same key.
func (k *IdentityPrivateKey) Precompute() *IdentityPrivateKey {
	k.pre = bn254.PrecomputeG1(k.d)
	return k
}

// Setup generates a fresh master key pair for one PKG.
func Setup(rand io.Reader) (*MasterPublicKey, *MasterPrivateKey, error) {
	s, err := bn254.RandomScalar(rand)
	if err != nil {
		return nil, nil, err
	}
	pub := new(bn254.G2).ScalarBaseMult(s)
	return &MasterPublicKey{p: pub}, &MasterPrivateKey{s: s}, nil
}

// Extract computes the identity private key d = s·H1(id) for an identity.
func Extract(msk *MasterPrivateKey, identity string) *IdentityPrivateKey {
	q := bn254.HashToG1(hashToG1Domain, []byte(identity))
	return &IdentityPrivateKey{d: new(bn254.G1).ScalarMult(q, msk.s)}
}

// AggregateMasterKeys sums master public keys from independent PKGs,
// producing the Anytrust-IBE encryption key Σ Mᵢpub.
func AggregateMasterKeys(keys ...*MasterPublicKey) *MasterPublicKey {
	sum := new(bn254.G2).SetInfinity()
	for _, k := range keys {
		sum.Add(sum, k.p)
	}
	return &MasterPublicKey{p: sum}
}

// AggregatePrivateKeys sums identity private keys issued by independent
// PKGs, producing the Anytrust-IBE decryption key Σ identityᵢpriv.
func AggregatePrivateKeys(keys ...*IdentityPrivateKey) *IdentityPrivateKey {
	sum := new(bn254.G1).SetInfinity()
	for _, k := range keys {
		sum.Add(sum, k.d)
	}
	return &IdentityPrivateKey{d: sum}
}

// sealKey derives the AEAD key from the pairing value.
func sealKey(g *bn254.GT) []byte {
	h := sha256.New()
	h.Write([]byte("alpenhorn/ibe/seal-key:"))
	h.Write(g.Marshal())
	return h.Sum(nil)
}

// aeadSeal encrypts msg under key with a fixed nonce. The key is unique per
// encryption (it is derived from a fresh pairing value), so a fixed nonce is
// safe, mirroring NaCl's ephemeral-key box construction.
func aeadSeal(key, msg []byte) []byte {
	block, err := aes.NewCipher(key)
	if err != nil {
		panic("ibe: " + err.Error())
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		panic("ibe: " + err.Error())
	}
	nonce := make([]byte, gcm.NonceSize())
	return gcm.Seal(nil, nonce, msg, nil)
}

func aeadOpen(key, box []byte) ([]byte, bool) {
	block, err := aes.NewCipher(key)
	if err != nil {
		panic("ibe: " + err.Error())
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		panic("ibe: " + err.Error())
	}
	nonce := make([]byte, gcm.NonceSize())
	msg, err := gcm.Open(nil, nonce, box, nil)
	if err != nil {
		return nil, false
	}
	return msg, true
}

// Encrypt encrypts msg to the given identity under the (possibly aggregated)
// master public key. The ciphertext is len(msg)+Overhead bytes and reveals
// nothing about the identity it is encrypted to.
func Encrypt(rand io.Reader, mpk *MasterPublicKey, identity string, msg []byte) ([]byte, error) {
	r, err := bn254.RandomScalar(rand)
	if err != nil {
		return nil, err
	}
	u := new(bn254.G2).ScalarBaseMult(r)
	q := bn254.HashToG1(hashToG1Domain, []byte(identity))
	// e(Q, mpk)^r = e(r·Q, mpk) by bilinearity: folding r into the cheap
	// G1 scalar multiplication replaces a full GT exponentiation.
	rq := new(bn254.G1).ScalarMult(q, r)
	var g *bn254.GT
	if mpk.pre != nil {
		g = mpk.pre.Pair(rq)
	} else {
		g = bn254.Pair(rq, mpk.p)
	}

	out := make([]byte, 0, len(msg)+Overhead)
	out = append(out, u.Marshal()...)
	out = append(out, aeadSeal(sealKey(g), msg)...)
	return out, nil
}

// Decrypt attempts to decrypt a ciphertext with the given (possibly
// aggregated) identity private key. It returns ok=false if the ciphertext
// is malformed or was not encrypted to this key's identity — callers scan
// whole mailboxes with exactly this check (Algorithm 1, step 4).
func Decrypt(ipk *IdentityPrivateKey, ctxt []byte) ([]byte, bool) {
	if len(ctxt) < Overhead {
		return nil, false
	}
	u := new(bn254.G2)
	if err := u.Unmarshal(ctxt[:128]); err != nil {
		return nil, false
	}
	var g *bn254.GT
	if ipk.pre != nil {
		g = ipk.pre.Pair(u)
	} else {
		g = bn254.Pair(ipk.d, u)
	}
	return aeadOpen(sealKey(g), ctxt[128:])
}

// MasterPublicKeySize and IdentityPrivateKeySize are the marshalled sizes.
const (
	MasterPublicKeySize    = 128
	IdentityPrivateKeySize = 64
)

// Marshal encodes the master public key.
func (k *MasterPublicKey) Marshal() []byte { return k.p.Marshal() }

// UnmarshalMasterPublicKey decodes and validates a master public key.
func UnmarshalMasterPublicKey(data []byte) (*MasterPublicKey, error) {
	p := new(bn254.G2)
	if err := p.Unmarshal(data); err != nil {
		return nil, err
	}
	return &MasterPublicKey{p: p}, nil
}

// Marshal encodes the identity private key.
func (k *IdentityPrivateKey) Marshal() []byte { return k.d.Marshal() }

// UnmarshalIdentityPrivateKey decodes and validates an identity private key.
func UnmarshalIdentityPrivateKey(data []byte) (*IdentityPrivateKey, error) {
	d := new(bn254.G1)
	if err := d.Unmarshal(data); err != nil {
		return nil, err
	}
	return &IdentityPrivateKey{d: d}, nil
}

// Marshal encodes the master private key (used only for tests and for
// in-memory transfer between a PKG's round structures; master secrets are
// never sent on the wire).
func (k *MasterPrivateKey) Marshal() []byte {
	out := make([]byte, 32)
	k.s.FillBytes(out)
	return out
}

// UnmarshalMasterPrivateKey decodes a master private key.
func UnmarshalMasterPrivateKey(data []byte) (*MasterPrivateKey, error) {
	if len(data) != 32 {
		return nil, errors.New("ibe: wrong master private key length")
	}
	s := new(big.Int).SetBytes(data)
	if s.Sign() == 0 || s.Cmp(bn254.Order) >= 0 {
		return nil, errors.New("ibe: master private key out of range")
	}
	return &MasterPrivateKey{s: s}, nil
}

// Erase zeroes the master secret. After Erase the key is unusable; this is
// how PKGs implement forward secrecy for past rounds (§4.4).
func (k *MasterPrivateKey) Erase() {
	k.s.SetInt64(0)
}

// Erase zeroes the identity private key in place, including any pairing
// precomputation (the Miller-loop coefficients determine the key's
// pairing, so they are scrubbed, not just dropped). Clients erase round
// keys after scanning their mailbox (§4.4).
func (k *IdentityPrivateKey) Erase() {
	k.d.SetInfinity()
	if k.pre != nil {
		k.pre.Erase()
		k.pre = nil
	}
	if k.preV2 != nil {
		k.preV2.Erase()
		k.preV2 = nil
	}
}

// Erased reports whether the key has been erased.
func (k *MasterPrivateKey) Erased() bool { return k.s.Sign() == 0 }
