package ibe

import (
	"crypto/sha256"
	"sync"

	"alpenhorn/internal/bn254"
)

// sealKeyPrefix is the domain-separation tag of sealKey, hoisted so the
// batched path can hash it without rebuilding the byte slice.
var sealKeyPrefix = []byte("alpenhorn/ibe/seal-key:")

// batchScratch bundles the reusable buffers of one DecryptBatch call:
// the bn254 pipeline scratch plus the pairing outputs and the hash
// buffers for key derivation. Pooled so concurrent mailbox-scan workers
// each grab a warm set instead of reallocating per chunk.
type batchScratch struct {
	pair   *bn254.PairScratch
	gts    []bn254.GT
	ok     []bool
	raws   [][]byte
	gtBuf  []byte
	keyBuf []byte
}

var batchPool = sync.Pool{
	New: func() interface{} {
		return &batchScratch{
			pair:  bn254.NewPairScratch(0),
			gtBuf: make([]byte, 0, 384),
		}
	},
}

func (s *batchScratch) grow(n int) {
	if cap(s.gts) < n {
		s.gts = make([]bn254.GT, n)
		s.ok = make([]bool, n)
		s.raws = make([][]byte, n)
	}
	s.gts = s.gts[:n]
	s.ok = s.ok[:n]
	s.raws = s.raws[:n]
}

// DecryptBatch trial-decrypts a whole slice of ciphertexts with one key,
// element-wise identical to calling Decrypt on each (msgs[i], oks[i]) ==
// Decrypt(ipk, ctxts[i]) — but sharing the batched pairing pipeline:
// ψ-checked unmarshaling, one Fp12 inversion for the whole batch, and the
// decomposed final exponentiation (see bn254.PairBatch). Malformed or
// foreign ciphertexts yield oks[i] = false without disturbing their
// neighbors. Safe for concurrent calls with the same key, which is how
// the mailbox-scan worker pool uses it.
func DecryptBatch(ipk *IdentityPrivateKey, ctxts [][]byte) ([][]byte, []bool) {
	n := len(ctxts)
	msgs := make([][]byte, n)
	oks := make([]bool, n)
	if n == 0 {
		return msgs, oks
	}
	pre := ipk.pre
	if pre == nil {
		pre = bn254.PrecomputeG1(ipk.d)
	}
	s := batchPool.Get().(*batchScratch)
	s.grow(n)
	for i, c := range ctxts {
		if len(c) < Overhead {
			s.raws[i] = nil // wrong length: flagged invalid by the pipeline
		} else {
			s.raws[i] = c[:128]
		}
	}
	pre.PairBatch(s.raws, s.gts, s.ok, s.pair)
	h := sha256.New()
	for i := range ctxts {
		if !s.ok[i] {
			continue
		}
		h.Reset()
		h.Write(sealKeyPrefix)
		s.gtBuf = s.gts[i].AppendMarshal(s.gtBuf[:0])
		h.Write(s.gtBuf)
		s.keyBuf = h.Sum(s.keyBuf[:0])
		msgs[i], oks[i] = aeadOpen(s.keyBuf, ctxts[i][128:])
	}
	for i := range s.raws {
		s.raws[i] = nil // do not retain caller ciphertexts in the pool
	}
	batchPool.Put(s)
	return msgs, oks
}
