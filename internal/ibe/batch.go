package ibe

import (
	"crypto/sha256"
	"hash"
	"sync"

	"alpenhorn/internal/bn254"
)

// sealKeyPrefix is the domain-separation tag of sealKey, hoisted so the
// batched path can hash it without rebuilding the byte slice.
var sealKeyPrefix = []byte("alpenhorn/ibe/seal-key:")

// batchScratch bundles the reusable buffers of one DecryptBatch call:
// the bn254 pipeline scratch plus the pairing outputs, the hash state for
// key derivation, and the AEAD block buffers. Pooled so concurrent
// mailbox-scan workers each grab a warm set instead of reallocating per
// chunk.
type batchScratch struct {
	pair   *bn254.PairScratch
	gts    []bn254.GT
	ok     []bool
	raws   [][]byte
	gtBuf  []byte
	keyBuf []byte
	h      hash.Hash
	gcm    gcmScratch
}

var batchPool = sync.Pool{
	New: func() interface{} {
		return &batchScratch{
			pair:  bn254.NewPairScratch(0),
			gtBuf: make([]byte, 0, 384),
			h:     sha256.New(),
		}
	},
}

func (s *batchScratch) grow(n int) {
	if cap(s.gts) < n {
		s.gts = make([]bn254.GT, n)
		s.ok = make([]bool, n)
		s.raws = make([][]byte, n)
	}
	s.gts = s.gts[:n]
	s.ok = s.ok[:n]
	s.raws = s.raws[:n]
}

// pairBatcher abstracts the two fixed-key batch pipelines: the v1 Tate
// batch (bn254.PrecomputedG1) and the v2 optimal-ate batch
// (bn254.AtePrecomputedG1). Both share acceptance behavior and the
// batch-inversion structure; only the Miller loop and subgroup check
// differ.
type pairBatcher interface {
	PairBatch(raws [][]byte, dst []bn254.GT, ok []bool, scratch *bn254.PairScratch)
}

// decryptBatch is the version-generic trial-decryption core: the batched
// pairing pipeline, then per-element key derivation (domain-separated by
// prefix) and AEAD opening. Plaintexts are carved from ONE arena
// allocation per batch — the arena escapes to the caller inside msgs, so
// it is deliberately NOT pooled — and the AEAD runs through the
// single-allocation gcmOpen, keeping the whole layer at ~1.2 heap
// allocations per ciphertext (the scalar stdlib path costs ~4.5; a test
// ratchets the bound).
func decryptBatch(pre pairBatcher, prefix []byte, ctxts [][]byte) ([][]byte, []bool) {
	n := len(ctxts)
	msgs := make([][]byte, n)
	oks := make([]bool, n)
	if n == 0 {
		return msgs, oks
	}
	s := batchPool.Get().(*batchScratch)
	s.grow(n)
	for i, c := range ctxts {
		if len(c) < Overhead {
			s.raws[i] = nil // wrong length: flagged invalid by the pipeline
		} else {
			s.raws[i] = c[:128]
		}
	}
	pre.PairBatch(s.raws, s.gts, s.ok, s.pair)
	total := 0
	for i := range ctxts {
		if s.ok[i] {
			total += len(ctxts[i]) - Overhead
		}
	}
	arena := make([]byte, 0, total)
	off := 0
	for i := range ctxts {
		if !s.ok[i] {
			continue
		}
		s.h.Reset()
		s.h.Write(prefix)
		s.gtBuf = s.gts[i].AppendMarshal(s.gtBuf[:0])
		s.h.Write(s.gtBuf)
		s.keyBuf = s.h.Sum(s.keyBuf[:0])
		plen := len(ctxts[i]) - Overhead
		msg, ok := gcmOpen(s.keyBuf, arena[off:off:off+plen], ctxts[i][128:], &s.gcm)
		if ok {
			msgs[i], oks[i] = msg, true
			off += plen
		}
	}
	for i := range s.raws {
		s.raws[i] = nil // do not retain caller ciphertexts in the pool
	}
	batchPool.Put(s)
	return msgs, oks
}

// DecryptBatch trial-decrypts a whole slice of ciphertexts with one key,
// element-wise identical to calling Decrypt on each (msgs[i], oks[i]) ==
// Decrypt(ipk, ctxts[i]) — but sharing the batched pairing pipeline:
// ψ-checked unmarshaling, one Fp12 inversion for the whole batch, and the
// decomposed final exponentiation (see bn254.PairBatch). Malformed or
// foreign ciphertexts yield oks[i] = false without disturbing their
// neighbors. Safe for concurrent calls with the same key, which is how
// the mailbox-scan worker pool uses it.
func DecryptBatch(ipk *IdentityPrivateKey, ctxts [][]byte) ([][]byte, []bool) {
	pre := ipk.pre
	if pre == nil {
		pre = bn254.PrecomputeG1(ipk.d)
	}
	return decryptBatch(pre, sealKeyPrefix, ctxts)
}

// DecryptBatchV2 is DecryptBatch for v2 sealed ciphertexts: element-wise
// identical to DecryptV2 on each, over the optimal-ate batch pipeline
// (~65-iteration Miller loops and the Galbraith–Scott subgroup check; see
// bn254.AtePrecomputedG1.PairBatch). A v1 ciphertext fed to this function
// (or vice versa) fails the AEAD check exactly like any foreign
// ciphertext — the pairing versions derive unrelated keys by construction.
func DecryptBatchV2(ipk *IdentityPrivateKey, ctxts [][]byte) ([][]byte, []bool) {
	pre := ipk.preV2
	if pre == nil {
		pre = bn254.AtePrecomputeG1(ipk.d)
	}
	return decryptBatch(pre, sealKeyV2Prefix, ctxts)
}
