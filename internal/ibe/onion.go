package ibe

import (
	"errors"
	"io"
)

// This file implements the naive multi-PKG construction that §4.2 of the
// paper describes and rejects: onion-encrypting the message under each PKG's
// master public key in turn. It exists as the evaluation baseline for
// Anytrust-IBE (ablation A1 in DESIGN.md): ciphertext size and decryption
// time grow linearly with the number of PKGs, whereas Anytrust-IBE is
// constant in both.

// OnionOverhead returns the ciphertext expansion of the onion construction
// for n PKGs.
func OnionOverhead(n int) int { return n * Overhead }

// OnionEncrypt encrypts msg to identity under each master public key in
// turn (innermost layer is keys[len(keys)-1], matching the paper's
// presentation where server 1 decrypts first).
func OnionEncrypt(rand io.Reader, keys []*MasterPublicKey, identity string, msg []byte) ([]byte, error) {
	if len(keys) == 0 {
		return nil, errors.New("ibe: onion encryption requires at least one key")
	}
	ctxt := msg
	var err error
	for i := len(keys) - 1; i >= 0; i-- {
		ctxt, err = Encrypt(rand, keys[i], identity, ctxt)
		if err != nil {
			return nil, err
		}
	}
	return ctxt, nil
}

// OnionDecrypt peels all layers with per-PKG identity private keys, given in
// the same order as the encryption keys.
func OnionDecrypt(keys []*IdentityPrivateKey, ctxt []byte) ([]byte, bool) {
	msg := ctxt
	var ok bool
	for _, k := range keys {
		msg, ok = Decrypt(k, msg)
		if !ok {
			return nil, false
		}
	}
	return msg, true
}
