package ibe

import (
	"crypto/sha256"
	"io"

	"alpenhorn/internal/bn254"
)

// The v2 sealed-ciphertext tier: byte-for-byte the same wire layout as v1
// (a 128-byte G2 point followed by an AES-GCM blob, Overhead unchanged)
// but keyed by the OPTIMAL-ATE pairing instead of the Tate pairing. The
// two reduced pairings differ by a fixed exponent, so v1 and v2 derive
// unrelated AEAD keys from the same ciphertext bytes: a v2 ciphertext
// scanned with the v1 path (or vice versa) fails authentication exactly
// like a foreign message. Which tier a round uses is negotiated via the
// PairingVersion capability in the round settings (see internal/wire);
// these functions never mix — call sites select Encrypt/Decrypt or
// EncryptV2/DecryptV2 from the negotiated version, and the key-derivation
// domain tags differ as a second line of defense.

// CiphertextV2 is a v2 sealed ciphertext. It is a distinct type from the
// v1 []byte ciphertexts so encrypt-side call sites cannot hand a v2
// ciphertext to a v1 submission path (or vice versa) without an explicit
// conversion; on the wire the two formats are indistinguishable by
// design — anonymity against the mailbox host requires it.
type CiphertextV2 []byte

// sealKeyV2Prefix domain-separates v2 key derivation from v1 (defense in
// depth: the pairing values already differ).
var sealKeyV2Prefix = []byte("alpenhorn/ibe/seal-key-v2:")

// sealKeyV2 derives the v2 AEAD key from an ate pairing value.
func sealKeyV2(g *bn254.GT) []byte {
	h := sha256.New()
	h.Write(sealKeyV2Prefix)
	h.Write(g.Marshal())
	return h.Sum(nil)
}

// PrecomputeV2 caches the optimal-ate line ladder of the key for repeated
// v2 encryption against the same round key. Unlike the v1 Precompute —
// where the Tate ladder runs on the varying G1 side and only the
// evaluation point is cacheable — the ate ladder runs over THIS fixed G2
// argument, so v2 encryption replays ~90 precomputed line triples instead
// of re-running the twist arithmetic per message. EncryptV2 produces
// identical ciphertexts either way. Not safe to call concurrently with
// EncryptV2 on the same key.
func (k *MasterPublicKey) PrecomputeV2() *MasterPublicKey {
	k.preV2 = bn254.AtePrecomputeG2(k.p)
	return k
}

// PrecomputeV2 caches the key's evaluation coordinates for the v2 scan.
// The ate Miller ladder runs over the varying ciphertext element, so —
// dual to the v1 Precompute, and the reverse of the encrypt side — there
// are no lines to replay for a fixed G1 key: the v2 scan's win is the
// ~4x shorter loop itself, not line replay. DecryptV2/DecryptBatchV2
// results are identical either way. Not safe to call concurrently with
// DecryptV2 on the same key.
func (k *IdentityPrivateKey) PrecomputeV2() *IdentityPrivateKey {
	k.preV2 = bn254.AtePrecomputeG1(k.d)
	return k
}

// EncryptV2 encrypts msg to the given identity under the (possibly
// aggregated) master public key using the v2 sealed-ciphertext tier. The
// ciphertext is len(msg)+Overhead bytes, reveals nothing about the
// identity, and is indistinguishable on the wire from a v1 ciphertext.
func EncryptV2(rand io.Reader, mpk *MasterPublicKey, identity string, msg []byte) (CiphertextV2, error) {
	r, err := bn254.RandomScalar(rand)
	if err != nil {
		return nil, err
	}
	u := new(bn254.G2).ScalarBaseMult(r)
	q := bn254.HashToG1(hashToG1Domain, []byte(identity))
	// a(Q, mpk)^r = a(r·Q, mpk) by bilinearity, as in v1.
	rq := new(bn254.G1).ScalarMult(q, r)
	var g *bn254.GT
	if mpk.preV2 != nil {
		g = mpk.preV2.Pair(rq)
	} else {
		g = bn254.AtePair(rq, mpk.p)
	}

	out := make(CiphertextV2, 0, len(msg)+Overhead)
	out = append(out, u.Marshal()...)
	out = append(out, aeadSeal(sealKeyV2(g), msg)...)
	return out, nil
}

// DecryptV2 attempts to decrypt a v2 ciphertext with the given (possibly
// aggregated) identity private key, returning ok=false if the ciphertext
// is malformed, keyed to another identity, or sealed under the v1 tier.
// Like Decrypt it is the scalar oracle for its batch path: it unmarshals
// through the full Order-ladder subgroup check and opens through the
// stdlib AEAD, and differential tests pin DecryptBatchV2 against it
// element-wise.
func DecryptV2(ipk *IdentityPrivateKey, ctxt CiphertextV2) ([]byte, bool) {
	if len(ctxt) < Overhead {
		return nil, false
	}
	u := new(bn254.G2)
	if err := u.Unmarshal(ctxt[:128]); err != nil {
		return nil, false
	}
	var g *bn254.GT
	if ipk.preV2 != nil {
		g = ipk.preV2.Pair(u)
	} else {
		g = bn254.AtePair(ipk.d, u)
	}
	return aeadOpen(sealKeyV2(g), ctxt[128:])
}
