package ibe

import (
	"bytes"
	"crypto/rand"
	"testing"
)

// TestV2RoundTrip pins the v2 tier end to end: encrypt/decrypt round-trips
// for plain, aggregated, and precomputed keys, with the same Overhead and
// wire shape as v1.
func TestV2RoundTrip(t *testing.T) {
	pubs, privs := setupN(t, 2)
	mpk := AggregateMasterKeys(pubs...)
	const identity = "bob@example.org"
	ipk := AggregatePrivateKeys(
		Extract(privs[0], identity),
		Extract(privs[1], identity),
	)
	msg := []byte("sealed under the ate loop")
	ctxt, err := EncryptV2(rand.Reader, mpk, identity, msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ctxt) != len(msg)+Overhead {
		t.Fatalf("v2 ciphertext is %d bytes, want %d", len(ctxt), len(msg)+Overhead)
	}
	got, ok := DecryptV2(ipk, ctxt)
	if !ok || !bytes.Equal(got, msg) {
		t.Fatalf("v2 round trip failed: (%q, %v)", got, ok)
	}
	// Precomputed keys must produce identical ciphertext semantics.
	mpk.PrecomputeV2()
	ipk.PrecomputeV2()
	ctxt2, err := EncryptV2(rand.Reader, mpk, identity, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, ok = DecryptV2(ipk, ctxt2)
	if !ok || !bytes.Equal(got, msg) {
		t.Fatalf("precomputed v2 round trip failed: (%q, %v)", got, ok)
	}
	if _, ok := DecryptV2(ipk, ctxt); !ok {
		t.Fatal("precomputed key rejected a plain-key ciphertext")
	}
	// Wrong identity rejects.
	other := AggregatePrivateKeys(
		Extract(privs[0], "eve@example.org"),
		Extract(privs[1], "eve@example.org"),
	)
	if _, ok := DecryptV2(other, ctxt); ok {
		t.Fatal("v2 ciphertext decrypted under the wrong identity")
	}
	// Erased keys reject, scrubbing the v2 precompute too.
	ipk.Erase()
	if ipk.preV2 != nil {
		t.Fatal("Erase left the v2 precomputation behind")
	}
	if _, ok := DecryptV2(ipk, ctxt); ok {
		t.Fatal("erased key still decrypts v2 ciphertexts")
	}
}

// TestV2V1Separation pins the tier separation: the same wire bytes sealed
// under one pairing version never open under the other, in either the
// scalar or batched paths. This is the client-visible face of the fixed-
// exponent relation between the two pairings.
func TestV2V1Separation(t *testing.T) {
	pubs, privs := setupN(t, 1)
	const identity = "bob@example.org"
	ipk := Extract(privs[0], identity)
	msg := []byte("tier-locked")
	v1, err := Encrypt(rand.Reader, pubs[0], identity, msg)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := EncryptV2(rand.Reader, pubs[0], identity, msg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := DecryptV2(ipk, CiphertextV2(v1)); ok {
		t.Fatal("v1 ciphertext opened under the v2 tier")
	}
	if _, ok := Decrypt(ipk, []byte(v2)); ok {
		t.Fatal("v2 ciphertext opened under the v1 tier")
	}
	_, oks := DecryptBatchV2(ipk, [][]byte{v1, v2, v1})
	if oks[0] || !oks[1] || oks[2] {
		t.Fatalf("v2 batch acceptance %v, want [false true false]", oks)
	}
	_, oks = DecryptBatch(ipk, [][]byte{v2, v1, v2})
	if oks[0] || !oks[1] || oks[2] {
		t.Fatalf("v1 batch acceptance %v, want [false true false]", oks)
	}
}

// mixedBatchV2 is mixedBatch for the v2 tier.
func mixedBatchV2(t testing.TB, mpk *MasterPublicKey, identity string) [][]byte {
	t.Helper()
	enc := func(id string, msg []byte) []byte {
		c, err := EncryptV2(rand.Reader, mpk, id, msg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	good := enc(identity, []byte("hello from the v2 batch"))
	corruptPoint := append([]byte(nil), good...)
	corruptPoint[17] ^= 1
	corruptTag := append([]byte(nil), enc(identity, []byte("doomed"))...)
	corruptTag[len(corruptTag)-1] ^= 1
	noise, err := RandomCiphertext(rand.Reader, 24)
	if err != nil {
		t.Fatal(err)
	}
	return [][]byte{
		good,
		enc("someone-else@example.org", []byte("not for us")),
		corruptPoint,
		[]byte{1, 2, 3},
		nil,
		corruptTag,
		noise,
		enc(identity, []byte("second real v2 message")),
	}
}

// TestDecryptBatchV2MatchesDecryptV2 pins DecryptBatchV2 element-wise
// against the scalar DecryptV2 on a batch interleaving every failure
// mode, for plain, precomputed, and erased keys — the same contract the
// v1 differential test enforces.
func TestDecryptBatchV2MatchesDecryptV2(t *testing.T) {
	pubs, privs := setupN(t, 2)
	mpk := AggregateMasterKeys(pubs...)
	const identity = "bob@example.org"
	ipk := AggregatePrivateKeys(
		Extract(privs[0], identity),
		Extract(privs[1], identity),
	)
	ctxts := mixedBatchV2(t, mpk, identity)

	check := func(label string) {
		t.Helper()
		msgs, oks := DecryptBatchV2(ipk, ctxts)
		for i, c := range ctxts {
			wantMsg, wantOK := DecryptV2(ipk, c)
			if oks[i] != wantOK || !bytes.Equal(msgs[i], wantMsg) {
				t.Fatalf("%s element %d: batch (%q, %v) != single (%q, %v)",
					label, i, msgs[i], oks[i], wantMsg, wantOK)
			}
		}
	}
	check("plain")
	msgs, oks := DecryptBatchV2(ipk, ctxts)
	if !oks[0] || !oks[7] {
		t.Fatal("v2 batch rejected genuine ciphertexts")
	}
	if oks[1] || oks[2] || oks[3] || oks[4] || oks[5] || oks[6] {
		t.Fatal("v2 batch accepted a foreign/corrupt/noise ciphertext")
	}
	if !bytes.Equal(msgs[0], []byte("hello from the v2 batch")) {
		t.Fatalf("v2 batch plaintext mismatch: %q", msgs[0])
	}
	ipk.PrecomputeV2()
	check("precomputed")
	ipk.Erase()
	check("erased")
}

// FuzzDecryptBatchV2MatchesDecryptV2 is the v2 decode fuzz target:
// adversarial blobs (arbitrary lengths, corrupted points, non-subgroup
// points probing the Galbraith–Scott check) interleaved with a genuine v2
// ciphertext, asserting batch/scalar equivalence and that invalid
// neighbors never poison the shared-inversion pass.
func FuzzDecryptBatchV2MatchesDecryptV2(f *testing.F) {
	pub, priv, err := Setup(rand.Reader)
	if err != nil {
		f.Fatal(err)
	}
	const identity = "bob@example.org"
	ipk := Extract(priv, identity).PrecomputeV2()
	secret := []byte("the real v2 message")
	good, err := EncryptV2(rand.Reader, pub, identity, secret)
	if err != nil {
		f.Fatal(err)
	}

	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, Overhead))
	f.Add(append([]byte(nil), good...))
	corrupt := append([]byte(nil), good...)
	corrupt[31] ^= 0xff
	f.Add(corrupt)
	offSub := append([]byte(nil), good...)
	offSub[127] ^= 2
	f.Add(offSub)

	f.Fuzz(func(t *testing.T, data []byte) {
		var ctxts [][]byte
		ctxts = append(ctxts, good)
		for len(data) > 0 && len(ctxts) < 7 {
			n := Overhead + 8
			if n > len(data) {
				n = len(data)
			}
			ctxts = append(ctxts, data[:n])
			data = data[n:]
		}
		ctxts = append(ctxts, good)

		msgs, oks := DecryptBatchV2(ipk, ctxts)
		for i, c := range ctxts {
			wantMsg, wantOK := DecryptV2(ipk, c)
			if oks[i] != wantOK || !bytes.Equal(msgs[i], wantMsg) {
				t.Fatalf("element %d (%d bytes): batch (%q, %v) != single (%q, %v)",
					i, len(c), msgs[i], oks[i], wantMsg, wantOK)
			}
		}
		if !oks[0] || !bytes.Equal(msgs[0], secret) || !oks[len(ctxts)-1] {
			t.Fatal("genuine v2 ciphertext was poisoned by its batch neighbors")
		}
	})
}
