// Package bls implements Boneh-Lynn-Shacham short signatures and
// multisignatures over the bn254 pairing group.
//
// Alpenhorn uses BLS for the PKGSigs field of friend requests (§4.5): every
// PKG signs the tuple (identity, long-term signing key, round), and the
// client combines the signatures into a single 64-byte multisignature. A
// recipient that trusts ANY one PKG can verify that the sender's key is
// genuine by checking the multisignature against the sum of all PKG public
// keys.
package bls

import (
	"errors"
	"io"
	"math/big"

	"alpenhorn/internal/bn254"
)

const hashDomain = "bls-signature"

// Sizes of marshalled keys and signatures in bytes.
const (
	PublicKeySize  = 128
	SignatureSize  = 64
	PrivateKeySize = 32
)

// PrivateKey is a BLS signing key.
type PrivateKey struct {
	x *big.Int
}

// PublicKey is a BLS verification key (or an aggregation of several).
type PublicKey struct {
	p *bn254.G2
}

// Signature is a BLS signature (or a multisignature).
type Signature struct {
	s *bn254.G1
}

// GenerateKey creates a new key pair.
func GenerateKey(rand io.Reader) (*PublicKey, *PrivateKey, error) {
	x, err := bn254.RandomScalar(rand)
	if err != nil {
		return nil, nil, err
	}
	return &PublicKey{p: new(bn254.G2).ScalarBaseMult(x)}, &PrivateKey{x: x}, nil
}

// Sign signs msg: σ = x·H(msg) ∈ G1.
func Sign(priv *PrivateKey, msg []byte) *Signature {
	h := bn254.HashToG1(hashDomain, msg)
	return &Signature{s: new(bn254.G1).ScalarMult(h, priv.x)}
}

// Verify reports whether sig is a valid signature on msg under pub,
// checking e(σ, G2) == e(H(m), pk) via a combined pairing check.
func Verify(pub *PublicKey, msg []byte, sig *Signature) bool {
	if pub == nil || sig == nil || sig.s.IsInfinity() {
		return false
	}
	h := bn254.HashToG1(hashDomain, msg)
	negG2 := new(bn254.G2).Neg(bn254.G2Generator())
	return bn254.PairingCheck(
		[]*bn254.G1{sig.s, h},
		[]*bn254.G2{negG2, pub.p},
	)
}

// AggregateSignatures combines signatures from independent signers over the
// SAME message into one multisignature.
func AggregateSignatures(sigs ...*Signature) *Signature {
	sum := new(bn254.G1).SetInfinity()
	for _, s := range sigs {
		sum.Add(sum, s.s)
	}
	return &Signature{s: sum}
}

// AggregatePublicKeys combines verification keys; a multisignature over a
// message verifies against the aggregation of the signers' keys.
//
// Note on rogue-key attacks: Alpenhorn's PKG keys are long-term and pinned
// in the client software package (§3.3), so the adversary cannot choose a
// PKG key as a function of the honest keys; plain aggregation is therefore
// safe in this deployment model.
func AggregatePublicKeys(pubs ...*PublicKey) *PublicKey {
	sum := new(bn254.G2).SetInfinity()
	for _, p := range pubs {
		sum.Add(sum, p.p)
	}
	return &PublicKey{p: sum}
}

// Marshal encodes the public key.
func (p *PublicKey) Marshal() []byte { return p.p.Marshal() }

// UnmarshalPublicKey decodes and validates a public key (curve and subgroup
// checks included).
func UnmarshalPublicKey(data []byte) (*PublicKey, error) {
	q := new(bn254.G2)
	if err := q.Unmarshal(data); err != nil {
		return nil, err
	}
	return &PublicKey{p: q}, nil
}

// Equal reports whether two public keys are the same point.
func (p *PublicKey) Equal(o *PublicKey) bool { return p.p.Equal(o.p) }

// Marshal encodes the signature.
func (s *Signature) Marshal() []byte { return s.s.Marshal() }

// UnmarshalSignature decodes and validates a signature.
func UnmarshalSignature(data []byte) (*Signature, error) {
	p := new(bn254.G1)
	if err := p.Unmarshal(data); err != nil {
		return nil, err
	}
	return &Signature{s: p}, nil
}

// Marshal encodes the private key.
func (k *PrivateKey) Marshal() []byte {
	out := make([]byte, PrivateKeySize)
	k.x.FillBytes(out)
	return out
}

// UnmarshalPrivateKey decodes a private key.
func UnmarshalPrivateKey(data []byte) (*PrivateKey, error) {
	if len(data) != PrivateKeySize {
		return nil, errors.New("bls: wrong private key length")
	}
	x := new(big.Int).SetBytes(data)
	if x.Sign() == 0 || x.Cmp(bn254.Order) >= 0 {
		return nil, errors.New("bls: private key out of range")
	}
	return &PrivateKey{x: x}, nil
}

// Public returns the public key corresponding to k.
func (k *PrivateKey) Public() *PublicKey {
	return &PublicKey{p: new(bn254.G2).ScalarBaseMult(k.x)}
}
