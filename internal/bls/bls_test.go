package bls

import (
	"crypto/rand"
	"testing"

	"alpenhorn/internal/bn254"
)

func TestSignVerify(t *testing.T) {
	pub, priv, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("alice@example.org|signing-key|round-42")
	sig := Sign(priv, msg)
	if !Verify(pub, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if Verify(pub, []byte("different message"), sig) {
		t.Fatal("signature verified for wrong message")
	}
	otherPub, _, _ := GenerateKey(rand.Reader)
	if Verify(otherPub, msg, sig) {
		t.Fatal("signature verified under wrong key")
	}
}

func TestMultisignature(t *testing.T) {
	// The PKGSigs use case (§4.5): n PKGs sign the same message; the
	// aggregate verifies under the aggregate public key.
	msg := []byte("bob@example.org|key|round-7")
	var pubs []*PublicKey
	var sigs []*Signature
	for i := 0; i < 3; i++ {
		pub, priv, err := GenerateKey(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		pubs = append(pubs, pub)
		sigs = append(sigs, Sign(priv, msg))
	}
	aggSig := AggregateSignatures(sigs...)
	aggPub := AggregatePublicKeys(pubs...)
	if !Verify(aggPub, msg, aggSig) {
		t.Fatal("multisignature rejected")
	}

	// Dropping one signature must break verification: a recipient is
	// guaranteed that ALL PKGs (including the honest one) attested.
	partial := AggregateSignatures(sigs[:2]...)
	if Verify(aggPub, msg, partial) {
		t.Fatal("partial multisignature accepted")
	}
}

func TestMultisignatureForgeryByDishonestMajority(t *testing.T) {
	// Even n−1 colluding PKGs cannot produce a multisignature that
	// verifies under an aggregate including the honest PKG's key.
	msg := []byte("victim@example.org|fake-key|round-9")
	honestPub, _, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	var dishonestSigs []*Signature
	var allPubs = []*PublicKey{honestPub}
	for i := 0; i < 2; i++ {
		pub, priv, _ := GenerateKey(rand.Reader)
		allPubs = append(allPubs, pub)
		dishonestSigs = append(dishonestSigs, Sign(priv, msg))
	}
	forged := AggregateSignatures(dishonestSigs...)
	if Verify(AggregatePublicKeys(allPubs...), msg, forged) {
		t.Fatal("forgery without honest PKG's signature accepted")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	pub, priv, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("round-trip")
	sig := Sign(priv, msg)

	pub2, err := UnmarshalPublicKey(pub.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	sig2, err := UnmarshalSignature(sig.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(pub2, msg, sig2) {
		t.Fatal("round-tripped signature rejected")
	}
	if !pub.Equal(pub2) {
		t.Fatal("public key round-trip not equal")
	}

	priv2, err := UnmarshalPrivateKey(priv.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(pub, msg, Sign(priv2, msg)) {
		t.Fatal("round-tripped private key produces bad signatures")
	}
	if !priv.Public().Equal(pub) {
		t.Fatal("Public() disagrees with GenerateKey")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalPublicKey(make([]byte, 10)); err == nil {
		t.Fatal("short public key accepted")
	}
	bad := make([]byte, PublicKeySize)
	bad[0] = 0xff
	if _, err := UnmarshalPublicKey(bad); err == nil {
		t.Fatal("invalid public key accepted")
	}
	if _, err := UnmarshalPrivateKey(make([]byte, PrivateKeySize)); err == nil {
		t.Fatal("zero private key accepted")
	}
}

func TestSignatureSizeConstant(t *testing.T) {
	// Multisig compactness: aggregating does not grow the signature.
	msg := []byte("m")
	var sigs []*Signature
	for i := 0; i < 5; i++ {
		_, priv, _ := GenerateKey(rand.Reader)
		sigs = append(sigs, Sign(priv, msg))
	}
	agg := AggregateSignatures(sigs...)
	if len(agg.Marshal()) != SignatureSize {
		t.Fatalf("aggregate signature size %d, want %d", len(agg.Marshal()), SignatureSize)
	}
}

// TestVerifyMatchesTwoPairReconstruction pins the combined pairing check
// that Verify uses — one shared Miller product through the decomposed
// final exponentiation — against the textbook two-pairing reconstruction
// e(σ, G2) == e(H(m), pk) computed via bn254.Pair, which retains the
// generic windowed final exponentiation as its oracle. The two paths must
// agree on valid signatures, tampered messages, tampered signatures, and
// mismatched keys.
func TestVerifyMatchesTwoPairReconstruction(t *testing.T) {
	reconstruct := func(pub *PublicKey, msg []byte, sig *Signature) bool {
		if pub == nil || sig == nil || sig.s.IsInfinity() {
			return false
		}
		h := bn254.HashToG1("bls-signature", msg)
		return bn254.Pair(sig.s, bn254.G2Generator()).Equal(bn254.Pair(h, pub.p))
	}
	pub, priv, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	otherPub, _, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("pkg attests bob@example.org at round 42")
	sig := Sign(priv, msg)
	tamperedSig := &Signature{s: new(bn254.G1).Add(sig.s, sig.s)}
	cases := []struct {
		name string
		pub  *PublicKey
		msg  []byte
		sig  *Signature
		want bool
	}{
		{"valid", pub, msg, sig, true},
		{"tampered message", pub, []byte("pkg attests eve@example.org at round 42"), sig, false},
		{"tampered signature", pub, msg, tamperedSig, false},
		{"wrong key", otherPub, msg, sig, false},
	}
	for _, c := range cases {
		got := Verify(c.pub, c.msg, c.sig)
		oracle := reconstruct(c.pub, c.msg, c.sig)
		if got != c.want || oracle != c.want {
			t.Fatalf("%s: Verify=%v oracle=%v want=%v", c.name, got, oracle, c.want)
		}
	}
}
