// Package pkgserver implements an Alpenhorn private-key generator (PKG).
//
// Each PKG independently verifies user identities via email confirmation
// (§4.6), generates a fresh IBE master key every add-friend round and
// deletes it when the round closes (§4.4), extracts per-round identity
// private keys for authenticated users, and attests to the binding between
// an email address and a long-term signing key with a BLS signature that
// clients aggregate into the PKGSigs multisignature (§4.5).
//
// Alpenhorn runs several PKGs in an anytrust configuration: the system
// stays private as long as any one of them is honest.
package pkgserver

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"alpenhorn/internal/bls"
	"alpenhorn/internal/email"
	"alpenhorn/internal/ibe"
	"alpenhorn/internal/wire"
)

// LockoutPeriod is the paper's 30-day account lockout (§4.6): an email
// address can be re-registered with a new key only after this long without
// a legitimate key extraction, and a deregistered account stays locked for
// the same period.
const LockoutPeriod = 30 * 24 * time.Hour

// Errors returned to clients. These are part of the protocol surface.
var (
	ErrAlreadyRegistered   = errors.New("pkg: email already registered with a different key")
	ErrNotRegistered       = errors.New("pkg: email not registered")
	ErrBadToken            = errors.New("pkg: wrong confirmation token")
	ErrNotVerified         = errors.New("pkg: registration not confirmed")
	ErrBadSignature        = errors.New("pkg: bad signature")
	ErrRoundNotOpen        = errors.New("pkg: round not open")
	ErrRoundClosed         = errors.New("pkg: round master key destroyed (forward secrecy)")
	ErrLockedOut           = errors.New("pkg: account in lockout period")
	ErrInvalidEmail        = errors.New("pkg: invalid email address")
	ErrRegistrationExpired = errors.New("pkg: pending registration expired")
)

type accountStatus int

const (
	statusPending accountStatus = iota
	statusVerified
	statusDeregistered
)

type account struct {
	email      string
	signingKey ed25519.PublicKey
	status     accountStatus

	// pendingToken is the emailed confirmation secret.
	pendingToken string
	pendingKey   ed25519.PublicKey
	pendingSince time.Time

	// lastSeen is the last successful key extraction (drives the 30-day
	// lockout policy).
	lastSeen time.Time

	// lockedUntil blocks re-registration after deregistration.
	lockedUntil time.Time
}

type roundState struct {
	pub    *ibe.MasterPublicKey
	priv   *ibe.MasterPrivateKey
	closed bool
}

// Server is a single PKG. It is safe for concurrent use.
type Server struct {
	// Name identifies the PKG in logs and test output.
	Name string

	signingPub  ed25519.PublicKey
	signingPriv ed25519.PrivateKey
	blsPub      *bls.PublicKey
	blsPriv     *bls.PrivateKey

	provider email.Provider
	now      func() time.Time
	randSrc  io.Reader

	mu       sync.Mutex
	accounts map[string]*account
	rounds   map[uint32]*roundState

	// extractions counts successful key extractions (for benchmarks).
	extractions uint64
}

// Config configures a new PKG server.
type Config struct {
	Name     string
	Provider email.Provider
	// Now supplies the clock; defaults to time.Now. Tests inject a
	// manual clock to exercise the 30-day policies.
	Now func() time.Time
	// Rand supplies randomness; defaults to crypto/rand.
	Rand io.Reader
}

// New creates a PKG with fresh long-term keys.
func New(cfg Config) (*Server, error) {
	if cfg.Provider == nil {
		return nil, errors.New("pkg: config needs an email provider")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Reader
	}
	edPub, edPriv, err := ed25519.GenerateKey(cfg.Rand)
	if err != nil {
		return nil, err
	}
	blsPub, blsPriv, err := bls.GenerateKey(cfg.Rand)
	if err != nil {
		return nil, err
	}
	return &Server{
		Name:        cfg.Name,
		signingPub:  edPub,
		signingPriv: edPriv,
		blsPub:      blsPub,
		blsPriv:     blsPriv,
		provider:    cfg.Provider,
		now:         cfg.Now,
		randSrc:     cfg.Rand,
		accounts:    make(map[string]*account),
		rounds:      make(map[uint32]*roundState),
	}, nil
}

// SigningKey returns the PKG's long-term ed25519 public key (pinned in the
// client software package).
func (s *Server) SigningKey() ed25519.PublicKey { return s.signingPub }

// BLSKey returns the PKG's long-term BLS attestation key.
func (s *Server) BLSKey() *bls.PublicKey { return s.blsPub }

// ---- Registration (§4.6) ----

// Register begins registration of an email address with a long-term
// signing key. The PKG emails a confirmation token to the address; the
// registration completes when the user echoes the token via
// ConfirmRegistration.
func (s *Server) Register(addr string, signingKey ed25519.PublicKey) error {
	if !email.ValidAddress(addr) || len(addr) > wire.MaxEmailLen {
		return ErrInvalidEmail
	}
	if len(signingKey) != ed25519.PublicKeySize {
		return ErrBadSignature
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()

	acct, exists := s.accounts[addr]
	if exists {
		switch acct.status {
		case statusVerified:
			if acct.signingKey.Equal(signingKey) {
				return nil // idempotent re-registration of same key
			}
			// Re-registration with a NEW key is only allowed after
			// the lockout period of inactivity — this is what stops
			// an adversary who merely controls the email account
			// from hijacking an active Alpenhorn account.
			if now.Sub(acct.lastSeen) < LockoutPeriod {
				return ErrAlreadyRegistered
			}
		case statusDeregistered:
			if now.Before(acct.lockedUntil) {
				return ErrLockedOut
			}
		case statusPending:
			// Replace the pending registration below.
		}
	}

	tokenBytes := make([]byte, 16)
	if _, err := io.ReadFull(s.randSrc, tokenBytes); err != nil {
		return err
	}
	token := hex.EncodeToString(tokenBytes)

	if err := s.provider.Send(email.Message{
		From:    fmt.Sprintf("pkg-%s@alpenhorn", s.Name),
		To:      addr,
		Subject: "Alpenhorn registration confirmation",
		Body:    token,
	}); err != nil {
		return fmt.Errorf("pkg: sending confirmation: %w", err)
	}

	if !exists {
		acct = &account{email: addr}
		s.accounts[addr] = acct
	}
	acct.status = statusPending
	acct.pendingToken = token
	acct.pendingKey = signingKey
	acct.pendingSince = now
	return nil
}

// ConfirmRegistration completes a registration by echoing the emailed
// token. On success the email address is locked to the signing key.
func (s *Server) ConfirmRegistration(addr, token string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	acct, ok := s.accounts[addr]
	if !ok || acct.status != statusPending {
		return ErrNotRegistered
	}
	if s.now().Sub(acct.pendingSince) > 24*time.Hour {
		return ErrRegistrationExpired
	}
	if acct.pendingToken == "" || token != acct.pendingToken {
		return ErrBadToken
	}
	acct.status = statusVerified
	acct.signingKey = acct.pendingKey
	acct.pendingToken = ""
	acct.pendingKey = nil
	acct.lastSeen = s.now()
	return nil
}

// DeregisterMessage returns the canonical bytes a user signs to
// deregister (§9: recovery from client compromise).
func DeregisterMessage(addr string) []byte {
	return append([]byte("alpenhorn/pkg-deregister:"), addr...)
}

// Deregister removes an account at the (signed) request of its owner and
// starts the lockout period, so the adversary who compromised the client
// cannot immediately re-register the address.
func (s *Server) Deregister(addr string, sig []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	acct, ok := s.accounts[addr]
	if !ok || acct.status != statusVerified {
		return ErrNotRegistered
	}
	if !ed25519.Verify(acct.signingKey, DeregisterMessage(addr), sig) {
		return ErrBadSignature
	}
	acct.status = statusDeregistered
	acct.signingKey = nil
	acct.lockedUntil = s.now().Add(LockoutPeriod)
	return nil
}

// Registered reports whether addr has a verified account, and if so with
// which key.
func (s *Server) Registered(addr string) (ed25519.PublicKey, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	acct, ok := s.accounts[addr]
	if !ok || acct.status != statusVerified {
		return nil, false
	}
	return acct.signingKey, true
}

// ---- Rounds (§4.4) ----

// NewRound generates this PKG's IBE master key pair for an add-friend
// round and returns the signed public-key announcement for the round
// settings. Calling it again for the same open round returns the same key.
func (s *Server) NewRound(round uint32) (wire.PKGRoundKey, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.rounds[round]
	if ok && st.closed {
		return wire.PKGRoundKey{}, ErrRoundClosed
	}
	if !ok {
		pub, priv, err := ibe.Setup(s.randSrc)
		if err != nil {
			return wire.PKGRoundKey{}, err
		}
		st = &roundState{pub: pub, priv: priv}
		s.rounds[round] = st
	}
	mk := st.pub.Marshal()
	return wire.PKGRoundKey{
		MasterKey: mk,
		Sig:       ed25519.Sign(s.signingPriv, wire.PKGKeyMessage(round, mk)),
	}, nil
}

// NewRoundV2 is NewRound for coordinators negotiating the optimal-ate v2
// sealed-ciphertext tier: the SAME master key pair for the round (the key
// material is tier-independent; only the client-side pairing differs),
// signed under the v2 domain tag so the announcement cannot be replayed
// into a v1 round. Like NewRound it is idempotent per open round, so a
// coordinator that probes v2 and then falls back to NewRound — or the
// reverse — gets one consistent key either way. A PKG that predates the
// v2 tier simply does not export this method, which the coordinator
// detects through an interface assertion and degrades the whole round to
// v1.
func (s *Server) NewRoundV2(round uint32) (wire.PKGRoundKey, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.rounds[round]
	if ok && st.closed {
		return wire.PKGRoundKey{}, ErrRoundClosed
	}
	if !ok {
		pub, priv, err := ibe.Setup(s.randSrc)
		if err != nil {
			return wire.PKGRoundKey{}, err
		}
		st = &roundState{pub: pub, priv: priv}
		s.rounds[round] = st
	}
	mk := st.pub.Marshal()
	return wire.PKGRoundKey{
		MasterKey: mk,
		Sig:       ed25519.Sign(s.signingPriv, wire.PKGKeyMessageV2(round, mk)),
	}, nil
}

// CloseRound destroys the round's master secret. After this, even a full
// compromise of the PKG cannot decrypt the round's friend requests — the
// paper's forward-secrecy guarantee for metadata (§4.4).
func (s *Server) CloseRound(round uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.rounds[round]
	if !ok || st.closed {
		return
	}
	st.priv.Erase()
	st.priv = nil
	st.closed = true
}

// RoundOpen reports whether the round's master secret still exists.
func (s *Server) RoundOpen(round uint32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.rounds[round]
	return ok && !st.closed
}

// ---- Key extraction (Algorithm 1, step 1) ----

// ExtractMessage returns the canonical bytes a user signs to authenticate
// a key-extraction request.
func ExtractMessage(addr string, round uint32) []byte {
	b := wire.NewBuffer(nil)
	b.Raw([]byte("alpenhorn/pkg-extract:"))
	b.PaddedString(addr, wire.MaxEmailLen)
	b.Uint32(round)
	return b.Bytes()
}

// ExtractReply is the PKG's response to a key extraction: the user's
// identity private key share for the round, and the PKG's BLS attestation
// of (email, signingKey, round), which clients aggregate into PKGSigs.
type ExtractReply struct {
	IdentityKey *ibe.IdentityPrivateKey
	Attestation *bls.Signature
}

// Extract authenticates the user by their long-term signing key and
// returns their identity private key share for the round. It also refreshes
// the account's lastSeen time: as long as a user extracts keys at least
// once every 30 days, their account cannot be hijacked through their email
// provider (§4.6).
func (s *Server) Extract(addr string, round uint32, sig []byte) (*ExtractReply, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	acct, ok := s.accounts[addr]
	if !ok {
		return nil, ErrNotRegistered
	}
	if acct.status != statusVerified {
		return nil, ErrNotVerified
	}
	if !ed25519.Verify(acct.signingKey, ExtractMessage(addr, round), sig) {
		return nil, ErrBadSignature
	}
	st, ok := s.rounds[round]
	if !ok {
		return nil, ErrRoundNotOpen
	}
	if st.closed {
		return nil, ErrRoundClosed
	}
	acct.lastSeen = s.now()
	s.extractions++
	return &ExtractReply{
		IdentityKey: ibe.Extract(st.priv, addr),
		Attestation: bls.Sign(s.blsPriv, wire.AttestationMessage(addr, acct.signingKey, round)),
	}, nil
}

// Extractions returns the number of successful extractions served.
func (s *Server) Extractions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.extractions
}

// NumAccounts returns the number of verified accounts.
func (s *Server) NumAccounts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, a := range s.accounts {
		if a.status == statusVerified {
			n++
		}
	}
	return n
}
