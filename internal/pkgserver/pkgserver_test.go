package pkgserver

import (
	"crypto/ed25519"
	"testing"
	"time"

	"alpenhorn/internal/email"
	"alpenhorn/internal/wire"
)

// manualClock is a settable clock for exercising time-based policies.
type manualClock struct {
	t time.Time
}

func (c *manualClock) Now() time.Time          { return c.t }
func (c *manualClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestPKG(t *testing.T) (*Server, *email.InMemoryProvider, *manualClock) {
	t.Helper()
	clock := &manualClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	provider := email.NewInMemoryProvider()
	s, err := New(Config{Name: "test", Provider: provider, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	return s, provider, clock
}

func register(t *testing.T, s *Server, provider *email.InMemoryProvider, addr string) (ed25519.PublicKey, ed25519.PrivateKey) {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register(addr, pub); err != nil {
		t.Fatal(err)
	}
	inbox := provider.Inbox(addr)
	if len(inbox) == 0 {
		t.Fatal("no confirmation email delivered")
	}
	token := inbox[len(inbox)-1].Body
	if err := s.ConfirmRegistration(addr, token); err != nil {
		t.Fatal(err)
	}
	return pub, priv
}

func TestRegistrationFlow(t *testing.T) {
	s, provider, _ := newTestPKG(t)
	pub, _ := register(t, s, provider, "alice@example.org")
	got, ok := s.Registered("alice@example.org")
	if !ok || !got.Equal(pub) {
		t.Fatal("registration did not stick")
	}
	if s.NumAccounts() != 1 {
		t.Fatalf("accounts = %d", s.NumAccounts())
	}
}

func TestConfirmationRequiresToken(t *testing.T) {
	s, _, _ := newTestPKG(t)
	pub, _, _ := ed25519.GenerateKey(nil)
	if err := s.Register("bob@example.org", pub); err != nil {
		t.Fatal(err)
	}
	if err := s.ConfirmRegistration("bob@example.org", "wrong-token"); err != ErrBadToken {
		t.Fatalf("got %v, want ErrBadToken", err)
	}
	if _, ok := s.Registered("bob@example.org"); ok {
		t.Fatal("unconfirmed account reported as registered")
	}
}

func TestInvalidEmailRejected(t *testing.T) {
	s, _, _ := newTestPKG(t)
	pub, _, _ := ed25519.GenerateKey(nil)
	for _, addr := range []string{"", "no-at-sign", "@nodomain", "user@", "spaces in@addr.com"} {
		if err := s.Register(addr, pub); err == nil {
			t.Fatalf("invalid address %q accepted", addr)
		}
	}
}

func TestReRegistrationLockedToKey(t *testing.T) {
	// §4.6: "each PKG locks the user's email address to that user's
	// long-term signing key, to prevent anyone else (e.g., a malicious
	// email provider) from re-registering the address."
	s, provider, _ := newTestPKG(t)
	register(t, s, provider, "alice@example.org")

	// A different key — the attacker who controls the inbox — is
	// rejected even though they could read the confirmation email.
	attacker, _, _ := ed25519.GenerateKey(nil)
	if err := s.Register("alice@example.org", attacker); err != ErrAlreadyRegistered {
		t.Fatalf("got %v, want ErrAlreadyRegistered", err)
	}
}

func TestLockoutPolicyAllowsRecoveryAfter30Days(t *testing.T) {
	// §4.6: "if 30 days pass without a legitimate attempt to acquire the
	// user's IBE private key, a PKG allows re-registering that email
	// address with a new long-term signing key."
	s, provider, clock := newTestPKG(t)
	register(t, s, provider, "alice@example.org")

	clock.Advance(31 * 24 * time.Hour)

	newPub, _, _ := ed25519.GenerateKey(nil)
	if err := s.Register("alice@example.org", newPub); err != nil {
		t.Fatalf("re-registration after lockout: %v", err)
	}
	inbox := provider.Inbox("alice@example.org")
	token := inbox[len(inbox)-1].Body
	if err := s.ConfirmRegistration("alice@example.org", token); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Registered("alice@example.org")
	if !got.Equal(newPub) {
		t.Fatal("new key not installed")
	}
}

func TestActiveUserCannotBeHijacked(t *testing.T) {
	// A user who extracts keys regularly keeps refreshing lastSeen, so
	// the 30-day window never opens for the email-account attacker.
	s, provider, clock := newTestPKG(t)
	_, priv := register(t, s, provider, "alice@example.org")

	if _, err := s.NewRound(1); err != nil {
		t.Fatal(err)
	}
	for day := 0; day < 40; day += 20 {
		clock.Advance(20 * 24 * time.Hour)
		sig := ed25519.Sign(priv, ExtractMessage("alice@example.org", 1))
		if _, err := s.Extract("alice@example.org", 1, sig); err != nil {
			t.Fatal(err)
		}
	}
	attacker, _, _ := ed25519.GenerateKey(nil)
	if err := s.Register("alice@example.org", attacker); err != ErrAlreadyRegistered {
		t.Fatalf("active account hijacked: %v", err)
	}
}

func TestDeregisterAndLockout(t *testing.T) {
	// §9: deregistration is signed by the old key and starts a 30-day
	// lockout so the attacker can't immediately re-register.
	s, provider, clock := newTestPKG(t)
	pub, priv := register(t, s, provider, "alice@example.org")
	_ = pub

	// Unsigned/badly signed deregistration fails.
	if err := s.Deregister("alice@example.org", make([]byte, 64)); err != ErrBadSignature {
		t.Fatalf("got %v, want ErrBadSignature", err)
	}
	sig := ed25519.Sign(priv, DeregisterMessage("alice@example.org"))
	if err := s.Deregister("alice@example.org", sig); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Registered("alice@example.org"); ok {
		t.Fatal("account still registered after deregistration")
	}
	// Immediate re-registration (by anyone) is locked out.
	attacker, _, _ := ed25519.GenerateKey(nil)
	if err := s.Register("alice@example.org", attacker); err != ErrLockedOut {
		t.Fatalf("got %v, want ErrLockedOut", err)
	}
	// After 30 days the legitimate user can re-register via email.
	clock.Advance(LockoutPeriod + time.Hour)
	if err := s.Register("alice@example.org", attacker); err != nil {
		t.Fatalf("re-registration after lockout period: %v", err)
	}
}

func TestExtractRequiresAuth(t *testing.T) {
	s, provider, _ := newTestPKG(t)
	_, priv := register(t, s, provider, "alice@example.org")
	if _, err := s.NewRound(5); err != nil {
		t.Fatal(err)
	}

	// Valid extraction works and returns a verifiable attestation.
	sig := ed25519.Sign(priv, ExtractMessage("alice@example.org", 5))
	reply, err := s.Extract("alice@example.org", 5, sig)
	if err != nil {
		t.Fatal(err)
	}
	if reply.IdentityKey == nil || reply.Attestation == nil {
		t.Fatal("incomplete extract reply")
	}

	// Wrong signature fails.
	if _, err := s.Extract("alice@example.org", 5, make([]byte, 64)); err != ErrBadSignature {
		t.Fatalf("got %v, want ErrBadSignature", err)
	}
	// Signature for a different round fails (no replay).
	sigOther := ed25519.Sign(priv, ExtractMessage("alice@example.org", 6))
	if _, err := s.Extract("alice@example.org", 5, sigOther); err != ErrBadSignature {
		t.Fatalf("round-replay: got %v, want ErrBadSignature", err)
	}
	// Unregistered user fails.
	if _, err := s.Extract("mallory@example.org", 5, sig); err != ErrNotRegistered {
		t.Fatalf("got %v, want ErrNotRegistered", err)
	}
}

func TestForwardSecrecyRoundKeyDeletion(t *testing.T) {
	// §4.4: after CloseRound the master secret is destroyed; extraction
	// for that round must fail forever.
	s, provider, _ := newTestPKG(t)
	_, priv := register(t, s, provider, "alice@example.org")
	if _, err := s.NewRound(7); err != nil {
		t.Fatal(err)
	}
	if !s.RoundOpen(7) {
		t.Fatal("round not open")
	}
	s.CloseRound(7)
	if s.RoundOpen(7) {
		t.Fatal("round still open after close")
	}
	sig := ed25519.Sign(priv, ExtractMessage("alice@example.org", 7))
	if _, err := s.Extract("alice@example.org", 7, sig); err != ErrRoundClosed {
		t.Fatalf("got %v, want ErrRoundClosed", err)
	}
	// Reopening a closed round must fail too.
	if _, err := s.NewRound(7); err != ErrRoundClosed {
		t.Fatalf("got %v, want ErrRoundClosed", err)
	}
}

func TestRoundKeyAnnouncementSigned(t *testing.T) {
	s, _, _ := newTestPKG(t)
	rk, err := s.NewRound(3)
	if err != nil {
		t.Fatal(err)
	}
	msg := wire.PKGKeyMessage(3, rk.MasterKey)
	if !ed25519.Verify(s.SigningKey(), msg, rk.Sig) {
		t.Fatal("round key announcement signature invalid")
	}
	// Idempotent: same key while open.
	rk2, err := s.NewRound(3)
	if err != nil {
		t.Fatal(err)
	}
	if string(rk.MasterKey) != string(rk2.MasterKey) {
		t.Fatal("NewRound not idempotent")
	}
}

// TestNewRoundV2CrossVersionConsistency pins the invariants the
// coordinator's all-or-nothing negotiation relies on: NewRoundV2 hands
// out the SAME master key as NewRound for an open round (in either probe
// order), its announcement verifies only under the v2 domain tag, and a
// closed round refuses both surfaces.
func TestNewRoundV2CrossVersionConsistency(t *testing.T) {
	s, _, _ := newTestPKG(t)
	rkV2, err := s.NewRoundV2(5)
	if err != nil {
		t.Fatal(err)
	}
	rkV1, err := s.NewRound(5)
	if err != nil {
		t.Fatal(err)
	}
	if string(rkV2.MasterKey) != string(rkV1.MasterKey) {
		t.Fatal("v2 and v1 announcements carry different master keys for one round")
	}
	if !ed25519.Verify(s.SigningKey(), wire.PKGKeyMessageV2(5, rkV2.MasterKey), rkV2.Sig) {
		t.Fatal("v2 announcement signature invalid")
	}
	if ed25519.Verify(s.SigningKey(), wire.PKGKeyMessage(5, rkV2.MasterKey), rkV2.Sig) {
		t.Fatal("v2 announcement verifies under the v1 domain")
	}
	// The reverse probe order (v1 first, then v2) on a fresh round.
	rkV1, err = s.NewRound(6)
	if err != nil {
		t.Fatal(err)
	}
	rkV2, err = s.NewRoundV2(6)
	if err != nil {
		t.Fatal(err)
	}
	if string(rkV2.MasterKey) != string(rkV1.MasterKey) {
		t.Fatal("master key differs when v1 opens the round first")
	}
	s.CloseRound(5)
	if _, err := s.NewRoundV2(5); err != ErrRoundClosed {
		t.Fatalf("NewRoundV2 on a closed round: %v, want ErrRoundClosed", err)
	}
}

func TestFailingEmailProvider(t *testing.T) {
	s, err := New(Config{Name: "x", Provider: email.FailingProvider{}})
	if err != nil {
		t.Fatal(err)
	}
	pub, _, _ := ed25519.GenerateKey(nil)
	if err := s.Register("alice@example.org", pub); err == nil {
		t.Fatal("registration succeeded with failing email delivery")
	}
}

func TestCompromisedEmailProviderCannotStealActiveAccount(t *testing.T) {
	// End-to-end version of the §4.6 threat: the provider is
	// compromised from the start of the attack, reads all mail, and
	// withholds it from the victim — but the victim registered first
	// and stays active.
	s, provider, _ := newTestPKG(t)
	register(t, s, provider, "victim@example.org")

	provider.Compromise("victim@example.org", true)
	attacker, _, _ := ed25519.GenerateKey(nil)
	if err := s.Register("victim@example.org", attacker); err != ErrAlreadyRegistered {
		t.Fatalf("got %v, want ErrAlreadyRegistered", err)
	}
	if len(provider.Stolen("victim@example.org")) != 0 {
		t.Fatal("no new confirmation mail should have been sent")
	}
}

func TestRegistrationExpiry(t *testing.T) {
	s, provider, clock := newTestPKG(t)
	pub, _, _ := ed25519.GenerateKey(nil)
	if err := s.Register("slow@example.org", pub); err != nil {
		t.Fatal(err)
	}
	token := provider.Inbox("slow@example.org")[0].Body
	clock.Advance(25 * time.Hour)
	if err := s.ConfirmRegistration("slow@example.org", token); err != ErrRegistrationExpired {
		t.Fatalf("got %v, want ErrRegistrationExpired", err)
	}
}
