// Package keywheel implements Alpenhorn's keywheel construction (§5 and
// Figure 4 of the paper).
//
// A keywheel holds a pairwise shared secret that two friends established via
// the add-friend protocol. Every dialing round, both sides evolve the secret
// with a one-way function (erasing the previous value for forward secrecy).
// From the current secret, a client can derive:
//
//   - dial tokens — per-round, per-intent values sent through the mixnet to
//     signal a call (H2 in Figure 4), and
//   - session keys — fresh conversation keys handed to the application (H3
//     in Figure 4), separated from the wheel state so that an application
//     leaking a session key does not compromise future rounds.
//
// Because the evolution is deterministic, two friends that agree on a
// starting (round, secret) pair can compute identical tokens forever without
// further communication.
package keywheel

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// SecretSize is the size of the wheel secret, dial tokens, and session keys.
const SecretSize = 32

// TokenSize is the size of a dial token in bytes (256 bits, §5).
const TokenSize = 32

var (
	// ErrPastRound is returned when a caller asks for state from a round
	// that has already been erased. Old rounds are unrecoverable by
	// design: that is the forward-secrecy guarantee.
	ErrPastRound = errors.New("keywheel: round precedes current wheel state (erased for forward secrecy)")
)

// Wheel is the keywheel for a single friend. The zero value is invalid; use
// New. Wheel is not safe for concurrent use; the owning address book
// serializes access.
type Wheel struct {
	secret [SecretSize]byte
	round  uint32
}

// New creates a wheel starting at the given round with the given shared
// secret (the Diffie-Hellman result of the add-friend exchange, §4.7). The
// caller's copy of secret may be erased afterwards.
func New(round uint32, secret *[SecretSize]byte) *Wheel {
	w := &Wheel{round: round}
	copy(w.secret[:], secret[:])
	return w
}

// Round returns the round the wheel currently stores the secret for.
func (w *Wheel) Round() uint32 { return w.round }

// hmacDerive computes HMAC-SHA256(key, label ‖ args).
func hmacDerive(key []byte, label string, args ...[]byte) [SecretSize]byte {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte(label))
	for _, a := range args {
		mac.Write(a)
	}
	var out [SecretSize]byte
	mac.Sum(out[:0])
	return out
}

// Advance evolves the wheel to the given round, erasing all intermediate
// state (H1 in Figure 4). Advancing to the current round is a no-op;
// advancing backwards returns ErrPastRound.
func (w *Wheel) Advance(to uint32) error {
	if to < w.round {
		return ErrPastRound
	}
	for w.round < to {
		next := hmacDerive(w.secret[:], "alpenhorn/keywheel/advance")
		copy(w.secret[:], next[:])
		zero(next[:])
		w.round++
	}
	return nil
}

// DialToken derives the dial token for the given round, intent, and caller
// (H2 in Figure 4). The wheel must not have advanced past the round.
//
// The caller identity is hashed into the token so that tokens are
// DIRECTIONAL: if two friends happen to share a mailbox (mailbox IDs are
// H(email) mod K, so collisions are routine), a client scanning its mailbox
// cannot mistake its own outgoing token for an incoming call.
func (w *Wheel) DialToken(round uint32, intent uint32, caller string) ([TokenSize]byte, error) {
	k, err := w.secretAt(round)
	if err != nil {
		return [TokenSize]byte{}, err
	}
	defer zero(k[:])
	var intentBuf [4]byte
	binary.BigEndian.PutUint32(intentBuf[:], intent)
	return hmacDerive(k[:], "alpenhorn/keywheel/dial-token", intentBuf[:], []byte(caller)), nil
}

// SessionKey derives the conversation session key for the given round,
// intent, and caller (H3 in Figure 4). Both endpoints pass the CALLER's
// identity, so they derive the same key.
func (w *Wheel) SessionKey(round uint32, intent uint32, caller string) ([SecretSize]byte, error) {
	k, err := w.secretAt(round)
	if err != nil {
		return [SecretSize]byte{}, err
	}
	defer zero(k[:])
	var intentBuf [4]byte
	binary.BigEndian.PutUint32(intentBuf[:], intent)
	return hmacDerive(k[:], "alpenhorn/keywheel/session-key", intentBuf[:], []byte(caller)), nil
}

// secretAt computes the wheel secret for a round at or after the current
// one, without mutating the wheel. This lets a client look ahead (e.g. a
// friend added with a future DialingRound, Figure 5) while the wheel itself
// only advances when the client is done with a round.
func (w *Wheel) secretAt(round uint32) ([SecretSize]byte, error) {
	if round < w.round {
		return [SecretSize]byte{}, ErrPastRound
	}
	var k [SecretSize]byte
	copy(k[:], w.secret[:])
	for r := w.round; r < round; r++ {
		next := hmacDerive(k[:], "alpenhorn/keywheel/advance")
		copy(k[:], next[:])
		zero(next[:])
	}
	return k, nil
}

// Erase destroys the wheel state. Used when a friend is removed from the
// address book (§3.2: removing a friend makes past friendship undetectable).
func (w *Wheel) Erase() {
	zero(w.secret[:])
	w.round = 0
}

// Marshal encodes the wheel for persistence: round ‖ secret.
func (w *Wheel) Marshal() []byte {
	out := make([]byte, 4+SecretSize)
	binary.BigEndian.PutUint32(out[:4], w.round)
	copy(out[4:], w.secret[:])
	return out
}

// Unmarshal decodes a wheel encoded with Marshal.
func Unmarshal(data []byte) (*Wheel, error) {
	if len(data) != 4+SecretSize {
		return nil, fmt.Errorf("keywheel: wrong encoding length %d", len(data))
	}
	w := &Wheel{round: binary.BigEndian.Uint32(data[:4])}
	copy(w.secret[:], data[4:])
	return w, nil
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
