package keywheel

import (
	"bytes"
	"crypto/rand"
	"testing"
	"testing/quick"
)

func newTestWheel(t testing.TB, round uint32) (*Wheel, *Wheel) {
	t.Helper()
	var secret [SecretSize]byte
	if _, err := rand.Read(secret[:]); err != nil {
		t.Fatal(err)
	}
	// Two friends each construct a wheel from the same DH result.
	return New(round, &secret), New(round, &secret)
}

func TestFriendsStayInSync(t *testing.T) {
	alice, bob := newTestWheel(t, 10)

	// Same round, same intent → same token and session key.
	at, err := alice.DialToken(10, 0, "alice")
	if err != nil {
		t.Fatal(err)
	}
	bt, err := bob.DialToken(10, 0, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if at != bt {
		t.Fatal("friends derived different dial tokens")
	}
	ak, _ := alice.SessionKey(10, 0, "alice")
	bk, _ := bob.SessionKey(10, 0, "alice")
	if ak != bk {
		t.Fatal("friends derived different session keys")
	}
}

func TestSyncAcrossAsymmetricAdvance(t *testing.T) {
	// Bob's client was offline: Alice advanced to round 15; Bob is at 10.
	// Tokens for round 15+ must still match (Figure 5's semantics).
	alice, bob := newTestWheel(t, 10)
	if err := alice.Advance(15); err != nil {
		t.Fatal(err)
	}
	at, err := alice.DialToken(17, 3, "alice")
	if err != nil {
		t.Fatal(err)
	}
	bt, err := bob.DialToken(17, 3, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if at != bt {
		t.Fatal("tokens diverged after asymmetric advance")
	}
}

func TestIntentsProduceDistinctTokens(t *testing.T) {
	w, _ := newTestWheel(t, 1)
	seen := make(map[[TokenSize]byte]bool)
	for intent := uint32(0); intent < 10; intent++ {
		tok, err := w.DialToken(1, intent, "caller")
		if err != nil {
			t.Fatal(err)
		}
		if seen[tok] {
			t.Fatalf("intent %d produced duplicate token", intent)
		}
		seen[tok] = true
	}
}

func TestRoundsProduceDistinctTokens(t *testing.T) {
	w, _ := newTestWheel(t, 1)
	t1, _ := w.DialToken(1, 0, "caller")
	t2, _ := w.DialToken(2, 0, "caller")
	if t1 == t2 {
		t.Fatal("different rounds produced same token")
	}
}

func TestTokenAndSessionKeyAreIndependent(t *testing.T) {
	w, _ := newTestWheel(t, 1)
	tok, _ := w.DialToken(1, 0, "caller")
	key, _ := w.SessionKey(1, 0, "caller")
	if tok == key {
		t.Fatal("dial token equals session key")
	}
}

func TestForwardSecrecyErasesPastRounds(t *testing.T) {
	w, _ := newTestWheel(t, 5)
	before, _ := w.DialToken(5, 0, "caller")
	if err := w.Advance(8); err != nil {
		t.Fatal(err)
	}
	// Round 5's token must be unrecoverable.
	if _, err := w.DialToken(5, 0, "caller"); err != ErrPastRound {
		t.Fatalf("got err %v, want ErrPastRound", err)
	}
	if _, err := w.SessionKey(7, 0, "caller"); err != ErrPastRound {
		t.Fatalf("got err %v, want ErrPastRound", err)
	}
	// And the wheel state must no longer contain the old secret bytes.
	enc := w.Marshal()
	if bytes.Contains(enc, before[:16]) {
		t.Fatal("old token material present in advanced wheel state")
	}
}

func TestAdvanceBackwardsRejected(t *testing.T) {
	w, _ := newTestWheel(t, 10)
	if err := w.Advance(9); err != ErrPastRound {
		t.Fatalf("got %v, want ErrPastRound", err)
	}
	if err := w.Advance(10); err != nil {
		t.Fatalf("no-op advance failed: %v", err)
	}
}

func TestLookAheadDoesNotMutate(t *testing.T) {
	w, _ := newTestWheel(t, 10)
	if _, err := w.DialToken(20, 0, "caller"); err != nil {
		t.Fatal(err)
	}
	if w.Round() != 10 {
		t.Fatal("look-ahead advanced the wheel")
	}
	// Token for round 10 still available.
	if _, err := w.DialToken(10, 0, "caller"); err != nil {
		t.Fatal("current round unavailable after look-ahead")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	w, _ := newTestWheel(t, 33)
	w2, err := Unmarshal(w.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := w.DialToken(40, 2, "caller")
	t2, _ := w2.DialToken(40, 2, "caller")
	if t1 != t2 {
		t.Fatal("round-tripped wheel derives different tokens")
	}
	if _, err := Unmarshal(make([]byte, 5)); err == nil {
		t.Fatal("short encoding accepted")
	}
}

func TestErase(t *testing.T) {
	w, _ := newTestWheel(t, 3)
	w.Erase()
	enc := w.Marshal()
	for _, b := range enc[4:] {
		if b != 0 {
			t.Fatal("erase left secret bytes")
		}
	}
}

func TestAdvanceEquivalentToLookAhead(t *testing.T) {
	prop := func(seed [SecretSize]byte, delta uint8) bool {
		w1 := New(0, &seed)
		w2 := New(0, &seed)
		target := uint32(delta % 64)
		tok1, err := w1.DialToken(target, 1, "c") // look-ahead
		if err != nil {
			return false
		}
		if err := w2.Advance(target); err != nil { // advance then derive
			return false
		}
		tok2, err := w2.DialToken(target, 1, "c")
		if err != nil {
			return false
		}
		return tok1 == tok2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
