package email

import "testing"

func TestDelivery(t *testing.T) {
	p := NewInMemoryProvider()
	msg := Message{From: "pkg@alpenhorn", To: "alice@example.org", Subject: "s", Body: "token"}
	if err := p.Send(msg); err != nil {
		t.Fatal(err)
	}
	inbox := p.Inbox("alice@example.org")
	if len(inbox) != 1 || inbox[0].Body != "token" {
		t.Fatalf("inbox: %v", inbox)
	}
	if len(p.Inbox("bob@example.org")) != 0 {
		t.Fatal("mail leaked to wrong inbox")
	}
}

func TestValidAddress(t *testing.T) {
	valid := []string{"a@b", "alice@example.org", "x.y+z@sub.domain.io"}
	invalid := []string{"", "nope", "@x", "x@", "sp ace@x.org", "tab\t@x.org"}
	for _, a := range valid {
		if !ValidAddress(a) {
			t.Errorf("%q rejected", a)
		}
	}
	for _, a := range invalid {
		if ValidAddress(a) {
			t.Errorf("%q accepted", a)
		}
	}
}

func TestSendToInvalidAddress(t *testing.T) {
	p := NewInMemoryProvider()
	if err := p.Send(Message{To: "not-an-address"}); err == nil {
		t.Fatal("invalid address accepted")
	}
}

func TestCompromiseEavesdrop(t *testing.T) {
	p := NewInMemoryProvider()
	p.Compromise("victim@example.org", false)
	if err := p.Send(Message{From: "a@b", To: "victim@example.org", Body: "secret"}); err != nil {
		t.Fatal(err)
	}
	// Victim still receives mail; adversary has a copy.
	if len(p.Inbox("victim@example.org")) != 1 {
		t.Fatal("victim lost mail under eavesdrop-only compromise")
	}
	if len(p.Stolen("victim@example.org")) != 1 {
		t.Fatal("adversary missing copy")
	}
}

func TestCompromiseDrop(t *testing.T) {
	p := NewInMemoryProvider()
	p.Compromise("victim@example.org", true)
	if err := p.Send(Message{From: "a@b", To: "victim@example.org", Body: "secret"}); err != nil {
		t.Fatal(err)
	}
	if len(p.Inbox("victim@example.org")) != 0 {
		t.Fatal("victim received mail the adversary withheld")
	}
	if len(p.Stolen("victim@example.org")) != 1 {
		t.Fatal("adversary missing stolen mail")
	}
}

func TestFailingProvider(t *testing.T) {
	if err := (FailingProvider{}).Send(Message{To: "a@b"}); err == nil {
		t.Fatal("failing provider succeeded")
	}
}
