// Package email simulates an email provider.
//
// The real Alpenhorn deployment relies on users' email providers to
// bootstrap identity: each PKG mails a confirmation token to the address
// being registered (§4.6). This repository cannot send real mail, so the
// provider is an in-memory message queue that exercises the identical PKG
// registration code path — including the adversarial case of a compromised
// provider that intercepts or drops confirmation messages, which the
// lockout-policy tests rely on.
package email

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Message is a delivered email.
type Message struct {
	From    string
	To      string
	Subject string
	Body    string
}

// Provider delivers mail to inboxes.
type Provider interface {
	// Send delivers a message, returning an error if the address is
	// invalid or delivery fails.
	Send(msg Message) error
}

// InMemoryProvider is a Provider backed by per-address in-memory inboxes.
// It is safe for concurrent use. The zero value is ready to use.
//
// Compromise simulates an adversary with access to an inbox: delivered mail
// is copied to the adversary, covering the threat discussed in §4.6.
type InMemoryProvider struct {
	mu          sync.Mutex
	inboxes     map[string][]Message
	compromised map[string]bool
	stolen      map[string][]Message
	dropped     map[string]bool
}

// NewInMemoryProvider returns an empty provider.
func NewInMemoryProvider() *InMemoryProvider {
	return &InMemoryProvider{
		inboxes:     make(map[string][]Message),
		compromised: make(map[string]bool),
		stolen:      make(map[string][]Message),
		dropped:     make(map[string]bool),
	}
}

// ValidAddress performs the minimal syntactic check Alpenhorn needs: a
// non-empty local part and domain.
func ValidAddress(addr string) bool {
	at := strings.IndexByte(addr, '@')
	return at > 0 && at < len(addr)-1 && !strings.ContainsAny(addr, " \t\n")
}

// Send implements Provider.
func (p *InMemoryProvider) Send(msg Message) error {
	if !ValidAddress(msg.To) {
		return fmt.Errorf("email: invalid address %q", msg.To)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.compromised[msg.To] {
		p.stolen[msg.To] = append(p.stolen[msg.To], msg)
		if p.dropped[msg.To] {
			// The adversary withholds the message from the victim.
			return nil
		}
	}
	p.inboxes[msg.To] = append(p.inboxes[msg.To], msg)
	return nil
}

// Inbox returns a copy of the messages delivered to addr.
func (p *InMemoryProvider) Inbox(addr string) []Message {
	p.mu.Lock()
	defer p.mu.Unlock()
	msgs := p.inboxes[addr]
	out := make([]Message, len(msgs))
	copy(out, msgs)
	return out
}

// Compromise marks addr as controlled by the adversary. If drop is true the
// legitimate user stops receiving mail entirely; otherwise the adversary
// only eavesdrops.
func (p *InMemoryProvider) Compromise(addr string, drop bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.compromised[addr] = true
	p.dropped[addr] = drop
}

// Stolen returns the messages the adversary captured for addr.
func (p *InMemoryProvider) Stolen(addr string) []Message {
	p.mu.Lock()
	defer p.mu.Unlock()
	msgs := p.stolen[addr]
	out := make([]Message, len(msgs))
	copy(out, msgs)
	return out
}

// FailingProvider always fails; used to test PKG behaviour when mail
// delivery is down.
type FailingProvider struct{}

// Send implements Provider by failing.
func (FailingProvider) Send(Message) error {
	return errors.New("email: delivery unavailable")
}
