package noise

import (
	"crypto/rand"
	"math"
	"testing"
)

func TestDeterministicMode(t *testing.T) {
	// §8.1: the paper's experiments set b = 0 to reduce variance; the
	// sampler must then return exactly µ.
	l := Laplace{Mu: 4000, B: 0}
	for i := 0; i < 5; i++ {
		n, err := l.Sample(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if n != 4000 {
			t.Fatalf("b=0 sample = %d, want 4000", n)
		}
	}
}

func TestSampleNonNegative(t *testing.T) {
	l := Laplace{Mu: 5, B: 100} // heavy tail across zero
	for i := 0; i < 2000; i++ {
		n, err := l.Sample(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if n < 0 {
			t.Fatalf("negative noise count %d", n)
		}
	}
}

func TestSampleMean(t *testing.T) {
	// The truncation at zero biases the mean upward slightly; with
	// µ >> b the bias is negligible and the sample mean must be close
	// to µ.
	l := AddFriendNoise // µ=4000, b=406
	const trials = 3000
	sum := 0
	for i := 0; i < trials; i++ {
		n, err := l.Sample(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		sum += n
	}
	mean := float64(sum) / trials
	// Std dev of the mean ≈ b·√2/√trials ≈ 10.5; allow 6σ.
	if math.Abs(mean-4000) > 65 {
		t.Fatalf("sample mean %.1f too far from 4000", mean)
	}
}

func TestSampleSpread(t *testing.T) {
	// With b > 0 the samples must actually vary.
	l := DialingNoise
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		n, _ := l.Sample(rand.Reader)
		seen[n] = true
	}
	if len(seen) < 10 {
		t.Fatalf("only %d distinct samples in 100 draws", len(seen))
	}
}

func TestEpsilon(t *testing.T) {
	// The paper: b=406 with sensitivity s=1 per add-friend request
	// yields ε = ln2 over 900/... the advertised budget works out to
	// ε/event = 1/b; check the arithmetic helpers.
	eps := Epsilon(1, 406)
	if math.Abs(eps-1.0/406) > 1e-12 {
		t.Fatalf("epsilon = %v", eps)
	}
	if !math.IsInf(Epsilon(1, 0), 1) {
		t.Fatal("b=0 must give infinite epsilon")
	}
	// (ε = ln 2) budget at 1/406 per event → ~281 events... the paper's
	// 900-event figure uses composition accounting; here we just check
	// monotonicity of the helper.
	if EventsForBudget(math.Ln2, eps) <= 0 {
		t.Fatal("events for budget must be positive")
	}
	if EventsForBudget(math.Ln2, 0) != math.MaxInt32 {
		t.Fatal("zero-cost events must be unbounded")
	}
}

func TestPaperParameters(t *testing.T) {
	if AddFriendNoise.Mu != 4000 || AddFriendNoise.B != 406 {
		t.Fatal("add-friend noise parameters drifted from paper values")
	}
	if DialingNoise.Mu != 25000 || DialingNoise.B != 2183 {
		t.Fatal("dialing noise parameters drifted from paper values")
	}
}
