// Package noise implements the differential-privacy noise machinery that
// Alpenhorn inherits from Vuvuzela (§6 of the paper).
//
// Each mixnet server adds a random number of fake requests to every mailbox,
// drawn from a (truncated, rounded) Laplace distribution. With the paper's
// parameters — mean µ=4000, scale b=406 for add-friend; µ=25000, b=2183 for
// dialing — each protocol achieves (ε = ln 2, δ = 1e-4)-differential privacy
// for 900 add-friend requests and 26,000 calls per user.
//
// Setting b = 0 yields exactly µ noise messages per mailbox, which is the
// deterministic mode the paper's evaluation uses to reduce variance (§8.1).
package noise

import (
	"crypto/rand"
	"encoding/binary"
	"io"
	"math"
)

// Laplace describes a noise distribution with mean Mu and scale B.
type Laplace struct {
	Mu float64
	B  float64
}

// Paper parameters (§8.1).
var (
	// AddFriendNoise is the per-server, per-mailbox noise distribution
	// for the add-friend protocol.
	AddFriendNoise = Laplace{Mu: 4000, B: 406}
	// DialingNoise is the per-server, per-mailbox noise distribution for
	// the dialing protocol.
	DialingNoise = Laplace{Mu: 25000, B: 2183}
)

// uniform01 draws a uniform float64 in (0, 1) from the reader.
func uniform01(r io.Reader) (float64, error) {
	var buf [8]byte
	for {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, err
		}
		// 53 random bits → uniform in [0, 1).
		u := float64(binary.BigEndian.Uint64(buf[:])>>11) / (1 << 53)
		if u > 0 && u < 1 {
			return u, nil
		}
	}
}

// Sample draws a noise count: max(0, round(Laplace(µ, b))). With B == 0 the
// result is deterministic: round(µ).
func (l Laplace) Sample(r io.Reader) (int, error) {
	if l.B == 0 {
		return int(math.Round(l.Mu)), nil
	}
	u, err := uniform01(r)
	if err != nil {
		return 0, err
	}
	// Inverse CDF: shift u to (−0.5, 0.5).
	u -= 0.5
	var x float64
	if u < 0 {
		x = l.Mu + l.B*math.Log(1+2*u)
	} else {
		x = l.Mu - l.B*math.Log(1-2*u)
	}
	n := int(math.Round(x))
	if n < 0 {
		n = 0
	}
	return n, nil
}

// SampleCrypto draws from crypto/rand.
func (l Laplace) SampleCrypto() int {
	n, err := l.Sample(rand.Reader)
	if err != nil {
		panic("noise: crypto/rand failed: " + err.Error())
	}
	return n
}

// Epsilon returns the per-observation differential-privacy ε that scale b
// provides for a sensitivity-s query: ε = s/b.
func Epsilon(sensitivity, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return sensitivity / b
}

// EventsForBudget returns how many protocol actions (calls or friend
// requests) a user can perform while staying within total privacy budget
// epsTotal, if each action costs epsPerEvent.
func EventsForBudget(epsTotal, epsPerEvent float64) int {
	if epsPerEvent <= 0 {
		return math.MaxInt32
	}
	return int(epsTotal / epsPerEvent)
}
