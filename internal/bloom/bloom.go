// Package bloom implements the Bloom filter encoding of dialing mailboxes
// (§5.2 of the paper).
//
// The last mixnet server encodes each dialing mailbox's set of 256-bit dial
// tokens into a Bloom filter, choosing parameters for the number of tokens
// it actually holds. Alpenhorn targets a false-positive rate of 1e-10 using
// 48 bits per element, which shrinks the mailbox 5.3x compared to shipping
// raw tokens while guaranteeing no false negatives (an incoming call is
// never missed; a false positive merely triggers one phantom IncomingCall
// callback roughly once a decade).
package bloom

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"math"
)

// DefaultBitsPerElement is the paper's 48 bits/element design point.
const DefaultBitsPerElement = 48

// Filter is a Bloom filter over byte-string elements. The zero value is not
// usable; call New.
type Filter struct {
	bits    []byte
	m       uint64 // number of bits
	k       uint32 // number of hash probes
	entries uint64 // number of Add calls (for introspection only)
}

// OptimalHashes returns the false-positive-minimizing number of hash probes
// for a given bits-per-element budget: k = round(b·ln 2).
func OptimalHashes(bitsPerElement int) uint32 {
	k := uint32(math.Round(float64(bitsPerElement) * math.Ln2))
	if k == 0 {
		k = 1
	}
	return k
}

// New creates a filter sized for n elements at the given bits-per-element
// budget. n == 0 is allowed and produces a minimal filter.
func New(n int, bitsPerElement int) *Filter {
	if n < 0 {
		panic("bloom: negative element count")
	}
	if bitsPerElement <= 0 {
		panic("bloom: bits per element must be positive")
	}
	m := uint64(n) * uint64(bitsPerElement)
	if m < 64 {
		m = 64
	}
	return &Filter{
		bits: make([]byte, (m+7)/8),
		m:    m,
		k:    OptimalHashes(bitsPerElement),
	}
}

// NewFromElements builds a filter sized for exactly the given elements and
// inserts them all. This is the last mixnet server's per-mailbox encoding
// step; keeping it a single call lets mailbox construction shard whole
// filters across workers without exposing partially built state.
func NewFromElements(elems [][]byte, bitsPerElement int) *Filter {
	f := New(len(elems), bitsPerElement)
	for _, e := range elems {
		f.Add(e)
	}
	return f
}

// probes derives the k bit positions for an element by double hashing: the
// element's SHA-256 digest provides two independent 64-bit values h1, h2,
// and probe i uses h1 + i·h2 mod m.
func (f *Filter) probes(elem []byte, fn func(pos uint64) bool) {
	d := sha256.Sum256(elem)
	h1 := binary.BigEndian.Uint64(d[0:8])
	h2 := binary.BigEndian.Uint64(d[8:16]) | 1 // force odd so probes spread
	for i := uint32(0); i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		if !fn(pos) {
			return
		}
	}
}

// Add inserts an element.
func (f *Filter) Add(elem []byte) {
	f.probes(elem, func(pos uint64) bool {
		f.bits[pos/8] |= 1 << (pos % 8)
		return true
	})
	f.entries++
}

// Test reports whether elem may be in the set. False positives occur with
// probability ~FalsePositiveRate; false negatives never occur.
func (f *Filter) Test(elem []byte) bool {
	found := true
	f.probes(elem, func(pos uint64) bool {
		if f.bits[pos/8]&(1<<(pos%8)) == 0 {
			found = false
			return false
		}
		return true
	})
	return found
}

// Entries returns the number of elements added.
func (f *Filter) Entries() uint64 { return f.entries }

// SizeBytes returns the size of the filter's bit array.
func (f *Filter) SizeBytes() int { return len(f.bits) }

// FalsePositiveRate estimates the filter's false-positive probability for
// the number of elements actually added: (1 − e^(−kn/m))^k.
func (f *Filter) FalsePositiveRate() float64 {
	if f.entries == 0 {
		return 0
	}
	exp := -float64(f.k) * float64(f.entries) / float64(f.m)
	return math.Pow(1-math.Exp(exp), float64(f.k))
}

// Marshal encodes the filter: m ‖ k ‖ entries ‖ bits.
func (f *Filter) Marshal() []byte {
	out := make([]byte, 8+4+8+len(f.bits))
	binary.BigEndian.PutUint64(out[0:8], f.m)
	binary.BigEndian.PutUint32(out[8:12], f.k)
	binary.BigEndian.PutUint64(out[12:20], f.entries)
	copy(out[20:], f.bits)
	return out
}

// Unmarshal decodes a filter encoded with Marshal.
func Unmarshal(data []byte) (*Filter, error) {
	if len(data) < 20 {
		return nil, errors.New("bloom: encoding too short")
	}
	m := binary.BigEndian.Uint64(data[0:8])
	k := binary.BigEndian.Uint32(data[8:12])
	entries := binary.BigEndian.Uint64(data[12:20])
	if k == 0 || m == 0 {
		return nil, errors.New("bloom: invalid parameters")
	}
	if uint64(len(data)-20) != (m+7)/8 {
		return nil, errors.New("bloom: bit array length mismatch")
	}
	f := &Filter{bits: make([]byte, len(data)-20), m: m, k: k, entries: entries}
	copy(f.bits, data[20:])
	return f, nil
}
