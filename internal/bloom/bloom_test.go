package bloom

import (
	"crypto/rand"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func randToken(t testing.TB) []byte {
	t.Helper()
	tok := make([]byte, 32)
	if _, err := rand.Read(tok); err != nil {
		t.Fatal(err)
	}
	return tok
}

func TestNoFalseNegatives(t *testing.T) {
	// §5.2: "No false negatives means that Alpenhorn never misses an
	// incoming call."
	f := New(1000, DefaultBitsPerElement)
	var tokens [][]byte
	for i := 0; i < 1000; i++ {
		tok := randToken(t)
		tokens = append(tokens, tok)
		f.Add(tok)
	}
	for i, tok := range tokens {
		if !f.Test(tok) {
			t.Fatalf("token %d missing: false negative", i)
		}
	}
}

func TestFalsePositivesAreRare(t *testing.T) {
	f := New(5000, DefaultBitsPerElement)
	for i := 0; i < 5000; i++ {
		f.Add(randToken(t))
	}
	// At 48 bits/element the design false-positive rate is 1e-10; with
	// 100k probes we expect zero hits (probability of any ≈ 1e-5).
	falsePositives := 0
	probe := make([]byte, 32)
	for i := 0; i < 100000; i++ {
		binary.BigEndian.PutUint64(probe, uint64(i)|1<<40)
		if f.Test(probe) {
			falsePositives++
		}
	}
	if falsePositives > 0 {
		t.Fatalf("%d false positives in 100k probes at 48 bits/element", falsePositives)
	}
	if fpr := f.FalsePositiveRate(); fpr > 1e-9 {
		t.Fatalf("estimated FPR %.2e exceeds design target", fpr)
	}
}

func TestSizeMatchesPaper(t *testing.T) {
	// §8.2: 125,000 tokens at 48 bits each → ~0.75 MB filter.
	f := New(125000, DefaultBitsPerElement)
	size := f.SizeBytes()
	want := 125000 * 48 / 8 // 750,000 bytes
	if size != want {
		t.Fatalf("filter size %d, want %d", size, want)
	}
	// The paper's comparison: 48 bits/element vs 256-bit raw tokens is a
	// 256/48 ≈ 5.3x bandwidth saving.
	raw := 125000 * 32
	ratio := float64(raw) / float64(size)
	if ratio < 5.0 || ratio > 5.7 {
		t.Fatalf("saving ratio %.2f, want ~5.3 (filter=%d raw=%d)", ratio, size, raw)
	}
}

func TestOptimalHashes(t *testing.T) {
	if k := OptimalHashes(48); k != 33 {
		t.Fatalf("k for 48 bits/elem = %d, want 33", k)
	}
	if k := OptimalHashes(1); k != 1 {
		t.Fatalf("k for 1 bit/elem = %d, want 1", k)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := New(100, DefaultBitsPerElement)
	var tokens [][]byte
	for i := 0; i < 100; i++ {
		tok := randToken(t)
		tokens = append(tokens, tok)
		f.Add(tok)
	}
	g, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range tokens {
		if !g.Test(tok) {
			t.Fatal("round-tripped filter lost an element")
		}
	}
	if g.Entries() != f.Entries() {
		t.Fatal("entry count not preserved")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := Unmarshal(make([]byte, 19)); err == nil {
		t.Fatal("short header accepted")
	}
	f := New(10, 48)
	enc := f.Marshal()
	if _, err := Unmarshal(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated bit array accepted")
	}
	bad := make([]byte, 20)
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("zero parameters accepted")
	}
}

func TestEmptyFilter(t *testing.T) {
	f := New(0, DefaultBitsPerElement)
	if f.Test(randToken(t)) {
		t.Fatal("empty filter claims membership")
	}
	if f.FalsePositiveRate() != 0 {
		t.Fatal("empty filter has nonzero FPR estimate")
	}
}

func TestMembershipProperty(t *testing.T) {
	f := New(500, DefaultBitsPerElement)
	prop := func(elem []byte) bool {
		f.Add(elem)
		return f.Test(elem)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
