package core

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"encoding/json"
	"fmt"

	"alpenhorn/internal/keywheel"
)

// Persister stores the client's serialized state after every mutation.
// Implementations decide where it goes (a file, an encrypted blob, memory).
//
// Note on forward secrecy: the persisted state contains the current
// keywheel positions. The client re-persists after every wheel advance,
// and a real deployment must ensure the storage layer actually destroys
// old versions (the paper's §3.3 discusses SSDs that do not overwrite in
// place). That property belongs to the Persister implementation.
type Persister interface {
	Save(state []byte) error
}

// persistedState is the JSON (de)serialization schema.
type persistedState struct {
	Email       string            `json:"email"`
	SigningPub  []byte            `json:"signing_pub"`
	SigningPriv []byte            `json:"signing_priv"`
	DialRound   uint32            `json:"dial_round"`
	Friends     []persistedFriend `json:"friends"`
	Pending     []persistedPend   `json:"pending"`
	Calls       []persistedCall   `json:"calls"`
	// The dial-scan backlog and its cursor: published rounds still
	// awaiting a scan, and the newest round ever queued. Persisting them
	// lets a client restarted mid-round resume its scans exactly where it
	// stopped instead of rebuilding the backlog from frontend status
	// (and re-fetching — or worse, missing — rounds in between).
	DialBacklog []uint32 `json:"dial_backlog,omitempty"`
	LastQueued  uint32   `json:"last_queued,omitempty"`
}

type persistedFriend struct {
	Email      string `json:"email"`
	SigningKey []byte `json:"signing_key"`
	Confirmed  bool   `json:"confirmed"`
	Wheel      []byte `json:"wheel"`
}

type persistedPend struct {
	Email          string `json:"email"`
	ExpectedKey    []byte `json:"expected_key,omitempty"`
	Queued         bool   `json:"queued"`
	DHPriv         []byte `json:"dh_priv,omitempty"`
	MyDialRound    uint32 `json:"my_dial_round"`
	IsResponse     bool   `json:"is_response"`
	TheirKey       []byte `json:"their_key,omitempty"`
	TheirDH        []byte `json:"their_dh,omitempty"`
	TheirDialRound uint32 `json:"their_dial_round"`
}

type persistedCall struct {
	Friend string `json:"friend"`
	Intent uint32 `json:"intent"`
}

// persistLocked serializes state to the configured Persister. Caller holds
// c.mu. Persistence failures are reported through the handler rather than
// failing the protocol operation.
func (c *Client) persistLocked() {
	if c.cfg.Persister == nil {
		return
	}
	state, err := c.marshalStateLocked()
	if err == nil {
		err = c.cfg.Persister.Save(state)
	}
	if err != nil {
		go c.cfg.Handler.Error(fmt.Errorf("core: persisting state: %w", err))
	}
}

func (c *Client) marshalStateLocked() ([]byte, error) {
	st := persistedState{
		Email:       c.cfg.Email,
		SigningPub:  c.signingPub,
		SigningPriv: c.signingPriv,
		DialRound:   c.dialRound,
		DialBacklog: append([]uint32(nil), c.dialBacklog...),
		LastQueued:  c.lastQueued,
	}
	for _, f := range c.friends {
		pf := persistedFriend{
			Email:      f.Email,
			SigningKey: f.SigningKey,
			Confirmed:  f.Confirmed,
		}
		if f.wheel != nil {
			pf.Wheel = f.wheel.Marshal()
		}
		st.Friends = append(st.Friends, pf)
	}
	for _, p := range c.pending {
		pp := persistedPend{
			Email:          p.email,
			ExpectedKey:    p.expectedKey,
			Queued:         p.queued,
			MyDialRound:    p.myDialRound,
			IsResponse:     p.isResponse,
			TheirKey:       p.theirKey,
			TheirDH:        p.theirDH,
			TheirDialRound: p.theirDialRound,
		}
		if p.dhPriv != nil {
			pp.DHPriv = p.dhPriv.Bytes()
		}
		st.Pending = append(st.Pending, pp)
	}
	for _, q := range c.calls {
		st.Calls = append(st.Calls, persistedCall{Friend: q.friend, Intent: q.intent})
	}
	return json.Marshal(st)
}

// MarshalState returns the serialized client state (the address book,
// keywheels, and long-term keys). Applications that manage persistence
// themselves call this instead of configuring a Persister.
func (c *Client) MarshalState() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.marshalStateLocked()
}

// LoadClient restores a client from serialized state. The Config's Email
// is overridden by the persisted one; server connections and handler come
// from cfg.
func LoadClient(cfg Config, state []byte) (*Client, error) {
	var st persistedState
	if err := json.Unmarshal(state, &st); err != nil {
		return nil, fmt.Errorf("core: decoding state: %w", err)
	}
	cfg.Email = st.Email
	c, err := NewClient(cfg)
	if err != nil {
		return nil, err
	}
	if len(st.SigningPub) != ed25519.PublicKeySize || len(st.SigningPriv) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("core: corrupt signing keys in state")
	}
	c.signingPub = ed25519.PublicKey(st.SigningPub)
	c.signingPriv = ed25519.PrivateKey(st.SigningPriv)
	c.dialRound = st.DialRound
	c.dialBacklog = append([]uint32(nil), st.DialBacklog...)
	c.lastQueued = st.LastQueued

	for _, pf := range st.Friends {
		f := &Friend{
			Email:      pf.Email,
			SigningKey: ed25519.PublicKey(pf.SigningKey),
			Confirmed:  pf.Confirmed,
		}
		if len(pf.Wheel) > 0 {
			w, err := keywheel.Unmarshal(pf.Wheel)
			if err != nil {
				return nil, fmt.Errorf("core: friend %s: %w", pf.Email, err)
			}
			f.wheel = w
		}
		c.friends[pf.Email] = f
	}
	for _, pp := range st.Pending {
		p := &pendingFriend{
			email:          pp.Email,
			expectedKey:    pp.ExpectedKey,
			queued:         pp.Queued,
			myDialRound:    pp.MyDialRound,
			isResponse:     pp.IsResponse,
			theirKey:       pp.TheirKey,
			theirDH:        pp.TheirDH,
			theirDialRound: pp.TheirDialRound,
		}
		if len(pp.DHPriv) > 0 {
			priv, err := ecdh.X25519().NewPrivateKey(pp.DHPriv)
			if err != nil {
				return nil, fmt.Errorf("core: pending %s: %w", pp.Email, err)
			}
			p.dhPriv = priv
		}
		c.pending[pp.Email] = p
	}
	for _, q := range st.Calls {
		c.calls = append(c.calls, queuedCall{friend: q.Friend, intent: q.Intent})
	}
	return c, nil
}
