package core_test

import (
	"bytes"
	"context"
	"crypto/rand"
	"testing"

	"alpenhorn/internal/core"
	"alpenhorn/internal/ibe"
	"alpenhorn/internal/noise"
	"alpenhorn/internal/sim"
	"alpenhorn/internal/wire"
)

// These tests exercise the paper's §3.2 security goals end-to-end against
// the real protocol stack.

// TestForwardSecrecyAddFriend verifies §4.4: once a round finishes, the
// recorded mailbox ciphertexts cannot be decrypted even by an adversary
// who later compromises every PKG, because the per-round master secrets
// and the client's identity keys are gone.
func TestForwardSecrecyAddFriend(t *testing.T) {
	skipIfShort(t)
	net, err := sim.NewNetwork(sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ha := &sim.Handler{AcceptAll: true}
	hb := &sim.Handler{AcceptAll: true}
	alice, err := net.NewClient("alice@example.org", ha)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := net.NewClient("bob@example.org", hb)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.AddFriend(bob.Email(), nil); err != nil {
		t.Fatal(err)
	}

	// Run round 1 and record the published mailbox like a global
	// passive adversary would.
	clients := []*core.Client{alice, bob}
	if err := net.RunAddFriendRound(1, clients); err != nil {
		t.Fatal(err)
	}
	settings, err := net.Entry.Settings(wire.AddFriend, 1)
	if err != nil {
		t.Fatal(err)
	}
	recorded, err := net.CDN.Fetch(wire.AddFriend, 1, wire.MailboxID(bob.Email(), settings.NumMailboxes))
	if err != nil {
		t.Fatal(err)
	}
	if len(recorded) == 0 {
		t.Fatal("expected requests in bob's mailbox")
	}

	// AFTER the round: the adversary seizes every PKG. The round master
	// secrets were erased by FinishAddFriendRound inside RunAddFriendRound,
	// so no combination of server state can re-derive Bob's round-1 key.
	for _, pkg := range net.PKGs {
		if pkg.RoundOpen(1) {
			t.Fatal("a PKG still holds round 1's master secret")
		}
	}

	// Even a hypothetical adversary that NOW extracts "bob@example.org"
	// keys for a fresh round cannot decrypt round 1's ciphertexts.
	if _, err := net.Coord.OpenAddFriendRound(99); err != nil {
		t.Fatal(err)
	}
	var freshKeys []*ibe.IdentityPrivateKey
	for _, pkg := range net.PKGs {
		rk, err := pkg.NewRound(99)
		if err != nil {
			t.Fatal(err)
		}
		_ = rk
	}
	// Direct server-side extraction (adversary controls the PKGs now).
	for range net.PKGs {
		// The adversary can mint round-99 keys at will, but those are
		// useless for round 1: each ciphertext was encrypted under
		// round 1's aggregated master key.
		break
	}
	_ = freshKeys
	for off := 0; off+wire.EncryptedFriendRequestSize <= len(recorded); off += wire.EncryptedFriendRequestSize {
		// Try to decrypt with a random identity key — stands in for
		// any key the adversary can still produce; decryption must
		// fail because no round-1 key material exists anywhere.
		_, msk, err := ibe.Setup(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		fake := ibe.Extract(msk, bob.Email())
		if _, ok := ibe.Decrypt(fake, recorded[off:off+wire.EncryptedFriendRequestSize]); ok {
			t.Fatal("recorded ciphertext decrypted after round closed")
		}
	}
}

// TestForwardSecrecyDialing verifies §5.1: after the client processes a
// dialing round, its keywheel state reveals nothing about earlier rounds'
// tokens or session keys.
func TestForwardSecrecyDialing(t *testing.T) {
	skipIfShort(t)
	net, err := sim.NewNetwork(sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ha := &sim.Handler{AcceptAll: true}
	hb := &sim.Handler{AcceptAll: true}
	alice, _ := net.NewClient("alice@example.org", ha)
	bob, _ := net.NewClient("bob@example.org", hb)
	if err := net.Befriend(alice, bob, 1); err != nil {
		t.Fatal(err)
	}
	clients := []*core.Client{alice, bob}

	// A call completes in some round r.
	if err := alice.Call(bob.Email(), 0); err != nil {
		t.Fatal(err)
	}
	for r := uint32(1); r <= 6; r++ {
		if err := net.RunDialRound(r, clients); err != nil {
			t.Fatal(err)
		}
		if len(hb.IncomingCalls()) > 0 {
			break
		}
	}
	in := hb.IncomingCalls()
	if len(in) != 1 {
		t.Fatal("call did not complete")
	}
	callRound := in[0].Round

	// Run two more (cover) rounds, then "compromise" Bob: serialize his
	// state as an adversary with disk access would see it.
	for r := callRound + 1; r <= callRound+2; r++ {
		if err := net.RunDialRound(r, clients); err != nil {
			t.Fatal(err)
		}
	}
	state, err := bob.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	// The state must not contain the session key of the completed call:
	// wheels have advanced past callRound and old secrets were erased.
	if bytes.Contains(state, in[0].SessionKey[:16]) {
		t.Fatal("compromised state contains a past session key")
	}

	// A restored client (the adversary running Bob's code) cannot
	// re-derive the old round's tokens either.
	evil, err := core.LoadClient(net.ClientConfig(bob.Email(), &sim.Handler{}), state)
	if err != nil {
		t.Fatal(err)
	}
	if evil.DialRound() <= callRound {
		t.Fatal("restored client claims access to past rounds")
	}
}

// TestCoverTrafficUniformity verifies the observable-metadata side of §3.2:
// at the entry server, a client who adds a friend and a client doing
// nothing submit byte-identical-length requests, and the batch reveals
// only its size.
func TestCoverTrafficUniformity(t *testing.T) {
	skipIfShort(t)
	net, err := sim.NewNetwork(sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ha := &sim.Handler{AcceptAll: true}
	hb := &sim.Handler{AcceptAll: true}
	alice, _ := net.NewClient("alice@example.org", ha)
	bob, _ := net.NewClient("bob@example.org", hb)

	// Alice is adding a friend; Bob is idle.
	if err := alice.AddFriend(bob.Email(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Coord.OpenAddFriendRound(1); err != nil {
		t.Fatal(err)
	}
	if err := alice.SubmitAddFriendRound(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if err := bob.SubmitAddFriendRound(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	batch, err := net.Entry.CloseRound(wire.AddFriend, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 {
		t.Fatalf("batch size %d", len(batch))
	}
	if len(batch[0]) != len(batch[1]) {
		t.Fatalf("request sizes differ: %d vs %d — activity is visible!",
			len(batch[0]), len(batch[1]))
	}
	if bytes.Equal(batch[0], batch[1]) {
		t.Fatal("requests are identical — randomization broken")
	}
}

// TestNoiseMakesMailboxCountsNoisy verifies §6: mailbox sizes include
// server noise, so an adversary watching mailbox sizes cannot count real
// requests.
func TestNoiseMakesMailboxCountsNoisy(t *testing.T) {
	nz := noise.Laplace{Mu: 10, B: 3}
	skipIfShort(t)
	net, err := sim.NewNetwork(sim.Config{AddFriendNoise: &nz, DialingNoise: &nz})
	if err != nil {
		t.Fatal(err)
	}
	h := &sim.Handler{AcceptAll: true}
	alice, _ := net.NewClient("alice@example.org", h)

	sizes := map[int]bool{}
	for r := uint32(1); r <= 3; r++ {
		if _, err := net.Coord.OpenAddFriendRound(r); err != nil {
			t.Fatal(err)
		}
		if err := alice.SubmitAddFriendRound(context.Background(), r); err != nil {
			t.Fatal(err)
		}
		boxes, err := net.Coord.CloseRound(wire.AddFriend, r)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, b := range boxes {
			total += len(b) / wire.EncryptedFriendRequestSize
		}
		// One cover request from Alice; everything else is noise, and
		// the noise count must be ≥ 0 draws around 30.
		if total < 5 {
			t.Fatalf("round %d: only %d requests in mailboxes — noise missing", r, total)
		}
		sizes[total] = true
		net.Coord.FinishAddFriendRound(r)
		if err := alice.ScanAddFriendRound(context.Background(), r); err != nil {
			t.Fatal(err)
		}
	}
	if len(sizes) < 2 {
		t.Fatal("mailbox totals identical across rounds — Laplace noise not randomizing")
	}
}

// TestTamperedSettingsRejected verifies that a client refuses to
// participate in a round whose settings fail signature verification (a
// malicious entry server substituting its own mixer keys).
func TestTamperedSettingsRejected(t *testing.T) {
	skipIfShort(t)
	net, err := sim.NewNetwork(sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := &sim.Handler{AcceptAll: true}
	alice, err := net.NewClient("alice@example.org", h)
	if err != nil {
		t.Fatal(err)
	}
	settings, err := net.Coord.OpenAddFriendRound(1)
	if err != nil {
		t.Fatal(err)
	}
	// The adversary swaps the first mixer's onion key for its own.
	settings.Mixers[0].OnionKey = make([]byte, 32)
	if err := alice.SubmitAddFriendRound(context.Background(), 1); err == nil {
		t.Fatal("client used settings with a forged mixer key")
	}
}

// TestMalformedMailboxReported verifies the client surfaces (rather than
// silently ignores) a malformed mailbox.
func TestMalformedMailboxReported(t *testing.T) {
	skipIfShort(t)
	net, err := sim.NewNetwork(sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := &sim.Handler{AcceptAll: true}
	alice, err := net.NewClient("alice@example.org", h)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Coord.OpenDialingRound(1); err != nil {
		t.Fatal(err)
	}
	if err := alice.SubmitDialRound(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	// Publish garbage instead of running the mixers.
	if _, err := net.Entry.CloseRound(wire.Dialing, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.CDN.Publish(wire.Dialing, 1, map[uint32][]byte{0: []byte("garbage")}); err != nil {
		t.Fatal(err)
	}
	if err := alice.ScanDialRound(context.Background(), 1); err == nil {
		t.Fatal("client accepted a garbage Bloom filter")
	}
}
