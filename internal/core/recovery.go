package core

import (
	"context"
	"crypto/ed25519"
	"fmt"
)

// This file implements the client-compromise recovery procedure from §9 of
// the paper ("Client compromise" / "Lost client state"):
//
//  1. The user deregisters their old signing key at every PKG (signed with
//     the old key, so the thief cannot block it), which starts the 30-day
//     lockout that keeps the thief from re-registering the address.
//  2. The user generates a fresh long-term signing key.
//  3. All keywheels are destroyed (their secrets are in the adversary's
//     hands) and the friendship list — ideally restored from an offline
//     backup of friends' long-term keys, which the paper recommends — is
//     re-established by re-running the add-friend protocol with each
//     friend, now with out-of-band key pinning.

// RecoveryBackup is the offline backup the paper recommends keeping: the
// friends' long-term signing keys, and nothing else (backing up keywheels
// would defeat forward secrecy, §9).
type RecoveryBackup struct {
	Friends map[string]ed25519.PublicKey
}

// ExportBackup produces the offline backup for this client's address book.
// Store it somewhere an adversary who compromises the machine cannot reach.
func (c *Client) ExportBackup() *RecoveryBackup {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := &RecoveryBackup{Friends: make(map[string]ed25519.PublicKey)}
	for _, f := range c.friends {
		if f.Confirmed && len(f.SigningKey) == ed25519.PublicKeySize {
			key := make(ed25519.PublicKey, ed25519.PublicKeySize)
			copy(key, f.SigningKey)
			b.Friends[f.Email] = key
		}
	}
	return b
}

// RecoverFromCompromise executes the §9 procedure. It deregisters the old
// key everywhere, erases all local secrets, installs a fresh signing key,
// and queues a pinned AddFriend request to every friend in the backup.
//
// After this call the client must re-Register() (and re-confirm via email)
// before participating in rounds again; the PKGs' lockout windows admit the
// new registration because the deregistration was signed by the old key.
func (c *Client) RecoverFromCompromise(ctx context.Context, backup *RecoveryBackup) error {
	// Step 1: revoke the old key while we still can.
	if err := c.Deregister(ctx); err != nil {
		return fmt.Errorf("core: deregistering old key: %w", err)
	}

	c.mu.Lock()
	// Step 2: fresh long-term key.
	pub, priv, err := ed25519.GenerateKey(c.cfg.Rand)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	c.signingPub, c.signingPriv = pub, priv

	// Step 3: burn everything the adversary saw.
	for _, f := range c.friends {
		if f.wheel != nil {
			f.wheel.Erase()
		}
	}
	c.friends = make(map[string]*Friend)
	c.pending = make(map[string]*pendingFriend)
	c.calls = nil
	for round, rs := range c.roundKeys {
		rs.identityKey.Erase()
		delete(c.roundKeys, round)
	}

	// Step 4: queue re-friending with out-of-band pinned keys from the
	// backup, so a MITM (who, after all, has our OLD key) cannot slip
	// into the re-established friendships.
	if backup != nil {
		for email, key := range backup.Friends {
			c.pending[email] = &pendingFriend{
				email:       email,
				expectedKey: key,
				queued:      true,
			}
		}
	}
	c.persistLocked()
	c.mu.Unlock()
	return nil
}
