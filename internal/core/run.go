package core

// This file is the client's managed round loop: the event-driven
// connection behind the paper's Figure 1 API. Applications call Run (or
// the per-service ConnectAddFriend / ConnectDialing handles) and receive
// everything through their Handler; the library owns the mechanics that
// every consumer previously hand-rolled around frontend.Status polling:
//
//   - Round following. One shared pump per client follows the frontend's
//     round announcements — push-based through RoundWatcher (the
//     entry.events stream, resumable by cursor) with a TRANSPARENT
//     fallback to StatusProvider polling when the frontend predates the
//     stream — and reconnects with exponential backoff when the frontend
//     dies mid-round.
//   - Submit ordering. Each open round is submitted exactly once
//     (cover traffic included), and a round's add-friend mailbox is only
//     scanned when this client submitted that round (the identity keys
//     exist only then).
//   - The bounded dialing backlog. Published rounds queue through
//     QueueDialScans and drain OLDEST-FIRST in consecutive spans, each
//     span fetched with one ranged CDN request instead of per-round
//     fetches.
//   - The §5.1 give-up policy. A dialing round whose mailbox cannot be
//     fetched is retried on a TIME budget (Config.ScanRetryBudget); when
//     the budget runs out the keywheels advance past the round (forward
//     secrecy) and the loop moves on, so one evicted mailbox cannot
//     wedge scanning forever.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"alpenhorn/internal/entry"
	"alpenhorn/internal/wire"
)

const (
	// DefaultPollInterval is the Status poll cadence against frontends
	// without the event stream (Config.PollInterval overrides).
	DefaultPollInterval = 500 * time.Millisecond

	// DefaultScanRetryBudget is how long a failing dialing-round scan is
	// retried before the loop gives up and advances the keywheels
	// (Config.ScanRetryBudget overrides). §5.1's give-up is "after some
	// time" — giving up destroys that round's incoming calls, so the
	// default errs long; it also bounds the head-of-line stall a
	// CDN-evicted round can cause.
	DefaultScanRetryBudget = 5 * time.Minute

	// feedBackoffMin/Max bound the reconnect backoff when the round feed
	// loses the frontend.
	feedBackoffMin = 200 * time.Millisecond
	feedBackoffMax = 5 * time.Second

	// maxScanSpan bounds how many consecutive backlog rounds one ranged
	// mailbox fetch covers.
	maxScanSpan = 32
)

func (c *Client) pollInterval() time.Duration {
	if c.cfg.PollInterval > 0 {
		return c.cfg.PollInterval
	}
	return DefaultPollInterval
}

func (c *Client) scanRetryBudget() time.Duration {
	if c.cfg.ScanRetryBudget > 0 {
		return c.cfg.ScanRetryBudget
	}
	return DefaultScanRetryBudget
}

// roundFeed is the per-client round-announcement pump shared by every
// connected service handle. It folds announcements (pushed or polled)
// into a monotonic per-service RoundStatus and wakes waiting handles on
// every change. Reference-counted: the first handle starts it, the last
// Close stops it.
type roundFeed struct {
	c *Client

	mu      sync.Mutex
	refs    int
	state   map[wire.Service]entry.RoundStatus
	changed chan struct{} // closed and replaced on every state change

	cancel context.CancelFunc
	done   chan struct{}
}

// acquireFeed returns the client's round feed, starting it on first use.
func (c *Client) acquireFeed() (*roundFeed, error) {
	_, isWatcher := c.cfg.Entry.(RoundWatcher)
	_, isPoller := c.cfg.Entry.(StatusProvider)
	if !isWatcher && !isPoller {
		return nil, errors.New("core: Config.Entry supports neither round events (RoundWatcher) nor status polling (StatusProvider); Run needs one")
	}
	c.feedMu.Lock()
	defer c.feedMu.Unlock()
	if c.feed == nil {
		ctx, cancel := context.WithCancel(context.Background())
		f := &roundFeed{
			c:       c,
			state:   make(map[wire.Service]entry.RoundStatus),
			changed: make(chan struct{}),
			cancel:  cancel,
			done:    make(chan struct{}),
		}
		go f.run(ctx)
		c.feed = f
	}
	c.feed.refs++
	return c.feed, nil
}

// releaseFeed drops one reference; the last release stops the pump and
// waits for it to exit (no goroutine outlives the handles).
func (c *Client) releaseFeed(f *roundFeed) {
	c.feedMu.Lock()
	f.refs--
	last := f.refs == 0
	if last {
		c.feed = nil
	}
	c.feedMu.Unlock()
	if last {
		f.cancel()
		<-f.done
	}
}

// status returns a snapshot of one service's folded round progress plus
// the channel that closes on the next state change.
func (f *roundFeed) status(service wire.Service) (entry.RoundStatus, <-chan struct{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.state[service], f.changed
}

// fold merges new round progress into the state. Progress is monotonic:
// folding with max makes coalesced (gap) replies and duplicate
// announcements harmless.
func (f *roundFeed) fold(service wire.Service, st entry.RoundStatus) {
	f.mu.Lock()
	cur := f.state[service]
	dirty := false
	if st.CurrentOpen > cur.CurrentOpen {
		cur.CurrentOpen = st.CurrentOpen
		dirty = true
	}
	if st.LatestPublished > cur.LatestPublished {
		cur.LatestPublished = st.LatestPublished
		dirty = true
	}
	if dirty {
		f.state[service] = cur
		close(f.changed)
		f.changed = make(chan struct{})
	}
	f.mu.Unlock()
}

// run follows the frontend until the feed is released. Push mode parks on
// WatchRounds and folds announcement batches; on ErrEventsUnsupported it
// degrades permanently to Status polling. Transport failures reconnect
// with exponential backoff and are reported to the handler once per
// outage, not once per attempt.
func (f *roundFeed) run(ctx context.Context) {
	defer close(f.done)
	watcher, _ := f.c.cfg.Entry.(RoundWatcher)
	poller, _ := f.c.cfg.Entry.(StatusProvider)

	var cursor uint64
	backoff := feedBackoffMin
	outage := 0
	sleep := func(d time.Duration) bool {
		select {
		case <-ctx.Done():
			return false
		case <-time.After(d):
			return true
		}
	}

	for ctx.Err() == nil {
		if watcher != nil {
			anns, next, err := watcher.WatchRounds(ctx, cursor)
			if err == nil {
				cursor = next
				backoff, outage = feedBackoffMin, 0
				for _, ann := range anns {
					st := entry.RoundStatus{}
					switch ann.Kind {
					case entry.RoundOpen:
						st.CurrentOpen = ann.Round
						// Settings riding the open event (EventStreamV2,
						// or the in-process adapter) pre-fill the cache
						// BEFORE the fold wakes the service loops, so
						// their submits start from a hit.
						f.c.noteAnnouncedSettings(ann)
					case entry.RoundPublished:
						st.LatestPublished = ann.Round
					}
					f.fold(ann.Service, st)
				}
				continue
			}
			if errors.Is(err, ErrEventsUnsupported) {
				// Older frontend: degrade to polling for good.
				watcher = nil
				if poller == nil {
					f.c.reportErr(errors.New("core: frontend streams no round events and serves no status; round loop stalled"))
					<-ctx.Done()
					return
				}
				continue
			}
			if ctx.Err() != nil {
				return
			}
			if outage++; outage == 1 {
				f.c.reportErr(fmt.Errorf("core: round event stream lost: %w (reconnecting)", err))
			}
			if !sleep(backoff) {
				return
			}
			if backoff *= 2; backoff > feedBackoffMax {
				backoff = feedBackoffMax
			}
			continue
		}

		for _, service := range []wire.Service{wire.AddFriend, wire.Dialing} {
			st, err := poller.Status(ctx, service)
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				if outage++; outage == 1 {
					f.c.reportErr(fmt.Errorf("core: frontend status poll failed: %w (retrying)", err))
				}
				continue
			}
			outage = 0
			f.fold(service, st)
		}
		if !sleep(f.c.pollInterval()) {
			return
		}
	}
}

// ServiceHandle is one service's running round loop, created by
// ConnectAddFriend or ConnectDialing. Close stops it and waits for it;
// Err reports why it stopped (nil after a plain Close).
type ServiceHandle struct {
	c       *Client
	service wire.Service
	parent  context.Context
	cancel  context.CancelFunc
	done    chan struct{}

	mu  sync.Mutex
	err error
}

// ConnectAddFriend starts the add-friend round loop: it submits every
// announced round (a queued friend request or cover traffic) and scans
// every published round this client submitted.
func (c *Client) ConnectAddFriend(ctx context.Context) (*ServiceHandle, error) {
	return c.connect(ctx, wire.AddFriend)
}

// ConnectDialing starts the dialing round loop: it submits every
// announced round (a queued call or cover traffic), queues every
// published round into the bounded scan backlog, and drains the backlog
// in ranged fetches under the §5.1 retry/skip policy.
func (c *Client) ConnectDialing(ctx context.Context) (*ServiceHandle, error) {
	return c.connect(ctx, wire.Dialing)
}

func (c *Client) connect(ctx context.Context, service wire.Service) (*ServiceHandle, error) {
	feed, err := c.acquireFeed()
	if err != nil {
		return nil, err
	}
	hctx, cancel := context.WithCancel(ctx)
	h := &ServiceHandle{
		c:       c,
		service: service,
		parent:  ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	go h.loop(hctx, feed)
	return h, nil
}

// Err reports why the handle stopped: nil while running or after a plain
// Close, the context's error after a cancellation.
func (h *ServiceHandle) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}

// Done is closed when the handle's loop has fully stopped.
func (h *ServiceHandle) Done() <-chan struct{} { return h.done }

// Close stops the handle's round loop and waits for it to exit. Safe to
// call more than once.
func (h *ServiceHandle) Close() {
	h.cancel()
	<-h.done
}

// Run is the managed, event-driven connection from the paper's Figure 1:
// it participates in every add-friend and dialing round — cover traffic
// included, which is what hides the user's real activity — until ctx is
// cancelled, delivering all events through the configured Handler. It
// returns ctx.Err() once both service loops have stopped; cancellation
// mid-round interrupts in-flight server calls rather than waiting them
// out.
func (c *Client) Run(ctx context.Context) error {
	af, err := c.ConnectAddFriend(ctx)
	if err != nil {
		return err
	}
	defer af.Close()
	dl, err := c.ConnectDialing(ctx)
	if err != nil {
		return err
	}
	defer dl.Close()
	<-ctx.Done()
	return ctx.Err()
}

// serviceState is one service loop's progress bookkeeping.
type serviceState struct {
	lastSubmit uint32
	lastScan   uint32
	errStreak  int

	// §5.1 retry budget for the round whose scan keeps failing — the
	// dialing round at the backlog head, or the published add-friend
	// round gating further submissions. One round+deadline pair (not a
	// per-round map, which would leak entries for rounds the backlog cap
	// later drops).
	retryRound    uint32
	retryDeadline time.Time
	retryLogged   bool
}

// loop drives one service until its context ends, working whenever the
// feed's state changes (or a retry delay expires) and parking otherwise.
func (h *ServiceHandle) loop(ctx context.Context, feed *roundFeed) {
	defer close(h.done)
	defer h.c.releaseFeed(feed)
	defer func() {
		// The caller's context is the authoritative cause: a plain Close
		// leaves Err nil even if it races an external cancellation.
		h.mu.Lock()
		h.err = h.parent.Err()
		h.mu.Unlock()
	}()
	var st serviceState
	for {
		snap, changed := feed.status(h.service)
		retry := h.step(ctx, &st, snap)
		if ctx.Err() != nil {
			return
		}
		var timer <-chan time.Time
		if retry > 0 {
			timer = time.After(retry)
		}
		select {
		case <-ctx.Done():
			return
		case <-changed:
		case <-timer:
		}
	}
}

// step performs whatever the service's current round state calls for and
// returns a retry delay (0 = nothing pending; park until the state
// changes). The phases are independent: a submit that keeps failing (the
// round may simply have closed before we saw it) must not starve the
// scan path or the backlog drain.
func (h *ServiceHandle) step(ctx context.Context, st *serviceState, snap entry.RoundStatus) time.Duration {
	c := h.c
	var retry time.Duration
	sooner := func(d time.Duration) {
		if d > 0 && (retry == 0 || d < retry) {
			retry = d
		}
	}

	if h.service == wire.AddFriend {
		// Scan BEFORE submitting: a reconnecting client often learns
		// publish(N) and open(N+1) in one snapshot (coalesced events, or
		// one poll), and submitting N+1 first would gate round N's scan
		// off forever — losing any friend requests it carried.
		// Scan only rounds this client submitted: the round's identity
		// keys exist exactly then (and are erased by the scan).
		if snap.LatestPublished > st.lastScan && snap.LatestPublished == st.lastSubmit {
			round := snap.LatestPublished
			if err := c.ScanAddFriendRound(ctx, round); err != nil {
				// A transiently unavailable mailbox gets the same time
				// budget as a dialing scan: submitting the next round
				// would permanently gate this scan off, so HOLD further
				// submissions while the retry budget runs, then give the
				// round up and move on.
				if ctx.Err() != nil {
					return retry
				}
				if round != st.retryRound {
					st.retryRound = round
					st.retryDeadline = time.Now().Add(c.scanRetryBudget())
					st.retryLogged = false
				}
				if !time.Now().After(st.retryDeadline) {
					if !st.retryLogged {
						c.reportErr(fmt.Errorf("core: add-friend round %d scan: %w (retrying for up to %v)", round, err, c.scanRetryBudget()))
						st.retryLogged = true
					}
					sooner(c.pollInterval())
					return retry
				}
				c.reportErr(fmt.Errorf("core: add-friend round %d scan: %w (giving up after %v)", round, err, c.scanRetryBudget()))
				st.lastScan = round
				st.retryRound = 0
			} else {
				st.lastScan = round
				st.retryRound = 0
				st.errStreak = 0
			}
		}
		if snap.CurrentOpen > st.lastSubmit {
			if err := c.SubmitAddFriendRound(ctx, snap.CurrentOpen); err != nil {
				sooner(h.reportStep(ctx, st, "add-friend", snap.CurrentOpen, "submit", err))
			} else {
				st.lastSubmit = snap.CurrentOpen
				st.errStreak = 0
				// Rounds below the new submission can never be scanned
				// now; their cached identity keys must not outlive them
				// (§4.4). Covers failed rounds (never published) and
				// scans the budget gave up on.
				c.discardStaleRoundKeys(snap.CurrentOpen)
			}
		}
		return retry
	}

	if snap.CurrentOpen > st.lastSubmit {
		if err := c.SubmitDialRound(ctx, snap.CurrentOpen); err != nil {
			sooner(h.reportStep(ctx, st, "dialing", snap.CurrentOpen, "submit", err))
		} else {
			st.lastSubmit = snap.CurrentOpen
			st.errStreak = 0
		}
	}
	if snap.LatestPublished > 0 {
		c.QueueDialScans(snap.LatestPublished)
	}
	sooner(h.drainDialBacklog(ctx, st))
	return retry
}

// reportStep reports a failing submit/scan once per streak and paces the
// retry. The failed round stays un-acknowledged in the loop state, so the
// next step retries it until the frontend moves on.
func (h *ServiceHandle) reportStep(ctx context.Context, st *serviceState, service string, round uint32, phase string, err error) time.Duration {
	if ctx.Err() != nil {
		return 0
	}
	if st.errStreak++; st.errStreak == 1 {
		h.c.reportErr(fmt.Errorf("core: %s round %d %s: %w (will retry)", service, round, phase, err))
	}
	return h.c.pollInterval()
}

// drainDialBacklog scans queued published rounds oldest-first. A span of
// consecutive rounds is PEEKED (each round leaves the crash-persistent
// backlog only when its scan completes, so a restart mid-span resumes
// exactly where it stopped) and its mailboxes fetched with ONE ranged CDN
// request; a round that cannot be scanned is retried on the §5.1 time
// budget and then skipped (keywheels advanced) so the backlog keeps
// draining in order. A failure in the middle of a span never blocks the
// rounds before it: the scannable prefix is processed first and the
// failing round handles its budget when it reaches the head.
func (h *ServiceHandle) drainDialBacklog(ctx context.Context, st *serviceState) time.Duration {
	c := h.c
	for {
		span := c.peekDialScanSpan(maxScanSpan)
		if len(span) == 0 {
			return 0
		}

		// Per-round settings: NumMailboxes (and so this client's mailbox
		// ID) can differ between rounds. Usually a cache hit — the round's
		// open announcement or submit already delivered them.
		var failed error
		mailboxes := make([]uint32, 0, len(span))
		for _, round := range span {
			settings, err := c.roundSettings(ctx, wire.Dialing, round, false)
			if err != nil {
				failed = fmt.Errorf("core: dialing round %d settings: %w", round, err)
				break
			}
			mailboxes = append(mailboxes, wire.MailboxID(c.cfg.Email, settings.NumMailboxes))
		}
		if len(mailboxes) == 0 {
			return h.scanFailed(ctx, st, span[0], failed)
		}
		span = span[:len(mailboxes)] // scan the working prefix first

		// Fetch the span's mailboxes: one ranged request per run of equal
		// mailbox IDs (a single Fetch when the run is one round).
		boxes := make(map[uint32][]byte, len(span))
		fetched := len(span)
		for lo := 0; lo < len(span); {
			hi := lo + 1
			for hi < len(span) && mailboxes[hi] == mailboxes[lo] {
				hi++
			}
			if hi-lo == 1 {
				box, err := c.cfg.Mailboxes.Fetch(ctx, wire.Dialing, span[lo], mailboxes[lo])
				if err == nil {
					boxes[span[lo]] = box
				}
				// A failed single fetch leaves the round absent, like a
				// ranged reply: the scan loop below applies the budget.
			} else if ranged, err := c.cfg.Mailboxes.FetchRange(ctx, wire.Dialing, span[lo], span[hi-1], mailboxes[lo]); err == nil {
				for r, box := range ranged {
					boxes[r] = box
				}
			} else {
				failed = fmt.Errorf("core: ranged mailbox fetch rounds %d-%d: %w", span[lo], span[hi-1], err)
				fetched = lo
				break
			}
			lo = hi
		}
		if fetched == 0 {
			return h.scanFailed(ctx, st, span[0], failed)
		}
		span = span[:fetched]

		for _, round := range span {
			box, ok := boxes[round]
			if !ok {
				return h.scanFailed(ctx, st, round, fmt.Errorf("core: dialing round %d mailbox unavailable", round))
			}
			if err := c.scanDialBox(round, box); err != nil {
				return h.scanFailed(ctx, st, round, fmt.Errorf("core: dialing round %d scan: %w", round, err))
			}
			c.finishDialScan(round)
			if round == st.retryRound {
				st.retryRound = 0 // the struggling round made it after all
			}
		}
	}
}

// scanFailed applies the §5.1 policy to a round that could not be
// scanned. Every round before it in the span has already been scanned
// and removed, so the failing round is at the backlog head: retry within
// the time budget, then give up — advance the keywheels past the round
// (destroying its calls, preserving forward secrecy), drop it from the
// backlog, and keep draining.
func (h *ServiceHandle) scanFailed(ctx context.Context, st *serviceState, round uint32, err error) time.Duration {
	c := h.c
	if ctx.Err() != nil {
		return 0
	}
	if round != st.retryRound {
		st.retryRound = round
		st.retryDeadline = time.Now().Add(c.scanRetryBudget())
		st.retryLogged = false
	}
	if time.Now().After(st.retryDeadline) {
		c.reportErr(fmt.Errorf("%w (giving up after %v, advancing keywheels)", err, c.scanRetryBudget()))
		c.SkipDialRound(round)
		c.finishDialScan(round)
		st.retryRound = 0
		// More backlog may be scannable right now.
		return time.Nanosecond
	}
	if !st.retryLogged {
		c.reportErr(fmt.Errorf("%w (retrying for up to %v)", err, c.scanRetryBudget()))
		st.retryLogged = true
	}
	return c.pollInterval()
}
