package core_test

import (
	"strings"
	"testing"
)

// TestDialBacklogBounded pins the client's memory bound when it falls far
// behind the dialing schedule: the scan backlog keeps only the newest
// DefaultMaxDialBacklog rounds, the dropped count is reported through the
// handler, and the dropped rounds' keywheel secrets are advanced away
// (forward secrecy — the same move as SkipDialRound).
func TestDialBacklogBounded(t *testing.T) {
	_, alice, ha, _, _ := newPair(t)

	const latest = 200
	const kept = 64 // core.DefaultMaxDialBacklog
	errsBefore := ha.ErrorCount()
	alice.QueueDialScans(latest)

	if got := alice.DialBacklog(); got != kept {
		t.Fatalf("backlog after falling %d rounds behind: %d, want %d", latest, got, kept)
	}
	if ha.ErrorCount() != errsBefore+1 {
		t.Fatalf("dropped rounds not reported: %d errors", ha.ErrorCount()-errsBefore)
	}
	if msg := ha.LastError().Error(); !strings.Contains(msg, "dropped 136 oldest rounds") {
		t.Fatalf("drop report: %q", msg)
	}
	// Forward secrecy: the client's dial round advanced past every
	// dropped round (wheel secrets for them are gone).
	if got := alice.DialRound(); got != latest-kept+1 {
		t.Fatalf("dial round after drop: %d, want %d", got, latest-kept+1)
	}

	// The kept rounds drain oldest-first, and a failed scan can be
	// requeued without growing the backlog.
	r, ok := alice.NextDialScan()
	if !ok || r != latest-kept+1 {
		t.Fatalf("NextDialScan: %d/%v, want %d", r, ok, latest-kept+1)
	}
	alice.RequeueDialScan(r)
	if r2, _ := alice.NextDialScan(); r2 != r {
		t.Fatalf("requeued round not returned first: %d != %d", r2, r)
	}
	if got := alice.DialBacklog(); got != kept-1 {
		t.Fatalf("backlog after one pop: %d, want %d", got, kept-1)
	}

	// Re-announcing an already-queued latest round queues nothing new.
	alice.QueueDialScans(latest)
	if got := alice.DialBacklog(); got != kept-1 {
		t.Fatalf("idempotent re-queue grew the backlog: %d", got)
	}
}

// TestQueueDialScansAfterSkip is the regression pin for an off-by-one
// that made the round loop skip EVERY OTHER dialing round: after a
// client processes (or skips) round r, its dialRound is r+1 — and round
// r+1, once published, must still be queued for scanning.
func TestQueueDialScansAfterSkip(t *testing.T) {
	_, _, _, bob, _ := newPair(t)
	bob.SkipDialRound(5) // dialRound is now 6
	bob.QueueDialScans(6)
	if r, ok := bob.NextDialScan(); !ok || r != 6 {
		t.Fatalf("round 6 not queued after processing round 5: got %d/%v", r, ok)
	}
}
