package core

import (
	"crypto/ed25519"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// backlogHandler records errors; the backlog tests need nothing else.
type backlogHandler struct {
	mu     sync.Mutex
	errors []error
}

func (h *backlogHandler) NewFriend(string, ed25519.PublicKey) bool { return false }
func (h *backlogHandler) ConfirmedFriend(string)                   {}
func (h *backlogHandler) IncomingCall(Call)                        {}
func (h *backlogHandler) OutgoingCall(Call)                        {}
func (h *backlogHandler) Error(err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.errors = append(h.errors, err)
}

func (h *backlogHandler) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.errors)
}

func (h *backlogHandler) last() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.errors) == 0 {
		return nil
	}
	return h.errors[len(h.errors)-1]
}

// newBacklogClient builds a bare client: the backlog needs no servers.
func newBacklogClient(h *backlogHandler) *Client {
	return &Client{
		cfg:       Config{Email: "backlog@example.org", Handler: h},
		friends:   make(map[string]*Friend),
		pending:   make(map[string]*pendingFriend),
		roundKeys: make(map[uint32]*roundSecrets),
	}
}

// TestDialBacklogBounded pins the client's memory bound when it falls far
// behind the dialing schedule: the scan backlog keeps only the newest
// DefaultMaxDialBacklog rounds, the dropped count is reported through the
// handler, and the dropped rounds' keywheel secrets are advanced away
// (forward secrecy — the same move as SkipDialRound).
func TestDialBacklogBounded(t *testing.T) {
	h := &backlogHandler{}
	alice := newBacklogClient(h)

	const latest = 200
	const kept = DefaultMaxDialBacklog
	alice.QueueDialScans(latest)

	if got := alice.DialBacklog(); got != kept {
		t.Fatalf("backlog after falling %d rounds behind: %d, want %d", latest, got, kept)
	}
	if h.count() != 1 {
		t.Fatalf("dropped rounds not reported: %d errors", h.count())
	}
	if msg := h.last().Error(); !strings.Contains(msg, "dropped 136 oldest rounds") {
		t.Fatalf("drop report: %q", msg)
	}
	// Forward secrecy: the client's dial round advanced past every
	// dropped round (wheel secrets for them are gone).
	if got := alice.DialRound(); got != latest-kept+1 {
		t.Fatalf("dial round after drop: %d, want %d", got, latest-kept+1)
	}

	// The kept rounds drain oldest-first in consecutive spans; rounds
	// leave the backlog only when their scan completes (finishDialScan),
	// so the persisted backlog never loses in-flight rounds.
	span := alice.peekDialScanSpan(16)
	if len(span) != 16 || span[0] != latest-kept+1 {
		t.Fatalf("peeked span %v, want 16 rounds from %d", span, latest-kept+1)
	}
	if got := alice.DialBacklog(); got != kept {
		t.Fatalf("peek removed rounds: backlog %d, want %d", got, kept)
	}
	alice.finishDialScan(span[0])
	if got := alice.DialBacklog(); got != kept-1 {
		t.Fatalf("backlog after one finished scan: %d, want %d", got, kept-1)
	}
	if next := alice.peekDialScanSpan(1); len(next) != 1 || next[0] != span[1] {
		t.Fatalf("next span head %v, want %d", next, span[1])
	}

	// Re-announcing an already-queued latest round queues nothing new.
	alice.QueueDialScans(latest)
	if got := alice.DialBacklog(); got != kept-1 {
		t.Fatalf("idempotent re-queue grew the backlog: %d", got)
	}
}

// TestQueueDialScansAfterSkip is the regression pin for an off-by-one
// that made the round loop skip EVERY OTHER dialing round: after a
// client processes (or skips) round r, its dialRound is r+1 — and round
// r+1, once published, must still be queued for scanning.
func TestQueueDialScansAfterSkip(t *testing.T) {
	bob := newBacklogClient(&backlogHandler{})
	bob.SkipDialRound(5) // dialRound is now 6
	bob.QueueDialScans(6)
	if span := bob.peekDialScanSpan(1); len(span) != 1 || span[0] != 6 {
		t.Fatalf("round 6 not queued after processing round 5: got %v", span)
	}
}

// TestFinishDialScanPersists pins the crash-safety contract: a round
// leaves the persisted backlog exactly when its scan completes, so state
// written mid-span still names every unscanned round.
func TestFinishDialScanPersists(t *testing.T) {
	alice := newBacklogClient(&backlogHandler{})
	var last []byte
	alice.cfg.Persister = persistFunc(func(state []byte) error {
		last = append(last[:0], state...)
		return nil
	})

	alice.QueueDialScans(3) // rounds 1..3
	alice.finishDialScan(2)
	if got := alice.DialBacklog(); got != 2 {
		t.Fatalf("backlog %d after finishing one round, want 2", got)
	}
	var st persistedState
	if err := json.Unmarshal(last, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.DialBacklog) != 2 || st.DialBacklog[0] != 1 || st.DialBacklog[1] != 3 {
		t.Fatalf("persisted backlog %v, want [1 3]", st.DialBacklog)
	}
	if st.LastQueued != 3 {
		t.Fatalf("persisted cursor %d, want 3", st.LastQueued)
	}
}

// persistFunc adapts a function to the Persister interface.
type persistFunc func([]byte) error

func (f persistFunc) Save(state []byte) error { return f(state) }
