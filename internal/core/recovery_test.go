package core_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"alpenhorn/internal/core"
	"alpenhorn/internal/pkgserver"
	"alpenhorn/internal/sim"
)

// TestCompromiseRecovery runs the full §9 procedure: Alice's machine is
// compromised; she deregisters, re-keys, re-registers after the lockout,
// and re-establishes her friendship with Bob using the offline key backup —
// all while the adversary holds her old keys.
func TestCompromiseRecovery(t *testing.T) {
	clock := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	skipIfShort(t)
	net, err := sim.NewNetwork(sim.Config{Now: func() time.Time { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	ha := &sim.Handler{AcceptAll: true}
	hb := &sim.Handler{AcceptAll: true}
	alice, err := net.NewClient("alice@example.org", ha)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := net.NewClient("bob@example.org", hb)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Befriend(alice, bob, 1); err != nil {
		t.Fatal(err)
	}

	// Alice keeps the recommended offline backup.
	backup := alice.ExportBackup()
	if !bytes.Equal(backup.Friends[bob.Email()], bob.SigningKey()) {
		t.Fatal("backup missing bob's key")
	}
	oldKey := alice.SigningKey()

	// Compromise day: Alice recovers.
	if err := alice.RecoverFromCompromise(context.Background(), backup); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(alice.SigningKey(), oldKey) {
		t.Fatal("signing key not rotated")
	}
	if alice.IsFriend(bob.Email()) {
		t.Fatal("friend list not burned")
	}

	// The adversary (holding the OLD key) cannot re-register the address
	// during the lockout.
	for i, pkg := range net.PKGs {
		if err := pkg.Register("alice@example.org", oldKey); err != pkgserver.ErrLockedOut {
			t.Fatalf("PKG %d: adversary registration got %v, want ErrLockedOut", i, err)
		}
	}

	// After the lockout period Alice re-registers with her NEW key via
	// email confirmation.
	clock = clock.Add(pkgserver.LockoutPeriod + time.Hour)
	if err := alice.Register(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := net.ConfirmAll(alice); err != nil {
		t.Fatal(err)
	}

	// Re-friending runs with Bob's key pinned from the backup; Bob's
	// handler sees a fresh request from Alice and accepts.
	clients := []*core.Client{alice, bob}
	if err := net.RunAddFriendRound(10, clients); err != nil {
		t.Fatal(err)
	}
	if err := net.RunAddFriendRound(11, clients); err != nil {
		t.Fatal(err)
	}
	if !alice.IsFriend(bob.Email()) || !bob.IsFriend(alice.Email()) {
		t.Fatal("friendship not re-established after recovery")
	}

	// And calls work again with fresh keywheels.
	if err := alice.Call(bob.Email(), 0); err != nil {
		t.Fatal(err)
	}
	for r := uint32(1); r <= 16; r++ {
		if err := net.RunDialRound(r, clients); err != nil {
			t.Fatal(err)
		}
		if len(hb.IncomingCalls()) > 0 {
			break
		}
	}
	if len(hb.IncomingCalls()) == 0 {
		t.Fatal("no call after recovery")
	}
}
