package core_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"alpenhorn/internal/core"
	"alpenhorn/internal/sim"
	"alpenhorn/internal/wire"
)

// countingEntry wraps the in-process entry transport and counts
// SUCCESSFUL submissions per (service, round); the Run loop must never
// land two submissions from one client in the same round.
type countingEntry struct {
	sim.EntryAdapter
	mu      sync.Mutex
	submits map[wire.Service]map[uint32]int
}

func newCountingEntry(a sim.EntryAdapter) *countingEntry {
	return &countingEntry{EntryAdapter: a, submits: make(map[wire.Service]map[uint32]int)}
}

func (e *countingEntry) Submit(ctx context.Context, service wire.Service, round uint32, onion []byte) error {
	err := e.EntryAdapter.Submit(ctx, service, round, onion)
	if err == nil {
		e.mu.Lock()
		if e.submits[service] == nil {
			e.submits[service] = make(map[uint32]int)
		}
		e.submits[service][round]++
		e.mu.Unlock()
	}
	return err
}

func (e *countingEntry) maxSubmits() (wire.Service, uint32, int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var ms wire.Service
	var mr uint32
	var mn int
	for service, rounds := range e.submits {
		for round, n := range rounds {
			if n > mn {
				ms, mr, mn = service, round, n
			}
		}
	}
	return ms, mr, mn
}

// pollOnlyEntry hides the push surface: it satisfies core.EntryServer and
// core.StatusProvider but NOT core.RoundWatcher, standing in for a
// frontend transport that predates entry.events.
type pollOnlyEntry struct {
	a sim.EntryAdapter
}

func (p pollOnlyEntry) Settings(ctx context.Context, service wire.Service, round uint32) (*wire.RoundSettings, error) {
	return p.a.Settings(ctx, service, round)
}

func (p pollOnlyEntry) Submit(ctx context.Context, service wire.Service, round uint32, onion []byte) error {
	return p.a.Submit(ctx, service, round, onion)
}

func (p pollOnlyEntry) Status(ctx context.Context, service wire.Service) (core.RoundStatus, error) {
	return p.a.Status(ctx, service)
}

// countingStore wraps the in-process CDN transport and records ranged vs
// per-round fetches.
type countingStore struct {
	sim.CDNAdapter
	mu      sync.Mutex
	fetches []uint32    // rounds fetched one at a time
	ranges  [][2]uint32 // [from, to] spans fetched with one request
}

func (s *countingStore) Fetch(ctx context.Context, service wire.Service, round uint32, mailbox uint32) ([]byte, error) {
	s.mu.Lock()
	s.fetches = append(s.fetches, round)
	s.mu.Unlock()
	return s.CDNAdapter.Fetch(ctx, service, round, mailbox)
}

func (s *countingStore) FetchRange(ctx context.Context, service wire.Service, fromRound, toRound uint32, mailbox uint32) (map[uint32][]byte, error) {
	s.mu.Lock()
	s.ranges = append(s.ranges, [2]uint32{fromRound, toRound})
	s.mu.Unlock()
	return s.CDNAdapter.FetchRange(ctx, service, fromRound, toRound, mailbox)
}

// waitUntil polls cond until it holds or the timeout expires.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunLifecycle drives the full event-driven API end to end in
// process: two Run clients complete a friendship handshake and a call
// purely from round announcements, no client ever double-submits a
// round, and cancelling the context returns promptly without leaking
// goroutines.
func TestRunLifecycle(t *testing.T) {
	skipIfShort(t)
	baseline := runtime.NumGoroutine()

	net, err := sim.NewNetwork(sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	counting := newCountingEntry(sim.EntryAdapter{E: net.Entry})
	newRunClient := func(addr string, h *sim.Handler) *core.Client {
		cfg := net.ClientConfig(addr, h)
		cfg.Entry = counting
		c, err := core.NewClient(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Register(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := net.ConfirmAll(c); err != nil {
			t.Fatal(err)
		}
		return c
	}
	ha := &sim.Handler{AcceptAll: true}
	hb := &sim.Handler{AcceptAll: true}
	alice := newRunClient("alice@example.org", ha)
	bob := newRunClient("bob@example.org", hb)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net.StartRounds(ctx, sim.RoundDriver{WaitSubmissions: 2})
	errc := make(chan error, 2)
	go func() { errc <- alice.Run(ctx) }()
	go func() { errc <- bob.Run(ctx) }()

	if err := alice.AddFriend("bob@example.org", nil); err != nil {
		t.Fatal(err)
	}
	if !ha.WaitConfirmed("bob@example.org", time.Minute) || !hb.WaitConfirmed("alice@example.org", time.Minute) {
		t.Fatal("friendship did not complete under Run")
	}
	if err := alice.Call("bob@example.org", 3); err != nil {
		t.Fatal(err)
	}
	in, ok := hb.WaitIncoming(1, time.Minute)
	if !ok {
		t.Fatal("call not received under Run")
	}
	out, _ := ha.WaitOutgoing(1, time.Minute)
	if in[0].SessionKey != out[0].SessionKey {
		t.Fatal("session keys differ")
	}

	// No round was ever double-submitted by a client: with two clients,
	// a round carries at most two successful submissions.
	if service, round, n := counting.maxSubmits(); n > 2 {
		t.Fatalf("%s round %d has %d submissions from 2 clients", service, round, n)
	}

	// Cancelling mid-round returns promptly — well within one network
	// timeout — and tears down every loop goroutine.
	start := time.Now()
	cancel()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errc:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Run returned %v, want context.Canceled", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Run did not return within 5s of cancellation")
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("shutdown took %v", elapsed)
	}
	waitUntil(t, 5*time.Second, "goroutines to drain", func() bool {
		return runtime.NumGoroutine() <= baseline
	})
}

// TestRunDialBacklogRangedDrain pins the ranged-fetch drain: a client
// connecting after many dialing rounds were published catches up with ONE
// ranged CDN request per consecutive span, in order, instead of one fetch
// per round.
func TestRunDialBacklogRangedDrain(t *testing.T) {
	net, err := sim.NewNetwork(sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := &sim.Handler{AcceptAll: true}
	cfg := net.ClientConfig("late@example.org", h)
	store := &countingStore{CDNAdapter: sim.CDNAdapter{S: net.CDN}}
	cfg.Mailboxes = store
	cfg.PollInterval = 20 * time.Millisecond
	client, err := core.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Register(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := net.ConfirmAll(client); err != nil {
		t.Fatal(err)
	}

	// Six dialing rounds come and go while the client is offline.
	const published = 6
	for r := uint32(1); r <= published; r++ {
		if _, err := net.Coord.OpenDialingRound(r); err != nil {
			t.Fatal(err)
		}
		if _, err := net.Coord.CloseRound(wire.Dialing, r); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	handle, err := client.ConnectDialing(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer handle.Close()

	waitUntil(t, 10*time.Second, "backlog to drain", func() bool {
		return client.DialBacklog() == 0 && client.DialRound() == published+1
	})

	store.mu.Lock()
	defer store.mu.Unlock()
	if len(store.ranges) == 0 {
		t.Fatal("catch-up used no ranged fetches")
	}
	if got := store.ranges[0]; got[0] != 1 || got[1] != published {
		t.Fatalf("first ranged fetch covered [%d, %d], want [1, %d]", got[0], got[1], published)
	}
	for _, r := range store.fetches {
		t.Errorf("round %d fetched individually during a consecutive catch-up", r)
	}
}

// TestRunPollFallback proves the transparent degrade: against a transport
// with no push surface at all, the same Run loop follows rounds by
// polling Status.
func TestRunPollFallback(t *testing.T) {
	net, err := sim.NewNetwork(sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := &sim.Handler{AcceptAll: true}
	cfg := net.ClientConfig("poller@example.org", h)
	cfg.Entry = pollOnlyEntry{a: sim.EntryAdapter{E: net.Entry}}
	cfg.PollInterval = 10 * time.Millisecond
	client, err := core.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Register(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := net.ConfirmAll(client); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	handle, err := client.ConnectDialing(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer handle.Close()

	net.StartRounds(ctx, sim.RoundDriver{
		Services:        []wire.Service{wire.Dialing},
		WaitSubmissions: 1,
	})
	waitUntil(t, 10*time.Second, "three polled rounds to be scanned", func() bool {
		return client.DialRound() >= 4
	})
	if handle.Err() != nil {
		t.Fatalf("handle error: %v", handle.Err())
	}
}

// TestRunRequiresRoundSource pins the misconfiguration error: an Entry
// transport with neither push nor poll surface cannot Run.
func TestRunRequiresRoundSource(t *testing.T) {
	net, err := sim.NewNetwork(sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := &sim.Handler{AcceptAll: true}
	cfg := net.ClientConfig("bare@example.org", h)
	cfg.Entry = bareEntry{a: sim.EntryAdapter{E: net.Entry}}
	client, err := core.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.ConnectDialing(context.Background()); err == nil {
		t.Fatal("ConnectDialing accepted a transport with no round source")
	}
}

// bareEntry satisfies only core.EntryServer.
type bareEntry struct {
	a sim.EntryAdapter
}

func (b bareEntry) Settings(ctx context.Context, service wire.Service, round uint32) (*wire.RoundSettings, error) {
	return b.a.Settings(ctx, service, round)
}

func (b bareEntry) Submit(ctx context.Context, service wire.Service, round uint32, onion []byte) error {
	return b.a.Submit(ctx, service, round, onion)
}

// TestBacklogPersistsAcrossRestart pins the backlog cursor satellite: a
// client restarted mid-catch-up resumes its queued scans from persisted
// state instead of rebuilding them from the frontend.
func TestBacklogPersistsAcrossRestart(t *testing.T) {
	net, err := sim.NewNetwork(sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := &sim.Handler{AcceptAll: true}
	persister := &memPersister{}
	cfg := net.ClientConfig("restart@example.org", h)
	cfg.Persister = persister
	client, err := core.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Register(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := net.ConfirmAll(client); err != nil {
		t.Fatal(err)
	}

	client.QueueDialScans(10)
	if got := client.DialBacklog(); got != 10 {
		t.Fatalf("backlog %d, want 10", got)
	}

	// "Restart": rebuild the client from the persisted bytes.
	restored, err := core.LoadClient(net.ClientConfig("restart@example.org", h), persister.last())
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.DialBacklog(); got != 10 {
		t.Fatalf("restored backlog %d, want 10", got)
	}
	// The cursor survived too: re-announcing round 10 queues nothing new.
	restored.QueueDialScans(10)
	if got := restored.DialBacklog(); got != 10 {
		t.Fatalf("backlog after idempotent re-announce: %d, want 10", got)
	}
}

type memPersister struct {
	mu    sync.Mutex
	state []byte
}

func (p *memPersister) Save(state []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.state = append(p.state[:0], state...)
	return nil
}

func (p *memPersister) last() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]byte(nil), p.state...)
}
