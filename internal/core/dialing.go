package core

import (
	"context"
	"errors"
	"fmt"
	"io"

	"alpenhorn/internal/bloom"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/keywheel"
	"alpenhorn/internal/wire"
)

// This file implements the client side of the dialing protocol (§5).

// SubmitDialRound submits this round's dialing request: a real dial token
// if a call is queued, otherwise cover traffic. Like the add-friend
// protocol, every client submits exactly one fixed-size request per round.
func (c *Client) SubmitDialRound(ctx context.Context, round uint32) error {
	settings, err := c.roundSettings(ctx, wire.Dialing, round, false)
	if err != nil {
		return err
	}

	payload, outgoing, err := c.buildDialPayload(round, settings)
	if err != nil {
		return err
	}
	onion, err := c.wrapOnion(settings, payload)
	if err != nil {
		return err
	}
	if err := c.cfg.Entry.Submit(ctx, wire.Dialing, round, onion); err != nil {
		// The token never reached the entry server (e.g. the round
		// closed first, or admission control deferred us): requeue the
		// call so a later round carries it instead of silently dropping
		// it. A full round is a deferral, not a failure.
		if outgoing != nil {
			c.mu.Lock()
			c.calls = append([]queuedCall{{friend: outgoing.Friend, intent: outgoing.Intent}}, c.calls...)
			c.persistLocked()
			c.mu.Unlock()
		}
		if errors.Is(err, entry.ErrRoundFull) {
			c.reportErr(fmt.Errorf("core: dialing round %d deferred us: %w", round, err))
			return nil
		}
		return err
	}
	// Report the outgoing call only after the token is actually on the
	// wire.
	if outgoing != nil {
		c.cfg.Handler.OutgoingCall(*outgoing)
	}
	return nil
}

// buildDialPayload pops one queued call (if any) and builds the innermost
// payload.
func (c *Client) buildDialPayload(round uint32, settings *wire.RoundSettings) ([]byte, *Call, error) {
	c.mu.Lock()
	var call *queuedCall
	for len(c.calls) > 0 {
		cand := c.calls[0]
		c.calls = c.calls[1:]
		f, ok := c.friends[cand.friend]
		if !ok || !f.Confirmed {
			c.mu.Unlock()
			c.reportErr(fmt.Errorf("core: dropping call to %s: not a confirmed friend", cand.friend))
			c.mu.Lock()
			continue
		}
		if f.wheel.Round() > round {
			// Keywheel starts in a future round (friendship is
			// brand new): requeue for later rounds.
			c.calls = append(c.calls, cand)
			c.reportErr(fmt.Errorf("core: call to %s deferred: keywheel starts at round %d > %d", cand.friend, f.wheel.Round(), round))
			break
		}
		call = &cand
		break
	}

	if call == nil {
		c.persistLocked()
		c.mu.Unlock()
		// Cover traffic: a random token to the cover mailbox.
		body := make([]byte, keywheel.TokenSize)
		if _, err := io.ReadFull(c.cfg.Rand, body); err != nil {
			return nil, nil, err
		}
		payload := &wire.MixPayload{Mailbox: wire.CoverMailbox, Body: body}
		return payload.Marshal(), nil, nil
	}

	f := c.friends[call.friend]
	token, err := f.wheel.DialToken(round, call.intent, c.cfg.Email)
	if err != nil {
		c.persistLocked()
		c.mu.Unlock()
		return nil, nil, fmt.Errorf("core: deriving dial token for %s: %w", call.friend, err)
	}
	sessionKey, err := f.wheel.SessionKey(round, call.intent, c.cfg.Email)
	if err != nil {
		c.persistLocked()
		c.mu.Unlock()
		return nil, nil, err
	}
	c.persistLocked()
	c.mu.Unlock()

	payload := &wire.MixPayload{
		Mailbox: wire.MailboxID(call.friend, settings.NumMailboxes),
		Body:    token[:],
	}
	out := &Call{
		Friend:     call.friend,
		Intent:     call.intent,
		Round:      round,
		SessionKey: sessionKey,
	}
	return payload.Marshal(), out, nil
}

// ScanDialRound downloads and scans this round's Bloom filter for dial
// tokens from every friend and every intent (§5: "this is cheap to do
// because hashing is fast and the number of intents is typically small"),
// then advances every keywheel past the round for forward secrecy (§5.1).
func (c *Client) ScanDialRound(ctx context.Context, round uint32) error {
	settings, err := c.roundSettings(ctx, wire.Dialing, round, false)
	if err != nil {
		return err
	}

	box, err := c.cfg.Mailboxes.Fetch(ctx, wire.Dialing, round, wire.MailboxID(c.cfg.Email, settings.NumMailboxes))
	if err != nil {
		return fmt.Errorf("core: fetching dialing mailbox: %w", err)
	}
	return c.scanDialBox(round, box)
}

// scanDialBox decodes and scans one fetched dialing mailbox (the second
// half of ScanDialRound): test every friend x intent token against the
// Bloom filter, deliver incoming calls, then advance every keywheel past
// the round for forward secrecy (§5.1). The Run loop calls it with
// mailboxes obtained through ranged fetches.
func (c *Client) scanDialBox(round uint32, box []byte) error {
	filter, err := bloom.Unmarshal(box)
	if err != nil {
		return fmt.Errorf("core: decoding Bloom filter: %w", err)
	}

	var incoming []Call
	c.mu.Lock()
	for _, f := range c.friends {
		if !f.Confirmed || f.wheel.Round() > round {
			continue
		}
		for intent := uint32(0); intent < c.cfg.NumIntents; intent++ {
			token, err := f.wheel.DialToken(round, intent, f.Email)
			if err != nil {
				continue
			}
			if !filter.Test(token[:]) {
				continue
			}
			key, err := f.wheel.SessionKey(round, intent, f.Email)
			if err != nil {
				continue
			}
			incoming = append(incoming, Call{
				Friend:     f.Email,
				Intent:     intent,
				Round:      round,
				SessionKey: key,
			})
		}
	}
	c.advanceWheelsLocked(round + 1)
	c.persistLocked()
	c.mu.Unlock()

	for _, call := range incoming {
		c.cfg.Handler.IncomingCall(call)
	}
	return nil
}

// SkipDialRound advances keywheels past a round whose mailbox could not be
// retrieved. §5.1: "After some time (e.g., a day), the Alpenhorn client
// gives up trying to fetch the mailbox for an old round, and advances the
// keywheels to preserve forward secrecy."
func (c *Client) SkipDialRound(round uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceWheelsLocked(round + 1)
	c.persistLocked()
}

// DefaultMaxDialBacklog is the scan-backlog bound when
// Config.MaxDialBacklog is zero.
const DefaultMaxDialBacklog = 64

// QueueDialScans records that every dialing round up to latest has been
// published and awaits a scan. The backlog is BOUNDED: when a client
// falls far behind (offline laptop, long partition), the oldest queued
// rounds are dropped rather than held for thousands of mailbox fetches —
// their keywheel secrets are advanced away, exactly as if SkipDialRound
// had given up on them, and the handler is told how many rounds were
// dropped. Memory stays O(MaxDialBacklog) no matter how far behind the
// client is.
func (c *Client) QueueDialScans(latest uint32) {
	limit := c.cfg.MaxDialBacklog
	if limit <= 0 {
		limit = DefaultMaxDialBacklog
	}
	var dropped int
	var droppedThrough uint32
	c.mu.Lock()
	from := c.lastQueued + 1
	if from < c.dialRound {
		// Rounds BELOW dialRound were already processed (or skipped) —
		// dialRound itself is the next round the client expects, so it
		// must still be queued; scanning earlier rounds again would
		// only find advanced wheels.
		from = c.dialRound
	}
	if uint32(limit) < latest {
		// A client far behind (fresh install, long-offline laptop)
		// skips straight to the newest `limit` rounds instead of
		// materializing — and then fetching — thousands of ancient
		// rounds the CDN no longer holds.
		if minFrom := latest - uint32(limit) + 1; from < minFrom {
			dropped = int(minFrom - from)
			droppedThrough = minFrom - 1
			from = minFrom
		}
	}
	for r := from; r <= latest; r++ {
		c.dialBacklog = append(c.dialBacklog, r)
	}
	if latest >= c.lastQueued {
		c.lastQueued = latest
	}
	if over := len(c.dialBacklog) - limit; over > 0 {
		// Still over the cap (requeues, repeated announcements): shed
		// the oldest queued rounds too.
		dropped += over
		droppedThrough = c.dialBacklog[over-1]
		c.dialBacklog = append(c.dialBacklog[:0], c.dialBacklog[over:]...)
	}
	if dropped > 0 {
		// Forward secrecy for the dropped rounds: erase their wheel
		// secrets now, like SkipDialRound.
		c.advanceWheelsLocked(droppedThrough + 1)
	}
	if dropped > 0 || latest >= from {
		// The backlog and its cursor persist with the client state, so a
		// restart mid-round resumes these scans instead of rebuilding
		// from the frontend's status.
		c.persistLocked()
	}
	c.mu.Unlock()
	if dropped > 0 {
		c.reportErr(fmt.Errorf("core: dial scan backlog full: dropped %d oldest rounds (through round %d)", dropped, droppedThrough))
	}
}

// peekDialScanSpan returns a copy of the longest run of CONSECUTIVE
// rounds at the head of the scan backlog, up to max, WITHOUT removing
// them. The Run loop drains the backlog a span at a time — a consecutive
// run against one mailbox is a single ranged CDN request instead of one
// fetch per round — and removes each round with finishDialScan only once
// its scan (or give-up) completed, so the persisted backlog never loses
// in-flight rounds to a crash.
func (c *Client) peekDialScanSpan(max int) []uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.dialBacklog) == 0 || max <= 0 {
		return nil
	}
	n := 1
	for n < len(c.dialBacklog) && n < max && c.dialBacklog[n] == c.dialBacklog[n-1]+1 {
		n++
	}
	span := make([]uint32, n)
	copy(span, c.dialBacklog[:n])
	return span
}

// finishDialScan removes one round from the scan backlog — its scan
// completed, or the §5.1 budget gave up on it — and persists the change.
func (c *Client) finishDialScan(round uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, r := range c.dialBacklog {
		if r == round {
			c.dialBacklog = append(c.dialBacklog[:i], c.dialBacklog[i+1:]...)
			c.persistLocked()
			return
		}
	}
}

// DialBacklog reports how many published rounds are queued for scanning.
func (c *Client) DialBacklog() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.dialBacklog)
}

// advanceWheelsLocked rolls every keywheel forward to the given round,
// erasing old secrets. Wheels that start in the future are left alone.
func (c *Client) advanceWheelsLocked(to uint32) {
	for _, f := range c.friends {
		if f.wheel != nil && f.wheel.Round() < to {
			// Advance cannot fail here: to > wheel.Round().
			_ = f.wheel.Advance(to)
		}
	}
	if to > c.dialRound {
		c.dialRound = to
	}
}

// DialRound returns the next dialing round the client expects to process.
func (c *Client) DialRound() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dialRound
}

// wheelSecretForTest exposes a friend's current wheel encoding to the
// compromise tests in this module; it is unexported and test-only.
func (c *Client) wheelSecretForTest(friend string) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.friends[friend]
	if !ok || f.wheel == nil {
		return nil
	}
	return f.wheel.Marshal()
}
