package core

import (
	"errors"
	"fmt"
	"io"

	"alpenhorn/internal/bloom"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/keywheel"
	"alpenhorn/internal/wire"
)

// This file implements the client side of the dialing protocol (§5).

// SubmitDialRound submits this round's dialing request: a real dial token
// if a call is queued, otherwise cover traffic. Like the add-friend
// protocol, every client submits exactly one fixed-size request per round.
func (c *Client) SubmitDialRound(round uint32) error {
	settings, err := c.cfg.Entry.Settings(wire.Dialing, round)
	if err != nil {
		return fmt.Errorf("core: fetching settings: %w", err)
	}
	if err := c.verifySettings(settings, false); err != nil {
		return fmt.Errorf("core: round %d settings: %w", round, err)
	}

	payload, outgoing, err := c.buildDialPayload(round, settings)
	if err != nil {
		return err
	}
	onion, err := c.wrapOnion(settings, payload)
	if err != nil {
		return err
	}
	if err := c.cfg.Entry.Submit(wire.Dialing, round, onion); err != nil {
		// The token never reached the entry server (e.g. the round
		// closed first, or admission control deferred us): requeue the
		// call so a later round carries it instead of silently dropping
		// it. A full round is a deferral, not a failure.
		if outgoing != nil {
			c.mu.Lock()
			c.calls = append([]queuedCall{{friend: outgoing.Friend, intent: outgoing.Intent}}, c.calls...)
			c.persistLocked()
			c.mu.Unlock()
		}
		if errors.Is(err, entry.ErrRoundFull) {
			c.reportErr(fmt.Errorf("core: dialing round %d deferred us: %w", round, err))
			return nil
		}
		return err
	}
	// Report the outgoing call only after the token is actually on the
	// wire.
	if outgoing != nil {
		c.cfg.Handler.OutgoingCall(*outgoing)
	}
	return nil
}

// buildDialPayload pops one queued call (if any) and builds the innermost
// payload.
func (c *Client) buildDialPayload(round uint32, settings *wire.RoundSettings) ([]byte, *Call, error) {
	c.mu.Lock()
	var call *queuedCall
	for len(c.calls) > 0 {
		cand := c.calls[0]
		c.calls = c.calls[1:]
		f, ok := c.friends[cand.friend]
		if !ok || !f.Confirmed {
			c.mu.Unlock()
			c.reportErr(fmt.Errorf("core: dropping call to %s: not a confirmed friend", cand.friend))
			c.mu.Lock()
			continue
		}
		if f.wheel.Round() > round {
			// Keywheel starts in a future round (friendship is
			// brand new): requeue for later rounds.
			c.calls = append(c.calls, cand)
			c.reportErr(fmt.Errorf("core: call to %s deferred: keywheel starts at round %d > %d", cand.friend, f.wheel.Round(), round))
			break
		}
		call = &cand
		break
	}

	if call == nil {
		c.persistLocked()
		c.mu.Unlock()
		// Cover traffic: a random token to the cover mailbox.
		body := make([]byte, keywheel.TokenSize)
		if _, err := io.ReadFull(c.cfg.Rand, body); err != nil {
			return nil, nil, err
		}
		payload := &wire.MixPayload{Mailbox: wire.CoverMailbox, Body: body}
		return payload.Marshal(), nil, nil
	}

	f := c.friends[call.friend]
	token, err := f.wheel.DialToken(round, call.intent, c.cfg.Email)
	if err != nil {
		c.persistLocked()
		c.mu.Unlock()
		return nil, nil, fmt.Errorf("core: deriving dial token for %s: %w", call.friend, err)
	}
	sessionKey, err := f.wheel.SessionKey(round, call.intent, c.cfg.Email)
	if err != nil {
		c.persistLocked()
		c.mu.Unlock()
		return nil, nil, err
	}
	c.persistLocked()
	c.mu.Unlock()

	payload := &wire.MixPayload{
		Mailbox: wire.MailboxID(call.friend, settings.NumMailboxes),
		Body:    token[:],
	}
	out := &Call{
		Friend:     call.friend,
		Intent:     call.intent,
		Round:      round,
		SessionKey: sessionKey,
	}
	return payload.Marshal(), out, nil
}

// ScanDialRound downloads and scans this round's Bloom filter for dial
// tokens from every friend and every intent (§5: "this is cheap to do
// because hashing is fast and the number of intents is typically small"),
// then advances every keywheel past the round for forward secrecy (§5.1).
func (c *Client) ScanDialRound(round uint32) error {
	settings, err := c.cfg.Entry.Settings(wire.Dialing, round)
	if err != nil {
		return fmt.Errorf("core: fetching settings: %w", err)
	}
	if err := c.verifySettings(settings, false); err != nil {
		return err
	}

	box, err := c.cfg.Mailboxes.Fetch(wire.Dialing, round, wire.MailboxID(c.cfg.Email, settings.NumMailboxes))
	if err != nil {
		return fmt.Errorf("core: fetching dialing mailbox: %w", err)
	}
	filter, err := bloom.Unmarshal(box)
	if err != nil {
		return fmt.Errorf("core: decoding Bloom filter: %w", err)
	}

	var incoming []Call
	c.mu.Lock()
	for _, f := range c.friends {
		if !f.Confirmed || f.wheel.Round() > round {
			continue
		}
		for intent := uint32(0); intent < c.cfg.NumIntents; intent++ {
			token, err := f.wheel.DialToken(round, intent, f.Email)
			if err != nil {
				continue
			}
			if !filter.Test(token[:]) {
				continue
			}
			key, err := f.wheel.SessionKey(round, intent, f.Email)
			if err != nil {
				continue
			}
			incoming = append(incoming, Call{
				Friend:     f.Email,
				Intent:     intent,
				Round:      round,
				SessionKey: key,
			})
		}
	}
	c.advanceWheelsLocked(round + 1)
	c.persistLocked()
	c.mu.Unlock()

	for _, call := range incoming {
		c.cfg.Handler.IncomingCall(call)
	}
	return nil
}

// SkipDialRound advances keywheels past a round whose mailbox could not be
// retrieved. §5.1: "After some time (e.g., a day), the Alpenhorn client
// gives up trying to fetch the mailbox for an old round, and advances the
// keywheels to preserve forward secrecy."
func (c *Client) SkipDialRound(round uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceWheelsLocked(round + 1)
	c.persistLocked()
}

// advanceWheelsLocked rolls every keywheel forward to the given round,
// erasing old secrets. Wheels that start in the future are left alone.
func (c *Client) advanceWheelsLocked(to uint32) {
	for _, f := range c.friends {
		if f.wheel != nil && f.wheel.Round() < to {
			// Advance cannot fail here: to > wheel.Round().
			_ = f.wheel.Advance(to)
		}
	}
	if to > c.dialRound {
		c.dialRound = to
	}
}

// DialRound returns the next dialing round the client expects to process.
func (c *Client) DialRound() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dialRound
}

// wheelSecretForTest exposes a friend's current wheel encoding to the
// compromise tests in this module; it is unexported and test-only.
func (c *Client) wheelSecretForTest(friend string) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.friends[friend]
	if !ok || f.wheel == nil {
		return nil
	}
	return f.wheel.Marshal()
}
