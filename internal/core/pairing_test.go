package core_test

import (
	"context"
	"testing"
	"time"

	"alpenhorn/internal/coordinator"
	"alpenhorn/internal/core"
	"alpenhorn/internal/sim"
	"alpenhorn/internal/wire"
)

// v1OnlyPKG hides the NewRoundV2 capability of a PKG, standing in for a
// server built before the optimal-ate tier existed.
type v1OnlyPKG struct {
	inner coordinator.PKG
}

func (p v1OnlyPKG) NewRound(round uint32) (wire.PKGRoundKey, error) { return p.inner.NewRound(round) }
func (p v1OnlyPKG) CloseRound(round uint32)                         { p.inner.CloseRound(round) }

// runAddFriendRound drives one round like sim.Network.RunAddFriendRound
// but returns the round settings so tests can assert the negotiated tier.
func runAddFriendRound(t *testing.T, net *sim.Network, round uint32, clients []*core.Client) *wire.RoundSettings {
	t.Helper()
	ctx := context.Background()
	settings, err := net.Coord.OpenAddFriendRound(round)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range clients {
		if err := c.SubmitAddFriendRound(ctx, round); err != nil {
			t.Fatalf("%s submit: %v", c.Email(), err)
		}
	}
	if _, err := net.Coord.CloseRound(wire.AddFriend, round); err != nil {
		t.Fatal(err)
	}
	for _, c := range clients {
		if err := c.ScanAddFriendRound(ctx, round); err != nil {
			t.Fatalf("%s scan: %v", c.Email(), err)
		}
	}
	net.Coord.FinishAddFriendRound(round)
	return settings
}

// TestPairingVersionDowngradeMatrix walks the capability matrix of the
// v2 sealed-ciphertext tier end to end through the real stack:
//
//   - v2 coordinator × v2 PKGs: rounds negotiate the optimal-ate tier and
//     the handshake completes over v2 ciphertexts,
//   - v2 coordinator × one v1-only PKG: the WHOLE round falls back to v1
//     (all-or-nothing — zero mixed-version key derivations) and the
//     settings are wire-identical to the pre-capability format,
//   - v1 coordinator × v2-capable clients: rounds stay v1.
//
// Clients key every round off the signed settings, so the same client
// binaries participate in all three configurations transparently.
func TestPairingVersionDowngradeMatrix(t *testing.T) {
	net, alice, _, bob, hb := newPair(t)
	clients := []*core.Client{alice, bob}

	// v1 coordinator (the gate defaults off): rounds stay v1 even though
	// every PKG and client supports v2.
	if err := alice.AddFriend(bob.Email(), nil); err != nil {
		t.Fatal(err)
	}
	settings := runAddFriendRound(t, net, 1, clients)
	if settings.PairingV2() {
		t.Fatal("gate off: round negotiated v2")
	}
	if len(hb.NewFriends) != 1 {
		t.Fatalf("v1 round did not deliver the request: %v", hb.NewFriends)
	}

	// v2 coordinator × v2 PKGs: the round negotiates the ate tier and
	// Bob's response reaches Alice through v2 ciphertexts.
	net.Coord.PairingV2 = true
	settings = runAddFriendRound(t, net, 2, clients)
	if !settings.PairingV2() {
		t.Fatal("v2 deployment did not negotiate v2")
	}
	if !alice.IsFriend(bob.Email()) || !bob.IsFriend(alice.Email()) {
		t.Fatal("handshake did not complete across the v2 round")
	}

	// v2 coordinator × one v1-only PKG: all-or-nothing fallback. The
	// settings must be byte-identical to the pre-capability encoding
	// (no trailing capability byte) and a fresh exchange completes at v1.
	net.Coord.PKGs[0] = v1OnlyPKG{inner: net.Coord.PKGs[0]}
	if err := bob.AddFriend("carol@example.org", nil); err != nil {
		t.Fatal(err)
	}
	ca := &sim.Handler{AcceptAll: true}
	carol, err := net.NewClient("carol@example.org", ca)
	if err != nil {
		t.Fatal(err)
	}
	clients = append(clients, carol)
	settings = runAddFriendRound(t, net, 3, clients)
	if settings.PairingV2() {
		t.Fatal("round with a v1-only PKG negotiated v2")
	}
	enc := settings.Marshal()
	reparsed, err := wire.UnmarshalRoundSettings(enc)
	if err != nil {
		t.Fatal(err)
	}
	if reparsed.PairingV2() {
		t.Fatal("downgraded settings carry a capability byte")
	}
	if len(ca.NewFriends) != 1 || ca.NewFriends[0] != bob.Email() {
		t.Fatalf("downgraded round did not deliver the request: %v", ca.NewFriends)
	}
}

// TestPairingV2SingleSettingsFetch pins that the v2 tier adds no settings
// traffic: a v2 add-friend round costs exactly one verified settings
// fetch (the submit fetches, the scan reuses the cache — the version
// switch reads the SAME cached settings on both paths).
func TestPairingV2SingleSettingsFetch(t *testing.T) {
	skipIfShort(t)
	network, err := sim.NewNetwork(sim.Config{NumPKGs: 1, NumMixers: 1})
	if err != nil {
		t.Fatal(err)
	}
	network.Coord.PairingV2 = true
	h := &sim.Handler{AcceptAll: true}
	cfg := network.ClientConfig("v2cache@example.org", h)
	ce := &settingsCountingEntry{EntryAdapter: sim.EntryAdapter{E: network.Entry}}
	cfg.Entry = ce
	cfg.PollInterval = 10 * time.Millisecond
	client, err := core.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := client.Register(ctx); err != nil {
		t.Fatal(err)
	}
	if err := network.ConfirmAll(client); err != nil {
		t.Fatal(err)
	}

	settings, err := network.Coord.OpenAddFriendRound(1)
	if err != nil {
		t.Fatal(err)
	}
	if !settings.PairingV2() {
		t.Fatal("round did not negotiate v2")
	}
	if err := client.SubmitAddFriendRound(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := network.Coord.CloseRound(wire.AddFriend, 1); err != nil {
		t.Fatal(err)
	}
	if err := client.ScanAddFriendRound(ctx, 1); err != nil {
		t.Fatal(err)
	}
	network.Coord.FinishAddFriendRound(1)
	if got := ce.settingsCalls.Load(); got != 1 {
		t.Fatalf("v2 round cost %d settings fetches, want 1", got)
	}
}
