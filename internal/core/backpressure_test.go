package core_test

import (
	"context"
	"testing"

	"alpenhorn/internal/core"
	"alpenhorn/internal/wire"
)

// These tests pin the entry server's admission-control contract from the
// client's side: a full round (entry.ErrRoundFull) is a DEFERRAL — the
// client keeps its queued work, reports a non-fatal handler event, and
// the next round carries the request. Nothing is lost and nothing errors.

// TestAddFriendDeferredByFullRound fills a round before Alice's friend
// request can be admitted and checks the request survives to the next
// round and the handshake still completes.
func TestAddFriendDeferredByFullRound(t *testing.T) {
	net, alice, ha, bob, _ := newPair(t)
	if err := alice.AddFriend(bob.Email(), nil); err != nil {
		t.Fatal(err)
	}

	// Round 1 admits exactly one request; Bob's cover claims it first.
	net.Entry.MaxBatch = 1
	if _, err := net.Coord.OpenAddFriendRound(1); err != nil {
		t.Fatal(err)
	}
	if err := bob.SubmitAddFriendRound(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	errsBefore := ha.ErrorCount()
	if err := alice.SubmitAddFriendRound(context.Background(), 1); err != nil {
		t.Fatalf("deferred submit must not error: %v", err)
	}
	if ha.ErrorCount() != errsBefore+1 {
		t.Fatal("deferral was not reported to the handler")
	}
	if _, err := net.Coord.CloseRound(wire.AddFriend, 1); err != nil {
		t.Fatal(err)
	}
	if err := alice.ScanAddFriendRound(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if err := bob.ScanAddFriendRound(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	net.Coord.FinishAddFriendRound(1)
	if alice.IsFriend(bob.Email()) {
		t.Fatal("friendship completed through a full round")
	}

	// With admission restored, the queued request rides the next rounds
	// and the handshake completes.
	net.Entry.MaxBatch = 0
	clients := []*core.Client{alice, bob}
	if err := net.RunAddFriendRound(2, clients); err != nil {
		t.Fatal(err)
	}
	if err := net.RunAddFriendRound(3, clients); err != nil {
		t.Fatal(err)
	}
	if !alice.IsFriend(bob.Email()) || !bob.IsFriend(alice.Email()) {
		t.Fatal("deferred friend request never completed")
	}
}

// TestDialDeferredByFullRound fills a dialing round before Alice's call
// token can be admitted and checks the call is requeued, not dropped.
func TestDialDeferredByFullRound(t *testing.T) {
	net, alice, ha, bob, hb := newPair(t)
	if err := net.Befriend(alice, bob, 1); err != nil {
		t.Fatal(err)
	}
	if err := alice.Call(bob.Email(), 0); err != nil {
		t.Fatal(err)
	}
	// Round 1: keywheels start later, so both clients send cover.
	if err := net.RunDialRound(1, []*core.Client{alice, bob}); err != nil {
		t.Fatal(err)
	}

	// Round 2: the wheel is live, but Bob's cover fills the round first.
	net.Entry.MaxBatch = 1
	if _, err := net.Coord.OpenDialingRound(2); err != nil {
		t.Fatal(err)
	}
	if err := bob.SubmitDialRound(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if err := alice.SubmitDialRound(context.Background(), 2); err != nil {
		t.Fatalf("deferred dial submit must not error: %v", err)
	}
	if len(ha.OutgoingCalls()) != 0 {
		t.Fatal("deferred call reported as outgoing")
	}
	if _, err := net.Coord.CloseRound(wire.Dialing, 2); err != nil {
		t.Fatal(err)
	}
	if err := alice.ScanDialRound(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if err := bob.ScanDialRound(context.Background(), 2); err != nil {
		t.Fatal(err)
	}

	// Round 3: admission restored; the requeued call goes through.
	net.Entry.MaxBatch = 0
	if err := net.RunDialRound(3, []*core.Client{alice, bob}); err != nil {
		t.Fatal(err)
	}
	in, out := hb.IncomingCalls(), ha.OutgoingCalls()
	if len(in) != 1 || len(out) != 1 {
		t.Fatalf("got %d incoming / %d outgoing calls, want 1/1", len(in), len(out))
	}
	if in[0].SessionKey != out[0].SessionKey {
		t.Fatal("requeued call derived mismatched session keys")
	}
	if out[0].Round != 3 {
		t.Fatalf("call went out in round %d, want the post-deferral round 3", out[0].Round)
	}
}
