package core
