package core

import (
	"bytes"
	"context"
	"crypto/ecdh"
	"crypto/ed25519"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"alpenhorn/internal/bls"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/ibe"
	"alpenhorn/internal/keywheel"
	"alpenhorn/internal/onionbox"
	"alpenhorn/internal/pkgserver"
	"alpenhorn/internal/wire"
)

// This file implements the client side of the add-friend protocol
// (Algorithm 1 in the paper).

// scanChunkSize is how many mailbox entries one scan worker feeds to
// ibe.DecryptBatch at a time: large enough to amortize the batch's shared
// field inversion, small enough that a 24k-entry mailbox still spreads
// evenly over a handful of cores.
const scanChunkSize = 32

// SubmitAddFriendRound performs the submission half of an add-friend round:
// it verifies the round settings, extracts this round's identity key shares
// and PKG attestations (step 1), builds either a real friend request
// (steps 2a, 3) or cover traffic (step 2b), and submits the onion.
//
// The client calls this exactly once per round, whether or not the user is
// adding anyone — the fixed-size cover request is what hides add-friend
// activity.
func (c *Client) SubmitAddFriendRound(ctx context.Context, round uint32) error {
	settings, err := c.roundSettings(ctx, wire.AddFriend, round, true)
	if err != nil {
		return err
	}

	// Step 1: acquire identity key shares and attestations from every
	// PKG, verifying each PKG's BLS attestation before aggregating.
	if err := c.extractRoundKeys(ctx, round); err != nil {
		return fmt.Errorf("core: extracting round keys: %w", err)
	}

	payload, commit, err := c.buildAddFriendPayload(round, settings)
	if err != nil {
		return err
	}

	// Step 3: onion-wrap for the mix chain and submit.
	onion, err := c.wrapOnion(settings, payload)
	if err != nil {
		return err
	}
	if err := c.cfg.Entry.Submit(ctx, wire.AddFriend, round, onion); err != nil {
		// The request never reached the entry server: leave it queued
		// for the next round. Admission control (a full round) is a
		// deferral, not a failure — report it and carry on; anything
		// else (e.g. the round closed first) is the caller's error.
		if errors.Is(err, entry.ErrRoundFull) {
			c.reportErr(fmt.Errorf("core: add-friend round %d deferred us: %w", round, err))
			return nil
		}
		return err
	}
	// Only now that the request is on the wire, mark it sent.
	if commit != nil {
		commit()
	}
	return nil
}

// extractRoundKeys performs Algorithm 1 step 1 against every PKG and
// caches the aggregated results for the round's scan phase.
func (c *Client) extractRoundKeys(ctx context.Context, round uint32) error {
	c.mu.Lock()
	if _, done := c.roundKeys[round]; done {
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()

	sig := ed25519.Sign(c.signingPriv, pkgserver.ExtractMessage(c.cfg.Email, round))
	attMsg := wire.AttestationMessage(c.cfg.Email, c.signingPub, round)

	idKeys := make([]*ibe.IdentityPrivateKey, len(c.cfg.PKGs))
	sigs := make([]*bls.Signature, len(c.cfg.PKGs))
	for i, pkg := range c.cfg.PKGs {
		reply, err := pkg.Extract(ctx, c.cfg.Email, round, sig)
		if err != nil {
			return fmt.Errorf("PKG %d: %w", i, err)
		}
		// Verify this PKG's attestation share now: a bad share would
		// poison the aggregate and is this PKG's fault.
		if !bls.Verify(c.cfg.PKGBLSKeys[i], attMsg, reply.Attestation) {
			return fmt.Errorf("PKG %d returned invalid attestation", i)
		}
		idKeys[i] = reply.IdentityKey
		sigs[i] = reply.Attestation
	}

	c.mu.Lock()
	c.roundKeys[round] = &roundSecrets{
		identityKey: ibe.AggregatePrivateKeys(idKeys...),
		pkgSigs:     bls.AggregateSignatures(sigs...),
	}
	c.mu.Unlock()
	return nil
}

// buildAddFriendPayload creates the innermost mix payload: a real IBE-
// encrypted friend request if one is queued (step 2a), else cover traffic
// (step 2b).
//
// For a real request it also returns a commit callback that marks the
// request sent (and, for a response, completes the friendship). The caller
// runs it only after the entry server accepts the onion — a request
// consumed before a failed submission would be silently lost while the
// pending entry waits forever for a reply that cannot come.
func (c *Client) buildAddFriendPayload(round uint32, settings *wire.RoundSettings) ([]byte, func(), error) {
	c.mu.Lock()
	var target *pendingFriend
	for _, p := range c.pending {
		if p.queued {
			target = p
			break
		}
	}
	var secrets = c.roundKeys[round]
	dialRound := c.dialRound + c.cfg.DialRoundDelta
	c.mu.Unlock()

	if target == nil {
		// Step 2b: fake request — all-zero body to the cover mailbox.
		payload := &wire.MixPayload{
			Mailbox: wire.CoverMailbox,
			Body:    make([]byte, wire.EncryptedFriendRequestSize),
		}
		return payload.Marshal(), nil, nil
	}

	// Step 2a: real request.
	dhPriv, err := ecdh.X25519().GenerateKey(c.cfg.Rand)
	if err != nil {
		return nil, nil, err
	}
	req := &wire.FriendRequest{
		SenderEmail:  c.cfg.Email,
		SenderKey:    c.signingPub,
		PKGSigs:      secrets.pkgSigs.Marshal(),
		DialingKey:   dhPriv.PublicKey().Bytes(),
		DialingRound: dialRound,
	}
	req.SenderSig = ed25519.Sign(c.signingPriv, req.SigningMessage())
	plaintext, err := req.Marshal()
	if err != nil {
		return nil, nil, err
	}

	// Encrypt to the friend's identity under the aggregated master key.
	var masterKeys []*ibe.MasterPublicKey
	for i, pk := range settings.PKGs {
		mk, err := ibe.UnmarshalMasterPublicKey(pk.MasterKey)
		if err != nil {
			return nil, nil, fmt.Errorf("core: PKG %d round key: %w", i, err)
		}
		masterKeys = append(masterKeys, mk)
	}
	// The round's SIGNED settings pick the sealed-ciphertext tier: both
	// sides of a round key their pairing off the same capability byte,
	// so a v2 client in a v1 deployment (or vice versa) degrades
	// transparently — never a mixed-version derivation.
	var ctxt []byte
	if settings.PairingV2() {
		agg := ibe.AggregateMasterKeys(masterKeys...).PrecomputeV2()
		c2, err := ibe.EncryptV2(c.cfg.Rand, agg, target.email, plaintext)
		if err != nil {
			return nil, nil, err
		}
		ctxt = []byte(c2)
	} else {
		agg := ibe.AggregateMasterKeys(masterKeys...).Precompute()
		ctxt, err = ibe.Encrypt(c.cfg.Rand, agg, target.email, plaintext)
		if err != nil {
			return nil, nil, err
		}
	}

	commit := func() {
		c.mu.Lock()
		target.queued = false
		target.dhPriv = dhPriv
		target.myDialRound = dialRound
		// If this request answers an incoming one, we already have the
		// friend's DH key: the keywheel exists as soon as our reply is
		// on the wire (they will compute the same secret on receipt).
		var confirmed string
		if target.isResponse {
			c.completeFriendshipLocked(target, target.theirKey, target.theirDH, target.theirDialRound)
			confirmed = target.email
		}
		c.persistLocked()
		c.mu.Unlock()
		if confirmed != "" {
			c.cfg.Handler.ConfirmedFriend(confirmed)
		}
	}

	payload := &wire.MixPayload{
		Mailbox: wire.MailboxID(target.email, settings.NumMailboxes),
		Body:    ctxt,
	}
	return payload.Marshal(), commit, nil
}

// discardStaleRoundKeys erases cached add-friend round secrets for every
// round below keep. The Run loop calls it once it submits round `keep`:
// earlier rounds can no longer be scanned (a scan requires the round to
// be this client's latest submission), so holding their identity keys
// would violate §4.4's erasure discipline — the ability to decrypt a
// round's mailbox must not outlive the round.
func (c *Client) discardStaleRoundKeys(keep uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for round, rs := range c.roundKeys {
		if round < keep {
			rs.identityKey.Erase()
			delete(c.roundKeys, round)
		}
	}
}

// wrapOnion wraps a payload for the round's mix chain (Algorithm 1 step 3).
func (c *Client) wrapOnion(settings *wire.RoundSettings, payload []byte) ([]byte, error) {
	hops := make([]*onionbox.PublicKey, len(settings.Mixers))
	for i, m := range settings.Mixers {
		pk, err := onionbox.UnmarshalPublicKey(m.OnionKey)
		if err != nil {
			return nil, fmt.Errorf("core: mixer %d round key: %w", i, err)
		}
		hops[i] = pk
	}
	return onionbox.WrapOnion(c.cfg.Rand, hops, payload)
}

// ScanAddFriendRound performs the receive half of an add-friend round
// (Algorithm 1 steps 4-5): download this user's mailbox, attempt to decrypt
// every request with the round's aggregated identity key, authenticate and
// process the ones addressed to us, then erase the round's identity key
// (forward secrecy, §4.4).
func (c *Client) ScanAddFriendRound(ctx context.Context, round uint32) error {
	settings, err := c.roundSettings(ctx, wire.AddFriend, round, true)
	if err != nil {
		return err
	}

	c.mu.Lock()
	secrets := c.roundKeys[round]
	c.mu.Unlock()
	if secrets == nil {
		return fmt.Errorf("core: no identity key for round %d (submit phase skipped?)", round)
	}
	defer func() {
		// Erase the round's identity key whether or not the scan
		// succeeded: the mailbox is retained by the CDN, but our
		// ability to decrypt it must not outlive the round.
		secrets.identityKey.Erase()
		c.mu.Lock()
		delete(c.roundKeys, round)
		c.mu.Unlock()
	}()

	box, err := c.cfg.Mailboxes.Fetch(ctx, wire.AddFriend, round, wire.MailboxID(c.cfg.Email, settings.NumMailboxes))
	if err != nil {
		return fmt.Errorf("core: fetching mailbox: %w", err)
	}
	if len(box)%wire.EncryptedFriendRequestSize != 0 {
		return fmt.Errorf("core: mailbox size %d not a multiple of request size", len(box))
	}

	// Step 4: trial-decrypt every request in the mailbox. Decryptions
	// are independent pairing computations, so they fan out across
	// cores (the paper's client scans on 4 cores, §8.2); the successful
	// plaintexts are then processed in mailbox order for determinism.
	// Every trial decryption pairs against the same identity key, so the
	// key's Miller-loop ladder is precomputed once (before the workers
	// start — the precomputation is not concurrency-safe) and shared
	// read-only by the pool. Each worker pulls a CHUNK of the mailbox and
	// runs it through ibe.DecryptBatch, which amortizes the shared-
	// inversion pairing pipeline across the chunk; results land at their
	// mailbox index, preserving processing order. The round's signed
	// settings select the pairing tier — a v2 round scans through the
	// optimal-ate DecryptBatchV2 (~1.8x the batched v1 marginal cost).
	scanBatch := ibe.DecryptBatch
	if settings.PairingV2() {
		secrets.identityKey.PrecomputeV2()
		scanBatch = ibe.DecryptBatchV2
	} else {
		secrets.identityKey.Precompute()
	}
	n := len(box) / wire.EncryptedFriendRequestSize
	plaintexts := make([][]byte, n)
	chunks := (n + scanChunkSize - 1) / scanChunkSize
	workers := runtime.GOMAXPROCS(0)
	if workers > chunks {
		workers = chunks
	}
	var wg sync.WaitGroup
	next := make(chan int, chunks)
	for chunk := 0; chunk < chunks; chunk++ {
		next <- chunk
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctxts := make([][]byte, 0, scanChunkSize)
			for chunk := range next {
				lo := chunk * scanChunkSize
				hi := lo + scanChunkSize
				if hi > n {
					hi = n
				}
				ctxts = ctxts[:0]
				for i := lo; i < hi; i++ {
					off := i * wire.EncryptedFriendRequestSize
					ctxts = append(ctxts, box[off:off+wire.EncryptedFriendRequestSize])
				}
				pts, oks := scanBatch(secrets.identityKey, ctxts)
				for j, ok := range oks {
					if ok {
						plaintexts[lo+j] = pts[j]
					}
				}
			}
		}()
	}
	wg.Wait()

	for _, plaintext := range plaintexts {
		if plaintext == nil {
			continue // someone else's request, or noise
		}
		req, err := wire.UnmarshalFriendRequest(plaintext)
		if err != nil {
			c.reportErr(fmt.Errorf("core: malformed friend request: %w", err))
			continue
		}
		c.handleFriendRequest(round, req)
	}
	return nil
}

// handleFriendRequest authenticates and processes one decrypted friend
// request (Algorithm 1 steps 4-5).
func (c *Client) handleFriendRequest(round uint32, req *wire.FriendRequest) {
	// ok1: the PKG multisignature proves SenderKey belongs to
	// SenderEmail as long as one PKG is honest.
	aggPKG := bls.AggregatePublicKeys(c.cfg.PKGBLSKeys...)
	attMsg := wire.AttestationMessage(req.SenderEmail, req.SenderKey, round)
	sig, err := bls.UnmarshalSignature(req.PKGSigs)
	if err != nil || !bls.Verify(aggPKG, attMsg, sig) {
		c.reportErr(fmt.Errorf("core: friend request from %q: invalid PKG multisignature", req.SenderEmail))
		return
	}
	// ok2: the sender's own signature binds the DH key and dialing round.
	if !ed25519.Verify(req.SenderKey, req.SigningMessage(), req.SenderSig) {
		c.reportErr(fmt.Errorf("core: friend request from %q: invalid sender signature", req.SenderEmail))
		return
	}

	c.mu.Lock()
	p, outgoing := c.pending[req.SenderEmail]

	if outgoing && !p.queued && p.dhPriv != nil && !p.isResponse {
		// This is the confirmation of a request we initiated.
		// Out-of-band key check (§3.2, worst-case security).
		if p.expectedKey != nil && !bytes.Equal(p.expectedKey, req.SenderKey) {
			delete(c.pending, req.SenderEmail)
			c.persistLocked()
			c.mu.Unlock()
			c.reportErr(fmt.Errorf("core: %s responded with key that does not match out-of-band key (possible MITM)", req.SenderEmail))
			return
		}
		c.completeFriendshipLocked(p, req.SenderKey, req.DialingKey, req.DialingRound)
		c.persistLocked()
		c.mu.Unlock()
		c.cfg.Handler.ConfirmedFriend(req.SenderEmail)
		return
	}

	if outgoing && p.queued && !p.isResponse {
		// Simultaneous add: both users sent requests in the same (or
		// overlapping) rounds. Convert our still-queued request into
		// a response carrying their half.
		p.isResponse = true
		p.theirKey = req.SenderKey
		p.theirDH = req.DialingKey
		p.theirDialRound = req.DialingRound
		if p.expectedKey != nil && !bytes.Equal(p.expectedKey, req.SenderKey) {
			delete(c.pending, req.SenderEmail)
			c.persistLocked()
			c.mu.Unlock()
			c.reportErr(fmt.Errorf("core: %s's key does not match out-of-band key (possible MITM)", req.SenderEmail))
			return
		}
		c.persistLocked()
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()

	// A brand-new incoming request: ask the application (§3's NewFriend
	// callback). TOFU: the key we see now is the key we will remember.
	if !c.cfg.Handler.NewFriend(req.SenderEmail, req.SenderKey) {
		return
	}
	c.mu.Lock()
	c.pending[req.SenderEmail] = &pendingFriend{
		email:          req.SenderEmail,
		queued:         true,
		isResponse:     true,
		theirKey:       req.SenderKey,
		theirDH:        req.DialingKey,
		theirDialRound: req.DialingRound,
	}
	c.persistLocked()
	c.mu.Unlock()
}

// completeFriendshipLocked computes the shared secret (Algorithm 1 step 5),
// creates the keywheel, and installs the friend. Caller holds c.mu.
func (c *Client) completeFriendshipLocked(p *pendingFriend, theirKey ed25519.PublicKey, theirDH []byte, theirDialRound uint32) {
	theirPub, err := ecdh.X25519().NewPublicKey(theirDH)
	if err != nil {
		c.reportErr(fmt.Errorf("core: %s sent invalid DH key: %v", p.email, err))
		delete(c.pending, p.email)
		return
	}
	shared, err := p.dhPriv.ECDH(theirPub)
	if err != nil {
		c.reportErr(fmt.Errorf("core: DH with %s failed: %v", p.email, err))
		delete(c.pending, p.email)
		return
	}
	var secret [keywheel.SecretSize]byte
	copy(secret[:], shared)

	// Both sides know both proposed dialing rounds; the keywheel starts
	// at the later one so neither side needs erased history.
	startRound := p.myDialRound
	if theirDialRound > startRound {
		startRound = theirDialRound
	}

	c.friends[p.email] = &Friend{
		Email:      p.email,
		SigningKey: theirKey,
		Confirmed:  true,
		wheel:      keywheel.New(startRound, &secret),
	}
	for i := range secret {
		secret[i] = 0
	}
	delete(c.pending, p.email)
}
