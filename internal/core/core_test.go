package core_test

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"testing"

	"alpenhorn/internal/core"
	"alpenhorn/internal/sim"
	"alpenhorn/internal/wire"
)

// skipIfShort skips pairing-heavy integration tests under -short: each
// add-friend round costs dozens of big.Int pairings, which the race
// detector slows by an order of magnitude. CI's race job runs -short;
// the regular test job still runs everything.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("pairing-heavy integration test; skipped in -short")
	}
}

// newPair builds a network with Alice and Bob registered.
func newPair(t *testing.T) (*sim.Network, *core.Client, *sim.Handler, *core.Client, *sim.Handler) {
	t.Helper()
	skipIfShort(t)
	net, err := sim.NewNetwork(sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ha := &sim.Handler{AcceptAll: true}
	hb := &sim.Handler{AcceptAll: true}
	alice, err := net.NewClient("alice@example.org", ha)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := net.NewClient("bob@example.org", hb)
	if err != nil {
		t.Fatal(err)
	}
	return net, alice, ha, bob, hb
}

func TestAddFriendHandshake(t *testing.T) {
	net, alice, ha, bob, hb := newPair(t)

	if err := alice.AddFriend(bob.Email(), nil); err != nil {
		t.Fatal(err)
	}
	clients := []*core.Client{alice, bob}

	// Round 1: Alice's request reaches Bob.
	if err := net.RunAddFriendRound(1, clients); err != nil {
		t.Fatal(err)
	}
	if len(hb.NewFriends) != 1 || hb.NewFriends[0] != "alice@example.org" {
		t.Fatalf("bob's NewFriend events: %v", hb.NewFriends)
	}
	if alice.IsFriend(bob.Email()) {
		t.Fatal("alice confirmed friendship before bob's response")
	}

	// Round 2: Bob's response reaches Alice.
	if err := net.RunAddFriendRound(2, clients); err != nil {
		t.Fatal(err)
	}
	if !alice.IsFriend(bob.Email()) || !bob.IsFriend(alice.Email()) {
		t.Fatal("friendship did not complete")
	}
	if len(ha.Confirmed) != 1 || ha.Confirmed[0] != bob.Email() {
		t.Fatalf("alice's confirmations: %v", ha.Confirmed)
	}
	if len(hb.Confirmed) != 1 || hb.Confirmed[0] != alice.Email() {
		t.Fatalf("bob's confirmations: %v", hb.Confirmed)
	}
	// TOFU: Bob's address book has Alice's real key.
	for _, f := range bob.Friends() {
		if f.Email == alice.Email() && !bytes.Equal(f.SigningKey, alice.SigningKey()) {
			t.Fatal("TOFU recorded wrong key")
		}
	}
	if ha.ErrorCount() != 0 || hb.ErrorCount() != 0 {
		t.Fatalf("handler errors: %v / %v", ha.Errors, hb.Errors)
	}
}

func TestDialing(t *testing.T) {
	net, alice, ha, bob, hb := newPair(t)
	if err := net.Befriend(alice, bob, 1); err != nil {
		t.Fatal(err)
	}
	clients := []*core.Client{alice, bob}

	const intent = 3
	if err := alice.Call(bob.Email(), intent); err != nil {
		t.Fatal(err)
	}
	// Keywheels start at round w (DialRoundDelta past the last known
	// dialing round); run rounds until the call goes out and is seen.
	for r := uint32(1); r <= 6; r++ {
		if err := net.RunDialRound(r, clients); err != nil {
			t.Fatal(err)
		}
		if len(hb.IncomingCalls()) > 0 {
			break
		}
	}

	out := ha.OutgoingCalls()
	in := hb.IncomingCalls()
	if len(out) != 1 {
		t.Fatalf("alice outgoing calls: %d", len(out))
	}
	if len(in) != 1 {
		t.Fatalf("bob incoming calls: %d", len(in))
	}
	if in[0].Friend != alice.Email() || out[0].Friend != bob.Email() {
		t.Fatalf("call endpoints wrong: %v / %v", in[0], out[0])
	}
	if in[0].Intent != intent || out[0].Intent != intent {
		t.Fatalf("intent not carried: %v / %v", in[0].Intent, out[0].Intent)
	}
	if in[0].SessionKey != out[0].SessionKey {
		t.Fatal("session keys differ between caller and callee")
	}
	if in[0].Round != out[0].Round {
		t.Fatal("rounds differ")
	}
}

func TestCoverTrafficProducesNoEvents(t *testing.T) {
	net, alice, ha, bob, hb := newPair(t)
	if err := net.Befriend(alice, bob, 1); err != nil {
		t.Fatal(err)
	}
	clients := []*core.Client{alice, bob}
	// Nobody calls anybody: several pure-cover rounds.
	for r := uint32(1); r <= 4; r++ {
		if err := net.RunDialRound(r, clients); err != nil {
			t.Fatal(err)
		}
	}
	if len(ha.IncomingCalls())+len(hb.IncomingCalls()) != 0 {
		t.Fatal("cover traffic triggered incoming calls")
	}
	if len(ha.OutgoingCalls())+len(hb.OutgoingCalls()) != 0 {
		t.Fatal("cover traffic triggered outgoing calls")
	}
}

func TestSimultaneousAdd(t *testing.T) {
	net, alice, _, bob, _ := newPair(t)
	// Both users add each other before any round runs.
	if err := alice.AddFriend(bob.Email(), nil); err != nil {
		t.Fatal(err)
	}
	if err := bob.AddFriend(alice.Email(), nil); err != nil {
		t.Fatal(err)
	}
	clients := []*core.Client{alice, bob}
	if err := net.RunAddFriendRound(1, clients); err != nil {
		t.Fatal(err)
	}
	if err := net.RunAddFriendRound(2, clients); err != nil {
		t.Fatal(err)
	}
	if !alice.IsFriend(bob.Email()) || !bob.IsFriend(alice.Email()) {
		t.Fatal("simultaneous add did not converge")
	}
	// And the keywheels agree: a call must work.
	if err := alice.Call(bob.Email(), 0); err != nil {
		t.Fatal(err)
	}
	hb := &sim.Handler{}
	_ = hb
	for r := uint32(1); r <= 8; r++ {
		if err := net.RunDialRound(r, clients); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOutOfBandKeyRejectsImpostor(t *testing.T) {
	net, alice, ha, bob, _ := newPair(t)

	// Alice has an out-of-band key for "bob" that is NOT Bob's key
	// (e.g. the real Bob's business card, while a MITM runs the
	// account). The handshake must be rejected.
	wrongKey, _, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.AddFriend(bob.Email(), wrongKey); err != nil {
		t.Fatal(err)
	}
	clients := []*core.Client{alice, bob}
	if err := net.RunAddFriendRound(1, clients); err != nil {
		t.Fatal(err)
	}
	if err := net.RunAddFriendRound(2, clients); err != nil {
		t.Fatal(err)
	}
	if alice.IsFriend(bob.Email()) {
		t.Fatal("alice accepted a key mismatching her out-of-band knowledge")
	}
	if ha.ErrorCount() == 0 {
		t.Fatal("no MITM warning surfaced to the application")
	}
}

func TestOutOfBandKeyAcceptsGenuine(t *testing.T) {
	net, alice, _, bob, _ := newPair(t)
	// With the CORRECT out-of-band key the handshake completes.
	if err := alice.AddFriend(bob.Email(), bob.SigningKey()); err != nil {
		t.Fatal(err)
	}
	clients := []*core.Client{alice, bob}
	if err := net.RunAddFriendRound(1, clients); err != nil {
		t.Fatal(err)
	}
	if err := net.RunAddFriendRound(2, clients); err != nil {
		t.Fatal(err)
	}
	if !alice.IsFriend(bob.Email()) {
		t.Fatal("genuine key rejected")
	}
}

func TestRejectedFriendRequest(t *testing.T) {
	skipIfShort(t)
	net, err := sim.NewNetwork(sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ha := &sim.Handler{AcceptAll: true}
	hb := &sim.Handler{} // rejects everything
	alice, err := net.NewClient("alice@example.org", ha)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := net.NewClient("bob@example.org", hb)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.AddFriend(bob.Email(), nil); err != nil {
		t.Fatal(err)
	}
	clients := []*core.Client{alice, bob}
	for r := uint32(1); r <= 3; r++ {
		if err := net.RunAddFriendRound(r, clients); err != nil {
			t.Fatal(err)
		}
	}
	if alice.IsFriend(bob.Email()) || bob.IsFriend(alice.Email()) {
		t.Fatal("friendship formed despite rejection")
	}
	if len(hb.NewFriends) == 0 {
		t.Fatal("bob never saw the request")
	}
}

func TestCallValidation(t *testing.T) {
	_, alice, _, bob, _ := newPair(t)
	if err := alice.Call(bob.Email(), 0); err == nil {
		t.Fatal("call to non-friend accepted")
	}
	if err := alice.Call("stranger@example.org", 0); err == nil {
		t.Fatal("call to stranger accepted")
	}
	if err := alice.AddFriend(alice.Email(), nil); err == nil {
		t.Fatal("self-friending accepted")
	}
	if err := alice.Call(bob.Email(), 99999); err == nil {
		t.Fatal("out-of-range intent accepted")
	}
}

func TestDuplicateAddFriend(t *testing.T) {
	net, alice, _, bob, _ := newPair(t)
	if err := alice.AddFriend(bob.Email(), nil); err != nil {
		t.Fatal(err)
	}
	if err := alice.AddFriend(bob.Email(), nil); err == nil {
		t.Fatal("duplicate pending AddFriend accepted")
	}
	if err := net.Befriend(alice, bob, 1); err == nil {
		// Befriend calls AddFriend again, which must fail since a
		// request is already pending; drive rounds manually instead.
		t.Fatal("expected AddFriend error for duplicate request")
	}
}

func TestRemoveFriendErasesState(t *testing.T) {
	net, alice, _, bob, _ := newPair(t)
	if err := net.Befriend(alice, bob, 1); err != nil {
		t.Fatal(err)
	}
	alice.RemoveFriend(bob.Email())
	if alice.IsFriend(bob.Email()) {
		t.Fatal("friend still present after removal")
	}
	if err := alice.Call(bob.Email(), 0); err == nil {
		t.Fatal("call to removed friend accepted")
	}
	// Re-adding works (fresh handshake).
	if err := alice.AddFriend(bob.Email(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	net, alice, _, bob, hb := newPair(t)
	if err := net.Befriend(alice, bob, 1); err != nil {
		t.Fatal(err)
	}

	// Snapshot Alice, reload her as a "new" process, and verify the
	// keywheel still works by completing a call.
	state, err := alice.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	ha2 := &sim.Handler{AcceptAll: true}
	alice2, err := core.LoadClient(net.ClientConfig(alice.Email(), ha2), state)
	if err != nil {
		t.Fatal(err)
	}
	if !alice2.IsFriend(bob.Email()) {
		t.Fatal("restored client lost address book")
	}
	if !bytes.Equal(alice2.SigningKey(), alice.SigningKey()) {
		t.Fatal("restored client has different signing key")
	}

	if err := alice2.Call(bob.Email(), 1); err != nil {
		t.Fatal(err)
	}
	clients := []*core.Client{alice2, bob}
	for r := uint32(1); r <= 6; r++ {
		if err := net.RunDialRound(r, clients); err != nil {
			t.Fatal(err)
		}
		if len(hb.IncomingCalls()) > 0 {
			break
		}
	}
	in := hb.IncomingCalls()
	out := ha2.OutgoingCalls()
	if len(in) != 1 || len(out) != 1 || in[0].SessionKey != out[0].SessionKey {
		t.Fatalf("restored client could not complete a call (in=%d out=%d)", len(in), len(out))
	}
}

func TestThreeUserTriangle(t *testing.T) {
	skipIfShort(t)
	net, err := sim.NewNetwork(sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	handlers := make(map[string]*sim.Handler)
	var clients []*core.Client
	for _, name := range []string{"alice@x.org", "bob@x.org", "carol@x.org"} {
		h := &sim.Handler{AcceptAll: true}
		handlers[name] = h
		c, err := net.NewClient(name, h)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	alice, bob, carol := clients[0], clients[1], clients[2]

	// Alice adds Bob and Carol; Carol adds Bob.
	if err := alice.AddFriend(bob.Email(), nil); err != nil {
		t.Fatal(err)
	}
	if err := carol.AddFriend(bob.Email(), nil); err != nil {
		t.Fatal(err)
	}
	// Requests go out one per round per client, so allow several rounds.
	for r := uint32(1); r <= 4; r++ {
		if err := net.RunAddFriendRound(r, clients); err != nil {
			t.Fatal(err)
		}
	}
	if err := alice.AddFriend(carol.Email(), nil); err != nil {
		t.Fatal(err)
	}
	for r := uint32(5); r <= 8; r++ {
		if err := net.RunAddFriendRound(r, clients); err != nil {
			t.Fatal(err)
		}
	}
	for _, pair := range [][2]*core.Client{{alice, bob}, {carol, bob}, {alice, carol}} {
		if !pair[0].IsFriend(pair[1].Email()) || !pair[1].IsFriend(pair[0].Email()) {
			t.Fatalf("friendship %s <-> %s missing", pair[0].Email(), pair[1].Email())
		}
	}

	// Two simultaneous calls to Bob in the same round window.
	if err := alice.Call(bob.Email(), 1); err != nil {
		t.Fatal(err)
	}
	if err := carol.Call(bob.Email(), 2); err != nil {
		t.Fatal(err)
	}
	for r := uint32(1); r <= 12; r++ {
		if err := net.RunDialRound(r, clients); err != nil {
			t.Fatal(err)
		}
		if len(handlers["bob@x.org"].IncomingCalls()) >= 2 {
			break
		}
	}
	in := handlers["bob@x.org"].IncomingCalls()
	if len(in) != 2 {
		t.Fatalf("bob received %d calls, want 2", len(in))
	}
	from := map[string]uint32{}
	for _, call := range in {
		from[call.Friend] = call.Intent
	}
	if from[alice.Email()] != 1 || from[carol.Email()] != 2 {
		t.Fatalf("wrong callers/intents: %v", from)
	}
}

// TestFailedSubmitKeepsFriendRequestQueued: a friend request whose
// submission fails (here: the round closed before the client submitted)
// must stay queued and go out in a later round, not be silently consumed.
func TestFailedSubmitKeepsFriendRequestQueued(t *testing.T) {
	net, alice, _, bob, hb := newPair(t)
	clients := []*core.Client{alice, bob}

	if err := alice.AddFriend(bob.Email(), nil); err != nil {
		t.Fatal(err)
	}
	// Round 1 closes before alice can submit: her submit must fail...
	if _, err := net.Coord.OpenAddFriendRound(1); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Coord.CloseRound(wire.AddFriend, 1); err != nil {
		t.Fatal(err)
	}
	if err := alice.SubmitAddFriendRound(context.Background(), 1); err == nil {
		t.Fatal("submit to a closed round succeeded")
	}
	net.Coord.FinishAddFriendRound(1)

	// ...and the request must still go out in round 2.
	if err := net.RunAddFriendRound(2, clients); err != nil {
		t.Fatal(err)
	}
	if len(hb.NewFriends) != 1 || hb.NewFriends[0] != alice.Email() {
		t.Fatalf("bob's NewFriend events after retry round: %v", hb.NewFriends)
	}
}

// TestFailedSubmitRequeuesCall: a dial token whose submission fails must be
// requeued, not dropped.
func TestFailedSubmitRequeuesCall(t *testing.T) {
	net, alice, ha, bob, hb := newPair(t)
	if err := net.Befriend(alice, bob, 1); err != nil {
		t.Fatal(err)
	}
	clients := []*core.Client{alice, bob}

	// Advance past the keywheel start so round 3's call is sendable.
	for r := uint32(1); r <= 3; r++ {
		if err := net.RunDialRound(r, clients); err != nil {
			t.Fatal(err)
		}
	}
	if err := alice.Call(bob.Email(), 5); err != nil {
		t.Fatal(err)
	}
	// Round 4 closes before alice submits.
	if _, err := net.Coord.OpenDialingRound(4); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Coord.CloseRound(wire.Dialing, 4); err != nil {
		t.Fatal(err)
	}
	if err := alice.SubmitDialRound(context.Background(), 4); err == nil {
		t.Fatal("submit to a closed round succeeded")
	}
	if len(ha.OutgoingCalls()) != 0 {
		t.Fatal("failed submission reported an outgoing call")
	}

	// The call goes out in a later round instead.
	for r := uint32(5); r <= 8; r++ {
		if err := net.RunDialRound(r, clients); err != nil {
			t.Fatal(err)
		}
		if len(hb.IncomingCalls()) > 0 {
			break
		}
	}
	in := hb.IncomingCalls()
	out := ha.OutgoingCalls()
	if len(in) != 1 || len(out) != 1 || in[0].Intent != 5 {
		t.Fatalf("call not delivered after failed submit: in=%v out=%v", in, out)
	}
	if in[0].SessionKey != out[0].SessionKey {
		t.Fatal("session keys differ")
	}
}
