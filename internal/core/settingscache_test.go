package core_test

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"alpenhorn/internal/core"
	"alpenhorn/internal/sim"
	"alpenhorn/internal/wire"
)

// settingsCountingEntry wraps the in-process entry adapter and counts Settings
// fetches. Embedding the concrete adapter keeps its RoundWatcher and
// StatusProvider methods, so the Run feed works through the wrapper.
type settingsCountingEntry struct {
	sim.EntryAdapter
	settingsCalls atomic.Int64
}

func (c *settingsCountingEntry) Settings(ctx context.Context, service wire.Service, round uint32) (*wire.RoundSettings, error) {
	c.settingsCalls.Add(1)
	return c.EntryAdapter.Settings(ctx, service, round)
}

// TestSettingsCachedPerRound pins the client's settings cache: without the
// event feed, a round costs exactly ONE verified fetch (submit fetches,
// scan hits the cache); with the feed connected, announcements carry the
// settings and rounds complete with ZERO fetches.
func TestSettingsCachedPerRound(t *testing.T) {
	network, err := sim.NewNetwork(sim.Config{NumPKGs: 1, NumMixers: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := &sim.Handler{AcceptAll: true}
	cfg := network.ClientConfig("cache@example.org", h)
	ce := &settingsCountingEntry{EntryAdapter: sim.EntryAdapter{E: network.Entry}}
	cfg.Entry = ce
	cfg.PollInterval = 10 * time.Millisecond
	client, err := core.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := client.Register(ctx); err != nil {
		t.Fatal(err)
	}
	if err := network.ConfirmAll(client); err != nil {
		t.Fatal(err)
	}

	// Phase 1 — no feed: each round's settings are fetched once by the
	// submit and reused by the scan.
	for r := uint32(1); r <= 2; r++ {
		if _, err := network.Coord.OpenDialingRound(r); err != nil {
			t.Fatal(err)
		}
		if err := client.SubmitDialRound(ctx, r); err != nil {
			t.Fatal(err)
		}
		if _, err := network.Coord.CloseRound(wire.Dialing, r); err != nil {
			t.Fatal(err)
		}
		if err := client.ScanDialRound(ctx, r); err != nil {
			t.Fatal(err)
		}
	}
	if got := ce.settingsCalls.Load(); got != 2 {
		t.Fatalf("manual rounds: %d settings fetches, want 2 (one per round; scans must hit the cache)", got)
	}

	// Phase 2 — feed connected: open announcements deliver the settings
	// before the submit fires, so rounds cost no fetch at all.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	handle, err := client.ConnectDialing(runCtx)
	if err != nil {
		t.Fatal(err)
	}
	defer handle.Close()
	for r := uint32(3); r <= 5; r++ {
		if _, err := network.Coord.OpenDialingRound(r); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) && network.Entry.BatchSize(wire.Dialing, r) < 1 {
			time.Sleep(2 * time.Millisecond)
		}
		if network.Entry.BatchSize(wire.Dialing, r) < 1 {
			t.Fatalf("client never submitted round %d", r)
		}
		if _, err := network.Coord.CloseRound(wire.Dialing, r); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && client.DialRound() < 6 {
		time.Sleep(5 * time.Millisecond)
	}
	if client.DialRound() < 6 {
		t.Fatalf("feed-driven rounds not scanned (dial round %d)", client.DialRound())
	}
	if got := ce.settingsCalls.Load(); got != 2 {
		t.Fatalf("feed-driven rounds added %d settings fetches, want 0 (settings ride the announcements)", got-2)
	}
}
