// Package core implements the Alpenhorn client: the paper's primary
// contribution. It maintains the user's long-term signing key and address
// book of keywheels, runs the add-friend protocol (§4, Algorithm 1) and the
// dialing protocol (§5), and submits cover traffic in every round so that
// an observer cannot tell when the user is actually communicating.
//
// The client is transport-agnostic: it talks to servers through the PKG,
// EntryServer, and MailboxStore interfaces, which are satisfied directly by
// the in-process server types (internal/pkgserver, internal/entry,
// internal/cdn) and by the TCP adapters in the cmd/ daemons.
//
// Most applications hand the client to Run (or the ConnectAddFriend /
// ConnectDialing handles), which follows the frontend's round
// announcements and drives every phase itself — see run.go. The phases
// remain public so that tests, benchmarks, and simulations can drive
// rounds deterministically:
//
//	SubmitAddFriendRound(ctx, r)  — extract round keys, send request or cover
//	ScanAddFriendRound(ctx, r)    — download mailbox, decrypt, process, erase keys
//	SubmitDialRound(ctx, r)       — send dial token or cover
//	ScanDialRound(ctx, r)         — download Bloom filter, detect calls, advance wheels
//
// Every server-touching method takes a leading context.Context, honored
// through the transport: a dead frontend fails the call instead of
// wedging the client.
package core

import (
	"context"
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"alpenhorn/internal/bls"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/ibe"
	"alpenhorn/internal/keywheel"
	"alpenhorn/internal/pkgserver"
	"alpenhorn/internal/wire"
)

// PKG is the client's view of one private-key generator.
type PKG interface {
	Register(ctx context.Context, email string, signingKey ed25519.PublicKey) error
	ConfirmRegistration(ctx context.Context, email, token string) error
	Extract(ctx context.Context, email string, round uint32, sig []byte) (*pkgserver.ExtractReply, error)
	Deregister(ctx context.Context, email string, sig []byte) error
}

// EntryServer is the client's view of the entry server.
type EntryServer interface {
	Settings(ctx context.Context, service wire.Service, round uint32) (*wire.RoundSettings, error)
	Submit(ctx context.Context, service wire.Service, round uint32, onion []byte) error
}

// MailboxStore is the client's view of the CDN.
type MailboxStore interface {
	Fetch(ctx context.Context, service wire.Service, round uint32, mailbox uint32) ([]byte, error)
	// FetchRange fetches one mailbox across every published round in
	// [fromRound, toRound] in a single request, keyed by round;
	// unavailable rounds are absent. Transports talking to a store
	// without ranged fetches emulate it with per-round Fetch calls.
	FetchRange(ctx context.Context, service wire.Service, fromRound, toRound uint32, mailbox uint32) (map[uint32][]byte, error)
}

// RoundStatus is a service's round progress as reported by the frontend.
type RoundStatus = entry.RoundStatus

// StatusProvider is the poll-based round-progress surface: the frontend
// reports the newest open and newest published round per service. It is
// the fallback transport for Run when the frontend cannot push events.
type StatusProvider interface {
	Status(ctx context.Context, service wire.Service) (RoundStatus, error)
}

// ErrEventsUnsupported is returned by a RoundWatcher whose frontend does
// not serve the push-based event stream; Run falls back to Status polling.
var ErrEventsUnsupported = errors.New("core: frontend does not stream round events")

// RoundWatcher is the push-based round-progress surface: WatchRounds
// blocks until announcements after cursor exist (or ctx ends) and returns
// them with the cursor to resume from. Announcements carry monotonic
// cursors, so a reconnecting client resumes where it left off and a
// coalesced reply after a gap still carries the newest state.
type RoundWatcher interface {
	WatchRounds(ctx context.Context, cursor uint64) ([]entry.Announcement, uint64, error)
}

// Handler receives asynchronous events from the client. Implementations
// must not call back into the client from inside a handler method (the
// client invokes handlers with internal processing complete, but reentrant
// calls from a handler goroutine are still the application's job to
// serialize).
type Handler interface {
	// NewFriend is invoked when a friend request arrives from an unknown
	// sender. Returning true accepts: the client will send a request
	// back, completing the handshake (§3).
	NewFriend(email string, key ed25519.PublicKey) bool

	// ConfirmedFriend is invoked when a friendship completes and the
	// shared keywheel exists (either side).
	ConfirmedFriend(email string)

	// IncomingCall is invoked when a dial token from a friend appears in
	// the user's mailbox.
	IncomingCall(call Call)

	// OutgoingCall is invoked when a queued Call was actually sent and
	// its session key exists.
	OutgoingCall(call Call)

	// Error reports non-fatal asynchronous errors (e.g. a mailbox that
	// could not be fetched, an invalid friend request).
	Error(err error)
}

// Call describes an established (incoming or outgoing) call: both sides
// hold the same SessionKey, which the application feeds to its messaging
// protocol (e.g. internal/vuvuzela).
type Call struct {
	Friend     string
	Intent     uint32
	Round      uint32
	SessionKey [keywheel.SecretSize]byte
}

// Friend is an address book entry.
type Friend struct {
	Email string
	// SigningKey is the friend's long-term key, learned out-of-band or
	// trust-on-first-use (§3.2).
	SigningKey ed25519.PublicKey
	// Confirmed is true once both sides have exchanged friend requests
	// and the keywheel exists.
	Confirmed bool

	wheel *keywheel.Wheel
}

// pendingFriend tracks an AddFriend handshake in progress.
type pendingFriend struct {
	email string
	// expectedKey is the optional out-of-band key for MITM defense.
	expectedKey ed25519.PublicKey
	// queued is true until the request goes out in some round.
	queued bool
	// dhPriv and myDialRound are set when our request is sent.
	dhPriv      *ecdh.PrivateKey
	myDialRound uint32
	// If this handshake answers an incoming request, their half:
	isResponse     bool
	theirKey       ed25519.PublicKey
	theirDH        []byte
	theirDialRound uint32
}

type queuedCall struct {
	friend string
	intent uint32
}

// Config configures a client.
type Config struct {
	// Email is the user's Alpenhorn username.
	Email string

	PKGs      []PKG
	Entry     EntryServer
	Mailboxes MailboxStore

	// Pinned long-term server keys (distributed with the software,
	// §3.3).
	MixerKeys  []ed25519.PublicKey
	PKGKeys    []ed25519.PublicKey
	PKGBLSKeys []*bls.PublicKey

	// NumIntents is how many intent values the application uses (§5.3).
	NumIntents uint32

	// DialRoundDelta is added to the latest known dialing round to pick
	// the keywheel start round w for new friendships, leaving slack for
	// the add-friend round trip.
	DialRoundDelta uint32

	// MaxDialBacklog bounds how many published-but-unscanned dialing
	// rounds the client queues (QueueDialScans) when it falls behind —
	// a client offline for a day of 10-second rounds would otherwise
	// queue thousands of mailbox fetches. Beyond the cap the OLDEST
	// rounds are dropped: their keywheel secrets are advanced away
	// (the same forward-secrecy move as SkipDialRound) and the drop is
	// reported through the Handler as a counted error. 0 means
	// DefaultMaxDialBacklog.
	MaxDialBacklog int

	// PollInterval is how often the Run loop polls frontend.Status when
	// the frontend cannot push round events (0 = DefaultPollInterval).
	// Push-capable frontends make this irrelevant: the loop parks on the
	// event stream instead.
	PollInterval time.Duration

	// ScanRetryBudget is how long the Run loop keeps retrying a dialing
	// round whose mailbox fetch fails before giving up and advancing the
	// keywheels (§5.1's "after some time"; 0 = DefaultScanRetryBudget).
	// Giving up permanently destroys that round's incoming calls, so the
	// default errs long.
	ScanRetryBudget time.Duration

	Handler Handler

	// Rand defaults to crypto/rand.
	Rand io.Reader

	// Persister, if set, receives the serialized client state after
	// every mutation (see persist.go).
	Persister Persister
}

// Client is an Alpenhorn client. All exported methods are safe for
// concurrent use.
type Client struct {
	cfg Config

	signingPub  ed25519.PublicKey
	signingPriv ed25519.PrivateKey

	mu        sync.Mutex
	friends   map[string]*Friend
	pending   map[string]*pendingFriend
	calls     []queuedCall
	dialRound uint32 // latest dialing round processed

	// dialBacklog holds published dialing rounds awaiting a scan, in
	// round order, bounded by Config.MaxDialBacklog. It persists with the
	// client state (along with lastQueued, the backlog cursor), so a
	// client restarted mid-round resumes its scans instead of rebuilding
	// from the frontend's status.
	dialBacklog []uint32
	lastQueued  uint32

	// Per-round extraction results, erased after the round's scan.
	roundKeys map[uint32]*roundSecrets

	// feed is the shared round-announcement pump behind Run and the
	// Connect handles (run.go), reference-counted across handles.
	feedMu sync.Mutex
	feed   *roundFeed

	// settingsCache holds VERIFIED round settings, keyed by (service,
	// round), bounded FIFO. It is filled from round-open announcements
	// that carry settings (an EventStreamV2 frontend, or the in-process
	// adapter) and from fetches, so a streaming client issues no
	// entry.settings call at all in steady state — submit and scan both
	// hit the cache.
	settingsMu    sync.Mutex
	settingsCache map[settingsKey]*wire.RoundSettings
	settingsOrder []settingsKey
}

// settingsKey identifies one round's settings in the client cache.
type settingsKey struct {
	service wire.Service
	round   uint32
}

// settingsCacheSize bounds the cache: submit-to-scan spans plus the
// bounded dialing backlog fit comfortably; anything older re-fetches.
const settingsCacheSize = 64

type roundSecrets struct {
	identityKey *ibe.IdentityPrivateKey
	pkgSigs     *bls.Signature
}

// NewClient creates a client with a fresh long-term signing key.
func NewClient(cfg Config) (*Client, error) {
	if cfg.Email == "" || len(cfg.Email) > wire.MaxEmailLen {
		return nil, errors.New("core: invalid email")
	}
	if len(cfg.PKGs) == 0 || cfg.Entry == nil || cfg.Mailboxes == nil {
		return nil, errors.New("core: config missing servers")
	}
	if len(cfg.PKGKeys) != len(cfg.PKGs) || len(cfg.PKGBLSKeys) != len(cfg.PKGs) {
		return nil, errors.New("core: pinned PKG key count mismatch")
	}
	if cfg.Handler == nil {
		return nil, errors.New("core: config needs a handler")
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Reader
	}
	if cfg.NumIntents == 0 {
		cfg.NumIntents = 1
	}
	if cfg.DialRoundDelta == 0 {
		cfg.DialRoundDelta = 2
	}
	pub, priv, err := ed25519.GenerateKey(cfg.Rand)
	if err != nil {
		return nil, err
	}
	return &Client{
		cfg:         cfg,
		signingPub:  pub,
		signingPriv: priv,
		friends:     make(map[string]*Friend),
		pending:     make(map[string]*pendingFriend),
		roundKeys:   make(map[uint32]*roundSecrets),
	}, nil
}

// Email returns the client's username.
func (c *Client) Email() string { return c.cfg.Email }

// SigningKey returns the user's long-term public key, for out-of-band
// distribution (the paper's MySigningKey API).
func (c *Client) SigningKey() ed25519.PublicKey { return c.signingPub }

// Register registers the user's email and signing key with every PKG. Each
// PKG emails a confirmation token; complete the registration by calling
// ConfirmRegistration with each token (applications typically automate
// reading the inbox).
func (c *Client) Register(ctx context.Context) error {
	for i, pkg := range c.cfg.PKGs {
		if err := pkg.Register(ctx, c.cfg.Email, c.signingPub); err != nil {
			return fmt.Errorf("core: registering with PKG %d: %w", i, err)
		}
	}
	return nil
}

// ConfirmRegistration completes registration at one PKG with the token it
// emailed.
func (c *Client) ConfirmRegistration(ctx context.Context, pkgIndex int, token string) error {
	if pkgIndex < 0 || pkgIndex >= len(c.cfg.PKGs) {
		return errors.New("core: PKG index out of range")
	}
	return c.cfg.PKGs[pkgIndex].ConfirmRegistration(ctx, c.cfg.Email, token)
}

// Deregister revokes the account at every PKG (recovery from client
// compromise, §9). The account enters the 30-day lockout period.
func (c *Client) Deregister(ctx context.Context) error {
	sig := ed25519.Sign(c.signingPriv, pkgserver.DeregisterMessage(c.cfg.Email))
	var firstErr error
	for i, pkg := range c.cfg.PKGs {
		if err := pkg.Deregister(ctx, c.cfg.Email, sig); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("core: deregistering at PKG %d: %w", i, err)
		}
	}
	return firstErr
}

// AddFriend queues a friend request to the given email address. If
// theirKey is non-nil it is treated as out-of-band knowledge of the
// friend's long-term key and used to reject impostors even if all servers
// are compromised (§3.2). The request goes out in the next add-friend
// round.
func (c *Client) AddFriend(email string, theirKey ed25519.PublicKey) error {
	if email == c.cfg.Email {
		return errors.New("core: cannot add yourself")
	}
	if email == "" || len(email) > wire.MaxEmailLen {
		return errors.New("core: invalid friend email")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.friends[email]; ok && f.Confirmed {
		return fmt.Errorf("core: %s is already a friend", email)
	}
	if _, ok := c.pending[email]; ok {
		return fmt.Errorf("core: friend request to %s already pending", email)
	}
	c.pending[email] = &pendingFriend{
		email:       email,
		expectedKey: theirKey,
		queued:      true,
	}
	c.persistLocked()
	return nil
}

// RemoveFriend erases a friend's keywheel and address book entry. After
// this, Alpenhorn's forward secrecy prevents even a full compromise from
// determining that the two users were friends (§3.2).
func (c *Client) RemoveFriend(email string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.friends[email]; ok && f.wheel != nil {
		f.wheel.Erase()
	}
	delete(c.friends, email)
	delete(c.pending, email)
	c.persistLocked()
}

// Call queues a call to a confirmed friend with the given intent. The
// token goes out in the next dialing round; the session key is delivered
// through Handler.OutgoingCall once sent.
func (c *Client) Call(friend string, intent uint32) error {
	if intent >= c.cfg.NumIntents {
		return fmt.Errorf("core: intent %d out of range (NumIntents=%d)", intent, c.cfg.NumIntents)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.friends[friend]
	if !ok || !f.Confirmed {
		return fmt.Errorf("core: %s is not a confirmed friend", friend)
	}
	c.calls = append(c.calls, queuedCall{friend: friend, intent: intent})
	c.persistLocked()
	return nil
}

// Friends returns a snapshot of the address book.
func (c *Client) Friends() []Friend {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Friend, 0, len(c.friends))
	for _, f := range c.friends {
		out = append(out, Friend{
			Email:      f.Email,
			SigningKey: f.SigningKey,
			Confirmed:  f.Confirmed,
		})
	}
	return out
}

// IsFriend reports whether email is a confirmed friend.
func (c *Client) IsFriend(email string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.friends[email]
	return ok && f.Confirmed
}

// verifySettings checks a round's settings against the pinned server keys.
func (c *Client) verifySettings(rs *wire.RoundSettings, needPKGs bool) error {
	pkgKeys := c.cfg.PKGKeys
	if !needPKGs {
		pkgKeys = nil
	}
	return rs.Verify(c.cfg.MixerKeys, pkgKeys)
}

// cacheSettings stores already-verified settings, evicting FIFO past the
// bound. Callers MUST have verified rs first (with PKG keys when the
// service is add-friend): the cache serves submit and scan directly.
func (c *Client) cacheSettings(rs *wire.RoundSettings) {
	key := settingsKey{rs.Service, rs.Round}
	c.settingsMu.Lock()
	defer c.settingsMu.Unlock()
	if c.settingsCache == nil {
		c.settingsCache = make(map[settingsKey]*wire.RoundSettings)
	}
	if _, ok := c.settingsCache[key]; ok {
		return
	}
	c.settingsCache[key] = rs
	c.settingsOrder = append(c.settingsOrder, key)
	if len(c.settingsOrder) > settingsCacheSize {
		evict := c.settingsOrder[0]
		c.settingsOrder = c.settingsOrder[1:]
		delete(c.settingsCache, evict)
	}
}

// noteAnnouncedSettings verifies and caches settings that rode a
// round-open announcement. The push channel is untrusted either way, so a
// copy that is inconsistent or fails signature verification is simply
// dropped — the submit path then fetches and verifies its own copy, so a
// bad push costs one extra RPC, never correctness.
func (c *Client) noteAnnouncedSettings(ann entry.Announcement) {
	rs := ann.Settings
	if rs == nil || rs.Service != ann.Service || rs.Round != ann.Round {
		return
	}
	if c.verifySettings(rs, ann.Service == wire.AddFriend) != nil {
		return
	}
	c.cacheSettings(rs)
}

// roundSettings returns the round's verified settings: from the cache
// when an announcement already delivered them, otherwise fetched from the
// entry server, verified against the pinned keys, and cached (a scan
// never re-fetches what its submit already pulled).
func (c *Client) roundSettings(ctx context.Context, service wire.Service, round uint32, needPKGs bool) (*wire.RoundSettings, error) {
	c.settingsMu.Lock()
	rs, ok := c.settingsCache[settingsKey{service, round}]
	c.settingsMu.Unlock()
	if ok {
		return rs, nil
	}
	rs, err := c.cfg.Entry.Settings(ctx, service, round)
	if err != nil {
		return nil, fmt.Errorf("core: fetching settings: %w", err)
	}
	if err := c.verifySettings(rs, needPKGs); err != nil {
		return nil, fmt.Errorf("core: round %d settings: %w", round, err)
	}
	c.cacheSettings(rs)
	return rs, nil
}

// reportErr forwards a non-fatal error to the handler.
func (c *Client) reportErr(err error) {
	if err != nil {
		c.cfg.Handler.Error(err)
	}
}
