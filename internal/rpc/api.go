package rpc

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sync"

	"alpenhorn/internal/bls"
	"alpenhorn/internal/cdn"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/ibe"
	"alpenhorn/internal/mixnet"
	"alpenhorn/internal/pkgserver"
	"alpenhorn/internal/wire"
)

// This file defines the daemon RPC surface: argument/reply structs and
// registration helpers on the server side, plus client adapters that
// satisfy core.PKG / core.EntryServer / core.MailboxStore and the
// coordinator's Mixer interface across the network.

// ---- PKG daemon API ----

// PKGInfo advertises a PKG's pinned long-term keys.
type PKGInfo struct {
	Name       string `json:"name"`
	SigningKey []byte `json:"signing_key"`
	BLSKey     []byte `json:"bls_key"`
}

type registerArgs struct {
	Email      string `json:"email"`
	SigningKey []byte `json:"signing_key"`
}

type confirmArgs struct {
	Email string `json:"email"`
	Token string `json:"token"`
}

type extractArgs struct {
	Email string `json:"email"`
	Round uint32 `json:"round"`
	Sig   []byte `json:"sig"`
}

type extractReply struct {
	IdentityKey []byte `json:"identity_key"`
	Attestation []byte `json:"attestation"`
}

type deregisterArgs struct {
	Email string `json:"email"`
	Sig   []byte `json:"sig"`
}

type roundArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
}

// RegisterPKG exposes a pkgserver.Server over RPC.
func RegisterPKG(s *Server, pkg *pkgserver.Server) {
	HandleFunc(s, "pkg.info", func(struct{}) (any, error) {
		return PKGInfo{
			Name:       pkg.Name,
			SigningKey: pkg.SigningKey(),
			BLSKey:     pkg.BLSKey().Marshal(),
		}, nil
	})
	HandleFunc(s, "pkg.register", func(a registerArgs) (any, error) {
		return nil, pkg.Register(a.Email, ed25519.PublicKey(a.SigningKey))
	})
	HandleFunc(s, "pkg.confirm", func(a confirmArgs) (any, error) {
		return nil, pkg.ConfirmRegistration(a.Email, a.Token)
	})
	HandleFunc(s, "pkg.extract", func(a extractArgs) (any, error) {
		reply, err := pkg.Extract(a.Email, a.Round, a.Sig)
		if err != nil {
			return nil, err
		}
		return extractReply{
			IdentityKey: reply.IdentityKey.Marshal(),
			Attestation: reply.Attestation.Marshal(),
		}, nil
	})
	HandleFunc(s, "pkg.deregister", func(a deregisterArgs) (any, error) {
		return nil, pkg.Deregister(a.Email, a.Sig)
	})
	HandleFunc(s, "pkg.newround", func(a roundArgs) (any, error) {
		return pkg.NewRound(a.Round)
	})
	HandleFunc(s, "pkg.closeround", func(a roundArgs) (any, error) {
		pkg.CloseRound(a.Round)
		return nil, nil
	})
}

// PKGClient talks to a remote PKG daemon. It satisfies core.PKG and the
// coordinator's PKG interface.
type PKGClient struct {
	c *Client
}

// DialPKG connects to a PKG daemon.
func DialPKG(addr string) *PKGClient { return &PKGClient{c: Dial(addr)} }

// Info fetches the PKG's pinned keys.
func (p *PKGClient) Info() (*PKGInfo, error) {
	var info PKGInfo
	if err := p.c.Call("pkg.info", struct{}{}, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Register implements core.PKG.
func (p *PKGClient) Register(email string, signingKey ed25519.PublicKey) error {
	return p.c.Call("pkg.register", registerArgs{Email: email, SigningKey: signingKey}, nil)
}

// ConfirmRegistration implements core.PKG.
func (p *PKGClient) ConfirmRegistration(email, token string) error {
	return p.c.Call("pkg.confirm", confirmArgs{Email: email, Token: token}, nil)
}

// Extract implements core.PKG.
func (p *PKGClient) Extract(email string, round uint32, sig []byte) (*pkgserver.ExtractReply, error) {
	var raw extractReply
	if err := p.c.Call("pkg.extract", extractArgs{Email: email, Round: round, Sig: sig}, &raw); err != nil {
		return nil, err
	}
	idKey, err := ibe.UnmarshalIdentityPrivateKey(raw.IdentityKey)
	if err != nil {
		return nil, err
	}
	att, err := bls.UnmarshalSignature(raw.Attestation)
	if err != nil {
		return nil, err
	}
	return &pkgserver.ExtractReply{IdentityKey: idKey, Attestation: att}, nil
}

// Deregister implements core.PKG.
func (p *PKGClient) Deregister(email string, sig []byte) error {
	return p.c.Call("pkg.deregister", deregisterArgs{Email: email, Sig: sig}, nil)
}

// NewRound asks the PKG for its signed round key (coordinator side).
func (p *PKGClient) NewRound(round uint32) (wire.PKGRoundKey, error) {
	var rk wire.PKGRoundKey
	err := p.c.Call("pkg.newround", roundArgs{Round: round}, &rk)
	return rk, err
}

// CloseRound erases the PKG's round master key (coordinator side).
func (p *PKGClient) CloseRound(round uint32) {
	_ = p.c.Call("pkg.closeround", roundArgs{Round: round}, nil)
}

// ---- Mixer daemon API ----

// MixerInfo advertises a mixer's pinned key and chain position. Streaming
// reports whether the daemon serves the mix.preparenoise / mix.stream.*
// surface; daemons built before it existed leave the field false, and the
// coordinator falls back to full-batch mix.mix calls.
type MixerInfo struct {
	Name        string  `json:"name"`
	Position    int     `json:"position"`
	SigningKey  []byte  `json:"signing_key"`
	AddFriendMu float64 `json:"add_friend_mu"`
	DialingMu   float64 `json:"dialing_mu"`
	Streaming   bool    `json:"streaming,omitempty"`
}

type downstreamArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
	Keys    [][]byte     `json:"keys"`
}

type mixArgs struct {
	Service      wire.Service `json:"service"`
	Round        uint32       `json:"round"`
	NumMailboxes uint32       `json:"num_mailboxes"`
	Batch        [][]byte     `json:"batch"`
}

// streamPullMax bounds how many messages one mix.stream.pull reply
// carries, keeping every frame far below the transport's 64 MB cap even
// for large onions (8192 × ~600 B × base64 ≈ 7 MB).
const streamPullMax = 8192

type streamEndReply struct {
	Total int `json:"total"`
}

type streamPullArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
	Offset  int          `json:"offset"`
	Max     int          `json:"max"`
}

// RegisterMixer exposes a mixnet.Server over RPC, including the chunked
// streaming surface: the coordinator pushes batch chunks as they become
// available and the daemon decrypts them on its worker pool while later
// chunks are still crossing the network. The mixed output is likewise
// pulled in chunks (mix.stream.end returns only the count) so no single
// frame has to carry a paper-scale batch.
func RegisterMixer(s *Server, m *mixnet.Server) {
	type outKey struct {
		service wire.Service
		round   uint32
	}
	var outMu sync.Mutex
	outbox := make(map[outKey][][]byte)

	HandleFunc(s, "mix.info", func(struct{}) (any, error) {
		return MixerInfo{
			Name:        m.Name,
			Position:    m.Position,
			SigningKey:  m.SigningKey(),
			AddFriendMu: m.AddFriendNoise.Mu,
			DialingMu:   m.DialingNoise.Mu,
			Streaming:   true,
		}, nil
	})
	HandleFunc(s, "mix.newround", func(a roundArgs) (any, error) {
		return m.NewRound(a.Service, a.Round)
	})
	HandleFunc(s, "mix.setdownstream", func(a downstreamArgs) (any, error) {
		return nil, m.SetDownstreamKeys(a.Service, a.Round, a.Keys)
	})
	HandleFunc(s, "mix.preparenoise", func(a mixArgs) (any, error) {
		return nil, m.PrepareNoise(a.Service, a.Round, a.NumMailboxes)
	})
	HandleFunc(s, "mix.mix", func(a mixArgs) (any, error) {
		return m.Mix(a.Service, a.Round, a.NumMailboxes, a.Batch)
	})
	HandleFunc(s, "mix.stream.begin", func(a mixArgs) (any, error) {
		return nil, m.StreamBegin(a.Service, a.Round, a.NumMailboxes)
	})
	HandleFunc(s, "mix.stream.chunk", func(a mixArgs) (any, error) {
		return nil, m.StreamChunk(a.Service, a.Round, a.Batch)
	})
	HandleFunc(s, "mix.stream.end", func(a roundArgs) (any, error) {
		out, err := m.StreamEnd(a.Service, a.Round)
		if err != nil {
			return nil, err
		}
		outMu.Lock()
		outbox[outKey{a.Service, a.Round}] = out
		outMu.Unlock()
		return streamEndReply{Total: len(out)}, nil
	})
	HandleFunc(s, "mix.stream.pull", func(a streamPullArgs) (any, error) {
		if a.Max <= 0 || a.Max > streamPullMax {
			a.Max = streamPullMax
		}
		outMu.Lock()
		defer outMu.Unlock()
		k := outKey{a.Service, a.Round}
		out, ok := outbox[k]
		if !ok {
			return nil, fmt.Errorf("rpc: no pending stream output for round %d (%s)", a.Round, a.Service)
		}
		if a.Offset < 0 || a.Offset > len(out) {
			return nil, fmt.Errorf("rpc: stream pull offset %d out of range", a.Offset)
		}
		hi := a.Offset + a.Max
		if hi >= len(out) {
			hi = len(out)
			defer delete(outbox, k) // last chunk: the batch is handed over
		}
		return out[a.Offset:hi], nil
	})
	HandleFunc(s, "mix.stream.abort", func(a roundArgs) (any, error) {
		outMu.Lock()
		delete(outbox, outKey{a.Service, a.Round})
		outMu.Unlock()
		return nil, m.StreamAbort(a.Service, a.Round)
	})
	HandleFunc(s, "mix.closeround", func(a roundArgs) (any, error) {
		outMu.Lock()
		delete(outbox, outKey{a.Service, a.Round})
		outMu.Unlock()
		m.CloseRound(a.Service, a.Round)
		return nil, nil
	})
}

// MixerClient talks to a remote mixer daemon; it satisfies the
// coordinator's Mixer interface.
type MixerClient struct {
	c    *Client
	info *MixerInfo
}

// DialMixer connects to a mixer daemon and caches its info.
func DialMixer(addr string) (*MixerClient, error) {
	m := &MixerClient{c: Dial(addr)}
	var info MixerInfo
	if err := m.c.Call("mix.info", struct{}{}, &info); err != nil {
		return nil, err
	}
	m.info = &info
	return m, nil
}

// Info returns the mixer's advertised identity.
func (m *MixerClient) Info() *MixerInfo { return m.info }

// NewRound implements coordinator.Mixer.
func (m *MixerClient) NewRound(service wire.Service, round uint32) (wire.MixerRoundKey, error) {
	var rk wire.MixerRoundKey
	err := m.c.Call("mix.newround", roundArgs{Service: service, Round: round}, &rk)
	return rk, err
}

// SetDownstreamKeys implements coordinator.Mixer.
func (m *MixerClient) SetDownstreamKeys(service wire.Service, round uint32, keys [][]byte) error {
	return m.c.Call("mix.setdownstream", downstreamArgs{Service: service, Round: round, Keys: keys}, nil)
}

// Mix implements coordinator.Mixer.
func (m *MixerClient) Mix(service wire.Service, round uint32, numMailboxes uint32, batch [][]byte) ([][]byte, error) {
	var out [][]byte
	err := m.c.Call("mix.mix", mixArgs{Service: service, Round: round, NumMailboxes: numMailboxes, Batch: batch}, &out)
	return out, err
}

// SupportsStreaming reports whether the daemon advertises the
// mix.preparenoise / mix.stream.* surface (coordinator.streamCapable);
// daemons built before it existed report false and the coordinator drives
// them through full-batch Mix.
func (m *MixerClient) SupportsStreaming() bool { return m.info.Streaming }

// PrepareNoise implements coordinator.NoisePreparer: the daemon starts
// generating round noise in the background as soon as settings are fixed.
func (m *MixerClient) PrepareNoise(service wire.Service, round uint32, numMailboxes uint32) error {
	return m.c.Call("mix.preparenoise", mixArgs{Service: service, Round: round, NumMailboxes: numMailboxes}, nil)
}

// StreamBegin implements coordinator.StreamMixer.
func (m *MixerClient) StreamBegin(service wire.Service, round uint32, numMailboxes uint32) error {
	return m.c.Call("mix.stream.begin", mixArgs{Service: service, Round: round, NumMailboxes: numMailboxes}, nil)
}

// StreamChunk implements coordinator.StreamMixer. Chunks are framed as
// ordinary calls: the daemon acknowledges intake immediately and decrypts
// on its worker pool, so consecutive chunks overlap with decryption.
func (m *MixerClient) StreamChunk(service wire.Service, round uint32, chunk [][]byte) error {
	return m.c.Call("mix.stream.chunk", mixArgs{Service: service, Round: round, Batch: chunk}, nil)
}

// StreamEnd implements coordinator.StreamMixer: it blocks until the daemon
// has decrypted every chunk, added noise, and shuffled, then pulls the
// output batch in frame-sized chunks.
func (m *MixerClient) StreamEnd(service wire.Service, round uint32) ([][]byte, error) {
	var reply streamEndReply
	if err := m.c.Call("mix.stream.end", roundArgs{Service: service, Round: round}, &reply); err != nil {
		return nil, err
	}
	out := make([][]byte, 0, reply.Total)
	for len(out) < reply.Total {
		var chunk [][]byte
		err := m.c.Call("mix.stream.pull", streamPullArgs{
			Service: service, Round: round, Offset: len(out), Max: streamPullMax,
		}, &chunk)
		if err != nil {
			return nil, err
		}
		if len(chunk) == 0 {
			return nil, errors.New("rpc: stream output truncated")
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// StreamAbort implements coordinator.StreamMixer's cheap failure path.
func (m *MixerClient) StreamAbort(service wire.Service, round uint32) error {
	return m.c.Call("mix.stream.abort", roundArgs{Service: service, Round: round}, nil)
}

// CloseRound implements coordinator.Mixer.
func (m *MixerClient) CloseRound(service wire.Service, round uint32) {
	_ = m.c.Call("mix.closeround", roundArgs{Service: service, Round: round}, nil)
}

// NoiseMu implements coordinator.Mixer.
func (m *MixerClient) NoiseMu(service wire.Service) float64 {
	if service == wire.Dialing {
		return m.info.DialingMu
	}
	return m.info.AddFriendMu
}

// ---- Entry/CDN daemon API (the client-facing frontend) ----

// Directory describes a full deployment to connecting clients: addresses
// and pinned keys for every server. Served by the entry daemon.
type Directory struct {
	PKGAddrs   []string `json:"pkg_addrs"`
	PKGKeys    [][]byte `json:"pkg_keys"`
	PKGBLSKeys [][]byte `json:"pkg_bls_keys"`
	MixerKeys  [][]byte `json:"mixer_keys"`
	NumMixers  int      `json:"num_mixers"`
}

type settingsArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
}

type submitArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
	Onion   []byte       `json:"onion"`
}

type fetchArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
	Mailbox uint32       `json:"mailbox"`
}

// RoundStatus reports the frontend's view of round progress so polling
// clients know when to submit and when to scan.
type RoundStatus struct {
	CurrentOpen     uint32 `json:"current_open"`     // 0 if none yet
	LatestPublished uint32 `json:"latest_published"` // 0 if none yet
}

// FrontendState tracks open/published rounds for the status endpoint.
// The entry daemon updates it as the coordinator advances rounds.
type FrontendState struct {
	addFriend RoundStatus
	dialing   RoundStatus
}

// SetOpen records a newly opened round.
func (f *FrontendState) SetOpen(service wire.Service, round uint32) {
	if service == wire.Dialing {
		f.dialing.CurrentOpen = round
	} else {
		f.addFriend.CurrentOpen = round
	}
}

// SetPublished records a published round.
func (f *FrontendState) SetPublished(service wire.Service, round uint32) {
	if service == wire.Dialing {
		f.dialing.LatestPublished = round
	} else {
		f.addFriend.LatestPublished = round
	}
}

// RegisterFrontend exposes the entry server, CDN, and deployment directory
// over RPC.
func RegisterFrontend(s *Server, e *entry.Server, store *cdn.Store, dir Directory, state *FrontendState) {
	HandleFunc(s, "frontend.directory", func(struct{}) (any, error) {
		return dir, nil
	})
	HandleFunc(s, "frontend.status", func(a settingsArgs) (any, error) {
		if a.Service == wire.Dialing {
			return state.dialing, nil
		}
		return state.addFriend, nil
	})
	HandleFunc(s, "entry.settings", func(a settingsArgs) (any, error) {
		settings, err := e.Settings(a.Service, a.Round)
		if err != nil {
			return nil, err
		}
		return settings.Marshal(), nil
	})
	HandleFunc(s, "entry.submit", func(a submitArgs) (any, error) {
		return nil, e.Submit(a.Service, a.Round, a.Onion)
	})
	HandleFunc(s, "cdn.fetch", func(a fetchArgs) (any, error) {
		return store.Fetch(a.Service, a.Round, a.Mailbox)
	})
}

// UnmarshalBLSKey decodes a BLS public key from a directory entry; it
// exists so daemon binaries need not import internal/bls directly.
func UnmarshalBLSKey(data []byte) (*bls.PublicKey, error) {
	return bls.UnmarshalPublicKey(data)
}

// FrontendClient talks to the entry daemon; it satisfies core.EntryServer
// and core.MailboxStore.
type FrontendClient struct {
	c *Client
}

// DialFrontend connects to the entry daemon.
func DialFrontend(addr string) *FrontendClient { return &FrontendClient{c: Dial(addr)} }

// Directory fetches the deployment directory.
func (f *FrontendClient) Directory() (*Directory, error) {
	var dir Directory
	if err := f.c.Call("frontend.directory", struct{}{}, &dir); err != nil {
		return nil, err
	}
	return &dir, nil
}

// Status returns round progress for a service.
func (f *FrontendClient) Status(service wire.Service) (*RoundStatus, error) {
	var st RoundStatus
	if err := f.c.Call("frontend.status", settingsArgs{Service: service}, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Settings implements core.EntryServer.
func (f *FrontendClient) Settings(service wire.Service, round uint32) (*wire.RoundSettings, error) {
	var raw []byte
	if err := f.c.Call("entry.settings", settingsArgs{Service: service, Round: round}, &raw); err != nil {
		return nil, err
	}
	return wire.UnmarshalRoundSettings(raw)
}

// Submit implements core.EntryServer.
func (f *FrontendClient) Submit(service wire.Service, round uint32, onion []byte) error {
	return f.c.Call("entry.submit", submitArgs{Service: service, Round: round, Onion: onion}, nil)
}

// Fetch implements core.MailboxStore.
func (f *FrontendClient) Fetch(service wire.Service, round uint32, mailbox uint32) ([]byte, error) {
	var out []byte
	if err := f.c.Call("cdn.fetch", fetchArgs{Service: service, Round: round, Mailbox: mailbox}, &out); err != nil {
		return nil, err
	}
	return out, nil
}
