package rpc

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"alpenhorn/internal/bls"
	"alpenhorn/internal/cdn"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/ibe"
	"alpenhorn/internal/pkgserver"
	"alpenhorn/internal/wire"
)

// This file defines the daemon RPC surface: argument/reply structs and
// registration helpers on the server side, plus client adapters that
// satisfy core.PKG / core.EntryServer / core.MailboxStore and the
// coordinator's Mixer interface across the network.

// ---- PKG daemon API ----

// PKGInfo advertises a PKG's pinned long-term keys.
type PKGInfo struct {
	Name       string `json:"name"`
	SigningKey []byte `json:"signing_key"`
	BLSKey     []byte `json:"bls_key"`
}

type registerArgs struct {
	Email      string `json:"email"`
	SigningKey []byte `json:"signing_key"`
}

type confirmArgs struct {
	Email string `json:"email"`
	Token string `json:"token"`
}

type extractArgs struct {
	Email string `json:"email"`
	Round uint32 `json:"round"`
	Sig   []byte `json:"sig"`
}

type extractReply struct {
	IdentityKey []byte `json:"identity_key"`
	Attestation []byte `json:"attestation"`
}

type deregisterArgs struct {
	Email string `json:"email"`
	Sig   []byte `json:"sig"`
}

type roundArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
	// Upstream identifies which of a fan-in route's NumUpstream writers
	// a mix.stream.end comes from, so a duplicated end (an upstream
	// restarting and re-sending) cannot close the intake early. Ignored
	// by every other method.
	Upstream int `json:"upstream,omitempty"`
}

// RegisterPKG exposes a pkgserver.Server over RPC.
func RegisterPKG(s *Server, pkg *pkgserver.Server) {
	HandleFunc(s, "pkg.info", func(struct{}) (any, error) {
		return PKGInfo{
			Name:       pkg.Name,
			SigningKey: pkg.SigningKey(),
			BLSKey:     pkg.BLSKey().Marshal(),
		}, nil
	})
	HandleFunc(s, "pkg.register", func(a registerArgs) (any, error) {
		return nil, pkg.Register(a.Email, ed25519.PublicKey(a.SigningKey))
	})
	HandleFunc(s, "pkg.confirm", func(a confirmArgs) (any, error) {
		return nil, pkg.ConfirmRegistration(a.Email, a.Token)
	})
	HandleFunc(s, "pkg.extract", func(a extractArgs) (any, error) {
		reply, err := pkg.Extract(a.Email, a.Round, a.Sig)
		if err != nil {
			return nil, err
		}
		return extractReply{
			IdentityKey: reply.IdentityKey.Marshal(),
			Attestation: reply.Attestation.Marshal(),
		}, nil
	})
	HandleFunc(s, "pkg.deregister", func(a deregisterArgs) (any, error) {
		return nil, pkg.Deregister(a.Email, a.Sig)
	})
	HandleFunc(s, "pkg.newround", func(a roundArgs) (any, error) {
		return pkg.NewRound(a.Round)
	})
	HandleFunc(s, "pkg.closeround", func(a roundArgs) (any, error) {
		pkg.CloseRound(a.Round)
		return nil, nil
	})
}

// PKGClient talks to a remote PKG daemon. It satisfies core.PKG and the
// coordinator's PKG interface.
type PKGClient struct {
	c *Client
}

// DialPKG connects to a PKG daemon.
func DialPKG(addr string) *PKGClient { return &PKGClient{c: Dial(addr)} }

// Info fetches the PKG's pinned keys.
func (p *PKGClient) Info() (*PKGInfo, error) {
	var info PKGInfo
	if err := p.c.Call("pkg.info", struct{}{}, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Register implements core.PKG.
func (p *PKGClient) Register(email string, signingKey ed25519.PublicKey) error {
	return p.c.Call("pkg.register", registerArgs{Email: email, SigningKey: signingKey}, nil)
}

// ConfirmRegistration implements core.PKG.
func (p *PKGClient) ConfirmRegistration(email, token string) error {
	return p.c.Call("pkg.confirm", confirmArgs{Email: email, Token: token}, nil)
}

// Extract implements core.PKG.
func (p *PKGClient) Extract(email string, round uint32, sig []byte) (*pkgserver.ExtractReply, error) {
	var raw extractReply
	if err := p.c.Call("pkg.extract", extractArgs{Email: email, Round: round, Sig: sig}, &raw); err != nil {
		return nil, err
	}
	idKey, err := ibe.UnmarshalIdentityPrivateKey(raw.IdentityKey)
	if err != nil {
		return nil, err
	}
	att, err := bls.UnmarshalSignature(raw.Attestation)
	if err != nil {
		return nil, err
	}
	return &pkgserver.ExtractReply{IdentityKey: idKey, Attestation: att}, nil
}

// Deregister implements core.PKG.
func (p *PKGClient) Deregister(email string, sig []byte) error {
	return p.c.Call("pkg.deregister", deregisterArgs{Email: email, Sig: sig}, nil)
}

// NewRound asks the PKG for its signed round key (coordinator side).
func (p *PKGClient) NewRound(round uint32) (wire.PKGRoundKey, error) {
	var rk wire.PKGRoundKey
	err := p.c.Call("pkg.newround", roundArgs{Round: round}, &rk)
	return rk, err
}

// CloseRound erases the PKG's round master key (coordinator side).
func (p *PKGClient) CloseRound(round uint32) {
	_ = p.c.Call("pkg.closeround", roundArgs{Round: round}, nil)
}

// ---- Mixer daemon API ----

// Streaming capability versions advertised in MixerInfo.StreamVersion.
// Each version includes everything below it.
const (
	// StreamVersionNone: pre-streaming daemon; full-batch mix.mix only.
	StreamVersionNone = 0
	// StreamVersionRelay: mix.preparenoise + mix.stream.* with the
	// coordinator relaying each server's output downstream (PR 1).
	StreamVersionRelay = 1
	// StreamVersionForward: mix.round.route/wait/abort — the daemon
	// pushes its post-shuffle output to its successor itself and the
	// last server publishes mailboxes straight to the CDN.
	StreamVersionForward = 2
	// StreamVersionShard: shard-group routes — one chain position served
	// by several daemons (mix.round.shard, mix.round.exportkey/importkey,
	// the mix.merge.* deposit surface, and fan-out/fan-in routing).
	StreamVersionShard = 3
)

// MixerInfo advertises a mixer's pinned key and chain position.
// StreamVersion reports which generation of the streaming surface the
// daemon serves (see the StreamVersion constants); Streaming is the legacy
// capability bit that predates versioning and is kept so a newer
// coordinator still recognizes a StreamVersionRelay daemon that only sets
// the bool. Daemons built before streaming leave both zero and the
// coordinator falls back to full-batch mix.mix calls.
type MixerInfo struct {
	Name          string  `json:"name"`
	Position      int     `json:"position"`
	SigningKey    []byte  `json:"signing_key"`
	AddFriendMu   float64 `json:"add_friend_mu"`
	DialingMu     float64 `json:"dialing_mu"`
	Streaming     bool    `json:"streaming,omitempty"`
	StreamVersion int     `json:"stream_version,omitempty"`
	// ShardIndex/ShardCount advertise the daemon's pinned place in its
	// position's shard group (-shard i/N); ShardCount 0 means unpinned
	// (a whole position to itself unless the coordinator says otherwise).
	ShardIndex int `json:"shard_index,omitempty"`
	ShardCount int `json:"shard_count,omitempty"`
}

type downstreamArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
	Keys    [][]byte     `json:"keys"`
}

type mixArgs struct {
	Service      wire.Service `json:"service"`
	Round        uint32       `json:"round"`
	NumMailboxes uint32       `json:"num_mailboxes"`
	Batch        [][]byte     `json:"batch"`
}

// streamPullMax bounds how many messages one mix.stream.pull reply
// carries, keeping every frame far below the transport's 64 MB cap even
// for large onions (8192 × ~600 B × base64 ≈ 7 MB).
const streamPullMax = 8192

type streamEndReply struct {
	Total int `json:"total"`
	// Forwarded reports that the daemon accepted the stream close and is
	// pushing its output to its successor (or the CDN) itself: there is
	// no output to pull, and completion is reported via mix.round.wait.
	Forwarded bool `json:"forwarded,omitempty"`
}

type streamPullArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
	Offset  int          `json:"offset"`
	Max     int          `json:"max"`
}

// RegisterMixer (in forward.go) exposes a mixnet.Server over RPC,
// including the chunked streaming surface and the chain-forward data
// plane.

// MixerClient talks to a remote mixer daemon; it satisfies the
// coordinator's Mixer interface and, for StreamVersionForward daemons, its
// ForwardMixer control surface.
type MixerClient struct {
	addr string
	c    *Client
	info *MixerInfo

	// WaitTimeout bounds WaitRound; zero means DefaultWaitTimeout.
	WaitTimeout time.Duration

	// waitc is a dedicated connection for the mix.round.wait long-poll,
	// so that an abort broadcast on the main connection is never queued
	// behind a blocked wait.
	waitMu sync.Mutex
	waitc  *Client
}

// DefaultWaitTimeout bounds how long WaitRound polls for a round's
// data-plane completion before giving up.
const DefaultWaitTimeout = 10 * time.Minute

// DialMixer connects to a mixer daemon and caches its info.
func DialMixer(addr string) (*MixerClient, error) {
	m := &MixerClient{addr: addr, c: Dial(addr)}
	var info MixerInfo
	if err := m.c.Call("mix.info", struct{}{}, &info); err != nil {
		return nil, err
	}
	m.info = &info
	return m, nil
}

// Info returns the mixer's advertised identity.
func (m *MixerClient) Info() *MixerInfo { return m.info }

// Addr returns the daemon's dial address. The coordinator hands it to the
// daemon's predecessor as the round's forwarding target.
func (m *MixerClient) Addr() string { return m.addr }

// TransportStats sums the transport accounting of every connection this
// client holds (the call connection and the wait long-poll connection).
func (m *MixerClient) TransportStats() ClientStats {
	st := m.c.Stats()
	m.waitMu.Lock()
	wc := m.waitc
	m.waitMu.Unlock()
	if wc != nil {
		ws := wc.Stats()
		st.BytesSent += ws.BytesSent
		st.BytesReceived += ws.BytesReceived
		st.Calls += ws.Calls
	}
	return st
}

// CallCount reports how many times the coordinator invoked a method on
// this daemon, across all of the client's connections.
func (m *MixerClient) CallCount(method string) uint64 {
	n := m.c.CallCount(method)
	m.waitMu.Lock()
	wc := m.waitc
	m.waitMu.Unlock()
	if wc != nil {
		n += wc.CallCount(method)
	}
	return n
}

// NewRound implements coordinator.Mixer.
func (m *MixerClient) NewRound(service wire.Service, round uint32) (wire.MixerRoundKey, error) {
	var rk wire.MixerRoundKey
	err := m.c.Call("mix.newround", roundArgs{Service: service, Round: round}, &rk)
	return rk, err
}

// SetDownstreamKeys implements coordinator.Mixer.
func (m *MixerClient) SetDownstreamKeys(service wire.Service, round uint32, keys [][]byte) error {
	return m.c.Call("mix.setdownstream", downstreamArgs{Service: service, Round: round, Keys: keys}, nil)
}

// Mix implements coordinator.Mixer.
func (m *MixerClient) Mix(service wire.Service, round uint32, numMailboxes uint32, batch [][]byte) ([][]byte, error) {
	var out [][]byte
	err := m.c.Call("mix.mix", mixArgs{Service: service, Round: round, NumMailboxes: numMailboxes, Batch: batch}, &out)
	return out, err
}

// SupportsStreaming reports whether the daemon advertises the
// mix.preparenoise / mix.stream.* surface (coordinator.streamCapable);
// daemons built before it existed report false and the coordinator drives
// them through full-batch Mix.
func (m *MixerClient) SupportsStreaming() bool {
	return m.info.Streaming || m.info.StreamVersion >= StreamVersionRelay
}

// SupportsForwarding reports whether the daemon serves the chain-forward
// surface (mix.round.route/wait/abort); the coordinator only switches the
// data plane to server-to-server forwarding when every mixer does.
func (m *MixerClient) SupportsForwarding() bool {
	return m.info.StreamVersion >= StreamVersionForward
}

// SupportsSharding reports whether the daemon serves the shard-group
// surface (per-round shard layouts, group key exchange, merge deposits).
// The coordinator refuses to open a sharded round unless every daemon in
// the fleet does — a partial shard rollout cannot silently degrade the
// noise division.
func (m *MixerClient) SupportsSharding() bool {
	return m.info.StreamVersion >= StreamVersionShard
}

// SetRoundShard implements coordinator.ShardMixer: the daemon is shard
// `index` of `count` jointly serving its chain position this round. Must
// precede PrepareNoise — the group divides the position's noise.
func (m *MixerClient) SetRoundShard(service wire.Service, round uint32, index, count int) error {
	return m.c.Call("mix.round.shard", shardArgs{
		Service: service, Round: round, ShardIndex: index, ShardCount: count,
	}, nil)
}

// ImportRoundKeyFrom implements coordinator.ShardMixer: the daemon dials
// the shard group's lead directly and installs the position's round onion
// key. The private key moves server-to-server inside the group's trust
// domain; the coordinator only names the source.
func (m *MixerClient) ImportRoundKeyFrom(service wire.Service, round uint32, leadAddr string) error {
	return m.c.Call("mix.round.importkey", importKeyArgs{
		Service: service, Round: round, LeadAddr: leadAddr,
	}, nil)
}

// OpenRoute implements coordinator.ForwardMixer: it tells the daemon
// where this round's post-shuffle output goes — the successor position's
// shard set (or the CDN's publish address for the last position) — and
// its own shard-group placement. A single unsharded successor rides the
// legacy Successor field so a StreamVersionForward daemon in an unsharded
// chain keeps working during a rolling upgrade.
func (m *MixerClient) OpenRoute(service wire.Service, round uint32, spec wire.RouteSpec) error {
	a := routeArgs{
		Service: service, Round: round,
		NumMailboxes: spec.NumMailboxes, ChunkSize: spec.ChunkSize,
		CDNAddr:    spec.CDNAddr,
		ShardIndex: spec.ShardIndex, ShardCount: spec.ShardCount,
		MergeAddr: spec.MergeAddr, NumUpstream: spec.NumUpstream,
	}
	if len(spec.Successors) == 1 && spec.ShardCount <= 1 {
		a.Successor = spec.Successors[0]
	} else {
		a.Successors = spec.Successors
	}
	return m.c.Call("mix.round.route", a, nil)
}

// WaitRound implements coordinator.ForwardMixer: it blocks until the
// daemon's data-plane role in the round completes (forwarded downstream,
// or published to the CDN) and returns the daemon's error if it failed or
// was aborted, along with the daemon's self-reported duration and batch
// byte counts for the coordinator's round-health tracking. The wait is a
// bounded long-poll on a dedicated connection so the daemon never parks a
// handler forever and the coordinator can still send control calls (e.g.
// an abort) on the main connection.
func (m *MixerClient) WaitRound(service wire.Service, round uint32) (wire.MixerRoundStats, error) {
	m.waitMu.Lock()
	if m.waitc == nil {
		m.waitc = Dial(m.addr)
	}
	wc := m.waitc
	m.waitMu.Unlock()

	timeout := m.WaitTimeout
	if timeout <= 0 {
		timeout = DefaultWaitTimeout
	}
	deadline := time.Now().Add(timeout)
	for {
		var reply waitReply
		if err := wc.Call("mix.round.wait", roundArgs{Service: service, Round: round}, &reply); err != nil {
			return wire.MixerRoundStats{}, err
		}
		if reply.Done {
			stats := wire.MixerRoundStats{
				Duration: time.Duration(reply.DurationMs) * time.Millisecond,
				BytesIn:  reply.BytesIn,
				BytesOut: reply.BytesOut,
			}
			if reply.Error != "" {
				return stats, errors.New(reply.Error)
			}
			return stats, nil
		}
		if time.Now().After(deadline) {
			return wire.MixerRoundStats{}, fmt.Errorf("rpc: round %d (%s) did not complete within %v", round, service, timeout)
		}
	}
}

// AbortRound implements coordinator.ForwardMixer: it discards the
// daemon's in-flight stream and route for the round, unblocking any
// waiter. The daemon propagates the abort to its successor.
func (m *MixerClient) AbortRound(service wire.Service, round uint32, reason string) error {
	return m.c.Call("mix.round.abort", abortArgs{Service: service, Round: round, Reason: reason}, nil)
}

// PrepareNoise implements coordinator.NoisePreparer: the daemon starts
// generating round noise in the background as soon as settings are fixed.
func (m *MixerClient) PrepareNoise(service wire.Service, round uint32, numMailboxes uint32) error {
	return m.c.Call("mix.preparenoise", mixArgs{Service: service, Round: round, NumMailboxes: numMailboxes}, nil)
}

// StreamBegin implements coordinator.StreamMixer. Sent at most once: a
// duplicate begin (request executed, reply lost) would error "stream
// already in progress" and fail the round for no reason.
func (m *MixerClient) StreamBegin(service wire.Service, round uint32, numMailboxes uint32) error {
	return m.c.CallOnce("mix.stream.begin", mixArgs{Service: service, Round: round, NumMailboxes: numMailboxes}, nil)
}

// StreamChunk implements coordinator.StreamMixer. Chunks are framed as
// ordinary calls: the daemon acknowledges intake immediately and decrypts
// on its worker pool, so consecutive chunks overlap with decryption.
// Sent at most once — a transparent retry after a lost reply would
// append the chunk to the round twice and corrupt the batch; a transport
// failure aborts the round instead.
func (m *MixerClient) StreamChunk(service wire.Service, round uint32, chunk [][]byte) error {
	return m.c.CallOnce("mix.stream.chunk", mixArgs{Service: service, Round: round, Batch: chunk}, nil)
}

// StreamEnd implements coordinator.StreamMixer: it blocks until the daemon
// has decrypted every chunk, added noise, and shuffled, then pulls the
// output batch in frame-sized chunks. When the round has a forwarding
// route open, the daemon instead pushes the output to its successor
// itself; StreamEnd then returns no batch and the caller learns the
// outcome from WaitRound.
func (m *MixerClient) StreamEnd(service wire.Service, round uint32) ([][]byte, error) {
	return m.StreamEndAs(service, round, 0)
}

// StreamEndAs is StreamEnd for a daemon routed with NumUpstream > 1
// (fan-in): upstream says WHICH of the route's writers is finished, so
// the daemon closes its intake exactly once per upstream no matter how
// ends are duplicated or interleaved.
func (m *MixerClient) StreamEndAs(service wire.Service, round uint32, upstream int) ([][]byte, error) {
	// At most once: StreamEnd consumes the stream, so a duplicate after a
	// lost reply would fail "no stream in progress" (relay) or spawn a
	// second forwarding attempt against consumed state (chain-forward).
	var reply streamEndReply
	if err := m.c.CallOnce("mix.stream.end", roundArgs{Service: service, Round: round, Upstream: upstream}, &reply); err != nil {
		return nil, err
	}
	if reply.Forwarded {
		return nil, nil
	}
	out := make([][]byte, 0, reply.Total)
	for len(out) < reply.Total {
		var chunk [][]byte
		err := m.c.Call("mix.stream.pull", streamPullArgs{
			Service: service, Round: round, Offset: len(out), Max: streamPullMax,
		}, &chunk)
		if err != nil {
			return nil, err
		}
		if len(chunk) == 0 {
			return nil, errors.New("rpc: stream output truncated")
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// StreamAbort implements coordinator.StreamMixer's cheap failure path.
func (m *MixerClient) StreamAbort(service wire.Service, round uint32) error {
	return m.c.Call("mix.stream.abort", roundArgs{Service: service, Round: round}, nil)
}

// CloseRound implements coordinator.Mixer.
func (m *MixerClient) CloseRound(service wire.Service, round uint32) {
	_ = m.c.Call("mix.closeround", roundArgs{Service: service, Round: round}, nil)
}

// NoiseMu implements coordinator.Mixer.
func (m *MixerClient) NoiseMu(service wire.Service) float64 {
	if service == wire.Dialing {
		return m.info.DialingMu
	}
	return m.info.AddFriendMu
}

// ---- Entry/CDN daemon API (the client-facing frontend) ----

// Directory describes a full deployment to connecting clients: addresses
// and pinned keys for every server. Served by the entry daemon.
type Directory struct {
	PKGAddrs   []string `json:"pkg_addrs"`
	PKGKeys    [][]byte `json:"pkg_keys"`
	PKGBLSKeys [][]byte `json:"pkg_bls_keys"`
	MixerKeys  [][]byte `json:"mixer_keys"`
	NumMixers  int      `json:"num_mixers"`
}

type settingsArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
}

type submitArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
	Onion   []byte       `json:"onion"`
}

type fetchArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
	Mailbox uint32       `json:"mailbox"`
}

// RoundStatus reports the frontend's view of round progress so polling
// clients know when to submit and when to scan.
type RoundStatus struct {
	CurrentOpen     uint32 `json:"current_open"`     // 0 if none yet
	LatestPublished uint32 `json:"latest_published"` // 0 if none yet
}

// FrontendState tracks open/published rounds for the status endpoint.
// The entry daemon's round loops update it while connection handlers
// read it concurrently, so access is serialized internally.
type FrontendState struct {
	mu        sync.Mutex
	addFriend RoundStatus
	dialing   RoundStatus
}

// SetOpen records a newly opened round.
func (f *FrontendState) SetOpen(service wire.Service, round uint32) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if service == wire.Dialing {
		f.dialing.CurrentOpen = round
	} else {
		f.addFriend.CurrentOpen = round
	}
}

// SetPublished records a published round.
func (f *FrontendState) SetPublished(service wire.Service, round uint32) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if service == wire.Dialing {
		f.dialing.LatestPublished = round
	} else {
		f.addFriend.LatestPublished = round
	}
}

// Status returns a snapshot of one service's round progress.
func (f *FrontendState) Status(service wire.Service) RoundStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	if service == wire.Dialing {
		return f.dialing
	}
	return f.addFriend
}

// RegisterFrontend exposes the entry server, CDN fetch surface, and
// deployment directory over RPC. This is the CLIENT-facing surface:
// cdn.publish is deliberately NOT served here — the transport carries no
// authentication, so the write surface must live on a separate
// server-plane listener (RegisterCDN) that deployments keep away from
// clients; otherwise any client could publish a round's mailboxes first
// and censor the real ones.
func RegisterFrontend(s *Server, e *entry.Server, store *cdn.Store, dir Directory, state *FrontendState) {
	HandleFunc(s, "frontend.directory", func(struct{}) (any, error) {
		return dir, nil
	})
	HandleFunc(s, "frontend.status", func(a settingsArgs) (any, error) {
		return state.Status(a.Service), nil
	})
	HandleFunc(s, "entry.settings", func(a settingsArgs) (any, error) {
		settings, err := e.Settings(a.Service, a.Round)
		if err != nil {
			return nil, err
		}
		return settings.Marshal(), nil
	})
	HandleFunc(s, "entry.submit", func(a submitArgs) (any, error) {
		return nil, e.Submit(a.Service, a.Round, a.Onion)
	})
	HandleFunc(s, "cdn.fetch", func(a fetchArgs) (any, error) {
		return store.Fetch(a.Service, a.Round, a.Mailbox)
	})
}

// UnmarshalBLSKey decodes a BLS public key from a directory entry; it
// exists so daemon binaries need not import internal/bls directly.
func UnmarshalBLSKey(data []byte) (*bls.PublicKey, error) {
	return bls.UnmarshalPublicKey(data)
}

// FrontendClient talks to the entry daemon; it satisfies core.EntryServer
// and core.MailboxStore.
type FrontendClient struct {
	c *Client
}

// DialFrontend connects to the entry daemon.
func DialFrontend(addr string) *FrontendClient { return &FrontendClient{c: Dial(addr)} }

// Directory fetches the deployment directory.
func (f *FrontendClient) Directory() (*Directory, error) {
	var dir Directory
	if err := f.c.Call("frontend.directory", struct{}{}, &dir); err != nil {
		return nil, err
	}
	return &dir, nil
}

// Status returns round progress for a service.
func (f *FrontendClient) Status(service wire.Service) (*RoundStatus, error) {
	var st RoundStatus
	if err := f.c.Call("frontend.status", settingsArgs{Service: service}, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Settings implements core.EntryServer.
func (f *FrontendClient) Settings(service wire.Service, round uint32) (*wire.RoundSettings, error) {
	var raw []byte
	if err := f.c.Call("entry.settings", settingsArgs{Service: service, Round: round}, &raw); err != nil {
		return nil, err
	}
	return wire.UnmarshalRoundSettings(raw)
}

// Submit implements core.EntryServer. The entry server's admission
// signals cross the wire as strings, so the typed sentinels are mapped
// back here for the client's errors.Is checks.
func (f *FrontendClient) Submit(service wire.Service, round uint32, onion []byte) error {
	err := f.c.Call("entry.submit", submitArgs{Service: service, Round: round, Onion: onion}, nil)
	if err != nil && strings.Contains(err.Error(), entry.ErrRoundFull.Error()) {
		return fmt.Errorf("rpc: %w", entry.ErrRoundFull)
	}
	return err
}

// Fetch implements core.MailboxStore.
func (f *FrontendClient) Fetch(service wire.Service, round uint32, mailbox uint32) ([]byte, error) {
	var out []byte
	if err := f.c.Call("cdn.fetch", fetchArgs{Service: service, Round: round, Mailbox: mailbox}, &out); err != nil {
		return nil, err
	}
	return out, nil
}
