package rpc

import (
	"context"
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"alpenhorn/internal/bls"
	"alpenhorn/internal/core"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/ibe"
	"alpenhorn/internal/pkgserver"
	"alpenhorn/internal/wire"
)

// This file defines the daemon RPC surface: argument/reply structs and
// registration helpers on the server side, plus client adapters that
// satisfy core.PKG / core.EntryServer / core.MailboxStore and the
// coordinator's Mixer interface across the network.

// ---- PKG daemon API ----

// PKGInfo advertises a PKG's pinned long-term keys.
type PKGInfo struct {
	Name       string `json:"name"`
	SigningKey []byte `json:"signing_key"`
	BLSKey     []byte `json:"bls_key"`
}

type registerArgs struct {
	Email      string `json:"email"`
	SigningKey []byte `json:"signing_key"`
}

type confirmArgs struct {
	Email string `json:"email"`
	Token string `json:"token"`
}

type extractArgs struct {
	Email string `json:"email"`
	Round uint32 `json:"round"`
	Sig   []byte `json:"sig"`
}

type extractReply struct {
	IdentityKey []byte `json:"identity_key"`
	Attestation []byte `json:"attestation"`
}

type deregisterArgs struct {
	Email string `json:"email"`
	Sig   []byte `json:"sig"`
}

type roundArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
	// Upstream identifies which of a fan-in route's NumUpstream writers
	// a mix.stream.end comes from, so a duplicated end (an upstream
	// restarting and re-sending) cannot close the intake early. Ignored
	// by every other method.
	Upstream int `json:"upstream,omitempty"`
}

// RegisterPKG exposes a pkgserver.Server over RPC.
func RegisterPKG(s *Server, pkg *pkgserver.Server) {
	HandleFunc(s, "pkg.info", func(struct{}) (any, error) {
		return PKGInfo{
			Name:       pkg.Name,
			SigningKey: pkg.SigningKey(),
			BLSKey:     pkg.BLSKey().Marshal(),
		}, nil
	})
	HandleFunc(s, "pkg.register", func(a registerArgs) (any, error) {
		return nil, pkg.Register(a.Email, ed25519.PublicKey(a.SigningKey))
	})
	HandleFunc(s, "pkg.confirm", func(a confirmArgs) (any, error) {
		return nil, pkg.ConfirmRegistration(a.Email, a.Token)
	})
	HandleFunc(s, "pkg.extract", func(a extractArgs) (any, error) {
		reply, err := pkg.Extract(a.Email, a.Round, a.Sig)
		if err != nil {
			return nil, err
		}
		return extractReply{
			IdentityKey: reply.IdentityKey.Marshal(),
			Attestation: reply.Attestation.Marshal(),
		}, nil
	})
	HandleFunc(s, "pkg.deregister", func(a deregisterArgs) (any, error) {
		return nil, pkg.Deregister(a.Email, a.Sig)
	})
	HandleFunc(s, "pkg.newround", func(a roundArgs) (any, error) {
		return pkg.NewRound(a.Round)
	})
	HandleFunc(s, "pkg.newroundv2", func(a roundArgs) (any, error) {
		return pkg.NewRoundV2(a.Round)
	})
	HandleFunc(s, "pkg.closeround", func(a roundArgs) (any, error) {
		pkg.CloseRound(a.Round)
		return nil, nil
	})
}

// PKGClient talks to a remote PKG daemon. It satisfies core.PKG and the
// coordinator's PKG interface.
type PKGClient struct {
	c *Client
}

// DialPKG connects to a PKG daemon.
func DialPKG(addr string) *PKGClient { return &PKGClient{c: Dial(addr)} }

// Info fetches the PKG's pinned keys.
func (p *PKGClient) Info() (*PKGInfo, error) {
	var info PKGInfo
	if err := p.c.Call("pkg.info", struct{}{}, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Register implements core.PKG.
func (p *PKGClient) Register(ctx context.Context, email string, signingKey ed25519.PublicKey) error {
	return p.c.CallContext(ctx, "pkg.register", registerArgs{Email: email, SigningKey: signingKey}, nil)
}

// ConfirmRegistration implements core.PKG.
func (p *PKGClient) ConfirmRegistration(ctx context.Context, email, token string) error {
	return p.c.CallContext(ctx, "pkg.confirm", confirmArgs{Email: email, Token: token}, nil)
}

// Extract implements core.PKG.
func (p *PKGClient) Extract(ctx context.Context, email string, round uint32, sig []byte) (*pkgserver.ExtractReply, error) {
	var raw extractReply
	if err := p.c.CallContext(ctx, "pkg.extract", extractArgs{Email: email, Round: round, Sig: sig}, &raw); err != nil {
		return nil, err
	}
	idKey, err := ibe.UnmarshalIdentityPrivateKey(raw.IdentityKey)
	if err != nil {
		return nil, err
	}
	att, err := bls.UnmarshalSignature(raw.Attestation)
	if err != nil {
		return nil, err
	}
	return &pkgserver.ExtractReply{IdentityKey: idKey, Attestation: att}, nil
}

// Deregister implements core.PKG.
func (p *PKGClient) Deregister(ctx context.Context, email string, sig []byte) error {
	return p.c.CallContext(ctx, "pkg.deregister", deregisterArgs{Email: email, Sig: sig}, nil)
}

// NewRound asks the PKG for its signed round key (coordinator side).
func (p *PKGClient) NewRound(round uint32) (wire.PKGRoundKey, error) {
	var rk wire.PKGRoundKey
	err := p.c.Call("pkg.newround", roundArgs{Round: round}, &rk)
	return rk, err
}

// NewRoundV2 asks the PKG for its round key signed under the optimal-ate
// v2 domain (coordinator side). Against a daemon predating the v2 tier
// the call fails with an unknown-method error, which the coordinator
// treats as "capability absent" and downgrades the whole round to v1 —
// NewRound is idempotent per open round, so the retry under v1 returns
// the same master key.
func (p *PKGClient) NewRoundV2(round uint32) (wire.PKGRoundKey, error) {
	var rk wire.PKGRoundKey
	err := p.c.Call("pkg.newroundv2", roundArgs{Round: round}, &rk)
	return rk, err
}

// CloseRound erases the PKG's round master key (coordinator side).
func (p *PKGClient) CloseRound(round uint32) {
	_ = p.c.Call("pkg.closeround", roundArgs{Round: round}, nil)
}

// ---- Mixer daemon API ----

// Streaming capability versions advertised in MixerInfo.StreamVersion.
// Each version includes everything below it.
const (
	// StreamVersionNone: pre-streaming daemon; full-batch mix.mix only.
	StreamVersionNone = 0
	// StreamVersionRelay: mix.preparenoise + mix.stream.* with the
	// coordinator relaying each server's output downstream (PR 1).
	StreamVersionRelay = 1
	// StreamVersionForward: mix.round.route/wait/abort — the daemon
	// pushes its post-shuffle output to its successor itself and the
	// last server publishes mailboxes straight to the CDN.
	StreamVersionForward = 2
	// StreamVersionShard: shard-group routes — one chain position served
	// by several daemons (mix.round.shard, mix.round.exportkey/importkey,
	// the mix.merge.* deposit surface, and fan-out/fan-in routing).
	StreamVersionShard = 3
	// StreamVersionCDNShard: sharded mailbox building — after the merged
	// shuffle the last group's merge server deals request bodies by
	// mailbox ID across its shards (mix.deal.*), each shard builds its own
	// ID range and publishes it over its own shard-tagged cdn.publish
	// stream. The merge server never touches the other shards' final
	// mailbox bytes.
	StreamVersionCDNShard = 4
)

// MixerInfo advertises a mixer's pinned key and chain position.
// StreamVersion reports which generation of the streaming surface the
// daemon serves (see the StreamVersion constants); Streaming is the legacy
// capability bit that predates versioning and is kept so a newer
// coordinator still recognizes a StreamVersionRelay daemon that only sets
// the bool. Daemons built before streaming leave both zero and the
// coordinator falls back to full-batch mix.mix calls.
type MixerInfo struct {
	Name          string  `json:"name"`
	Position      int     `json:"position"`
	SigningKey    []byte  `json:"signing_key"`
	AddFriendMu   float64 `json:"add_friend_mu"`
	DialingMu     float64 `json:"dialing_mu"`
	Streaming     bool    `json:"streaming,omitempty"`
	StreamVersion int     `json:"stream_version,omitempty"`
	// ShardIndex/ShardCount advertise the daemon's pinned place in its
	// position's shard group (-shard i/N); ShardCount 0 means unpinned
	// (a whole position to itself unless the coordinator says otherwise).
	ShardIndex int `json:"shard_index,omitempty"`
	ShardCount int `json:"shard_count,omitempty"`
	// Spare marks a hot-spare daemon (-spare): unpinned, idle until the
	// coordinator drafts it into a benched shard's slot for a round.
	Spare bool `json:"spare,omitempty"`
}

type downstreamArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
	Keys    [][]byte     `json:"keys"`
}

type mixArgs struct {
	Service      wire.Service `json:"service"`
	Round        uint32       `json:"round"`
	NumMailboxes uint32       `json:"num_mailboxes"`
	Batch        [][]byte     `json:"batch"`
}

// streamPullMax bounds how many messages one mix.stream.pull reply
// carries, keeping every frame far below the transport's 64 MB cap even
// for large onions (8192 × ~600 B × base64 ≈ 7 MB).
const streamPullMax = 8192

type streamEndReply struct {
	Total int `json:"total"`
	// Forwarded reports that the daemon accepted the stream close and is
	// pushing its output to its successor (or the CDN) itself: there is
	// no output to pull, and completion is reported via mix.round.wait.
	Forwarded bool `json:"forwarded,omitempty"`
}

type streamPullArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
	Offset  int          `json:"offset"`
	Max     int          `json:"max"`
}

// RegisterMixer (in forward.go) exposes a mixnet.Server over RPC,
// including the chunked streaming surface and the chain-forward data
// plane.

// MixerClient talks to a remote mixer daemon; it satisfies the
// coordinator's Mixer interface and, for StreamVersionForward daemons, its
// ForwardMixer control surface.
type MixerClient struct {
	addr string
	c    *Client
	info *MixerInfo

	// WaitTimeout bounds WaitRound; zero means DefaultWaitTimeout.
	WaitTimeout time.Duration

	// waitc is a dedicated connection for the mix.round.wait long-poll,
	// so that an abort broadcast on the main connection is never queued
	// behind a blocked wait.
	waitMu sync.Mutex
	waitc  *Client
}

// DefaultWaitTimeout bounds how long WaitRound polls for a round's
// data-plane completion before giving up.
const DefaultWaitTimeout = 10 * time.Minute

// DialMixer connects to a mixer daemon and caches its info.
func DialMixer(addr string) (*MixerClient, error) {
	m := &MixerClient{addr: addr, c: Dial(addr)}
	var info MixerInfo
	if err := m.c.Call("mix.info", struct{}{}, &info); err != nil {
		return nil, err
	}
	m.info = &info
	return m, nil
}

// Info returns the mixer's advertised identity.
func (m *MixerClient) Info() *MixerInfo { return m.info }

// Addr returns the daemon's dial address. The coordinator hands it to the
// daemon's predecessor as the round's forwarding target.
func (m *MixerClient) Addr() string { return m.addr }

// TransportStats sums the transport accounting of every connection this
// client holds (the call connection and the wait long-poll connection).
func (m *MixerClient) TransportStats() ClientStats {
	st := m.c.Stats()
	m.waitMu.Lock()
	wc := m.waitc
	m.waitMu.Unlock()
	if wc != nil {
		ws := wc.Stats()
		st.BytesSent += ws.BytesSent
		st.BytesReceived += ws.BytesReceived
		st.Calls += ws.Calls
	}
	return st
}

// CallCount reports how many times the coordinator invoked a method on
// this daemon, across all of the client's connections.
func (m *MixerClient) CallCount(method string) uint64 {
	n := m.c.CallCount(method)
	m.waitMu.Lock()
	wc := m.waitc
	m.waitMu.Unlock()
	if wc != nil {
		n += wc.CallCount(method)
	}
	return n
}

// NewRound implements coordinator.Mixer.
func (m *MixerClient) NewRound(service wire.Service, round uint32) (wire.MixerRoundKey, error) {
	var rk wire.MixerRoundKey
	err := m.c.Call("mix.newround", roundArgs{Service: service, Round: round}, &rk)
	return rk, err
}

// SetDownstreamKeys implements coordinator.Mixer.
func (m *MixerClient) SetDownstreamKeys(service wire.Service, round uint32, keys [][]byte) error {
	return m.c.Call("mix.setdownstream", downstreamArgs{Service: service, Round: round, Keys: keys}, nil)
}

// Mix implements coordinator.Mixer.
func (m *MixerClient) Mix(service wire.Service, round uint32, numMailboxes uint32, batch [][]byte) ([][]byte, error) {
	var out [][]byte
	err := m.c.Call("mix.mix", mixArgs{Service: service, Round: round, NumMailboxes: numMailboxes, Batch: batch}, &out)
	return out, err
}

// SupportsStreaming reports whether the daemon advertises the
// mix.preparenoise / mix.stream.* surface (coordinator.streamCapable);
// daemons built before it existed report false and the coordinator drives
// them through full-batch Mix.
func (m *MixerClient) SupportsStreaming() bool {
	return m.info.Streaming || m.info.StreamVersion >= StreamVersionRelay
}

// SupportsForwarding reports whether the daemon serves the chain-forward
// surface (mix.round.route/wait/abort); the coordinator only switches the
// data plane to server-to-server forwarding when every mixer does.
func (m *MixerClient) SupportsForwarding() bool {
	return m.info.StreamVersion >= StreamVersionForward
}

// SupportsSharding reports whether the daemon serves the shard-group
// surface (per-round shard layouts, group key exchange, merge deposits).
// The coordinator refuses to open a sharded round unless every daemon in
// the fleet does — a partial shard rollout cannot silently degrade the
// noise division.
func (m *MixerClient) SupportsSharding() bool {
	return m.info.StreamVersion >= StreamVersionShard
}

// SupportsShardedBuild reports whether the daemon serves the sharded
// mailbox-building surface (mix.deal.*, shard-tagged cdn.publish). The
// coordinator only splits the last position's build across its shard
// group when every daemon in that group does; otherwise the merge server
// builds all mailboxes itself, exactly as StreamVersionShard rounds did.
func (m *MixerClient) SupportsShardedBuild() bool {
	return m.info.StreamVersion >= StreamVersionCDNShard
}

// SetRoundShard implements coordinator.ShardMixer: the daemon is shard
// `index` of `count` jointly serving its chain position this round. Must
// precede PrepareNoise — the group divides the position's noise.
func (m *MixerClient) SetRoundShard(service wire.Service, round uint32, index, count int) error {
	return m.c.Call("mix.round.shard", shardArgs{
		Service: service, Round: round, ShardIndex: index, ShardCount: count,
	}, nil)
}

// SetRoundShardPeers implements coordinator.ShardPeerMixer: SetRoundShard
// plus the round's shard network — the dial addresses of every member the
// coordinator placed in the group (spares included). The daemon refuses
// mix.round.exportkey calls from any other host for the round, so a
// drafted spare or rotated lead can pull the round key but a stray caller
// cannot. An empty peer list preserves the ungated legacy behavior.
func (m *MixerClient) SetRoundShardPeers(service wire.Service, round uint32, index, count int, peers []string) error {
	return m.c.Call("mix.round.shard", shardArgs{
		Service: service, Round: round, ShardIndex: index, ShardCount: count,
		Peers: peers,
	}, nil)
}

// ProbeTimeout bounds Probe's health check against an unresponsive daemon.
const ProbeTimeout = time.Second

// Probe implements coordinator.Prober: a cheap liveness check (mix.info on
// the main connection, bounded by ProbeTimeout) used by the scheduler to
// decide whether a benched daemon has recovered and whether a candidate is
// reachable before planning it into a round. A dead TCP connection is
// redialed by the transport, so a probe succeeding after a daemon restart
// is the recovery signal itself.
func (m *MixerClient) Probe() error {
	ctx, cancel := context.WithTimeout(context.Background(), ProbeTimeout)
	defer cancel()
	var info MixerInfo
	return m.c.CallContext(ctx, "mix.info", struct{}{}, &info)
}

// ImportRoundKeyFrom implements coordinator.ShardMixer: the daemon dials
// the shard group's lead directly and installs the position's round onion
// key. The private key moves server-to-server inside the group's trust
// domain; the coordinator only names the source.
func (m *MixerClient) ImportRoundKeyFrom(service wire.Service, round uint32, leadAddr string) error {
	return m.c.Call("mix.round.importkey", importKeyArgs{
		Service: service, Round: round, LeadAddr: leadAddr,
	}, nil)
}

// OpenRoute implements coordinator.ForwardMixer: it tells the daemon
// where this round's post-shuffle output goes — the successor position's
// shard set (or the CDN's publish address for the last position) — and
// its own shard-group placement. A single unsharded successor rides the
// legacy Successor field so a StreamVersionForward daemon in an unsharded
// chain keeps working during a rolling upgrade.
func (m *MixerClient) OpenRoute(service wire.Service, round uint32, spec wire.RouteSpec) error {
	a := routeArgs{
		Service: service, Round: round,
		NumMailboxes: spec.NumMailboxes, ChunkSize: spec.ChunkSize,
		CDNAddr:    spec.CDNAddr,
		ShardIndex: spec.ShardIndex, ShardCount: spec.ShardCount,
		MergeAddr: spec.MergeAddr, NumUpstream: spec.NumUpstream,
		BuildShards: spec.BuildShards,
	}
	if len(spec.Successors) == 1 && spec.ShardCount <= 1 {
		a.Successor = spec.Successors[0]
	} else {
		a.Successors = spec.Successors
	}
	return m.c.Call("mix.round.route", a, nil)
}

// WaitRound implements coordinator.ForwardMixer: it blocks until the
// daemon's data-plane role in the round completes (forwarded downstream,
// or published to the CDN) and returns the daemon's error if it failed or
// was aborted, along with the daemon's self-reported duration and batch
// byte counts for the coordinator's round-health tracking. The wait is a
// bounded long-poll on a dedicated connection so the daemon never parks a
// handler forever and the coordinator can still send control calls (e.g.
// an abort) on the main connection.
func (m *MixerClient) WaitRound(service wire.Service, round uint32) (wire.MixerRoundStats, error) {
	m.waitMu.Lock()
	if m.waitc == nil {
		m.waitc = Dial(m.addr)
	}
	wc := m.waitc
	m.waitMu.Unlock()

	timeout := m.WaitTimeout
	if timeout <= 0 {
		timeout = DefaultWaitTimeout
	}
	deadline := time.Now().Add(timeout)
	for {
		var reply waitReply
		if err := wc.Call("mix.round.wait", roundArgs{Service: service, Round: round}, &reply); err != nil {
			return wire.MixerRoundStats{}, err
		}
		if reply.Done {
			stats := wire.MixerRoundStats{
				Duration:    time.Duration(reply.DurationMs) * time.Millisecond,
				BytesIn:     reply.BytesIn,
				BytesOut:    reply.BytesOut,
				AbortReason: reply.Reason,
			}
			if reply.Error != "" {
				return stats, errors.New(reply.Error)
			}
			return stats, nil
		}
		if time.Now().After(deadline) {
			return wire.MixerRoundStats{}, fmt.Errorf("rpc: round %d (%s) did not complete within %v", round, service, timeout)
		}
	}
}

// AbortRound implements coordinator.ForwardMixer: it discards the
// daemon's in-flight stream and route for the round, unblocking any
// waiter. The daemon propagates the abort to its successor.
func (m *MixerClient) AbortRound(service wire.Service, round uint32, reason string) error {
	return m.c.Call("mix.round.abort", abortArgs{Service: service, Round: round, Reason: reason}, nil)
}

// PrepareNoise implements coordinator.NoisePreparer: the daemon starts
// generating round noise in the background as soon as settings are fixed.
func (m *MixerClient) PrepareNoise(service wire.Service, round uint32, numMailboxes uint32) error {
	return m.c.Call("mix.preparenoise", mixArgs{Service: service, Round: round, NumMailboxes: numMailboxes}, nil)
}

// StreamBegin implements coordinator.StreamMixer. Sent at most once: a
// duplicate begin (request executed, reply lost) would error "stream
// already in progress" and fail the round for no reason.
func (m *MixerClient) StreamBegin(service wire.Service, round uint32, numMailboxes uint32) error {
	return m.c.CallOnce("mix.stream.begin", mixArgs{Service: service, Round: round, NumMailboxes: numMailboxes}, nil)
}

// StreamChunk implements coordinator.StreamMixer. Chunks are framed as
// ordinary calls: the daemon acknowledges intake immediately and decrypts
// on its worker pool, so consecutive chunks overlap with decryption.
// Sent at most once — a transparent retry after a lost reply would
// append the chunk to the round twice and corrupt the batch; a transport
// failure aborts the round instead.
func (m *MixerClient) StreamChunk(service wire.Service, round uint32, chunk [][]byte) error {
	return m.c.CallOnce("mix.stream.chunk", mixArgs{Service: service, Round: round, Batch: chunk}, nil)
}

// StreamEnd implements coordinator.StreamMixer: it blocks until the daemon
// has decrypted every chunk, added noise, and shuffled, then pulls the
// output batch in frame-sized chunks. When the round has a forwarding
// route open, the daemon instead pushes the output to its successor
// itself; StreamEnd then returns no batch and the caller learns the
// outcome from WaitRound.
func (m *MixerClient) StreamEnd(service wire.Service, round uint32) ([][]byte, error) {
	return m.StreamEndAs(service, round, 0)
}

// StreamEndAs is StreamEnd for a daemon routed with NumUpstream > 1
// (fan-in): upstream says WHICH of the route's writers is finished, so
// the daemon closes its intake exactly once per upstream no matter how
// ends are duplicated or interleaved.
func (m *MixerClient) StreamEndAs(service wire.Service, round uint32, upstream int) ([][]byte, error) {
	// At most once: StreamEnd consumes the stream, so a duplicate after a
	// lost reply would fail "no stream in progress" (relay) or spawn a
	// second forwarding attempt against consumed state (chain-forward).
	var reply streamEndReply
	if err := m.c.CallOnce("mix.stream.end", roundArgs{Service: service, Round: round, Upstream: upstream}, &reply); err != nil {
		return nil, err
	}
	if reply.Forwarded {
		return nil, nil
	}
	out := make([][]byte, 0, reply.Total)
	for len(out) < reply.Total {
		var chunk [][]byte
		err := m.c.Call("mix.stream.pull", streamPullArgs{
			Service: service, Round: round, Offset: len(out), Max: streamPullMax,
		}, &chunk)
		if err != nil {
			return nil, err
		}
		if len(chunk) == 0 {
			return nil, errors.New("rpc: stream output truncated")
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// StreamAbort implements coordinator.StreamMixer's cheap failure path.
func (m *MixerClient) StreamAbort(service wire.Service, round uint32) error {
	return m.c.Call("mix.stream.abort", roundArgs{Service: service, Round: round}, nil)
}

// CloseRound implements coordinator.Mixer.
func (m *MixerClient) CloseRound(service wire.Service, round uint32) {
	_ = m.c.Call("mix.closeround", roundArgs{Service: service, Round: round}, nil)
}

// NoiseMu implements coordinator.Mixer.
func (m *MixerClient) NoiseMu(service wire.Service) float64 {
	if service == wire.Dialing {
		return m.info.DialingMu
	}
	return m.info.AddFriendMu
}

// ---- Entry/CDN daemon API (the client-facing frontend) ----

// Frontend event-stream capability versions, advertised in
// Directory.EventStreamVersion. Like the mixer fleet's stream_version,
// this is how the poll→push migration stays a rolling upgrade: a client
// that sees version 0 (or a directory predating the field) never calls
// entry.events and polls frontend.status exactly as before; a frontend
// that serves EventStreamV1 still serves the poll surface for old
// clients. Clients also degrade TRANSPARENTLY on an "unknown method"
// reply, so even a stale cached directory cannot wedge them.
const (
	// EventStreamNone: poll-only frontend (frontend.status).
	EventStreamNone = 0
	// EventStreamV1: entry.events long-poll with resumable cursors and
	// coalescing for slow clients, plus ranged mailbox fetches
	// (cdn.fetchrange).
	EventStreamV1 = 1
	// EventStreamV2: round-open events CARRY the round's settings
	// (wireEvent.Settings, the canonical wire.RoundSettings encoding), so
	// a streaming client never issues a per-round entry.settings fetch.
	// Settings are self-authenticating — every mixer and PKG contribution
	// is signed under keys the client pins — so riding them over the
	// untrusted push channel changes nothing about their trust story; the
	// client verifies them exactly as it would a fetched copy. Degradation
	// is transparent in both directions: a V1 frontend's events simply
	// lack the field and the client falls back to fetching, while a V1
	// client ignores the extra field. V2 frontends still serve
	// entry.settings for old clients and for consumers (scans after a
	// restart) whose open event has left the retained window.
	EventStreamV2 = 2
)

// Directory describes a full deployment to connecting clients: addresses
// and pinned keys for every server. Served by the entry daemon.
type Directory struct {
	PKGAddrs   []string `json:"pkg_addrs"`
	PKGKeys    [][]byte `json:"pkg_keys"`
	PKGBLSKeys [][]byte `json:"pkg_bls_keys"`
	MixerKeys  [][]byte `json:"mixer_keys"`
	NumMixers  int      `json:"num_mixers"`
	// EventStreamVersion advertises the frontend's round-event surface
	// (see the EventStream constants). Omitted by older frontends, which
	// JSON-decodes to 0 = poll only.
	EventStreamVersion int `json:"event_stream_version,omitempty"`
	// PairingVersion advertises the deployment's sealed-ciphertext tier
	// (≥2 = the optimal-ate v2 pairing; 0/absent = v1 Tate). Advisory:
	// the authoritative per-round version is the capability byte in the
	// SIGNED RoundSettings — clients key each round off the settings, so
	// a frontend cannot re-tier a round by lying here.
	PairingVersion int `json:"pairing_version,omitempty"`
	// FrontendAddrs lists every entry frontend in the deployment
	// (client-facing addresses, coordinator's own frontend first). All
	// frontends replay the coordinator's announcement log in the same
	// order — one shared cursor namespace — so a client may pool them
	// (DialFrontendPool) and fail over mid-round without a snapshot
	// reset. Empty on single-frontend deployments.
	FrontendAddrs []string `json:"frontend_addrs,omitempty"`
	// CDNAddrs lists the deployment's CDN nodes (client-facing read
	// addresses). Every node holds every sealed round — the ingest node
	// fans rounds out over cdn.replicate — so a client may pool them
	// (DialCDNPool) and fail mailbox fetches over to a replica mid-round.
	// Empty when mailboxes are served through the frontends themselves.
	CDNAddrs []string `json:"cdn_addrs,omitempty"`
}

type settingsArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
}

type submitArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
	Onion   []byte       `json:"onion"`
}

type fetchArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
	Mailbox uint32       `json:"mailbox"`
}

// RoundStatus is the poll-based round-progress snapshot, now defined by
// the entry server's event log.
type RoundStatus = entry.RoundStatus

// eventsArgs is the entry.events long-poll request: announcements after
// Cursor, waiting up to WaitMs for news (bounded by maxEventsWait), at
// most Max events per reply.
type eventsArgs struct {
	Cursor uint64 `json:"cursor"`
	WaitMs int    `json:"wait_ms,omitempty"`
	Max    int    `json:"max,omitempty"`
}

// wireEvent is one round announcement on the wire. On an EventStreamV2
// frontend a round-open event carries the round's canonical settings
// encoding so the client never fetches them separately; V1 frontends omit
// the field and the stream stays a few bytes per round. Either way the
// client signature-checks settings against its pinned keys before use.
type wireEvent struct {
	Cursor   uint64       `json:"cursor"`
	Service  wire.Service `json:"service"`
	Round    uint32       `json:"round"`
	Kind     int          `json:"kind"`
	Settings []byte       `json:"settings,omitempty"`
}

type eventsReply struct {
	Events []wireEvent `json:"events,omitempty"`
	Next   uint64      `json:"next"`
	// Gap reports that announcements between the caller's cursor and this
	// reply were evicted; the reply is then coalesced to the newest event
	// per (service, kind), which — round progress being monotonic — is
	// everything still actionable.
	Gap bool `json:"gap,omitempty"`
}

type fetchRangeArgs struct {
	Service   wire.Service `json:"service"`
	FromRound uint32       `json:"from_round"`
	ToRound   uint32       `json:"to_round"`
	Mailbox   uint32       `json:"mailbox"`
}

type rangedBox struct {
	Round uint32 `json:"round"`
	Data  []byte `json:"data"`
}

const (
	// maxEventsWait bounds how long one entry.events call may park
	// server-side. Long parks are the point of the long-poll — an idle
	// streaming client costs the frontend one request per maxEventsWait
	// instead of 2 Hz×2 services of status polls — and Server.Closing
	// unparks them all at shutdown.
	maxEventsWait = 30 * time.Second
	// eventsClientWait is the park clients request per entry.events call.
	eventsClientWait = 25 * time.Second
	// eventsBatchMax caps events per reply.
	eventsBatchMax = 512
)

// MailboxSource is the read side of the mailbox store a frontend serves
// to clients. A coordinator-colocated frontend hands its local *cdn.Store
// straight in; a pure frontend (-frontend-only) hands in a client that
// proxies fetches to the deployment's real CDN, so every frontend answers
// cdn.fetch/fetchrange identically and a failed-over client never changes
// its fetch path.
type MailboxSource interface {
	Fetch(service wire.Service, round uint32, mailbox uint32) ([]byte, error)
	FetchRange(service wire.Service, fromRound, toRound uint32, mailbox uint32) (map[uint32][]byte, error)
}

// registerFrontendCommon installs the surface served by every frontend
// generation: directory, status polling, settings, submission, and
// per-round mailbox fetch.
func registerFrontendCommon(s *Server, e *entry.Server, store MailboxSource, dir Directory) {
	HandleFunc(s, "frontend.directory", func(struct{}) (any, error) {
		return dir, nil
	})
	HandleFunc(s, "frontend.status", func(a settingsArgs) (any, error) {
		return e.Status(a.Service), nil
	})
	HandleFunc(s, "entry.settings", func(a settingsArgs) (any, error) {
		settings, err := e.Settings(a.Service, a.Round)
		if err != nil {
			return nil, err
		}
		return settings.Marshal(), nil
	})
	HandleFunc(s, "entry.submit", func(a submitArgs) (any, error) {
		return nil, e.Submit(a.Service, a.Round, a.Onion)
	})
	HandleFunc(s, "cdn.fetch", func(a fetchArgs) (any, error) {
		return store.Fetch(a.Service, a.Round, a.Mailbox)
	})
}

// RegisterFrontend exposes the entry server, CDN fetch surface, and
// deployment directory over RPC, including the EventStreamV2 push
// surface: entry.events (a resumable long-poll over the entry server's
// cursor-stamped announcement log, the same framing family as
// mix.round.wait, with round settings riding inside open events) and
// cdn.fetchrange (one request for a span of rounds).
//
// This is the CLIENT-facing surface: cdn.publish is deliberately NOT
// served here — the transport carries no authentication, so the write
// surface must live on a separate server-plane listener (RegisterCDN)
// that deployments keep away from clients; otherwise any client could
// publish a round's mailboxes first and censor the real ones.
func RegisterFrontend(s *Server, e *entry.Server, store MailboxSource, dir Directory) {
	registerStreamFrontend(s, e, store, dir, EventStreamV2)
}

// RegisterFrontendV1 exposes the EventStreamV1 surface exactly as PR 4
// shipped it: entry.events without settings in open events. It exists so
// tests and the bench harness can stand in for a last-generation frontend
// and prove that a V2 client degrades transparently to fetching settings.
func RegisterFrontendV1(s *Server, e *entry.Server, store MailboxSource, dir Directory) {
	registerStreamFrontend(s, e, store, dir, EventStreamV1)
}

func registerStreamFrontend(s *Server, e *entry.Server, store MailboxSource, dir Directory, version int) {
	dir.EventStreamVersion = version
	registerFrontendCommon(s, e, store, dir)
	HandleFunc(s, "entry.events", func(a eventsArgs) (any, error) {
		wait := time.Duration(a.WaitMs) * time.Millisecond
		if wait <= 0 || wait > maxEventsWait {
			wait = maxEventsWait
		}
		max := a.Max
		if max <= 0 || max > eventsBatchMax {
			max = eventsBatchMax
		}
		ctx, cancel := context.WithTimeout(context.Background(), wait)
		defer cancel()
		// A shutting-down server unparks every waiter immediately.
		go func() {
			select {
			case <-s.Closing():
				cancel()
			case <-ctx.Done():
			}
		}()
		anns, next, gap := e.WaitEvents(ctx, a.Cursor, max)
		reply := eventsReply{Next: next, Gap: gap}
		for _, ann := range anns {
			ev := wireEvent{
				Cursor:  ann.Cursor,
				Service: ann.Service,
				Round:   ann.Round,
				Kind:    int(ann.Kind),
			}
			if version >= EventStreamV2 && ann.Kind == entry.RoundOpen && ann.Settings != nil {
				ev.Settings = ann.Settings.Marshal()
			}
			reply.Events = append(reply.Events, ev)
		}
		return reply, nil
	})
	HandleFunc(s, "cdn.fetchrange", func(a fetchRangeArgs) (any, error) {
		boxes, err := store.FetchRange(a.Service, a.FromRound, a.ToRound, a.Mailbox)
		if err != nil {
			return nil, err
		}
		out := make([]rangedBox, 0, len(boxes))
		for r, data := range boxes {
			out = append(out, rangedBox{Round: r, Data: data})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Round < out[j].Round })
		return out, nil
	})
}

// RegisterCoordinatorStatus exposes a read-only coordinator scheduling
// snapshot as coordinator.status: the per-daemon scoreboard (EWMA
// duration and throughput, failure counts by abort reason, bench/spare
// state) plus recent round health. The source callback is invoked per
// request so the reply is always current; it typically returns a struct
// built from coordinator.Scoreboard() and coordinator.Status(). The
// surface is strictly observational — there is no mutating counterpart —
// so serving it on the client-facing frontend listener is safe.
func RegisterCoordinatorStatus(s *Server, source func() any) {
	HandleFunc(s, "coordinator.status", func(struct{}) (any, error) {
		return source(), nil
	})
}

// CoordinatorStatus fetches the frontend's coordinator.status snapshot
// as raw JSON (the payload shape belongs to the coordinator, not the
// transport). Frontends that predate the surface return an
// unknown-method error.
func (f *FrontendClient) CoordinatorStatus(ctx context.Context) (json.RawMessage, error) {
	var raw json.RawMessage
	if err := f.c.CallContext(ctx, "coordinator.status", struct{}{}, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// RegisterPollFrontend exposes only the pre-event-stream frontend surface
// (frontend.status polling, per-round cdn.fetch, EventStreamNone). It
// exists so tests and the bench harness can stand in for a frontend built
// before entry.events and prove the transparent poll fallback.
func RegisterPollFrontend(s *Server, e *entry.Server, store MailboxSource, dir Directory) {
	dir.EventStreamVersion = EventStreamNone
	registerFrontendCommon(s, e, store, dir)
}

// UnmarshalBLSKey decodes a BLS public key from a directory entry; it
// exists so daemon binaries need not import internal/bls directly.
func UnmarshalBLSKey(data []byte) (*bls.PublicKey, error) {
	return bls.UnmarshalPublicKey(data)
}

// FrontendClient talks to the entry daemon; it satisfies core.EntryServer,
// core.MailboxStore, core.StatusProvider, and core.RoundWatcher, so a
// client built over it gets the push-based round loop when the frontend
// serves EventStreamV1 and degrades transparently to status polling when
// it does not (stale directory included: an "unknown method" reply is
// treated the same as an advertised version 0).
type FrontendClient struct {
	addr string
	c    *Client

	// eventsc is a dedicated connection for the entry.events long-poll —
	// a parked poll must never queue a submit or fetch behind it (same
	// split as MixerClient's mix.round.wait connection).
	mu                sync.Mutex
	eventsc           *Client
	dir               *Directory
	eventsUnsupported bool
	rangeUnsupported  bool
}

// DialFrontend connects to the entry daemon.
func DialFrontend(addr string) *FrontendClient {
	return &FrontendClient{addr: addr, c: Dial(addr)}
}

// TransportStats sums the transport accounting of every connection this
// client holds (the call connection and the events long-poll connection).
func (f *FrontendClient) TransportStats() ClientStats {
	st := f.c.Stats()
	f.mu.Lock()
	ec := f.eventsc
	f.mu.Unlock()
	if ec != nil {
		es := ec.Stats()
		st.BytesSent += es.BytesSent
		st.BytesReceived += es.BytesReceived
		st.Calls += es.Calls
	}
	return st
}

// CallCount reports how many times this client invoked a method, across
// all of its connections.
func (f *FrontendClient) CallCount(method string) uint64 {
	n := f.c.CallCount(method)
	f.mu.Lock()
	ec := f.eventsc
	f.mu.Unlock()
	if ec != nil {
		n += ec.CallCount(method)
	}
	return n
}

// Directory fetches (and caches) the deployment directory; the cached
// copy also fixes the frontend's advertised event-stream capability.
func (f *FrontendClient) Directory(ctx context.Context) (*Directory, error) {
	f.mu.Lock()
	if f.dir != nil {
		dir := *f.dir
		f.mu.Unlock()
		return &dir, nil
	}
	f.mu.Unlock()
	var dir Directory
	if err := f.c.CallContext(ctx, "frontend.directory", struct{}{}, &dir); err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.dir = &dir
	if dir.EventStreamVersion < EventStreamV1 {
		f.eventsUnsupported = true
		f.rangeUnsupported = true
	}
	f.mu.Unlock()
	return &dir, nil
}

// Status implements core.StatusProvider: round progress for a service.
func (f *FrontendClient) Status(ctx context.Context, service wire.Service) (entry.RoundStatus, error) {
	var st entry.RoundStatus
	err := f.c.CallContext(ctx, "frontend.status", settingsArgs{Service: service}, &st)
	return st, err
}

// isUnknownMethod reports a handler-missing reply — the capability probe
// for frontends predating a method.
func isUnknownMethod(err error) bool {
	return err != nil && strings.Contains(err.Error(), "rpc: unknown method")
}

// WatchRounds implements core.RoundWatcher over the entry.events
// long-poll: it parks on the frontend (on a dedicated connection) until
// announcements after cursor exist, and returns core.ErrEventsUnsupported
// against a poll-only frontend so the client's round loop falls back to
// Status polling.
func (f *FrontendClient) WatchRounds(ctx context.Context, cursor uint64) ([]entry.Announcement, uint64, error) {
	f.mu.Lock()
	if f.eventsUnsupported {
		f.mu.Unlock()
		return nil, cursor, core.ErrEventsUnsupported
	}
	if f.eventsc == nil {
		f.eventsc = Dial(f.addr)
	}
	ec := f.eventsc
	f.mu.Unlock()

	for {
		var reply eventsReply
		err := ec.CallContext(ctx, "entry.events", eventsArgs{
			Cursor: cursor, WaitMs: int(eventsClientWait / time.Millisecond),
		}, &reply)
		if err != nil {
			if isUnknownMethod(err) {
				f.mu.Lock()
				f.eventsUnsupported = true
				f.mu.Unlock()
				return nil, cursor, core.ErrEventsUnsupported
			}
			return nil, cursor, err
		}
		if len(reply.Events) == 0 {
			// The server's park expired with no news; park again.
			if err := ctx.Err(); err != nil {
				return nil, cursor, err
			}
			continue
		}
		anns := make([]entry.Announcement, len(reply.Events))
		for i, ev := range reply.Events {
			anns[i] = entry.Announcement{
				Cursor:  ev.Cursor,
				Service: ev.Service,
				Round:   ev.Round,
				Kind:    entry.EventKind(ev.Kind),
			}
			if len(ev.Settings) > 0 {
				// V2 open events carry settings; a copy that fails to
				// decode is dropped and the client falls back to fetching
				// (the settings are verified either way, so a bad copy
				// costs one RPC, never correctness).
				if rs, err := wire.UnmarshalRoundSettings(ev.Settings); err == nil {
					anns[i].Settings = rs
				}
			}
		}
		return anns, reply.Next, nil
	}
}

// Settings implements core.EntryServer.
func (f *FrontendClient) Settings(ctx context.Context, service wire.Service, round uint32) (*wire.RoundSettings, error) {
	var raw []byte
	if err := f.c.CallContext(ctx, "entry.settings", settingsArgs{Service: service, Round: round}, &raw); err != nil {
		return nil, err
	}
	return wire.UnmarshalRoundSettings(raw)
}

// Submit implements core.EntryServer. The entry server's admission
// signals cross the wire as strings, so the typed sentinels are mapped
// back here for the client's errors.Is checks.
func (f *FrontendClient) Submit(ctx context.Context, service wire.Service, round uint32, onion []byte) error {
	err := f.c.CallContext(ctx, "entry.submit", submitArgs{Service: service, Round: round, Onion: onion}, nil)
	if err != nil && strings.Contains(err.Error(), entry.ErrRoundFull.Error()) {
		return fmt.Errorf("rpc: %w", entry.ErrRoundFull)
	}
	return err
}

// Fetch implements core.MailboxStore.
func (f *FrontendClient) Fetch(ctx context.Context, service wire.Service, round uint32, mailbox uint32) ([]byte, error) {
	var out []byte
	if err := f.c.CallContext(ctx, "cdn.fetch", fetchArgs{Service: service, Round: round, Mailbox: mailbox}, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// FetchRange implements core.MailboxStore: one request for a span of
// rounds via cdn.fetchrange, with a transparent per-round fallback
// against frontends that predate it (rounds the store no longer holds are
// simply absent, matching the ranged semantics).
func (f *FrontendClient) FetchRange(ctx context.Context, service wire.Service, fromRound, toRound uint32, mailbox uint32) (map[uint32][]byte, error) {
	f.mu.Lock()
	supported := !f.rangeUnsupported
	f.mu.Unlock()
	if supported {
		var reply []rangedBox
		err := f.c.CallContext(ctx, "cdn.fetchrange", fetchRangeArgs{
			Service: service, FromRound: fromRound, ToRound: toRound, Mailbox: mailbox,
		}, &reply)
		if err == nil {
			out := make(map[uint32][]byte, len(reply))
			for _, box := range reply {
				out[box.Round] = box.Data
			}
			return out, nil
		}
		if !isUnknownMethod(err) {
			return nil, err
		}
		f.mu.Lock()
		f.rangeUnsupported = true
		f.mu.Unlock()
	}
	out := make(map[uint32][]byte)
	for r := fromRound; r <= toRound; r++ {
		box, err := f.Fetch(ctx, service, r, mailbox)
		if err != nil {
			if strings.Contains(err.Error(), "not published") {
				continue // unavailable round: absent, like the ranged reply
			}
			return nil, err
		}
		out[r] = box
	}
	return out, nil
}

// Close closes the client's connections.
func (f *FrontendClient) Close() {
	f.c.Close()
	f.mu.Lock()
	ec := f.eventsc
	f.mu.Unlock()
	if ec != nil {
		ec.Close()
	}
}
