package rpc_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"alpenhorn/internal/cdn"
	"alpenhorn/internal/rpc"
	"alpenhorn/internal/wire"
)

// cdnNode is one CDN node under test: store, read/ingest listeners, and
// the daemon handle.
type cdnNode struct {
	store      *cdn.Store
	daemon     *rpc.CDNDaemon
	readSrv    *rpc.Server
	ingestSrv  *rpc.Server
	readAddr   string
	ingestAddr string
}

// startCDNNode brings up a CDN node. dir == "" uses the memory backend.
func startCDNNode(t *testing.T, dir string) *cdnNode {
	t.Helper()
	var store *cdn.Store
	var err error
	if dir != "" {
		store, err = cdn.OpenDiskStore(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		store = cdn.NewStore(0)
	}
	n := &cdnNode{store: store}
	n.ingestSrv = rpc.NewServer()
	n.daemon = rpc.RegisterCDN(n.ingestSrv, store)
	if n.ingestAddr, err = n.ingestSrv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.ingestSrv.Close)
	n.readSrv = rpc.NewServer()
	rpc.RegisterCDNFrontend(n.readSrv, store)
	if n.readAddr, err = n.readSrv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.readSrv.Close)
	t.Cleanup(n.daemon.Close)
	return n
}

func cdnTestRound(seed byte, boxes int) map[uint32][]byte {
	out := make(map[uint32][]byte, boxes)
	for i := 0; i < boxes; i++ {
		data := make([]byte, 32+i*11)
		for j := range data {
			data[j] = seed + byte(i*3) ^ byte(j)
		}
		out[uint32(i)] = data
	}
	return out
}

func waitPublished(t *testing.T, s *cdn.Store, service wire.Service, round uint32) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Published(service, round) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("round %d (%s) never replicated", round, service)
}

// TestCDNReplicationTwoNodes publishes a round to one of two mutually
// peered disk-backed nodes: the sealed round must appear on the peer with
// an identical content checksum, and replication must be idempotent when
// both directions race.
func TestCDNReplicationTwoNodes(t *testing.T) {
	a := startCDNNode(t, t.TempDir())
	b := startCDNNode(t, t.TempDir())
	a.daemon.SetPeers(b.ingestAddr)
	b.daemon.SetPeers(a.ingestAddr)

	boxes := cdnTestRound(1, 6)
	pub := rpc.Dial(a.ingestAddr)
	defer pub.Close()
	if err := rpc.PublishMailboxes(pub, wire.Dialing, 1, boxes); err != nil {
		t.Fatal(err)
	}
	waitPublished(t, b.store, wire.Dialing, 1)

	sa, _ := a.store.Checksum(wire.Dialing, 1)
	sb, ok := b.store.Checksum(wire.Dialing, 1)
	if !ok || sa != sb {
		t.Fatalf("replica checksum mismatch: %x vs %x", sa, sb)
	}
	for id, want := range boxes {
		got, err := b.store.Fetch(wire.Dialing, 1, id)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("replica mailbox %d: %v", id, err)
		}
	}
	// Re-replicating an already-held round must be a no-op success.
	if err := a.daemon.ReplicateRound(rpc.Dial(b.ingestAddr), wire.Dialing, 1); err != nil {
		t.Fatalf("idempotent replication: %v", err)
	}
}

// TestCDNPoolFailover drains a client backlog through a 2-node pool,
// kills the pool's current node mid-backlog, and drains again: the
// surviving replica must serve the same bytes with no client-visible
// error (reads rotate and retry once).
func TestCDNPoolFailover(t *testing.T) {
	a := startCDNNode(t, "")
	b := startCDNNode(t, "")
	a.daemon.SetPeers(b.ingestAddr)

	pub := rpc.Dial(a.ingestAddr)
	defer pub.Close()
	rounds := map[uint32]map[uint32][]byte{}
	for r := uint32(1); r <= 4; r++ {
		rounds[r] = cdnTestRound(byte(r), 4)
		if err := rpc.PublishMailboxes(pub, wire.Dialing, r, rounds[r]); err != nil {
			t.Fatal(err)
		}
		waitPublished(t, b.store, wire.Dialing, r)
	}

	pool := rpc.DialCDNPool(a.readAddr, b.readAddr)
	defer pool.Close()
	ctx := context.Background()
	drain := func() map[uint32][]byte {
		t.Helper()
		got, err := pool.FetchRange(ctx, wire.Dialing, 1, 4, 2)
		if err != nil {
			t.Fatalf("backlog drain failed: %v", err)
		}
		if len(got) != 4 {
			t.Fatalf("drained %d rounds, want 4", len(got))
		}
		return got
	}
	before := drain()

	// Kill the node the pool is currently reading from.
	a.readSrv.Close()
	after := drain()
	for r := uint32(1); r <= 4; r++ {
		if !bytes.Equal(before[r], after[r]) {
			t.Fatalf("round %d differs across failover", r)
		}
		if !bytes.Equal(after[r], rounds[r][2]) {
			t.Fatalf("round %d differs from published bytes", r)
		}
	}
	if pool.Addr() != b.readAddr {
		t.Fatalf("pool still points at the dead node")
	}
	// Single fetches keep working on the survivor too.
	box, err := pool.Fetch(ctx, wire.Dialing, 3, 1)
	if err != nil || !bytes.Equal(box, rounds[3][1]) {
		t.Fatalf("post-failover fetch: %v", err)
	}
}

// TestCDNRestartBackfill kills a disk node after rounds sealed elsewhere,
// restarts it from its data directory, and backfills: rounds it held
// reload byte-identically from disk, rounds it missed arrive from the
// peer checksum-verified.
func TestCDNRestartBackfill(t *testing.T) {
	dirA := t.TempDir()
	a := startCDNNode(t, dirA)
	b := startCDNNode(t, "")
	a.daemon.SetPeers(b.ingestAddr)
	b.daemon.SetPeers(a.ingestAddr)

	pub := rpc.Dial(a.ingestAddr)
	r1 := cdnTestRound(1, 5)
	if err := rpc.PublishMailboxes(pub, wire.Dialing, 1, r1); err != nil {
		t.Fatal(err)
	}
	waitPublished(t, b.store, wire.Dialing, 1)
	pub.Close()

	// Node A dies (listeners down, store abandoned un-Closed — the disk
	// state is already fsync'd). Round 2 seals on B while A is gone.
	a.readSrv.Close()
	a.ingestSrv.Close()
	a.daemon.Close()
	pubB := rpc.Dial(b.ingestAddr)
	defer pubB.Close()
	r2 := cdnTestRound(2, 5)
	if err := rpc.PublishMailboxesShard(pubB, wire.Dialing, 2, r2, 0, 0); err != nil {
		t.Fatal(err)
	}

	// A restarts from the same directory and backfills from B.
	a2 := startCDNNode(t, dirA)
	a2.daemon.SetPeers(b.ingestAddr)
	if !a2.store.Published(wire.Dialing, 1) {
		t.Fatal("restarted node lost its own round")
	}
	recovered, err := a2.daemon.Backfill()
	if err != nil {
		t.Fatalf("backfill: %v", err)
	}
	if recovered != 1 {
		t.Fatalf("backfilled %d rounds, want 1", recovered)
	}
	for r, want := range map[uint32]map[uint32][]byte{1: r1, 2: r2} {
		for id, box := range want {
			got, err := a2.store.Fetch(wire.Dialing, r, id)
			if err != nil || !bytes.Equal(got, box) {
				t.Fatalf("restarted node round %d mailbox %d: %v", r, id, err)
			}
		}
		sa, _ := a2.store.Checksum(wire.Dialing, r)
		sb, _ := b.store.Checksum(wire.Dialing, r)
		if sa != sb {
			t.Fatalf("round %d checksum mismatch after restart", r)
		}
	}

	// The restarted node serves clients: a pool pointed at (dead A's old
	// read addr, restarted A) drains the full backlog with no error.
	pool := rpc.DialCDNPool(a.readAddr, a2.readAddr)
	defer pool.Close()
	got, err := pool.FetchRange(context.Background(), wire.Dialing, 1, 2, 3)
	if err != nil || len(got) != 2 {
		t.Fatalf("post-restart drain: %d rounds, %v", len(got), err)
	}
}

// TestCDNShardedSeal drives the shard-tagged publish surface directly:
// the round must stay unsealed until every shard's stream sends Done,
// must reassemble the full ID space, and must reject stream/staging
// shard-count mismatches. An abort from any shard discards everything.
func TestCDNShardedSeal(t *testing.T) {
	n := startCDNNode(t, "")
	c := rpc.Dial(n.ingestAddr)
	defer c.Close()

	full := cdnTestRound(7, 6)
	slice := func(lo, hi uint32) map[uint32][]byte {
		out := make(map[uint32][]byte)
		for id, b := range full {
			if id >= lo && id < hi {
				out[id] = b
			}
		}
		return out
	}

	if err := rpc.PublishMailboxesShard(c, wire.Dialing, 1, slice(0, 3), 0, 2); err != nil {
		t.Fatal(err)
	}
	if n.store.Published(wire.Dialing, 1) {
		t.Fatal("round sealed before all shards finished")
	}
	if err := rpc.PublishMailboxesShard(c, wire.Dialing, 1, slice(3, 6), 1, 2); err != nil {
		t.Fatal(err)
	}
	if !n.store.Published(wire.Dialing, 1) {
		t.Fatal("round not sealed after last shard")
	}
	if got := n.daemon.LastSealStreams(); got != 2 {
		t.Fatalf("sealed from %d streams, want 2", got)
	}
	want := cdn.RoundChecksum(full)
	if got, _ := n.store.Checksum(wire.Dialing, 1); got != want {
		t.Fatal("sharded seal differs from single-machine content")
	}

	// Mismatched shard counts poison the staged round.
	if err := rpc.PublishMailboxesShard(c, wire.Dialing, 2, slice(0, 3), 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := rpc.PublishMailboxesShard(c, wire.Dialing, 2, slice(3, 6), 2, 3); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}

	// One shard aborts: nothing seals even after the other finishes.
	if err := rpc.PublishMailboxesShard(c, wire.Dialing, 3, slice(0, 3), 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Call("cdn.publish", struct {
		Service wire.Service `json:"service"`
		Round   uint32       `json:"round"`
		Abort   bool         `json:"abort"`
	}{wire.Dialing, 3, true}, nil); err != nil {
		t.Fatal(err)
	}
	if err := rpc.PublishMailboxesShard(c, wire.Dialing, 3, slice(3, 6), 1, 2); err != nil {
		t.Fatal(err)
	}
	if n.store.Published(wire.Dialing, 3) {
		t.Fatal("aborted round sealed")
	}
}

// TestCDNStagingTTL pins the staging sweep: a publisher that dies between
// fragments (no Done, no Abort) must not pin its partial round in memory
// forever — the sweep evicts it after the TTL and counts the eviction.
func TestCDNStagingTTL(t *testing.T) {
	n := startCDNNode(t, "")
	n.daemon.SetStagingTTL(50 * time.Millisecond)
	c := rpc.Dial(n.ingestAddr)
	defer c.Close()

	// A fragment with no Done: the publisher "dies" here.
	if err := c.Call("cdn.publish", struct {
		Service wire.Service `json:"service"`
		Round   uint32       `json:"round"`
		Boxes   []struct {
			ID   uint32 `json:"id"`
			Data []byte `json:"data"`
		} `json:"boxes"`
	}{wire.Dialing, 9, []struct {
		ID   uint32 `json:"id"`
		Data []byte `json:"data"`
	}{{0, []byte("orphaned")}}}, nil); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for n.daemon.StagingEvictions() == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if got := n.daemon.StagingEvictions(); got == 0 {
		t.Fatal("abandoned staged round never evicted")
	}
	if n.store.Published(wire.Dialing, 9) {
		t.Fatal("evicted round sealed")
	}
}
