package rpc

import (
	"errors"
	"fmt"
	mathrand "math/rand"
	"net"
	"runtime"
	"slices"
	"strings"
	"sync"
	"time"

	"alpenhorn/internal/mixnet"
	"alpenhorn/internal/wire"
)

// This file is the daemon side of the mixnet data plane. A mixer daemon
// serves two generations of it:
//
//   - Relay (StreamVersionRelay): the coordinator pushes chunks in and
//     pulls the post-shuffle output back (mix.stream.pull), then pushes it
//     to the next server itself. Bulk data crosses the coordinator once
//     per chain hop.
//
//   - Chain-forward (StreamVersionForward): before the batch arrives, the
//     coordinator opens a ROUTE on each daemon (mix.round.route) naming
//     its successor — the next mixer's RPC address, or the CDN's publish
//     address for the last server. After StreamEnd the daemon pushes its
//     outbox to the successor's mix.stream.chunk itself (dialing with
//     retry/backoff), and the last server builds the round's mailboxes
//     and ships them straight to the CDN via cdn.publish. The coordinator
//     only moves control messages; it learns each server's outcome from
//     the mix.round.wait long-poll, and failures propagate as
//     mix.round.abort both down the chain and back to the waiting
//     coordinator.
//
//   - Shard groups (StreamVersionShard): one chain position may be served
//     by N daemons. The route then also carries the daemon's shard index,
//     the group size, the group's merge address, and the FULL successor
//     shard set. Each shard peels its slice of the position's batch and
//     generates its divided noise share; shards stream their peeled
//     slices to the group's merge server (mix.merge.begin/chunk/end),
//     and the deposit that completes the set — the last-arriving shard —
//     triggers the position's single key-derived shuffle over the
//     concatenated batch (mixnet.MergeShuffle). The merge server then DEALS its
//     post-shuffle chunks round-robin across the successor position's
//     shard set (or builds and publishes the mailboxes at the end of the
//     chain). Fan-in is counted: an intake only closes once an
//     end-of-stream has arrived from every expected upstream (the route's
//     NumUpstream for onion intake, the group size for merge deposits).
//     A shard set of size one takes none of these branches — it runs the
//     exact chain-forward path above.
//
// Relay remains fully served so a newer coordinator can drive a mixed
// fleet during a rolling upgrade.

type outKey struct {
	service wire.Service
	round   uint32
}

// route is one round's forwarding assignment on a daemon, created by
// mix.round.route and resolved exactly once (completion or abort).
type route struct {
	successors   []string // next position's shard set; empty for the last position
	cdnAddr      string   // cdn.publish address; set on every shard of the last position
	numMailboxes uint32
	chunkSize    int

	// buildShards switches the last position's merge server to sharded
	// mailbox building: after the merged shuffle it deals request bodies
	// by mailbox ID across these addresses (its own shard group, shard
	// order, itself included) instead of building every mailbox locally.
	buildShards []string

	// Shard-group layout. shardCount 1 is the unsharded chain-forward
	// path; mergeAddr is where a non-merge shard deposits its peeled
	// slice ("" on the merge server itself).
	shardIndex  int
	shardCount  int
	mergeAddr   string
	numUpstream int // stream ends to await before the local peel closes

	// Intake progress (fan-in counting). endedUpstreams dedupes ends by
	// upstream identity when numUpstream > 1, so a restarted upstream
	// re-sending its end cannot close the intake early; endsSeen counts
	// the distinct ends and intakeClosed latches the (single) close.
	begun          bool
	endsSeen       int
	endedUpstreams []bool
	intakeClosed   bool

	// Merge state (merge server only): each shard's peeled slice, in
	// shard-index order, and which shards have delivered theirs.
	mergeParts [][][]byte
	mergeEnded []bool

	// Sharded-build intake (build shards only): the post-shuffle payloads
	// the merge server dealt to this shard's mailbox-ID range
	// (mix.deal.*). dealEnded latches the single end — the merge server
	// is the deal's only writer.
	dealParts [][]byte
	dealEnded bool

	// Per-round data-plane deadline (routeArgs.DeadlineMs): peer-dial
	// retries give up once it passes instead of burning the round
	// against a dead peer. Zero means no deadline.
	deadline   time.Time
	deadlineMs int64

	// Self-reported accounting for mix.round.wait.
	opened   time.Time
	duration time.Duration
	bytesIn  uint64
	bytesOut uint64

	done     chan struct{} // closed when err is final
	err      error
	reason   string // abort-reason code (wire.Abort*), "" on success
	resolved bool
}

// Successor dial retry schedule: forwarding a round is the first traffic a
// fresh chain sees, so transient dial failures (successor still binding,
// connection racing a restart) get a few backed-off attempts before the
// round aborts. Each backoff carries up to 100% random jitter so a shard
// group whose members all lost the same peer does not retry in lockstep.
const (
	forwardDialAttempts = 4
	forwardDialBackoff  = 100 * time.Millisecond
)

// errRoundDeadline marks a data-plane failure caused by the route's
// per-round deadline expiring; classifyAbort maps it to wire.AbortSlow so
// the coordinator's scheduler can tell a slow round from a crashed peer.
var errRoundDeadline = errors.New("rpc: round deadline exceeded")

// classifyAbort maps a route's terminal error to the abort-reason code
// surfaced through mix.round.wait (wire.MixerRoundStats.AbortReason).
func classifyAbort(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, errRoundDeadline):
		return wire.AbortSlow
	case strings.HasPrefix(err.Error(), "aborted: "):
		return wire.AbortUpstream
	case errors.Is(err, ErrTransport):
		return wire.AbortCrashed
	default:
		return wire.AbortError
	}
}

// hostOf strips the port from a host:port address; peer allowlists match
// on host because a caller's source port is ephemeral.
func hostOf(addr string) string {
	if h, _, err := net.SplitHostPort(addr); err == nil {
		return h
	}
	return addr
}

// waitPollInterval bounds how long one mix.round.wait call parks in the
// daemon before replying "not done yet"; the client re-polls. Bounding the
// park keeps Server.Close from waiting on a handler that would otherwise
// block until a round that will never finish.
const waitPollInterval = 500 * time.Millisecond

type routeArgs struct {
	Service      wire.Service `json:"service"`
	Round        uint32       `json:"round"`
	NumMailboxes uint32       `json:"num_mailboxes"`
	ChunkSize    int          `json:"chunk_size"`
	Successor    string       `json:"successor,omitempty"`
	CDNAddr      string       `json:"cdn_addr,omitempty"`
	// Shard-group routing (StreamVersionShard). Successors names the
	// NEXT position's full shard set (supersedes Successor when set);
	// MergeAddr is the group's merge server for a non-merge shard;
	// NumUpstream is how many upstream end-of-streams close the onion
	// intake (0 = 1).
	ShardIndex  int      `json:"shard_index,omitempty"`
	ShardCount  int      `json:"shard_count,omitempty"`
	MergeAddr   string   `json:"merge_addr,omitempty"`
	Successors  []string `json:"successors,omitempty"`
	NumUpstream int      `json:"num_upstream,omitempty"`
	// BuildShards (StreamVersionCDNShard) marks the last position's merge
	// server for sharded mailbox building: the full shard group's
	// addresses, in shard order. Non-merge shards of such a group carry
	// CDNAddr but no BuildShards.
	BuildShards []string `json:"build_shards,omitempty"`
	// DeadlineMs bounds the daemon's data-plane dial retries for the
	// round, in milliseconds from route receipt; 0 means no deadline.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

type abortArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
	Reason  string       `json:"reason,omitempty"`
}

type waitReply struct {
	Done  bool   `json:"done"`
	Error string `json:"error,omitempty"`
	// Reason classifies a failed round (wire.Abort* codes) so the
	// coordinator can tell slow from crashed from misbehaving.
	Reason string `json:"reason,omitempty"`
	// Self-reported role accounting, valid when Done.
	DurationMs int64  `json:"duration_ms,omitempty"`
	BytesIn    uint64 `json:"bytes_in,omitempty"`
	BytesOut   uint64 `json:"bytes_out,omitempty"`
}

type shardArgs struct {
	Service    wire.Service `json:"service"`
	Round      uint32       `json:"round"`
	ShardIndex int          `json:"shard_index"`
	ShardCount int          `json:"shard_count"`
	// Peers is the round's allowed shard network: the addresses of every
	// group member (announcer, members, drafted spares). When set, the
	// daemon serves mix.round.exportkey for this round only to callers
	// whose host appears in it. Empty = legacy coordinator, no gate.
	Peers []string `json:"peers,omitempty"`
}

type importKeyArgs struct {
	Service  wire.Service `json:"service"`
	Round    uint32       `json:"round"`
	LeadAddr string       `json:"lead_addr"`
}

type exportKeyReply struct {
	Key []byte `json:"key"`
}

type mergeArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
	Shard   int          `json:"shard"`
	Batch   [][]byte     `json:"batch,omitempty"`
}

// MixerDaemon is the RPC-facing state of one mixer daemon: the relay-mode
// outbox, the chain-forward routes, and cached connections to successors.
// RegisterMixer returns it so daemon binaries and tests can inspect
// round-state hygiene.
type MixerDaemon struct {
	m *mixnet.Server

	mu     sync.Mutex
	outbox map[outKey][][]byte
	routes map[outKey]*route
	peers  map[string]*Client
	// keyPeers is the per-round exportkey allowlist (shardArgs.Peers):
	// the hosts allowed to pull this round's private key.
	keyPeers map[outKey][]string
}

// PendingRoutes returns the number of rounds with an unresolved or
// un-erased forwarding route. After a round closes (or aborts and
// closes), this must drop back toward zero — leaked routes are leaked
// round state.
func (d *MixerDaemon) PendingRoutes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.routes)
}

// PendingOutboxes returns the number of relay-mode output batches parked
// for mix.stream.pull.
func (d *MixerDaemon) PendingOutboxes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.outbox)
}

// mergeRoute validates a merge-surface call: the round must have a route,
// this daemon must be the round's merge server, and the shard index must
// be inside the group (and not the merge server's own — its slice never
// crosses the merge surface).
func (d *MixerDaemon) mergeRoute(a mergeArgs) (*route, outKey, error) {
	k := outKey{a.Service, a.Round}
	d.mu.Lock()
	defer d.mu.Unlock()
	rt := d.routes[k]
	if rt == nil {
		return nil, k, fmt.Errorf("rpc: round %d (%s) has no route", a.Round, a.Service)
	}
	if rt.mergeEnded == nil {
		return nil, k, fmt.Errorf("rpc: round %d (%s): this daemon is not the merge server", a.Round, a.Service)
	}
	if a.Shard < 0 || a.Shard >= rt.shardCount {
		return nil, k, fmt.Errorf("rpc: round %d (%s): shard %d outside group of %d", a.Round, a.Service, a.Shard, rt.shardCount)
	}
	if a.Shard == rt.shardIndex {
		return nil, k, fmt.Errorf("rpc: round %d (%s): merge server's own slice is deposited locally", a.Round, a.Service)
	}
	return rt, k, nil
}

// peer returns a cached RPC client for a successor (or CDN) address.
// Connections are reused across rounds; the Client reconnects lazily
// after failures.
func (d *MixerDaemon) peer(addr string) *Client {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.peers[addr]
	if !ok {
		c = Dial(addr)
		d.peers[addr] = c
	}
	return c
}

// resolve finalizes a route exactly once; later resolutions (e.g. an
// abort racing the forwarding goroutine) are dropped.
func (d *MixerDaemon) resolve(rt *route, err error) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if rt.resolved {
		return false
	}
	rt.resolved = true
	rt.err = err
	rt.reason = classifyAbort(err)
	rt.duration = time.Since(rt.opened)
	rt.mergeParts = nil // drop any half-merged slices
	close(rt.done)
	return true
}

// finish resolves the route with the outcome of this daemon's data-plane
// role. On failure it also propagates an abort to every successor shard
// and to the group's merge server, so nothing downstream keeps waiting
// for chunks (or deposits) that will never come.
func (d *MixerDaemon) finish(k outKey, rt *route, err error) {
	if !d.resolve(rt, err) || err == nil {
		return
	}
	targets := append([]string(nil), rt.successors...)
	if rt.mergeAddr != "" {
		targets = append(targets, rt.mergeAddr)
	}
	// A failed sharded-build merge server releases its build shards too:
	// they are parked waiting for dealt slices that will never come.
	for s, addr := range rt.buildShards {
		if s != rt.shardIndex {
			targets = append(targets, addr)
		}
	}
	for _, addr := range targets {
		go func(addr string) {
			_ = d.peer(addr).Call("mix.round.abort", abortArgs{
				Service: k.service, Round: k.round, Reason: err.Error(),
			}, nil)
		}(addr)
	}
}

// forward is the daemon's data-plane role for one chain-forward round,
// run on its own goroutine once every upstream has closed the stream.
//
// Unsharded (shard set of size one): finish the local mix (noise +
// shuffle) and hand the result to finishPosition — the pre-shard path,
// unchanged.
//
// Sharded: finish only the local peel + noise share (StreamEndShard; the
// shuffle happens once, over the whole position's batch, at the group's
// merge) and either stream the slice to the merge server or — on the
// merge server itself — record it as a deposit, which may complete the
// merge.
func (d *MixerDaemon) forward(k outKey, rt *route) {
	if rt.shardCount > 1 {
		out, err := d.m.StreamEndShard(k.service, k.round)
		if err != nil {
			d.finish(k, rt, err)
			return
		}
		if rt.mergeAddr != "" {
			if err := d.pushDeposit(k, rt, out); err != nil || rt.cdnAddr == "" {
				d.finish(k, rt, err)
				return
			}
			// Sharded build: this shard's duty is not done at deposit.
			// The merge server deals back this shard's mailbox-ID slice
			// (mix.deal.*); the route resolves once the slice is built
			// and published over the shard's own cdn.publish stream.
			return
		}
		d.addDeposit(k, rt, rt.shardIndex, out)
		return
	}
	out, err := d.m.StreamEnd(k.service, k.round)
	if err != nil {
		d.finish(k, rt, err)
		return
	}
	d.finishPosition(k, rt, out)
}

// finishPosition completes a position's data-plane duty once its full
// post-shuffle batch exists on this daemon: deal it across the successor
// position's shard set, or — at the end of the chain — build the round's
// mailboxes and publish them to the CDN. With a sharded build route the
// batch is instead dealt BY MAILBOX ID across the position's own shard
// group and this daemon only builds its own ID range: the merge server
// never touches the other shards' final mailbox bytes.
func (d *MixerDaemon) finishPosition(k outKey, rt *route, out [][]byte) {
	if len(rt.successors) > 0 {
		d.finish(k, rt, d.dealDownstream(k, rt, out))
		return
	}
	if len(rt.buildShards) > 0 {
		d.dealMailboxBuild(k, rt, out)
		return
	}
	boxes, err := mixnet.BuildMailboxes(k.service, rt.numMailboxes, out)
	if err != nil {
		d.finish(k, rt, err)
		return
	}
	var published uint64
	for _, box := range boxes {
		published += uint64(len(box))
	}
	d.mu.Lock()
	rt.bytesOut += published
	d.mu.Unlock()
	d.finish(k, rt, PublishMailboxes(d.peer(rt.cdnAddr), k.service, k.round, boxes))
}

// dealMailboxBuild distributes the last position's post-shuffle batch by
// MAILBOX ID across the shard group (merge server only): shard s gets the
// payloads addressed to its contiguous ID range (mixnet.ShardRange), in
// batch order, over mix.deal.* streams. Cover traffic, malformed payloads,
// and out-of-range mailboxes are dropped here — exactly the payloads
// BuildMailboxes would drop — so the per-shard builds are byte-identical
// to the single-machine build. The merge server's own slice never crosses
// the network; it is built and published concurrently with the deals.
func (d *MixerDaemon) dealMailboxBuild(k outKey, rt *route, out [][]byte) {
	n := len(rt.buildShards)
	// hi-boundary per shard: payload with mailbox < bounds[s] and
	// >= bounds[s-1] belongs to shard s.
	bounds := make([]uint32, n)
	for s := 0; s < n; s++ {
		_, bounds[s] = mixnet.ShardRange(rt.numMailboxes, s, n)
	}
	perShard := make([][][]byte, n)
	for _, data := range out {
		payload, err := wire.UnmarshalMixPayload(k.service, data)
		if err != nil || payload.Mailbox == wire.CoverMailbox || payload.Mailbox >= rt.numMailboxes {
			continue
		}
		s := 0
		for s < n-1 && payload.Mailbox >= bounds[s] {
			s++
		}
		perShard[s] = append(perShard[s], data)
	}

	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for s, addr := range rt.buildShards {
		go func(s int, addr string) {
			defer wg.Done()
			if s == rt.shardIndex {
				errs[s] = d.buildAndPublishSlice(k, rt, perShard[s])
				return
			}
			errs[s] = d.pushBuildSlice(k, rt, addr, perShard[s])
		}(s, addr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			d.finish(k, rt, err)
			return
		}
	}
	d.finish(k, rt, nil)
}

// pushBuildSlice streams one shard's dealt payload slice over the
// mix.deal.* surface. Same discipline as every other data stream: the
// idempotent begin retries with backoff, the data calls are at most once.
func (d *MixerDaemon) pushBuildSlice(k outKey, rt *route, addr string, slice [][]byte) error {
	c, err := d.openStream(rt, addr, "mix.deal.begin", roundArgs{Service: k.service, Round: k.round})
	if err != nil {
		return err
	}
	chunkSize := rt.effectiveChunk()
	var sent uint64
	for lo := 0; lo < len(slice); lo += chunkSize {
		hi := min(lo+chunkSize, len(slice))
		if err := c.CallOnce("mix.deal.chunk", mixArgs{
			Service: k.service, Round: k.round, Batch: slice[lo:hi],
		}, nil); err != nil {
			return fmt.Errorf("rpc: dealing build slice to %s: %w", addr, err)
		}
		for _, msg := range slice[lo:hi] {
			sent += uint64(len(msg))
		}
	}
	if err := c.CallOnce("mix.deal.end", roundArgs{Service: k.service, Round: k.round}, nil); err != nil {
		return fmt.Errorf("rpc: closing build slice to %s: %w", addr, err)
	}
	d.mu.Lock()
	rt.bytesOut += sent
	d.mu.Unlock()
	return nil
}

// buildAndPublishSlice builds this shard's mailbox-ID range from its
// dealt payload slice and publishes it over the shard's own shard-tagged
// cdn.publish stream. The CDN seals the round only after all shardCount
// streams complete.
func (d *MixerDaemon) buildAndPublishSlice(k outKey, rt *route, slice [][]byte) error {
	lo, hi := mixnet.ShardRange(rt.numMailboxes, rt.shardIndex, rt.shardCount)
	boxes, err := mixnet.BuildMailboxesRange(k.service, lo, hi, slice, runtime.GOMAXPROCS(0))
	if err != nil {
		return err
	}
	var published uint64
	for _, box := range boxes {
		published += uint64(len(box))
	}
	d.mu.Lock()
	rt.bytesOut += published
	d.mu.Unlock()
	return PublishMailboxesShard(d.peer(rt.cdnAddr), k.service, k.round, boxes, rt.shardIndex, rt.shardCount)
}

// addDeposit records one shard's peeled slice on the group's merge
// server. The deposit that completes the set — the last-arriving shard —
// performs the position's merge: the slices are concatenated in
// shard-index order and shuffled ONCE with the round key's derived
// permutation (mixnet.MergeShuffle), then the position's output moves on.
// Remote shards deliver their slices in chunks over the merge surface
// (mix.merge.chunk appends, mix.merge.end calls this with a nil part);
// the merge server's own forward goroutine delivers its slice whole.
func (d *MixerDaemon) addDeposit(k outKey, rt *route, shard int, part [][]byte) {
	d.mu.Lock()
	if rt.resolved || rt.mergeEnded == nil || rt.mergeEnded[shard] {
		// Round already failed, or a duplicate end; nothing to merge.
		d.mu.Unlock()
		return
	}
	rt.mergeParts[shard] = append(rt.mergeParts[shard], part...)
	rt.mergeEnded[shard] = true
	for _, done := range rt.mergeEnded {
		if !done {
			d.mu.Unlock()
			return
		}
	}
	parts := rt.mergeParts
	rt.mergeParts = nil
	d.mu.Unlock()

	out, err := d.m.MergeShuffle(k.service, k.round, parts)
	if err != nil {
		d.finish(k, rt, err)
		return
	}
	d.finishPosition(k, rt, out)
}

// openStream dials addr and opens a chunked stream with retry/backoff on
// the idempotent opening call: forwarding a round is often the first
// traffic a fresh peer sees, so transient dial failures get a few
// backed-off, jittered attempts before the round aborts. The route's
// per-round deadline bounds the retries: against a peer that is DEAD
// rather than starting, the daemon stops burning the round as soon as the
// deadline passes and the abort is classified slow, not crashed-here.
func (d *MixerDaemon) openStream(rt *route, addr, method string, args any) (*Client, error) {
	c := d.peer(addr)
	var err error
	for attempt := 0; attempt < forwardDialAttempts; attempt++ {
		if attempt > 0 {
			backoff := forwardDialBackoff << (attempt - 1)
			backoff += time.Duration(mathrand.Int63n(int64(backoff)))
			if !rt.deadline.IsZero() && time.Now().Add(backoff).After(rt.deadline) {
				return nil, fmt.Errorf("%w: opening stream to %s: %v", errRoundDeadline, addr, err)
			}
			time.Sleep(backoff)
		}
		if !rt.deadline.IsZero() && time.Now().After(rt.deadline) {
			return nil, fmt.Errorf("%w: opening stream to %s", errRoundDeadline, addr)
		}
		err = c.CallOnce(method, args, nil)
		if err == nil || !errors.Is(err, ErrTransport) {
			// Handler errors won't improve with a re-send; only
			// transport failures (peer still binding, stale connection)
			// are worth the backoff.
			break
		}
	}
	if err != nil && strings.Contains(err.Error(), "stream already in progress") {
		// A begin from an earlier attempt executed but its reply was
		// lost. This daemon is the stream's only legitimate writer, so
		// the open stream is ours: proceed.
		err = nil
	}
	if err != nil {
		return nil, fmt.Errorf("rpc: opening stream to %s: %w", addr, err)
	}
	return c, nil
}

// effectiveChunk returns the route's chunk size clamped to the frame
// budget.
func (rt *route) effectiveChunk() int {
	chunkSize := rt.chunkSize
	if chunkSize <= 0 {
		chunkSize = mixnet.DefaultStreamChunk
	}
	if chunkSize > streamPullMax {
		chunkSize = streamPullMax
	}
	return chunkSize
}

// pushDownstream streams a finished batch to one successor shard. The
// opening call retries with backoff (the successor may still be coming
// up, and an unsent begin is safe to repeat). The data calls are sent AT
// MOST ONCE — a transparent retry after a lost reply would append a
// chunk twice and corrupt the batch — so any mid-stream transport
// failure aborts the round instead, and the next round carries the
// traffic.
func (d *MixerDaemon) pushDownstream(k outKey, rt *route, addr string, out [][]byte) error {
	c, err := d.openStream(rt, addr, "mix.stream.begin", mixArgs{
		Service: k.service, Round: k.round, NumMailboxes: rt.numMailboxes,
	})
	if err != nil {
		return err
	}
	chunkSize := rt.effectiveChunk()
	var sent uint64
	for lo := 0; lo < len(out); lo += chunkSize {
		hi := min(lo+chunkSize, len(out))
		if err := c.CallOnce("mix.stream.chunk", mixArgs{
			Service: k.service, Round: k.round, Batch: out[lo:hi],
		}, nil); err != nil {
			return fmt.Errorf("rpc: forwarding chunk to %s: %w", addr, err)
		}
		for _, msg := range out[lo:hi] {
			sent += uint64(len(msg))
		}
	}
	if err := c.CallOnce("mix.stream.end", roundArgs{Service: k.service, Round: k.round}, nil); err != nil {
		return fmt.Errorf("rpc: closing stream to %s: %w", addr, err)
	}
	d.mu.Lock()
	rt.bytesOut += sent
	d.mu.Unlock()
	return nil
}

// dealDownstream distributes a position's post-shuffle output across the
// successor position's shard set: chunk i goes to successor shard
// i mod N. The deal is deterministic — given the same post-shuffle batch
// and chunk size, every run hands every successor shard the same slice —
// so sharding never hides nondeterminism in the data plane. Each
// successor gets its own chunked stream, pushed concurrently.
func (d *MixerDaemon) dealDownstream(k outKey, rt *route, out [][]byte) error {
	if len(rt.successors) == 1 {
		return d.pushDownstream(k, rt, rt.successors[0], out)
	}
	chunkSize := rt.effectiveChunk()
	perShard := make([][][]byte, len(rt.successors))
	for i, lo := 0, 0; lo < len(out); i, lo = i+1, lo+chunkSize {
		hi := min(lo+chunkSize, len(out))
		perShard[i%len(perShard)] = append(perShard[i%len(perShard)], out[lo:hi]...)
	}
	errs := make([]error, len(rt.successors))
	var wg sync.WaitGroup
	wg.Add(len(rt.successors))
	for j, addr := range rt.successors {
		go func(j int, addr string) {
			defer wg.Done()
			errs[j] = d.pushDownstream(k, rt, addr, perShard[j])
		}(j, addr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// pushDeposit streams this shard's peeled slice to the group's merge
// server over the merge surface. Same at-most-once discipline as
// pushDownstream: only the idempotent opening call is retried.
func (d *MixerDaemon) pushDeposit(k outKey, rt *route, out [][]byte) error {
	c, err := d.openStream(rt, rt.mergeAddr, "mix.merge.begin", mergeArgs{
		Service: k.service, Round: k.round, Shard: rt.shardIndex,
	})
	if err != nil {
		return err
	}
	chunkSize := rt.effectiveChunk()
	var sent uint64
	for lo := 0; lo < len(out); lo += chunkSize {
		hi := min(lo+chunkSize, len(out))
		if err := c.CallOnce("mix.merge.chunk", mergeArgs{
			Service: k.service, Round: k.round, Shard: rt.shardIndex, Batch: out[lo:hi],
		}, nil); err != nil {
			return fmt.Errorf("rpc: depositing slice with merge server %s: %w", rt.mergeAddr, err)
		}
		for _, msg := range out[lo:hi] {
			sent += uint64(len(msg))
		}
	}
	if err := c.CallOnce("mix.merge.end", mergeArgs{
		Service: k.service, Round: k.round, Shard: rt.shardIndex,
	}, nil); err != nil {
		return fmt.Errorf("rpc: closing deposit with merge server %s: %w", rt.mergeAddr, err)
	}
	d.mu.Lock()
	rt.bytesOut += sent
	d.mu.Unlock()
	return nil
}

// RegisterMixer exposes a mixnet.Server over RPC: the legacy full-batch
// surface, the relay streaming surface, and the chain-forward data plane
// described at the top of this file.
func RegisterMixer(s *Server, m *mixnet.Server) *MixerDaemon {
	d := &MixerDaemon{
		m:        m,
		outbox:   make(map[outKey][][]byte),
		routes:   make(map[outKey]*route),
		peers:    make(map[string]*Client),
		keyPeers: make(map[outKey][]string),
	}

	HandleFunc(s, "mix.info", func(struct{}) (any, error) {
		shardIndex, shardCount := m.ShardIdentity()
		return MixerInfo{
			Name:          m.Name,
			Position:      m.Position,
			SigningKey:    m.SigningKey(),
			AddFriendMu:   m.AddFriendNoise.Mu,
			DialingMu:     m.DialingNoise.Mu,
			Streaming:     true,
			StreamVersion: StreamVersionCDNShard,
			ShardIndex:    shardIndex,
			ShardCount:    shardCount,
			Spare:         m.Spare(),
		}, nil
	})
	HandleFunc(s, "mix.newround", func(a roundArgs) (any, error) {
		return m.NewRound(a.Service, a.Round)
	})
	HandleFunc(s, "mix.setdownstream", func(a downstreamArgs) (any, error) {
		return nil, m.SetDownstreamKeys(a.Service, a.Round, a.Keys)
	})
	HandleFunc(s, "mix.preparenoise", func(a mixArgs) (any, error) {
		return nil, m.PrepareNoise(a.Service, a.Round, a.NumMailboxes)
	})
	HandleFunc(s, "mix.round.shard", func(a shardArgs) (any, error) {
		if err := m.SetRoundShard(a.Service, a.Round, a.ShardIndex, a.ShardCount); err != nil {
			return nil, err
		}
		if len(a.Peers) > 0 {
			// Install the round's shard-network allowlist so exportkey
			// is gated BEFORE any group member pulls the key.
			d.mu.Lock()
			d.keyPeers[outKey{a.Service, a.Round}] = a.Peers
			d.mu.Unlock()
		}
		return nil, nil
	})
	HandlePeerFunc(s, "mix.round.exportkey", func(peerAddr string, a roundArgs) (any, error) {
		// Serves the round onion private key to the OTHER shards of this
		// position (one logical server split across machines). Like
		// cdn.publish, this surface must stay off the client plane — and
		// when the coordinator distributed the round's shard network
		// (shardArgs.Peers), the caller's host must be in it: topology is
		// verified here instead of merely trusted.
		k := outKey{a.Service, a.Round}
		d.mu.Lock()
		allowed := d.keyPeers[k]
		d.mu.Unlock()
		if len(allowed) > 0 {
			caller := hostOf(peerAddr)
			ok := false
			for _, p := range allowed {
				if hostOf(p) == caller {
					ok = true
					break
				}
			}
			if !ok {
				return nil, fmt.Errorf("rpc: round %d (%s): caller %s is outside the round's shard network", a.Round, a.Service, caller)
			}
		}
		key, err := m.ExportRoundKey(a.Service, a.Round)
		if err != nil {
			return nil, err
		}
		return exportKeyReply{Key: key}, nil
	})
	HandleFunc(s, "mix.round.importkey", func(a importKeyArgs) (any, error) {
		// The daemon pulls the group key from the lead itself, so the
		// private key moves server-to-server inside the group's trust
		// domain; the coordinator only names the source.
		var reply exportKeyReply
		if err := d.peer(a.LeadAddr).Call("mix.round.exportkey", roundArgs{
			Service: a.Service, Round: a.Round,
		}, &reply); err != nil {
			return nil, fmt.Errorf("rpc: fetching round key from lead %s: %w", a.LeadAddr, err)
		}
		return nil, m.ImportRoundKey(a.Service, a.Round, reply.Key)
	})
	HandleFunc(s, "mix.mix", func(a mixArgs) (any, error) {
		return m.Mix(a.Service, a.Round, a.NumMailboxes, a.Batch)
	})
	HandleFunc(s, "mix.round.route", func(a routeArgs) (any, error) {
		if !m.RoundOpen(a.Service, a.Round) {
			return nil, fmt.Errorf("rpc: round %d (%s) not open", a.Round, a.Service)
		}
		successors := a.Successors
		if len(successors) == 0 && a.Successor != "" {
			successors = []string{a.Successor}
		}
		shardCount := a.ShardCount
		if shardCount <= 0 {
			shardCount = 1
		}
		numUpstream := a.NumUpstream
		if numUpstream <= 0 {
			numUpstream = 1
		}
		if a.ShardIndex < 0 || a.ShardIndex >= shardCount {
			return nil, fmt.Errorf("rpc: round %d (%s): bad shard index %d/%d", a.Round, a.Service, a.ShardIndex, shardCount)
		}
		if shardCount > 1 {
			// The route must agree with the shard layout the round's
			// noise was divided under; a mismatch means the coordinator
			// skipped mix.round.shard and the noise floor would be wrong.
			idx, count := m.RoundShard(a.Service, a.Round)
			if idx != a.ShardIndex || count != shardCount {
				return nil, fmt.Errorf("rpc: round %d (%s): route shard %d/%d conflicts with round layout %d/%d",
					a.Round, a.Service, a.ShardIndex, shardCount, idx, count)
			}
		}
		if shardCount == 1 && a.MergeAddr != "" {
			return nil, fmt.Errorf("rpc: round %d (%s): unsharded route cannot have a merge server", a.Round, a.Service)
		}
		merge := shardCount == 1 || a.MergeAddr == ""
		if merge && len(successors) == 0 && a.CDNAddr == "" {
			return nil, fmt.Errorf("rpc: round %d (%s): route needs a successor or a CDN address", a.Round, a.Service)
		}
		if !merge && len(successors) > 0 {
			// A non-merge shard MAY carry a CDN address: that is its
			// sharded-build publish target. It never has successors.
			return nil, fmt.Errorf("rpc: round %d (%s): non-merge shard cannot have successors", a.Round, a.Service)
		}
		if len(a.BuildShards) > 0 {
			if !merge || a.CDNAddr == "" || len(successors) > 0 {
				return nil, fmt.Errorf("rpc: round %d (%s): build shards require a last-position merge server", a.Round, a.Service)
			}
			if len(a.BuildShards) != shardCount {
				return nil, fmt.Errorf("rpc: round %d (%s): %d build shards for %d-shard group",
					a.Round, a.Service, len(a.BuildShards), shardCount)
			}
		}
		k := outKey{a.Service, a.Round}
		d.mu.Lock()
		defer d.mu.Unlock()
		if rt, ok := d.routes[k]; ok {
			// Idempotent re-announce (the coordinator's call layer may
			// retry a lost reply); a CONFLICTING route is an error.
			if slices.Equal(rt.successors, successors) && rt.cdnAddr == a.CDNAddr &&
				rt.numMailboxes == a.NumMailboxes && rt.chunkSize == a.ChunkSize &&
				rt.shardIndex == a.ShardIndex && rt.shardCount == shardCount &&
				rt.mergeAddr == a.MergeAddr && rt.numUpstream == numUpstream &&
				slices.Equal(rt.buildShards, a.BuildShards) && rt.deadlineMs == a.DeadlineMs {
				return nil, nil
			}
			return nil, fmt.Errorf("rpc: round %d (%s) already routed elsewhere", a.Round, a.Service)
		}
		rt := &route{
			successors:   successors,
			cdnAddr:      a.CDNAddr,
			numMailboxes: a.NumMailboxes,
			chunkSize:    a.ChunkSize,
			buildShards:  a.BuildShards,
			shardIndex:   a.ShardIndex,
			shardCount:   shardCount,
			mergeAddr:    a.MergeAddr,
			numUpstream:  numUpstream,
			deadlineMs:   a.DeadlineMs,
			opened:       time.Now(),
			done:         make(chan struct{}),
		}
		if a.DeadlineMs > 0 {
			rt.deadline = rt.opened.Add(time.Duration(a.DeadlineMs) * time.Millisecond)
		}
		if shardCount > 1 && merge {
			rt.mergeParts = make([][][]byte, shardCount)
			rt.mergeEnded = make([]bool, shardCount)
		}
		d.routes[k] = rt
		return nil, nil
	})
	HandleFunc(s, "mix.merge.begin", func(a mergeArgs) (any, error) {
		// Idempotent: opening a deposit only validates that this daemon
		// is the round's merge server and the shard is expected. Safe to
		// repeat, so the depositor's dial retry can ride on it.
		_, _, err := d.mergeRoute(a)
		return nil, err
	})
	HandleFunc(s, "mix.merge.chunk", func(a mergeArgs) (any, error) {
		rt, _, err := d.mergeRoute(a)
		if err != nil {
			return nil, err
		}
		d.mu.Lock()
		if !rt.resolved && rt.mergeEnded != nil && !rt.mergeEnded[a.Shard] {
			rt.mergeParts[a.Shard] = append(rt.mergeParts[a.Shard], a.Batch...)
			for _, msg := range a.Batch {
				rt.bytesIn += uint64(len(msg))
			}
		}
		d.mu.Unlock()
		return nil, nil
	})
	HandleFunc(s, "mix.merge.end", func(a mergeArgs) (any, error) {
		rt, k, err := d.mergeRoute(a)
		if err != nil {
			return nil, err
		}
		// The end that completes the set runs the merge: concatenate in
		// shard-index order, seeded shuffle, and move the position's
		// output on. That work belongs on its own goroutine, not in the
		// RPC handler the depositing shard is waiting on.
		go d.addDeposit(k, rt, a.Shard, nil)
		return nil, nil
	})
	// mix.deal.* is the sharded-build intake: the merge server deals each
	// build shard the post-shuffle payloads addressed to that shard's
	// mailbox-ID range. Only non-merge shards whose route carries a CDN
	// address (their publish target) accept the stream.
	dealRoute := func(a roundArgs) (*route, outKey, error) {
		k := outKey{a.Service, a.Round}
		d.mu.Lock()
		rt := d.routes[k]
		d.mu.Unlock()
		if rt == nil {
			return nil, k, fmt.Errorf("rpc: round %d (%s) has no route", a.Round, a.Service)
		}
		if rt.mergeAddr == "" || rt.cdnAddr == "" {
			return nil, k, fmt.Errorf("rpc: round %d (%s): daemon is not a build shard", a.Round, a.Service)
		}
		return rt, k, nil
	}
	HandleFunc(s, "mix.deal.begin", func(a roundArgs) (any, error) {
		// Idempotent, like mix.merge.begin: validation only, so the merge
		// server's dial retry can ride on it.
		_, _, err := dealRoute(a)
		return nil, err
	})
	HandleFunc(s, "mix.deal.chunk", func(a mixArgs) (any, error) {
		rt, _, err := dealRoute(roundArgs{Service: a.Service, Round: a.Round})
		if err != nil {
			return nil, err
		}
		d.mu.Lock()
		if !rt.resolved && !rt.dealEnded {
			rt.dealParts = append(rt.dealParts, a.Batch...)
			for _, msg := range a.Batch {
				rt.bytesIn += uint64(len(msg))
			}
		}
		d.mu.Unlock()
		return nil, nil
	})
	HandleFunc(s, "mix.deal.end", func(a roundArgs) (any, error) {
		rt, k, err := dealRoute(a)
		if err != nil {
			return nil, err
		}
		d.mu.Lock()
		if rt.resolved || rt.dealEnded {
			d.mu.Unlock()
			return nil, nil
		}
		rt.dealEnded = true
		slice := rt.dealParts
		rt.dealParts = nil
		d.mu.Unlock()
		// Build and publish off the handler goroutine: the merge server is
		// waiting on this reply and has other shards to deal to.
		go func() {
			d.finish(k, rt, d.buildAndPublishSlice(k, rt, slice))
		}()
		return nil, nil
	})
	HandleFunc(s, "mix.round.wait", func(a roundArgs) (any, error) {
		k := outKey{a.Service, a.Round}
		d.mu.Lock()
		rt := d.routes[k]
		d.mu.Unlock()
		if rt == nil {
			return nil, fmt.Errorf("rpc: round %d (%s) has no route", a.Round, a.Service)
		}
		select {
		case <-rt.done:
			d.mu.Lock()
			reply := waitReply{
				Done:       true,
				Reason:     rt.reason,
				DurationMs: rt.duration.Milliseconds(),
				BytesIn:    rt.bytesIn,
				BytesOut:   rt.bytesOut,
			}
			if rt.err != nil {
				reply.Error = rt.err.Error()
			}
			d.mu.Unlock()
			return reply, nil
		case <-time.After(waitPollInterval):
			return waitReply{}, nil
		}
	})
	HandleFunc(s, "mix.round.abort", func(a abortArgs) (any, error) {
		k := outKey{a.Service, a.Round}
		_ = m.StreamAbort(a.Service, a.Round)
		d.mu.Lock()
		delete(d.outbox, k)
		rt := d.routes[k]
		d.mu.Unlock()
		if rt != nil {
			d.finish(k, rt, fmt.Errorf("aborted: %s", a.Reason))
		}
		return nil, nil
	})
	HandleFunc(s, "mix.stream.begin", func(a mixArgs) (any, error) {
		k := outKey{a.Service, a.Round}
		d.mu.Lock()
		if rt := d.routes[k]; rt != nil && rt.numUpstream > 1 {
			// Fan-in: the first upstream's begin opens the round's one
			// stream (under d.mu, so a racing upstream cannot slip a
			// chunk in before the stream exists); later begins join it.
			if rt.begun {
				d.mu.Unlock()
				return nil, nil
			}
			rt.begun = true
			err := m.StreamBegin(a.Service, a.Round, a.NumMailboxes)
			if err != nil {
				rt.begun = false
			}
			d.mu.Unlock()
			return nil, err
		}
		d.mu.Unlock()
		return nil, m.StreamBegin(a.Service, a.Round, a.NumMailboxes)
	})
	HandleFunc(s, "mix.stream.chunk", func(a mixArgs) (any, error) {
		d.mu.Lock()
		if rt := d.routes[outKey{a.Service, a.Round}]; rt != nil {
			for _, msg := range a.Batch {
				rt.bytesIn += uint64(len(msg))
			}
		}
		d.mu.Unlock()
		return nil, m.StreamChunk(a.Service, a.Round, a.Batch)
	})
	HandleFunc(s, "mix.stream.end", func(a roundArgs) (any, error) {
		k := outKey{a.Service, a.Round}
		d.mu.Lock()
		rt := d.routes[k]
		if rt != nil && rt.numUpstream > 1 {
			// Fan-in: ends are deduped by UPSTREAM IDENTITY, not
			// counted bare — a restarted upstream re-sending its end
			// must not stand in for one that is still streaming.
			if a.Upstream < 0 || a.Upstream >= rt.numUpstream {
				d.mu.Unlock()
				return nil, fmt.Errorf("rpc: round %d (%s): upstream %d outside fan-in of %d", a.Round, a.Service, a.Upstream, rt.numUpstream)
			}
			if rt.endedUpstreams == nil {
				rt.endedUpstreams = make([]bool, rt.numUpstream)
			}
			if !rt.endedUpstreams[a.Upstream] {
				rt.endedUpstreams[a.Upstream] = true
				rt.endsSeen++
			}
			if rt.endsSeen < rt.numUpstream || rt.intakeClosed {
				d.mu.Unlock()
				return streamEndReply{Forwarded: true}, nil
			}
			rt.intakeClosed = true
		}
		d.mu.Unlock()
		if rt != nil {
			// Chain-forward: acknowledge intake now; the mix and the
			// downstream push happen on our own goroutine, and the
			// outcome is reported through mix.round.wait.
			go d.forward(k, rt)
			return streamEndReply{Forwarded: true}, nil
		}
		out, err := m.StreamEnd(a.Service, a.Round)
		if err != nil {
			return nil, err
		}
		d.mu.Lock()
		d.outbox[k] = out
		d.mu.Unlock()
		return streamEndReply{Total: len(out)}, nil
	})
	HandleFunc(s, "mix.stream.pull", func(a streamPullArgs) (any, error) {
		if a.Max <= 0 || a.Max > streamPullMax {
			a.Max = streamPullMax
		}
		d.mu.Lock()
		defer d.mu.Unlock()
		k := outKey{a.Service, a.Round}
		out, ok := d.outbox[k]
		if !ok {
			return nil, fmt.Errorf("rpc: no pending stream output for round %d (%s)", a.Round, a.Service)
		}
		if a.Offset < 0 || a.Offset > len(out) {
			return nil, fmt.Errorf("rpc: stream pull offset %d out of range", a.Offset)
		}
		hi := a.Offset + a.Max
		if hi >= len(out) {
			hi = len(out)
			defer delete(d.outbox, k) // last chunk: the batch is handed over
		}
		return out[a.Offset:hi], nil
	})
	HandleFunc(s, "mix.stream.abort", func(a roundArgs) (any, error) {
		d.mu.Lock()
		delete(d.outbox, outKey{a.Service, a.Round})
		d.mu.Unlock()
		return nil, m.StreamAbort(a.Service, a.Round)
	})
	HandleFunc(s, "mix.closeround", func(a roundArgs) (any, error) {
		k := outKey{a.Service, a.Round}
		d.mu.Lock()
		delete(d.outbox, k)
		delete(d.keyPeers, k)
		rt := d.routes[k]
		delete(d.routes, k)
		d.mu.Unlock()
		if rt != nil {
			// A still-unresolved route at close time is an abandoned
			// round; unblock any waiter.
			d.resolve(rt, fmt.Errorf("rpc: round %d (%s) closed", a.Round, a.Service))
		}
		m.CloseRound(a.Service, a.Round)
		return nil, nil
	})
	return d
}

// RegisterLegacyMixer exposes only the pre-streaming surface of a mixer
// (full-batch mix.mix, StreamVersionNone). It exists so tests and the
// bench harness can stand in for a daemon built before the streaming
// RPCs and prove the rolling-upgrade fallback paths.
func RegisterLegacyMixer(s *Server, m *mixnet.Server) {
	HandleFunc(s, "mix.info", func(struct{}) (any, error) {
		return MixerInfo{
			Name:        m.Name,
			Position:    m.Position,
			SigningKey:  m.SigningKey(),
			AddFriendMu: m.AddFriendNoise.Mu,
			DialingMu:   m.DialingNoise.Mu,
		}, nil
	})
	HandleFunc(s, "mix.newround", func(a roundArgs) (any, error) {
		return m.NewRound(a.Service, a.Round)
	})
	HandleFunc(s, "mix.setdownstream", func(a downstreamArgs) (any, error) {
		return nil, m.SetDownstreamKeys(a.Service, a.Round, a.Keys)
	})
	HandleFunc(s, "mix.mix", func(a mixArgs) (any, error) {
		return m.Mix(a.Service, a.Round, a.NumMailboxes, a.Batch)
	})
	HandleFunc(s, "mix.closeround", func(a roundArgs) (any, error) {
		m.CloseRound(a.Service, a.Round)
		return nil, nil
	})
}
