package rpc

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"alpenhorn/internal/cdn"
	"alpenhorn/internal/mixnet"
	"alpenhorn/internal/wire"
)

// This file is the daemon side of the mixnet data plane. A mixer daemon
// serves two generations of it:
//
//   - Relay (StreamVersionRelay): the coordinator pushes chunks in and
//     pulls the post-shuffle output back (mix.stream.pull), then pushes it
//     to the next server itself. Bulk data crosses the coordinator once
//     per chain hop.
//
//   - Chain-forward (StreamVersionForward): before the batch arrives, the
//     coordinator opens a ROUTE on each daemon (mix.round.route) naming
//     its successor — the next mixer's RPC address, or the CDN's publish
//     address for the last server. After StreamEnd the daemon pushes its
//     outbox to the successor's mix.stream.chunk itself (dialing with
//     retry/backoff), and the last server builds the round's mailboxes
//     and ships them straight to the CDN via cdn.publish. The coordinator
//     only moves control messages; it learns each server's outcome from
//     the mix.round.wait long-poll, and failures propagate as
//     mix.round.abort both down the chain and back to the waiting
//     coordinator.
//
// Relay remains fully served so a newer coordinator can drive a mixed
// fleet during a rolling upgrade.

type outKey struct {
	service wire.Service
	round   uint32
}

// route is one round's forwarding assignment on a daemon, created by
// mix.round.route and resolved exactly once (completion or abort).
type route struct {
	successor    string // next mixer's RPC address; "" for the last server
	cdnAddr      string // cdn.publish address; set only on the last server
	numMailboxes uint32
	chunkSize    int

	done     chan struct{} // closed when err is final
	err      error
	resolved bool
}

// Successor dial retry schedule: forwarding a round is the first traffic a
// fresh chain sees, so transient dial failures (successor still binding,
// connection racing a restart) get a few backed-off attempts before the
// round aborts.
const (
	forwardDialAttempts = 4
	forwardDialBackoff  = 100 * time.Millisecond
)

// waitPollInterval bounds how long one mix.round.wait call parks in the
// daemon before replying "not done yet"; the client re-polls. Bounding the
// park keeps Server.Close from waiting on a handler that would otherwise
// block until a round that will never finish.
const waitPollInterval = 500 * time.Millisecond

type routeArgs struct {
	Service      wire.Service `json:"service"`
	Round        uint32       `json:"round"`
	NumMailboxes uint32       `json:"num_mailboxes"`
	ChunkSize    int          `json:"chunk_size"`
	Successor    string       `json:"successor,omitempty"`
	CDNAddr      string       `json:"cdn_addr,omitempty"`
}

type abortArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
	Reason  string       `json:"reason,omitempty"`
}

type waitReply struct {
	Done  bool   `json:"done"`
	Error string `json:"error,omitempty"`
}

// MixerDaemon is the RPC-facing state of one mixer daemon: the relay-mode
// outbox, the chain-forward routes, and cached connections to successors.
// RegisterMixer returns it so daemon binaries and tests can inspect
// round-state hygiene.
type MixerDaemon struct {
	m *mixnet.Server

	mu     sync.Mutex
	outbox map[outKey][][]byte
	routes map[outKey]*route
	peers  map[string]*Client
}

// PendingRoutes returns the number of rounds with an unresolved or
// un-erased forwarding route. After a round closes (or aborts and
// closes), this must drop back toward zero — leaked routes are leaked
// round state.
func (d *MixerDaemon) PendingRoutes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.routes)
}

// PendingOutboxes returns the number of relay-mode output batches parked
// for mix.stream.pull.
func (d *MixerDaemon) PendingOutboxes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.outbox)
}

// peer returns a cached RPC client for a successor (or CDN) address.
// Connections are reused across rounds; the Client reconnects lazily
// after failures.
func (d *MixerDaemon) peer(addr string) *Client {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.peers[addr]
	if !ok {
		c = Dial(addr)
		d.peers[addr] = c
	}
	return c
}

// resolve finalizes a route exactly once; later resolutions (e.g. an
// abort racing the forwarding goroutine) are dropped.
func (d *MixerDaemon) resolve(rt *route, err error) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if rt.resolved {
		return false
	}
	rt.resolved = true
	rt.err = err
	close(rt.done)
	return true
}

// finish resolves the route with the outcome of this daemon's data-plane
// role. On failure it also propagates an abort to the round's successor,
// so the downstream chain stops waiting for chunks that will never come.
func (d *MixerDaemon) finish(k outKey, rt *route, err error) {
	if !d.resolve(rt, err) || err == nil {
		return
	}
	if rt.successor != "" {
		go func() {
			_ = d.peer(rt.successor).Call("mix.round.abort", abortArgs{
				Service: k.service, Round: k.round, Reason: err.Error(),
			}, nil)
		}()
	}
}

// forward is the daemon's data-plane role for one chain-forward round,
// run on its own goroutine once the upstream closes the stream: finish
// the local mix (noise + shuffle), then either push the output to the
// successor in chunks or — on the last server — build the mailboxes and
// publish them to the CDN.
func (d *MixerDaemon) forward(k outKey, rt *route) {
	out, err := d.m.StreamEnd(k.service, k.round)
	if err != nil {
		d.finish(k, rt, err)
		return
	}
	if rt.successor != "" {
		d.finish(k, rt, d.pushDownstream(k, rt, out))
		return
	}
	boxes, err := mixnet.BuildMailboxes(k.service, rt.numMailboxes, out)
	if err != nil {
		d.finish(k, rt, err)
		return
	}
	d.finish(k, rt, PublishMailboxes(d.peer(rt.cdnAddr), k.service, k.round, boxes))
}

// pushDownstream streams a finished batch to the round's successor. The
// opening call retries with backoff (the successor may still be coming
// up, and an unsent begin is safe to repeat). The data calls are sent AT
// MOST ONCE — a transparent retry after a lost reply would append a
// chunk twice and corrupt the batch — so any mid-stream transport
// failure aborts the round instead, and the next round carries the
// traffic.
func (d *MixerDaemon) pushDownstream(k outKey, rt *route, out [][]byte) error {
	c := d.peer(rt.successor)
	var err error
	for attempt := 0; attempt < forwardDialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(forwardDialBackoff << (attempt - 1))
		}
		err = c.CallOnce("mix.stream.begin", mixArgs{
			Service: k.service, Round: k.round, NumMailboxes: rt.numMailboxes,
		}, nil)
		if err == nil || !errors.Is(err, ErrTransport) {
			// Handler errors won't improve with a re-send; only
			// transport failures (successor still binding, stale
			// connection) are worth the backoff.
			break
		}
	}
	if err != nil && strings.Contains(err.Error(), "stream already in progress") {
		// A begin from an earlier attempt executed but its reply was
		// lost. This daemon is the round's only legitimate upstream, so
		// the open stream is ours: proceed.
		err = nil
	}
	if err != nil {
		return fmt.Errorf("rpc: opening stream to successor %s: %w", rt.successor, err)
	}
	chunkSize := rt.chunkSize
	if chunkSize <= 0 {
		chunkSize = mixnet.DefaultStreamChunk
	}
	if chunkSize > streamPullMax {
		chunkSize = streamPullMax
	}
	for lo := 0; lo < len(out); lo += chunkSize {
		hi := min(lo+chunkSize, len(out))
		if err := c.CallOnce("mix.stream.chunk", mixArgs{
			Service: k.service, Round: k.round, Batch: out[lo:hi],
		}, nil); err != nil {
			return fmt.Errorf("rpc: forwarding chunk to %s: %w", rt.successor, err)
		}
	}
	if err := c.CallOnce("mix.stream.end", roundArgs{Service: k.service, Round: k.round}, nil); err != nil {
		return fmt.Errorf("rpc: closing stream to %s: %w", rt.successor, err)
	}
	return nil
}

// RegisterMixer exposes a mixnet.Server over RPC: the legacy full-batch
// surface, the relay streaming surface, and the chain-forward data plane
// described at the top of this file.
func RegisterMixer(s *Server, m *mixnet.Server) *MixerDaemon {
	d := &MixerDaemon{
		m:      m,
		outbox: make(map[outKey][][]byte),
		routes: make(map[outKey]*route),
		peers:  make(map[string]*Client),
	}

	HandleFunc(s, "mix.info", func(struct{}) (any, error) {
		return MixerInfo{
			Name:          m.Name,
			Position:      m.Position,
			SigningKey:    m.SigningKey(),
			AddFriendMu:   m.AddFriendNoise.Mu,
			DialingMu:     m.DialingNoise.Mu,
			Streaming:     true,
			StreamVersion: StreamVersionForward,
		}, nil
	})
	HandleFunc(s, "mix.newround", func(a roundArgs) (any, error) {
		return m.NewRound(a.Service, a.Round)
	})
	HandleFunc(s, "mix.setdownstream", func(a downstreamArgs) (any, error) {
		return nil, m.SetDownstreamKeys(a.Service, a.Round, a.Keys)
	})
	HandleFunc(s, "mix.preparenoise", func(a mixArgs) (any, error) {
		return nil, m.PrepareNoise(a.Service, a.Round, a.NumMailboxes)
	})
	HandleFunc(s, "mix.mix", func(a mixArgs) (any, error) {
		return m.Mix(a.Service, a.Round, a.NumMailboxes, a.Batch)
	})
	HandleFunc(s, "mix.round.route", func(a routeArgs) (any, error) {
		if !m.RoundOpen(a.Service, a.Round) {
			return nil, fmt.Errorf("rpc: round %d (%s) not open", a.Round, a.Service)
		}
		if a.Successor == "" && a.CDNAddr == "" {
			return nil, fmt.Errorf("rpc: round %d (%s): route needs a successor or a CDN address", a.Round, a.Service)
		}
		k := outKey{a.Service, a.Round}
		d.mu.Lock()
		defer d.mu.Unlock()
		if rt, ok := d.routes[k]; ok {
			// Idempotent re-announce (the coordinator's call layer may
			// retry a lost reply); a CONFLICTING route is an error.
			if rt.successor == a.Successor && rt.cdnAddr == a.CDNAddr &&
				rt.numMailboxes == a.NumMailboxes && rt.chunkSize == a.ChunkSize {
				return nil, nil
			}
			return nil, fmt.Errorf("rpc: round %d (%s) already routed elsewhere", a.Round, a.Service)
		}
		d.routes[k] = &route{
			successor:    a.Successor,
			cdnAddr:      a.CDNAddr,
			numMailboxes: a.NumMailboxes,
			chunkSize:    a.ChunkSize,
			done:         make(chan struct{}),
		}
		return nil, nil
	})
	HandleFunc(s, "mix.round.wait", func(a roundArgs) (any, error) {
		k := outKey{a.Service, a.Round}
		d.mu.Lock()
		rt := d.routes[k]
		d.mu.Unlock()
		if rt == nil {
			return nil, fmt.Errorf("rpc: round %d (%s) has no route", a.Round, a.Service)
		}
		select {
		case <-rt.done:
			reply := waitReply{Done: true}
			if rt.err != nil {
				reply.Error = rt.err.Error()
			}
			return reply, nil
		case <-time.After(waitPollInterval):
			return waitReply{}, nil
		}
	})
	HandleFunc(s, "mix.round.abort", func(a abortArgs) (any, error) {
		k := outKey{a.Service, a.Round}
		_ = m.StreamAbort(a.Service, a.Round)
		d.mu.Lock()
		delete(d.outbox, k)
		rt := d.routes[k]
		d.mu.Unlock()
		if rt != nil {
			d.finish(k, rt, fmt.Errorf("aborted: %s", a.Reason))
		}
		return nil, nil
	})
	HandleFunc(s, "mix.stream.begin", func(a mixArgs) (any, error) {
		return nil, m.StreamBegin(a.Service, a.Round, a.NumMailboxes)
	})
	HandleFunc(s, "mix.stream.chunk", func(a mixArgs) (any, error) {
		return nil, m.StreamChunk(a.Service, a.Round, a.Batch)
	})
	HandleFunc(s, "mix.stream.end", func(a roundArgs) (any, error) {
		k := outKey{a.Service, a.Round}
		d.mu.Lock()
		rt := d.routes[k]
		d.mu.Unlock()
		if rt != nil {
			// Chain-forward: acknowledge intake now; the mix and the
			// downstream push happen on our own goroutine, and the
			// outcome is reported through mix.round.wait.
			go d.forward(k, rt)
			return streamEndReply{Forwarded: true}, nil
		}
		out, err := m.StreamEnd(a.Service, a.Round)
		if err != nil {
			return nil, err
		}
		d.mu.Lock()
		d.outbox[k] = out
		d.mu.Unlock()
		return streamEndReply{Total: len(out)}, nil
	})
	HandleFunc(s, "mix.stream.pull", func(a streamPullArgs) (any, error) {
		if a.Max <= 0 || a.Max > streamPullMax {
			a.Max = streamPullMax
		}
		d.mu.Lock()
		defer d.mu.Unlock()
		k := outKey{a.Service, a.Round}
		out, ok := d.outbox[k]
		if !ok {
			return nil, fmt.Errorf("rpc: no pending stream output for round %d (%s)", a.Round, a.Service)
		}
		if a.Offset < 0 || a.Offset > len(out) {
			return nil, fmt.Errorf("rpc: stream pull offset %d out of range", a.Offset)
		}
		hi := a.Offset + a.Max
		if hi >= len(out) {
			hi = len(out)
			defer delete(d.outbox, k) // last chunk: the batch is handed over
		}
		return out[a.Offset:hi], nil
	})
	HandleFunc(s, "mix.stream.abort", func(a roundArgs) (any, error) {
		d.mu.Lock()
		delete(d.outbox, outKey{a.Service, a.Round})
		d.mu.Unlock()
		return nil, m.StreamAbort(a.Service, a.Round)
	})
	HandleFunc(s, "mix.closeround", func(a roundArgs) (any, error) {
		k := outKey{a.Service, a.Round}
		d.mu.Lock()
		delete(d.outbox, k)
		rt := d.routes[k]
		delete(d.routes, k)
		d.mu.Unlock()
		if rt != nil {
			// A still-unresolved route at close time is an abandoned
			// round; unblock any waiter.
			d.resolve(rt, fmt.Errorf("rpc: round %d (%s) closed", a.Round, a.Service))
		}
		m.CloseRound(a.Service, a.Round)
		return nil, nil
	})
	return d
}

// RegisterLegacyMixer exposes only the pre-streaming surface of a mixer
// (full-batch mix.mix, StreamVersionNone). It exists so tests and the
// bench harness can stand in for a daemon built before the streaming
// RPCs and prove the rolling-upgrade fallback paths.
func RegisterLegacyMixer(s *Server, m *mixnet.Server) {
	HandleFunc(s, "mix.info", func(struct{}) (any, error) {
		return MixerInfo{
			Name:        m.Name,
			Position:    m.Position,
			SigningKey:  m.SigningKey(),
			AddFriendMu: m.AddFriendNoise.Mu,
			DialingMu:   m.DialingNoise.Mu,
		}, nil
	})
	HandleFunc(s, "mix.newround", func(a roundArgs) (any, error) {
		return m.NewRound(a.Service, a.Round)
	})
	HandleFunc(s, "mix.setdownstream", func(a downstreamArgs) (any, error) {
		return nil, m.SetDownstreamKeys(a.Service, a.Round, a.Keys)
	})
	HandleFunc(s, "mix.mix", func(a mixArgs) (any, error) {
		return m.Mix(a.Service, a.Round, a.NumMailboxes, a.Batch)
	})
	HandleFunc(s, "mix.closeround", func(a roundArgs) (any, error) {
		m.CloseRound(a.Service, a.Round)
		return nil, nil
	})
}

// ---- CDN publish surface ----

// publishBudget bounds the mailbox bytes carried by one cdn.publish call,
// keeping frames far below the transport cap after JSON/base64 inflation.
const publishBudget = 4 << 20

type cdnBoxFragment struct {
	ID   uint32 `json:"id"`
	Data []byte `json:"data"`
}

type cdnPublishArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
	// Boxes are mailbox fragments; fragments with the same ID across
	// calls concatenate in arrival order, so one huge mailbox can span
	// frames. An entry with empty Data still creates the mailbox.
	Boxes []cdnBoxFragment `json:"boxes"`
	// Done commits the staged round to the store.
	Done bool `json:"done"`
	// Abort discards the staged round (publisher failed mid-round).
	Abort bool `json:"abort,omitempty"`
}

// stagingLimit bounds how many half-published rounds the cdn.publish
// surface holds. A publisher that dies between fragments never sends
// Done or Abort, so without a cap its partial mailboxes would accumulate
// forever on a long-lived frontend; beyond the cap the oldest staged
// round is dropped (that round already failed — its publisher is gone).
const stagingLimit = 8

// RegisterCDN exposes a cdn.Store's publish surface over RPC: the last
// mixer of a chain-forward round streams the mailboxes here in bounded
// frames instead of relaying them through the coordinator. Fetching
// stays on the frontend's cdn.fetch.
func RegisterCDN(s *Server, store *cdn.Store) {
	var mu sync.Mutex
	staging := make(map[outKey]map[uint32][]byte)
	var order []outKey

	drop := func(k outKey) {
		if _, ok := staging[k]; !ok {
			return
		}
		delete(staging, k)
		for i, o := range order {
			if o == k {
				order = append(order[:i], order[i+1:]...)
				break
			}
		}
	}

	HandleFunc(s, "cdn.publish", func(a cdnPublishArgs) (any, error) {
		k := outKey{a.Service, a.Round}
		mu.Lock()
		defer mu.Unlock()
		if a.Abort {
			drop(k)
			return nil, nil
		}
		boxes, ok := staging[k]
		if !ok {
			boxes = make(map[uint32][]byte)
			staging[k] = boxes
			order = append(order, k)
			for len(order) > stagingLimit {
				drop(order[0])
			}
		}
		for _, frag := range a.Boxes {
			boxes[frag.ID] = append(boxes[frag.ID], frag.Data...)
		}
		if !a.Done {
			return nil, nil
		}
		drop(k)
		return nil, store.PublishOwned(a.Service, a.Round, boxes)
	})
}

// PublishMailboxes streams a round's mailboxes to a cdn.publish endpoint
// in budget-bounded calls, splitting oversized mailboxes across frames.
// Mailboxes are sent in ID order so runs are reproducible. Fragments are
// sent AT MOST ONCE (a transparent retry after a lost reply would
// concatenate a fragment twice); on a mid-publish failure a best-effort
// abort tells the endpoint to discard the staged round.
func PublishMailboxes(c *Client, service wire.Service, round uint32, mailboxes map[uint32][]byte) error {
	ids := make([]uint32, 0, len(mailboxes))
	for id := range mailboxes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var frags []cdnBoxFragment
	var pending int
	flush := func(done bool) error {
		if !done && len(frags) == 0 {
			return nil
		}
		err := c.CallOnce("cdn.publish", cdnPublishArgs{
			Service: service, Round: round, Boxes: frags, Done: done,
		}, nil)
		frags, pending = nil, 0
		return err
	}
	publish := func() error {
		for _, id := range ids {
			data := mailboxes[id]
			for {
				n := min(len(data), publishBudget-pending)
				frags = append(frags, cdnBoxFragment{ID: id, Data: data[:n]})
				data = data[n:]
				pending += n
				if len(data) == 0 {
					break
				}
				if err := flush(false); err != nil {
					return err
				}
			}
			if pending >= publishBudget {
				if err := flush(false); err != nil {
					return err
				}
			}
		}
		return flush(true)
	}
	if err := publish(); err != nil {
		_ = c.Call("cdn.publish", cdnPublishArgs{Service: service, Round: round, Abort: true}, nil)
		return err
	}
	return nil
}
