package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"alpenhorn/internal/entry"
	"alpenhorn/internal/wire"
)

// The entry.replicate surface is how one coordinator drives N entry
// frontends. It is a SERVER-PLANE surface like cdn.publish: the transport
// carries no authentication, so deployments must serve it on a listener
// kept away from clients — any client able to call entry.replicate.open
// could announce forged rounds.
//
// The coordinator replays every announcement (opens, publishes) to every
// frontend over this surface, in one serialized order, so the frontends'
// event logs assign IDENTICAL cursors: one cursor namespace across the
// tier. That is what makes client failover seamless — a client that loses
// its frontend re-parks entry.events on any other frontend with the same
// cursor and resumes mid-round, no snapshot reset.
//
// Intake stays local: each frontend admits its own sub-batch, and at
// close the coordinator either pulls the batch (relayed data plane) or —
// chain-forward — tells the frontend to deal its sub-batch into position
// 0's shard set itself (entry.replicate.feed), tagged with the frontend's
// upstream index so the shards' counted NumUpstream fan-in merges N
// feeders exactly once each.

type replicateOpenArgs struct {
	// Settings is the round's canonical wire.RoundSettings encoding —
	// self-authenticating, so the replica (and its clients) verify it
	// against pinned keys regardless of who delivered it.
	Settings []byte `json:"settings"`
}

type replicateCloseReply struct {
	Size int `json:"size"`
}

type replicateFeedArgs struct {
	Service      wire.Service `json:"service"`
	Round        uint32       `json:"round"`
	NumMailboxes uint32       `json:"num_mailboxes"`
	ChunkSize    int          `json:"chunk_size"`
	// Shards is position 0's full shard set; the frontend deals chunk i of
	// its sub-batch to shard i mod N, the same deterministic deal the
	// daemons and the coordinator use.
	Shards []string `json:"shards"`
	// Upstream is this frontend's index among the round's feeders, quoted
	// in each mix.stream.end so the shards' fan-in counts it once.
	Upstream int `json:"upstream"`
}

type replicaState struct {
	e *entry.Server

	mu    sync.Mutex
	stash map[stashKey][][]byte
	peers map[string]*Client
}

type stashKey struct {
	service wire.Service
	round   uint32
}

func (st *replicaState) peer(addr string) *Client {
	st.mu.Lock()
	defer st.mu.Unlock()
	c, ok := st.peers[addr]
	if !ok {
		c = Dial(addr)
		st.peers[addr] = c
	}
	return c
}

// closeIntake closes the round on the local entry server and stashes the
// batch, idempotently: a re-sent close (reply lost) finds the stash and
// reports the same size.
func (st *replicaState) closeIntake(service wire.Service, round uint32) (int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	key := stashKey{service, round}
	if batch, ok := st.stash[key]; ok {
		return len(batch), nil
	}
	batch, err := st.e.CloseRound(service, round)
	if err != nil {
		return 0, err
	}
	st.stash[key] = batch
	return len(batch), nil
}

// takeStash consumes the stashed batch for feeding; a second take fails
// loudly rather than feeding the chain twice.
func (st *replicaState) takeStash(service wire.Service, round uint32) ([][]byte, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	key := stashKey{service, round}
	batch, ok := st.stash[key]
	if !ok {
		return nil, fmt.Errorf("rpc: no stashed batch for %v round %d (not closed, or already fed)", service, round)
	}
	delete(st.stash, key)
	return batch, nil
}

// feed deals the frontend's sub-batch across position 0's shard set. The
// shards' routes carry NumUpstream = #frontends, so the begins JOIN the
// streams the other feeders opened and each end closes exactly one of the
// counted upstream slots.
func (st *replicaState) feed(a replicateFeedArgs, batch [][]byte) error {
	shards := make([]*Client, len(a.Shards))
	for i, addr := range a.Shards {
		shards[i] = st.peer(addr)
	}
	chunkSize := a.ChunkSize
	if chunkSize <= 0 {
		return errors.New("rpc: replicate feed needs a chunk size")
	}
	for _, c := range shards {
		if err := c.CallOnce("mix.stream.begin", mixArgs{
			Service: a.Service, Round: a.Round, NumMailboxes: a.NumMailboxes,
		}, nil); err != nil {
			return fmt.Errorf("rpc: replicate feed begin: %w", err)
		}
	}
	for i, lo := 0, 0; lo < len(batch); i, lo = i+1, lo+chunkSize {
		hi := lo + chunkSize
		if hi > len(batch) {
			hi = len(batch)
		}
		if err := shards[i%len(shards)].CallOnce("mix.stream.chunk", mixArgs{
			Service: a.Service, Round: a.Round, Batch: batch[lo:hi],
		}, nil); err != nil {
			return fmt.Errorf("rpc: replicate feed chunk: %w", err)
		}
	}
	for s, c := range shards {
		var reply streamEndReply
		if err := c.CallOnce("mix.stream.end", roundArgs{
			Service: a.Service, Round: a.Round, Upstream: a.Upstream,
		}, &reply); err != nil {
			return fmt.Errorf("rpc: replicate feed end (shard %d): %w", s, err)
		}
		if !reply.Forwarded {
			// Without a forwarding route the daemon would expect this
			// feeder to pull the output, which is the coordinator's job,
			// not a frontend's.
			return fmt.Errorf("rpc: replicate feed: shard %d has no forwarding route", s)
		}
	}
	return nil
}

// RegisterEntryReplica exposes an entry server to a remote coordinator:
// announcement replay (open/published), intake close, and sub-batch
// dealing. Serve it on the server-plane listener (with RegisterCDN),
// never on the client-facing one.
func RegisterEntryReplica(s *Server, e *entry.Server) {
	st := &replicaState{
		e:     e,
		stash: make(map[stashKey][][]byte),
		peers: make(map[string]*Client),
	}
	HandleFunc(s, "entry.replicate.open", func(a replicateOpenArgs) (any, error) {
		rs, err := wire.UnmarshalRoundSettings(a.Settings)
		if err != nil {
			return nil, fmt.Errorf("rpc: replicate open: %w", err)
		}
		// Idempotent under the transport's reconnect-and-resend: an open
		// the replica already holds (byte-identical) is acknowledged, so a
		// lost reply cannot desynchronize the cursor namespace; a
		// CONFLICTING duplicate is refused.
		if existing, err := e.Settings(rs.Service, rs.Round); err == nil {
			if bytes.Equal(existing.Marshal(), a.Settings) {
				return nil, nil
			}
			return nil, fmt.Errorf("rpc: replicate open: conflicting settings for %v round %d", rs.Service, rs.Round)
		}
		return nil, e.OpenRound(rs)
	})
	HandleFunc(s, "entry.replicate.close", func(a roundArgs) (any, error) {
		n, err := st.closeIntake(a.Service, a.Round)
		if err != nil {
			return nil, err
		}
		return replicateCloseReply{Size: n}, nil
	})
	HandleFunc(s, "entry.replicate.batch", func(a roundArgs) (any, error) {
		// Non-consuming (idempotent): the stash lives until the round's
		// publish announcement retires it below.
		st.mu.Lock()
		batch, ok := st.stash[stashKey{a.Service, a.Round}]
		st.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("rpc: no stashed batch for %v round %d", a.Service, a.Round)
		}
		return batch, nil
	})
	HandleFunc(s, "entry.replicate.feed", func(a replicateFeedArgs) (any, error) {
		batch, err := st.takeStash(a.Service, a.Round)
		if err != nil {
			return nil, err
		}
		return nil, st.feed(a, batch)
	})
	HandleFunc(s, "entry.replicate.published", func(a roundArgs) (any, error) {
		// Idempotent: announce once per round no matter how the call is
		// duplicated — the log must stay identical across replicas.
		if e.Status(a.Service).LatestPublished >= a.Round {
			return nil, nil
		}
		e.AnnouncePublished(a.Service, a.Round)
		st.mu.Lock()
		delete(st.stash, stashKey{a.Service, a.Round})
		st.mu.Unlock()
		return nil, nil
	})
}

// EntryReplicaClient is the coordinator's handle on a remote entry
// frontend. It satisfies coordinator.Frontend (announcement replay and
// relayed-plane batch collection) and coordinator.FrontendFeeder
// (chain-forward sub-batch dealing).
type EntryReplicaClient struct {
	addr string
	c    *Client
}

// DialEntryReplica connects to a frontend's server-plane listener.
func DialEntryReplica(addr string) *EntryReplicaClient {
	return &EntryReplicaClient{addr: addr, c: Dial(addr)}
}

// Addr returns the replica's server-plane address.
func (r *EntryReplicaClient) Addr() string { return r.addr }

// OpenRound replays a round-open announcement (idempotent server-side).
func (r *EntryReplicaClient) OpenRound(settings *wire.RoundSettings) error {
	return r.c.Call("entry.replicate.open", replicateOpenArgs{Settings: settings.Marshal()}, nil)
}

// AnnouncePublished replays a publish announcement (idempotent
// server-side). Mirroring entry.Server's fire-and-forget signature, a
// delivery failure is dropped: the frontend's poll fallback still reports
// the round via frontend.status served from its own CDN view, and its
// event-stream clients catch up at the next open.
func (r *EntryReplicaClient) AnnouncePublished(service wire.Service, round uint32) {
	_ = r.c.Call("entry.replicate.published", roundArgs{Service: service, Round: round}, nil)
}

// CloseRound closes the frontend's intake and pulls its sub-batch — the
// relayed data plane, where the coordinator concatenates sub-batches and
// drives the chain itself.
func (r *EntryReplicaClient) CloseRound(service wire.Service, round uint32) ([][]byte, error) {
	if _, err := r.CloseIntake(service, round); err != nil {
		return nil, err
	}
	var batch [][]byte
	if err := r.c.Call("entry.replicate.batch", roundArgs{Service: service, Round: round}, &batch); err != nil {
		return nil, err
	}
	return batch, nil
}

// CloseIntake closes the frontend's intake, leaving the sub-batch stashed
// frontend-side for FeedBatch — the chain-forward plane, where the batch
// never crosses the coordinator.
func (r *EntryReplicaClient) CloseIntake(service wire.Service, round uint32) (int, error) {
	var reply replicateCloseReply
	if err := r.c.Call("entry.replicate.close", roundArgs{Service: service, Round: round}, &reply); err != nil {
		return 0, err
	}
	return reply.Size, nil
}

// FeedBatch makes the frontend deal its stashed sub-batch across position
// 0's shard set as upstream feeder `upstream`. At most once: the stash is
// consumed, so a duplicated feed cannot put a sub-batch in the round
// twice; a failure aborts the round (the next round carries the traffic).
func (r *EntryReplicaClient) FeedBatch(service wire.Service, round uint32, numMailboxes uint32, chunkSize int, shards []string, upstream int) error {
	return r.c.CallOnce("entry.replicate.feed", replicateFeedArgs{
		Service: service, Round: round,
		NumMailboxes: numMailboxes, ChunkSize: chunkSize,
		Shards: shards, Upstream: upstream,
	}, nil)
}

// CallCount reports how many times this client invoked a method.
func (r *EntryReplicaClient) CallCount(method string) uint64 { return r.c.CallCount(method) }

// Close closes the client's connection.
func (r *EntryReplicaClient) Close() { r.c.Close() }
