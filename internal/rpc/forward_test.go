package rpc_test

import (
	"bytes"
	"context"
	"crypto/rand"
	"errors"
	mathrand "math/rand"
	"sync/atomic"
	"testing"

	"alpenhorn/internal/bloom"
	"alpenhorn/internal/cdn"
	"alpenhorn/internal/coordinator"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/keywheel"
	"alpenhorn/internal/mixnet"
	"alpenhorn/internal/noise"
	"alpenhorn/internal/onionbox"
	"alpenhorn/internal/rpc"
	"alpenhorn/internal/wire"
)

// mixerFleet is a chain of mixer daemons listening on localhost TCP, plus
// the coordinator-side clients for them.
type mixerFleet struct {
	servers []*mixnet.Server
	daemons []*rpc.MixerDaemon
	rpcSrvs []*rpc.Server
	addrs   []string
	clients []*rpc.MixerClient
}

// startFleet launches n mixer daemons over TCP. rand may be nil
// (crypto/rand) or a per-position deterministic source factory.
func startFleet(t *testing.T, n int, nz noise.Laplace, randFor func(pos int) mathrand.Source) *mixerFleet {
	t.Helper()
	f := &mixerFleet{}
	for i := 0; i < n; i++ {
		cfg := mixnet.Config{
			Name: "m", Position: i, ChainLength: n,
			AddFriendNoise: &nz, DialingNoise: &nz,
		}
		if randFor != nil {
			cfg.Rand = &seededReader{rng: mathrand.New(randFor(i))}
			cfg.Parallelism = 1 // deterministic rand read order
		}
		m, err := mixnet.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer()
		d := rpc.RegisterMixer(srv, m)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		mc, err := rpc.DialMixer(addr)
		if err != nil {
			t.Fatal(err)
		}
		f.servers = append(f.servers, m)
		f.daemons = append(f.daemons, d)
		f.rpcSrvs = append(f.rpcSrvs, srv)
		f.addrs = append(f.addrs, addr)
		f.clients = append(f.clients, mc)
	}
	return f
}

// seededReader is a deterministic, non-thread-safe randomness source (the
// mixnet server wraps it in its serializing reader).
type seededReader struct{ rng *mathrand.Rand }

func (r *seededReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(r.rng.Intn(256))
	}
	return len(p), nil
}

// startCDN serves cdn.publish + a store on localhost TCP.
func startCDN(t *testing.T) (*cdn.Store, string) {
	t.Helper()
	store, addr, _ := startCDNDaemon(t)
	return store, addr
}

// startCDNDaemon is startCDN exposing the daemon for seal/staging stats.
func startCDNDaemon(t *testing.T) (*cdn.Store, string, *rpc.CDNDaemon) {
	t.Helper()
	store := cdn.NewStore(0)
	srv := rpc.NewServer()
	d := rpc.RegisterCDN(srv, store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return store, addr, d
}

// forwardCoordinator assembles a chain-forward coordinator over a fleet.
func forwardCoordinator(f *mixerFleet, e *entry.Server, store *cdn.Store, cdnAddr string) *coordinator.Coordinator {
	coord := &coordinator.Coordinator{
		Entry: e, CDN: store,
		TargetRequestsPerMailbox: 40,
		ChainForward:             true,
		CDNAddr:                  cdnAddr,
	}
	for _, mc := range f.clients {
		coord.Mixers = append(coord.Mixers, mc)
	}
	return coord
}

// submitTokens wraps one dial onion per token (round-robin mailboxes,
// using rnd for the onion encryption) and submits them.
func submitTokens(t *testing.T, e *entry.Server, settings *wire.RoundSettings, tokens [][]byte, rnd *mathrand.Rand) int {
	t.Helper()
	hops := make([]*onionbox.PublicKey, len(settings.Mixers))
	for i, rk := range settings.Mixers {
		pk, err := onionbox.UnmarshalPublicKey(rk.OnionKey)
		if err != nil {
			t.Fatal(err)
		}
		hops[i] = pk
	}
	var src = rand.Reader
	if rnd != nil {
		src = &seededReader{rng: rnd}
	}
	total := 0
	for i, tok := range tokens {
		payload := (&wire.MixPayload{Mailbox: uint32(i) % settings.NumMailboxes, Body: tok}).Marshal()
		onion, err := onionbox.WrapOnion(src, hops, payload)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Submit(settings.Service, settings.Round, onion); err != nil {
			t.Fatal(err)
		}
		total += len(onion)
	}
	return total
}

func makeTestTokens(n int) [][]byte {
	tokens := make([][]byte, n)
	for i := range tokens {
		tok := make([]byte, keywheel.TokenSize)
		tok[0], tok[1], tok[2] = byte(i), byte(i>>8), 0xEF
		tokens[i] = tok
	}
	return tokens
}

func assertTokensDelivered(t *testing.T, store *cdn.Store, round uint32, settings *wire.RoundSettings, tokens [][]byte) {
	t.Helper()
	for i, tok := range tokens {
		mb := uint32(i) % settings.NumMailboxes
		box, err := store.Fetch(wire.Dialing, round, mb)
		if err != nil {
			t.Fatal(err)
		}
		f, err := bloom.Unmarshal(box)
		if err != nil {
			t.Fatal(err)
		}
		if !f.Test(tok) {
			t.Fatalf("token %d missing from mailbox %d", i, mb)
		}
	}
}

// TestChainForwardOverTCP is the acceptance test for the control-plane /
// data-plane split: a round over real TCP daemons completes with the
// coordinator exchanging only control messages — the batch reaches the
// first mixer once, nothing is relayed downstream or pulled back, and the
// mailboxes appear in the CDN via the last daemon's cdn.publish. The
// transport byte-counters on the coordinator's connections are the proof.
func TestChainForwardOverTCP(t *testing.T) {
	nz := noise.Laplace{Mu: 2, B: 0}
	f := startFleet(t, 3, nz, nil)
	store, cdnAddr := startCDN(t)
	e := entry.New()
	coord := forwardCoordinator(f, e, store, cdnAddr)
	coord.ChunkSize = 64
	coord.SetExpectedVolume(wire.Dialing, 300)

	settings, err := coord.OpenDialingRound(1)
	if err != nil {
		t.Fatal(err)
	}
	if settings.NumMailboxes < 2 {
		t.Fatalf("want a multi-mailbox round, got K=%d", settings.NumMailboxes)
	}
	tokens := makeTestTokens(300)
	batchBytes := submitTokens(t, e, settings, tokens, nil)

	mailboxes, err := coord.CloseRound(wire.Dialing, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mailboxes != nil {
		t.Fatal("chain-forward CloseRound returned mailboxes through the coordinator")
	}
	if !store.Published(wire.Dialing, 1) {
		t.Fatal("last daemon did not publish to the CDN")
	}
	assertTokensDelivered(t, store, 1, settings, tokens)

	// The coordinator moved control messages only: no full-batch Mix, no
	// output pulls, and no batch chunks to anyone but the first mixer.
	for i, mc := range f.clients {
		if n := mc.CallCount("mix.mix"); n != 0 {
			t.Errorf("mixer %d: %d mix.mix calls on the happy path", i, n)
		}
		if n := mc.CallCount("mix.stream.pull"); n != 0 {
			t.Errorf("mixer %d: %d mix.stream.pull calls on the happy path", i, n)
		}
		if i > 0 {
			if n := mc.CallCount("mix.stream.chunk"); n != 0 {
				t.Errorf("mixer %d: coordinator pushed %d batch chunks to a non-first mixer", i, n)
			}
		}
	}
	// Byte accounting: the entry batch flows to mixer 0 once; every other
	// coordinator connection carries a few KB of keys and control calls.
	const controlBudget = 32 << 10
	st0 := f.clients[0].TransportStats()
	if st0.BytesSent < uint64(batchBytes) {
		t.Errorf("mixer 0: coordinator sent %d bytes, want >= batch (%d)", st0.BytesSent, batchBytes)
	}
	for i, mc := range f.clients {
		st := mc.TransportStats()
		if st.BytesReceived > controlBudget {
			t.Errorf("mixer %d: coordinator received %d bytes, want control-only (< %d)", i, st.BytesReceived, controlBudget)
		}
		if i > 0 && st.BytesSent > controlBudget {
			t.Errorf("mixer %d: coordinator sent %d bytes, want control-only (< %d)", i, st.BytesSent, controlBudget)
		}
	}
	// No leaked round state on the daemons.
	for i, d := range f.daemons {
		if n := d.PendingRoutes(); n != 0 {
			t.Errorf("daemon %d: %d routes leak after the round", i, n)
		}
		if n := d.PendingOutboxes(); n != 0 {
			t.Errorf("daemon %d: %d outboxes leak after the round", i, n)
		}
		if f.servers[i].RoundOpen(wire.Dialing, 1) {
			t.Errorf("daemon %d: round key survives close", i)
		}
	}
}

// TestChainForwardAbortMidChain kills the middle daemon while the batch is
// streaming through it and checks the failure is clean: StreamAbort
// propagates (down the chain and back to the coordinator), the round
// fails without publishing, no round state leaks on the survivors, and —
// after the daemon comes back — the next round succeeds.
func TestChainForwardAbortMidChain(t *testing.T) {
	nz := noise.Laplace{Mu: 2, B: 0}
	f := startFleet(t, 3, nz, nil)
	store, cdnAddr := startCDN(t)
	e := entry.New()
	coord := forwardCoordinator(f, e, store, cdnAddr)
	coord.ChunkSize = 8 // many chunks per hop, so the kill lands mid-stream
	coord.SetExpectedVolume(wire.Dialing, 120)

	// Sabotage the middle daemon: after two forwarded chunks arrive, it
	// starts failing and its server goes down — a crash mid-stream.
	var chunks atomic.Int32
	rpc.HandleFunc(f.rpcSrvs[1], "mix.stream.chunk", func(a struct {
		Service wire.Service `json:"service"`
		Round   uint32       `json:"round"`
		Batch   [][]byte     `json:"batch"`
	}) (any, error) {
		if chunks.Add(1) > 2 {
			go f.rpcSrvs[1].Close()
			return nil, errors.New("mixer 1 crashed mid-stream")
		}
		return nil, f.servers[1].StreamChunk(a.Service, a.Round, a.Batch)
	})

	settings, err := coord.OpenDialingRound(1)
	if err != nil {
		t.Fatal(err)
	}
	tokens := makeTestTokens(120)
	submitTokens(t, e, settings, tokens, nil)

	if _, err := coord.CloseRound(wire.Dialing, 1); err == nil {
		t.Fatal("round with a dead mid-chain daemon succeeded")
	}
	if chunks.Load() < 3 {
		t.Fatalf("daemon died after %d chunks; the kill was not mid-stream", chunks.Load())
	}
	if store.Published(wire.Dialing, 1) {
		t.Fatal("aborted round was published")
	}
	for _, i := range []int{0, 2} {
		if f.servers[i].RoundOpen(wire.Dialing, 1) {
			t.Errorf("daemon %d: round key survives aborted round", i)
		}
		if n := f.daemons[i].PendingRoutes(); n != 0 {
			t.Errorf("daemon %d: %d routes leak after abort", i, n)
		}
		if n := f.daemons[i].PendingOutboxes(); n != 0 {
			t.Errorf("daemon %d: %d outboxes leak after abort", i, n)
		}
	}

	// The daemon comes back on the same address (fresh RPC server, same
	// mixer); every cached connection redials lazily.
	restarted := rpc.NewServer()
	f.daemons[1] = rpc.RegisterMixer(restarted, f.servers[1])
	if _, err := restarted.Listen(f.addrs[1]); err != nil {
		t.Fatalf("restarting daemon 1 on %s: %v", f.addrs[1], err)
	}
	t.Cleanup(restarted.Close)

	settings2, err := coord.OpenDialingRound(2)
	if err != nil {
		t.Fatal(err)
	}
	tokens2 := makeTestTokens(90)
	submitTokens(t, e, settings2, tokens2, nil)
	if _, err := coord.CloseRound(wire.Dialing, 2); err != nil {
		t.Fatalf("round after daemon restart failed: %v", err)
	}
	if !store.Published(wire.Dialing, 2) {
		t.Fatal("recovered round not published")
	}
	assertTokensDelivered(t, store, 2, settings2, tokens2)
}

// TestDataPlaneModesByteIdentical runs the same seeded round through all
// three data planes — Sequential full-batch, coordinator-relayed
// pipeline, and chain-forwarded over TCP — and checks the published
// mailboxes are byte-identical: moving the data plane onto the servers
// changes WHERE bytes travel, never what comes out.
func TestDataPlaneModesByteIdentical(t *testing.T) {
	nz := noise.Laplace{Mu: 2, B: 0}
	const numTokens = 90
	tokens := makeTestTokens(numTokens)

	type result struct {
		settings  *wire.RoundSettings
		mailboxes map[uint32][]byte
	}
	runMode := func(mode string) result {
		var coord *coordinator.Coordinator
		var store *cdn.Store
		e := entry.New()
		switch mode {
		case "forward":
			f := startFleet(t, 3, nz, func(pos int) mathrand.Source {
				return mathrand.NewSource(int64(1000 + pos))
			})
			var cdnAddr string
			store, cdnAddr = startCDN(t)
			coord = forwardCoordinator(f, e, store, cdnAddr)
		default:
			var servers []*mixnet.Server
			for i := 0; i < 3; i++ {
				m, err := mixnet.New(mixnet.Config{
					Name: "m", Position: i, ChainLength: 3,
					AddFriendNoise: &nz, DialingNoise: &nz,
					Rand:        &seededReader{rng: mathrand.New(mathrand.NewSource(int64(1000 + i)))},
					Parallelism: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				servers = append(servers, m)
			}
			store = cdn.NewStore(0)
			coord = coordinator.New(e, servers, nil, store)
			coord.Sequential = mode == "sequential"
		}
		coord.TargetRequestsPerMailbox = 40
		coord.ChunkSize = 16
		coord.SetExpectedVolume(wire.Dialing, numTokens)

		settings, err := coord.OpenDialingRound(1)
		if err != nil {
			t.Fatal(err)
		}
		submitTokens(t, e, settings, tokens, mathrand.New(mathrand.NewSource(4242)))
		if _, err := coord.CloseRound(wire.Dialing, 1); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		boxes := make(map[uint32][]byte)
		for mb := uint32(0); mb < settings.NumMailboxes; mb++ {
			data, err := store.Fetch(wire.Dialing, 1, mb)
			if err != nil {
				t.Fatalf("%s: mailbox %d: %v", mode, mb, err)
			}
			boxes[mb] = data
		}
		return result{settings: settings, mailboxes: boxes}
	}

	base := runMode("sequential")
	if base.settings.NumMailboxes < 2 {
		t.Fatalf("want a multi-mailbox round, got K=%d", base.settings.NumMailboxes)
	}
	for _, mode := range []string{"relay", "forward"} {
		got := runMode(mode)
		if got.settings.NumMailboxes != base.settings.NumMailboxes {
			t.Fatalf("%s: K=%d, sequential K=%d", mode, got.settings.NumMailboxes, base.settings.NumMailboxes)
		}
		for mb := uint32(0); mb < base.settings.NumMailboxes; mb++ {
			if !bytes.Equal(base.mailboxes[mb], got.mailboxes[mb]) {
				t.Errorf("%s: mailbox %d differs from sequential", mode, mb)
			}
		}
	}
}

// TestLegacyDaemonFallsBackOverTCP: with one pre-streaming daemon in the
// chain, a chain-forward coordinator must degrade the whole round to the
// relayed data plane and drive the legacy daemon through full-batch
// mix.mix — the rolling-upgrade guarantee, over real TCP.
func TestLegacyDaemonFallsBackOverTCP(t *testing.T) {
	nz := noise.Laplace{Mu: 1, B: 0}
	// Daemon 0: legacy (no streaming surface at all).
	legacy, err := mixnet.New(mixnet.Config{
		Name: "old", Position: 0, ChainLength: 2,
		AddFriendNoise: &nz, DialingNoise: &nz,
	})
	if err != nil {
		t.Fatal(err)
	}
	legacySrv := rpc.NewServer()
	rpc.RegisterLegacyMixer(legacySrv, legacy)
	legacyAddr, err := legacySrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer legacySrv.Close()
	legacyClient, err := rpc.DialMixer(legacyAddr)
	if err != nil {
		t.Fatal(err)
	}
	if legacyClient.SupportsStreaming() || legacyClient.SupportsForwarding() {
		t.Fatal("legacy daemon advertises streaming capabilities")
	}

	// Daemon 1: current build.
	current, err := mixnet.New(mixnet.Config{
		Name: "new", Position: 1, ChainLength: 2,
		AddFriendNoise: &nz, DialingNoise: &nz,
	})
	if err != nil {
		t.Fatal(err)
	}
	currentSrv := rpc.NewServer()
	rpc.RegisterMixer(currentSrv, current)
	currentAddr, err := currentSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer currentSrv.Close()
	currentClient, err := rpc.DialMixer(currentAddr)
	if err != nil {
		t.Fatal(err)
	}
	if !currentClient.SupportsForwarding() {
		t.Fatal("current daemon does not advertise forwarding")
	}

	store, cdnAddr := startCDN(t)
	e := entry.New()
	coord := &coordinator.Coordinator{
		Entry: e, CDN: store,
		TargetRequestsPerMailbox: 40,
		ChainForward:             true, // requested, but the fleet can't
		CDNAddr:                  cdnAddr,
		Mixers:                   []coordinator.Mixer{legacyClient, currentClient},
	}
	coord.SetExpectedVolume(wire.Dialing, 60)

	settings, err := coord.OpenDialingRound(1)
	if err != nil {
		t.Fatal(err)
	}
	tokens := makeTestTokens(60)
	submitTokens(t, e, settings, tokens, nil)
	mailboxes, err := coord.CloseRound(wire.Dialing, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mailboxes == nil {
		t.Fatal("relayed fallback should return mailboxes through the coordinator")
	}
	assertTokensDelivered(t, store, 1, settings, tokens)

	// The legacy daemon was driven through full-batch Mix only.
	if n := legacyClient.CallCount("mix.mix"); n != 1 {
		t.Errorf("legacy daemon: %d mix.mix calls, want 1", n)
	}
	for _, method := range []string{"mix.stream.begin", "mix.stream.chunk", "mix.preparenoise", "mix.round.route"} {
		if n := legacyClient.CallCount(method); n != 0 {
			t.Errorf("legacy daemon: %d %s calls, want 0", n, method)
		}
	}
	// And the current daemon fell back to relay: no route was opened.
	if n := currentClient.CallCount("mix.round.route"); n != 0 {
		t.Errorf("current daemon: %d mix.round.route calls in a degraded round, want 0", n)
	}
	if n := currentClient.CallCount("mix.stream.begin"); n == 0 {
		t.Error("current daemon was not streamed to in the relayed fallback")
	}
}

// TestFrontendSubmitMapsRoundFull: the entry server's admission signal
// survives the RPC hop as a typed error clients can errors.Is on.
func TestFrontendSubmitMapsRoundFull(t *testing.T) {
	e := entry.New()
	e.MaxBatch = 1
	nz := noise.Laplace{Mu: 0, B: 0}
	m, err := mixnet.New(mixnet.Config{Name: "m", Position: 0, ChainLength: 1, AddFriendNoise: &nz, DialingNoise: &nz})
	if err != nil {
		t.Fatal(err)
	}
	store := cdn.NewStore(0)
	coord := coordinator.New(e, []*mixnet.Server{m}, nil, store)

	srv := rpc.NewServer()
	rpc.RegisterFrontend(srv, e, store, rpc.Directory{NumMixers: 1})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	frontend := rpc.DialFrontend(addr)

	settings, err := coord.OpenDialingRound(1)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := onionbox.UnmarshalPublicKey(settings.Mixers[0].OnionKey)
	if err != nil {
		t.Fatal(err)
	}
	makeOnion := func(b byte) []byte {
		tok := make([]byte, keywheel.TokenSize)
		tok[0] = b
		payload := (&wire.MixPayload{Mailbox: 0, Body: tok}).Marshal()
		onion, err := onionbox.WrapOnion(rand.Reader, []*onionbox.PublicKey{pk}, payload)
		if err != nil {
			t.Fatal(err)
		}
		return onion
	}
	if err := frontend.Submit(context.Background(), wire.Dialing, 1, makeOnion(1)); err != nil {
		t.Fatal(err)
	}
	err = frontend.Submit(context.Background(), wire.Dialing, 1, makeOnion(2))
	if !errors.Is(err, entry.ErrRoundFull) {
		t.Fatalf("full round over RPC: got %v, want entry.ErrRoundFull", err)
	}
}
