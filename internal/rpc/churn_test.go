package rpc_test

import (
	"bytes"
	mathrand "math/rand"
	"testing"
	"time"

	"alpenhorn/internal/cdn"
	"alpenhorn/internal/coordinator"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/mixnet"
	"alpenhorn/internal/noise"
	"alpenhorn/internal/rpc"
	"alpenhorn/internal/sim"
	"alpenhorn/internal/wire"
)

// kill takes daemon (pos, shard)'s RPC listener down; its mixnet state
// survives in-process, standing in for a daemon whose machine is still
// up but unreachable — the common churn case.
func (f *shardFleet) kill(pos, shard int) {
	f.rpcSrvs[pos][shard].Close()
}

// restart brings a killed daemon back on its old address with a fresh
// RPC server over the same mixnet server (the standard restart pattern:
// cached connections redial lazily).
func (f *shardFleet) restart(t *testing.T, pos, shard int) {
	t.Helper()
	srv := rpc.NewServer()
	f.daemons[pos][shard] = rpc.RegisterMixer(srv, f.servers[pos][shard])
	if _, err := srv.Listen(f.addrs[pos][shard]); err != nil {
		t.Fatalf("restarting daemon %d/%d on %s: %v", pos, shard, f.addrs[pos][shard], err)
	}
	f.rpcSrvs[pos][shard] = srv
	t.Cleanup(srv.Close)
}

// startSpares launches one hot-spare daemon per position: unpinned
// (-spare) mixers the scheduler can draft into any benched slot.
func startSpares(t *testing.T, fleet *shardFleet, nz noise.Laplace, randFor func(pos int) mathrand.Source) [][]coordinator.Mixer {
	t.Helper()
	spares := make([][]coordinator.Mixer, len(fleet.counts))
	for i := range fleet.counts {
		cfg := mixnet.Config{
			Name: "spare", Position: i, ChainLength: len(fleet.counts),
			AddFriendNoise: &nz, DialingNoise: &nz,
			Spare: true,
		}
		if randFor != nil {
			cfg.Rand = &seededReader{rng: mathrand.New(randFor(i))}
			cfg.Parallelism = 1
		}
		m, err := mixnet.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer()
		rpc.RegisterMixer(srv, m)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		mc, err := rpc.DialMixer(addr)
		if err != nil {
			t.Fatal(err)
		}
		if !mc.Info().Spare {
			t.Fatalf("spare daemon %d does not advertise itself as a spare", i)
		}
		spares[i] = []coordinator.Mixer{mc}
	}
	return spares
}

// fetchAll pulls every mailbox of a round.
func fetchAll(t *testing.T, store *cdn.Store, round uint32, k uint32) map[uint32][]byte {
	t.Helper()
	out := make(map[uint32][]byte, k)
	for mb := uint32(0); mb < k; mb++ {
		data, err := store.Fetch(wire.Dialing, round, mb)
		if err != nil {
			t.Fatalf("round %d mailbox %d: %v", round, mb, err)
		}
		out[mb] = data
	}
	return out
}

// TestChurnSelfHealingRounds is the self-healing acceptance test: a
// 3-position × 2-shard TCP fleet with one hot spare per position runs
// many consecutive rounds while a seeded churn plan kills a random
// non-announcer daemon every other round (and occasionally pauses one).
// Every round must close with ZERO operator action: the scheduler's
// plan-time probe benches the dead daemon and drafts the spare into its
// slot, and once the daemon restarts it is probed back in automatically.
// A churn-free mirror fleet runs the same seeds in parallel; every
// surviving round's mailboxes must be byte-identical between the two —
// benching, spare drafting, and merge-role rotation never change what a
// round publishes, only which machines compute it.
func TestChurnSelfHealingRounds(t *testing.T) {
	nz := noise.Laplace{Mu: 0, B: 0}
	counts := []int{2, 2, 2}
	const numRounds = 12
	const numTokens = 120
	tokens := makeTestTokens(numTokens)

	seedFor := func(pos, shard int) mathrand.Source {
		if shard == 0 {
			return mathrand.NewSource(int64(1000 + pos))
		}
		return mathrand.NewSource(int64(5000 + 100*pos + shard))
	}
	newCoord := func(f *shardFleet) (*coordinator.Coordinator, *cdn.Store, *entry.Server) {
		store, cdnAddr := startCDN(t)
		e := entry.New()
		coord := shardCoordinator(f, e, store, cdnAddr)
		coord.ChunkSize = 16
		coord.RoundDeadline = 20 * time.Second
		coord.SetExpectedVolume(wire.Dialing, numTokens)
		return coord, store, e
	}

	churned := startShardFleet(t, counts, nz, seedFor)
	coord, store, e := newCoord(churned)
	coord.Spares = startSpares(t, churned, nz, func(pos int) mathrand.Source {
		return mathrand.NewSource(int64(9000 + pos))
	})

	mirror := startShardFleet(t, counts, nz, seedFor)
	mirrorCoord, mirrorStore, mirrorEntry := newCoord(mirror)

	plan := sim.NewChurnPlan(7, numRounds, 2, counts)
	if plan.Kills < 4 {
		t.Fatalf("churn plan has only %d kills over %d rounds; want a harsher schedule", plan.Kills, numRounds)
	}

	down := make(map[[2]int]bool)
	for r := 1; r <= numRounds; r++ {
		for _, ev := range plan.EventsBefore(r) {
			key := [2]int{ev.Position, ev.Shard}
			switch ev.Action {
			case sim.ChurnKill:
				if !down[key] {
					churned.kill(ev.Position, ev.Shard)
					down[key] = true
				}
			case sim.ChurnRestart:
				if down[key] {
					churned.restart(t, ev.Position, ev.Shard)
					down[key] = false
				}
			case sim.ChurnPause:
				if !down[key] {
					churned.kill(ev.Position, ev.Shard)
					churned.restart(t, ev.Position, ev.Shard)
				}
			}
		}

		round := uint32(r)
		settings, err := coord.OpenDialingRound(round)
		if err != nil {
			t.Fatalf("round %d open (churned): %v", r, err)
		}
		mirrorSettings, err := mirrorCoord.OpenDialingRound(round)
		if err != nil {
			t.Fatalf("round %d open (mirror): %v", r, err)
		}
		if settings.NumMailboxes != mirrorSettings.NumMailboxes {
			t.Fatalf("round %d: K=%d churned, K=%d mirror", r, settings.NumMailboxes, mirrorSettings.NumMailboxes)
		}
		submitTokens(t, e, settings, tokens, mathrand.New(mathrand.NewSource(4242)))
		submitTokens(t, mirrorEntry, mirrorSettings, tokens, mathrand.New(mathrand.NewSource(4242)))

		if _, err := coord.CloseRound(wire.Dialing, round); err != nil {
			t.Fatalf("round %d failed under churn: %v", r, err)
		}
		if _, err := mirrorCoord.CloseRound(wire.Dialing, round); err != nil {
			t.Fatalf("round %d failed in the mirror fleet: %v", r, err)
		}
		got := fetchAll(t, store, round, settings.NumMailboxes)
		want := fetchAll(t, mirrorStore, round, settings.NumMailboxes)
		for mb := uint32(0); mb < settings.NumMailboxes; mb++ {
			if !bytes.Equal(got[mb], want[mb]) {
				t.Errorf("round %d mailbox %d: churned fleet diverged from mirror", r, mb)
			}
		}
		assertTokensDelivered(t, store, round, settings, tokens)
	}

	// Every kill was healed without operator action, so the health ring
	// must show zero failed rounds...
	for _, h := range coord.Status() {
		if h.Err != "" {
			t.Errorf("round %d recorded a failure under churn: %s", h.Round, h.Err)
		}
	}
	// ...the scheduler must have benched the victims and drafted spares...
	sb := coord.Scoreboard()
	var benches, readmissions uint64
	sawSpare := false
	for _, d := range sb.Daemons {
		benches += d.Aborts[wire.AbortCrashed] + d.Failures
		readmissions += d.Readmissions
		if d.Spare {
			sawSpare = true
		}
	}
	if readmissions == 0 {
		t.Error("no benched daemon was ever re-admitted")
	}
	if !sawSpare {
		t.Error("no spare was ever drafted")
	}
	_ = benches
}

// TestMergeRotationDeterminism pins the rotation contract over TCP: for
// 1-, 2-, and 3-shard groups, a fleet with round-robin merge-role
// rotation publishes byte-identical mailboxes to a fixed-seed mirror
// fleet whose merge role is pinned to shard 0 (PinLead), round after
// round. The merge funnel demonstrably MOVES — the member with the
// position's peak egress follows round % N — while the output never
// does, because the shuffle permutation is derived from the round key
// every member holds.
func TestMergeRotationDeterminism(t *testing.T) {
	nz := noise.Laplace{Mu: 0, B: 0}
	const numRounds = 3
	const numTokens = 60
	tokens := makeTestTokens(numTokens)

	type roundBoxes struct {
		k     uint32
		boxes map[uint32][]byte
	}
	run := func(shardsPerPos int, pinLead bool) ([]roundBoxes, *coordinator.Coordinator) {
		counts := []int{shardsPerPos, shardsPerPos, shardsPerPos}
		f := startShardFleet(t, counts, nz, func(pos, shard int) mathrand.Source {
			if shard == 0 {
				return mathrand.NewSource(int64(1000 + pos))
			}
			return mathrand.NewSource(int64(5000 + 100*pos + shard))
		})
		store, cdnAddr := startCDN(t)
		e := entry.New()
		coord := shardCoordinator(f, e, store, cdnAddr)
		coord.ChunkSize = 16
		coord.PinLead = pinLead
		coord.SetExpectedVolume(wire.Dialing, numTokens)

		var out []roundBoxes
		for r := 1; r <= numRounds; r++ {
			settings, err := coord.OpenDialingRound(uint32(r))
			if err != nil {
				t.Fatalf("%d shards pin=%v round %d open: %v", shardsPerPos, pinLead, r, err)
			}
			submitTokens(t, e, settings, tokens, mathrand.New(mathrand.NewSource(4242)))
			if _, err := coord.CloseRound(wire.Dialing, uint32(r)); err != nil {
				t.Fatalf("%d shards pin=%v round %d: %v", shardsPerPos, pinLead, r, err)
			}
			out = append(out, roundBoxes{settings.NumMailboxes, fetchAll(t, store, uint32(r), settings.NumMailboxes)})
		}
		return out, coord
	}

	for _, shardsPerPos := range []int{1, 2, 3} {
		rotated, coord := run(shardsPerPos, false)
		pinned, _ := run(shardsPerPos, true)
		for r := 0; r < numRounds; r++ {
			if rotated[r].k != pinned[r].k {
				t.Fatalf("%d shards round %d: K=%d rotated, K=%d pinned", shardsPerPos, r+1, rotated[r].k, pinned[r].k)
			}
			for mb := uint32(0); mb < rotated[r].k; mb++ {
				if !bytes.Equal(rotated[r].boxes[mb], pinned[r].boxes[mb]) {
					t.Errorf("%d shards round %d mailbox %d: rotation changed the round's bytes", shardsPerPos, r+1, mb)
				}
			}
		}
		if shardsPerPos == 1 {
			continue
		}
		// The funnel moved: in the rotated fleet the middle position's
		// peak-egress member (the merge forwards the FULL merged batch;
		// non-merge members only deposit their slice) must track
		// round % N.
		for _, h := range coord.Status() {
			wantLead := int(h.Round) % shardsPerPos
			best, bestOut := -1, uint64(0)
			for _, d := range h.Daemons {
				if d.Position != 1 {
					continue
				}
				if d.Stats.BytesOut > bestOut {
					best, bestOut = d.Shard, d.Stats.BytesOut
				}
			}
			if best != wantLead {
				t.Errorf("%d shards round %d: peak egress at shard %d, want rotated lead %d", shardsPerPos, h.Round, best, wantLead)
			}
		}
	}
}

// TestExportKeyPeerGate pins the shard-network gate on the round-key
// export surface: once the coordinator distributes a peer allowlist with
// the round's shard layout, mix.round.exportkey refuses callers from
// outside it, and an updated allowlist (or none at all — the legacy
// open behavior) restores service.
func TestExportKeyPeerGate(t *testing.T) {
	nz := noise.Laplace{Mu: 0, B: 0}
	m, err := mixnet.New(mixnet.Config{
		Name: "m", Position: 0, ChainLength: 1,
		AddFriendNoise: &nz, DialingNoise: &nz,
		ShardIndex: 0, ShardCount: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer()
	rpc.RegisterMixer(srv, m)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mc, err := rpc.DialMixer(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.NewRound(wire.Dialing, 1); err != nil {
		t.Fatal(err)
	}

	exportArgs := struct {
		Service wire.Service `json:"service"`
		Round   uint32       `json:"round"`
	}{wire.Dialing, 1}
	raw := rpc.Dial(addr)
	defer raw.Close()

	// No allowlist yet: the legacy open behavior — any caller may pull.
	if err := raw.Call("mix.round.exportkey", exportArgs, new(wire.MixerRoundKey)); err != nil {
		t.Fatalf("ungated export: %v", err)
	}
	// An allowlist naming only a foreign host locks this caller out.
	if err := mc.SetRoundShardPeers(wire.Dialing, 1, 0, 2, []string{"203.0.113.1:9000"}); err != nil {
		t.Fatal(err)
	}
	if err := raw.Call("mix.round.exportkey", exportArgs, new(wire.MixerRoundKey)); err == nil {
		t.Fatal("export from outside the shard network succeeded")
	}
	// Re-planning the round with the caller's host admitted restores it.
	if err := mc.SetRoundShardPeers(wire.Dialing, 1, 0, 2, []string{"127.0.0.1:9000"}); err != nil {
		t.Fatal(err)
	}
	if err := raw.Call("mix.round.exportkey", exportArgs, new(wire.MixerRoundKey)); err != nil {
		t.Fatalf("export from inside the shard network refused: %v", err)
	}
	mc.CloseRound(wire.Dialing, 1)
}
