// Package rpc is the network transport for Alpenhorn's daemons: a minimal
// length-prefixed JSON request/response protocol over TCP.
//
// The in-process server types (pkgserver.Server, mixnet.Server, ...) hold
// all protocol logic; this package only moves their arguments across
// machine boundaries. cmd/alpenhorn-pkg and friends register method
// handlers on a Server; clients use Client.Call with mirrored argument
// structs. Security note: Alpenhorn's protocol messages authenticate
// themselves (signatures, AEADs), so the transport adds no cryptography;
// a deployment would still wrap it in TLS for hygiene.
package rpc

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// maxMessageSize bounds a single request or response (64 MB: a full
// add-friend mailbox batch fits comfortably).
const maxMessageSize = 64 << 20

// request is the wire format of one call.
type request struct {
	Method string          `json:"method"`
	Params json.RawMessage `json:"params"`
}

// response is the wire format of one reply.
type response struct {
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxMessageSize {
		return errors.New("rpc: message too large")
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxMessageSize {
		return nil, errors.New("rpc: frame too large")
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Handler processes one method call. Params is the raw JSON of the
// caller's argument struct; the returned value is JSON-encoded as the
// result.
type Handler func(params json.RawMessage) (any, error)

// PeerHandler is a Handler that also sees the caller's remote address
// (host:port of the TCP connection). The transport is unauthenticated, so
// a peer address is a topology signal, not an identity — it gates
// server-plane surfaces like mix.round.exportkey to an allowlisted shard
// network, on top of whatever the deployment's network layer enforces.
type PeerHandler func(peerAddr string, params json.RawMessage) (any, error)

// Server dispatches method calls to registered handlers.
type Server struct {
	mu           sync.Mutex
	handlers     map[string]Handler
	peerHandlers map[string]PeerHandler
	ln           net.Listener
	conns        map[net.Conn]struct{}
	wg           sync.WaitGroup
	closed       bool
	closing      chan struct{}
}

// NewServer creates an empty RPC server.
func NewServer() *Server {
	return &Server{
		handlers:     make(map[string]Handler),
		peerHandlers: make(map[string]PeerHandler),
		conns:        make(map[net.Conn]struct{}),
		closing:      make(chan struct{}),
	}
}

// Closing is closed when Close begins. Long-poll handlers (entry.events,
// mix.round.wait) select on it so a shutting-down server never waits on a
// parked handler's full poll interval.
func (s *Server) Closing() <-chan struct{} { return s.closing }

// Handle registers a handler for a method name.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// HandleFunc registers a handler with typed parameters: fn must be a
// func(T) (any, error); params JSON is decoded into T.
func HandleFunc[T any](s *Server, method string, fn func(T) (any, error)) {
	s.Handle(method, func(params json.RawMessage) (any, error) {
		var arg T
		if len(params) > 0 {
			if err := json.Unmarshal(params, &arg); err != nil {
				return nil, fmt.Errorf("rpc: bad params for %s: %w", method, err)
			}
		}
		return fn(arg)
	})
}

// HandlePeerFunc registers a peer-aware handler with typed parameters:
// fn receives the caller's remote address alongside the decoded params.
// A peer-aware registration replaces any plain handler for the method.
func HandlePeerFunc[T any](s *Server, method string, fn func(peerAddr string, arg T) (any, error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.peerHandlers[method] = func(peerAddr string, params json.RawMessage) (any, error) {
		var arg T
		if len(params) > 0 {
			if err := json.Unmarshal(params, &arg); err != nil {
				return nil, fmt.Errorf("rpc: bad params for %s: %w", method, err)
			}
		}
		return fn(peerAddr, arg)
	}
}

// Serve starts accepting connections on the listener and returns
// immediately; connections are handled on background goroutines.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(conn)
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
		}
	}()
}

// Listen starts the server on a TCP address and returns the bound address
// (useful with ":0").
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops accepting connections, disconnects clients, and waits for
// in-flight calls to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.closing)
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		payload, err := readFrame(conn)
		if err != nil {
			return
		}
		var req request
		if err := json.Unmarshal(payload, &req); err != nil {
			return
		}
		s.mu.Lock()
		h := s.handlers[req.Method]
		if ph := s.peerHandlers[req.Method]; ph != nil {
			peerAddr := conn.RemoteAddr().String()
			h = func(params json.RawMessage) (any, error) {
				return ph(peerAddr, params)
			}
		}
		s.mu.Unlock()

		var resp response
		if h == nil {
			resp.Error = "rpc: unknown method " + req.Method
		} else if result, err := h(req.Params); err != nil {
			resp.Error = err.Error()
		} else if result != nil {
			raw, err := json.Marshal(result)
			if err != nil {
				resp.Error = "rpc: encoding result: " + err.Error()
			} else {
				resp.Result = raw
			}
		}
		out, err := json.Marshal(resp)
		if err != nil {
			return
		}
		if err := writeFrame(conn, out); err != nil {
			return
		}
	}
}

// Client is a connection-per-call-free RPC client: one TCP connection,
// serialized calls. Safe for concurrent use.
type Client struct {
	addr    string
	timeout time.Duration

	mu   sync.Mutex // serializes calls on the connection
	conn net.Conn

	// Transport accounting: the chain-forward acceptance test and the
	// bench harness use these to prove the coordinator's connections
	// carry control messages, not batch payloads. The counters live
	// under their OWN lock so reading stats never parks behind an
	// in-flight call — an entry.events long-poll holds mu for up to its
	// full wait.
	statsMu       sync.Mutex
	bytesSent     uint64
	bytesReceived uint64
	calls         map[string]uint64
}

// ClientStats is a snapshot of one client's transport accounting.
type ClientStats struct {
	BytesSent     uint64
	BytesReceived uint64
	Calls         uint64
}

// Dial creates a client for the given address. The connection is
// established lazily and re-established after errors.
func Dial(addr string) *Client {
	return &Client{addr: addr, timeout: 30 * time.Second, calls: make(map[string]uint64)}
}

// Stats returns cumulative bytes moved and calls made by this client,
// counting frame headers and retried writes.
func (c *Client) Stats() ClientStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	var n uint64
	for _, v := range c.calls {
		n += v
	}
	return ClientStats{BytesSent: c.bytesSent, BytesReceived: c.bytesReceived, Calls: n}
}

// CallCount returns how many times this client has invoked a method.
func (c *Client) CallCount(method string) uint64 {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.calls[method]
}

// countCall records one invocation of method.
func (c *Client) countCall(method string) {
	c.statsMu.Lock()
	c.calls[method]++
	c.statsMu.Unlock()
}

// addBytes records frame bytes moved on the wire (headers included).
func (c *Client) addBytes(sent, received uint64) {
	c.statsMu.Lock()
	c.bytesSent += sent
	c.bytesReceived += received
	c.statsMu.Unlock()
}

// Call invokes a remote method. result may be nil to discard the reply.
//
// On a dead connection Call transparently reconnects and re-sends ONCE,
// which is only safe for idempotent methods: if the request executed but
// the reply was lost, the retry executes it again. Data-plane mutations
// that append state (stream chunks, publish fragments) must use CallOnce.
func (c *Client) Call(method string, params any, result any) error {
	return c.call(context.Background(), method, params, result, c.timeout, 2)
}

// CallContext is Call honoring a context: the dial respects ctx, the I/O
// deadline is the earlier of ctx's deadline and the client timeout, and
// cancelling ctx mid-call closes the connection so a parked call (e.g. an
// entry.events long-poll against a dead frontend) returns promptly
// instead of wedging the caller.
func (c *Client) CallContext(ctx context.Context, method string, params any, result any) error {
	return c.call(ctx, method, params, result, c.timeout, 2)
}

// CallOnce invokes a remote method with NO transparent retry: the request
// is sent at most once, and any transport failure surfaces as an error.
// Use it for non-idempotent calls; the caller recovers at a higher level
// (a failed mix round aborts and the next round carries the traffic).
func (c *Client) CallOnce(method string, params any, result any) error {
	return c.call(context.Background(), method, params, result, c.timeout, 1)
}

// ErrTransport marks failures that happened in the transport — dialing,
// writing, or reading a frame — as opposed to errors returned by the
// remote handler. Callers with their own retry policy (e.g. a mixer
// dialing a successor that is still coming up) use errors.Is(err,
// ErrTransport) to retry only failures where re-sending can help.
var ErrTransport = errors.New("rpc: transport failure")

func (c *Client) call(ctx context.Context, method string, params any, result any, timeout time.Duration, maxAttempts int) error {
	raw, err := json.Marshal(params)
	if err != nil {
		return err
	}
	req, err := json.Marshal(request{Method: method, Params: raw})
	if err != nil {
		return err
	}

	c.countCall(method)
	c.mu.Lock()
	defer c.mu.Unlock()
	// Reconnect attempts on a stale connection, bounded by maxAttempts.
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("rpc: call %s: %w", method, err)
		}
		if c.conn == nil {
			dialer := net.Dialer{Timeout: timeout}
			conn, err := dialer.DialContext(ctx, "tcp", c.addr)
			if err != nil {
				if ctxErr := ctx.Err(); ctxErr != nil {
					return fmt.Errorf("rpc: dialing %s: %w", c.addr, ctxErr)
				}
				return fmt.Errorf("%w: dialing %s: %v", ErrTransport, c.addr, err)
			}
			c.conn = conn
		}
		deadline := time.Now().Add(timeout)
		if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
			deadline = d
		}
		c.conn.SetDeadline(deadline)
		// Cancellation mid-call must interrupt a blocked read (a parked
		// long-poll, a dead peer): closing the conn is the only portable
		// interrupt. The next call reconnects.
		conn := c.conn
		stop := context.AfterFunc(ctx, func() { conn.Close() })
		c.addBytes(uint64(len(req))+4, 0)
		if err := writeFrame(c.conn, req); err != nil {
			stop()
			c.conn.Close()
			c.conn = nil
			if ctxErr := ctx.Err(); ctxErr != nil {
				return fmt.Errorf("rpc: writing to %s: %w", c.addr, ctxErr)
			}
			if attempt < maxAttempts-1 {
				continue
			}
			return fmt.Errorf("%w: writing to %s: %v", ErrTransport, c.addr, err)
		}
		payload, err := readFrame(c.conn)
		stop()
		if err != nil {
			c.conn.Close()
			c.conn = nil
			if ctxErr := ctx.Err(); ctxErr != nil {
				return fmt.Errorf("rpc: reading from %s: %w", c.addr, ctxErr)
			}
			if attempt < maxAttempts-1 {
				continue
			}
			return fmt.Errorf("%w: reading from %s: %v", ErrTransport, c.addr, err)
		}
		c.addBytes(0, uint64(len(payload))+4)
		var resp response
		if err := json.Unmarshal(payload, &resp); err != nil {
			return err
		}
		if resp.Error != "" {
			return errors.New(resp.Error)
		}
		if result != nil && len(resp.Result) > 0 {
			return json.Unmarshal(resp.Result, result)
		}
		return nil
	}
}

// Close closes the underlying connection.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}
