package rpc_test

import (
	"bytes"
	"context"
	"errors"
	mathrand "math/rand"
	"runtime"
	"testing"
	"time"

	"alpenhorn/internal/coordinator"
	"alpenhorn/internal/core"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/noise"
	"alpenhorn/internal/onionbox"
	"alpenhorn/internal/rpc"
	"alpenhorn/internal/sim"
	"alpenhorn/internal/wire"
)

// submitSplitTokens wraps the SAME onions, in the SAME order, with the
// SAME seeded randomness as submitTokens — but deals them across the
// frontends, first half to the first, second half to the second. The
// concatenation of the frontends' sub-batches is therefore byte-for-byte
// the single-frontend batch.
func submitSplitTokens(t *testing.T, frontends []*entry.Server, settings *wire.RoundSettings, tokens [][]byte, rnd *mathrand.Rand) {
	t.Helper()
	hops := make([]*onionbox.PublicKey, len(settings.Mixers))
	for i, rk := range settings.Mixers {
		pk, err := onionbox.UnmarshalPublicKey(rk.OnionKey)
		if err != nil {
			t.Fatal(err)
		}
		hops[i] = pk
	}
	src := &seededReader{rng: rnd}
	half := (len(tokens) + 1) / 2
	for i, tok := range tokens {
		payload := (&wire.MixPayload{Mailbox: uint32(i) % settings.NumMailboxes, Body: tok}).Marshal()
		onion, err := onionbox.WrapOnion(src, hops, payload)
		if err != nil {
			t.Fatal(err)
		}
		target := frontends[0]
		if i >= half {
			target = frontends[1]
		}
		if err := target.Submit(settings.Service, settings.Round, onion); err != nil {
			t.Fatal(err)
		}
	}
}

// runSeededForwardRound runs one fully seeded chain-forward dialing round
// with the given number of entry frontends (1 or 2; the second joins over
// the TCP entry.replicate surface) and returns the published mailboxes.
func runSeededForwardRound(t *testing.T, numFrontends int) (*wire.RoundSettings, map[uint32][]byte) {
	t.Helper()
	nz := noise.Laplace{Mu: 2, B: 0}
	const numTokens = 90
	tokens := makeTestTokens(numTokens)

	f := startFleet(t, 3, nz, func(pos int) mathrand.Source {
		return mathrand.NewSource(int64(1000 + pos))
	})
	store, cdnAddr := startCDN(t)
	e := entry.New()
	coord := forwardCoordinator(f, e, store, cdnAddr)
	coord.TargetRequestsPerMailbox = 40
	coord.ChunkSize = 16
	coord.SetExpectedVolume(wire.Dialing, numTokens)

	var extra *entry.Server
	if numFrontends == 2 {
		extra = entry.New()
		repSrv := rpc.NewServer()
		rpc.RegisterEntryReplica(repSrv, extra)
		repAddr, err := repSrv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(repSrv.Close)
		coord.Frontends = []coordinator.Frontend{rpc.DialEntryReplica(repAddr)}
	}

	settings, err := coord.OpenDialingRound(1)
	if err != nil {
		t.Fatal(err)
	}
	if extra != nil {
		// The replicated announcement log opened the round on the extra
		// frontend too (same settings, same cursor namespace).
		repSettings, err := extra.Settings(wire.Dialing, 1)
		if err != nil {
			t.Fatalf("extra frontend missed the open announcement: %v", err)
		}
		if !bytes.Equal(repSettings.Marshal(), settings.Marshal()) {
			t.Fatal("extra frontend holds different settings than the coordinator announced")
		}
	}

	rnd := mathrand.New(mathrand.NewSource(4242))
	if extra == nil {
		submitTokens(t, e, settings, tokens, rnd)
	} else {
		submitSplitTokens(t, []*entry.Server{e, extra}, settings, tokens, rnd)
		if got := extra.BatchSize(wire.Dialing, 1); got != numTokens/2 {
			t.Fatalf("extra frontend admitted %d onions, want %d", got, numTokens/2)
		}
	}

	if _, err := coord.CloseRound(wire.Dialing, 1); err != nil {
		t.Fatal(err)
	}
	if !store.Published(wire.Dialing, 1) {
		t.Fatal("round not published")
	}
	if extra != nil {
		if st := extra.Status(wire.Dialing); st.LatestPublished != 1 {
			t.Fatalf("extra frontend's log missed the published announcement (latest=%d)", st.LatestPublished)
		}
	}

	boxes := make(map[uint32][]byte)
	for mb := uint32(0); mb < settings.NumMailboxes; mb++ {
		data, err := store.Fetch(wire.Dialing, 1, mb)
		if err != nil {
			t.Fatalf("mailbox %d: %v", mb, err)
		}
		boxes[mb] = data
	}
	return settings, boxes
}

// TestTwoFrontendIntakeByteIdentical is the N-way-intake acceptance pin: a
// round whose batch is admitted by TWO frontends — the second feeding its
// sub-batch through entry.replicate into position 0's counted
// NumUpstream=2 fan-in — publishes mailboxes byte-identical to the
// single-frontend round under the same seed. Scaling the entry tier out
// changes WHO admits an onion, never what the mixnet outputs.
func TestTwoFrontendIntakeByteIdentical(t *testing.T) {
	base, baseBoxes := runSeededForwardRound(t, 1)
	if base.NumMailboxes < 2 {
		t.Fatalf("want a multi-mailbox round, got K=%d", base.NumMailboxes)
	}
	two, twoBoxes := runSeededForwardRound(t, 2)
	if two.NumMailboxes != base.NumMailboxes {
		t.Fatalf("two-frontend K=%d, single-frontend K=%d", two.NumMailboxes, base.NumMailboxes)
	}
	for mb := uint32(0); mb < base.NumMailboxes; mb++ {
		if !bytes.Equal(baseBoxes[mb], twoBoxes[mb]) {
			t.Errorf("mailbox %d differs between single- and two-frontend intake", mb)
		}
	}
}

// newTwoFrontendNetwork builds a deployment with two TCP frontends that
// share one announcement-log cursor namespace: the coordinator replays
// every open/publish to both entry servers.
func newTwoFrontendNetwork(t *testing.T) (*sim.Network, []*rpc.Server, []string) {
	t.Helper()
	network, err := sim.NewNetwork(sim.Config{NumPKGs: 1, NumMixers: 1, NumFrontends: 2})
	if err != nil {
		t.Fatal(err)
	}
	entries := []*entry.Server{network.Entry, network.Frontends[0]}
	var srvs []*rpc.Server
	var addrs []string
	for _, e := range entries {
		srv := rpc.NewServer()
		rpc.RegisterFrontend(srv, e, network.CDN, rpc.Directory{NumMixers: 1})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srvs = append(srvs, srv)
		addrs = append(addrs, addr)
	}
	return network, srvs, addrs
}

// TestRunFailsOverToSurvivingFrontend kills one of two frontends mid-round
// under Client.Run over TCP: the client resumes on the survivor FROM ITS
// CURSOR (the frontends share one announcement log, so no status-snapshot
// rebuild and no poll fallback), never double-submits a round, never falls
// back to per-round settings fetches, and drains its goroutines on
// shutdown.
func TestRunFailsOverToSurvivingFrontend(t *testing.T) {
	network, srvs, addrs := newTwoFrontendNetwork(t)
	defer srvs[1].Close()
	baseline := runtime.NumGoroutine()

	pool := rpc.DialFrontendPool(addrs...)
	h := &sim.Handler{AcceptAll: true}
	cfg := network.ClientConfig("failover@tcp.example", h)
	cfg.Entry = pool
	cfg.Mailboxes = pool
	cfg.PollInterval = 50 * time.Millisecond
	client, err := core.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Register(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := network.ConfirmAll(client); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	handle, err := client.ConnectDialing(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// One submission per round, wherever it lands: with a pool the onion
	// goes to whichever frontend the client currently uses, so the
	// double-submit budget sums both intake batches.
	batchTotal := func(r uint32) int {
		return network.Entry.BatchSize(wire.Dialing, r) + network.Frontends[0].BatchSize(wire.Dialing, r)
	}
	driveRounds := func(from, to uint32, window time.Duration) {
		t.Helper()
		for r := from; r <= to; r++ {
			if _, err := network.Coord.OpenDialingRound(r); err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(window)
			for time.Now().Before(deadline) && batchTotal(r) < 1 {
				time.Sleep(2 * time.Millisecond)
			}
			if got := batchTotal(r); got > 1 {
				t.Fatalf("dialing round %d carries %d submissions across the tier, want at most 1 — the client double-submitted during failover", r, got)
			}
			if _, err := network.Coord.CloseRound(wire.Dialing, r); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Phase 1: rounds flow through frontend A (the pool's first member).
	driveRounds(1, 3, 5*time.Second)
	waitUntil(t, 10*time.Second, "pre-failover rounds to be scanned", func() bool {
		return client.DialRound() >= 4
	})

	// Phase 2: frontend A dies mid-deployment. Rounds keep happening; the
	// client's event stream breaks, the pool rotates to the survivor, and
	// the SAME cursor resumes there — the coordinator replayed every
	// announcement to both logs in the same order.
	srvs[0].Close()
	driveRounds(4, 6, 10*time.Second)
	waitUntil(t, 15*time.Second, "post-failover rounds to be scanned on the survivor", func() bool {
		return client.DialRound() >= 7 && client.DialBacklog() == 0
	})

	// No snapshot reset: tracking stayed on the event stream the whole
	// time. A cursor mismatch between the logs would have shown up as a
	// gap -> status rebuild -> poll traffic; the status budget is the
	// connect-time snapshot plus at most a couple of failover re-syncs.
	if n := pool.CallCount("frontend.status"); n > 6 {
		t.Fatalf("client issued %d frontend.status calls — failover fell back to polling (snapshot reset)", n)
	}
	// Settings rode the open events (EventStreamV2) on both frontends:
	// failing over does not resurrect the per-round settings fetch.
	if n := pool.CallCount("entry.settings"); n != 0 {
		t.Fatalf("client issued %d entry.settings fetches, want 0 (settings ride open events)", n)
	}

	// Shutdown drains every loop goroutine.
	start := time.Now()
	cancel()
	handle.Close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("shutdown took %v, want well under one network timeout", elapsed)
	}
	if err := handle.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("handle.Err() = %v, want context.Canceled", err)
	}
	pool.Close()
	srvs[1].Close()
	waitUntil(t, 5*time.Second, "goroutines to drain", func() bool {
		return runtime.NumGoroutine() <= baseline
	})
}

// TestEventSettingsEliminateFetch pins EventStreamV2's request savings: a
// client on a V2 frontend completes rounds with ZERO entry.settings
// fetches (settings ride the open events), while the same client code on a
// V1 frontend degrades transparently — it fetches settings per round and
// still completes every round.
func TestEventSettingsEliminateFetch(t *testing.T) {
	network, err := sim.NewNetwork(sim.Config{NumPKGs: 1, NumMixers: 1})
	if err != nil {
		t.Fatal(err)
	}
	v2Srv := rpc.NewServer()
	rpc.RegisterFrontend(v2Srv, network.Entry, network.CDN, rpc.Directory{NumMixers: 1})
	v2Addr, err := v2Srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer v2Srv.Close()
	v1Srv := rpc.NewServer()
	rpc.RegisterFrontendV1(v1Srv, network.Entry, network.CDN, rpc.Directory{NumMixers: 1})
	v1Addr, err := v1Srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer v1Srv.Close()

	v2FE := rpc.DialFrontend(v2Addr)
	v1FE := rpc.DialFrontend(v1Addr)
	defer v2FE.Close()
	defer v1FE.Close()
	v2Client, _ := newTCPRunClient(t, network, v2FE, "v2@tcp.example")
	v1Client, _ := newTCPRunClient(t, network, v1FE, "v1@tcp.example")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h2, err := v2Client.ConnectDialing(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	h1, err := v1Client.ConnectDialing(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Close()

	const rounds = 3
	driveDialRounds(t, network, 1, rounds, 2, 10*time.Second)
	waitUntil(t, 15*time.Second, "both clients to scan all rounds", func() bool {
		return v2Client.DialRound() >= rounds+1 && v1Client.DialRound() >= rounds+1
	})

	if n := v2FE.CallCount("entry.settings"); n != 0 {
		t.Fatalf("V2 client fetched settings %d times, want 0 (settings ride open events)", n)
	}
	if n := v1FE.CallCount("entry.settings"); n == 0 {
		t.Fatal("V1 client never fetched settings — the degradation path went untested")
	}
	t.Logf("entry.settings calls over %d rounds: V2=%d V1=%d",
		rounds, v2FE.CallCount("entry.settings"), v1FE.CallCount("entry.settings"))
}
