package rpc

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"alpenhorn/internal/cdn"
	"alpenhorn/internal/wire"
)

// This file is the CDN node: the write-plane surfaces of a cdn.Store
// (publish from the mixnet, replicate/pull between CDN nodes) and the
// client read plane (fetch/fetchrange). Mailbox content is public — the
// privacy analysis ends when the last mixer publishes — so this tier is
// ordinary replicated storage: every node ends up holding every sealed
// round, and clients may fetch from any of them (CDNPool fails over).
//
// Security boundary: cdn.publish and cdn.replicate are UNAUTHENTICATED
// WRITE surfaces. They must live on a server-plane listener that
// deployments keep away from clients; otherwise any client could publish
// a round's mailboxes first and censor the real ones. The read surface
// (RegisterCDNFrontend) is safe on a client-facing listener.

// publishBudget bounds the mailbox bytes carried by one cdn.publish call,
// keeping frames far below the transport cap after JSON/base64 inflation.
const publishBudget = 4 << 20

type cdnBoxFragment struct {
	ID   uint32 `json:"id"`
	Data []byte `json:"data"`
}

type cdnPublishArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
	// Boxes are mailbox fragments; fragments with the same ID across
	// calls concatenate in arrival order, so one huge mailbox can span
	// frames. An entry with empty Data still creates the mailbox.
	Boxes []cdnBoxFragment `json:"boxes"`
	// Done commits this stream's contribution to the staged round.
	Done bool `json:"done"`
	// Abort discards the staged round (publisher failed mid-round).
	Abort bool `json:"abort,omitempty"`
	// Sharded builds: NumShards > 0 tags the stream as shard Shard of
	// NumShards publishing disjoint mailbox-ID slices of one round. The
	// round seals only when all NumShards streams have sent Done.
	// NumShards == 0 is the classic single-publisher stream.
	Shard     int `json:"shard,omitempty"`
	NumShards int `json:"num_shards,omitempty"`
}

// cdnReplicateArgs mirrors cdnPublishArgs for node-to-node replication;
// Done carries the round's canonical checksum so the receiver can verify
// the reassembled round before sealing it.
type cdnReplicateArgs struct {
	Service  wire.Service     `json:"service"`
	Round    uint32           `json:"round"`
	Boxes    []cdnBoxFragment `json:"boxes"`
	Done     bool             `json:"done"`
	Abort    bool             `json:"abort,omitempty"`
	Checksum []byte           `json:"checksum,omitempty"`
}

type cdnRoundInfoArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
	// All lists every round the node holds (both services); Service and
	// Round are ignored.
	All bool `json:"all,omitempty"`
}

type cdnRoundEntry struct {
	Service  wire.Service `json:"service"`
	Round    uint32       `json:"round"`
	Checksum []byte       `json:"checksum"`
}

type cdnRoundInfoReply struct {
	Rounds []cdnRoundEntry `json:"rounds,omitempty"`
}

// cdnPullArgs pages one sealed round out of a node (restart backfill).
// Cursor is the first mailbox ID wanted; the reply carries whole
// mailboxes from there, budget-bounded but always at least one, plus the
// next cursor.
type cdnPullArgs struct {
	Service wire.Service `json:"service"`
	Round   uint32       `json:"round"`
	Cursor  uint32       `json:"cursor"`
}

type cdnPullReply struct {
	Boxes []cdnBoxFragment `json:"boxes,omitempty"`
	Next  uint32           `json:"next"`
	Done  bool             `json:"done"`
}

const (
	// stagingLimit bounds how many half-published rounds a CDN node
	// stages. A publisher that dies between fragments never sends Done or
	// Abort, so without a cap its partial mailboxes would accumulate
	// forever; beyond the cap the oldest staged round is dropped (that
	// round already failed — its publisher is gone).
	stagingLimit = 8

	// defaultStagingTTL bounds how long an idle half-published round may
	// stage. The count cap alone is time-unbounded: with fewer than
	// stagingLimit abandoned rounds, their partial mailboxes would sit in
	// memory forever. Any write to a staged round refreshes its clock.
	defaultStagingTTL = 2 * time.Minute

	// stagingSweepInterval is how often the TTL sweep runs.
	stagingSweepInterval = time.Second
)

// stagedRound is one half-published round: mailbox fragments concatenated
// in arrival order, which publish streams have finished (sharded builds),
// and when it was last written (TTL eviction).
type stagedRound struct {
	boxes map[uint32][]byte
	// numShards/shardDone track a sharded publish: the round seals only
	// when every shard's stream has sent Done. numShards == 0 until a
	// shard-tagged frame arrives; a legacy single stream seals on Done
	// directly.
	numShards int
	shardDone []bool
	lastWrite time.Time
}

// CDNDaemon is one CDN node: a cdn.Store plus the staging state behind
// its write surfaces and the replication fan-out to its peers.
type CDNDaemon struct {
	store *cdn.Store

	mu      sync.Mutex
	staging map[outKey]*stagedRound
	order   []outKey
	repl    map[outKey]*stagedRound // cdn.replicate staging, separate keyspace
	peers   []*Client
	ttl     time.Duration

	stagingEvictions atomic.Uint64
	sealsSingle      atomic.Uint64
	sealsSharded     atomic.Uint64
	lastSealStreams  atomic.Int64
}

// RegisterCDN exposes a cdn.Store's write plane over RPC — cdn.publish
// for the last mixer position's shard-tagged mailbox streams, and
// cdn.replicate / cdn.roundinfo / cdn.pull for peer CDN nodes — and
// starts the staging TTL sweep (it stops when the server closes).
// Fetching stays on RegisterCDNFrontend / the entry frontend.
func RegisterCDN(s *Server, store *cdn.Store) *CDNDaemon {
	d := &CDNDaemon{
		store:   store,
		staging: make(map[outKey]*stagedRound),
		repl:    make(map[outKey]*stagedRound),
		ttl:     defaultStagingTTL,
	}

	HandleFunc(s, "cdn.publish", func(a cdnPublishArgs) (any, error) {
		return nil, d.publish(a)
	})
	HandleFunc(s, "cdn.replicate", func(a cdnReplicateArgs) (any, error) {
		return nil, d.replicate(a)
	})
	HandleFunc(s, "cdn.roundinfo", func(a cdnRoundInfoArgs) (any, error) {
		return d.roundInfo(a), nil
	})
	HandleFunc(s, "cdn.pull", func(a cdnPullArgs) (any, error) {
		return d.pull(a)
	})

	go func() {
		t := time.NewTicker(stagingSweepInterval)
		defer t.Stop()
		for {
			select {
			case <-s.Closing():
				return
			case <-t.C:
				d.sweep(time.Now())
			}
		}
	}()
	return d
}

// SetPeers names the other CDN nodes' ingest addresses. Every round this
// node seals from a publish stream is pushed to each peer; Backfill pulls
// the other direction. Replication is publish-triggered only — a round
// received via cdn.replicate is not re-pushed, so mutual peering does not
// loop.
func (d *CDNDaemon) SetPeers(addrs ...string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, addr := range addrs {
		d.peers = append(d.peers, Dial(addr))
	}
}

// SetStagingTTL overrides how long an idle half-published round may stage
// before the sweep evicts it.
func (d *CDNDaemon) SetStagingTTL(ttl time.Duration) {
	d.mu.Lock()
	d.ttl = ttl
	d.mu.Unlock()
}

// StagingEvictions counts staged rounds dropped by the TTL sweep or the
// count cap — publishers that died without sending Done or Abort.
func (d *CDNDaemon) StagingEvictions() uint64 { return d.stagingEvictions.Load() }

// SealsSharded counts rounds sealed from N > 1 shard-tagged publish
// streams; SealsSingle counts classic single-stream seals. LastSealStreams
// is the stream count of the most recent seal.
func (d *CDNDaemon) SealsSharded() uint64 { return d.sealsSharded.Load() }
func (d *CDNDaemon) SealsSingle() uint64  { return d.sealsSingle.Load() }
func (d *CDNDaemon) LastSealStreams() int { return int(d.lastSealStreams.Load()) }

// Close closes the daemon's peer connections (the server owns its own).
func (d *CDNDaemon) Close() {
	d.mu.Lock()
	peers := d.peers
	d.peers = nil
	d.mu.Unlock()
	for _, c := range peers {
		c.Close()
	}
}

// dropLocked removes a staged round from the publish keyspace.
func (d *CDNDaemon) dropLocked(k outKey) {
	if _, ok := d.staging[k]; !ok {
		return
	}
	delete(d.staging, k)
	for i, o := range d.order {
		if o == k {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
}

// sweep evicts staged rounds idle past the TTL, in both keyspaces.
func (d *CDNDaemon) sweep(now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for k, st := range d.staging {
		if now.Sub(st.lastWrite) > d.ttl {
			d.dropLocked(k)
			d.stagingEvictions.Add(1)
		}
	}
	for k, st := range d.repl {
		if now.Sub(st.lastWrite) > d.ttl {
			delete(d.repl, k)
			d.stagingEvictions.Add(1)
		}
	}
}

func (d *CDNDaemon) publish(a cdnPublishArgs) error {
	k := outKey{a.Service, a.Round}
	d.mu.Lock()
	if a.Abort {
		// Any shard's abort discards the whole staged round: a sharded
		// build either seals completely or not at all.
		d.dropLocked(k)
		d.mu.Unlock()
		return nil
	}
	st, ok := d.staging[k]
	if !ok {
		st = &stagedRound{boxes: make(map[uint32][]byte)}
		d.staging[k] = st
		d.order = append(d.order, k)
		for len(d.order) > stagingLimit {
			d.dropLocked(d.order[0])
			d.stagingEvictions.Add(1)
		}
	}
	if a.NumShards > 0 {
		if st.numShards == 0 {
			st.numShards = a.NumShards
			st.shardDone = make([]bool, a.NumShards)
		}
		if a.NumShards != st.numShards || a.Shard < 0 || a.Shard >= st.numShards {
			d.dropLocked(k)
			d.mu.Unlock()
			return fmt.Errorf("cdn: round %d (%s): bad shard %d/%d (staged %d-way)",
				a.Round, a.Service, a.Shard, a.NumShards, st.numShards)
		}
	} else if st.numShards > 0 {
		d.dropLocked(k)
		d.mu.Unlock()
		return fmt.Errorf("cdn: round %d (%s): unsharded stream into %d-way staged round",
			a.Round, a.Service, st.numShards)
	}
	for _, frag := range a.Boxes {
		st.boxes[frag.ID] = append(st.boxes[frag.ID], frag.Data...)
	}
	st.lastWrite = time.Now()
	if !a.Done {
		d.mu.Unlock()
		return nil
	}
	streams := 1
	if st.numShards > 0 {
		st.shardDone[a.Shard] = true
		for _, done := range st.shardDone {
			if !done {
				// Other shards still streaming; the round seals when the
				// last one finishes.
				d.mu.Unlock()
				return nil
			}
		}
		streams = st.numShards
	}
	d.dropLocked(k)
	boxes := st.boxes
	d.mu.Unlock()

	if err := d.store.PublishOwned(a.Service, a.Round, boxes); err != nil {
		return err
	}
	d.lastSealStreams.Store(int64(streams))
	if streams > 1 {
		d.sealsSharded.Add(1)
	} else {
		d.sealsSingle.Add(1)
	}
	d.pushToPeers(a.Service, a.Round)
	return nil
}

// pushToPeers replicates a freshly sealed round to every peer,
// best-effort and asynchronous: a down peer backfills when it returns.
func (d *CDNDaemon) pushToPeers(service wire.Service, round uint32) {
	d.mu.Lock()
	peers := append([]*Client(nil), d.peers...)
	d.mu.Unlock()
	for _, peer := range peers {
		go func(peer *Client) {
			_ = d.ReplicateRound(peer, service, round)
		}(peer)
	}
}

// ReplicateRound streams one locally sealed round to a peer's
// cdn.replicate surface. Idempotent: a peer that already holds the round
// reports success.
func (d *CDNDaemon) ReplicateRound(peer *Client, service wire.Service, round uint32) error {
	boxes, err := d.store.RoundSnapshot(service, round)
	if err != nil {
		return err
	}
	sum, _ := d.store.Checksum(service, round)
	err = streamRound(boxes, func(frags []cdnBoxFragment, done bool) error {
		a := cdnReplicateArgs{Service: service, Round: round, Boxes: frags, Done: done}
		if done {
			a.Checksum = sum[:]
		}
		return peer.CallOnce("cdn.replicate", a, nil)
	})
	if err != nil {
		_ = peer.Call("cdn.replicate", cdnReplicateArgs{Service: service, Round: round, Abort: true}, nil)
		return err
	}
	return nil
}

func (d *CDNDaemon) replicate(a cdnReplicateArgs) error {
	k := outKey{a.Service, a.Round}
	if d.store.Published(a.Service, a.Round) {
		// Already sealed (publish raced replication, or a retried Done).
		// Success — replication is idempotent.
		d.mu.Lock()
		delete(d.repl, k)
		d.mu.Unlock()
		return nil
	}
	d.mu.Lock()
	if a.Abort {
		delete(d.repl, k)
		d.mu.Unlock()
		return nil
	}
	st, ok := d.repl[k]
	if !ok {
		st = &stagedRound{boxes: make(map[uint32][]byte)}
		d.repl[k] = st
	}
	for _, frag := range a.Boxes {
		st.boxes[frag.ID] = append(st.boxes[frag.ID], frag.Data...)
	}
	st.lastWrite = time.Now()
	if !a.Done {
		d.mu.Unlock()
		return nil
	}
	delete(d.repl, k)
	boxes := st.boxes
	d.mu.Unlock()

	sum := cdn.RoundChecksum(boxes)
	if !bytes.Equal(sum[:], a.Checksum) {
		return fmt.Errorf("cdn: round %d (%s): replicated round fails checksum", a.Round, a.Service)
	}
	err := d.store.PublishOwned(a.Service, a.Round, boxes)
	if err != nil && d.store.Published(a.Service, a.Round) {
		return nil // lost a race with another replica or the publisher
	}
	return err
}

func (d *CDNDaemon) roundInfo(a cdnRoundInfoArgs) cdnRoundInfoReply {
	var reply cdnRoundInfoReply
	if a.All {
		for _, service := range []wire.Service{wire.AddFriend, wire.Dialing} {
			for _, info := range d.store.Rounds(service) {
				sum := info.Checksum
				reply.Rounds = append(reply.Rounds, cdnRoundEntry{
					Service: info.Service, Round: info.Round, Checksum: sum[:],
				})
			}
		}
		return reply
	}
	if sum, ok := d.store.Checksum(a.Service, a.Round); ok {
		reply.Rounds = []cdnRoundEntry{{Service: a.Service, Round: a.Round, Checksum: sum[:]}}
	}
	return reply
}

func (d *CDNDaemon) pull(a cdnPullArgs) (cdnPullReply, error) {
	sizes, err := d.store.MailboxSizes(a.Service, a.Round)
	if err != nil {
		return cdnPullReply{}, err
	}
	ids := make([]uint32, 0, len(sizes))
	for id := range sizes {
		if id >= a.Cursor {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var reply cdnPullReply
	var pending int
	for _, id := range ids {
		if len(reply.Boxes) > 0 && pending+sizes[id] > publishBudget {
			reply.Next = id
			return reply, nil
		}
		box, err := d.store.RoundSnapshotMailbox(a.Service, a.Round, id)
		if err != nil {
			return cdnPullReply{}, err
		}
		reply.Boxes = append(reply.Boxes, cdnBoxFragment{ID: id, Data: box})
		pending += len(box)
	}
	reply.Done = true
	return reply, nil
}

// Backfill pulls every sealed round this node is missing from its peers:
// the restart path. A node that was down while rounds sealed probes each
// peer's inventory (cdn.roundinfo), pages missing rounds over cdn.pull,
// verifies each against the peer's advertised checksum, and seals it
// locally. Returns the number of rounds recovered.
func (d *CDNDaemon) Backfill() (int, error) {
	d.mu.Lock()
	peers := append([]*Client(nil), d.peers...)
	d.mu.Unlock()

	recovered := 0
	var firstErr error
	for _, peer := range peers {
		var inv cdnRoundInfoReply
		if err := peer.Call("cdn.roundinfo", cdnRoundInfoArgs{All: true}, &inv); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		for _, entry := range inv.Rounds {
			if d.store.Published(entry.Service, entry.Round) {
				continue
			}
			if err := d.pullRound(peer, entry); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			recovered++
		}
	}
	return recovered, firstErr
}

func (d *CDNDaemon) pullRound(peer *Client, entry cdnRoundEntry) error {
	boxes := make(map[uint32][]byte)
	cursor := uint32(0)
	for {
		var page cdnPullReply
		if err := peer.Call("cdn.pull", cdnPullArgs{
			Service: entry.Service, Round: entry.Round, Cursor: cursor,
		}, &page); err != nil {
			return err
		}
		for _, frag := range page.Boxes {
			boxes[frag.ID] = frag.Data
		}
		if page.Done {
			break
		}
		if page.Next <= cursor && len(page.Boxes) == 0 {
			return fmt.Errorf("cdn: round %d (%s): pull made no progress", entry.Round, entry.Service)
		}
		cursor = page.Next
	}
	sum := cdn.RoundChecksum(boxes)
	if !bytes.Equal(sum[:], entry.Checksum) {
		return fmt.Errorf("cdn: round %d (%s): backfilled round fails checksum", entry.Round, entry.Service)
	}
	err := d.store.PublishOwned(entry.Service, entry.Round, boxes)
	if err != nil && d.store.Published(entry.Service, entry.Round) {
		return nil
	}
	return err
}

// RegisterCDNFrontend exposes a cdn.Store's READ plane — cdn.fetch and
// cdn.fetchrange, the same wire surface a frontend serves — so clients
// (via CDNPool) can fetch mailboxes from CDN nodes directly.
func RegisterCDNFrontend(s *Server, store *cdn.Store) {
	HandleFunc(s, "cdn.fetch", func(a fetchArgs) (any, error) {
		return store.Fetch(a.Service, a.Round, a.Mailbox)
	})
	HandleFunc(s, "cdn.fetchrange", func(a fetchRangeArgs) (any, error) {
		boxes, err := store.FetchRange(a.Service, a.FromRound, a.ToRound, a.Mailbox)
		if err != nil {
			return nil, err
		}
		out := make([]rangedBox, 0, len(boxes))
		for r, data := range boxes {
			out = append(out, rangedBox{Round: r, Data: data})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Round < out[j].Round })
		return out, nil
	})
}

// streamRound feeds a round's mailboxes through send in budget-bounded
// fragment batches, in ID order, splitting oversized mailboxes across
// frames; the final call carries done=true (possibly with no fragments).
func streamRound(mailboxes map[uint32][]byte, send func(frags []cdnBoxFragment, done bool) error) error {
	ids := make([]uint32, 0, len(mailboxes))
	for id := range mailboxes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var frags []cdnBoxFragment
	var pending int
	flush := func(done bool) error {
		if !done && len(frags) == 0 {
			return nil
		}
		err := send(frags, done)
		frags, pending = nil, 0
		return err
	}
	for _, id := range ids {
		data := mailboxes[id]
		for {
			n := min(len(data), publishBudget-pending)
			frags = append(frags, cdnBoxFragment{ID: id, Data: data[:n]})
			data = data[n:]
			pending += n
			if len(data) == 0 {
				break
			}
			if err := flush(false); err != nil {
				return err
			}
		}
		if pending >= publishBudget {
			if err := flush(false); err != nil {
				return err
			}
		}
	}
	return flush(true)
}

// PublishMailboxes streams a round's mailboxes to a cdn.publish endpoint
// in budget-bounded calls, splitting oversized mailboxes across frames.
// Mailboxes are sent in ID order so runs are reproducible. Fragments are
// sent AT MOST ONCE (a transparent retry after a lost reply would
// concatenate a fragment twice); on a mid-publish failure a best-effort
// abort tells the endpoint to discard the staged round.
func PublishMailboxes(c *Client, service wire.Service, round uint32, mailboxes map[uint32][]byte) error {
	return PublishMailboxesShard(c, service, round, mailboxes, 0, 0)
}

// PublishMailboxesShard is PublishMailboxes for one shard of a sharded
// mailbox build: every frame carries the (shard, numShards) tag and the
// endpoint seals the round only when all numShards streams finish.
// numShards == 0 publishes untagged (the classic single stream).
func PublishMailboxesShard(c *Client, service wire.Service, round uint32, mailboxes map[uint32][]byte, shard, numShards int) error {
	err := streamRound(mailboxes, func(frags []cdnBoxFragment, done bool) error {
		return c.CallOnce("cdn.publish", cdnPublishArgs{
			Service: service, Round: round, Boxes: frags, Done: done,
			Shard: shard, NumShards: numShards,
		}, nil)
	})
	if err != nil {
		_ = c.Call("cdn.publish", cdnPublishArgs{
			Service: service, Round: round, Abort: true, Shard: shard, NumShards: numShards,
		}, nil)
		return err
	}
	return nil
}
