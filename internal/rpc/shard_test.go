package rpc_test

import (
	"bytes"
	"crypto/rand"
	"errors"
	mathrand "math/rand"
	"sync/atomic"
	"testing"

	"alpenhorn/internal/cdn"
	"alpenhorn/internal/coordinator"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/mixnet"
	"alpenhorn/internal/noise"
	"alpenhorn/internal/onionbox"
	"alpenhorn/internal/rpc"
	"alpenhorn/internal/wire"
)

// shardFleet is a chain of mixer daemons over localhost TCP where each
// position may be served by several shard daemons.
type shardFleet struct {
	counts  []int
	servers [][]*mixnet.Server
	daemons [][]*rpc.MixerDaemon
	rpcSrvs [][]*rpc.Server
	addrs   [][]string
	clients [][]*rpc.MixerClient
}

// startShardFleet launches counts[i] daemons for position i. randFor may
// be nil (crypto/rand) or a per-(position, shard) deterministic source
// factory.
func startShardFleet(t *testing.T, counts []int, nz noise.Laplace, randFor func(pos, shard int) mathrand.Source) *shardFleet {
	t.Helper()
	f := &shardFleet{counts: counts}
	for i, n := range counts {
		var servers []*mixnet.Server
		var daemons []*rpc.MixerDaemon
		var rpcSrvs []*rpc.Server
		var addrs []string
		var clients []*rpc.MixerClient
		for s := 0; s < n; s++ {
			cfg := mixnet.Config{
				Name: "m", Position: i, ChainLength: len(counts),
				AddFriendNoise: &nz, DialingNoise: &nz,
			}
			if n > 1 {
				cfg.ShardIndex, cfg.ShardCount = s, n
			}
			if randFor != nil {
				cfg.Rand = &seededReader{rng: mathrand.New(randFor(i, s))}
				cfg.Parallelism = 1 // deterministic rand read order
			}
			m, err := mixnet.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			srv := rpc.NewServer()
			d := rpc.RegisterMixer(srv, m)
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(srv.Close)
			mc, err := rpc.DialMixer(addr)
			if err != nil {
				t.Fatal(err)
			}
			servers = append(servers, m)
			daemons = append(daemons, d)
			rpcSrvs = append(rpcSrvs, srv)
			addrs = append(addrs, addr)
			clients = append(clients, mc)
		}
		f.servers = append(f.servers, servers)
		f.daemons = append(f.daemons, daemons)
		f.rpcSrvs = append(f.rpcSrvs, rpcSrvs)
		f.addrs = append(f.addrs, addrs)
		f.clients = append(f.clients, clients)
	}
	return f
}

// shardCoordinator assembles a chain-forward coordinator over a shard
// fleet: position leads in Mixers, the rest of each group in Shards.
func shardCoordinator(f *shardFleet, e *entry.Server, store *cdn.Store, cdnAddr string) *coordinator.Coordinator {
	coord := &coordinator.Coordinator{
		Entry: e, CDN: store,
		TargetRequestsPerMailbox: 40,
		ChainForward:             true,
		CDNAddr:                  cdnAddr,
		Shards:                   make([][]coordinator.Mixer, len(f.counts)),
	}
	for i, group := range f.clients {
		coord.Mixers = append(coord.Mixers, group[0])
		for _, mc := range group[1:] {
			coord.Shards[i] = append(coord.Shards[i], mc)
		}
	}
	return coord
}

// assertNoLeaks checks that a daemon holds no round state after a round
// resolved: no routes, no relay outboxes, no live round key.
func assertShardFleetClean(t *testing.T, f *shardFleet, round uint32, skip func(pos, shard int) bool) {
	t.Helper()
	for i, group := range f.daemons {
		for s, d := range group {
			if skip != nil && skip(i, s) {
				continue
			}
			if n := d.PendingRoutes(); n != 0 {
				t.Errorf("daemon %d/%d: %d routes leak", i, s, n)
			}
			if n := d.PendingOutboxes(); n != 0 {
				t.Errorf("daemon %d/%d: %d outboxes leak", i, s, n)
			}
			if f.servers[i][s].RoundOpen(wire.Dialing, round) {
				t.Errorf("daemon %d/%d: round key survives", i, s)
			}
		}
	}
}

// TestShardedRoundOverTCP is the shard-group acceptance test: a round
// over real TCP daemons with the middle position sharded across two
// processes completes end to end — both shards peel with the position's
// one announced key, the merge shard performs the position's shuffle, the
// mailboxes land in the CDN, the coordinator still only moves control
// bytes plus the entry batch, and per-daemon health comes back through
// mix.round.wait.
func TestShardedRoundOverTCP(t *testing.T) {
	nz := noise.Laplace{Mu: 2, B: 0}
	f := startShardFleet(t, []int{1, 2, 1}, nz, nil)
	store, cdnAddr := startCDN(t)
	e := entry.New()
	coord := shardCoordinator(f, e, store, cdnAddr)
	coord.ChunkSize = 32
	coord.SetExpectedVolume(wire.Dialing, 300)

	settings, err := coord.OpenDialingRound(1)
	if err != nil {
		t.Fatal(err)
	}
	if settings.NumMailboxes < 2 {
		t.Fatalf("want a multi-mailbox round, got K=%d", settings.NumMailboxes)
	}
	if len(settings.Mixers) != 3 {
		t.Fatalf("clients must see one key per POSITION, got %d", len(settings.Mixers))
	}
	tokens := makeTestTokens(300)
	batchBytes := submitTokens(t, e, settings, tokens, nil)

	mailboxes, err := coord.CloseRound(wire.Dialing, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mailboxes != nil {
		t.Fatal("chain-forward CloseRound returned mailboxes through the coordinator")
	}
	if !store.Published(wire.Dialing, 1) {
		t.Fatal("round not published")
	}
	assertTokensDelivered(t, store, 1, settings, tokens)

	// Control-plane discipline holds with shards: no full-batch relaying
	// anywhere, and the coordinator ships batch data only to position 0.
	const controlBudget = 32 << 10
	for i, group := range f.clients {
		for s, mc := range group {
			if n := mc.CallCount("mix.mix"); n != 0 {
				t.Errorf("mixer %d/%d: %d mix.mix calls", i, s, n)
			}
			if n := mc.CallCount("mix.stream.pull"); n != 0 {
				t.Errorf("mixer %d/%d: %d mix.stream.pull calls", i, s, n)
			}
			st := mc.TransportStats()
			if i > 0 && st.BytesSent > controlBudget {
				t.Errorf("mixer %d/%d: coordinator sent %d bytes, want control-only", i, s, st.BytesSent)
			}
		}
	}
	if st := f.clients[0][0].TransportStats(); st.BytesSent < uint64(batchBytes) {
		t.Errorf("mixer 0/0: coordinator sent %d bytes, want >= batch (%d)", st.BytesSent, batchBytes)
	}
	assertShardFleetClean(t, f, 1, nil)

	// Round health: one record, forwarded, with per-daemon stats for all
	// four daemons; every daemon moved batch bytes in AND out.
	health := coord.Status()
	if len(health) != 1 {
		t.Fatalf("Status(): %d records, want 1", len(health))
	}
	h := health[0]
	if !h.Forwarded || h.Service != wire.Dialing || h.Round != 1 || h.Err != "" {
		t.Fatalf("health record: %+v", h)
	}
	if h.Batch != 300 || h.Duration <= 0 {
		t.Fatalf("health batch/duration: %+v", h)
	}
	if len(h.Daemons) != 4 {
		t.Fatalf("health daemons: %d, want 4", len(h.Daemons))
	}
	for _, d := range h.Daemons {
		if d.Err != "" {
			t.Errorf("daemon %d/%d health error: %s", d.Position, d.Shard, d.Err)
		}
		if d.Stats.BytesIn == 0 || d.Stats.BytesOut == 0 {
			t.Errorf("daemon %d/%d reported no batch traffic: %+v", d.Position, d.Shard, d.Stats)
		}
		if d.Addr == "" {
			t.Errorf("daemon %d/%d health has no address", d.Position, d.Shard)
		}
	}
}

// TestShardDeterminismAcrossShardCounts pins the core sharding
// guarantee: under a fixed seed, an unsharded (PR 2 chain-forwarded)
// round, a 2-shard-per-position round, and a 3-shard-per-position round
// publish byte-identical mailboxes. Splitting a position across machines
// changes WHERE work happens — the deal, the peel, the merge — but never
// what comes out.
//
// Noise is zero here on purpose: noise BODIES are fresh randomness per
// server, so distributing their generation across different machines
// necessarily draws different fake tokens (the distribution, not the
// bytes, is the invariant — TestShardNoiseDivision pins that). With
// noise silenced, every remaining byte must match exactly.
func TestShardDeterminismAcrossShardCounts(t *testing.T) {
	nz := noise.Laplace{Mu: 0, B: 0}
	const numTokens = 120
	tokens := makeTestTokens(numTokens)

	runMode := func(shardsPerPos int) (*wire.RoundSettings, map[uint32][]byte) {
		counts := []int{shardsPerPos, shardsPerPos, shardsPerPos}
		f := startShardFleet(t, counts, nz, func(pos, shard int) mathrand.Source {
			if shard == 0 {
				// Leads draw the position's round key (and the merge
				// shuffle); identical seeds per position across modes.
				return mathrand.NewSource(int64(1000 + pos))
			}
			return mathrand.NewSource(int64(5000 + 100*pos + shard))
		})
		store, cdnAddr, daemon := startCDNDaemon(t)
		e := entry.New()
		coord := shardCoordinator(f, e, store, cdnAddr)
		coord.ChunkSize = 16
		coord.SetExpectedVolume(wire.Dialing, numTokens)

		settings, err := coord.OpenDialingRound(1)
		if err != nil {
			t.Fatal(err)
		}
		submitTokens(t, e, settings, tokens, mathrand.New(mathrand.NewSource(4242)))
		if _, err := coord.CloseRound(wire.Dialing, 1); err != nil {
			t.Fatalf("%d shards/position: %v", shardsPerPos, err)
		}
		// The seal's stream count pins that the sharded-build path really
		// ran: N > 1 shards mean N publish streams — the merge server no
		// longer funnels the round's final mailbox bytes.
		if got := daemon.LastSealStreams(); got != shardsPerPos {
			t.Fatalf("%d shards/position: round sealed from %d publish streams", shardsPerPos, got)
		}
		boxes := make(map[uint32][]byte)
		for mb := uint32(0); mb < settings.NumMailboxes; mb++ {
			data, err := store.Fetch(wire.Dialing, 1, mb)
			if err != nil {
				t.Fatalf("%d shards/position: mailbox %d: %v", shardsPerPos, mb, err)
			}
			boxes[mb] = data
		}
		return settings, boxes
	}

	baseSettings, base := runMode(1)
	if baseSettings.NumMailboxes < 2 {
		t.Fatalf("want a multi-mailbox round, got K=%d", baseSettings.NumMailboxes)
	}
	for _, shardsPerPos := range []int{2, 3} {
		settings, got := runMode(shardsPerPos)
		if settings.NumMailboxes != baseSettings.NumMailboxes {
			t.Fatalf("%d shards: K=%d, unsharded K=%d", shardsPerPos, settings.NumMailboxes, baseSettings.NumMailboxes)
		}
		for mb := uint32(0); mb < baseSettings.NumMailboxes; mb++ {
			if !bytes.Equal(base[mb], got[mb]) {
				t.Errorf("%d shards/position: mailbox %d differs from unsharded", shardsPerPos, mb)
			}
		}
	}
}

// TestShardAbortMidRound kills one shard of the middle position while the
// batch is streaming through it: the abort must reach every shard of
// every position and the coordinator, nothing may leak (routes, outboxes,
// round keys, staged merges), and the round after the shard restarts must
// succeed.
func TestShardAbortMidRound(t *testing.T) {
	nz := noise.Laplace{Mu: 2, B: 0}
	f := startShardFleet(t, []int{1, 2, 1}, nz, nil)
	store, cdnAddr := startCDN(t)
	e := entry.New()
	coord := shardCoordinator(f, e, store, cdnAddr)
	coord.ChunkSize = 8 // many chunks per hop, so the kill lands mid-stream
	coord.SetExpectedVolume(wire.Dialing, 120)

	// Sabotage the middle position's NON-merge shard: after two dealt
	// chunks arrive, it starts failing and its server goes down.
	var chunks atomic.Int32
	rpc.HandleFunc(f.rpcSrvs[1][1], "mix.stream.chunk", func(a struct {
		Service wire.Service `json:"service"`
		Round   uint32       `json:"round"`
		Batch   [][]byte     `json:"batch"`
	}) (any, error) {
		if chunks.Add(1) > 2 {
			go f.rpcSrvs[1][1].Close()
			return nil, errors.New("shard 1/1 crashed mid-stream")
		}
		return nil, f.servers[1][1].StreamChunk(a.Service, a.Round, a.Batch)
	})

	settings, err := coord.OpenDialingRound(1)
	if err != nil {
		t.Fatal(err)
	}
	tokens := makeTestTokens(120)
	submitTokens(t, e, settings, tokens, nil)

	if _, err := coord.CloseRound(wire.Dialing, 1); err == nil {
		t.Fatal("round with a dead mid-chain shard succeeded")
	}
	if chunks.Load() < 3 {
		t.Fatalf("shard died after %d chunks; the kill was not mid-stream", chunks.Load())
	}
	if store.Published(wire.Dialing, 1) {
		t.Fatal("aborted round was published")
	}
	// Every SURVIVING daemon is clean (the dead daemon's RPC server is
	// down; its in-memory state dies with the process in a real
	// deployment).
	assertShardFleetClean(t, f, 1, func(pos, shard int) bool { return pos == 1 && shard == 1 })
	// The abort was recorded in the round's health.
	health := coord.Status()
	if len(health) != 1 || health[0].Err == "" {
		t.Fatalf("aborted round missing from health: %+v", health)
	}

	// The shard comes back on the same address (fresh RPC server, same
	// mixer); every cached connection redials lazily.
	restarted := rpc.NewServer()
	f.daemons[1][1] = rpc.RegisterMixer(restarted, f.servers[1][1])
	if _, err := restarted.Listen(f.addrs[1][1]); err != nil {
		t.Fatalf("restarting shard on %s: %v", f.addrs[1][1], err)
	}
	t.Cleanup(restarted.Close)

	settings2, err := coord.OpenDialingRound(2)
	if err != nil {
		t.Fatal(err)
	}
	tokens2 := makeTestTokens(90)
	submitTokens(t, e, settings2, tokens2, nil)
	if _, err := coord.CloseRound(wire.Dialing, 2); err != nil {
		t.Fatalf("round after shard restart failed: %v", err)
	}
	if !store.Published(wire.Dialing, 2) {
		t.Fatal("recovered round not published")
	}
	assertTokensDelivered(t, store, 2, settings2, tokens2)
}

// TestStreamFanInTwoUpstreams drives the counted fan-in directly: a
// daemon routed with NumUpstream=2 (the entry scale-out hook — several
// frontends feeding one mixer) must keep its intake open until BOTH
// upstreams have sent mix.stream.end, then run its role once over the
// union of the two streams.
func TestStreamFanInTwoUpstreams(t *testing.T) {
	nz := noise.Laplace{Mu: 0, B: 0}
	m, err := mixnet.New(mixnet.Config{
		Name: "m", Position: 0, ChainLength: 1,
		AddFriendNoise: &nz, DialingNoise: &nz,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer()
	rpc.RegisterMixer(srv, m)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	store, cdnAddr := startCDN(t)

	mc, err := rpc.DialMixer(addr)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := mc.NewRound(wire.Dialing, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.SetDownstreamKeys(wire.Dialing, 1, nil); err != nil {
		t.Fatal(err)
	}
	const numMailboxes = 2
	if err := mc.OpenRoute(wire.Dialing, 1, wire.RouteSpec{
		NumMailboxes: numMailboxes, CDNAddr: cdnAddr, NumUpstream: 2,
	}); err != nil {
		t.Fatal(err)
	}

	pk, err := onionbox.UnmarshalPublicKey(rk.OnionKey)
	if err != nil {
		t.Fatal(err)
	}
	tokens := makeTestTokens(10)
	wrap := func(i int) []byte {
		payload := (&wire.MixPayload{Mailbox: uint32(i) % numMailboxes, Body: tokens[i]}).Marshal()
		onion, err := onionbox.WrapOnion(rand.Reader, []*onionbox.PublicKey{pk}, payload)
		if err != nil {
			t.Fatal(err)
		}
		return onion
	}

	// Two independent upstream connections, interleaved.
	up := []*rpc.MixerClient{mc}
	second, err := rpc.DialMixer(addr)
	if err != nil {
		t.Fatal(err)
	}
	up = append(up, second)
	for _, u := range up {
		if err := u.StreamBegin(wire.Dialing, 1, numMailboxes); err != nil {
			t.Fatal(err)
		}
	}
	for i := range tokens {
		var onions [][]byte
		onions = append(onions, wrap(i))
		if err := up[i%2].StreamChunk(wire.Dialing, 1, onions); err != nil {
			t.Fatal(err)
		}
	}
	// First end: the intake must stay open (publishing now would drop
	// half the batch).
	if _, err := up[0].StreamEnd(wire.Dialing, 1); err != nil {
		t.Fatal(err)
	}
	if store.Published(wire.Dialing, 1) {
		t.Fatal("daemon closed its intake after the FIRST upstream end")
	}
	// A duplicated end from the SAME upstream (restarted frontend
	// re-sending) must not stand in for the one still streaming.
	if _, err := up[0].StreamEnd(wire.Dialing, 1); err != nil {
		t.Fatal(err)
	}
	if store.Published(wire.Dialing, 1) {
		t.Fatal("daemon closed its intake on a duplicated end from one upstream")
	}
	if _, err := up[1].StreamEndAs(wire.Dialing, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.WaitRound(wire.Dialing, 1); err != nil {
		t.Fatal(err)
	}
	if !store.Published(wire.Dialing, 1) {
		t.Fatal("round not published after the second upstream end")
	}
	settings := &wire.RoundSettings{Service: wire.Dialing, NumMailboxes: numMailboxes}
	assertTokensDelivered(t, store, 1, settings, tokens)
	mc.CloseRound(wire.Dialing, 1)
}
