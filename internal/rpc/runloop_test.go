package rpc_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"alpenhorn/internal/core"
	"alpenhorn/internal/rpc"
	"alpenhorn/internal/sim"
	"alpenhorn/internal/wire"
)

// waitUntil polls cond until it holds or the timeout expires.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// newRunNetwork builds an in-process deployment whose client-facing
// frontend is served over real TCP, and a Run-driven client talking to it.
func newRunNetwork(t *testing.T) (*sim.Network, *rpc.Server, string) {
	t.Helper()
	network, err := sim.NewNetwork(sim.Config{NumPKGs: 1, NumMixers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer()
	rpc.RegisterFrontend(srv, network.Entry, network.CDN, rpc.Directory{NumMixers: 1})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return network, srv, addr
}

// newTCPRunClient registers a client whose frontend transport is the TCP
// FrontendClient (PKG traffic stays in-process: it is not under test).
func newTCPRunClient(t *testing.T, network *sim.Network, frontend *rpc.FrontendClient, email string) (*core.Client, *sim.Handler) {
	t.Helper()
	h := &sim.Handler{AcceptAll: true}
	cfg := network.ClientConfig(email, h)
	cfg.Entry = frontend
	cfg.Mailboxes = frontend
	cfg.PollInterval = 50 * time.Millisecond
	client, err := core.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Register(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := network.ConfirmAll(client); err != nil {
		t.Fatal(err)
	}
	return client, h
}

// driveDialRounds opens and closes dialing rounds [from, to], waiting up
// to window for want submissions per round, and asserts no round ever
// carries more submissions than want (the no-double-submit pin: the
// entry server sees every accepted onion, so a client re-submitting a
// round would exceed the budget).
func driveDialRounds(t *testing.T, network *sim.Network, from, to uint32, want int, window time.Duration) {
	t.Helper()
	for r := from; r <= to; r++ {
		if _, err := network.Coord.OpenDialingRound(r); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(window)
		for time.Now().Before(deadline) && network.Entry.BatchSize(wire.Dialing, r) < want {
			time.Sleep(2 * time.Millisecond)
		}
		if got := network.Entry.BatchSize(wire.Dialing, r); got > want {
			t.Fatalf("dialing round %d carries %d submissions, want at most %d — a client double-submitted", r, got, want)
		}
		if _, err := network.Coord.CloseRound(wire.Dialing, r); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRunSurvivesFrontendRestart kills the frontend's TCP listener
// mid-round under Client.Run and restarts it on the same address: the
// client reconnects with backoff, no round is ever double-submitted, the
// rounds missed during the outage drain from the backlog in order, and
// cancelling the context returns promptly with no leaked goroutines.
func TestRunSurvivesFrontendRestart(t *testing.T) {
	network, srv, addr := newRunNetwork(t)
	baseline := runtime.NumGoroutine()

	frontend := rpc.DialFrontend(addr)
	client, _ := newTCPRunClient(t, network, frontend, "restart@tcp.example")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	handle, err := client.ConnectDialing(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: rounds flow normally over TCP.
	driveDialRounds(t, network, 1, 3, 1, 5*time.Second)
	waitUntil(t, 10*time.Second, "pre-restart rounds to be scanned", func() bool {
		return client.DialRound() >= 4
	})

	// Phase 2: the frontend dies mid-round. Rounds keep happening — the
	// deployment does not stop for one frontend — but this client cannot
	// see or reach them (its submissions fail; that is what cover-traffic
	// continuity costs when the network is down).
	srv.Close()
	driveDialRounds(t, network, 4, 5, 0, 30*time.Millisecond)

	// Phase 3: a new frontend process binds the same address and serves
	// the same deployment. The client's feed reconnects by itself.
	var srv2 *rpc.Server
	waitUntil(t, 5*time.Second, "frontend address to rebind", func() bool {
		s := rpc.NewServer()
		rpc.RegisterFrontend(s, network.Entry, network.CDN, rpc.Directory{NumMixers: 1})
		if _, err := s.Listen(addr); err != nil {
			s.Close()
			return false
		}
		srv2 = s
		return true
	})
	defer srv2.Close()

	driveDialRounds(t, network, 6, 8, 1, 10*time.Second)

	// The outage rounds (4, 5) and the post-restart rounds all get
	// scanned, oldest-first, through the backlog.
	waitUntil(t, 15*time.Second, "post-restart rounds to be scanned", func() bool {
		return client.DialRound() >= 9 && client.DialBacklog() == 0
	})

	// Cancelling mid-round returns well within one network timeout.
	start := time.Now()
	cancel()
	handle.Close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("shutdown took %v, want well under one network timeout", elapsed)
	}
	if err := handle.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("handle.Err() = %v, want context.Canceled", err)
	}

	// Every loop goroutine is gone once the handle closes and the
	// client's connections drop. The frontend server is closed too:
	// Server.Close unparks its entry.events waiters via Closing, so a
	// handler parked on behalf of the now-gone client does not count as
	// a (time-bounded) straggler here.
	frontend.Close()
	srv2.Close()
	waitUntil(t, 5*time.Second, "goroutines to drain", func() bool {
		return runtime.NumGoroutine() <= baseline
	})
}

// TestStreamingVsPollingStatusLoad is the status-load acceptance pin: for
// the same rounds, a client on the entry.events stream issues at least 5x
// fewer round-tracking requests than a 100ms poller — and a
// streaming-capable client pointed at a POLL-ONLY frontend degrades
// transparently, completing the same rounds via status polling.
func TestStreamingVsPollingStatusLoad(t *testing.T) {
	network, pushSrv, pushAddr := newRunNetwork(t)
	defer pushSrv.Close()

	// A second, poll-only frontend serves the SAME deployment (a frontend
	// built before entry.events existed).
	pollSrv := rpc.NewServer()
	rpc.RegisterPollFrontend(pollSrv, network.Entry, network.CDN, rpc.Directory{NumMixers: 1})
	pollAddr, err := pollSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pollSrv.Close()

	streamFE := rpc.DialFrontend(pushAddr)
	pollFE := rpc.DialFrontend(pollAddr)
	defer streamFE.Close()
	defer pollFE.Close()
	streamer, _ := newTCPRunClient(t, network, streamFE, "streamer@tcp.example")
	poller, _ := newTCPRunClient(t, network, pollFE, "poller@tcp.example")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hs, err := streamer.ConnectDialing(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()
	hp, err := poller.ConnectDialing(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer hp.Close()

	// The same rounds for both clients, paced like a real deployment:
	// the round interval dwarfs the submit time, which is exactly when
	// polling burns requests on nothing.
	const rounds = 5
	for r := uint32(1); r <= rounds; r++ {
		roundStart := time.Now()
		if _, err := network.Coord.OpenDialingRound(r); err != nil {
			t.Fatal(err)
		}
		waitUntil(t, 10*time.Second, "both clients to submit", func() bool {
			return network.Entry.BatchSize(wire.Dialing, r) >= 2
		})
		if sofar := time.Since(roundStart); sofar < 800*time.Millisecond {
			time.Sleep(800*time.Millisecond - sofar)
		}
		if _, err := network.Coord.CloseRound(wire.Dialing, r); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, 15*time.Second, "both clients to scan all rounds", func() bool {
		return streamer.DialRound() >= rounds+1 && poller.DialRound() >= rounds+1
	})
	cancel()
	hs.Close()
	hp.Close()

	// Round tracking: status polls for the poller, events long-polls (plus
	// any stray status calls) for the streamer.
	pollTracking := pollFE.CallCount("frontend.status")
	streamTracking := streamFE.CallCount("entry.events") + streamFE.CallCount("frontend.status")
	t.Logf("round-tracking requests over %d rounds: poller=%d streamer=%d (%.1fx)",
		rounds, pollTracking, streamTracking, float64(pollTracking)/float64(streamTracking))
	if pollTracking < 5*streamTracking {
		t.Fatalf("streaming saved less than 5x: poller %d vs streamer %d tracking requests", pollTracking, streamTracking)
	}

	// Transparent degrade, pinned: the poll-side client runs the SAME
	// streaming-capable code — it probed entry.events, got "unknown
	// method", and fell back to polling without missing a round.
	if n := pollFE.CallCount("entry.events"); n < 1 {
		t.Fatal("poll-side client never probed the event stream (fallback path untested)")
	} else if n > 2 {
		t.Fatalf("poll-side client kept calling entry.events (%d calls) after the frontend rejected it", n)
	}
	if poller.DialRound() < rounds+1 {
		t.Fatal("poll-fallback client missed rounds")
	}
}

// TestFetchRangeFallbackOverTCP pins the MailboxStore degrade: against a
// frontend without cdn.fetchrange, FetchRange silently becomes per-round
// fetches with the same absent-round semantics.
func TestFetchRangeFallbackOverTCP(t *testing.T) {
	network, srv, addr := newRunNetwork(t)
	defer srv.Close()

	// Publish three dialing rounds (noise-only batches are fine).
	for r := uint32(1); r <= 3; r++ {
		if _, err := network.Coord.OpenDialingRound(r); err != nil {
			t.Fatal(err)
		}
		if _, err := network.Coord.CloseRound(wire.Dialing, r); err != nil {
			t.Fatal(err)
		}
	}

	pollSrv := rpc.NewServer()
	rpc.RegisterPollFrontend(pollSrv, network.Entry, network.CDN, rpc.Directory{NumMixers: 1})
	pollAddr, err := pollSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pollSrv.Close()

	ctx := context.Background()
	for _, tc := range []struct {
		name string
		addr string
	}{{"ranged frontend", addr}, {"poll-only frontend (per-round fallback)", pollAddr}} {
		fe := rpc.DialFrontend(tc.addr)
		got, err := fe.FetchRange(ctx, wire.Dialing, 1, 5, 0)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(got) != 3 {
			t.Fatalf("%s: ranged fetch returned %d rounds, want 3 (rounds 4-5 unpublished)", tc.name, len(got))
		}
		for r := uint32(1); r <= 3; r++ {
			if len(got[r]) == 0 {
				t.Fatalf("%s: round %d mailbox empty", tc.name, r)
			}
		}
		fe.Close()
	}
}
