package rpc_test

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"testing"

	"alpenhorn/internal/bls"
	"alpenhorn/internal/cdn"
	"alpenhorn/internal/coordinator"
	"alpenhorn/internal/core"
	"alpenhorn/internal/email"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/keywheel"
	"alpenhorn/internal/mixnet"
	"alpenhorn/internal/noise"
	"alpenhorn/internal/onionbox"
	"alpenhorn/internal/pkgserver"
	"alpenhorn/internal/rpc"
	"alpenhorn/internal/sim"
	"alpenhorn/internal/wire"
)

func TestBasicCall(t *testing.T) {
	s := rpc.NewServer()
	rpc.HandleFunc(s, "echo", func(arg struct {
		X int `json:"x"`
	}) (any, error) {
		return map[string]int{"x": arg.X + 1}, nil
	})
	rpc.HandleFunc(s, "fail", func(struct{}) (any, error) {
		return nil, errors.New("intentional failure")
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := rpc.Dial(addr)
	defer c.Close()
	var out struct {
		X int `json:"x"`
	}
	if err := c.Call("echo", map[string]int{"x": 41}, &out); err != nil {
		t.Fatal(err)
	}
	if out.X != 42 {
		t.Fatalf("echo returned %d", out.X)
	}
	if err := c.Call("fail", struct{}{}, nil); err == nil || err.Error() != "intentional failure" {
		t.Fatalf("error not propagated: %v", err)
	}
	if err := c.Call("missing", struct{}{}, nil); err == nil {
		t.Fatal("unknown method did not error")
	}
}

// TestFullDeploymentOverTCP runs the complete Alpenhorn protocol — PKG
// registration, add-friend handshake, and a dialed call — with every
// client↔server interaction crossing real localhost TCP connections.
func TestFullDeploymentOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("full TCP deployment is slow")
	}
	provider := email.NewInMemoryProvider()
	nz := noise.Laplace{Mu: 1, B: 0}

	// Start 2 PKG daemons and 2 mixer daemons on ephemeral ports.
	const numPKGs, numMixers = 2, 2
	var pkgClients []*rpc.PKGClient
	var pkgServers []*pkgserver.Server
	var pkgKeys []ed25519.PublicKey
	var pkgBLS []*bls.PublicKey
	for i := 0; i < numPKGs; i++ {
		pkg, err := pkgserver.New(pkgserver.Config{Name: "pkg", Provider: provider})
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer()
		rpc.RegisterPKG(srv, pkg)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		pkgClients = append(pkgClients, rpc.DialPKG(addr))
		pkgServers = append(pkgServers, pkg)
		pkgKeys = append(pkgKeys, pkg.SigningKey())
		pkgBLS = append(pkgBLS, pkg.BLSKey())
	}

	var mixerClients []*rpc.MixerClient
	var mixerKeys []ed25519.PublicKey
	for i := 0; i < numMixers; i++ {
		m, err := mixnet.New(mixnet.Config{
			Name: "mix", Position: i, ChainLength: numMixers,
			AddFriendNoise: &nz, DialingNoise: &nz,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer()
		rpc.RegisterMixer(srv, m)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		mc, err := rpc.DialMixer(addr)
		if err != nil {
			t.Fatal(err)
		}
		mixerClients = append(mixerClients, mc)
		mixerKeys = append(mixerKeys, m.SigningKey())
	}

	// Frontend daemon: entry + CDN + coordinator over the RPC backends.
	e := entry.New()
	store := cdn.NewStore(0)
	coord := &coordinator.Coordinator{
		Entry: e, CDN: store,
		TargetRequestsPerMailbox: 24000,
	}
	for _, mc := range mixerClients {
		coord.Mixers = append(coord.Mixers, mc)
	}
	for _, pc := range pkgClients {
		coord.PKGs = append(coord.PKGs, pc)
	}
	feSrv := rpc.NewServer()
	rpc.RegisterFrontend(feSrv, e, store, rpc.Directory{NumMixers: numMixers})
	feAddr, err := feSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer feSrv.Close()
	frontend := rpc.DialFrontend(feAddr)

	// Two clients, each talking to the daemons only via RPC.
	newTCPClient := func(addr string, h core.Handler) *core.Client {
		cfg := core.Config{
			Email:      addr,
			Entry:      frontend,
			Mailboxes:  frontend,
			MixerKeys:  mixerKeys,
			PKGKeys:    pkgKeys,
			PKGBLSKeys: pkgBLS,
			NumIntents: 3,
			Handler:    h,
		}
		for _, pc := range pkgClients {
			cfg.PKGs = append(cfg.PKGs, pc)
		}
		c, err := core.NewClient(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Register(context.Background()); err != nil {
			t.Fatal(err)
		}
		// Confirm with the emailed tokens (token i is from PKG i).
		inbox := provider.Inbox(addr)
		if len(inbox) < numPKGs {
			t.Fatalf("only %d confirmation mails", len(inbox))
		}
		start := len(inbox) - numPKGs
		for i := 0; i < numPKGs; i++ {
			if err := c.ConfirmRegistration(context.Background(), i, inbox[start+i].Body); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}

	ha := &sim.Handler{AcceptAll: true}
	hb := &sim.Handler{AcceptAll: true}
	alice := newTCPClient("alice@tcp.example", ha)
	bob := newTCPClient("bob@tcp.example", hb)
	clients := []*core.Client{alice, bob}

	runAddFriendRound := func(round uint32) {
		if _, err := coord.OpenAddFriendRound(round); err != nil {
			t.Fatal(err)
		}
		for _, c := range clients {
			if err := c.SubmitAddFriendRound(context.Background(), round); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := coord.CloseRound(wire.AddFriend, round); err != nil {
			t.Fatal(err)
		}
		for _, c := range clients {
			if err := c.ScanAddFriendRound(context.Background(), round); err != nil {
				t.Fatal(err)
			}
		}
		coord.FinishAddFriendRound(round)
	}
	runDialRound := func(round uint32) {
		if _, err := coord.OpenDialingRound(round); err != nil {
			t.Fatal(err)
		}
		for _, c := range clients {
			if err := c.SubmitDialRound(context.Background(), round); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := coord.CloseRound(wire.Dialing, round); err != nil {
			t.Fatal(err)
		}
		for _, c := range clients {
			if err := c.ScanDialRound(context.Background(), round); err != nil {
				t.Fatal(err)
			}
		}
	}

	if err := alice.AddFriend(bob.Email(), nil); err != nil {
		t.Fatal(err)
	}
	runAddFriendRound(1)
	runAddFriendRound(2)
	if !alice.IsFriend(bob.Email()) || !bob.IsFriend(alice.Email()) {
		t.Fatal("friendship did not complete over TCP")
	}

	if err := alice.Call(bob.Email(), 1); err != nil {
		t.Fatal(err)
	}
	for r := uint32(1); r <= 6; r++ {
		runDialRound(r)
		if len(hb.IncomingCalls()) > 0 {
			break
		}
	}
	in := hb.IncomingCalls()
	out := ha.OutgoingCalls()
	if len(in) != 1 || len(out) != 1 || in[0].SessionKey != out[0].SessionKey {
		t.Fatal("call did not complete over TCP")
	}

	// Forward secrecy across the wire: PKG round keys are gone.
	for _, p := range pkgServers {
		if p.RoundOpen(1) || p.RoundOpen(2) {
			t.Fatal("PKG round keys survive over TCP deployment")
		}
	}
}

// TestMixerStreamingOverTCP drives the chunked streaming surface of a
// mixer daemon across a real TCP connection: begin intake, push chunks,
// then collect the shuffled output — and checks it matches what a
// full-batch Mix would have produced.
func TestMixerStreamingOverTCP(t *testing.T) {
	nz := noise.Laplace{Mu: 0, B: 0}
	m, err := mixnet.New(mixnet.Config{
		Name: "m0", Position: 0, ChainLength: 1,
		AddFriendNoise: &nz, DialingNoise: &nz,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer()
	rpc.RegisterMixer(srv, m)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := rpc.DialMixer(addr)
	if err != nil {
		t.Fatal(err)
	}
	// The client must satisfy the coordinator's streaming interfaces.
	var _ coordinator.StreamMixer = client
	var _ coordinator.NoisePreparer = client

	rk, err := client.NewRound(wire.Dialing, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.SetDownstreamKeys(wire.Dialing, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := client.PrepareNoise(wire.Dialing, 1, 1); err != nil {
		t.Fatal(err)
	}
	pk, err := onionbox.UnmarshalPublicKey(rk.OnionKey)
	if err != nil {
		t.Fatal(err)
	}

	const n = 50
	batch := make([][]byte, n)
	want := make(map[string]bool, n)
	for i := range batch {
		tok := make([]byte, keywheel.TokenSize)
		tok[0] = byte(i)
		payload := (&wire.MixPayload{Mailbox: 0, Body: tok}).Marshal()
		onion, err := onionbox.WrapOnion(rand.Reader, []*onionbox.PublicKey{pk}, payload)
		if err != nil {
			t.Fatal(err)
		}
		batch[i] = onion
		want[string(payload)] = true
	}

	if err := client.StreamBegin(wire.Dialing, 1, 1); err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < n; lo += 7 {
		hi := lo + 7
		if hi > n {
			hi = n
		}
		if err := client.StreamChunk(wire.Dialing, 1, batch[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	out, err := client.StreamEnd(wire.Dialing, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("stream returned %d messages, want %d", len(out), n)
	}
	for _, msg := range out {
		if !want[string(msg)] {
			t.Fatal("streamed output contains unexpected message")
		}
		delete(want, string(msg))
	}
	if len(want) != 0 {
		t.Fatalf("%d messages missing from streamed output", len(want))
	}

	// Stream errors cross the wire too.
	if _, err := client.StreamEnd(wire.Dialing, 1); err == nil {
		t.Fatal("StreamEnd without a stream succeeded over RPC")
	}

	// The daemon advertises the streaming surface to the coordinator.
	if !client.SupportsStreaming() {
		t.Fatal("new daemon does not advertise streaming")
	}

	// Output retrieval is chunked: drive mix.stream.pull directly with a
	// tiny Max and check the outbox hands the batch over piecewise, then
	// clears itself after the last chunk.
	if err := client.StreamBegin(wire.Dialing, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := client.StreamChunk(wire.Dialing, 1, batch); err != nil {
		t.Fatal(err)
	}
	raw := rpc.Dial(addr)
	defer raw.Close()
	var reply struct {
		Total int `json:"total"`
	}
	if err := raw.Call("mix.stream.end", map[string]any{"service": wire.Dialing, "round": 1}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Total != n {
		t.Fatalf("stream.end total = %d, want %d", reply.Total, n)
	}
	got := 0
	pulls := 0
	for got < reply.Total {
		var chunk [][]byte
		err := raw.Call("mix.stream.pull", map[string]any{
			"service": wire.Dialing, "round": 1, "offset": got, "max": 7,
		}, &chunk)
		if err != nil {
			t.Fatal(err)
		}
		if len(chunk) == 0 || len(chunk) > 7 {
			t.Fatalf("pull returned %d messages", len(chunk))
		}
		got += len(chunk)
		pulls++
	}
	if pulls != (n+6)/7 {
		t.Fatalf("%d pulls, want %d", pulls, (n+6)/7)
	}
	if err := raw.Call("mix.stream.pull", map[string]any{
		"service": wire.Dialing, "round": 1, "offset": 0, "max": 7,
	}, nil); err == nil {
		t.Fatal("pull after final chunk succeeded (outbox not cleared)")
	}

	// StreamAbort crosses the wire and discards an in-flight stream.
	if err := client.StreamBegin(wire.Dialing, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := client.StreamAbort(wire.Dialing, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := client.StreamEnd(wire.Dialing, 1); err == nil {
		t.Fatal("StreamEnd succeeded after abort over RPC")
	}
}
