package rpc

import (
	"context"
	"strings"
	"sync"

	"alpenhorn/internal/wire"
)

// CDNClient is the client read plane of one CDN node: cdn.fetch and
// cdn.fetchrange against the node's RegisterCDNFrontend surface. It
// mirrors FrontendClient's fetch path (same wire structs, same absent-
// round semantics) so a client can point its mailbox scans at the CDN
// tier directly instead of proxying every fetch through a frontend.
type CDNClient struct {
	addr string
	c    *Client

	mu               sync.Mutex
	rangeUnsupported bool
}

// DialCDN connects to one CDN node's read surface.
func DialCDN(addr string) *CDNClient {
	return &CDNClient{addr: addr, c: Dial(addr)}
}

// Fetch implements core.MailboxStore.
func (f *CDNClient) Fetch(ctx context.Context, service wire.Service, round uint32, mailbox uint32) ([]byte, error) {
	var out []byte
	if err := f.c.CallContext(ctx, "cdn.fetch", fetchArgs{Service: service, Round: round, Mailbox: mailbox}, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// FetchRange implements core.MailboxStore: one request for a span of
// rounds, with the same transparent per-round fallback FrontendClient
// uses against nodes that predate cdn.fetchrange.
func (f *CDNClient) FetchRange(ctx context.Context, service wire.Service, fromRound, toRound uint32, mailbox uint32) (map[uint32][]byte, error) {
	f.mu.Lock()
	supported := !f.rangeUnsupported
	f.mu.Unlock()
	if supported {
		var reply []rangedBox
		err := f.c.CallContext(ctx, "cdn.fetchrange", fetchRangeArgs{
			Service: service, FromRound: fromRound, ToRound: toRound, Mailbox: mailbox,
		}, &reply)
		if err == nil {
			out := make(map[uint32][]byte, len(reply))
			for _, box := range reply {
				out[box.Round] = box.Data
			}
			return out, nil
		}
		if !isUnknownMethod(err) {
			return nil, err
		}
		f.mu.Lock()
		f.rangeUnsupported = true
		f.mu.Unlock()
	}
	out := make(map[uint32][]byte)
	for r := fromRound; r <= toRound; r++ {
		box, err := f.Fetch(ctx, service, r, mailbox)
		if err != nil {
			if strings.Contains(err.Error(), "not published") {
				continue // unavailable round: absent, like the ranged reply
			}
			return nil, err
		}
		out[r] = box
	}
	return out, nil
}

// CallCount reports a method's call count on this node's connection.
func (f *CDNClient) CallCount(method string) uint64 { return f.c.CallCount(method) }

// TransportStats reports this node's connection accounting.
func (f *CDNClient) TransportStats() ClientStats { return f.c.Stats() }

// Close closes the node connection.
func (f *CDNClient) Close() { f.c.Close() }

// CDNPool is a failover client over a deployment's CDN nodes (the
// Directory.CDNAddrs set), the fetch-plane sibling of FrontendPool: every
// node holds every sealed round (publish-time replication plus restart
// backfill), so calls go to the current member and a TRANSPORT failure —
// errors.Is ErrTransport, never a handler error, never the caller's own
// cancellation — rotates to the next. Reads retry once on the new member,
// so a node dying mid-scan costs the client nothing visible. It satisfies
// core.MailboxStore.
type CDNPool struct {
	clients []*CDNClient
	mu      sync.Mutex
	cur     int
}

// DialCDNPool creates a pool over the given CDN node addresses, starting
// on the first.
func DialCDNPool(addrs ...string) *CDNPool {
	if len(addrs) == 0 {
		panic("rpc: DialCDNPool needs at least one address")
	}
	p := &CDNPool{}
	for _, a := range addrs {
		p.clients = append(p.clients, DialCDN(a))
	}
	return p
}

// current returns the member new calls should use and its index (the
// rotation token for reportDown).
func (p *CDNPool) current() (*CDNClient, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.clients[p.cur], p.cur
}

// Addr returns the dial address of the pool's current member.
func (p *CDNPool) Addr() string {
	f, _ := p.current()
	return f.addr
}

// reportDown rotates away from member idx; the index check makes the
// rotation idempotent under concurrent failures.
func (p *CDNPool) reportDown(idx int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cur == idx && len(p.clients) > 1 {
		p.cur = (p.cur + 1) % len(p.clients)
	}
}

// Fetch implements core.MailboxStore with failover.
func (p *CDNPool) Fetch(ctx context.Context, service wire.Service, round uint32, mailbox uint32) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		f, idx := p.current()
		box, err := f.Fetch(ctx, service, round, mailbox)
		if rotateOn(ctx, err) {
			p.reportDown(idx)
			if attempt == 0 && len(p.clients) > 1 {
				continue
			}
		}
		return box, err
	}
}

// FetchRange implements core.MailboxStore with failover.
func (p *CDNPool) FetchRange(ctx context.Context, service wire.Service, fromRound, toRound uint32, mailbox uint32) (map[uint32][]byte, error) {
	for attempt := 0; ; attempt++ {
		f, idx := p.current()
		boxes, err := f.FetchRange(ctx, service, fromRound, toRound, mailbox)
		if rotateOn(ctx, err) {
			p.reportDown(idx)
			if attempt == 0 && len(p.clients) > 1 {
				continue
			}
		}
		return boxes, err
	}
}

// CallCount sums a method's call count across every member.
func (p *CDNPool) CallCount(method string) uint64 {
	var n uint64
	for _, f := range p.clients {
		n += f.CallCount(method)
	}
	return n
}

// TransportStats sums transport accounting across every member.
func (p *CDNPool) TransportStats() ClientStats {
	var st ClientStats
	for _, f := range p.clients {
		fs := f.TransportStats()
		st.BytesSent += fs.BytesSent
		st.BytesReceived += fs.BytesReceived
		st.Calls += fs.Calls
	}
	return st
}

// Close closes every member's connections.
func (p *CDNPool) Close() {
	for _, f := range p.clients {
		f.Close()
	}
}
