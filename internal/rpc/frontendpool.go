package rpc

import (
	"context"
	"errors"
	"sync"

	"alpenhorn/internal/core"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/wire"
)

// FrontendPool is a failover client over a deployment's entry frontends.
// It satisfies the same core interfaces as FrontendClient but pins no
// single frontend: calls go to the current member, and a TRANSPORT
// failure (errors.Is ErrTransport — never a handler error, never the
// caller's own cancellation) rotates the pool to the next address.
//
// Failover is seamless because the frontends replicate one announcement
// log under one cursor namespace (entry.replicate): after a rotation the
// client's round loop re-parks WatchRounds on the survivor with the SAME
// cursor it held on the dead frontend and resumes mid-round — no snapshot
// reset, no re-submit. Read-only calls retry once on the new member;
// Submit does not (an ambiguous submission must surface, not silently run
// again elsewhere), matching the at-most-once discipline of the mix
// stream surface.
type FrontendPool struct {
	clients []*FrontendClient
	mu      sync.Mutex
	cur     int
}

// DialFrontendPool creates a pool over the given frontend addresses,
// starting on the first.
func DialFrontendPool(addrs ...string) *FrontendPool {
	if len(addrs) == 0 {
		panic("rpc: DialFrontendPool needs at least one address")
	}
	p := &FrontendPool{}
	for _, a := range addrs {
		p.clients = append(p.clients, DialFrontend(a))
	}
	return p
}

// current returns the member new calls should use and its index (the
// rotation token for reportDown).
func (p *FrontendPool) current() (*FrontendClient, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.clients[p.cur], p.cur
}

// Addr returns the dial address of the pool's current member.
func (p *FrontendPool) Addr() string {
	f, _ := p.current()
	return f.addr
}

// reportDown rotates away from member idx. The index check makes the
// rotation idempotent under concurrent failures: ten calls failing on the
// same dead frontend advance the pool once, not ten times.
func (p *FrontendPool) reportDown(idx int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cur == idx && len(p.clients) > 1 {
		p.cur = (p.cur + 1) % len(p.clients)
	}
}

// rotateOn reports whether err should fail the current member over.
// Handler errors mean the frontend is alive and answered; context errors
// mean the CALLER gave up — neither says anything about frontend health.
func rotateOn(ctx context.Context, err error) bool {
	return errors.Is(err, ErrTransport) && ctx.Err() == nil
}

// Directory implements the directory fetch with failover. The directory
// describes the deployment, not one frontend, so any member's copy serves.
func (p *FrontendPool) Directory(ctx context.Context) (*Directory, error) {
	for attempt := 0; ; attempt++ {
		f, idx := p.current()
		dir, err := f.Directory(ctx)
		if rotateOn(ctx, err) {
			p.reportDown(idx)
			if attempt == 0 && len(p.clients) > 1 {
				continue
			}
		}
		return dir, err
	}
}

// Status implements core.StatusProvider with failover.
func (p *FrontendPool) Status(ctx context.Context, service wire.Service) (entry.RoundStatus, error) {
	for attempt := 0; ; attempt++ {
		f, idx := p.current()
		st, err := f.Status(ctx, service)
		if rotateOn(ctx, err) {
			p.reportDown(idx)
			if attempt == 0 && len(p.clients) > 1 {
				continue
			}
		}
		return st, err
	}
}

// WatchRounds implements core.RoundWatcher. A transport failure rotates
// the pool and surfaces the error: core's round feed already owns the
// reconnect loop (backoff, cursor preservation), so the next park lands
// on the survivor and resumes from the replicated log at the same cursor.
// ErrEventsUnsupported only degrades the pool when EVERY member lacks the
// surface — a mixed fleet keeps streaming by rotating to a capable member.
func (p *FrontendPool) WatchRounds(ctx context.Context, cursor uint64) ([]entry.Announcement, uint64, error) {
	for attempt := 0; ; attempt++ {
		f, idx := p.current()
		anns, next, err := f.WatchRounds(ctx, cursor)
		if rotateOn(ctx, err) {
			p.reportDown(idx)
			return anns, next, err
		}
		if errors.Is(err, core.ErrEventsUnsupported) && attempt < len(p.clients)-1 {
			p.reportDown(idx)
			continue
		}
		return anns, next, err
	}
}

// Settings implements core.EntryServer with failover: settings are
// verified against pinned keys client-side, so any replica's copy serves.
func (p *FrontendPool) Settings(ctx context.Context, service wire.Service, round uint32) (*wire.RoundSettings, error) {
	for attempt := 0; ; attempt++ {
		f, idx := p.current()
		rs, err := f.Settings(ctx, service, round)
		if rotateOn(ctx, err) {
			p.reportDown(idx)
			if attempt == 0 && len(p.clients) > 1 {
				continue
			}
		}
		return rs, err
	}
}

// Submit implements core.EntryServer. A transport failure rotates the
// pool but is NOT retried on the new member: the onion may already sit in
// the dead frontend's batch, and submitting it again through a survivor
// could put it in the round twice. The caller sees the error and the next
// round's submission goes to the new member.
func (p *FrontendPool) Submit(ctx context.Context, service wire.Service, round uint32, onion []byte) error {
	f, idx := p.current()
	err := f.Submit(ctx, service, round, onion)
	if rotateOn(ctx, err) {
		p.reportDown(idx)
	}
	return err
}

// Fetch implements core.MailboxStore with failover.
func (p *FrontendPool) Fetch(ctx context.Context, service wire.Service, round uint32, mailbox uint32) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		f, idx := p.current()
		box, err := f.Fetch(ctx, service, round, mailbox)
		if rotateOn(ctx, err) {
			p.reportDown(idx)
			if attempt == 0 && len(p.clients) > 1 {
				continue
			}
		}
		return box, err
	}
}

// FetchRange implements core.MailboxStore with failover.
func (p *FrontendPool) FetchRange(ctx context.Context, service wire.Service, fromRound, toRound uint32, mailbox uint32) (map[uint32][]byte, error) {
	for attempt := 0; ; attempt++ {
		f, idx := p.current()
		boxes, err := f.FetchRange(ctx, service, fromRound, toRound, mailbox)
		if rotateOn(ctx, err) {
			p.reportDown(idx)
			if attempt == 0 && len(p.clients) > 1 {
				continue
			}
		}
		return boxes, err
	}
}

// CallCount sums a method's call count across every member.
func (p *FrontendPool) CallCount(method string) uint64 {
	var n uint64
	for _, f := range p.clients {
		n += f.CallCount(method)
	}
	return n
}

// TransportStats sums transport accounting across every member.
func (p *FrontendPool) TransportStats() ClientStats {
	var st ClientStats
	for _, f := range p.clients {
		fs := f.TransportStats()
		st.BytesSent += fs.BytesSent
		st.BytesReceived += fs.BytesReceived
		st.Calls += fs.Calls
	}
	return st
}

// Close closes every member's connections.
func (p *FrontendPool) Close() {
	for _, f := range p.clients {
		f.Close()
	}
}
