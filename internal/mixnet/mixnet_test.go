package mixnet

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"sort"
	"testing"

	"alpenhorn/internal/bloom"
	"alpenhorn/internal/keywheel"
	"alpenhorn/internal/noise"
	"alpenhorn/internal/onionbox"
	"alpenhorn/internal/wire"
)

var noNoise = noise.Laplace{Mu: 0, B: 0}

// newChain builds a chain of n servers with the given noise.
func newChain(t testing.TB, n int, nz noise.Laplace) []*Server {
	t.Helper()
	servers := make([]*Server, n)
	for i := range servers {
		s, err := New(Config{
			Name:           "m",
			Position:       i,
			ChainLength:    n,
			AddFriendNoise: &nz,
			DialingNoise:   &nz,
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = s
	}
	return servers
}

// openRound announces a round on every server and distributes downstream
// keys, returning the hop keys for onion wrapping.
func openRound(t testing.TB, servers []*Server, service wire.Service, round uint32) []*onionbox.PublicKey {
	t.Helper()
	keys := make([][]byte, len(servers))
	hops := make([]*onionbox.PublicKey, len(servers))
	for i, s := range servers {
		rk, err := s.NewRound(service, round)
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = rk.OnionKey
		pk, err := onionbox.UnmarshalPublicKey(rk.OnionKey)
		if err != nil {
			t.Fatal(err)
		}
		hops[i] = pk
	}
	for i, s := range servers {
		if err := s.SetDownstreamKeys(service, round, keys[i+1:]); err != nil {
			t.Fatal(err)
		}
	}
	return hops
}

// makeDialOnion builds a client dial request onion.
func makeDialOnion(t testing.TB, hops []*onionbox.PublicKey, mailbox uint32, token []byte) []byte {
	t.Helper()
	payload := (&wire.MixPayload{Mailbox: mailbox, Body: token}).Marshal()
	onion, err := onionbox.WrapOnion(rand.Reader, hops, payload)
	if err != nil {
		t.Fatal(err)
	}
	return onion
}

func TestChainDeliversToMailboxes(t *testing.T) {
	servers := newChain(t, 3, noNoise)
	hops := openRound(t, servers, wire.Dialing, 1)

	tok1 := bytes.Repeat([]byte{1}, keywheel.TokenSize)
	tok2 := bytes.Repeat([]byte{2}, keywheel.TokenSize)
	batch := [][]byte{
		makeDialOnion(t, hops, 0, tok1),
		makeDialOnion(t, hops, 1, tok2),
		makeDialOnion(t, hops, wire.CoverMailbox, bytes.Repeat([]byte{9}, keywheel.TokenSize)),
	}
	mailboxes, err := Chain(servers, wire.Dialing, 1, 2, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(mailboxes) != 2 {
		t.Fatalf("%d mailboxes, want 2", len(mailboxes))
	}
	f0, err := bloom.Unmarshal(mailboxes[0])
	if err != nil {
		t.Fatal(err)
	}
	f1, err := bloom.Unmarshal(mailboxes[1])
	if err != nil {
		t.Fatal(err)
	}
	if !f0.Test(tok1) || f0.Test(tok2) {
		t.Fatal("mailbox 0 contents wrong")
	}
	if !f1.Test(tok2) || f1.Test(tok1) {
		t.Fatal("mailbox 1 contents wrong")
	}
}

func TestMixDropsMalformedOnions(t *testing.T) {
	servers := newChain(t, 2, noNoise)
	hops := openRound(t, servers, wire.Dialing, 1)
	good := makeDialOnion(t, hops, 0, bytes.Repeat([]byte{1}, keywheel.TokenSize))
	garbage := make([]byte, len(good))
	batch := [][]byte{good, garbage}
	mailboxes, err := Chain(servers, wire.Dialing, 1, 1, batch)
	if err != nil {
		t.Fatal(err)
	}
	f, err := bloom.Unmarshal(mailboxes[0])
	if err != nil {
		t.Fatal(err)
	}
	if f.Entries() != 1 {
		t.Fatalf("mailbox has %d entries, want 1 (garbage dropped)", f.Entries())
	}
}

func TestNoiseIsAddedPerMailbox(t *testing.T) {
	nz := noise.Laplace{Mu: 5, B: 0}
	servers := newChain(t, 3, nz)
	openRound(t, servers, wire.Dialing, 1)
	const numMailboxes = 4
	mailboxes, err := Chain(servers, wire.Dialing, 1, numMailboxes, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Each of 3 servers adds 5 noise tokens per mailbox: 15 per mailbox.
	for id, data := range mailboxes {
		f, err := bloom.Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
		if f.Entries() != 15 {
			t.Fatalf("mailbox %d has %d noise entries, want 15", id, f.Entries())
		}
	}
	for _, s := range servers {
		_, noiseSent := s.Stats()
		if noiseSent != 5*numMailboxes {
			t.Fatalf("server noise count %d, want %d", noiseSent, 5*numMailboxes)
		}
	}
}

func TestAddFriendNoiseIndistinguishableShape(t *testing.T) {
	// Add-friend noise must parse as a MixPayload with an IBE-ciphertext
	// sized body, exactly like a real request.
	nz := noise.Laplace{Mu: 3, B: 0}
	servers := newChain(t, 1, nz)
	openRound(t, servers, wire.AddFriend, 1)
	mailboxes, err := Chain(servers, wire.AddFriend, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(mailboxes[0])%wire.EncryptedFriendRequestSize != 0 {
		t.Fatalf("add-friend mailbox size %d not a multiple of request size", len(mailboxes[0]))
	}
	if len(mailboxes[0])/wire.EncryptedFriendRequestSize != 3 {
		t.Fatalf("expected 3 noise requests, got %d", len(mailboxes[0])/wire.EncryptedFriendRequestSize)
	}
}

func TestShufflePermutes(t *testing.T) {
	// The shuffle must preserve the multiset and (statistically) change
	// the order.
	batch := make([][]byte, 64)
	for i := range batch {
		batch[i] = []byte{byte(i)}
	}
	orig := make([][]byte, len(batch))
	copy(orig, batch)
	if err := shuffle(rand.Reader, batch); err != nil {
		t.Fatal(err)
	}
	same := 0
	var got, want []int
	for i := range batch {
		if bytes.Equal(batch[i], orig[i]) {
			same++
		}
		got = append(got, int(batch[i][0]))
		want = append(want, int(orig[i][0]))
	}
	sort.Ints(got)
	sort.Ints(want)
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("shuffle lost or duplicated elements")
		}
	}
	if same == len(batch) {
		t.Fatal("shuffle left batch in original order (probability ~1/64!)")
	}
}

func TestUnlinkabilityAcrossHonestServer(t *testing.T) {
	// An adversary controlling servers 0 and 2 (but not 1) submits a
	// known batch; after the chain, the mapping from input position to
	// output position must not be recoverable from positions alone.
	// We verify the mechanism: server 1's output order is a fresh random
	// permutation of its input regardless of input order.
	servers := newChain(t, 1, noNoise) // the honest server alone
	s := servers[0]
	rk, err := s.NewRound(wire.Dialing, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetDownstreamKeys(wire.Dialing, 1, nil); err != nil {
		t.Fatal(err)
	}
	pk, _ := onionbox.UnmarshalPublicKey(rk.OnionKey)

	const n = 32
	batch := make([][]byte, n)
	for i := range batch {
		tok := make([]byte, keywheel.TokenSize)
		tok[0] = byte(i)
		batch[i] = makeDialOnion(t, []*onionbox.PublicKey{pk}, 0, tok)
	}
	out, err := s.Mix(wire.Dialing, 1, 1, batch)
	if err != nil {
		t.Fatal(err)
	}
	inOrder := 0
	for i, msg := range out {
		p, err := wire.UnmarshalMixPayload(wire.Dialing, msg)
		if err != nil {
			t.Fatal(err)
		}
		if int(p.Body[0]) == i {
			inOrder++
		}
	}
	if inOrder > n/2 {
		t.Fatalf("%d of %d messages kept their position", inOrder, n)
	}
}

func TestForwardSecrecyRoundKeyErased(t *testing.T) {
	servers := newChain(t, 1, noNoise)
	hops := openRound(t, servers, wire.Dialing, 1)
	onion := makeDialOnion(t, hops, 0, bytes.Repeat([]byte{1}, keywheel.TokenSize))

	servers[0].CloseRound(wire.Dialing, 1)
	if servers[0].RoundOpen(wire.Dialing, 1) {
		t.Fatal("round open after close")
	}
	// Recorded traffic can no longer be processed.
	if _, err := servers[0].Mix(wire.Dialing, 1, 1, [][]byte{onion}); err == nil {
		t.Fatal("mix succeeded after round key erasure")
	}
}

func TestRoundKeyAnnouncementSigned(t *testing.T) {
	servers := newChain(t, 1, noNoise)
	rk, err := servers[0].NewRound(wire.AddFriend, 9)
	if err != nil {
		t.Fatal(err)
	}
	msg := wire.MixerKeyMessage(wire.AddFriend, 9, rk.OnionKey)
	if !ed25519.Verify(servers[0].SigningKey(), msg, rk.Sig) {
		t.Fatal("round key announcement signature invalid")
	}
}

func TestRawDialMailboxesBaseline(t *testing.T) {
	servers := newChain(t, 1, noNoise)
	hops := openRound(t, servers, wire.Dialing, 1)
	tok := bytes.Repeat([]byte{7}, keywheel.TokenSize)
	batch := [][]byte{makeDialOnion(t, hops, 0, tok)}
	mixed, err := servers[0].Mix(wire.Dialing, 1, 1, batch)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := RawDialMailboxes(1, mixed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw[0], tok) {
		t.Fatal("raw mailbox does not contain the token")
	}
	// The ablation's point: raw token costs 32 bytes vs 6 bytes/element
	// in the Bloom encoding at scale.
	if len(raw[0]) != keywheel.TokenSize {
		t.Fatalf("raw mailbox size %d", len(raw[0]))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Position: 3, ChainLength: 3}); err == nil {
		t.Fatal("position == chain length accepted")
	}
	if _, err := New(Config{Position: -1, ChainLength: 2}); err == nil {
		t.Fatal("negative position accepted")
	}
	if _, err := New(Config{Position: 0, ChainLength: 0}); err == nil {
		t.Fatal("zero-length chain accepted")
	}
}
