package mixnet

import (
	"fmt"
	"sync"

	"alpenhorn/internal/onionbox"
	"alpenhorn/internal/wire"
)

// This file implements chunked streaming intake: a server starts peeling
// onions as soon as the first chunk of a round's batch arrives, instead of
// waiting for the full batch. Combined across the chain, server i+1
// decrypts chunks while server i is still emitting its shuffled output —
// the pipeline that coordinator.CloseRound and mixnet.ChainPipelined build.
//
// Privacy is unchanged: nothing leaves the server until StreamEnd, which
// (like Mix) appends noise and applies a fresh random permutation over the
// complete batch. Streaming only moves WHEN the decryption work happens,
// never what an observer can see.

// stream is the in-flight chunked intake of one round's batch.
type stream struct {
	numMailboxes uint32
	// sem bounds the number of chunk-decryption goroutines.
	sem chan struct{}
	wg  sync.WaitGroup

	mu      sync.Mutex
	results [][][]byte // peeled messages per chunk, in arrival order
	inputs  int        // onions fed in, including ones that fail to open
}

// StreamBegin starts chunked intake for a round. It also kicks off
// background noise generation (PrepareNoise) so the noise is ready by
// StreamEnd. Exactly one stream may be in flight per round.
func (s *Server) StreamBegin(service wire.Service, round uint32, numMailboxes uint32) error {
	s.mu.Lock()
	st, err := s.openState(service, round)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	if st.stream != nil {
		s.mu.Unlock()
		return fmt.Errorf("mixnet: round %d (%s): stream already in progress", round, service)
	}
	st.stream = &stream{
		numMailboxes: numMailboxes,
		sem:          make(chan struct{}, s.parallelism),
	}
	s.mu.Unlock()
	if err := s.PrepareNoise(service, round, numMailboxes); err != nil {
		// Roll the stream back so the round stays streamable once the
		// caller fixes the precondition (e.g. distributes downstream
		// keys).
		s.mu.Lock()
		st.stream = nil
		s.mu.Unlock()
		return err
	}
	return nil
}

// StreamChunk feeds one chunk of the round's batch; decryption starts
// immediately on a pool worker. The server takes ownership of chunk.
// Chunk arrival order defines pre-shuffle message order, matching what
// Mix would produce for the concatenated batch.
func (s *Server) StreamChunk(service wire.Service, round uint32, chunk [][]byte) error {
	s.mu.Lock()
	st, err := s.openState(service, round)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	sm := st.stream
	if sm == nil {
		s.mu.Unlock()
		return fmt.Errorf("mixnet: round %d (%s): no stream in progress", round, service)
	}
	priv := st.priv
	// Register with the stream before releasing s.mu: StreamEnd detaches
	// the stream under the same mutex, so once we get here its wg.Wait is
	// guaranteed to cover this chunk.
	sm.wg.Add(1)
	s.mu.Unlock()

	sm.mu.Lock()
	seq := len(sm.results)
	sm.results = append(sm.results, nil)
	sm.inputs += len(chunk)
	sm.mu.Unlock()

	go func() {
		defer sm.wg.Done()
		sm.sem <- struct{}{}
		defer func() { <-sm.sem }()
		out := make([][]byte, 0, len(chunk))
		for _, onion := range chunk {
			if msg, err := onionbox.Open(priv, onion); err == nil {
				out = append(out, msg)
			}
		}
		sm.mu.Lock()
		sm.results[seq] = out
		sm.mu.Unlock()
	}()
	return nil
}

// StreamAbort discards an in-flight stream without the noise generation
// and shuffle that StreamEnd performs: the pipeline calls it when another
// stage has already failed the round and the output would be thrown away.
// Aborting when no stream is in flight is a no-op; the round itself stays
// open (CloseRound erases it).
func (s *Server) StreamAbort(service wire.Service, round uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.rounds[roundKey{service, round}]
	if ok {
		st.stream = nil
	}
	return nil
}

// StreamEnd closes intake, waits for in-flight decryption, then — exactly
// like Mix — appends this server's noise, shuffles the complete batch, and
// returns it. The shuffle barrier is preserved: no output exists before
// every input chunk has been processed.
func (s *Server) StreamEnd(service wire.Service, round uint32) ([][]byte, error) {
	return s.streamEnd(service, round, true)
}

// StreamEndShard closes intake WITHOUT the shuffle: it returns this
// shard's peeled slice of the position's batch plus its noise share, in
// intake order. The output is only ever handed to the shard group's merge
// server, which concatenates every shard's slice and applies the
// position's single full-batch permutation (MergeShuffle) — nothing
// leaves the position's trust domain unshuffled. Unsharded rounds keep
// using StreamEnd, whose inline shuffle is the exact pre-shard path.
func (s *Server) StreamEndShard(service wire.Service, round uint32) ([][]byte, error) {
	return s.streamEnd(service, round, false)
}

func (s *Server) streamEnd(service wire.Service, round uint32, doShuffle bool) ([][]byte, error) {
	s.mu.Lock()
	st, err := s.openState(service, round)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	sm := st.stream
	if sm == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("mixnet: round %d (%s): no stream in progress", round, service)
	}
	st.stream = nil
	priv := st.priv
	downstream := st.downstream
	nb := st.takeNoise(sm.numMailboxes)
	shards := st.effectiveShards()
	s.mu.Unlock()

	sm.wg.Wait()
	total := 0
	for _, c := range sm.results {
		total += len(c)
	}
	out := make([][]byte, 0, total)
	for _, c := range sm.results {
		out = append(out, c...)
	}
	return s.finishBatch(service, round, priv, sm.numMailboxes, downstream, nb, sm.inputs, out, shards, doShuffle)
}
