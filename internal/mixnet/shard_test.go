package mixnet

import (
	"bytes"
	"crypto/rand"
	mathrand "math/rand"
	"testing"

	"alpenhorn/internal/noise"
	"alpenhorn/internal/onionbox"
	"alpenhorn/internal/wire"
)

type seededReader struct{ rng *mathrand.Rand }

func (r *seededReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(r.rng.Intn(256))
	}
	return len(p), nil
}

func newShardTestServer(t *testing.T, mu float64, seed int64) *Server {
	t.Helper()
	nz := noise.Laplace{Mu: mu, B: 0}
	cfg := Config{
		Name: "m", Position: 0, ChainLength: 1,
		AddFriendNoise: &nz, DialingNoise: &nz,
	}
	if seed != 0 {
		cfg.Rand = &seededReader{rng: mathrand.New(mathrand.NewSource(seed))}
		cfg.Parallelism = 1
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardNoiseDivision pins the noise-division invariant: shard s of N
// draws per-mailbox noise with mean ceil(µ/N) — and the position's full
// scale b — so the group's union can only meet or exceed the unsharded
// mean while every shard's draw keeps the §6 noise scale.
func TestShardNoiseDivision(t *testing.T) {
	const (
		mu           = 4
		shards       = 3
		numMailboxes = 5
	)
	s := newShardTestServer(t, mu, 0)
	if _, err := s.NewRound(wire.Dialing, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRoundShard(wire.Dialing, 1, 2, shards); err != nil {
		t.Fatal(err)
	}
	if err := s.StreamBegin(wire.Dialing, 1, numMailboxes); err != nil {
		t.Fatal(err)
	}
	out, err := s.StreamEndShard(wire.Dialing, 1)
	if err != nil {
		t.Fatal(err)
	}
	// No real messages were streamed, so the output is this shard's
	// noise share: ceil(4/3) = 2 per mailbox.
	want := numMailboxes * 2
	if len(out) != want {
		t.Fatalf("shard noise share: got %d messages, want %d", len(out), want)
	}

	// An unsharded round on the same distribution emits the full draw.
	s2 := newShardTestServer(t, mu, 0)
	if _, err := s2.NewRound(wire.Dialing, 1); err != nil {
		t.Fatal(err)
	}
	if err := s2.StreamBegin(wire.Dialing, 1, numMailboxes); err != nil {
		t.Fatal(err)
	}
	full, err := s2.StreamEnd(wire.Dialing, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != numMailboxes*mu {
		t.Fatalf("unsharded noise: got %d, want %d", len(full), numMailboxes*mu)
	}
	// Union over the group (3 shards x 2 per mailbox) >= the unsharded
	// distribution (4 per mailbox).
	if shards*2 < mu {
		t.Fatalf("noise union under-provisions: %d < %d", shards*2, mu)
	}
}

// TestSetRoundShardOrdering: the layout must land before noise exists and
// must agree with a pinned identity.
func TestSetRoundShardOrdering(t *testing.T) {
	s := newShardTestServer(t, 2, 0)
	if _, err := s.NewRound(wire.Dialing, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.PrepareNoise(wire.Dialing, 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRoundShard(wire.Dialing, 1, 0, 2); err == nil {
		t.Fatal("shard layout accepted after noise generation")
	}

	nz := noise.Laplace{Mu: 2, B: 0}
	pinned, err := New(Config{
		Name: "p", Position: 0, ChainLength: 1,
		AddFriendNoise: &nz, DialingNoise: &nz,
		ShardIndex: 1, ShardCount: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pinned.NewRound(wire.Dialing, 1); err != nil {
		t.Fatal(err)
	}
	if err := pinned.SetRoundShard(wire.Dialing, 1, 0, 2); err == nil {
		t.Fatal("conflicting layout accepted by a pinned daemon")
	}
	if err := pinned.SetRoundShard(wire.Dialing, 1, 1, 2); err != nil {
		t.Fatalf("matching layout rejected: %v", err)
	}
}

// TestExportImportRoundKey: a shard that imports the lead's round key can
// peel onions wrapped for the position's announced key — and the key
// exchange is refused entirely outside a pinned shard group (an open
// export surface would collapse anytrust).
func TestExportImportRoundKey(t *testing.T) {
	newPinned := func(index, count int) *Server {
		nz := noise.Laplace{Mu: 0, B: 0}
		s, err := New(Config{
			Name: "m", Position: 0, ChainLength: 1,
			AddFriendNoise: &nz, DialingNoise: &nz,
			ShardIndex: index, ShardCount: count,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	lead := newPinned(0, 2)
	follower := newPinned(1, 2)

	unsharded := newShardTestServer(t, 0, 0)
	if _, err := unsharded.NewRound(wire.Dialing, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := unsharded.ExportRoundKey(wire.Dialing, 1); err == nil {
		t.Fatal("unsharded daemon served its round private key")
	}
	if err := unsharded.ImportRoundKey(wire.Dialing, 1, make([]byte, 32)); err == nil {
		t.Fatal("unsharded daemon accepted a round key import")
	}

	rk, err := lead.NewRound(wire.Dialing, 1)
	if err != nil {
		t.Fatal(err)
	}
	key, err := lead.ExportRoundKey(wire.Dialing, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := follower.ImportRoundKey(wire.Dialing, 1, key); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-import is fine; a different key is not.
	if err := follower.ImportRoundKey(wire.Dialing, 1, key); err != nil {
		t.Fatalf("re-import: %v", err)
	}

	pk, err := onionbox.UnmarshalPublicKey(rk.OnionKey)
	if err != nil {
		t.Fatal(err)
	}
	body := bytes.Repeat([]byte{0xAB}, 32)
	payload := (&wire.MixPayload{Mailbox: 0, Body: body}).Marshal()
	onion, err := onionbox.WrapOnion(rand.Reader, []*onionbox.PublicKey{pk}, payload)
	if err != nil {
		t.Fatal(err)
	}
	out, err := follower.Mix(wire.Dialing, 1, 1, [][]byte{onion})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !bytes.Equal(out[0], payload) {
		t.Fatal("follower failed to peel an onion wrapped for the lead's key")
	}
}

// TestMergeShuffleIsSeededPermutation: MergeShuffle produces a
// permutation of the concatenated parts, identical under identical
// seeds.
func TestMergeShuffleIsSeededPermutation(t *testing.T) {
	parts := [][][]byte{
		{[]byte("a0"), []byte("a1")},
		{[]byte("b0")},
		{[]byte("c0"), []byte("c1"), []byte("c2")},
	}
	run := func(seed int64) [][]byte {
		s := newShardTestServer(t, 0, seed)
		if _, err := s.NewRound(wire.Dialing, 1); err != nil {
			t.Fatal(err)
		}
		out, err := s.MergeShuffle(wire.Dialing, 1, parts)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(77), run(77)
	if len(a) != 6 {
		t.Fatalf("merge lost messages: %d != 6", len(a))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatal("identical seeds produced different merge shuffles")
		}
	}
	seen := map[string]int{}
	for _, m := range a {
		seen[string(m)]++
	}
	for _, part := range parts {
		for _, m := range part {
			if seen[string(m)] != 1 {
				t.Fatalf("message %q appears %d times after merge", m, seen[string(m)])
			}
		}
	}

	// A closed round refuses to merge.
	s := newShardTestServer(t, 0, 0)
	if _, err := s.NewRound(wire.Dialing, 1); err != nil {
		t.Fatal(err)
	}
	s.CloseRound(wire.Dialing, 1)
	if _, err := s.MergeShuffle(wire.Dialing, 1, parts); err == nil {
		t.Fatal("merge shuffle ran on a closed round")
	}
}
