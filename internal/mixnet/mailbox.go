package mixnet

import (
	"fmt"

	"alpenhorn/internal/bloom"
	"alpenhorn/internal/wire"
)

// BuildMailboxes is the last mixnet server's final step (§3.1 step 3): it
// parses the fully peeled payloads, discards cover traffic and anything
// addressed to a nonexistent mailbox, and groups the remaining request
// bodies by mailbox.
//
// For the add-friend service each mailbox is the concatenation of its
// fixed-size encrypted friend requests. For the dialing service each
// mailbox is a Bloom filter over its dial tokens, with parameters chosen by
// this server for the number of tokens actually present (§5.2).
//
// Every mailbox ID in [0, numMailboxes) is present in the result, even if
// empty, so that fetching clients never learn anything from a missing key.
func BuildMailboxes(service wire.Service, numMailboxes uint32, batch [][]byte) (map[uint32][]byte, error) {
	grouped := make(map[uint32][][]byte)
	for _, data := range batch {
		payload, err := wire.UnmarshalMixPayload(service, data)
		if err != nil {
			// A client slipped a malformed innermost payload past
			// the onion layers; drop it.
			continue
		}
		if payload.Mailbox == wire.CoverMailbox {
			continue // cover traffic needs no further processing
		}
		if payload.Mailbox >= numMailboxes {
			continue
		}
		grouped[payload.Mailbox] = append(grouped[payload.Mailbox], payload.Body)
	}

	out := make(map[uint32][]byte, numMailboxes)
	for mb := uint32(0); mb < numMailboxes; mb++ {
		bodies := grouped[mb]
		switch service {
		case wire.AddFriend:
			var box []byte
			for _, b := range bodies {
				box = append(box, b...)
			}
			out[mb] = box
		case wire.Dialing:
			f := bloom.New(len(bodies), bloom.DefaultBitsPerElement)
			for _, b := range bodies {
				f.Add(b)
			}
			out[mb] = f.Marshal()
		default:
			return nil, fmt.Errorf("mixnet: unknown service %v", service)
		}
	}
	return out, nil
}

// RawDialMailboxes builds dialing mailboxes WITHOUT the Bloom filter
// encoding (raw concatenated 256-bit tokens). This is the §5.2 baseline
// used by the BloomVsRaw ablation benchmark; the real protocol always uses
// Bloom filters.
func RawDialMailboxes(numMailboxes uint32, batch [][]byte) (map[uint32][]byte, error) {
	grouped := make(map[uint32][][]byte)
	for _, data := range batch {
		payload, err := wire.UnmarshalMixPayload(wire.Dialing, data)
		if err != nil || payload.Mailbox == wire.CoverMailbox || payload.Mailbox >= numMailboxes {
			continue
		}
		grouped[payload.Mailbox] = append(grouped[payload.Mailbox], payload.Body)
	}
	out := make(map[uint32][]byte, numMailboxes)
	for mb := uint32(0); mb < numMailboxes; mb++ {
		var box []byte
		for _, b := range grouped[mb] {
			box = append(box, b...)
		}
		out[mb] = box
	}
	return out, nil
}

// Chain runs a batch through an ordered list of mixnet servers and returns
// the final mailboxes. It is the in-process equivalent of the servers
// streaming batches to one another over TCP; cmd/alpenhorn-mixer wraps the
// same Server type with a network transport.
func Chain(servers []*Server, service wire.Service, round uint32, numMailboxes uint32, batch [][]byte) (map[uint32][]byte, error) {
	cur := batch
	var err error
	for i, s := range servers {
		cur, err = s.Mix(service, round, numMailboxes, cur)
		if err != nil {
			return nil, fmt.Errorf("mixnet: server %d (%s): %w", i, s.Name, err)
		}
	}
	return BuildMailboxes(service, numMailboxes, cur)
}
