package mixnet

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"alpenhorn/internal/bloom"
	"alpenhorn/internal/wire"
)

// BuildMailboxes is the last mixnet server's final step (§3.1 step 3): it
// parses the fully peeled payloads, discards cover traffic and anything
// addressed to a nonexistent mailbox, and groups the remaining request
// bodies by mailbox.
//
// For the add-friend service each mailbox is the concatenation of its
// fixed-size encrypted friend requests. For the dialing service each
// mailbox is a Bloom filter over its dial tokens, with parameters chosen by
// this server for the number of tokens actually present (§5.2).
//
// Every mailbox ID in [0, numMailboxes) is present in the result, even if
// empty, so that fetching clients never learn anything from a missing key.
//
// Construction is sharded across runtime.GOMAXPROCS workers: parsing is
// split over contiguous batch chunks, and mailbox encoding is keyed by
// mailbox index. Use BuildMailboxesParallel to pick the worker count.
func BuildMailboxes(service wire.Service, numMailboxes uint32, batch [][]byte) (map[uint32][]byte, error) {
	return BuildMailboxesParallel(service, numMailboxes, batch, runtime.GOMAXPROCS(0))
}

// BuildMailboxesParallel is BuildMailboxes with an explicit worker count
// (1 = the sequential path). Output is identical regardless of workers:
// bodies keep batch order within each mailbox.
func BuildMailboxesParallel(service wire.Service, numMailboxes uint32, batch [][]byte, workers int) (map[uint32][]byte, error) {
	return BuildMailboxesRange(service, 0, numMailboxes, batch, workers)
}

// ShardRange returns the contiguous mailbox-ID range [lo, hi) that shard
// `shard` of `count` owns when a round's numMailboxes mailboxes are built
// sharded across the last position's group. The ranges partition
// [0, numMailboxes) exactly — every union over shards reproduces the
// single-machine build's ID set — and are balanced to within one mailbox.
func ShardRange(numMailboxes uint32, shard, count int) (lo, hi uint32) {
	if count <= 1 {
		return 0, numMailboxes
	}
	lo = uint32(uint64(numMailboxes) * uint64(shard) / uint64(count))
	hi = uint32(uint64(numMailboxes) * uint64(shard+1) / uint64(count))
	return lo, hi
}

// encodeMailbox encodes one mailbox from its request bodies: concatenation
// for add-friend, a Bloom filter over the dial tokens for dialing (§5.2).
// A mailbox's encoding depends ONLY on its own bodies (in batch order), so
// a range-restricted build is byte-identical per mailbox to the full one.
func encodeMailbox(service wire.Service, bodies [][]byte) []byte {
	switch service {
	case wire.AddFriend:
		var box []byte
		for _, b := range bodies {
			box = append(box, b...)
		}
		return box
	default: // wire.Dialing
		return bloom.NewFromElements(bodies, bloom.DefaultBitsPerElement).Marshal()
	}
}

// BuildMailboxesRange builds only the mailboxes with IDs in [lo, hi):
// one shard's slice of a sharded mailbox build. The batch should contain
// the payloads dealt to this shard, in the position's post-shuffle batch
// order; payloads addressed outside [lo, hi) are ignored. Every ID in
// [lo, hi) is present in the result, even if empty, so the union of the
// shards' slices is byte-identical to BuildMailboxes over the full batch.
func BuildMailboxesRange(service wire.Service, lo, hi uint32, batch [][]byte, workers int) (map[uint32][]byte, error) {
	switch service {
	case wire.AddFriend, wire.Dialing:
	default:
		return nil, fmt.Errorf("mixnet: unknown service %v", service)
	}
	if hi < lo {
		return nil, fmt.Errorf("mixnet: bad mailbox range [%d, %d)", lo, hi)
	}
	if workers <= 0 {
		workers = 1
	}

	grouped := groupByMailbox(service, hi, batch, workers)

	n := int(hi - lo)
	boxes := make([][]byte, n)
	parallelFor(n, workers, func(i int) error {
		boxes[i] = encodeMailbox(service, grouped[lo+uint32(i)])
		return nil
	})

	out := make(map[uint32][]byte, n)
	for i := 0; i < n; i++ {
		out[lo+uint32(i)] = boxes[i]
	}
	return out, nil
}

// groupByMailbox parses the batch and groups request bodies by mailbox,
// dropping malformed payloads, cover traffic, and out-of-range mailboxes.
// With workers > 1, contiguous batch chunks are parsed concurrently and
// merged in chunk order, preserving batch order within each mailbox.
func groupByMailbox(service wire.Service, numMailboxes uint32, batch [][]byte, workers int) map[uint32][][]byte {
	parse := func(chunk [][]byte, grouped map[uint32][][]byte) {
		for _, data := range chunk {
			payload, err := wire.UnmarshalMixPayload(service, data)
			if err != nil {
				// A client slipped a malformed innermost payload past
				// the onion layers; drop it.
				continue
			}
			if payload.Mailbox == wire.CoverMailbox {
				continue // cover traffic needs no further processing
			}
			if payload.Mailbox >= numMailboxes {
				continue
			}
			grouped[payload.Mailbox] = append(grouped[payload.Mailbox], payload.Body)
		}
	}

	if workers <= 1 || len(batch) < 2*decryptChunkSize {
		grouped := make(map[uint32][][]byte)
		parse(batch, grouped)
		return grouped
	}

	chunkSize := (len(batch) + workers - 1) / workers
	numChunks := (len(batch) + chunkSize - 1) / chunkSize
	parts := make([]map[uint32][][]byte, numChunks)
	parallelFor(numChunks, numChunks, func(c int) error {
		lo := c * chunkSize
		hi := min(lo+chunkSize, len(batch))
		parts[c] = make(map[uint32][][]byte)
		parse(batch[lo:hi], parts[c])
		return nil
	})

	grouped := make(map[uint32][][]byte)
	for _, part := range parts {
		for mb, bodies := range part {
			grouped[mb] = append(grouped[mb], bodies...)
		}
	}
	return grouped
}

// RawDialMailboxes builds dialing mailboxes WITHOUT the Bloom filter
// encoding (raw concatenated 256-bit tokens). This is the §5.2 baseline
// used by the BloomVsRaw ablation benchmark; the real protocol always uses
// Bloom filters.
func RawDialMailboxes(numMailboxes uint32, batch [][]byte) (map[uint32][]byte, error) {
	grouped := groupByMailbox(wire.Dialing, numMailboxes, batch, 1)
	out := make(map[uint32][]byte, numMailboxes)
	for mb := uint32(0); mb < numMailboxes; mb++ {
		var box []byte
		for _, b := range grouped[mb] {
			box = append(box, b...)
		}
		out[mb] = box
	}
	return out, nil
}

// Chain runs a batch through an ordered list of mixnet servers and returns
// the final mailboxes. It is the in-process equivalent of the servers
// streaming batches to one another over TCP; cmd/alpenhorn-mixer wraps the
// same Server type with a network transport. Each server still decrypts
// with its worker pool, but the chain itself is strictly sequential:
// server i+1 sees nothing until server i has fully finished. Use
// ChainPipelined for the overlapped execution the coordinator runs.
func Chain(servers []*Server, service wire.Service, round uint32, numMailboxes uint32, batch [][]byte) (map[uint32][]byte, error) {
	cur := batch
	var err error
	for i, s := range servers {
		cur, err = s.Mix(service, round, numMailboxes, cur)
		if err != nil {
			return nil, fmt.Errorf("mixnet: server %d (%s): %w", i, s.Name, err)
		}
	}
	return BuildMailboxes(service, numMailboxes, cur)
}

// DefaultStreamChunk is the batch chunk size used when feeding a mixer
// chain as a stream: small enough that downstream decryption overlaps
// upstream emission, large enough to amortize per-chunk overhead.
const DefaultStreamChunk = 512

// ChainPipelined runs a batch through the chain as a stream of chunks:
// every server opens intake up front (starting its noise generation
// immediately), and server i+1 begins peeling chunks as soon as server i
// emits its post-shuffle output. The shuffle remains a per-server barrier,
// so the privacy properties are identical to Chain; only the schedule
// changes. chunkSize <= 0 means DefaultStreamChunk.
func ChainPipelined(servers []*Server, service wire.Service, round uint32, numMailboxes uint32, batch [][]byte, chunkSize int) (map[uint32][]byte, error) {
	if chunkSize <= 0 {
		chunkSize = DefaultStreamChunk
	}
	stages := make([]ChunkMixer, len(servers))
	for i, s := range servers {
		stages[i] = s
	}
	final, err := RunPipeline(stages, service, round, numMailboxes, ChunkSource(batch, chunkSize), chunkSize)
	if err != nil {
		return nil, err
	}
	return BuildMailboxes(service, numMailboxes, final)
}

// ChunkMixer is the streaming intake surface of a mixnet server. It is
// satisfied by *Server in-process and by rpc.MixerClient across the wire.
// StreamAbort discards an in-flight stream cheaply (no noise, no shuffle)
// when the round has already failed elsewhere.
type ChunkMixer interface {
	StreamBegin(service wire.Service, round uint32, numMailboxes uint32) error
	StreamChunk(service wire.Service, round uint32, chunk [][]byte) error
	StreamEnd(service wire.Service, round uint32) ([][]byte, error)
	StreamAbort(service wire.Service, round uint32) error
}

// ChunkSource turns an in-memory batch into the chunk channel RunPipeline
// consumes.
func ChunkSource(batch [][]byte, chunkSize int) <-chan [][]byte {
	if chunkSize <= 0 {
		chunkSize = DefaultStreamChunk
	}
	ch := make(chan [][]byte)
	go func() {
		defer close(ch)
		for lo := 0; lo < len(batch); lo += chunkSize {
			ch <- batch[lo:min(lo+chunkSize, len(batch))]
		}
	}()
	return ch
}

// RunPipeline streams chunks through a chain of mixers, one goroutine per
// server, and returns the final server's shuffled output. Each stage
// forwards its post-shuffle batch downstream in chunkSize pieces, so the
// next server's decryption overlaps this server's emission. If any stage
// fails, the remaining input is drained (to unblock upstream stages) and
// the first error is returned.
func RunPipeline(stages []ChunkMixer, service wire.Service, round uint32, numMailboxes uint32, source <-chan [][]byte, chunkSize int) ([][]byte, error) {
	if chunkSize <= 0 {
		chunkSize = DefaultStreamChunk
	}
	if len(stages) == 0 {
		var all [][]byte
		for chunk := range source {
			all = append(all, chunk...)
		}
		return all, nil
	}

	// Open intake everywhere first: noise generation on every server
	// starts now, concurrent with all upstream mixing.
	opened := 0
	var beginErr error
	for _, m := range stages {
		if err := m.StreamBegin(service, round, numMailboxes); err != nil {
			beginErr = err
			break
		}
		opened++
	}
	if beginErr != nil {
		// Abandon the streams already opened so the rounds stay usable.
		for _, m := range stages[:opened] {
			_ = m.StreamAbort(service, round)
		}
		for range source {
		}
		return nil, beginErr
	}

	// aborted flips when any stage fails; the other stages then drain
	// their input and StreamAbort instead of generating noise and
	// shuffling output that would be discarded anyway.
	var aborted atomic.Bool
	errs := make([]error, len(stages))
	in := source
	var out chan [][]byte
	var wg sync.WaitGroup
	for i, m := range stages {
		out = make(chan [][]byte, 1)
		wg.Add(1)
		go func(i int, m ChunkMixer, in <-chan [][]byte, out chan<- [][]byte) {
			defer wg.Done()
			defer close(out)
			failed := false
			for chunk := range in {
				if failed || aborted.Load() {
					continue // drain to unblock upstream
				}
				if err := m.StreamChunk(service, round, chunk); err != nil {
					errs[i] = err
					failed = true
					aborted.Store(true)
				}
			}
			if failed || aborted.Load() {
				_ = m.StreamAbort(service, round)
				return
			}
			mixed, err := m.StreamEnd(service, round)
			if err != nil {
				errs[i] = err
				aborted.Store(true)
				return
			}
			for lo := 0; lo < len(mixed); lo += chunkSize {
				out <- mixed[lo:min(lo+chunkSize, len(mixed))]
			}
		}(i, m, in, out)
		in = out
	}

	var final [][]byte
	for chunk := range in {
		final = append(final, chunk...)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mixnet: pipeline stage %d: %w", i, err)
		}
	}
	return final, nil
}
