package mixnet

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"io"

	"alpenhorn/internal/onionbox"
	"alpenhorn/internal/wire"
)

// permutationReader derives the round's shuffle randomness from the round
// ONION PRIVATE KEY: SHA-256(tag ‖ priv ‖ service ‖ round) keys an
// AES-256-CTR keystream that feeds the Fisher-Yates draw.
//
// Why derive instead of drawing fresh randomness: one chain position may
// be served by a shard group whose merge role rotates per round, and the
// position's single full-batch permutation must be the SAME no matter
// which member happens to host the merge — otherwise failover or rotation
// would change the published mailboxes of an otherwise identical round.
// Every group member holds the same round private key (that is what makes
// it one logical mixer), so a key-derived permutation is exactly the
// shared secret the group already has.
//
// The anytrust argument is unchanged: the permutation is secret precisely
// as long as the round private key is secret, and the key already had to
// stay secret — an adversary holding it can peel the position's onions
// and link input to output directly, permutation or no permutation. Both
// secrets live in the same trust domain and die together: CloseRound
// erases the private key, and the derived AES key is never stored.
func permutationReader(priv *onionbox.PrivateKey, service wire.Service, round uint32) (io.Reader, error) {
	h := sha256.New()
	h.Write([]byte("alpenhorn/mixnet-permutation:"))
	h.Write(priv.Bytes())
	var meta [5]byte
	meta[0] = byte(service)
	binary.BigEndian.PutUint32(meta[1:], round)
	h.Write(meta[:])
	block, err := aes.NewCipher(h.Sum(nil))
	if err != nil {
		return nil, err
	}
	iv := make([]byte, aes.BlockSize)
	return &ctrReader{s: cipher.NewCTR(block, iv)}, nil
}

// ctrReader serves an AES-CTR keystream as an io.Reader.
type ctrReader struct {
	s cipher.Stream
}

func (r *ctrReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	r.s.XORKeyStream(p, p)
	return len(p), nil
}
