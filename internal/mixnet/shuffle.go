package mixnet

import (
	"crypto/rand"
	"encoding/binary"
	"io"
)

// shuffle applies a uniformly random Fisher-Yates permutation to the batch
// using cryptographic randomness. The permutation is never stored: once the
// stack frame is gone, even this server cannot reconstruct the mapping —
// which is exactly the property the anytrust argument needs from the one
// honest server.
func shuffle(rnd io.Reader, batch [][]byte) error {
	if rnd == nil {
		rnd = rand.Reader
	}
	for i := len(batch) - 1; i > 0; i-- {
		j, err := uniformInt(rnd, uint64(i+1))
		if err != nil {
			return err
		}
		batch[i], batch[j] = batch[j], batch[i]
	}
	return nil
}

// uniformInt returns a uniform value in [0, n) using rejection sampling.
func uniformInt(rnd io.Reader, n uint64) (uint64, error) {
	if n == 0 {
		panic("mixnet: uniformInt(0)")
	}
	max := ^uint64(0) - (^uint64(0) % n) // largest multiple of n
	var buf [8]byte
	for {
		if _, err := io.ReadFull(rnd, buf[:]); err != nil {
			return 0, err
		}
		v := binary.BigEndian.Uint64(buf[:])
		if v < max {
			return v % n, nil
		}
	}
}
