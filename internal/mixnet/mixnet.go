// Package mixnet implements Alpenhorn's anytrust mix network (§6), which
// follows the Vuvuzela mixnet design.
//
// A small, fixed chain of servers processes each round's batch of
// fixed-size client onions. Every server peels one encryption layer,
// shuffles the batch with a cryptographically random permutation, and adds
// Laplace-distributed noise requests addressed to every mailbox. As long as
// one server keeps its round key and permutation secret, an adversary
// cannot link an incoming request to an outgoing one — and the noise makes
// mailbox-size observations differentially private.
//
// The LAST server in the chain builds the round's mailboxes: for the
// add-friend protocol, a mailbox is the concatenation of the encrypted
// friend requests routed to it; for the dialing protocol, the server
// encodes each mailbox's dial tokens into a Bloom filter (§5.2).
//
// Round execution is parallel and pipelined: onion decryption fans out
// over a worker pool, per-round noise is generated in the background while
// clients are still submitting (PrepareNoise), and batches can be fed in
// chunks (StreamBegin/StreamChunk/StreamEnd) so a server starts peeling
// while the upstream server is still emitting. The shuffle remains a
// strict per-server barrier: output order is only decided once the whole
// batch is present, which is what the anytrust unlinkability argument
// needs.
//
// This package is transport-agnostic: the same chunked surface is driven
// by in-process pipelines (ChainPipelined), by a coordinator relaying
// chunks over RPC, and by daemons forwarding chunks directly to their
// successors (internal/rpc's chain-forward data plane). Because chunk
// arrival order defines pre-shuffle order and every randomness draw comes
// from Config.Rand in a fixed sequence, all three produce byte-identical
// mailboxes under a fixed seed — the property the cross-data-plane
// determinism tests pin down.
package mixnet

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"alpenhorn/internal/ibe"
	"alpenhorn/internal/keywheel"
	"alpenhorn/internal/noise"
	"alpenhorn/internal/onionbox"
	"alpenhorn/internal/wire"
)

type roundKey struct {
	service wire.Service
	round   uint32
}

type roundState struct {
	priv *onionbox.PrivateKey
	pub  *onionbox.PublicKey
	// downstream holds the onion keys of the servers after this one in
	// the chain, used to wrap this server's noise messages. nil until
	// SetDownstreamKeys (empty, non-nil for the last server).
	downstream []*onionbox.PublicKey
	// noise holds this round's background-generated noise, consumed by
	// the next Mix or StreamEnd call.
	noise *noiseBatch
	// stream is the in-progress chunked intake, if any.
	stream *stream
	closed bool
}

// noiseBatch is a future for one round's noise messages, generated
// concurrently with client intake so the mix never waits on it.
type noiseBatch struct {
	numMailboxes uint32
	done         chan struct{} // closed when msgs/err are set
	msgs         [][]byte
	err          error
}

// Server is one mixnet server. It is safe for concurrent use. Position in
// the chain is fixed at construction.
type Server struct {
	// Name identifies the server in logs.
	Name string
	// Position is this server's index in the chain (0 = first).
	Position int
	// ChainLength is the total number of servers in the chain.
	ChainLength int

	signingPub  ed25519.PublicKey
	signingPriv ed25519.PrivateKey

	// AddFriendNoise and DialingNoise are the per-mailbox noise
	// distributions (µ per server per mailbox, §8.1).
	AddFriendNoise noise.Laplace
	DialingNoise   noise.Laplace

	randSrc     io.Reader
	parallelism int

	mu     sync.Mutex
	rounds map[roundKey]*roundState

	// stats
	processed uint64
	noiseSent uint64
}

// Config configures a mixnet server.
type Config struct {
	Name        string
	Position    int
	ChainLength int
	// Noise overrides; zero values fall back to the paper's parameters.
	AddFriendNoise *noise.Laplace
	DialingNoise   *noise.Laplace
	// Rand is the server's randomness source; nil means crypto/rand.
	// The server reads it from multiple goroutines (worker-pool
	// decryption, background noise generation, shuffling), so any
	// source other than crypto/rand.Reader is wrapped in an internal
	// mutex: it only needs to be safe for serialized reads.
	Rand io.Reader
	// Parallelism is the worker count for onion decryption and noise
	// generation; 0 means runtime.GOMAXPROCS(0). 1 forces the
	// sequential path.
	Parallelism int
}

// lockedReader serializes reads of a non-thread-safe randomness source so
// that concurrent Mix, noise-generation, and streaming goroutines never
// interleave partial reads. See Config.Rand.
type lockedReader struct {
	mu sync.Mutex
	r  io.Reader
}

func (l *lockedReader) Read(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Read(p)
}

// New creates a mixnet server with a fresh long-term signing key.
func New(cfg Config) (*Server, error) {
	if cfg.Position < 0 || cfg.ChainLength <= 0 || cfg.Position >= cfg.ChainLength {
		return nil, errors.New("mixnet: invalid chain position")
	}
	randSrc := cfg.Rand
	switch randSrc {
	case nil, rand.Reader:
		randSrc = rand.Reader
	default:
		randSrc = &lockedReader{r: cfg.Rand}
	}
	pub, priv, err := ed25519.GenerateKey(randSrc)
	if err != nil {
		return nil, err
	}
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		Name:           cfg.Name,
		Position:       cfg.Position,
		ChainLength:    cfg.ChainLength,
		signingPub:     pub,
		signingPriv:    priv,
		AddFriendNoise: noise.AddFriendNoise,
		DialingNoise:   noise.DialingNoise,
		randSrc:        randSrc,
		parallelism:    par,
		rounds:         make(map[roundKey]*roundState),
	}
	if cfg.AddFriendNoise != nil {
		s.AddFriendNoise = *cfg.AddFriendNoise
	}
	if cfg.DialingNoise != nil {
		s.DialingNoise = *cfg.DialingNoise
	}
	return s, nil
}

// SigningKey returns the server's long-term ed25519 key (pinned in the
// client software package).
func (s *Server) SigningKey() ed25519.PublicKey { return s.signingPub }

// Parallelism returns the server's decryption/noise worker count.
func (s *Server) Parallelism() int { return s.parallelism }

// NewRound generates the server's per-round onion key pair and returns the
// signed announcement. Idempotent while the round is open.
func (s *Server) NewRound(service wire.Service, round uint32) (wire.MixerRoundKey, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := roundKey{service, round}
	st, ok := s.rounds[k]
	if ok && st.closed {
		return wire.MixerRoundKey{}, fmt.Errorf("mixnet: round %d (%s) closed", round, service)
	}
	if !ok {
		pub, priv, err := onionbox.GenerateKey(s.randSrc)
		if err != nil {
			return wire.MixerRoundKey{}, err
		}
		st = &roundState{priv: priv, pub: pub}
		s.rounds[k] = st
	}
	kb := st.pub.Bytes()
	return wire.MixerRoundKey{
		OnionKey: kb,
		Sig:      ed25519.Sign(s.signingPriv, wire.MixerKeyMessage(service, round, kb)),
	}, nil
}

// SetDownstreamKeys tells the server the round onion keys of the servers
// AFTER it in the chain, which it needs to wrap its own noise messages.
// The coordinator distributes these once all servers have announced keys.
func (s *Server) SetDownstreamKeys(service wire.Service, round uint32, keys [][]byte) error {
	if len(keys) != s.ChainLength-s.Position-1 {
		return fmt.Errorf("mixnet: expected %d downstream keys, got %d",
			s.ChainLength-s.Position-1, len(keys))
	}
	parsed := make([]*onionbox.PublicKey, len(keys))
	for i, kb := range keys {
		pk, err := onionbox.UnmarshalPublicKey(kb)
		if err != nil {
			return fmt.Errorf("mixnet: downstream key %d: %w", i, err)
		}
		parsed[i] = pk
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.rounds[roundKey{service, round}]
	if !ok || st.closed {
		return fmt.Errorf("mixnet: round %d (%s) not open", round, service)
	}
	st.downstream = parsed
	return nil
}

// CloseRound erases the round's onion private key (forward secrecy: the
// recorded ciphertexts of a closed round can never be decrypted again) and
// the server's memory of its permutation (which was never stored).
func (s *Server) CloseRound(service wire.Service, round uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.rounds[roundKey{service, round}]
	if !ok || st.closed {
		return
	}
	st.priv = nil // dropped; GC'd. X25519 keys have no explicit erase API.
	st.noise = nil
	st.stream = nil
	st.closed = true
}

// RoundOpen reports whether the round key still exists.
func (s *Server) RoundOpen(service wire.Service, round uint32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.rounds[roundKey{service, round}]
	return ok && !st.closed
}

// openState returns the live state for an open round.
func (s *Server) openState(service wire.Service, round uint32) (*roundState, error) {
	st, ok := s.rounds[roundKey{service, round}]
	if !ok || st.closed {
		return nil, fmt.Errorf("mixnet: round %d (%s) not open", round, service)
	}
	return st, nil
}

// PrepareNoise starts generating the round's noise messages in the
// background, so they are ready by the time the batch arrives and Mix (or
// StreamEnd) never blocks on noise. It must be called after
// SetDownstreamKeys and is idempotent for a given mailbox count; a later
// Mix with a different mailbox count falls back to inline generation.
func (s *Server) PrepareNoise(service wire.Service, round uint32, numMailboxes uint32) error {
	s.mu.Lock()
	st, err := s.openState(service, round)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	if st.downstream == nil && s.ChainLength-s.Position-1 > 0 {
		s.mu.Unlock()
		return fmt.Errorf("mixnet: round %d (%s): downstream keys not set", round, service)
	}
	if st.noise != nil && st.noise.numMailboxes == numMailboxes {
		s.mu.Unlock()
		return nil
	}
	nb := &noiseBatch{numMailboxes: numMailboxes, done: make(chan struct{})}
	st.noise = nb
	downstream := st.downstream
	s.mu.Unlock()

	go func() {
		nb.msgs, nb.err = s.generateNoise(service, numMailboxes, downstream)
		close(nb.done)
	}()
	return nil
}

// takeNoise detaches the round's prepared noise if it matches the mailbox
// count; the caller must wait on the returned batch. Callers hold s.mu.
func (st *roundState) takeNoise(numMailboxes uint32) *noiseBatch {
	nb := st.noise
	if nb == nil || nb.numMailboxes != numMailboxes {
		return nil
	}
	st.noise = nil
	return nb
}

// Mix peels one onion layer from every message in the batch, drops
// malformed messages, adds this server's noise, and shuffles. The returned
// batch is what the next server in the chain (or BuildMailboxes, at the
// last server) consumes.
//
// Decryption fans out over the server's worker pool but preserves batch
// order until the shuffle, so the output is a uniformly random permutation
// of exactly the messages the sequential path would produce.
//
// numMailboxes is the round's mailbox count K; noise is generated per
// mailbox. Fully processed messages at the last server are MixPayload
// encodings.
func (s *Server) Mix(service wire.Service, round uint32, numMailboxes uint32, batch [][]byte) ([][]byte, error) {
	s.mu.Lock()
	st, err := s.openState(service, round)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	priv := st.priv
	downstream := st.downstream
	nb := st.takeNoise(numMailboxes)
	s.mu.Unlock()

	out := decryptBatch(priv, batch, s.parallelism)
	return s.finishBatch(service, numMailboxes, downstream, nb, len(batch), out)
}

// finishBatch appends the round's noise (prepared, or generated inline) to
// the peeled messages, shuffles, and updates stats. It is the per-server
// barrier shared by Mix and StreamEnd.
func (s *Server) finishBatch(service wire.Service, numMailboxes uint32, downstream []*onionbox.PublicKey, nb *noiseBatch, batchLen int, out [][]byte) ([][]byte, error) {
	var noiseMsgs [][]byte
	if nb != nil {
		<-nb.done
		if nb.err != nil {
			return nil, nb.err
		}
		noiseMsgs = nb.msgs
	} else {
		// Noise: Laplace(µ, b) fresh fake requests per mailbox, plus
		// the cover mailbox, wrapped for the rest of the chain so that
		// downstream servers cannot tell noise from real traffic (§6).
		var err error
		noiseMsgs, err = s.generateNoise(service, numMailboxes, downstream)
		if err != nil {
			return nil, err
		}
	}
	out = append(out, noiseMsgs...)

	if err := shuffle(s.randSrc, out); err != nil {
		return nil, err
	}

	s.mu.Lock()
	s.processed += uint64(batchLen)
	s.noiseSent += uint64(len(noiseMsgs))
	s.mu.Unlock()
	return out, nil
}

// decryptChunkSize is the number of onions a worker claims at a time.
// Large enough to amortize scheduling, small enough to load-balance.
const decryptChunkSize = 64

// parallelFor runs fn(0), …, fn(n-1) across up to workers goroutines,
// each claiming the next index from a shared counter, and returns the
// first error. workers <= 1 (or n <= 1) runs inline. A worker stops at
// the first error it sees; others finish their current index.
func parallelFor(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// decryptBatch peels one layer from every onion, dropping malformed or
// replayed ones silently (clients that misbehave only hurt themselves).
// Workers claim contiguous chunks and write into per-chunk slots, so the
// surviving messages come back in batch order regardless of scheduling.
func decryptBatch(priv *onionbox.PrivateKey, batch [][]byte, workers int) [][]byte {
	if workers > 1 && len(batch) > decryptChunkSize {
		return decryptParallel(priv, batch, workers)
	}
	out := make([][]byte, 0, len(batch))
	for _, onion := range batch {
		if msg, err := onionbox.Open(priv, onion); err == nil {
			out = append(out, msg)
		}
	}
	return out
}

func decryptParallel(priv *onionbox.PrivateKey, batch [][]byte, workers int) [][]byte {
	numChunks := (len(batch) + decryptChunkSize - 1) / decryptChunkSize
	chunkOut := make([][][]byte, numChunks)
	parallelFor(numChunks, workers, func(c int) error {
		lo := c * decryptChunkSize
		hi := min(lo+decryptChunkSize, len(batch))
		out := make([][]byte, 0, hi-lo)
		for _, onion := range batch[lo:hi] {
			if msg, err := onionbox.Open(priv, onion); err == nil {
				out = append(out, msg)
			}
		}
		chunkOut[c] = out
		return nil
	})

	total := 0
	for _, c := range chunkOut {
		total += len(c)
	}
	out := make([][]byte, 0, total)
	for _, c := range chunkOut {
		out = append(out, c...)
	}
	return out
}

// generateNoise creates the server's fake requests for a round: for every
// real mailbox, a Laplace-distributed number of plausible request bodies.
// Fake add-friend requests are random IBE-ciphertext-shaped blobs (a random
// G2 point plus random AEAD bytes — indistinguishable from real ciphertexts
// by ciphertext anonymity, §4.3); fake dial requests are random tokens.
// Mailboxes are sharded across the worker pool: each noise onion costs one
// X25519 seal per downstream hop, which dominates round setup otherwise.
func (s *Server) generateNoise(service wire.Service, numMailboxes uint32, downstream []*onionbox.PublicKey) ([][]byte, error) {
	dist := s.AddFriendNoise
	if service == wire.Dialing {
		dist = s.DialingNoise
	}
	perMailbox := func(mb uint32) ([][]byte, error) {
		n, err := dist.Sample(s.randSrc)
		if err != nil {
			return nil, err
		}
		var msgs [][]byte
		for i := 0; i < n; i++ {
			body, err := s.noiseBody(service)
			if err != nil {
				return nil, err
			}
			payload := (&wire.MixPayload{Mailbox: mb, Body: body}).Marshal()
			wrapped, err := onionbox.WrapOnion(s.randSrc, downstream, payload)
			if err != nil {
				return nil, err
			}
			msgs = append(msgs, wrapped)
		}
		return msgs, nil
	}

	perMB := make([][][]byte, numMailboxes)
	err := parallelFor(int(numMailboxes), s.parallelism, func(mb int) error {
		m, err := perMailbox(uint32(mb))
		if err != nil {
			return err
		}
		perMB[mb] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	var msgs [][]byte
	for _, m := range perMB {
		msgs = append(msgs, m...)
	}
	return msgs, nil
}

func (s *Server) noiseBody(service wire.Service) ([]byte, error) {
	switch service {
	case wire.AddFriend:
		return ibe.RandomCiphertext(s.randSrc, wire.FriendRequestSize)
	case wire.Dialing:
		tok := make([]byte, keywheel.TokenSize)
		_, err := io.ReadFull(s.randSrc, tok)
		return tok, err
	default:
		return nil, fmt.Errorf("mixnet: unknown service %v", service)
	}
}

// Stats returns cumulative counts of (client messages processed, noise
// messages generated).
func (s *Server) Stats() (processed, noiseSent uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.processed, s.noiseSent
}

// NoiseMu returns the server's mean per-mailbox noise for a service; the
// coordinator uses it to size mailbox counts.
func (s *Server) NoiseMu(service wire.Service) float64 {
	if service == wire.Dialing {
		return s.DialingNoise.Mu
	}
	return s.AddFriendNoise.Mu
}
