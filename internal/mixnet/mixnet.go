// Package mixnet implements Alpenhorn's anytrust mix network (§6), which
// follows the Vuvuzela mixnet design.
//
// A small, fixed chain of servers processes each round's batch of
// fixed-size client onions. Every server peels one encryption layer,
// shuffles the batch with a cryptographically random permutation, and adds
// Laplace-distributed noise requests addressed to every mailbox. As long as
// one server keeps its round key and permutation secret, an adversary
// cannot link an incoming request to an outgoing one — and the noise makes
// mailbox-size observations differentially private.
//
// The LAST server in the chain builds the round's mailboxes: for the
// add-friend protocol, a mailbox is the concatenation of the encrypted
// friend requests routed to it; for the dialing protocol, the server
// encodes each mailbox's dial tokens into a Bloom filter (§5.2).
//
// Round execution is parallel and pipelined: onion decryption fans out
// over a worker pool, per-round noise is generated in the background while
// clients are still submitting (PrepareNoise), and batches can be fed in
// chunks (StreamBegin/StreamChunk/StreamEnd) so a server starts peeling
// while the upstream server is still emitting. The shuffle remains a
// strict per-server barrier: output order is only decided once the whole
// batch is present, which is what the anytrust unlinkability argument
// needs.
//
// # Shard groups
//
// One CHAIN POSITION may be served by several Server instances on
// separate machines — a shard group, one logical mixer split for
// throughput. The group's contract keeps sharding invisible to both
// clients and the anytrust argument:
//
//   - One key per position. The ANNOUNCER (shard 0 — the member whose
//     long-term signing key clients pin) generates the round onion key
//     and announces it; the other shards install the same key
//     (ExportRoundKey/ImportRoundKey — group-internal traffic only,
//     gated per round to a coordinator-distributed peer allowlist).
//     Clients wrap exactly one onion layer for the position, sharded or
//     not. Hot-spare daemons (Config.Spare) are drafted into a benched
//     member's slot the same way: they import the round key and take the
//     slot's shard index for exactly that round.
//
//   - Divided noise, preserved scale. Each shard draws per-mailbox
//     noise from Laplace(ceil(µ/N), b) — the position's MEAN divided,
//     its scale b intact (SetRoundShard fixes N before any noise
//     exists). Ceil rounding means the group's union can only meet or
//     exceed the unsharded µ, and full-scale draws keep §6's ε = s/b
//     analysis unchanged; dividing sampled counts instead would shrink
//     the effective scale and erode the guarantee.
//
//   - One full-batch shuffle, at the merge. Shards peel their slices
//     WITHOUT shuffling (StreamEndShard) and hand them to the member
//     hosting the group's MERGE ROLE this round, where the slice that
//     arrives last completes the merge: MergeShuffle concatenates the
//     slices in shard-index order and applies a single permutation over
//     the whole position's batch. The position's mixing contribution is
//     therefore identical to an unsharded server's — never N smaller
//     shuffles an observer could partition.
//
//   - A role, not a machine. The merge/build-lead role is assigned by
//     the coordinator per round (round-robin by default), because the
//     merge member is the position's bandwidth funnel: it receives every
//     other shard's slice and re-deals the full batch. To make the role
//     freely movable, the permutation is DERIVED from the round private
//     key (permutationReader) rather than drawn from the merge member's
//     local randomness — every member holds the same key, so every
//     member computes the same permutation, and a round's published
//     mailboxes are byte-identical no matter who merged. The permutation
//     stays secret exactly as long as the round key does, which is the
//     secrecy the anytrust argument already demanded, and both die
//     together at CloseRound.
//
// A shard group is one trust domain (it shares the round private key);
// peeled-but-unshuffled slices travel only inside it. Positions with a
// single shard never touch any of this machinery.
//
// This package is transport-agnostic: the same chunked surface is driven
// by in-process pipelines (ChainPipelined), by a coordinator relaying
// chunks over RPC, and by daemons forwarding chunks directly to their
// successors (internal/rpc's chain-forward data plane, which also routes
// the shard-group deal/merge). Because chunk arrival order defines
// pre-shuffle order and every randomness draw comes from Config.Rand in a
// fixed sequence, the UNSHARDED data planes produce byte-identical
// mailboxes under a fixed seed. Across shard COUNTS the guarantee is
// set-level, not order-level — the deal legitimately reorders the
// pre-shuffle batch and noise bytes are per-machine randomness — so
// byte-identity across 1/2/3-shard chains holds for order-independent
// mailbox encodings (dialing's Bloom filters) with noise silenced, which
// is exactly what the cross-shard-count determinism test pins; add-friend
// mailboxes (order-sensitive concatenations) keep only the set guarantee.
package mixnet

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"alpenhorn/internal/ibe"
	"alpenhorn/internal/keywheel"
	"alpenhorn/internal/noise"
	"alpenhorn/internal/onionbox"
	"alpenhorn/internal/wire"
)

type roundKey struct {
	service wire.Service
	round   uint32
}

type roundState struct {
	priv *onionbox.PrivateKey
	pub  *onionbox.PublicKey
	// downstream holds the onion keys of the servers after this one in
	// the chain, used to wrap this server's noise messages. nil until
	// SetDownstreamKeys (empty, non-nil for the last server).
	downstream []*onionbox.PublicKey
	// noise holds this round's background-generated noise, consumed by
	// the next Mix or StreamEnd call.
	noise *noiseBatch
	// stream is the in-progress chunked intake, if any.
	stream *stream
	// shardIndex/shardCount place this server inside the round's shard
	// group for its chain position (SetRoundShard). shardCount 0 means
	// the position is unsharded (equivalent to a group of one).
	shardIndex int
	shardCount int
	closed     bool
}

// effectiveShards returns the round's shard-group size, treating the unset
// state as a group of one.
func (st *roundState) effectiveShards() int {
	if st.shardCount <= 0 {
		return 1
	}
	return st.shardCount
}

// noiseBatch is a future for one round's noise messages, generated
// concurrently with client intake so the mix never waits on it.
type noiseBatch struct {
	numMailboxes uint32
	done         chan struct{} // closed when msgs/err are set
	msgs         [][]byte
	err          error
}

// Server is one mixnet server. It is safe for concurrent use. Position in
// the chain is fixed at construction.
type Server struct {
	// Name identifies the server in logs.
	Name string
	// Position is this server's index in the chain (0 = first).
	Position int
	// ChainLength is the total number of servers in the chain.
	ChainLength int

	signingPub  ed25519.PublicKey
	signingPriv ed25519.PrivateKey

	// AddFriendNoise and DialingNoise are the per-mailbox noise
	// distributions (µ per server per mailbox, §8.1).
	AddFriendNoise noise.Laplace
	DialingNoise   noise.Laplace

	randSrc     io.Reader
	parallelism int

	// Static shard identity (Config.ShardIndex/ShardCount); 0 count
	// means unpinned.
	shardIndex int
	shardCount int
	// spare marks a hot-spare daemon (Config.Spare): unpinned, but
	// draftable into any shard slot of its position per round, which
	// requires serving the group-internal key import/export surface.
	spare bool

	mu     sync.Mutex
	rounds map[roundKey]*roundState

	// stats
	processed uint64
	noiseSent uint64
}

// Config configures a mixnet server.
type Config struct {
	Name        string
	Position    int
	ChainLength int
	// Noise overrides; zero values fall back to the paper's parameters.
	AddFriendNoise *noise.Laplace
	DialingNoise   *noise.Laplace
	// Rand is the server's randomness source; nil means crypto/rand.
	// The server reads it from multiple goroutines (worker-pool
	// decryption, background noise generation, shuffling), so any
	// source other than crypto/rand.Reader is wrapped in an internal
	// mutex: it only needs to be safe for serialized reads.
	Rand io.Reader
	// Parallelism is the worker count for onion decryption and noise
	// generation; 0 means runtime.GOMAXPROCS(0). 1 forces the
	// sequential path.
	Parallelism int
	// ShardIndex/ShardCount pin this daemon's place in its position's
	// shard group (cmd/alpenhorn-mixer -shard i/N). ShardCount 0 leaves
	// the daemon unpinned: it accepts whatever per-round shard layout
	// the coordinator announces. When pinned, SetRoundShard rejects a
	// conflicting layout — a misconfigured coordinator cannot silently
	// make one machine double as two shards.
	ShardIndex int
	ShardCount int
	// Spare marks this daemon as a hot spare for its position
	// (cmd/alpenhorn-mixer -spare): it sits idle until the coordinator
	// benches a sick shard-group member and drafts the spare into that
	// member's slot for the round. A spare stays unpinned (the slot it
	// fills changes per draft) but serves the group-internal round-key
	// import/export surface that is otherwise reserved for pinned
	// members — deployments keep spares inside the shard network, and
	// the per-round exportkey peer allowlist gates the surface besides.
	Spare bool
}

// lockedReader serializes reads of a non-thread-safe randomness source so
// that concurrent Mix, noise-generation, and streaming goroutines never
// interleave partial reads. See Config.Rand.
type lockedReader struct {
	mu sync.Mutex
	r  io.Reader
}

func (l *lockedReader) Read(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Read(p)
}

// New creates a mixnet server with a fresh long-term signing key.
func New(cfg Config) (*Server, error) {
	if cfg.Position < 0 || cfg.ChainLength <= 0 || cfg.Position >= cfg.ChainLength {
		return nil, errors.New("mixnet: invalid chain position")
	}
	if cfg.ShardCount > 0 && (cfg.ShardIndex < 0 || cfg.ShardIndex >= cfg.ShardCount) {
		return nil, errors.New("mixnet: invalid shard index")
	}
	randSrc := cfg.Rand
	switch randSrc {
	case nil, rand.Reader:
		randSrc = rand.Reader
	default:
		randSrc = &lockedReader{r: cfg.Rand}
	}
	pub, priv, err := ed25519.GenerateKey(randSrc)
	if err != nil {
		return nil, err
	}
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		Name:           cfg.Name,
		Position:       cfg.Position,
		ChainLength:    cfg.ChainLength,
		signingPub:     pub,
		signingPriv:    priv,
		AddFriendNoise: noise.AddFriendNoise,
		DialingNoise:   noise.DialingNoise,
		randSrc:        randSrc,
		parallelism:    par,
		shardIndex:     cfg.ShardIndex,
		shardCount:     cfg.ShardCount,
		spare:          cfg.Spare,
		rounds:         make(map[roundKey]*roundState),
	}
	if cfg.AddFriendNoise != nil {
		s.AddFriendNoise = *cfg.AddFriendNoise
	}
	if cfg.DialingNoise != nil {
		s.DialingNoise = *cfg.DialingNoise
	}
	return s, nil
}

// SigningKey returns the server's long-term ed25519 key (pinned in the
// client software package).
func (s *Server) SigningKey() ed25519.PublicKey { return s.signingPub }

// Parallelism returns the server's decryption/noise worker count.
func (s *Server) Parallelism() int { return s.parallelism }

// NewRound generates the server's per-round onion key pair and returns the
// signed announcement. Idempotent while the round is open.
func (s *Server) NewRound(service wire.Service, round uint32) (wire.MixerRoundKey, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := roundKey{service, round}
	st, ok := s.rounds[k]
	if ok && st.closed {
		return wire.MixerRoundKey{}, fmt.Errorf("mixnet: round %d (%s) closed", round, service)
	}
	if !ok {
		pub, priv, err := onionbox.GenerateKey(s.randSrc)
		if err != nil {
			return wire.MixerRoundKey{}, err
		}
		st = &roundState{priv: priv, pub: pub}
		s.rounds[k] = st
	}
	kb := st.pub.Bytes()
	return wire.MixerRoundKey{
		OnionKey: kb,
		Sig:      ed25519.Sign(s.signingPriv, wire.MixerKeyMessage(service, round, kb)),
	}, nil
}

// ShardIdentity returns the daemon's pinned (index, count) shard identity;
// count 0 means unpinned.
func (s *Server) ShardIdentity() (int, int) { return s.shardIndex, s.shardCount }

// Spare reports whether this daemon is a hot spare (Config.Spare).
func (s *Server) Spare() bool { return s.spare }

// SetRoundShard places this server in a shard group for the round: it is
// shard index of count servers jointly serving one chain position. It must
// be called before the round's noise is prepared — the group divides the
// position's noise, so a layout change after generation would break the
// per-mailbox distribution invariant. A server pinned with Config.ShardCount
// rejects a conflicting layout.
func (s *Server) SetRoundShard(service wire.Service, round uint32, index, count int) error {
	if count <= 0 || index < 0 || index >= count {
		return fmt.Errorf("mixnet: invalid shard layout %d/%d", index, count)
	}
	if s.shardCount > 0 && (index != s.shardIndex || count != s.shardCount) {
		return fmt.Errorf("mixnet: shard layout %d/%d conflicts with this daemon's pinned identity %d/%d",
			index, count, s.shardIndex, s.shardCount)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.openState(service, round)
	if err != nil {
		return err
	}
	if st.shardCount > 0 && (st.shardIndex != index || st.shardCount != count) {
		return fmt.Errorf("mixnet: round %d (%s) already sharded as %d/%d", round, service, st.shardIndex, st.shardCount)
	}
	if st.noise != nil {
		return fmt.Errorf("mixnet: round %d (%s): shard layout set after noise generation", round, service)
	}
	st.shardIndex, st.shardCount = index, count
	return nil
}

// RoundShard reports the round's shard layout (index, count); (0, 1) for
// an unsharded round.
func (s *Server) RoundShard(service wire.Service, round uint32) (int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.rounds[roundKey{service, round}]
	if !ok {
		return 0, 1
	}
	return st.shardIndex, st.effectiveShards()
}

// ExportRoundKey returns the round's onion private key so the other shards
// of this position can install it (ImportRoundKey). A shard group is ONE
// logical mixnet server split across machines: clients wrap one onion
// layer per position, so every shard must peel with the same key.
//
// Only a server PINNED as a shard-group member (Config.ShardCount > 0) or
// marked as a hot spare (Config.Spare) serves the export: on any other
// daemon a reachable export surface would hand any peer the means to peel
// this position's layer and collapse the anytrust argument. Deployments
// must additionally keep the surface inside the group's network — exactly
// like the cdn.publish write surface stays off the client plane — and the
// rpc layer gates it per round to the coordinator-distributed peer
// allowlist.
func (s *Server) ExportRoundKey(service wire.Service, round uint32) ([]byte, error) {
	if s.shardCount <= 0 && !s.spare {
		return nil, errors.New("mixnet: round keys are only exportable inside a pinned shard group (-shard i/N or -spare)")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.openState(service, round)
	if err != nil {
		return nil, err
	}
	return st.priv.Bytes(), nil
}

// ImportRoundKey installs a round onion key exported by the shard group's
// key holder, creating the round if this server has not opened it yet.
// Importing the same key again is a no-op; a conflicting key is an error.
// Like the export, it is refused outside a pinned shard group or a hot
// spare: an open import surface would let any peer rotate a round key out
// from under the announced settings.
func (s *Server) ImportRoundKey(service wire.Service, round uint32, privBytes []byte) error {
	if s.shardCount <= 0 && !s.spare {
		return errors.New("mixnet: round keys are only importable inside a pinned shard group (-shard i/N or -spare)")
	}
	priv, err := onionbox.UnmarshalPrivateKey(privBytes)
	if err != nil {
		return fmt.Errorf("mixnet: importing round key: %w", err)
	}
	pub := priv.Public()
	s.mu.Lock()
	defer s.mu.Unlock()
	k := roundKey{service, round}
	st, ok := s.rounds[k]
	if ok && st.closed {
		return fmt.Errorf("mixnet: round %d (%s) closed", round, service)
	}
	if !ok {
		s.rounds[k] = &roundState{priv: priv, pub: pub}
		return nil
	}
	if string(st.pub.Bytes()) == string(pub.Bytes()) {
		return nil
	}
	if st.noise != nil || st.stream != nil {
		return fmt.Errorf("mixnet: round %d (%s): key import after round started", round, service)
	}
	st.priv, st.pub = priv, pub
	return nil
}

// SetDownstreamKeys tells the server the round onion keys of the servers
// AFTER it in the chain, which it needs to wrap its own noise messages.
// The coordinator distributes these once all servers have announced keys.
func (s *Server) SetDownstreamKeys(service wire.Service, round uint32, keys [][]byte) error {
	if len(keys) != s.ChainLength-s.Position-1 {
		return fmt.Errorf("mixnet: expected %d downstream keys, got %d",
			s.ChainLength-s.Position-1, len(keys))
	}
	parsed := make([]*onionbox.PublicKey, len(keys))
	for i, kb := range keys {
		pk, err := onionbox.UnmarshalPublicKey(kb)
		if err != nil {
			return fmt.Errorf("mixnet: downstream key %d: %w", i, err)
		}
		parsed[i] = pk
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.rounds[roundKey{service, round}]
	if !ok || st.closed {
		return fmt.Errorf("mixnet: round %d (%s) not open", round, service)
	}
	st.downstream = parsed
	return nil
}

// CloseRound erases the round's onion private key (forward secrecy: the
// recorded ciphertexts of a closed round can never be decrypted again) and
// the server's memory of its permutation (which was never stored).
func (s *Server) CloseRound(service wire.Service, round uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.rounds[roundKey{service, round}]
	if !ok || st.closed {
		return
	}
	st.priv = nil // dropped; GC'd. X25519 keys have no explicit erase API.
	st.noise = nil
	st.stream = nil
	st.closed = true
}

// RoundOpen reports whether the round key still exists.
func (s *Server) RoundOpen(service wire.Service, round uint32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.rounds[roundKey{service, round}]
	return ok && !st.closed
}

// openState returns the live state for an open round.
func (s *Server) openState(service wire.Service, round uint32) (*roundState, error) {
	st, ok := s.rounds[roundKey{service, round}]
	if !ok || st.closed {
		return nil, fmt.Errorf("mixnet: round %d (%s) not open", round, service)
	}
	return st, nil
}

// PrepareNoise starts generating the round's noise messages in the
// background, so they are ready by the time the batch arrives and Mix (or
// StreamEnd) never blocks on noise. It must be called after
// SetDownstreamKeys and is idempotent for a given mailbox count; a later
// Mix with a different mailbox count falls back to inline generation.
func (s *Server) PrepareNoise(service wire.Service, round uint32, numMailboxes uint32) error {
	s.mu.Lock()
	st, err := s.openState(service, round)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	if st.downstream == nil && s.ChainLength-s.Position-1 > 0 {
		s.mu.Unlock()
		return fmt.Errorf("mixnet: round %d (%s): downstream keys not set", round, service)
	}
	if st.noise != nil && st.noise.numMailboxes == numMailboxes {
		s.mu.Unlock()
		return nil
	}
	nb := &noiseBatch{numMailboxes: numMailboxes, done: make(chan struct{})}
	st.noise = nb
	downstream := st.downstream
	shards := st.effectiveShards()
	s.mu.Unlock()

	go func() {
		nb.msgs, nb.err = s.generateNoise(service, numMailboxes, downstream, shards)
		close(nb.done)
	}()
	return nil
}

// takeNoise detaches the round's prepared noise if it matches the mailbox
// count; the caller must wait on the returned batch. Callers hold s.mu.
func (st *roundState) takeNoise(numMailboxes uint32) *noiseBatch {
	nb := st.noise
	if nb == nil || nb.numMailboxes != numMailboxes {
		return nil
	}
	st.noise = nil
	return nb
}

// Mix peels one onion layer from every message in the batch, drops
// malformed messages, adds this server's noise, and shuffles. The returned
// batch is what the next server in the chain (or BuildMailboxes, at the
// last server) consumes.
//
// Decryption fans out over the server's worker pool but preserves batch
// order until the shuffle, so the output is a uniformly random permutation
// of exactly the messages the sequential path would produce.
//
// numMailboxes is the round's mailbox count K; noise is generated per
// mailbox. Fully processed messages at the last server are MixPayload
// encodings.
func (s *Server) Mix(service wire.Service, round uint32, numMailboxes uint32, batch [][]byte) ([][]byte, error) {
	s.mu.Lock()
	st, err := s.openState(service, round)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	priv := st.priv
	downstream := st.downstream
	nb := st.takeNoise(numMailboxes)
	shards := st.effectiveShards()
	s.mu.Unlock()

	out := decryptBatch(priv, batch, s.parallelism)
	return s.finishBatch(service, round, priv, numMailboxes, downstream, nb, len(batch), out, shards, true)
}

// finishBatch appends the round's noise (prepared, or generated inline) to
// the peeled messages, shuffles (unless this server is one shard of a
// group, whose output is shuffled only at the group's merge), and updates
// stats. It is the per-server barrier shared by Mix, StreamEnd, and
// StreamEndShard. The permutation is derived from the round private key
// (see permutationReader), so it is identical on every holder of the key.
func (s *Server) finishBatch(service wire.Service, round uint32, priv *onionbox.PrivateKey, numMailboxes uint32, downstream []*onionbox.PublicKey, nb *noiseBatch, batchLen int, out [][]byte, shards int, doShuffle bool) ([][]byte, error) {
	var noiseMsgs [][]byte
	if nb != nil {
		<-nb.done
		if nb.err != nil {
			return nil, nb.err
		}
		noiseMsgs = nb.msgs
	} else {
		// Noise: Laplace(µ, b) fresh fake requests per mailbox, plus
		// the cover mailbox, wrapped for the rest of the chain so that
		// downstream servers cannot tell noise from real traffic (§6).
		var err error
		noiseMsgs, err = s.generateNoise(service, numMailboxes, downstream, shards)
		if err != nil {
			return nil, err
		}
	}
	out = append(out, noiseMsgs...)

	if doShuffle {
		prnd, err := permutationReader(priv, service, round)
		if err != nil {
			return nil, err
		}
		if err := shuffle(prnd, out); err != nil {
			return nil, err
		}
	}

	s.mu.Lock()
	s.processed += uint64(batchLen)
	s.noiseSent += uint64(len(noiseMsgs))
	s.mu.Unlock()
	return out, nil
}

// MergeShuffle is the shard group's barrier: it concatenates the group's
// peeled outputs in shard-index order and applies ONE permutation over
// the whole position's batch, derived from the round private key every
// member holds (permutationReader). It runs on whichever member hosts the
// group's merge role this round, triggered by whichever shard's output
// arrives last; the result is exactly what an unsharded server would emit
// — the position's permutation covers the full batch, so splitting the
// peel across machines never weakens the anytrust mixing argument, and
// because the permutation is key-derived, rotating the merge role across
// the group never changes the round's output.
func (s *Server) MergeShuffle(service wire.Service, round uint32, parts [][][]byte) ([][]byte, error) {
	s.mu.Lock()
	st, err := s.openState(service, round)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	priv := st.priv
	s.mu.Unlock()
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([][]byte, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	prnd, err := permutationReader(priv, service, round)
	if err != nil {
		return nil, err
	}
	if err := shuffle(prnd, out); err != nil {
		return nil, err
	}
	return out, nil
}

// decryptChunkSize is the number of onions a worker claims at a time.
// Large enough to amortize scheduling, small enough to load-balance.
const decryptChunkSize = 64

// parallelFor runs fn(0), …, fn(n-1) across up to workers goroutines,
// each claiming the next index from a shared counter, and returns the
// first error. workers <= 1 (or n <= 1) runs inline. A worker stops at
// the first error it sees; others finish their current index.
func parallelFor(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// decryptBatch peels one layer from every onion, dropping malformed or
// replayed ones silently (clients that misbehave only hurt themselves).
// Workers claim contiguous chunks and write into per-chunk slots, so the
// surviving messages come back in batch order regardless of scheduling.
func decryptBatch(priv *onionbox.PrivateKey, batch [][]byte, workers int) [][]byte {
	if workers > 1 && len(batch) > decryptChunkSize {
		return decryptParallel(priv, batch, workers)
	}
	out := make([][]byte, 0, len(batch))
	for _, onion := range batch {
		if msg, err := onionbox.Open(priv, onion); err == nil {
			out = append(out, msg)
		}
	}
	return out
}

func decryptParallel(priv *onionbox.PrivateKey, batch [][]byte, workers int) [][]byte {
	numChunks := (len(batch) + decryptChunkSize - 1) / decryptChunkSize
	chunkOut := make([][][]byte, numChunks)
	parallelFor(numChunks, workers, func(c int) error {
		lo := c * decryptChunkSize
		hi := min(lo+decryptChunkSize, len(batch))
		out := make([][]byte, 0, hi-lo)
		for _, onion := range batch[lo:hi] {
			if msg, err := onionbox.Open(priv, onion); err == nil {
				out = append(out, msg)
			}
		}
		chunkOut[c] = out
		return nil
	})

	total := 0
	for _, c := range chunkOut {
		total += len(c)
	}
	out := make([][]byte, 0, total)
	for _, c := range chunkOut {
		out = append(out, c...)
	}
	return out
}

// generateNoise creates the server's fake requests for a round: for every
// real mailbox, a Laplace-distributed number of plausible request bodies.
// Fake add-friend requests are random IBE-ciphertext-shaped blobs (a random
// G2 point plus random AEAD bytes — indistinguishable from real ciphertexts
// by ciphertext anonymity, §4.3); fake dial requests are random tokens.
// Mailboxes are sharded across the worker pool: each noise onion costs one
// X25519 seal per downstream hop, which dominates round setup otherwise.
//
// When the server is one of `shards` machines jointly serving its chain
// position, each shard samples a distribution with mean ceil(µ/shards)
// and the position's FULL scale b. Dividing only the MEAN keeps the
// guarantee intact: ceil rounding means the union's expected noise can
// only meet or exceed the unsharded µ, and because every shard's draw
// retains scale b, the mailbox counts an adversary observes still carry
// at least one full-scale Laplace perturbation — the ε = s/b analysis of
// §6 is unchanged. (Dividing the sampled COUNT instead would shrink the
// effective scale to ~b/N and multiply the privacy loss by N.)
func (s *Server) generateNoise(service wire.Service, numMailboxes uint32, downstream []*onionbox.PublicKey, shards int) ([][]byte, error) {
	if shards < 1 {
		shards = 1
	}
	dist := s.AddFriendNoise
	if service == wire.Dialing {
		dist = s.DialingNoise
	}
	if shards > 1 {
		dist.Mu = math.Ceil(dist.Mu / float64(shards))
	}
	perMailbox := func(mb uint32) ([][]byte, error) {
		n, err := dist.Sample(s.randSrc)
		if err != nil {
			return nil, err
		}
		bodies, err := s.noiseBodies(service, n)
		if err != nil {
			return nil, err
		}
		var msgs [][]byte
		for _, body := range bodies {
			payload := (&wire.MixPayload{Mailbox: mb, Body: body}).Marshal()
			wrapped, err := onionbox.WrapOnion(s.randSrc, downstream, payload)
			if err != nil {
				return nil, err
			}
			msgs = append(msgs, wrapped)
		}
		return msgs, nil
	}

	perMB := make([][][]byte, numMailboxes)
	err := parallelFor(int(numMailboxes), s.parallelism, func(mb int) error {
		m, err := perMailbox(uint32(mb))
		if err != nil {
			return err
		}
		perMB[mb] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	var msgs [][]byte
	for _, m := range perMB {
		msgs = append(msgs, m...)
	}
	return msgs, nil
}

// noiseBodies generates one mailbox's worth of noise bodies. Add-friend
// blobs are produced by the batched IBE noise generator — the comb-table
// scalar multiplications share one affine-conversion inversion across the
// mailbox — consuming randomness in exactly the order of n sequential
// RandomCiphertext calls, so noise bytes are identical to the unbatched
// path under a fixed rand source.
func (s *Server) noiseBodies(service wire.Service, n int) ([][]byte, error) {
	switch service {
	case wire.AddFriend:
		return ibe.RandomCiphertexts(s.randSrc, wire.FriendRequestSize, n)
	case wire.Dialing:
		bodies := make([][]byte, n)
		for i := range bodies {
			tok := make([]byte, keywheel.TokenSize)
			if _, err := io.ReadFull(s.randSrc, tok); err != nil {
				return nil, err
			}
			bodies[i] = tok
		}
		return bodies, nil
	default:
		return nil, fmt.Errorf("mixnet: unknown service %v", service)
	}
}

// Stats returns cumulative counts of (client messages processed, noise
// messages generated).
func (s *Server) Stats() (processed, noiseSent uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.processed, s.noiseSent
}

// NoiseMu returns the server's mean per-mailbox noise for a service; the
// coordinator uses it to size mailbox counts.
func (s *Server) NoiseMu(service wire.Service) float64 {
	if service == wire.Dialing {
		return s.DialingNoise.Mu
	}
	return s.AddFriendNoise.Mu
}
