// Package mixnet implements Alpenhorn's anytrust mix network (§6), which
// follows the Vuvuzela mixnet design.
//
// A small, fixed chain of servers processes each round's batch of
// fixed-size client onions. Every server peels one encryption layer,
// shuffles the batch with a cryptographically random permutation, and adds
// Laplace-distributed noise requests addressed to every mailbox. As long as
// one server keeps its round key and permutation secret, an adversary
// cannot link an incoming request to an outgoing one — and the noise makes
// mailbox-size observations differentially private.
//
// The LAST server in the chain builds the round's mailboxes: for the
// add-friend protocol, a mailbox is the concatenation of the encrypted
// friend requests routed to it; for the dialing protocol, the server
// encodes each mailbox's dial tokens into a Bloom filter (§5.2).
package mixnet

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"

	"alpenhorn/internal/ibe"
	"alpenhorn/internal/keywheel"
	"alpenhorn/internal/noise"
	"alpenhorn/internal/onionbox"
	"alpenhorn/internal/wire"
)

type roundKey struct {
	service wire.Service
	round   uint32
}

type roundState struct {
	priv *onionbox.PrivateKey
	pub  *onionbox.PublicKey
	// downstream holds the onion keys of the servers after this one in
	// the chain, used to wrap this server's noise messages.
	downstream []*onionbox.PublicKey
	closed     bool
}

// Server is one mixnet server. It is safe for concurrent use. Position in
// the chain is fixed at construction.
type Server struct {
	// Name identifies the server in logs.
	Name string
	// Position is this server's index in the chain (0 = first).
	Position int
	// ChainLength is the total number of servers in the chain.
	ChainLength int

	signingPub  ed25519.PublicKey
	signingPriv ed25519.PrivateKey

	// AddFriendNoise and DialingNoise are the per-mailbox noise
	// distributions (µ per server per mailbox, §8.1).
	AddFriendNoise noise.Laplace
	DialingNoise   noise.Laplace

	randSrc io.Reader

	mu     sync.Mutex
	rounds map[roundKey]*roundState

	// stats
	processed uint64
	noiseSent uint64
}

// Config configures a mixnet server.
type Config struct {
	Name        string
	Position    int
	ChainLength int
	// Noise overrides; zero values fall back to the paper's parameters.
	AddFriendNoise *noise.Laplace
	DialingNoise   *noise.Laplace
	Rand           io.Reader
}

// New creates a mixnet server with a fresh long-term signing key.
func New(cfg Config) (*Server, error) {
	if cfg.Position < 0 || cfg.ChainLength <= 0 || cfg.Position >= cfg.ChainLength {
		return nil, errors.New("mixnet: invalid chain position")
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Reader
	}
	pub, priv, err := ed25519.GenerateKey(cfg.Rand)
	if err != nil {
		return nil, err
	}
	s := &Server{
		Name:           cfg.Name,
		Position:       cfg.Position,
		ChainLength:    cfg.ChainLength,
		signingPub:     pub,
		signingPriv:    priv,
		AddFriendNoise: noise.AddFriendNoise,
		DialingNoise:   noise.DialingNoise,
		randSrc:        cfg.Rand,
		rounds:         make(map[roundKey]*roundState),
	}
	if cfg.AddFriendNoise != nil {
		s.AddFriendNoise = *cfg.AddFriendNoise
	}
	if cfg.DialingNoise != nil {
		s.DialingNoise = *cfg.DialingNoise
	}
	return s, nil
}

// SigningKey returns the server's long-term ed25519 key (pinned in the
// client software package).
func (s *Server) SigningKey() ed25519.PublicKey { return s.signingPub }

// NewRound generates the server's per-round onion key pair and returns the
// signed announcement. Idempotent while the round is open.
func (s *Server) NewRound(service wire.Service, round uint32) (wire.MixerRoundKey, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := roundKey{service, round}
	st, ok := s.rounds[k]
	if ok && st.closed {
		return wire.MixerRoundKey{}, fmt.Errorf("mixnet: round %d (%s) closed", round, service)
	}
	if !ok {
		pub, priv, err := onionbox.GenerateKey(s.randSrc)
		if err != nil {
			return wire.MixerRoundKey{}, err
		}
		st = &roundState{priv: priv, pub: pub}
		s.rounds[k] = st
	}
	kb := st.pub.Bytes()
	return wire.MixerRoundKey{
		OnionKey: kb,
		Sig:      ed25519.Sign(s.signingPriv, wire.MixerKeyMessage(service, round, kb)),
	}, nil
}

// SetDownstreamKeys tells the server the round onion keys of the servers
// AFTER it in the chain, which it needs to wrap its own noise messages.
// The coordinator distributes these once all servers have announced keys.
func (s *Server) SetDownstreamKeys(service wire.Service, round uint32, keys [][]byte) error {
	if len(keys) != s.ChainLength-s.Position-1 {
		return fmt.Errorf("mixnet: expected %d downstream keys, got %d",
			s.ChainLength-s.Position-1, len(keys))
	}
	parsed := make([]*onionbox.PublicKey, len(keys))
	for i, kb := range keys {
		pk, err := onionbox.UnmarshalPublicKey(kb)
		if err != nil {
			return fmt.Errorf("mixnet: downstream key %d: %w", i, err)
		}
		parsed[i] = pk
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.rounds[roundKey{service, round}]
	if !ok || st.closed {
		return fmt.Errorf("mixnet: round %d (%s) not open", round, service)
	}
	st.downstream = parsed
	return nil
}

// CloseRound erases the round's onion private key (forward secrecy: the
// recorded ciphertexts of a closed round can never be decrypted again) and
// the server's memory of its permutation (which was never stored).
func (s *Server) CloseRound(service wire.Service, round uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.rounds[roundKey{service, round}]
	if !ok || st.closed {
		return
	}
	st.priv = nil // dropped; GC'd. X25519 keys have no explicit erase API.
	st.closed = true
}

// RoundOpen reports whether the round key still exists.
func (s *Server) RoundOpen(service wire.Service, round uint32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.rounds[roundKey{service, round}]
	return ok && !st.closed
}

// Mix peels one onion layer from every message in the batch, drops
// malformed messages, adds this server's noise, and shuffles. The returned
// batch is what the next server in the chain (or BuildMailboxes, at the
// last server) consumes.
//
// numMailboxes is the round's mailbox count K; noise is generated per
// mailbox. Fully processed messages at the last server are MixPayload
// encodings.
func (s *Server) Mix(service wire.Service, round uint32, numMailboxes uint32, batch [][]byte) ([][]byte, error) {
	s.mu.Lock()
	st, ok := s.rounds[roundKey{service, round}]
	if !ok || st.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("mixnet: round %d (%s) not open", round, service)
	}
	priv := st.priv
	downstream := st.downstream
	s.mu.Unlock()

	out := make([][]byte, 0, len(batch))
	for _, onion := range batch {
		msg, err := onionbox.Open(priv, onion)
		if err != nil {
			// Malformed or replayed onion: drop silently. Clients
			// that misbehave only hurt themselves.
			continue
		}
		out = append(out, msg)
	}

	// Noise: Laplace(µ, b) fresh fake requests per mailbox, plus the
	// cover mailbox, wrapped for the rest of the chain so that
	// downstream servers cannot tell noise from real traffic (§6).
	noiseMsgs, err := s.generateNoise(service, numMailboxes, downstream)
	if err != nil {
		return nil, err
	}
	out = append(out, noiseMsgs...)

	if err := shuffle(s.randSrc, out); err != nil {
		return nil, err
	}

	s.mu.Lock()
	s.processed += uint64(len(batch))
	s.noiseSent += uint64(len(noiseMsgs))
	s.mu.Unlock()
	return out, nil
}

// generateNoise creates the server's fake requests for a round: for every
// real mailbox, a Laplace-distributed number of plausible request bodies.
// Fake add-friend requests are random IBE-ciphertext-shaped blobs (a random
// G2 point plus random AEAD bytes — indistinguishable from real ciphertexts
// by ciphertext anonymity, §4.3); fake dial requests are random tokens.
func (s *Server) generateNoise(service wire.Service, numMailboxes uint32, downstream []*onionbox.PublicKey) ([][]byte, error) {
	dist := s.AddFriendNoise
	if service == wire.Dialing {
		dist = s.DialingNoise
	}
	var msgs [][]byte
	for mb := uint32(0); mb < numMailboxes; mb++ {
		n, err := dist.Sample(s.randSrc)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			body, err := s.noiseBody(service)
			if err != nil {
				return nil, err
			}
			payload := (&wire.MixPayload{Mailbox: mb, Body: body}).Marshal()
			wrapped, err := onionbox.WrapOnion(s.randSrc, downstream, payload)
			if err != nil {
				return nil, err
			}
			msgs = append(msgs, wrapped)
		}
	}
	return msgs, nil
}

func (s *Server) noiseBody(service wire.Service) ([]byte, error) {
	switch service {
	case wire.AddFriend:
		return ibe.RandomCiphertext(s.randSrc, wire.FriendRequestSize)
	case wire.Dialing:
		tok := make([]byte, keywheel.TokenSize)
		_, err := io.ReadFull(s.randSrc, tok)
		return tok, err
	default:
		return nil, fmt.Errorf("mixnet: unknown service %v", service)
	}
}

// Stats returns cumulative counts of (client messages processed, noise
// messages generated).
func (s *Server) Stats() (processed, noiseSent uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.processed, s.noiseSent
}

// NoiseMu returns the server's mean per-mailbox noise for a service; the
// coordinator uses it to size mailbox counts.
func (s *Server) NoiseMu(service wire.Service) float64 {
	if service == wire.Dialing {
		return s.DialingNoise.Mu
	}
	return s.AddFriendNoise.Mu
}
