package mixnet

import (
	"bytes"
	"crypto/rand"
	mathrand "math/rand"
	"sort"
	"testing"

	"alpenhorn/internal/bloom"
	"alpenhorn/internal/keywheel"
	"alpenhorn/internal/noise"
	"alpenhorn/internal/onionbox"
	"alpenhorn/internal/wire"
)

// sortedBatch returns a canonical ordering of a batch so two shuffled
// outputs can be compared as multisets.
func sortedBatch(batch [][]byte) [][]byte {
	out := make([][]byte, len(batch))
	copy(out, batch)
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i], out[j]) < 0 })
	return out
}

func sameMultiset(t *testing.T, a, b [][]byte) {
	t.Helper()
	a, b = sortedBatch(a), sortedBatch(b)
	if len(a) != len(b) {
		t.Fatalf("multiset sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("multisets differ at element %d", i)
		}
	}
}

// TestParallelDecryptMatchesSequential is the pipeline's determinism
// check: for the same batch (including malformed onions that must be
// dropped), the worker-pool decrypt stage opens exactly the multiset of
// messages the sequential path opens.
func TestParallelDecryptMatchesSequential(t *testing.T) {
	servers := newChain(t, 1, noNoise)
	hops := openRound(t, servers, wire.Dialing, 1)
	s := servers[0]

	const n = 500
	batch := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		tok := make([]byte, keywheel.TokenSize)
		tok[0], tok[1] = byte(i), byte(i>>8)
		onion := makeDialOnion(t, hops, uint32(i%3), tok)
		if i%17 == 0 {
			onion = make([]byte, len(onion)) // malformed: must be dropped
		}
		batch = append(batch, onion)
	}

	seq := decryptBatch(s.rounds[roundKey{wire.Dialing, 1}].priv, batch, 1)
	for _, workers := range []int{2, 3, 8} {
		par := decryptBatch(s.rounds[roundKey{wire.Dialing, 1}].priv, batch, workers)
		sameMultiset(t, seq, par)
		// Order must be preserved pre-shuffle, not just the multiset.
		for i := range seq {
			if !bytes.Equal(seq[i], par[i]) {
				t.Fatalf("workers=%d: order diverges at %d", workers, i)
			}
		}
	}
}

// TestMixParallelMatchesSequentialMultiset runs the same batch through the
// full Mix (decrypt + noise + shuffle) with worker-pool and sequential
// configurations and checks the opened-message multisets agree.
func TestMixParallelMatchesSequentialMultiset(t *testing.T) {
	for _, workers := range []int{1, 4} {
		nz := noise.Laplace{Mu: 0, B: 0}
		s, err := New(Config{
			Name: "m", Position: 0, ChainLength: 1,
			AddFriendNoise: &nz, DialingNoise: &nz,
			Parallelism: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		rk, err := s.NewRound(wire.Dialing, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SetDownstreamKeys(wire.Dialing, 1, nil); err != nil {
			t.Fatal(err)
		}
		pk, err := onionbox.UnmarshalPublicKey(rk.OnionKey)
		if err != nil {
			t.Fatal(err)
		}

		const n = 300
		var batch, want [][]byte
		for i := 0; i < n; i++ {
			tok := make([]byte, keywheel.TokenSize)
			tok[0], tok[1] = byte(i), byte(i>>8)
			batch = append(batch, makeDialOnion(t, []*onionbox.PublicKey{pk}, 0, tok))
			want = append(want, (&wire.MixPayload{Mailbox: 0, Body: tok}).Marshal())
		}
		out, err := s.Mix(wire.Dialing, 1, 1, batch)
		if err != nil {
			t.Fatal(err)
		}
		sameMultiset(t, want, out)
	}
}

// TestStreamMatchesMix feeds a batch in uneven chunks through the
// streaming intake and checks the result is the same multiset Mix
// produces for the concatenated batch.
func TestStreamMatchesMix(t *testing.T) {
	servers := newChain(t, 1, noNoise)
	hops := openRound(t, servers, wire.Dialing, 1)
	s := servers[0]

	const n = 257 // deliberately not a multiple of any chunk size
	var batch [][]byte
	for i := 0; i < n; i++ {
		tok := make([]byte, keywheel.TokenSize)
		tok[0], tok[1] = byte(i), byte(i>>8)
		batch = append(batch, makeDialOnion(t, hops, 0, tok))
	}

	mixed, err := s.Mix(wire.Dialing, 1, 1, batch)
	if err != nil {
		t.Fatal(err)
	}

	if err := s.StreamBegin(wire.Dialing, 1, 1); err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < n; {
		hi := lo + 1 + lo%97
		if hi > n {
			hi = n
		}
		if err := s.StreamChunk(wire.Dialing, 1, batch[lo:hi]); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}
	streamed, err := s.StreamEnd(wire.Dialing, 1)
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, mixed, streamed)
}

func TestStreamLifecycleErrors(t *testing.T) {
	servers := newChain(t, 1, noNoise)
	openRound(t, servers, wire.Dialing, 1)
	s := servers[0]

	if err := s.StreamChunk(wire.Dialing, 1, nil); err == nil {
		t.Fatal("StreamChunk without StreamBegin succeeded")
	}
	if _, err := s.StreamEnd(wire.Dialing, 1); err == nil {
		t.Fatal("StreamEnd without StreamBegin succeeded")
	}
	if err := s.StreamBegin(wire.Dialing, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.StreamBegin(wire.Dialing, 1, 1); err == nil {
		t.Fatal("double StreamBegin succeeded")
	}
	if _, err := s.StreamEnd(wire.Dialing, 1); err != nil {
		t.Fatal(err)
	}
	// Stream state is consumed: a fresh stream can start.
	if err := s.StreamBegin(wire.Dialing, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StreamEnd(wire.Dialing, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.StreamBegin(wire.Dialing, 99, 1); err == nil {
		t.Fatal("StreamBegin on unopened round succeeded")
	}
	// Abort discards the stream without closing the round, and is a
	// no-op when nothing is in flight.
	if err := s.StreamAbort(wire.Dialing, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.StreamBegin(wire.Dialing, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.StreamAbort(wire.Dialing, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StreamEnd(wire.Dialing, 1); err == nil {
		t.Fatal("StreamEnd succeeded after abort")
	}
	if !s.RoundOpen(wire.Dialing, 1) {
		t.Fatal("abort closed the round")
	}
}

// TestPrepareNoiseIsUsed checks that background-prepared noise is consumed
// by the next Mix (right count, no double generation) and that a mailbox
// count mismatch falls back to inline generation.
func TestPrepareNoiseIsUsed(t *testing.T) {
	nz := noise.Laplace{Mu: 5, B: 0}
	servers := newChain(t, 1, nz)
	openRound(t, servers, wire.Dialing, 1)
	s := servers[0]

	const numMailboxes = 4
	if err := s.PrepareNoise(wire.Dialing, 1, numMailboxes); err != nil {
		t.Fatal(err)
	}
	out, err := s.Mix(wire.Dialing, 1, numMailboxes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5*numMailboxes {
		t.Fatalf("got %d noise messages, want %d", len(out), 5*numMailboxes)
	}

	// Mismatched mailbox count: prepared noise for 2 mailboxes must not
	// leak into a Mix for 3.
	if err := s.PrepareNoise(wire.Dialing, 1, 2); err != nil {
		t.Fatal(err)
	}
	out, err = s.Mix(wire.Dialing, 1, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5*3 {
		t.Fatalf("mismatched prepare: got %d noise messages, want %d", len(out), 15)
	}
}

func TestPrepareNoiseRequiresDownstreamKeys(t *testing.T) {
	servers := newChain(t, 2, noNoise)
	// Announce keys but do NOT distribute downstream keys.
	for _, s := range servers {
		if _, err := s.NewRound(wire.Dialing, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := servers[0].PrepareNoise(wire.Dialing, 1, 1); err == nil {
		t.Fatal("PrepareNoise before SetDownstreamKeys succeeded for non-last server")
	}
	// The last server has no downstream hops and needs no keys.
	if err := servers[1].SetDownstreamKeys(wire.Dialing, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := servers[1].PrepareNoise(wire.Dialing, 1, 1); err != nil {
		t.Fatal(err)
	}
}

// TestChainPipelinedMatchesChain routes distinct tokens to mailboxes
// through both the sequential chain and the streaming pipeline and checks
// both deliver exactly the same mailbox contents.
func TestChainPipelinedMatchesChain(t *testing.T) {
	nz := noise.Laplace{Mu: 2, B: 0}
	servers := newChain(t, 3, nz)
	hops := openRound(t, servers, wire.Dialing, 1)

	const n = 200
	const numMailboxes = 4
	var batch [][]byte
	toks := make([][]byte, n)
	for i := 0; i < n; i++ {
		tok := make([]byte, keywheel.TokenSize)
		tok[0], tok[1], tok[2] = byte(i), byte(i>>8), 0xAB
		toks[i] = tok
		batch = append(batch, makeDialOnion(t, hops, uint32(i%numMailboxes), tok))
	}

	pipelined, err := ChainPipelined(servers, wire.Dialing, 1, numMailboxes, batch, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(pipelined) != numMailboxes {
		t.Fatalf("pipelined produced %d mailboxes, want %d", len(pipelined), numMailboxes)
	}
	for i, tok := range toks {
		f, err := bloom.Unmarshal(pipelined[uint32(i%numMailboxes)])
		if err != nil {
			t.Fatal(err)
		}
		if !f.Test(tok) {
			t.Fatalf("token %d missing from its pipelined mailbox", i)
		}
	}

	// The same round can also run through the sequential chain: token
	// delivery must be identical (noise differs per run, so compare
	// membership rather than bytes).
	sequential, err := Chain(servers, wire.Dialing, 1, numMailboxes, batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, tok := range toks {
		f, err := bloom.Unmarshal(sequential[uint32(i%numMailboxes)])
		if err != nil {
			t.Fatal(err)
		}
		if !f.Test(tok) {
			t.Fatalf("token %d missing from its sequential mailbox", i)
		}
	}
}

// TestBuildMailboxesParallelMatchesSequential checks that sharded mailbox
// construction is byte-identical to the sequential path for both services.
func TestBuildMailboxesParallelMatchesSequential(t *testing.T) {
	const numMailboxes = 7
	for _, service := range []wire.Service{wire.AddFriend, wire.Dialing} {
		bodyLen := wire.PayloadSize(service) - 4
		var batch [][]byte
		for i := 0; i < 400; i++ {
			body := make([]byte, bodyLen)
			rand.Read(body)
			mb := uint32(i % (numMailboxes + 2)) // some out of range
			if i%31 == 0 {
				mb = wire.CoverMailbox
			}
			batch = append(batch, (&wire.MixPayload{Mailbox: mb, Body: body}).Marshal())
		}
		batch = append(batch, []byte("malformed"))

		seq, err := BuildMailboxesParallel(service, numMailboxes, batch, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 5, 16} {
			par, err := BuildMailboxesParallel(service, numMailboxes, batch, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(par) != len(seq) {
				t.Fatalf("service %v workers=%d: %d mailboxes, want %d", service, workers, len(par), len(seq))
			}
			for mb := uint32(0); mb < numMailboxes; mb++ {
				if !bytes.Equal(seq[mb], par[mb]) {
					t.Fatalf("service %v workers=%d: mailbox %d differs from sequential build", service, workers, mb)
				}
			}
		}
	}
}

// nonThreadSafeReader is a deterministic PRNG with no internal locking; the
// race detector fails the test if the server reads it from two goroutines
// without the lockedReader wrapper.
type nonThreadSafeReader struct {
	rng *mathrand.Rand
}

func (r *nonThreadSafeReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(r.rng.Intn(256))
	}
	return len(p), nil
}

// TestCustomRandSourceIsSerialized exercises parallel decryption, shuffle,
// and concurrent noise generation against a non-thread-safe rand source to
// verify the Config.Rand locking contract.
func TestCustomRandSourceIsSerialized(t *testing.T) {
	nz := noise.Laplace{Mu: 3, B: 1}
	s, err := New(Config{
		Name: "m", Position: 0, ChainLength: 1,
		AddFriendNoise: &nz, DialingNoise: &nz,
		Rand:        &nonThreadSafeReader{rng: mathrand.New(mathrand.NewSource(42))},
		Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rk, err := s.NewRound(wire.Dialing, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetDownstreamKeys(wire.Dialing, 1, nil); err != nil {
		t.Fatal(err)
	}
	pk, err := onionbox.UnmarshalPublicKey(rk.OnionKey)
	if err != nil {
		t.Fatal(err)
	}
	var batch [][]byte
	for i := 0; i < 200; i++ {
		tok := make([]byte, keywheel.TokenSize)
		tok[0] = byte(i)
		batch = append(batch, makeDialOnion(t, []*onionbox.PublicKey{pk}, 0, tok))
	}
	// Noise generation runs in the background while Mix decrypts: both
	// read the shared rand source.
	if err := s.PrepareNoise(wire.Dialing, 1, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Mix(wire.Dialing, 1, 8, batch); err != nil {
		t.Fatal(err)
	}
}
