package vuvuzela_test

import (
	"testing"

	"alpenhorn/internal/core"
	"alpenhorn/internal/sim"
	"alpenhorn/internal/vuvuzela"
)

// TestVuvuzelaIntegration reproduces §8.5 end to end: the conversation
// protocol's key material comes exclusively from an Alpenhorn Call — no
// out-of-band key distribution anywhere in the flow.
func TestVuvuzelaIntegration(t *testing.T) {
	net, err := sim.NewNetwork(sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ha := &sim.Handler{AcceptAll: true}
	hb := &sim.Handler{AcceptAll: true}
	alice, err := net.NewClient("alice@example.org", ha)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := net.NewClient("bob@example.org", hb)
	if err != nil {
		t.Fatal(err)
	}

	// Bootstrap: Alpenhorn add-friend + dialing.
	if err := net.Befriend(alice, bob, 1); err != nil {
		t.Fatal(err)
	}
	if err := alice.Call(bob.Email(), 0); err != nil {
		t.Fatal(err)
	}
	clients := []*core.Client{alice, bob}
	for r := uint32(1); r <= 6; r++ {
		if err := net.RunDialRound(r, clients); err != nil {
			t.Fatal(err)
		}
		if len(hb.IncomingCalls()) > 0 {
			break
		}
	}
	out := ha.OutgoingCalls()
	in := hb.IncomingCalls()
	if len(out) != 1 || len(in) != 1 {
		t.Fatal("alpenhorn call did not complete")
	}

	// Conversation: the §8.5 integration point is exactly this line —
	// Vuvuzela's protocol consumes the shared secret from Call.
	ex := vuvuzela.NewExchange()
	aliceConv := vuvuzela.NewConversation(out[0].SessionKey, ex, true)
	bobConv := vuvuzela.NewConversation(in[0].SessionKey, ex, false)

	if err := aliceConv.Send(1, []byte("bootstrapped with zero metadata leaked")); err != nil {
		t.Fatal(err)
	}
	if err := bobConv.Send(1, []byte("ack")); err != nil {
		t.Fatal(err)
	}
	ex.Exchange(1)
	msg, ok := bobConv.Receive(1)
	if !ok || string(msg) != "bootstrapped with zero metadata leaked" {
		t.Fatalf("bob received %q, ok=%v", msg, ok)
	}
	msg, ok = aliceConv.Receive(1)
	if !ok || string(msg) != "ack" {
		t.Fatalf("alice received %q, ok=%v", msg, ok)
	}
}
