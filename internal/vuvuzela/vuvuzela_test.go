package vuvuzela

import (
	"bytes"
	"crypto/rand"
	"testing"
)

func pairedConversations(t *testing.T) (*Conversation, *Conversation, *Exchange) {
	t.Helper()
	var key [32]byte
	if _, err := rand.Read(key[:]); err != nil {
		t.Fatal(err)
	}
	ex := NewExchange()
	alice := NewConversation(key, ex, true) // caller
	bob := NewConversation(key, ex, false)  // callee
	return alice, bob, ex
}

func TestMessageExchange(t *testing.T) {
	alice, bob, ex := pairedConversations(t)

	if err := alice.Send(1, []byte("hi bob!")); err != nil {
		t.Fatal(err)
	}
	if err := bob.Send(1, []byte("hello alice")); err != nil {
		t.Fatal(err)
	}
	ex.Exchange(1)

	got, ok := alice.Receive(1)
	if !ok || !bytes.Equal(got, []byte("hello alice")) {
		t.Fatalf("alice received %q, ok=%v", got, ok)
	}
	got, ok = bob.Receive(1)
	if !ok || !bytes.Equal(got, []byte("hi bob!")) {
		t.Fatalf("bob received %q, ok=%v", got, ok)
	}
}

func TestMultiRoundConversation(t *testing.T) {
	alice, bob, ex := pairedConversations(t)
	script := []struct {
		fromAlice, fromBob string
	}{
		{"round one from alice", "round one from bob"},
		{"second", "reply"},
		{"third round message", "final answer"},
	}
	for i, msgs := range script {
		round := uint32(i + 1)
		if err := alice.Send(round, []byte(msgs.fromAlice)); err != nil {
			t.Fatal(err)
		}
		if err := bob.Send(round, []byte(msgs.fromBob)); err != nil {
			t.Fatal(err)
		}
		ex.Exchange(round)
		a, ok := alice.Receive(round)
		if !ok || string(a) != msgs.fromBob {
			t.Fatalf("round %d: alice got %q", round, a)
		}
		b, ok := bob.Receive(round)
		if !ok || string(b) != msgs.fromAlice {
			t.Fatalf("round %d: bob got %q", round, b)
		}
	}
}

func TestSilentPeer(t *testing.T) {
	alice, _, ex := pairedConversations(t)
	if err := alice.Send(1, []byte("anyone there?")); err != nil {
		t.Fatal(err)
	}
	ex.Exchange(1)
	if msg, ok := alice.Receive(1); ok {
		t.Fatalf("received %q from a silent peer", msg)
	}
}

func TestWrongKeyCannotRead(t *testing.T) {
	alice, bob, ex := pairedConversations(t)
	if err := alice.Send(1, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	if err := bob.Send(1, []byte("secret2")); err != nil {
		t.Fatal(err)
	}
	ex.Exchange(1)

	var wrongKey [32]byte
	eve := NewConversation(wrongKey, ex, false)
	if msg, ok := eve.Receive(1); ok {
		t.Fatalf("eavesdropper decrypted %q", msg)
	}
}

func TestMessageSizeLimit(t *testing.T) {
	alice, _, _ := pairedConversations(t)
	if err := alice.Send(1, make([]byte, MessageSize+1)); err == nil {
		t.Fatal("oversized message accepted")
	}
	if err := alice.Send(1, make([]byte, MessageSize)); err != nil {
		t.Fatal(err)
	}
}

func TestCoverTrafficIndistinguishableAtServer(t *testing.T) {
	_, _, ex := pairedConversations(t)
	// Cover deposits must be accepted like real ones.
	for i := 0; i < 10; i++ {
		if err := CoverDeposit(ex, 1); err != nil {
			t.Fatal(err)
		}
	}
	ex.Exchange(1)
}

func TestDeadDropCollisionRejected(t *testing.T) {
	alice, bob, _ := pairedConversations(t)
	// Three deposits at the same drop: the third must be rejected.
	if err := alice.Send(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := bob.Send(1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	var key2 [32]byte
	copy(key2[:], alice.key[:])
	mallory := NewConversation(key2, alice.exchange, true)
	if err := mallory.Send(1, []byte("c")); err == nil {
		t.Fatal("third deposit at a full dead drop accepted")
	}
}

func TestLateDepositRejected(t *testing.T) {
	alice, _, ex := pairedConversations(t)
	ex.Exchange(1)
	if err := alice.Send(1, []byte("too late")); err == nil {
		t.Fatal("deposit after exchange accepted")
	}
}
