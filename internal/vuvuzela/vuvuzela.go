// Package vuvuzela implements a minimal dead-drop conversation protocol in
// the spirit of Vuvuzela (van den Hooff et al., SOSP 2015), the private
// messaging system that Alpenhorn was integrated with in §8.5 of the paper.
//
// Vuvuzela's conversation protocol assumes the two parties already share a
// secret — which is exactly what Alpenhorn's Call provides. Each round,
// both parties derive the same pseudorandom dead-drop ID from the session
// key, deposit an encrypted message at that dead drop, and the exchange
// server swaps the two messages. Idle users deposit cover messages at
// random dead drops.
//
// This package reproduces the integration, not all of Vuvuzela: the
// exchange runs on one untrusted server without its own mixnet/noise
// chain (Alpenhorn is the system under evaluation here; the conversation
// layer exists to demonstrate the ~200-line integration the paper reports).
package vuvuzela

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// MessageSize is the fixed plaintext size of a conversation message;
// shorter messages are padded, longer ones rejected. Fixed sizes keep the
// dead-drop exchange free of length metadata.
const MessageSize = 240

// sealedSize is MessageSize plus AEAD overhead.
const sealedSize = MessageSize + 16 + 12

// DeadDropSize is the size of a dead-drop identifier.
const DeadDropSize = 16

// Exchange is the untrusted dead-drop server. It is safe for concurrent
// use.
type Exchange struct {
	mu     sync.Mutex
	rounds map[uint32]map[[DeadDropSize]byte][][]byte
	done   map[uint32]bool
}

// NewExchange creates a dead-drop server.
func NewExchange() *Exchange {
	return &Exchange{
		rounds: make(map[uint32]map[[DeadDropSize]byte][][]byte),
		done:   make(map[uint32]bool),
	}
}

// Deposit places a sealed message at a dead drop for a round.
func (e *Exchange) Deposit(round uint32, drop [DeadDropSize]byte, sealed []byte) error {
	if len(sealed) != sealedSize {
		return fmt.Errorf("vuvuzela: sealed message is %d bytes, want %d", len(sealed), sealedSize)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done[round] {
		return fmt.Errorf("vuvuzela: round %d already exchanged", round)
	}
	drops, ok := e.rounds[round]
	if !ok {
		drops = make(map[[DeadDropSize]byte][][]byte)
		e.rounds[round] = drops
	}
	if len(drops[drop]) >= 2 {
		return errors.New("vuvuzela: dead drop full")
	}
	owned := make([]byte, len(sealed))
	copy(owned, sealed)
	drops[drop] = append(drops[drop], owned)
	return nil
}

// Exchange swaps the messages at every dead drop with exactly two deposits
// and closes the round. Single deposits are returned to their depositor
// unchanged (the peer was silent), mirroring Vuvuzela's semantics.
func (e *Exchange) Exchange(round uint32) {
	e.mu.Lock()
	defer e.mu.Unlock()
	drops := e.rounds[round]
	for id, msgs := range drops {
		if len(msgs) == 2 {
			msgs[0], msgs[1] = msgs[1], msgs[0]
			drops[id] = msgs
		}
	}
	e.done[round] = true
}

// Retrieve fetches the idx-th deposit result from a dead drop after the
// exchange (idx is the order of this client's Deposit: 0 for first).
func (e *Exchange) Retrieve(round uint32, drop [DeadDropSize]byte, idx int) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.done[round] {
		return nil, fmt.Errorf("vuvuzela: round %d not exchanged yet", round)
	}
	msgs := e.rounds[round][drop]
	if idx < 0 || idx >= len(msgs) {
		return nil, errors.New("vuvuzela: no message at dead drop")
	}
	return msgs[idx], nil
}

// Conversation is one side of a two-party conversation keyed by an
// Alpenhorn session key. The integration point with Alpenhorn is exactly
// the paper's: "we had to tweak the Vuvuzela conversation protocol, since
// it expected a public key as input, rather than a shared secret (as
// provided by Call)".
type Conversation struct {
	key      [32]byte
	exchange *Exchange
	// first is true for the conversation initiator (the Alpenhorn
	// caller); it breaks the tie of who deposited first at a drop.
	first bool
	// depositIdx remembers this side's deposit order per round.
	mu         sync.Mutex
	depositIdx map[uint32]int
}

// NewConversation creates a conversation endpoint over an exchange server.
// The caller (who initiated the Alpenhorn call) passes initiator=true.
func NewConversation(sessionKey [32]byte, ex *Exchange, initiator bool) *Conversation {
	return &Conversation{
		key:        sessionKey,
		exchange:   ex,
		first:      initiator,
		depositIdx: make(map[uint32]int),
	}
}

// deadDrop derives the round's dead-drop ID from the session key.
func (c *Conversation) deadDrop(round uint32) [DeadDropSize]byte {
	mac := hmac.New(sha256.New, c.key[:])
	mac.Write([]byte("vuvuzela/dead-drop"))
	var rb [4]byte
	binary.BigEndian.PutUint32(rb[:], round)
	mac.Write(rb[:])
	var out [DeadDropSize]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// messageKey derives a per-round, per-direction AEAD key. Directions are
// keyed by who SENT the message so that the two parties' messages in one
// round never share a key+nonce.
func (c *Conversation) messageKey(round uint32, sentByInitiator bool) []byte {
	mac := hmac.New(sha256.New, c.key[:])
	mac.Write([]byte("vuvuzela/message-key"))
	var rb [5]byte
	binary.BigEndian.PutUint32(rb[:4], round)
	if sentByInitiator {
		rb[4] = 1
	}
	mac.Write(rb[:])
	return mac.Sum(nil)
}

func sealWith(key []byte, plaintext []byte) []byte {
	block, err := aes.NewCipher(key)
	if err != nil {
		panic("vuvuzela: " + err.Error())
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		panic("vuvuzela: " + err.Error())
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		panic("vuvuzela: " + err.Error())
	}
	return append(nonce, gcm.Seal(nil, nonce, plaintext, nil)...)
}

func openWith(key []byte, sealed []byte) ([]byte, bool) {
	block, err := aes.NewCipher(key)
	if err != nil {
		panic("vuvuzela: " + err.Error())
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		panic("vuvuzela: " + err.Error())
	}
	if len(sealed) < gcm.NonceSize() {
		return nil, false
	}
	msg, err := gcm.Open(nil, sealed[:gcm.NonceSize()], sealed[gcm.NonceSize():], nil)
	if err != nil {
		return nil, false
	}
	return msg, true
}

// Send deposits a message for the peer in the given round.
func (c *Conversation) Send(round uint32, msg []byte) error {
	if len(msg) > MessageSize {
		return fmt.Errorf("vuvuzela: message longer than %d bytes", MessageSize)
	}
	padded := make([]byte, MessageSize)
	copy(padded, msg)
	sealed := sealWith(c.messageKey(round, c.first), padded)
	drop := c.deadDrop(round)

	c.mu.Lock()
	defer c.mu.Unlock()
	// Our deposit index is what Retrieve will read AFTER the swap.
	idx := 0
	if err := c.exchange.Deposit(round, drop, sealed); err != nil {
		return err
	}
	// We don't know our order; try both at retrieve time. Record that we
	// deposited this round.
	c.depositIdx[round] = idx
	return nil
}

// Receive retrieves and decrypts the peer's message for a round (after the
// server ran the exchange). It returns ok=false if the peer sent nothing.
func (c *Conversation) Receive(round uint32) ([]byte, bool) {
	drop := c.deadDrop(round)
	peerKey := c.messageKey(round, !c.first)
	// Deposit order at the drop is unknown; try both slots and accept
	// the one sealed with the PEER's direction key.
	for idx := 0; idx < 2; idx++ {
		sealed, err := c.exchange.Retrieve(round, drop, idx)
		if err != nil {
			continue
		}
		if msg, ok := openWith(peerKey, sealed); ok {
			return trimPadding(msg), true
		}
	}
	return nil, false
}

// trimPadding removes trailing zero padding.
func trimPadding(msg []byte) []byte {
	end := len(msg)
	for end > 0 && msg[end-1] == 0 {
		end--
	}
	return msg[:end]
}

// CoverDeposit sends an indistinguishable cover message to a random dead
// drop; idle clients call this every round.
func CoverDeposit(ex *Exchange, round uint32) error {
	var drop [DeadDropSize]byte
	if _, err := io.ReadFull(rand.Reader, drop[:]); err != nil {
		return err
	}
	sealed := make([]byte, sealedSize)
	if _, err := io.ReadFull(rand.Reader, sealed); err != nil {
		return err
	}
	return ex.Deposit(round, drop, sealed)
}
