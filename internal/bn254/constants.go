// Package bn254 implements the BN254 pairing-friendly elliptic curve
// (also known as alt_bn128) with a generic Tate pairing.
//
// Alpenhorn's paper prototype uses the BN-256 curve with an AMD64 assembly
// implementation [Naehrig et al., LATINCRYPT 2010]. This package is the
// reproduction substitute: the same Barreto-Naehrig curve family at the
// 128-bit design security level, implemented from scratch so that the
// repository has no dependencies outside the Go standard library.
//
// The package provides the three pairing groups:
//
//   - G1: points on E(Fp) : y² = x³ + 3, order Order.
//   - G2: points on the sextic twist E'(Fp2) : y² = x³ + 3/ξ, order Order.
//   - GT: order-Order subgroup of Fp12*, the pairing target group.
//
// and the bilinear map Pair: G1 × G2 → GT, the reduced Tate pairing
// f_{r,P}(ψ(Q))^((p¹²−1)/r) with denominator elimination.
//
// # Backends
//
// Base-field arithmetic runs on fixed 4×64-bit-limb Montgomery elements
// (type fe): stack-allocated values, no per-operation heap allocation and
// no big.Int Mod calls. The towers Fp2/Fp6/Fp12 (fe2/fe6/fe12), the curve
// groups, and the Miller loop (Jacobian coordinates, inversion-free line
// construction) are all built on fe. Montgomery form is strictly internal:
// values convert at the marshaling boundary (feFromBig/feSetBytes on the
// way in, feToBig/feBytes on the way out), so every wire encoding is
// byte-identical to the original big.Int implementation.
//
// The original math/big implementation is retained in the ref_* files and
// fp*.go (types refG1/refG2/refGT, helpers fpAdd/fpMul/...) as an
// unexported reference backend. Differential tests cross-check the limb
// backend against it — field ops, group ops, hash-to-curve, and full
// pairings produce bit-identical results — and a relative benchmark test
// pins the limb backend's speedup so it cannot silently rot.
//
// # Fixed-base comb tables
//
// ScalarBaseMult on both groups uses Lim-Lee comb tables (comb.go): the
// 255-bit scalar is read as an 8×32 bit matrix whose j-th row is weighted
// by 2^(32j), and a 255-entry affine table holds every nonzero combination
// sum Σ 2^(32j)·G, so one multiplication costs 31 doublings plus at most
// 32 mixed additions (vs ~254 doublings + ~127 additions for the generic
// ladder). Tables build lazily on first use (sync.Once) with two
// batch-affine passes; no table entry can be the identity because every
// combination scalar is a nonzero value < 2^225 < Order. Results are
// bit-identical to ScalarMult(Generator(), k), pinned differentially on
// random and edge scalars (0, 1, r−1, r).
//
// # Batched pairings and the batch-inversion invariant
//
// PrecomputedG1.PairBatch evaluates many pairings that share a fixed G1
// argument (the mailbox-scan shape: one identity key, thousands of
// ciphertext G2 points). Per batch it pays ONE Fp12 inversion for the
// final exponentiation's easy part, shared across elements via
// Montgomery's inversion trick; the hard part runs per element through
// the Devegili-Scott decomposition (three cyclotomic exponentiations by
// the curve parameter u plus Frobenius maps) rather than a full-width
// window exponentiation. G2 inputs are subgroup-checked with the twist
// endomorphism ψ (ψ(Q) = [6u²]Q on the right subgroup), a ~127-bit ladder
// instead of a 254-bit order multiplication. The batch-inversion
// INVARIANT, relied on by every prefix-product chain in this package
// (batch.go, pairbatch.go): invalid, infinity, or otherwise skipped slots
// are masked out of the chain BEFORE it runs, never patched afterwards —
// a zero or garbage element that entered the running product would
// corrupt every later element's inverse, letting one malformed ciphertext
// poison its batch neighbors. Fuzzing pins that a genuine element always
// decrypts identically no matter what surrounds it.
//
// # Optimal-ate pairing (AtePair)
//
// Alongside the Tate pairing the package provides the optimal ate pairing
// (ate.go): the Miller loop runs over the G2 argument on the twist for
// |6u+2| ≈ 2⁶⁵ iterations in non-adjacent form — roughly a quarter of the
// Tate loop's Order.BitLen() ≈ 254 — followed by two Frobenius correction
// steps through the twist endomorphism ψ, then the same final
// exponentiation. Both maps are nondegenerate bilinear pairings on
// G1 × G2 and their reduced values differ by a FIXED exponent: e_ate =
// e_tate^κ with κ constant across all inputs. That relation is the
// differential oracle — the Tate path is retained untouched, an init-time
// check pins AtePair's consistency on generator multiples before first
// use, and tests cross-check bilinearity of both loops on random points.
// AtePrecomputedG1.PairBatch mirrors the Tate batch pipeline (same
// 4-phase structure, same shared-inversion invariant, same PairScratch)
// over the shorter loop; v2 decodes subgroup-check via the
// Galbraith–Scott ψ-ladder identity rather than the [6u²] ladder.
//
// # Boundary-conversion rule
//
// Montgomery form never crosses the package boundary: values enter the
// Montgomery domain only in unmarshal/from-big conversions and leave it
// only in marshal/to-big conversions. Batching and comb tables change
// scheduling, never representation, so every wire encoding (G1/G2/GT
// points, keys, ciphertexts, signatures) remains byte-identical to the
// big.Int reference.
//
// # Pairing-version negotiation rule
//
// The two pairings are deliberately NOT interchangeable: deriving keys
// from e_ate where a peer derives from e_tate yields unrelated secrets.
// Protocol layers therefore treat the pairing as a versioned capability
// (wire.RoundSettings.PairingVersion): v1 = Tate, v2 = optimal ate,
// negotiated per round, all participants of a round on one version, with
// transparent degradation to v1 when any participant lacks v2. Like the
// boundary-conversion rule this is representation-stable: a v1 round's
// wire bytes are byte-identical to pre-capability encodings, and v2
// changes which pairing keys a ciphertext — never any encoding.
//
// All operations on exported types are constant-structure but NOT
// constant-time; this substrate targets protocol research, not production
// deployment against local side-channel attackers.
package bn254

import "math/big"

// bigFromBase10 panics if s is not a valid base-10 integer. It is used only
// for package constants.
func bigFromBase10(s string) *big.Int {
	n, ok := new(big.Int).SetString(s, 10)
	if !ok {
		panic("bn254: invalid constant " + s)
	}
	return n
}

var (
	// u is the BN parameter: p and Order are polynomials in u.
	u = bigFromBase10("4965661367192848881")

	// P is the prime order of the base field Fp.
	// P = 36u⁴ + 36u³ + 24u² + 6u + 1.
	P = bigFromBase10("21888242871839275222246405745257275088696311157297823662689037894645226208583")

	// Order is the prime order of G1, G2, and GT.
	// Order = 36u⁴ + 36u³ + 18u² + 6u + 1.
	Order = bigFromBase10("21888242871839275222246405745257275088548364400416034343698204186575808495617")

	// curveB is the constant term in the curve equation y² = x³ + curveB.
	curveB = big.NewInt(3)
)

// Affine coordinates of the conventional G2 generator on the sextic twist
// (the alt_bn128 generator used by EIP-197), shared by the limb and
// reference backends: x = xA + xB·i, y = yA + yB·i.
var (
	g2GenXA = bigFromBase10("10857046999023057135944570762232829481370756359578518086990519993285655852781")
	g2GenXB = bigFromBase10("11559732032986387107991004021392285783925812861821192530917403151452391805634")
	g2GenYA = bigFromBase10("8495653923123431417604973247489272438418190587263600148770280649306958101930")
	g2GenYB = bigFromBase10("4082367875863433681332203403145435568316851327593401208105741076214120093531")
)

// Hoisted exponents shared by both backends (computed once instead of per
// call; fpSqrt used to rebuild (P+1)/4 on every invocation).
var (
	// pSqrtExp = (P+1)/4: square roots mod P (P ≡ 3 mod 4).
	pSqrtExp = new(big.Int).Rsh(new(big.Int).Add(P, big.NewInt(1)), 2)
	// pMinus2 = P−2: Fermat inversion exponent in Fp.
	pMinus2 = new(big.Int).Sub(P, big.NewInt(2))
)

// Rejection-sampling parameters for uniform draws from [0, P) and
// [0, Order), hoisted out of the per-call path. Both moduli are 254 bits,
// so a draw reads 32 bytes and masks the top byte to 6 bits — the exact
// consumption pattern of crypto/rand.Int, preserving deterministic test
// streams.
const (
	randByteLen = 32
	randTopMask = 0x3f
)

// tateExp is the final-exponentiation exponent (P¹² − 1) / Order, used by
// the reference backend's generic final exponentiation.
var tateExp *big.Int

func init() {
	p12 := new(big.Int).Exp(P, big.NewInt(12), nil)
	p12.Sub(p12, big.NewInt(1))
	rem := new(big.Int)
	tateExp, rem = new(big.Int).QuoRem(p12, Order, rem)
	if rem.Sign() != 0 {
		panic("bn254: Order does not divide p^12 - 1")
	}
}

// Montgomery-domain constants for the limb backend, derived from P at
// startup (self-deriving keeps them auditable — there are no magic limb
// literals to trust).
var feP, feNP, feR2, feOne = feDeriveConstants()

// feDeriveConstants computes the modulus limbs, −P⁻¹ mod 2⁶⁴, R² mod P,
// and R mod P (the Montgomery image of 1) from the big.Int modulus.
func feDeriveConstants() (p fe, np uint64, r2, one fe) {
	toLimbs := func(x *big.Int) (out fe) {
		if x.BitLen() > 256 {
			panic("bn254: constant exceeds four limbs")
		}
		feRawFromBig(&out, x)
		return
	}
	p = toLimbs(P)
	// Newton iteration for P⁻¹ mod 2⁶⁴; five steps double the precision
	// past 64 bits.
	inv := uint64(1)
	for i := 0; i < 6; i++ {
		inv *= 2 - p[0]*inv
	}
	np = -inv
	r := new(big.Int).Lsh(big.NewInt(1), 256)
	one = toLimbs(new(big.Int).Mod(r, P))
	r2big := new(big.Int).Lsh(big.NewInt(1), 512)
	r2 = toLimbs(r2big.Mod(r2big, P))
	return
}

// feCurveB is curveB (= 3) in Montgomery form.
var feCurveB = feMontSmall(3)

// feMontSmall converts a small non-negative integer into Montgomery form.
func feMontSmall(v int64) fe {
	var z fe
	feFromBig(&z, big.NewInt(v))
	return z
}
