// Package bn254 implements the BN254 pairing-friendly elliptic curve
// (also known as alt_bn128) with a generic Tate pairing.
//
// Alpenhorn's paper prototype uses the BN-256 curve with an AMD64 assembly
// implementation [Naehrig et al., LATINCRYPT 2010]. This package is the
// reproduction substitute: the same Barreto-Naehrig curve family at the
// 128-bit design security level, implemented from scratch on math/big so
// that the repository has no dependencies outside the Go standard library.
//
// The package provides the three pairing groups:
//
//   - G1: points on E(Fp) : y² = x³ + 3, order Order.
//   - G2: points on the sextic twist E'(Fp2) : y² = x³ + 3/ξ, order Order.
//   - GT: order-Order subgroup of Fp12*, the pairing target group.
//
// and the bilinear map Pair: G1 × G2 → GT, implemented as the reduced Tate
// pairing f_{r,P}(ψ(Q))^((p¹²−1)/r) with a generic Miller loop that tracks
// numerator and denominator separately (no denominator elimination, no
// hardcoded Frobenius constants), trading speed for easily-audited
// correctness. Bilinearity and group-law properties are exercised by
// property-based tests.
//
// All operations on exported types are constant-structure but NOT
// constant-time; this substrate targets protocol research, not production
// deployment against local side-channel attackers.
package bn254

import "math/big"

// bigFromBase10 panics if s is not a valid base-10 integer. It is used only
// for package constants.
func bigFromBase10(s string) *big.Int {
	n, ok := new(big.Int).SetString(s, 10)
	if !ok {
		panic("bn254: invalid constant " + s)
	}
	return n
}

var (
	// u is the BN parameter: p and Order are polynomials in u.
	u = bigFromBase10("4965661367192848881")

	// P is the prime order of the base field Fp.
	// P = 36u⁴ + 36u³ + 24u² + 6u + 1.
	P = bigFromBase10("21888242871839275222246405745257275088696311157297823662689037894645226208583")

	// Order is the prime order of G1, G2, and GT.
	// Order = 36u⁴ + 36u³ + 18u² + 6u + 1.
	Order = bigFromBase10("21888242871839275222246405745257275088548364400416034343698204186575808495617")

	// curveB is the constant term in the curve equation y² = x³ + curveB.
	curveB = big.NewInt(3)
)

// tateExp is the final-exponentiation exponent (P¹² − 1) / Order, computed
// once at package init. Using the full exponent (rather than the usual
// easy/hard-part split that needs Frobenius constants) keeps the pairing
// generic and auditable.
var tateExp *big.Int

func init() {
	p12 := new(big.Int).Exp(P, big.NewInt(12), nil)
	p12.Sub(p12, big.NewInt(1))
	rem := new(big.Int)
	tateExp, rem = new(big.Int).QuoRem(p12, Order, rem)
	if rem.Sign() != 0 {
		panic("bn254: Order does not divide p^12 - 1")
	}
}
