package bn254

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"
	"time"
)

func randFe12(t testing.TB) fe12 {
	t.Helper()
	var z fe12
	for _, c := range []*fe2{&z.c0.c0, &z.c0.c1, &z.c0.c2, &z.c1.c0, &z.c1.c1, &z.c1.c2} {
		_, c.c0 = randFe(t)
		_, c.c1 = randFe(t)
	}
	return z
}

// randCyclotomic maps a random Fp12 element into the cyclotomic subgroup
// the same way the final exponentiation does: a ↦ (conj(a)·a⁻¹)^(p²+1).
func randCyclotomic(t testing.TB) fe12 {
	t.Helper()
	a := randFe12(t)
	var inv, g, out fe12
	inv.Invert(&a)
	g.Conjugate(&a)
	g.Mul(&g, &inv)
	out.FrobeniusP2(&g)
	out.Mul(&out, &g)
	return out
}

// TestFrobeniusDifferential pins the derived γ₁ constants: the coefficient-
// wise Frobenius map must equal a generic exponentiation by p.
func TestFrobeniusDifferential(t *testing.T) {
	for i := 0; i < 5; i++ {
		a := randFe12(t)
		var viaMap, viaExp fe12
		viaMap.Frobenius(&a)
		viaExp.Exp(&a, P)
		if !viaMap.Equal(&viaExp) {
			t.Fatalf("Frobenius map disagrees with a^p on trial %d", i)
		}
	}
}

// TestFinalExpHardDecompDifferential pins the Devegili–Scott decomposition
// against the generic windowed exponentiation by (p⁴−p²+1)/r on random
// cyclotomic elements — the two hard-part implementations must agree
// exactly.
func TestFinalExpHardDecompDifferential(t *testing.T) {
	for i := 0; i < 8; i++ {
		c := randCyclotomic(t)
		var want, got fe12
		want.CycloExpWindow(&c, finalExpH)
		finalExpHardDecomp(&got, &c)
		if !got.Equal(&want) {
			t.Fatalf("hard-part decomposition disagrees with windowed exponentiation on trial %d", i)
		}
	}
}

// TestFinalExpDecompDifferential pins the full decomposed final
// exponentiation (easy part + Devegili–Scott hard part, as used by
// PairingCheck and both batch pipelines) against the windowed finalExp
// that Pair retains as the oracle, on arbitrary — not merely
// cyclotomic — field elements and on a genuine Miller value.
func TestFinalExpDecompDifferential(t *testing.T) {
	for i := 0; i < 8; i++ {
		f := randFe12(t)
		want := finalExp(&f)
		got := finalExpDecomp(&f)
		if !got.Equal(want) {
			t.Fatalf("decomposed final exp disagrees with windowed final exp on trial %d", i)
		}
	}
	m := evalLines(g1Lines(G1Generator()), &G2Generator().x, &G2Generator().y)
	if !finalExpDecomp(m).Equal(finalExp(m)) {
		t.Fatal("decomposed final exp disagrees on a Miller value")
	}
}

// TestFinalExpDecompSpeedupPin guards the hard-part decomposition used by
// PairingCheck (the BLS verification path): it must beat the generic
// windowed exponentiation by at least 1.5x (measured ~2x; the floor
// leaves a flake margin). Skipped in -short mode like the other pins.
func TestFinalExpDecompSpeedupPin(t *testing.T) {
	if testing.Short() {
		t.Skip("relative perf pin skipped in -short mode")
	}
	f := randFe12(t)
	best := func(n int, fn func()) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for i := 0; i < n; i++ {
			start := time.Now()
			fn()
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	const trials = 10
	decomp := best(trials, func() { finalExpDecomp(&f) })
	window := best(trials, func() { finalExp(&f) })
	if decomp*15 > window*10 {
		t.Errorf("decomposed final exp %v is under 1.5x the windowed %v (ratio %.2fx)",
			decomp, window, float64(window)/float64(decomp))
	}
	t.Logf("final exp: decomposed %v vs windowed %v (%.2fx)",
		decomp, window, float64(window)/float64(decomp))
}

// randTwistPoint finds a random point on the twist curve by sampling x
// until x³ + b is a square. Such points lie outside the prime-order
// subgroup with overwhelming probability (the twist group order is
// cofactor·Order with a ~254-bit cofactor).
func randTwistPoint(t testing.TB) *G2 {
	t.Helper()
	for {
		var p G2
		_, p.x.c0 = randFe(t)
		_, p.x.c1 = randFe(t)
		var y2 fe2
		y2.Square(&p.x)
		y2.Mul(&y2, &p.x)
		y2.Add(&y2, &feTwistB)
		if !p.y.Sqrt(&y2) {
			continue
		}
		if !p.IsOnCurve() {
			t.Fatal("randTwistPoint produced an off-curve point")
		}
		return &p
	}
}

// TestPsiSubgroupDifferential pins the ψ-endomorphism subgroup check
// against the generic Order-ladder check: identical accept/reject on
// subgroup points, crafted curve-but-not-subgroup points, and infinity.
func TestPsiSubgroupDifferential(t *testing.T) {
	for i := 0; i < 10; i++ {
		k, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		q := new(G2).ScalarBaseMult(k)
		if !q.isInSubgroupPsi() {
			t.Fatalf("ψ check rejected subgroup point %v·G2", k)
		}
		if !q.isInSubgroup() {
			t.Fatalf("ladder check rejected subgroup point %v·G2", k)
		}
	}
	for i := 0; i < 10; i++ {
		p := randTwistPoint(t)
		ladder := p.isInSubgroup()
		psi := p.isInSubgroupPsi()
		if ladder != psi {
			t.Fatalf("subgroup check disagreement on twist point %v: ladder=%v ψ=%v", p, ladder, psi)
		}
		if ladder {
			t.Log("random twist point landed in the subgroup (astronomically unlikely)")
		}
	}
	inf := new(G2).SetInfinity()
	if !inf.isInSubgroupPsi() || !inf.isInSubgroup() {
		t.Fatal("subgroup checks rejected infinity")
	}
}

// batchTestInputs builds a raw-encoding batch interleaving every invalid
// shape the wire can carry between valid ciphertext points: subgroup
// points, infinity, truncated/oversized encodings, out-of-range
// coordinates, off-curve points, and on-curve points outside the
// prime-order subgroup.
func batchTestInputs(t testing.TB) [][]byte {
	t.Helper()
	var raws [][]byte
	addPoint := func() {
		k, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		raws = append(raws, new(G2).ScalarBaseMult(k).Marshal())
	}
	addPoint()
	raws = append(raws, make([]byte, g2MarshalledSize)) // infinity
	addPoint()
	raws = append(raws, []byte{1, 2, 3}) // wrong length
	raws = append(raws, nil)             // empty
	addPoint()
	outOfRange := new(G2).ScalarBaseMult(big.NewInt(5)).Marshal()
	P.FillBytes(outOfRange[:32]) // coordinate ≥ P
	raws = append(raws, outOfRange)
	offCurve := new(G2).ScalarBaseMult(big.NewInt(6)).Marshal()
	offCurve[g2MarshalledSize-1] ^= 1
	raws = append(raws, offCurve)
	raws = append(raws, randTwistPoint(t).Marshal()) // curve, not subgroup
	addPoint()
	return raws
}

// TestPairBatchDifferential pins PairBatch element-wise against the scalar
// path (Unmarshal + PrecomputedG1.Pair) and, for valid elements, against
// the big.Int reference pairing. Invalid elements must be flagged exactly
// where Unmarshal rejects, without disturbing their neighbors.
func TestPairBatchDifferential(t *testing.T) {
	kp, err := RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	p := new(G1).ScalarBaseMult(kp)
	pre := PrecomputeG1(p)
	refP := new(refG1).ScalarBaseMult(kp)

	raws := batchTestInputs(t)
	dst := make([]GT, len(raws))
	ok := make([]bool, len(raws))
	pre.PairBatch(raws, dst, ok, NewPairScratch(len(raws)))

	for i, raw := range raws {
		var q G2
		uerr := q.Unmarshal(raw)
		if ok[i] != (uerr == nil) {
			t.Fatalf("element %d: batch ok=%v but Unmarshal err=%v", i, ok[i], uerr)
		}
		if uerr != nil {
			if !dst[i].IsOne() {
				t.Fatalf("element %d: invalid element did not produce the identity", i)
			}
			continue
		}
		want := pre.Pair(&q)
		if !dst[i].Equal(want) {
			t.Fatalf("element %d: batch pairing disagrees with scalar path", i)
		}
		var refQ refG2
		if err := refQ.Unmarshal(raw); err != nil {
			t.Fatalf("element %d: reference backend rejected an element the limb backend accepted: %v", i, err)
		}
		if !bytes.Equal(dst[i].Marshal(), refPair(refP, &refQ).Marshal()) {
			t.Fatalf("element %d: batch pairing disagrees with big.Int reference", i)
		}
	}

	// An erased precomputation must behave like the scalar path: identity
	// for every decodable element, rejection preserved for the rest.
	erased := PrecomputeG1(p)
	erased.Erase()
	erased.PairBatch(raws, dst, ok, nil)
	for i, raw := range raws {
		var q G2
		uerr := q.Unmarshal(raw)
		if ok[i] != (uerr == nil) {
			t.Fatalf("erased element %d: batch ok=%v but Unmarshal err=%v", i, ok[i], uerr)
		}
		if !dst[i].IsOne() {
			t.Fatalf("erased element %d: expected identity", i)
		}
	}
}

// TestPairBatchAllocations pins the batched scan hot path at ZERO heap
// allocations per call once the scratch (and caller-owned dst/ok) are
// warm, so per-ciphertext GC traffic cannot silently come back.
func TestPairBatchAllocations(t *testing.T) {
	k, err := RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	pre := PrecomputeG1(new(G1).ScalarBaseMult(k))
	const n = 4
	raws := make([][]byte, n)
	for i := range raws {
		ki, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		raws[i] = new(G2).ScalarBaseMult(ki).Marshal()
	}
	raws[1] = make([]byte, g2MarshalledSize) // infinity stays alloc-free too
	dst := make([]GT, n)
	ok := make([]bool, n)
	scratch := NewPairScratch(n)
	pre.PairBatch(raws, dst, ok, scratch) // warm the scratch
	allocs := testing.AllocsPerRun(3, func() {
		pre.PairBatch(raws, dst, ok, scratch)
	})
	if allocs != 0 {
		t.Fatalf("PairBatch allocated %.1f times per batch; want 0", allocs)
	}
}

// TestCombSpeedupPin is the regression guard for the fixed-base comb
// tables: ScalarBaseMult must beat the generic ladder by at least 3x on
// both G1 and G2 on the same machine (measured ~4-5x; the floor leaves a
// non-flakiness margin). Skipped in -short mode like the backend pin.
func TestCombSpeedupPin(t *testing.T) {
	if testing.Short() {
		t.Skip("relative perf pin skipped in -short mode")
	}
	k, err := RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	g1Comb() // exclude lazy table construction from the timing
	g2Comb()
	best := func(n int, f func()) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for i := 0; i < n; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	const trials = 20
	var p1 G1
	var p2 G2
	comb1 := best(trials, func() { p1.ScalarBaseMult(k) })
	ladder1 := best(trials, func() { p1.ScalarMult(G1Generator(), k) })
	comb2 := best(trials, func() { p2.ScalarBaseMult(k) })
	ladder2 := best(trials, func() { p2.ScalarMult(G2Generator(), k) })

	const floor = 3
	if comb1*floor > ladder1 {
		t.Errorf("G1 comb %v is under %dx the ladder %v (ratio %.1fx)",
			comb1, floor, ladder1, float64(ladder1)/float64(comb1))
	}
	if comb2*floor > ladder2 {
		t.Errorf("G2 comb %v is under %dx the ladder %v (ratio %.1fx)",
			comb2, floor, ladder2, float64(ladder2)/float64(comb2))
	}
	t.Logf("G1 comb %v vs ladder %v: %.1fx; G2 comb %v vs ladder %v: %.1fx",
		comb1, ladder1, float64(ladder1)/float64(comb1),
		comb2, ladder2, float64(ladder2)/float64(comb2))
}

// TestPairBatchSpeedupPin guards the batched scan pipeline: decrypt-
// scanning a mailbox slice through PairBatch must beat the per-ciphertext
// precomputed path (Unmarshal + Pair) by a clear margin. The acceptance
// target is 1.5x and the measured ratio is ~1.6x; the pin floor is 1.3x
// so scheduler noise cannot flake the suite while a real regression (a
// lost ψ check or a fallback to the generic hard part) still trips it.
// Skipped in -short mode.
func TestPairBatchSpeedupPin(t *testing.T) {
	if testing.Short() {
		t.Skip("relative perf pin skipped in -short mode")
	}
	k, err := RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	pre := PrecomputeG1(new(G1).ScalarBaseMult(k))
	const n = 8
	raws := make([][]byte, n)
	for i := range raws {
		ki, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		raws[i] = new(G2).ScalarBaseMult(ki).Marshal()
	}
	dst := make([]GT, n)
	ok := make([]bool, n)
	scratch := NewPairScratch(n)

	best := func(trials int, f func()) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for i := 0; i < trials; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	batched := best(5, func() { pre.PairBatch(raws, dst, ok, scratch) })
	scalar := best(5, func() {
		for _, raw := range raws {
			var q G2
			if err := q.Unmarshal(raw); err != nil {
				t.Fatal(err)
			}
			pre.Pair(&q)
		}
	})

	const floorNum, floorDen = 13, 10 // 1.3x
	if batched*floorNum > scalar*floorDen {
		t.Errorf("batched scan %v is under %d.%dx the per-ciphertext path %v (ratio %.2fx)",
			batched, floorNum/floorDen, floorNum%floorDen, scalar, float64(scalar)/float64(batched))
	}
	t.Logf("batched scan %v vs per-ciphertext %v: %.2fx (%d elements)",
		batched, scalar, float64(scalar)/float64(batched), n)
}

func BenchmarkG1ScalarBaseMultComb(b *testing.B) {
	k, _ := RandomScalar(rand.Reader)
	g1Comb()
	var p G1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ScalarBaseMult(k)
	}
}

func BenchmarkG1ScalarMultLadder(b *testing.B) {
	k, _ := RandomScalar(rand.Reader)
	var p G1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ScalarMult(G1Generator(), k)
	}
}

func BenchmarkG2ScalarMultLadder(b *testing.B) {
	k, _ := RandomScalar(rand.Reader)
	var p G2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ScalarMult(G2Generator(), k)
	}
}

// BenchmarkPairBatch reports the per-ciphertext cost of the batched scan
// pipeline (unmarshal + ψ check + Miller + shared easy part + decomposed
// hard part).
func BenchmarkPairBatch(b *testing.B) {
	k, _ := RandomScalar(rand.Reader)
	pre := PrecomputeG1(new(G1).ScalarBaseMult(k))
	const n = 16
	raws := make([][]byte, n)
	for i := range raws {
		ki, _ := RandomScalar(rand.Reader)
		raws[i] = new(G2).ScalarBaseMult(ki).Marshal()
	}
	dst := make([]GT, n)
	ok := make([]bool, n)
	scratch := NewPairScratch(n)
	b.ResetTimer()
	for i := 0; i < b.N; i += n {
		pre.PairBatch(raws, dst, ok, scratch)
	}
}
