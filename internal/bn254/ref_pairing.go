package bn254

import "math/big"

// This file implements the reduced Tate pairing
//
//	refPair(P, Q) = f_{r,P}(ψ(Q))^((p¹²−1)/r)
//
// where P ∈ refG1 ⊂ E(Fp), Q ∈ refG2 ⊂ E'(Fp2), r = Order, and ψ is the
// untwisting isomorphism ψ(x', y') = (x'·w², y'·w³) into E(Fp12).
//
// Two classic, embedding-degree-12 optimizations are used; both preserve the
// pairing value exactly and are exercised by the bilinearity property tests:
//
//  1. Denominator elimination. The vertical-line evaluations v(ψ(Q)) are
//     elements of the subfield Fp6 (ψ(Q)'s x-coordinate is x'·v with
//     x' ∈ Fp2). Since (p⁶−1) divides the final exponent, every Fp6 element
//     is mapped to 1 by the final exponentiation, so verticals can be
//     dropped from the Miller loop entirely.
//
//  2. Easy-part split of the final exponentiation:
//     (p¹²−1)/r = (p⁶−1)·m with m = (p⁶+1)/r. The p⁶-power Frobenius on
//     Fp12/Fp6 is conjugation (w → −w), so f^(p⁶−1) = conj(f)·f⁻¹ costs one
//     inversion, after which a single ~1270-bit generic exponentiation by m
//     remains. No hardcoded Frobenius constants are needed.

// finalExpM is m = (p⁶+1)/r, the hard-part exponent.
var finalExpM *big.Int

func init() {
	p6 := new(big.Int).Exp(P, big.NewInt(6), nil)
	p6.Add(p6, big.NewInt(1))
	rem := new(big.Int)
	finalExpM, rem = new(big.Int).QuoRem(p6, Order, rem)
	if rem.Sign() != 0 {
		panic("bn254: Order does not divide p^6 + 1")
	}
}

// refTwistToFp12 returns the untwisted coordinates ψ(Q) = (x·w², y·w³) as two
// Fp12 elements. With Fp12 = Fp6[w]/(w²−v) and Fp6 = Fp2[v]/(v³−ξ):
//
//	x·w² = x·v   → gfP12{c0: gfP6{c1: x}, c1: 0}
//	y·w³ = y·v·w → gfP12{c0: 0, c1: gfP6{c1: y}}
func refTwistToFp12(q *refG2) (xq, yq *gfP12) {
	xq = newGFp12()
	xq.c0.c1.Set(q.x)
	yq = newGFp12()
	yq.c1.c1.Set(q.y)
	return xq, yq
}

// refLineEval evaluates the (non-vertical) line through points a and b of E(Fp)
// (or the tangent at a, if a == b) at the untwisted point (xq, yq), and
// returns a+b. In the cases where the true line is vertical (a = −b, or one
// of the points is infinity) it returns 1, which is valid under denominator
// elimination because vertical evaluations at ψ(Q) lie in Fp6.
func refLineEval(a, b *refG1, xq, yq *gfP12) (line *gfP12, sum *refG1) {
	if a.inf {
		return newGFp12().SetOne(), new(refG1).Set(b)
	}
	if b.inf {
		return newGFp12().SetOne(), new(refG1).Set(a)
	}

	var lambda *big.Int
	if a.x.Cmp(b.x) == 0 {
		if a.y.Cmp(b.y) != 0 || a.y.Sign() == 0 {
			// a = −b: vertical line, sum is infinity.
			return newGFp12().SetOne(), new(refG1).SetInfinity()
		}
		// Tangent: λ = 3x²/2y.
		lambda = fpMul(fpMul(big.NewInt(3), fpSquare(a.x)), fpInv(fpDouble(a.y)))
	} else {
		lambda = fpMul(fpSub(b.y, a.y), fpInv(fpSub(b.x, a.x)))
	}

	// l(X, Y) = Y − a.y − λ(X − a.x), evaluated at (xq, yq). The constant
	// Fp coefficients fold into the c0.c0.c0 slot of the tower.
	t := newGFp12().Set(xq)
	t.c0.c0.c0 = fpSub(t.c0.c0.c0, a.x)
	lt := refScalarMulFp12(t, lambda)
	line = newGFp12().Set(yq)
	line.c0.c0.c0 = fpSub(line.c0.c0.c0, a.y)
	line.Sub(line, lt)

	x3 := fpSub(fpSub(fpSquare(lambda), a.x), b.x)
	y3 := fpSub(fpMul(lambda, fpSub(a.x, x3)), a.y)
	sum = &refG1{x: x3, y: y3}
	return line, sum
}

// refScalarMulFp12 multiplies every Fp coefficient of a by k.
func refScalarMulFp12(a *gfP12, k *big.Int) *gfP12 {
	out := newGFp12()
	src := []*gfP6{a.c0, a.c1}
	dst := []*gfP6{out.c0, out.c1}
	for i := range src {
		for _, pair := range [][2]*gfP2{
			{src[i].c0, dst[i].c0},
			{src[i].c1, dst[i].c1},
			{src[i].c2, dst[i].c2},
		} {
			pair[1].c0 = fpMul(pair[0].c0, k)
			pair[1].c1 = fpMul(pair[0].c1, k)
		}
	}
	return out
}

// refMiller runs Miller's algorithm with denominator elimination, returning the
// unreduced pairing value f_{r,P}(ψ(Q)) ∈ Fp12 (up to Fp6 factors, which the
// final exponentiation kills).
func refMiller(p *refG1, q *refG2) *gfP12 {
	xq, yq := refTwistToFp12(q)
	f := newGFp12().SetOne()
	t := new(refG1).Set(p)

	for i := Order.BitLen() - 2; i >= 0; i-- {
		// Doubling step: f ← f² · l_{T,T}(Q)
		line, sum := refLineEval(t, t, xq, yq)
		f.Square(f)
		f.Mul(f, line)
		t = sum

		if Order.Bit(i) == 1 {
			// Addition step: f ← f · l_{T,P}(Q)
			line, sum := refLineEval(t, p, xq, yq)
			f.Mul(f, line)
			t = sum
		}
	}
	if !t.inf {
		panic("bn254: Miller loop did not terminate at infinity")
	}
	return f
}

// refFinalExponentiation maps the Miller value into refGT:
// f ↦ f^((p¹²−1)/r) = (conj(f)·f⁻¹)^m.
func refFinalExponentiation(f *gfP12) *gfP12 {
	easy := newGFp12().Invert(f)
	easy.Mul(easy, newGFp12().Conjugate(f))
	return newGFp12().Exp(easy, finalExpM)
}

// refPair computes the reduced Tate pairing e(p, q) ∈ refGT. Pairing with the
// identity in either argument returns the identity of refGT.
func refPair(p *refG1, q *refG2) *refGT {
	if p.IsInfinity() || q.IsInfinity() {
		return refGTOne()
	}
	return &refGT{e: refFinalExponentiation(refMiller(p, q))}
}

// refPairingCheck reports whether ∏ e(p[i], q[i]) == 1. It is used by BLS
// signature verification: e(sig, refG2) == e(H(m), pk) is checked as
// e(sig, −refG2)·e(H(m), pk) == 1. The Miller values are multiplied before a
// single shared final exponentiation.
func refPairingCheck(ps []*refG1, qs []*refG2) bool {
	if len(ps) != len(qs) {
		return false
	}
	acc := newGFp12().SetOne()
	nontrivial := false
	for i := range ps {
		if ps[i].IsInfinity() || qs[i].IsInfinity() {
			continue
		}
		acc.Mul(acc, refMiller(ps[i], qs[i]))
		nontrivial = true
	}
	if !nontrivial {
		return true
	}
	return refFinalExponentiation(acc).IsOne()
}
