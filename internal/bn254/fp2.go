package bn254

import (
	"fmt"
	"math/big"
)

// gfP2 is an element of Fp2 = Fp[i]/(i²+1), stored as c0 + c1·i.
type gfP2 struct {
	c0, c1 *big.Int
}

func newGFp2() *gfP2 {
	return &gfP2{c0: new(big.Int), c1: new(big.Int)}
}

func (e *gfP2) String() string {
	return fmt.Sprintf("(%v + %v·i)", e.c0, e.c1)
}

func (e *gfP2) Set(a *gfP2) *gfP2 {
	e.c0 = new(big.Int).Set(a.c0)
	e.c1 = new(big.Int).Set(a.c1)
	return e
}

func (e *gfP2) SetZero() *gfP2 {
	e.c0 = new(big.Int)
	e.c1 = new(big.Int)
	return e
}

func (e *gfP2) SetOne() *gfP2 {
	e.c0 = big.NewInt(1)
	e.c1 = new(big.Int)
	return e
}

// SetInts sets e to a0 + a1·i, reducing both coefficients mod P.
func (e *gfP2) SetInts(a0, a1 *big.Int) *gfP2 {
	e.c0 = new(big.Int).Mod(a0, P)
	e.c1 = new(big.Int).Mod(a1, P)
	return e
}

func (e *gfP2) IsZero() bool { return e.c0.Sign() == 0 && e.c1.Sign() == 0 }

func (e *gfP2) IsOne() bool {
	return e.c0.Cmp(big.NewInt(1)) == 0 && e.c1.Sign() == 0
}

func (e *gfP2) Equal(a *gfP2) bool {
	return e.c0.Cmp(a.c0) == 0 && e.c1.Cmp(a.c1) == 0
}

func (e *gfP2) Add(a, b *gfP2) *gfP2 {
	c0 := fpAdd(a.c0, b.c0)
	c1 := fpAdd(a.c1, b.c1)
	e.c0, e.c1 = c0, c1
	return e
}

func (e *gfP2) Sub(a, b *gfP2) *gfP2 {
	c0 := fpSub(a.c0, b.c0)
	c1 := fpSub(a.c1, b.c1)
	e.c0, e.c1 = c0, c1
	return e
}

func (e *gfP2) Neg(a *gfP2) *gfP2 {
	c0 := fpNeg(a.c0)
	c1 := fpNeg(a.c1)
	e.c0, e.c1 = c0, c1
	return e
}

// Conjugate sets e = a0 − a1·i.
func (e *gfP2) Conjugate(a *gfP2) *gfP2 {
	c0 := new(big.Int).Set(a.c0)
	c1 := fpNeg(a.c1)
	e.c0, e.c1 = c0, c1
	return e
}

// Mul sets e = a·b = (a0b0 − a1b1) + (a0b1 + a1b0)·i, computed with
// Karatsuba (three base-field multiplications).
func (e *gfP2) Mul(a, b *gfP2) *gfP2 {
	t0 := fpMul(a.c0, b.c0)
	t1 := fpMul(a.c1, b.c1)
	cross := fpMul(fpAdd(a.c0, a.c1), fpAdd(b.c0, b.c1))
	e.c0 = fpSub(t0, t1)
	e.c1 = fpSub(fpSub(cross, t0), t1)
	return e
}

// MulScalar sets e = a·k for k ∈ Fp.
func (e *gfP2) MulScalar(a *gfP2, k *big.Int) *gfP2 {
	c0 := fpMul(a.c0, k)
	c1 := fpMul(a.c1, k)
	e.c0, e.c1 = c0, c1
	return e
}

func (e *gfP2) Square(a *gfP2) *gfP2 {
	// (a0² − a1²) + 2a0a1·i
	t0 := fpMul(fpAdd(a.c0, a.c1), fpSub(a.c0, a.c1))
	t1 := fpMul(a.c0, a.c1)
	e.c0 = t0
	e.c1 = fpDouble(t1)
	return e
}

// Invert sets e = a⁻¹ = conj(a)/(a0² + a1²). Panics on zero.
func (e *gfP2) Invert(a *gfP2) *gfP2 {
	norm := fpAdd(fpSquare(a.c0), fpSquare(a.c1))
	if norm.Sign() == 0 {
		panic("bn254: inversion of zero in Fp2")
	}
	inv := fpInv(norm)
	e.c0 = fpMul(a.c0, inv)
	e.c1 = fpMul(fpNeg(a.c1), inv)
	return e
}

// MulXi sets e = a·ξ where ξ = 9 + i is the Fp6 non-residue.
func (e *gfP2) MulXi(a *gfP2) *gfP2 {
	// (9a0 − a1) + (9a1 + a0)·i
	nine := big.NewInt(9)
	c0 := fpSub(fpMul(a.c0, nine), a.c1)
	c1 := fpAdd(fpMul(a.c1, nine), a.c0)
	e.c0, e.c1 = c0, c1
	return e
}

// Exp sets e = a^k using square-and-multiply.
func (e *gfP2) Exp(a *gfP2, k *big.Int) *gfP2 {
	acc := newGFp2().SetOne()
	base := newGFp2().Set(a)
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc.Square(acc)
		if k.Bit(i) == 1 {
			acc.Mul(acc, base)
		}
	}
	return e.Set(acc)
}

// Sqrt sets e to a square root of a and returns true, or returns false if a
// is not a square in Fp2. Uses the complex method for p ≡ 3 (mod 4):
// for a = a0 + a1·i, |a| = sqrt(a0²+a1²) must exist in Fp, then
// x0 = sqrt((a0+|a|)/2) (or the variant with −|a|).
func (e *gfP2) Sqrt(a *gfP2) bool {
	if a.IsZero() {
		e.SetZero()
		return true
	}
	if a.c1.Sign() == 0 {
		// a ∈ Fp: either sqrt(a0) exists in Fp, or a0 is a non-residue
		// and sqrt(a) = sqrt(-a0)·i since i² = −1.
		if r, ok := fpSqrt(a.c0); ok {
			e.c0, e.c1 = r, new(big.Int)
			return true
		}
		if r, ok := fpSqrt(fpNeg(a.c0)); ok {
			e.c0, e.c1 = new(big.Int), r
			return true
		}
		return false
	}
	norm := fpAdd(fpSquare(a.c0), fpSquare(a.c1))
	alpha, ok := fpSqrt(norm)
	if !ok {
		return false
	}
	twoInv := fpInv(big.NewInt(2))
	delta := fpMul(fpAdd(a.c0, alpha), twoInv)
	x0, ok := fpSqrt(delta)
	if !ok {
		delta = fpMul(fpSub(a.c0, alpha), twoInv)
		x0, ok = fpSqrt(delta)
		if !ok {
			return false
		}
	}
	// x1 = a1 / (2·x0)
	x1 := fpMul(a.c1, fpInv(fpDouble(x0)))
	cand := &gfP2{c0: x0, c1: x1}
	if !newGFp2().Square(cand).Equal(a) {
		return false
	}
	e.Set(cand)
	return true
}
