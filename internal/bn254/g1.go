package bn254

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
)

// G1 is a point on E(Fp): y² = x³ + 3, stored affine on the Montgomery
// limb backend. The zero value is NOT valid; use new(G1).SetInfinity(),
// G1Generator(), or an operation that sets the receiver. E(Fp) has prime
// order Order, so every curve point other than infinity generates the
// full group.
type G1 struct {
	x, y fe
	inf  bool
}

// g1Gen holds the conventional generator (1, 2) in Montgomery form.
var g1Gen = deriveG1Gen()

func deriveG1Gen() G1 {
	var p G1
	feFromBig(&p.x, big.NewInt(1))
	feFromBig(&p.y, big.NewInt(2))
	return p
}

// G1Generator returns the conventional generator (1, 2).
func G1Generator() *G1 {
	p := g1Gen
	return &p
}

func (p *G1) String() string {
	if p.inf {
		return "G1(∞)"
	}
	return fmt.Sprintf("G1(%v, %v)", feToBig(&p.x), feToBig(&p.y))
}

// SetInfinity sets p to the identity element.
func (p *G1) SetInfinity() *G1 {
	*p = G1{inf: true}
	return p
}

// IsInfinity reports whether p is the identity element.
func (p *G1) IsInfinity() bool { return p.inf }

func (p *G1) Set(a *G1) *G1 {
	*p = *a
	return p
}

func (p *G1) Equal(a *G1) bool {
	if p.inf || a.inf {
		return p.inf == a.inf
	}
	return p.x.Equal(&a.x) && p.y.Equal(&a.y)
}

// IsOnCurve reports whether p satisfies y² = x³ + 3 (infinity counts as on
// the curve).
func (p *G1) IsOnCurve() bool {
	if p.inf {
		return true
	}
	var y2, x3 fe
	feSquare(&y2, &p.y)
	feSquare(&x3, &p.x)
	feMul(&x3, &x3, &p.x)
	feAdd(&x3, &x3, &feCurveB)
	return y2.Equal(&x3)
}

// Neg sets p = −a.
func (p *G1) Neg(a *G1) *G1 {
	if a.inf {
		return p.SetInfinity()
	}
	p.x = a.x
	feNeg(&p.y, &a.y)
	p.inf = false
	return p
}

// Add sets p = a + b using affine chord-and-tangent formulas (one field
// inversion; fine for the aggregation call sites — the scalar-mult and
// pairing hot paths use the inversion-free Jacobian ladder instead).
func (p *G1) Add(a, b *G1) *G1 {
	if a.inf {
		return p.Set(b)
	}
	if b.inf {
		return p.Set(a)
	}
	if a.x.Equal(&b.x) {
		if !a.y.Equal(&b.y) || a.y.IsZero() {
			return p.SetInfinity()
		}
		return p.Double(a)
	}
	// λ = (by − ay) / (bx − ax)
	var num, den, lambda fe
	feSub(&num, &b.y, &a.y)
	feSub(&den, &b.x, &a.x)
	feInv(&den, &den)
	feMul(&lambda, &num, &den)
	var x3, y3, t fe
	feSquare(&x3, &lambda)
	feSub(&x3, &x3, &a.x)
	feSub(&x3, &x3, &b.x)
	feSub(&t, &a.x, &x3)
	feMul(&y3, &lambda, &t)
	feSub(&y3, &y3, &a.y)
	p.x, p.y, p.inf = x3, y3, false
	return p
}

// Double sets p = 2a.
func (p *G1) Double(a *G1) *G1 {
	if a.inf || a.y.IsZero() {
		return p.SetInfinity()
	}
	// λ = 3ax² / 2ay
	var num, den, lambda fe
	feSquare(&num, &a.x)
	feMulBy3(&num, &num)
	feDouble(&den, &a.y)
	feInv(&den, &den)
	feMul(&lambda, &num, &den)
	var x3, y3, t fe
	feSquare(&x3, &lambda)
	feDouble(&t, &a.x)
	feSub(&x3, &x3, &t)
	feSub(&t, &a.x, &x3)
	feMul(&y3, &lambda, &t)
	feSub(&y3, &y3, &a.y)
	p.x, p.y, p.inf = x3, y3, false
	return p
}

// g1Jac is a point in Jacobian coordinates (x/z², y/z³); z = 0 encodes
// infinity. Used internally for inversion-free scalar multiplication and
// the Miller loop.
type g1Jac struct {
	x, y, z fe
}

func (j *g1Jac) setInfinity() { *j = g1Jac{} }

func (j *g1Jac) isInfinity() bool { return j.z.IsZero() }

func (j *g1Jac) fromAffine(p *G1) {
	if p.inf {
		j.setInfinity()
		return
	}
	j.x, j.y, j.z = p.x, p.y, feOne
}

func (j *g1Jac) toAffine(p *G1) {
	if j.isInfinity() {
		p.SetInfinity()
		return
	}
	var zInv, zInv2, zInv3 fe
	feInv(&zInv, &j.z)
	feSquare(&zInv2, &zInv)
	feMul(&zInv3, &zInv2, &zInv)
	feMul(&p.x, &j.x, &zInv2)
	feMul(&p.y, &j.y, &zInv3)
	p.inf = false
}

// double sets j = 2a (a = 0 curve; standard Jacobian doubling).
func (j *g1Jac) double(a *g1Jac) {
	if a.isInfinity() {
		j.setInfinity()
		return
	}
	var A, B, C, D, E, F fe
	feSquare(&A, &a.x) // A = X²
	feSquare(&B, &a.y) // B = Y²
	feSquare(&C, &B)   // C = B²
	// D = 2((X+B)² − A − C)
	feAdd(&D, &a.x, &B)
	feSquare(&D, &D)
	feSub(&D, &D, &A)
	feSub(&D, &D, &C)
	feDouble(&D, &D)
	feMulBy3(&E, &A) // E = 3A
	feSquare(&F, &E) // F = E²
	var x3, y3, z3, t fe
	feDouble(&t, &D)
	feSub(&x3, &F, &t) // X3 = F − 2D
	feSub(&t, &D, &x3)
	feMul(&y3, &E, &t)
	feDouble(&C, &C)
	feDouble(&C, &C)
	feDouble(&C, &C)
	feSub(&y3, &y3, &C) // Y3 = E(D−X3) − 8C
	feMul(&z3, &a.y, &a.z)
	feDouble(&z3, &z3) // Z3 = 2YZ
	j.x, j.y, j.z = x3, y3, z3
}

// addMixed sets j = a + q for affine q (classic mixed addition).
func (j *g1Jac) addMixed(a *g1Jac, q *G1) {
	if q.inf {
		*j = *a
		return
	}
	if a.isInfinity() {
		j.fromAffine(q)
		return
	}
	var zz, u2, s2, h, r fe
	feSquare(&zz, &a.z)
	feMul(&u2, &q.x, &zz)
	feMul(&s2, &q.y, &a.z)
	feMul(&s2, &s2, &zz)
	feSub(&h, &u2, &a.x)
	feSub(&r, &s2, &a.y)
	if h.IsZero() {
		if r.IsZero() {
			j.double(a)
			return
		}
		j.setInfinity()
		return
	}
	var h2, h3, v fe
	feSquare(&h2, &h)
	feMul(&h3, &h, &h2)
	feMul(&v, &a.x, &h2)
	var x3, y3, z3, t fe
	feSquare(&x3, &r)
	feSub(&x3, &x3, &h3)
	feDouble(&t, &v)
	feSub(&x3, &x3, &t) // X3 = R² − H³ − 2V
	feSub(&t, &v, &x3)
	feMul(&y3, &r, &t)
	feMul(&t, &a.y, &h3)
	feSub(&y3, &y3, &t)  // Y3 = R(V−X3) − Y·H³
	feMul(&z3, &a.z, &h) // Z3 = Z·H
	j.x, j.y, j.z = x3, y3, z3
}

// ScalarMult sets p = k·a. The scalar is reduced mod Order.
func (p *G1) ScalarMult(a *G1, k *big.Int) *G1 {
	kr := new(big.Int).Mod(k, Order)
	var acc g1Jac
	acc.setInfinity()
	for i := kr.BitLen() - 1; i >= 0; i-- {
		acc.double(&acc)
		if kr.Bit(i) == 1 {
			acc.addMixed(&acc, a)
		}
	}
	acc.toAffine(p)
	return p
}

// ScalarBaseMult sets p = k·G where G is the conventional generator, using
// the fixed-base comb table (see comb.go). Results are bit-identical to
// ScalarMult(G1Generator(), k).
func (p *G1) ScalarBaseMult(k *big.Int) *G1 {
	var buf [32]byte
	combScalarBytes(&buf, k)
	var acc g1Jac
	g1CombMult(&acc, &buf)
	acc.toAffine(p)
	return p
}

// Marshal encodes p as x ‖ y (32-byte big-endian each). Infinity encodes as
// all zeros, which is unambiguous because (0, 0) is not on the curve.
func (p *G1) Marshal() []byte {
	out := make([]byte, g1MarshalledSize)
	if p.inf {
		return out
	}
	var buf [32]byte
	feBytes(&p.x, &buf)
	copy(out[:32], buf[:])
	feBytes(&p.y, &buf)
	copy(out[32:], buf[:])
	return out
}

// Unmarshal decodes a point previously encoded with Marshal, validating that
// it lies on the curve.
func (p *G1) Unmarshal(data []byte) error {
	if len(data) != g1MarshalledSize {
		return errors.New("bn254: wrong G1 encoding length")
	}
	allZero := true
	for _, b := range data {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		p.SetInfinity()
		return nil
	}
	var x, y fe
	if !feSetBytes(&x, data[:32]) || !feSetBytes(&y, data[32:]) {
		return errors.New("bn254: G1 coordinate out of range")
	}
	p.x, p.y, p.inf = x, y, false
	if !p.IsOnCurve() {
		return errors.New("bn254: G1 point not on curve")
	}
	return nil
}

// HashToG1 hashes an arbitrary message to a curve point using domain-
// separated try-and-increment. Because E(Fp) has prime order, the result is
// always a generator of G1 (unless the negligible-probability identity is
// hit, which is rejected). The output is bit-identical to the big.Int
// reference implementation: same hash stream, same principal square root,
// same sign choice.
func HashToG1(domain string, msg []byte) *G1 {
	h := sha256.New()
	var ctr [4]byte
	for i := uint32(0); ; i++ {
		h.Reset()
		binary.BigEndian.PutUint32(ctr[:], i)
		h.Write([]byte("alpenhorn/bn254/hash-to-g1:"))
		h.Write([]byte(domain))
		h.Write([]byte{0})
		h.Write(msg)
		h.Write(ctr[:])
		digest := h.Sum(nil)
		xBig := new(big.Int).SetBytes(digest)
		xBig.Mod(xBig, P)
		var x, y2, y fe
		feFromBig(&x, xBig)
		feSquare(&y2, &x)
		feMul(&y2, &y2, &x)
		feAdd(&y2, &y2, &feCurveB)
		if !feSqrt(&y, &y2) {
			continue
		}
		// Choose the root deterministically from the hash so that the
		// map is a function of (domain, msg) alone.
		if digest[0]&1 == 1 {
			feNeg(&y, &y)
		}
		if y.IsZero() && x.IsZero() {
			continue
		}
		return &G1{x: x, y: y}
	}
}
