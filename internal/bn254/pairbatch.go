package bn254

import "math/big"

// Batched pairing pipeline for the mailbox-scan pattern: one fixed G1
// ladder (PrecomputedG1) replayed against a whole slice of wire-encoded
// G2 points. Three per-element costs of the scalar path shrink here:
//
//   - the subgroup check of G2.Unmarshal (a full Order-bit ladder) becomes
//     a ψ-endomorphism check at half the bits (~2x);
//   - the easy part of the final exponentiation shares one Fp12 inversion
//     across the whole batch (Montgomery trick, see batch.go);
//   - the hard part swaps the generic 761-bit windowed exponentiation for
//     the Devegili–Scott BN decomposition: three exponentiations by the
//     curve parameter u (63 bits each) plus Frobenius maps and a short
//     multiplication chain (~3x on this stage).
//
// The scalar Pair/Unmarshal paths are left untouched: they serve as a
// mid-level differential oracle for this pipeline (differential tests
// assert element-wise equality), alongside the big.Int reference.

// frobGammaP1[k−1] = γ₁^k for k = 1..5, γ₁ = ξ^((p−1)/6) ∈ Fp2: the
// twist constants of the p-power Frobenius on the tower basis, derived at
// startup like their p² counterparts.
var frobGammaP1 = deriveFrobGammaP1()

func deriveFrobGammaP1() (g [5]fe2) {
	exp := new(big.Int).Sub(P, big.NewInt(1))
	if new(big.Int).Mod(exp, big.NewInt(6)).Sign() != 0 {
		panic("bn254: 6 does not divide p−1")
	}
	exp.Div(exp, big.NewInt(6))
	xi := fe2FromBig(big.NewInt(9), big.NewInt(1))
	var gamma fe2
	gamma.Exp(&xi, exp)
	g[0] = gamma
	for i := 1; i < 5; i++ {
		g[i].Mul(&g[i-1], &gamma)
	}
	return
}

// Frobenius sets e = a^p. On the tower basis {w^k} the map conjugates
// each Fp2 coefficient (the p-power Frobenius of Fp2) and multiplies the
// w^k slot by γ₁^k, since w^p = γ₁·w.
func (e *fe12) Frobenius(a *fe12) *fe12 {
	var t fe2
	e.c0.c0.Conjugate(&a.c0.c0)
	t.Conjugate(&a.c1.c0)
	e.c1.c0.Mul(&t, &frobGammaP1[0])
	t.Conjugate(&a.c0.c1)
	e.c0.c1.Mul(&t, &frobGammaP1[1])
	t.Conjugate(&a.c1.c1)
	e.c1.c1.Mul(&t, &frobGammaP1[2])
	t.Conjugate(&a.c0.c2)
	e.c0.c2.Mul(&t, &frobGammaP1[3])
	t.Conjugate(&a.c1.c2)
	e.c1.c2.Mul(&t, &frobGammaP1[4])
	return e
}

// uNAF is the BN parameter u in non-adjacent form, most significant digit
// last. Conjugation is free inversion in the cyclotomic subgroup, so the
// signed recoding trades binary Hamming weight 28 for NAF weight 24 in
// each of the three hard-part exponentiations by u.
var uNAF = deriveNAF(u)

// deriveNAF returns the non-adjacent form of a positive k (digits in
// {−1, 0, 1}, least significant first, no two adjacent nonzero).
func deriveNAF(k *big.Int) []int8 {
	if k.Sign() <= 0 {
		panic("bn254: NAF recoding of a non-positive exponent")
	}
	n := new(big.Int).Set(k)
	var digits []int8
	four := big.NewInt(4)
	for n.Sign() > 0 {
		if n.Bit(0) == 1 {
			d := int8(2 - new(big.Int).Mod(n, four).Int64())
			digits = append(digits, d)
			n.Sub(n, big.NewInt(int64(d)))
		} else {
			digits = append(digits, 0)
		}
		n.Rsh(n, 1)
	}
	if digits[len(digits)-1] != 1 {
		panic("bn254: NAF recoding lost the leading digit")
	}
	return digits
}

// cycloExpU sets e = a^u for a in the cyclotomic subgroup, walking uNAF
// with conj(a) standing in for a⁻¹ (a^(p⁶+1) = 1 there).
func (e *fe12) cycloExpU(a *fe12) *fe12 {
	var acc, aInv fe12
	acc.Set(a)
	aInv.Conjugate(a)
	for i := len(uNAF) - 2; i >= 0; i-- {
		acc.CyclotomicSquare(&acc)
		switch uNAF[i] {
		case 1:
			acc.Mul(&acc, a)
		case -1:
			acc.Mul(&acc, &aInv)
		}
	}
	return e.Set(&acc)
}

// finalExpHardDecomp sets out = t^((p⁴−p²+1)/r) for t in the cyclotomic
// subgroup, using the Devegili–Scott BN decomposition [eprint 2007/390]:
// the exponent is a polynomial in u, so three exponentiations by u plus
// Frobenius maps and a fixed multiplication chain replace the generic
// 761-bit window. Conjugation is inversion in the cyclotomic subgroup
// (t^(p⁶+1) = 1 there), which the chain uses freely. Identical to
// CycloExpWindow(t, finalExpH) — a differential test pins the equality.
func finalExpHardDecomp(out, t *fe12) {
	var fp, fp2, fp3 fe12
	fp.Frobenius(t)
	fp2.FrobeniusP2(t)
	fp3.Frobenius(&fp2)

	var fu, fu2, fu3 fe12
	fu.cycloExpU(t)
	fu2.cycloExpU(&fu)
	fu3.cycloExpU(&fu2)

	var fup, fu2p, fu3p, y2 fe12
	fup.Frobenius(&fu)
	fu2p.Frobenius(&fu2)
	fu3p.Frobenius(&fu3)
	y2.FrobeniusP2(&fu2)

	var y0, y1, y3, y4, y5, y6 fe12
	y0.Mul(&fp, &fp2)
	y0.Mul(&y0, &fp3)
	y1.Conjugate(t)
	y3.Conjugate(&fup)
	y4.Mul(&fu, &fu2p)
	y4.Conjugate(&y4)
	y5.Conjugate(&fu2)
	y6.Mul(&fu3, &fu3p)
	y6.Conjugate(&y6)

	var t0, t1 fe12
	t0.CyclotomicSquare(&y6)
	t0.Mul(&t0, &y4)
	t0.Mul(&t0, &y5)
	t1.Mul(&y3, &y5)
	t1.Mul(&t1, &t0)
	t0.Mul(&t0, &y2)
	t1.CyclotomicSquare(&t1)
	t1.Mul(&t1, &t0)
	t1.CyclotomicSquare(&t1)
	t0.Mul(&t1, &y1)
	t1.Mul(&t1, &y0)
	t0.CyclotomicSquare(&t0)
	out.Mul(&t0, &t1)
}

// g2PsiX/g2PsiY are the twist-endomorphism coefficients: composing
// untwist → p-power Frobenius → twist gives
//
//	ψ(x, y) = (γ₁²·conj(x), γ₁³·conj(y))
//
// since the untwisted coordinates sit at w² and w³. sixU2 = 6u² ≡ p
// (mod Order), so ψ acts as multiplication by 6u² on the prime-order
// subgroup of the twist.
var (
	g2PsiX = frobGammaP1[1]
	g2PsiY = frobGammaP1[2]
	sixU2  = new(big.Int).Mul(new(big.Int).Mul(u, u), big.NewInt(6))
)

// isInSubgroupPsi reports whether the curve point p lies in the
// order-Order subgroup, via the endomorphism criterion ψ(p) = [6u²]p
// (ψ has the eigenvalue p ≡ 6u² mod Order exactly on that subgroup; see
// Scott, eprint 2021/1130). The ladder runs half the bits of the generic
// Order-multiplication check and the comparison stays in Jacobian form,
// so no inversion is paid. Identical accept/reject behavior to
// isInSubgroup — differential and fuzz tests pin the equivalence.
func (p *G2) isInSubgroupPsi() bool {
	if p.inf {
		return true
	}
	var px, py fe2
	px.Conjugate(&p.x)
	px.Mul(&px, &g2PsiX)
	py.Conjugate(&p.y)
	py.Mul(&py, &g2PsiY)
	var acc g2Jac
	acc.setInfinity()
	for i := sixU2.BitLen() - 1; i >= 0; i-- {
		acc.double(&acc)
		if sixU2.Bit(i) == 1 {
			acc.addMixed(&acc, p)
		}
	}
	if acc.isInfinity() {
		// ψ(p) is never infinity for p ≠ ∞, so [6u²]p = ∞ means p is
		// outside the subgroup.
		return false
	}
	// ψ(p) == acc ⟺ px·Z² == X and py·Z³ == Y.
	var z2, z3, t fe2
	z2.Square(&acc.z)
	z3.Mul(&z2, &acc.z)
	t.Mul(&px, &z2)
	if !t.Equal(&acc.x) {
		return false
	}
	t.Mul(&py, &z3)
	return t.Equal(&acc.y)
}

// Batch element states after the decode phase.
const (
	batchInvalid = uint8(iota)
	batchInf
	batchPoint
)

// g2DecodeBatch decodes one wire-encoded G2 element for the batch
// pipeline: same length/range/curve acceptance as G2.Unmarshal, with a
// fast subgroup check in place of the Order ladder — the ψ-endomorphism
// half-length ladder for the v1 Tate batch, or (gsCheck) the
// Galbraith–Scott short-vector check for the v2 ate batch. All three
// checks accept exactly the same set of points; differential and fuzz
// tests pin the equivalence.
func g2DecodeBatch(q *G2, raw []byte, gsCheck bool) uint8 {
	if len(raw) != g2MarshalledSize {
		return batchInvalid
	}
	allZero := true
	for _, b := range raw {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return batchInf
	}
	var coords [4]fe
	for i := range coords {
		if !feSetBytes(&coords[i], raw[i*32:(i+1)*32]) {
			return batchInvalid
		}
	}
	q.x = fe2{c0: coords[0], c1: coords[1]}
	q.y = fe2{c0: coords[2], c1: coords[3]}
	q.inf = false
	if !q.IsOnCurve() {
		return batchInvalid
	}
	if gsCheck {
		if !q.isInSubgroupGS() {
			return batchInvalid
		}
	} else if !q.isInSubgroupPsi() {
		return batchInvalid
	}
	return batchPoint
}

// PairScratch holds the reusable buffers of PairBatch. Reusing one across
// calls keeps the pipeline at zero heap allocations per ciphertext (an
// allocation test pins this); a nil scratch works and allocates per call.
// A PairScratch must not be used concurrently.
type PairScratch struct {
	qx, qy []fe2
	state  []uint8
	pre    []fe12
}

// NewPairScratch returns scratch space sized for batches of up to n
// elements (it grows on demand if a larger batch arrives).
func NewPairScratch(n int) *PairScratch {
	s := new(PairScratch)
	s.grow(n)
	return s
}

func (s *PairScratch) grow(n int) {
	if cap(s.qx) < n {
		s.qx = make([]fe2, n)
		s.qy = make([]fe2, n)
		s.state = make([]uint8, n)
		s.pre = make([]fe12, n)
	}
	s.qx = s.qx[:n]
	s.qy = s.qy[:n]
	s.state = s.state[:n]
	s.pre = s.pre[:n]
}

// PairBatch computes e(p, Qᵢ) for a batch of wire-encoded G2 points,
// writing the pairing values into dst and per-element validity into ok
// (both must have len(raws)). ok[i] is false exactly when G2.Unmarshal
// would reject raws[i]; dst[i] is then the identity. Results for valid
// elements are identical to Unmarshal + pc.Pair. Invalid elements are
// excluded from the shared-inversion pass before it runs (see the
// batch-inversion invariant in batch.go), so they never corrupt their
// neighbors. A PrecomputedG1 is read-only here and safe for concurrent
// PairBatch calls with distinct scratches.
func (pc *PrecomputedG1) PairBatch(raws [][]byte, dst []GT, ok []bool, scratch *PairScratch) {
	n := len(raws)
	if len(dst) != n || len(ok) != n {
		panic("bn254: PairBatch slice length mismatch")
	}
	if scratch == nil {
		scratch = new(PairScratch)
	}
	scratch.grow(n)

	// Phase 1: decode + curve + ψ subgroup checks.
	var q G2
	for i := range raws {
		st := g2DecodeBatch(&q, raws[i], false)
		scratch.state[i] = st
		if st == batchPoint {
			scratch.qx[i] = q.x
			scratch.qy[i] = q.y
		}
	}

	if pc.inf {
		// Pairing with the precomputation of infinity (or an erased key)
		// is the identity for every decodable element.
		for i := range raws {
			ok[i] = scratch.state[i] != batchInvalid
			dst[i].e.SetOne()
		}
		return
	}

	// Phase 2: Miller loops (shared line coefficients, no allocation).
	for i := range raws {
		if scratch.state[i] == batchPoint {
			evalLinesInto(&dst[i].e, pc.coeffs, &scratch.qx[i], &scratch.qy[i])
		}
	}

	// Phase 3: easy part of the final exponentiation with ONE shared Fp12
	// inversion. Miller values of valid pairings are nonzero (products of
	// nonzero line values), so the prefix chain over batchPoint slots
	// cannot contain zero.
	var acc fe12
	acc.SetOne()
	for i := range raws {
		if scratch.state[i] != batchPoint {
			continue
		}
		scratch.pre[i] = acc
		acc.Mul(&acc, &dst[i].e)
	}
	var inv fe12
	inv.Invert(&acc)
	for i := n - 1; i >= 0; i-- {
		if scratch.state[i] != batchPoint {
			continue
		}
		var fInv, g fe12
		fInv.Mul(&inv, &scratch.pre[i])
		inv.Mul(&inv, &dst[i].e)
		g.Conjugate(&dst[i].e)
		g.Mul(&g, &fInv) // f^(p⁶−1)
		var t fe12
		t.FrobeniusP2(&g)
		dst[i].e.Mul(&t, &g) // ^(p²+1): now cyclotomic
	}

	// Phase 4: decomposed hard part per element.
	for i := range raws {
		switch scratch.state[i] {
		case batchPoint:
			ok[i] = true
			finalExpHardDecomp(&dst[i].e, &dst[i].e)
		case batchInf:
			ok[i] = true
			dst[i].e.SetOne()
		default:
			ok[i] = false
			dst[i].e.SetOne()
		}
	}
}
