package bn254

import (
	"errors"
	"math/big"
)

// GT is an element of the order-Order subgroup of Fp12*, the target group of
// the pairing. The zero value is NOT valid; use GTOne(), Pair, or an
// operation that sets the receiver.
type GT struct {
	e fe12
}

// GTOne returns the identity element of GT.
func GTOne() *GT {
	g := new(GT)
	g.e.SetOne()
	return g
}

func (g *GT) String() string { return g.e.String() }

func (g *GT) Set(a *GT) *GT {
	g.e = a.e
	return g
}

// IsOne reports whether g is the identity.
func (g *GT) IsOne() bool { return g.e.IsOne() }

func (g *GT) Equal(a *GT) bool { return g.e.Equal(&a.e) }

// Mul sets g = a·b (the GT group operation).
func (g *GT) Mul(a, b *GT) *GT {
	g.e.Mul(&a.e, &b.e)
	return g
}

// Invert sets g = a⁻¹.
func (g *GT) Invert(a *GT) *GT {
	g.e.Invert(&a.e)
	return g
}

// Exp sets g = a^k. The exponent is reduced mod Order.
func (g *GT) Exp(a *GT, k *big.Int) *GT {
	kr := new(big.Int).Mod(k, Order)
	g.e.Exp(&a.e, kr)
	return g
}

// coeffs returns pointers to the twelve Fp coefficients of g in the fixed
// marshaling order shared with the reference backend.
func (g *GT) coeffs() [12]*fe {
	return [12]*fe{
		&g.e.c0.c0.c0, &g.e.c0.c0.c1,
		&g.e.c0.c1.c0, &g.e.c0.c1.c1,
		&g.e.c0.c2.c0, &g.e.c0.c2.c1,
		&g.e.c1.c0.c0, &g.e.c1.c0.c1,
		&g.e.c1.c1.c0, &g.e.c1.c1.c1,
		&g.e.c1.c2.c0, &g.e.c1.c2.c1,
	}
}

// Marshal encodes g as twelve 32-byte big-endian coefficients.
func (g *GT) Marshal() []byte {
	return g.AppendMarshal(make([]byte, 0, gtMarshalledSize))
}

// AppendMarshal appends the Marshal encoding of g to dst and returns the
// extended slice. Passing a buffer with spare capacity (buf[:0]) makes the
// encoding allocation-free — the batched scan uses this for its per-
// ciphertext key derivation.
func (g *GT) AppendMarshal(dst []byte) []byte {
	var buf [32]byte
	for _, c := range g.coeffs() {
		feBytes(c, &buf)
		dst = append(dst, buf[:]...)
	}
	return dst
}

// Unmarshal decodes an element encoded with Marshal. It checks coefficient
// ranges but not subgroup membership (checking would cost a full Order-sized
// exponentiation; protocol code never accepts raw GT elements from
// untrusted sources).
func (g *GT) Unmarshal(data []byte) error {
	if len(data) != gtMarshalledSize {
		return errors.New("bn254: wrong GT encoding length")
	}
	for i, c := range g.coeffs() {
		if !feSetBytes(c, data[i*32:(i+1)*32]) {
			return errors.New("bn254: GT coefficient out of range")
		}
	}
	return nil
}
