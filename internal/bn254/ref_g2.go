package bn254

import (
	"errors"
	"fmt"
	"math/big"
)

// twistB is the constant 3/ξ of the sextic twist E'(Fp2): y² = x³ + 3/ξ.
var twistB *gfP2

// g2GenX, g2GenY are the affine coordinates of the conventional refG2
// generator on the twist (the alt_bn128 generator used by EIP-197).
var g2GenX, g2GenY *gfP2

func init() {
	xi := newGFp2().SetInts(big.NewInt(9), big.NewInt(1))
	twistB = newGFp2().Invert(xi)
	twistB.MulScalar(twistB, curveB)

	g2GenX = newGFp2().SetInts(
		bigFromBase10("10857046999023057135944570762232829481370756359578518086990519993285655852781"),
		bigFromBase10("11559732032986387107991004021392285783925812861821192530917403151452391805634"),
	)
	g2GenY = newGFp2().SetInts(
		bigFromBase10("8495653923123431417604973247489272438418190587263600148770280649306958101930"),
		bigFromBase10("4082367875863433681332203403145435568316851327593401208105741076214120093531"),
	)
	gen := refG2Generator()
	if !gen.IsOnCurve() {
		panic("bn254: refG2 generator is not on the twist curve")
	}
	if !new(refG2).ScalarMult(gen, Order).IsInfinity() {
		panic("bn254: refG2 generator does not have order Order")
	}
}

// refG2 is a point on the sextic twist E'(Fp2): y² = x³ + 3/ξ, in affine
// coordinates, restricted to the order-Order subgroup. The zero value is NOT
// valid; use new(refG2).SetInfinity(), refG2Generator(), or an operation that sets
// the receiver.
type refG2 struct {
	x, y *gfP2
	inf  bool
}

// refG2Generator returns the conventional generator of the order-Order subgroup
// of the twist.
func refG2Generator() *refG2 {
	return &refG2{x: newGFp2().Set(g2GenX), y: newGFp2().Set(g2GenY)}
}

func (p *refG2) String() string {
	if p.inf {
		return "refG2(∞)"
	}
	return fmt.Sprintf("refG2(%v, %v)", p.x, p.y)
}

// SetInfinity sets p to the identity element.
func (p *refG2) SetInfinity() *refG2 {
	p.x, p.y, p.inf = newGFp2(), newGFp2(), true
	return p
}

// IsInfinity reports whether p is the identity element.
func (p *refG2) IsInfinity() bool { return p.inf }

func (p *refG2) Set(a *refG2) *refG2 {
	p.x = newGFp2().Set(a.x)
	p.y = newGFp2().Set(a.y)
	p.inf = a.inf
	return p
}

func (p *refG2) Equal(a *refG2) bool {
	if p.inf || a.inf {
		return p.inf == a.inf
	}
	return p.x.Equal(a.x) && p.y.Equal(a.y)
}

// IsOnCurve reports whether p satisfies the twist equation. It does NOT
// check subgroup membership; see Unmarshal.
func (p *refG2) IsOnCurve() bool {
	if p.inf {
		return true
	}
	y2 := newGFp2().Square(p.y)
	x3 := newGFp2().Square(p.x)
	x3.Mul(x3, p.x)
	x3.Add(x3, twistB)
	return y2.Equal(x3)
}

// Neg sets p = −a.
func (p *refG2) Neg(a *refG2) *refG2 {
	if a.inf {
		return p.SetInfinity()
	}
	p.x = newGFp2().Set(a.x)
	p.y = newGFp2().Neg(a.y)
	p.inf = false
	return p
}

// Add sets p = a + b.
func (p *refG2) Add(a, b *refG2) *refG2 {
	if a.inf {
		return p.Set(b)
	}
	if b.inf {
		return p.Set(a)
	}
	if a.x.Equal(b.x) {
		if !a.y.Equal(b.y) || a.y.IsZero() {
			return p.SetInfinity()
		}
		return p.Double(a)
	}
	lambda := newGFp2().Sub(b.y, a.y)
	lambda.Mul(lambda, newGFp2().Invert(newGFp2().Sub(b.x, a.x)))
	x3 := newGFp2().Square(lambda)
	x3.Sub(x3, a.x)
	x3.Sub(x3, b.x)
	y3 := newGFp2().Sub(a.x, x3)
	y3.Mul(y3, lambda)
	y3.Sub(y3, a.y)
	p.x, p.y, p.inf = x3, y3, false
	return p
}

// Double sets p = 2a.
func (p *refG2) Double(a *refG2) *refG2 {
	if a.inf || a.y.IsZero() {
		return p.SetInfinity()
	}
	lambda := newGFp2().Square(a.x)
	lambda.MulScalar(lambda, big.NewInt(3))
	den := newGFp2().Add(a.y, a.y)
	lambda.Mul(lambda, newGFp2().Invert(den))
	x3 := newGFp2().Square(lambda)
	x3.Sub(x3, a.x)
	x3.Sub(x3, a.x)
	y3 := newGFp2().Sub(a.x, x3)
	y3.Mul(y3, lambda)
	y3.Sub(y3, a.y)
	p.x, p.y, p.inf = x3, y3, false
	return p
}

// ScalarMult sets p = k·a. The scalar is reduced mod Order.
func (p *refG2) ScalarMult(a *refG2, k *big.Int) *refG2 {
	kr := new(big.Int).Mod(k, Order)
	acc := new(refG2).SetInfinity()
	base := new(refG2).Set(a)
	for i := kr.BitLen() - 1; i >= 0; i-- {
		acc.Double(acc)
		if kr.Bit(i) == 1 {
			acc.Add(acc, base)
		}
	}
	return p.Set(acc)
}

// ScalarBaseMult sets p = k·G2gen.
func (p *refG2) ScalarBaseMult(k *big.Int) *refG2 {
	return p.ScalarMult(refG2Generator(), k)
}

// g2MarshalledSize is the size of a marshalled refG2 point:
// x.c0 ‖ x.c1 ‖ y.c0 ‖ y.c1, 32 bytes each.
const g2MarshalledSize = 128

// Marshal encodes p. Infinity encodes as all zeros.
func (p *refG2) Marshal() []byte {
	out := make([]byte, g2MarshalledSize)
	if p.inf {
		return out
	}
	p.x.c0.FillBytes(out[0:32])
	p.x.c1.FillBytes(out[32:64])
	p.y.c0.FillBytes(out[64:96])
	p.y.c1.FillBytes(out[96:128])
	return out
}

// Unmarshal decodes a point previously encoded with Marshal. It validates
// both the curve equation and membership in the order-Order subgroup (the
// twist has composite order, so the subgroup check is required for points
// from untrusted sources).
func (p *refG2) Unmarshal(data []byte) error {
	if len(data) != g2MarshalledSize {
		return errors.New("bn254: wrong refG2 encoding length")
	}
	coords := make([]*big.Int, 4)
	allZero := true
	for i := range coords {
		coords[i] = new(big.Int).SetBytes(data[i*32 : (i+1)*32])
		if coords[i].Sign() != 0 {
			allZero = false
		}
		if coords[i].Cmp(P) >= 0 {
			return errors.New("bn254: refG2 coordinate out of range")
		}
	}
	if allZero {
		p.SetInfinity()
		return nil
	}
	p.x = &gfP2{c0: coords[0], c1: coords[1]}
	p.y = &gfP2{c0: coords[2], c1: coords[3]}
	p.inf = false
	if !p.IsOnCurve() {
		return errors.New("bn254: refG2 point not on twist curve")
	}
	if !new(refG2).ScalarMult(p, Order).IsInfinity() {
		return errors.New("bn254: refG2 point not in prime-order subgroup")
	}
	return nil
}
