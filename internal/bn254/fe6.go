package bn254

import "fmt"

// fe6 is an element of Fp6 = Fp2[v]/(v³ − ξ), stored as c0 + c1·v + c2·v²
// with ξ = 9 + i. Limb-backend counterpart of gfP6.
type fe6 struct {
	c0, c1, c2 fe2
}

func (e *fe6) String() string {
	return fmt.Sprintf("(%v + %v·v + %v·v²)", &e.c0, &e.c1, &e.c2)
}

func (e *fe6) Set(a *fe6) *fe6 {
	*e = *a
	return e
}

func (e *fe6) SetZero() *fe6 {
	*e = fe6{}
	return e
}

func (e *fe6) SetOne() *fe6 {
	e.c0.SetOne()
	e.c1.SetZero()
	e.c2.SetZero()
	return e
}

func (e *fe6) IsZero() bool { return e.c0.IsZero() && e.c1.IsZero() && e.c2.IsZero() }

func (e *fe6) IsOne() bool { return e.c0.IsOne() && e.c1.IsZero() && e.c2.IsZero() }

func (e *fe6) Equal(a *fe6) bool {
	return e.c0.Equal(&a.c0) && e.c1.Equal(&a.c1) && e.c2.Equal(&a.c2)
}

func (e *fe6) Add(a, b *fe6) *fe6 {
	e.c0.Add(&a.c0, &b.c0)
	e.c1.Add(&a.c1, &b.c1)
	e.c2.Add(&a.c2, &b.c2)
	return e
}

func (e *fe6) Sub(a, b *fe6) *fe6 {
	e.c0.Sub(&a.c0, &b.c0)
	e.c1.Sub(&a.c1, &b.c1)
	e.c2.Sub(&a.c2, &b.c2)
	return e
}

func (e *fe6) Neg(a *fe6) *fe6 {
	e.c0.Neg(&a.c0)
	e.c1.Neg(&a.c1)
	e.c2.Neg(&a.c2)
	return e
}

// Mul sets e = a·b with the reduction v³ = ξ, using the Karatsuba
// interpolation of Devegili et al. (six Fp2 multiplications):
//
//	v0 = a0b0, v1 = a1b1, v2 = a2b2
//	e0 = v0 + ξ((a1+a2)(b1+b2) − v1 − v2)
//	e1 = (a0+a1)(b0+b1) − v0 − v1 + ξ·v2
//	e2 = (a0+a2)(b0+b2) − v0 − v2 + v1
func (e *fe6) Mul(a, b *fe6) *fe6 {
	var v0, v1, v2, t, sa, sb fe2
	v0.Mul(&a.c0, &b.c0)
	v1.Mul(&a.c1, &b.c1)
	v2.Mul(&a.c2, &b.c2)

	sa.Add(&a.c1, &a.c2)
	sb.Add(&b.c1, &b.c2)
	t.Mul(&sa, &sb)
	t.Sub(&t, &v1)
	t.Sub(&t, &v2)
	t.MulXi(&t)
	var r0 fe2
	r0.Add(&v0, &t)

	sa.Add(&a.c0, &a.c1)
	sb.Add(&b.c0, &b.c1)
	t.Mul(&sa, &sb)
	t.Sub(&t, &v0)
	t.Sub(&t, &v1)
	var xi2 fe2
	xi2.MulXi(&v2)
	var r1 fe2
	r1.Add(&t, &xi2)

	sa.Add(&a.c0, &a.c2)
	sb.Add(&b.c0, &b.c2)
	t.Mul(&sa, &sb)
	t.Sub(&t, &v0)
	t.Sub(&t, &v2)
	var r2 fe2
	r2.Add(&t, &v1)

	e.c0, e.c1, e.c2 = r0, r1, r2
	return e
}

// MulV sets e = a·v: (c0 + c1·v + c2·v²)·v = ξ·c2 + c0·v + c1·v².
func (e *fe6) MulV(a *fe6) *fe6 {
	var t fe2
	t.MulXi(&a.c2)
	e.c2 = a.c1
	e.c1 = a.c0
	e.c0 = t
	return e
}

func (e *fe6) Square(a *fe6) *fe6 {
	return e.Mul(a, a)
}

// mulBy01 sets e = a·(b0 + b1·v) where b0 = cst ∈ Fp (embedded in Fp2) and
// b1 ∈ Fp2 — the sparse shape of Miller-loop lines:
//
//	e0 = cst·a0 + ξ·(b1·a2)
//	e1 = cst·a1 + b1·a0
//	e2 = cst·a2 + b1·a1
func (e *fe6) mulBy01(a *fe6, cst *fe, b1 *fe2) *fe6 {
	var s0, s1, s2, t0, t1, t2 fe2
	s0.MulFe(&a.c0, cst)
	s1.MulFe(&a.c1, cst)
	s2.MulFe(&a.c2, cst)
	t0.Mul(b1, &a.c2)
	t0.MulXi(&t0)
	t1.Mul(b1, &a.c0)
	t2.Mul(b1, &a.c1)
	e.c0.Add(&s0, &t0)
	e.c1.Add(&s1, &t1)
	e.c2.Add(&s2, &t2)
	return e
}

// mulBy1 sets e = a·(b1·v) for b1 ∈ Fp2:
//
//	e0 = ξ·(b1·a2), e1 = b1·a0, e2 = b1·a1
func (e *fe6) mulBy1(a *fe6, b1 *fe2) *fe6 {
	var t0, t1, t2 fe2
	t0.Mul(b1, &a.c2)
	t0.MulXi(&t0)
	t1.Mul(b1, &a.c0)
	t2.Mul(b1, &a.c1)
	e.c0, e.c1, e.c2 = t0, t1, t2
	return e
}

// mulByFe2 sets e = a·b for a scalar b ∈ Fp2 (three Fp2 multiplications) —
// the w-even half of an ate line's sparse product.
func (e *fe6) mulByFe2(a *fe6, b *fe2) *fe6 {
	e.c0.Mul(&a.c0, b)
	e.c1.Mul(&a.c1, b)
	e.c2.Mul(&a.c2, b)
	return e
}

// mulBy01fe2 is mulBy01 with a full Fp2 constant term: e = a·(b0 + b1·v),
// b0, b1 ∈ Fp2 — the w-odd half of an ate line (the ate ladder runs on the
// twist, so its line coefficients are Fp2 values, not Fp):
//
//	e0 = b0·a0 + ξ·(b1·a2)
//	e1 = b0·a1 + b1·a0
//	e2 = b0·a2 + b1·a1
func (e *fe6) mulBy01fe2(a *fe6, b0, b1 *fe2) *fe6 {
	var s0, s1, s2, t0, t1, t2 fe2
	s0.Mul(&a.c0, b0)
	s1.Mul(&a.c1, b0)
	s2.Mul(&a.c2, b0)
	t0.Mul(b1, &a.c2)
	t0.MulXi(&t0)
	t1.Mul(b1, &a.c0)
	t2.Mul(b1, &a.c1)
	e.c0.Add(&s0, &t0)
	e.c1.Add(&s1, &t1)
	e.c2.Add(&s2, &t2)
	return e
}

// Invert sets e = a⁻¹ using the standard formula for cubic extensions:
//
//	A = c0² − ξ·c1·c2,  B = ξ·c2² − c0·c1,  C = c1² − c0·c2
//	F = c0·A + ξ·c1·C + ξ·c2·B
//	a⁻¹ = (A + B·v + C·v²) / F
func (e *fe6) Invert(a *fe6) *fe6 {
	var A, B, C, t fe2
	A.Square(&a.c0)
	t.Mul(&a.c1, &a.c2)
	t.MulXi(&t)
	A.Sub(&A, &t)

	B.Square(&a.c2)
	B.MulXi(&B)
	t.Mul(&a.c0, &a.c1)
	B.Sub(&B, &t)

	C.Square(&a.c1)
	t.Mul(&a.c0, &a.c2)
	C.Sub(&C, &t)

	var F, f1, f2 fe2
	F.Mul(&a.c0, &A)
	f1.Mul(&a.c1, &C)
	f1.MulXi(&f1)
	f2.Mul(&a.c2, &B)
	f2.MulXi(&f2)
	F.Add(&F, &f1)
	F.Add(&F, &f2)
	if F.IsZero() {
		panic("bn254: inversion of zero in Fp6")
	}
	var Finv fe2
	Finv.Invert(&F)

	e.c0.Mul(&A, &Finv)
	e.c1.Mul(&B, &Finv)
	e.c2.Mul(&C, &Finv)
	return e
}
