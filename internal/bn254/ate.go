package bn254

import (
	"math/big"
	"sync"
)

// This file implements the OPTIMAL ATE pairing on BN254:
//
//	AtePair(P, Q) = (f_{λ,Q}(P) · ℓ_{[λ]Q,ψ(Q)}(P) · ℓ_{[λ]Q+ψ(Q),−ψ²(Q)}(P))^((p¹²−1)/r)
//
// with λ = 6u+2 (65 bits, positive for this curve's u). The Miller ladder
// runs over the G2 argument ON THE TWIST in Jacobian coordinates — ~65
// iterations instead of the Tate loop's ~254 — followed by two ψ-Frobenius
// correction steps (the Vercauteren optimal-ate construction; the vector
// (6u+2, 1, −1, 1) satisfies 6u+2 + p − p² + p³ ≡ 0 mod r, verified at
// startup).
//
// Lines live on the twist: untwisting T = (X, Y, Z) to (X·w², Y·w³, Z) and
// substituting into the cleared Tate line polynomials puts every coefficient
// on the w-powers {w⁰, w¹, w³} after dividing by a w³ (doubling) or w²
// (addition) factor — legal because w² and w³ have Fp4/Fp6 norms killed by
// the final exponentiation. The resulting sparse value is
//
//	ℓ = lc·y_P + lb·x_P·w + la·w³,   la, lb, lc ∈ Fp2
//
//	doubling:  la = 3X³ − 2Y²,  lb = −3X²Z²,  lc = 2YZ³
//	addition:  la = R·x_Q − HZ·y_Q,  lb = −R,  lc = HZ
//	           (H = x_Q·Z² − X, R = y_Q·Z³ − Y, over Fp2 on the twist)
//
// — the same shapes as the Tate steps with Fp2 coefficients, absorbed by
// fe12.MulAteLine.
//
// The ate value differs from the Tate value by a FIXED exponent: both are
// reduced pairings on the same groups, so e_ate = e_tate^κ for a constant κ
// depending only on the curve. The Tate path (pairing.go/pairbatch.go) is
// kept untouched as a differential oracle: bilinearity of both loops against
// known scalars pins the relation (ateOracleCheck at first use, plus the
// differential tests).
type ateLineCoeff struct {
	la, lb, lc fe2
	vertical   bool
}

// ateLoop is λ = 6u+2, the optimal-ate Miller loop length, and ateLoopNAF
// its signed non-adjacent form: negating a twist point is one Fp2 negation,
// so the signed ladder trades λ's binary Hamming weight 37 for NAF weight
// 22 — fifteen fewer addition steps (mixed add + line + sparse Fp12
// multiply each) per Miller loop.
var (
	ateLoop    = deriveAteLoop()
	ateLoopNAF = deriveNAF(ateLoop)
)

func deriveAteLoop() *big.Int {
	lam := new(big.Int).Mul(u, big.NewInt(6))
	lam.Add(lam, big.NewInt(2))
	if lam.Sign() <= 0 {
		panic("bn254: 6u+2 is not positive")
	}
	// The optimal-ate vector (λ, 1, −1, 1): λ + p − p² + p³ ≡ 0 (mod r).
	p2 := new(big.Int).Mul(P, P)
	p3 := new(big.Int).Mul(p2, P)
	acc := new(big.Int).Add(lam, P)
	acc.Sub(acc, p2)
	acc.Add(acc, p3)
	if new(big.Int).Mod(acc, Order).Sign() != 0 {
		panic("bn254: optimal-ate vector identity failed")
	}
	return lam
}

// g2Psi applies the twist endomorphism ψ(x, y) = (γ₁²·conj(x), γ₁³·conj(y))
// to an affine twist point (see g2PsiX/g2PsiY in pairbatch.go).
func g2Psi(out, in *G2) {
	if in.inf {
		out.SetInfinity()
		return
	}
	out.x.Conjugate(&in.x)
	out.x.Mul(&out.x, &g2PsiX)
	out.y.Conjugate(&in.y)
	out.y.Mul(&out.y, &g2PsiY)
	out.inf = false
}

// ateDoubleStep fills c with the tangent line at T and doubles T. Line and
// doubling are fused: X², Y², 3X² and 2YZ feed both, saving two Fp2
// squarings and a multiplication per iteration over a line-then-double
// sequence (the doubling itself is the same dbl-2009-l chain as
// g2Jac.double — a differential test pins the ladder).
func ateDoubleStep(c *ateLineCoeff, t *g2Jac) {
	if t.isInfinity() {
		*c = ateLineCoeff{vertical: true}
		return
	}
	c.vertical = false
	var A, B, ZZ, yz2, E, tmp fe2
	A.Square(&t.x)  // X²
	B.Square(&t.y)  // Y²
	ZZ.Square(&t.z) // Z²
	yz2.Mul(&t.y, &t.z)
	yz2.Double(&yz2) // 2YZ
	// la = 3X·A − 2B = 3X³ − 2Y²
	c.la.Mul(&t.x, &A)
	tmp.Double(&c.la)
	c.la.Add(&c.la, &tmp)
	tmp.Double(&B)
	c.la.Sub(&c.la, &tmp)
	// E = 3A; lb = −E·ZZ = −3X²Z²
	E.Double(&A)
	E.Add(&E, &A)
	c.lb.Mul(&E, &ZZ)
	c.lb.Neg(&c.lb)
	// lc = 2YZ·ZZ = 2YZ³
	c.lc.Mul(&yz2, &ZZ)
	// Doubling reusing A, B, E, 2YZ:
	// C = B², D = 2((X+B)² − A − C), F = E²
	// X₃ = F − 2D, Y₃ = E(D − X₃) − 8C, Z₃ = 2YZ
	var C, D, F fe2
	C.Square(&B)
	D.Add(&t.x, &B)
	D.Square(&D)
	D.Sub(&D, &A)
	D.Sub(&D, &C)
	D.Double(&D)
	F.Square(&E)
	var x3, y3 fe2
	x3.Sub(&F, &D)
	x3.Sub(&x3, &D)
	tmp.Sub(&D, &x3)
	y3.Mul(&E, &tmp)
	C.Double(&C)
	C.Double(&C)
	C.Double(&C)
	y3.Sub(&y3, &C)
	t.x, t.y, t.z = x3, y3, yz2
}

// ateAddStep fills c with the chord line through T and q, and sets
// T = T + q (mixed addition on the twist).
func ateAddStep(c *ateLineCoeff, t *g2Jac, q *G2) {
	if t.isInfinity() {
		t.fromAffine(q)
		*c = ateLineCoeff{vertical: true}
		return
	}
	var zz, u2, s2, h, r fe2
	zz.Square(&t.z)
	u2.Mul(&q.x, &zz)
	s2.Mul(&q.y, &t.z)
	s2.Mul(&s2, &zz)
	h.Sub(&u2, &t.x) // H = x_Q·Z² − X
	r.Sub(&s2, &t.y) // R = y_Q·Z³ − Y
	if h.IsZero() {
		if r.IsZero() {
			// T == q: chord degenerates to the tangent. Unreachable for
			// order-r inputs on this ladder; kept for defensive parity
			// with the Tate addStep.
			ateDoubleStep(c, t)
			return
		}
		// T == −q: vertical line, T + q = ∞.
		t.setInfinity()
		*c = ateLineCoeff{vertical: true}
		return
	}
	c.vertical = false
	var hz, tmp fe2
	hz.Mul(&h, &t.z)
	// la = R·x_Q − HZ·y_Q
	c.la.Mul(&r, &q.x)
	tmp.Mul(&hz, &q.y)
	c.la.Sub(&c.la, &tmp)
	c.lb.Neg(&r) // lb = −R
	c.lc = hz    // lc = HZ
	// Mixed addition reusing H and R.
	var h2, h3, v fe2
	h2.Square(&h)
	h3.Mul(&h, &h2)
	v.Mul(&t.x, &h2)
	var x3, y3, z3 fe2
	x3.Square(&r)
	x3.Sub(&x3, &h3)
	tmp.Double(&v)
	x3.Sub(&x3, &tmp)
	tmp.Sub(&v, &x3)
	y3.Mul(&r, &tmp)
	tmp.Mul(&t.y, &h3)
	y3.Sub(&y3, &tmp)
	z3.Mul(&t.z, &h)
	t.x, t.y, t.z = x3, y3, z3
}

// ateApplyLine multiplies the sparse line value ℓ(P) into f for
// P = (xp, yp).
func ateApplyLine(f *fe12, c *ateLineCoeff, xp, yp *fe) {
	if c.vertical {
		return
	}
	var b, cc fe2
	b.MulFe(&c.lb, xp)
	cc.MulFe(&c.lc, yp)
	f.MulAteLine(f, &cc, &b, &c.la)
}

// ateMillerInto computes the unreduced optimal-ate Miller value
// f_{λ,Q}(P)·(correction lines) into f, with lines computed on the fly —
// zero allocations, for the batched scan where Q varies per element.
func ateMillerInto(f *fe12, xp, yp *fe, q *G2) {
	var t g2Jac
	t.fromAffine(q)
	var nq G2
	nq.Neg(q)
	f.SetOne()
	var c ateLineCoeff
	for i := len(ateLoopNAF) - 2; i >= 0; i-- {
		f.Square(f)
		ateDoubleStep(&c, &t)
		ateApplyLine(f, &c, xp, yp)
		switch ateLoopNAF[i] {
		case 1:
			ateAddStep(&c, &t, q)
			ateApplyLine(f, &c, xp, yp)
		case -1:
			ateAddStep(&c, &t, &nq)
			ateApplyLine(f, &c, xp, yp)
		}
	}
	// Correction steps: add ψ(Q), then −ψ²(Q). No squaring between them.
	var q1, nq2 G2
	g2Psi(&q1, q)
	g2Psi(&nq2, &q1)
	nq2.y.Neg(&nq2.y)
	ateAddStep(&c, &t, &q1)
	ateApplyLine(f, &c, xp, yp)
	ateAddStep(&c, &t, &nq2)
	ateApplyLine(f, &c, xp, yp)
}

// g2AteLines runs the optimal-ate ladder on a fixed Q once and returns the
// line coefficients in evaluation order (including the two correction
// steps), for replay against many G1 points — the encrypt-side pattern,
// where the aggregated master public key is the fixed argument.
func g2AteLines(q *G2) []ateLineCoeff {
	coeffs := make([]ateLineCoeff, 0, len(ateLoopNAF)+len(ateLoopNAF)/2+2)
	var t g2Jac
	t.fromAffine(q)
	var nq G2
	nq.Neg(q)
	var c ateLineCoeff
	for i := len(ateLoopNAF) - 2; i >= 0; i-- {
		ateDoubleStep(&c, &t)
		coeffs = append(coeffs, c)
		switch ateLoopNAF[i] {
		case 1:
			ateAddStep(&c, &t, q)
			coeffs = append(coeffs, c)
		case -1:
			ateAddStep(&c, &t, &nq)
			coeffs = append(coeffs, c)
		}
	}
	var q1, nq2 G2
	g2Psi(&q1, q)
	g2Psi(&nq2, &q1)
	nq2.y.Neg(&nq2.y)
	ateAddStep(&c, &t, &q1)
	coeffs = append(coeffs, c)
	ateAddStep(&c, &t, &nq2)
	coeffs = append(coeffs, c)
	return coeffs
}

// ateEvalLinesInto replays a fixed-Q ate ladder against P = (xp, yp).
func ateEvalLinesInto(f *fe12, coeffs []ateLineCoeff, xp, yp *fe) {
	f.SetOne()
	k := 0
	for i := len(ateLoopNAF) - 2; i >= 0; i-- {
		f.Square(f)
		ateApplyLine(f, &coeffs[k], xp, yp)
		k++
		if ateLoopNAF[i] != 0 {
			ateApplyLine(f, &coeffs[k], xp, yp)
			k++
		}
	}
	// Correction lines.
	ateApplyLine(f, &coeffs[k], xp, yp)
	ateApplyLine(f, &coeffs[k+1], xp, yp)
}

// atePairValue is AtePair without the init-time oracle check (the check
// itself uses it).
func atePairValue(p *G1, q *G2) *GT {
	if p.IsInfinity() || q.IsInfinity() {
		return GTOne()
	}
	var f fe12
	ateMillerInto(&f, &p.x, &p.y, q)
	return &GT{e: *finalExp(&f)}
}

// ateOracleOnce runs a one-time differential smoke against the retained
// Tate oracle on first use of any ate entry point: both reduced pairings
// must be nontrivial and bilinear on known scalars (AtePair(2P, 3Q) =
// AtePair(P, Q)⁶ and the same for Pair). Every production v2 batch is
// additionally cross-checked element-wise by the differential tests; this
// startup check catches a miscompiled or misderived ladder before any
// derived key leaves the package.
var ateOracleOnce sync.Once

func ateOracleCheck() {
	ateOracleOnce.Do(func() {
		p, q := G1Generator(), G2Generator()
		var p2 G1
		var q3 G2
		p2.ScalarMult(p, big.NewInt(2))
		q3.ScalarMult(q, big.NewInt(3))
		six := big.NewInt(6)
		gA := atePairValue(p, q)
		if gA.IsOne() {
			panic("bn254: ate pairing is degenerate on the generators")
		}
		if !atePairValue(&p2, &q3).Equal(new(GT).Exp(gA, six)) {
			panic("bn254: ate pairing failed the bilinearity smoke test")
		}
		gT := Pair(p, q)
		if !Pair(&p2, &q3).Equal(new(GT).Exp(gT, six)) {
			panic("bn254: tate oracle failed the bilinearity smoke test")
		}
	})
}

// AtePair computes the reduced optimal-ate pairing a(p, q) ∈ GT. It is a
// bilinear non-degenerate pairing on the same groups as Pair, related to it
// by a fixed exponent: AtePair(p, q) = Pair(p, q)^κ for a curve constant κ.
// Values (and therefore any keys derived from them) are NOT interchangeable
// with Pair's — call sites pick one per negotiated PairingVersion.
func AtePair(p *G1, q *G2) *GT {
	ateOracleCheck()
	return atePairValue(p, q)
}

// g2JacPsi applies ψ to a Jacobian twist point: conjugation is a field
// automorphism, so it distributes over the Jacobian equivalence class:
// (X, Y, Z) ↦ (γ₁²·conj(X), γ₁³·conj(Y), conj(Z)).
func g2JacPsi(out, in *g2Jac) {
	out.x.Conjugate(&in.x)
	out.x.Mul(&out.x, &g2PsiX)
	out.y.Conjugate(&in.y)
	out.y.Mul(&out.y, &g2PsiY)
	out.z.Conjugate(&in.z)
}

// add sets j = a + b (full Jacobian addition with all degenerate branches).
func (j *g2Jac) add(a, b *g2Jac) {
	if a.isInfinity() {
		*j = *b
		return
	}
	if b.isInfinity() {
		*j = *a
		return
	}
	var z1z1, z2z2, u1, u2, s1, s2, h, r fe2
	z1z1.Square(&a.z)
	z2z2.Square(&b.z)
	u1.Mul(&a.x, &z2z2)
	u2.Mul(&b.x, &z1z1)
	s1.Mul(&a.y, &b.z)
	s1.Mul(&s1, &z2z2)
	s2.Mul(&b.y, &a.z)
	s2.Mul(&s2, &z1z1)
	h.Sub(&u2, &u1)
	r.Sub(&s2, &s1)
	if h.IsZero() {
		if r.IsZero() {
			j.double(a)
			return
		}
		j.setInfinity()
		return
	}
	var h2, h3, v fe2
	h2.Square(&h)
	h3.Mul(&h, &h2)
	v.Mul(&u1, &h2)
	var x3, y3, z3, t fe2
	x3.Square(&r)
	x3.Sub(&x3, &h3)
	t.Double(&v)
	x3.Sub(&x3, &t)
	t.Sub(&v, &x3)
	y3.Mul(&r, &t)
	t.Mul(&s1, &h3)
	y3.Sub(&y3, &t)
	z3.Mul(&a.z, &b.z)
	z3.Mul(&z3, &h)
	j.x, j.y, j.z = x3, y3, z3
}

// gsCheckVector verifies at startup that the Galbraith–Scott short-vector
// subgroup criterion used by isInSubgroupGS vanishes on the subgroup:
// with s = 6u² the ψ-eigenvalue, (u+1) + u·s + u·s² − 2u·s³ ≡ 0 (mod r).
var _ = deriveGSCheckVector()

func deriveGSCheckVector() struct{} {
	s := new(big.Int).Mod(sixU2, Order)
	s2 := new(big.Int).Mod(new(big.Int).Mul(s, s), Order)
	s3 := new(big.Int).Mod(new(big.Int).Mul(s2, s), Order)
	acc := new(big.Int).Add(u, big.NewInt(1))
	acc.Add(acc, new(big.Int).Mul(u, s))
	acc.Add(acc, new(big.Int).Mul(u, s2))
	acc.Sub(acc, new(big.Int).Mul(new(big.Int).Mul(u, big.NewInt(2)), s3))
	if new(big.Int).Mod(acc, Order).Sign() != 0 {
		panic("bn254: Galbraith–Scott subgroup-check vector identity failed")
	}
	return struct{}{}
}

// isInSubgroupGS reports subgroup membership via the Galbraith–Scott short
// vector (El Housni–Guillevic–Piellard, eprint 2022/348; the form adopted
// by gnark-crypto for BN254):
//
//	[u+1]Q + ψ([u]Q) + ψ²([u]Q) − ψ³([2u]Q) == ∞
//
// One 63-bit ladder plus three ψ maps and four Jacobian additions — about
// half the cost of the 127-bit ψ-eigenvalue ladder (isInSubgroupPsi), which
// stays as the v1 path and the differential oracle for this check.
func (p *G2) isInSubgroupGS() bool {
	if p.inf {
		return true
	}
	// uq = [u]Q, walking the signed recoding of u (negating an affine
	// point is one Fp2 negation, NAF weight 24 vs binary weight 28).
	var np G2
	np.Neg(p)
	var uq g2Jac
	uq.fromAffine(p)
	for i := len(uNAF) - 2; i >= 0; i-- {
		uq.double(&uq)
		switch uNAF[i] {
		case 1:
			uq.addMixed(&uq, p)
		case -1:
			uq.addMixed(&uq, &np)
		}
	}
	// acc = [u+1]Q + ψ([u]Q) + ψ²([u]Q) − ψ³([2u]Q).
	var acc, t g2Jac
	acc.addMixed(&uq, p) // [u+1]Q
	g2JacPsi(&t, &uq)    // ψ([u]Q)
	acc.add(&acc, &t)
	g2JacPsi(&t, &t) // ψ²([u]Q)
	acc.add(&acc, &t)
	var u2q g2Jac
	u2q.double(&uq)    // [2u]Q
	g2JacPsi(&t, &u2q) // ψ³([2u]Q)
	g2JacPsi(&t, &t)
	g2JacPsi(&t, &t)
	t.y.Neg(&t.y)
	acc.add(&acc, &t)
	return acc.isInfinity()
}

// AtePrecomputedG1 is the fixed-G1 handle for the v2 mailbox scan. The ate
// ladder runs over the VARYING G2 argument, so — unlike Tate's
// PrecomputedG1 — there are no lines to replay for a fixed P: the whole win
// is the ~65-iteration loop (vs ~254) plus the short subgroup check. The
// cacheable state is just P's evaluation coordinates; the type exists so
// key call sites (identity private keys) keep the precompute-once,
// erase-once discipline of the v1 path.
type AtePrecomputedG1 struct {
	xp, yp fe
	inf    bool
}

// AtePrecomputeG1 prepares p for repeated v2 pairing.
func AtePrecomputeG1(p *G1) *AtePrecomputedG1 {
	if p.IsInfinity() {
		return &AtePrecomputedG1{inf: true}
	}
	ateOracleCheck()
	return &AtePrecomputedG1{xp: p.x, yp: p.y}
}

// Erase scrubs the cached coordinates. They determine the fixed point, so
// key-erasure call sites must scrub them like the key itself. An erased
// precomputation pairs to the identity, like the precomputation of
// infinity.
func (pc *AtePrecomputedG1) Erase() {
	pc.xp = fe{}
	pc.yp = fe{}
	pc.inf = true
}

// Pair computes AtePair(p, q) for the precomputed p.
func (pc *AtePrecomputedG1) Pair(q *G2) *GT {
	if pc.inf || q.IsInfinity() {
		return GTOne()
	}
	var f fe12
	ateMillerInto(&f, &pc.xp, &pc.yp, q)
	return &GT{e: *finalExp(&f)}
}

// PairBatch computes AtePair(p, Qᵢ) for a batch of wire-encoded G2 points —
// the v2 counterpart of PrecomputedG1.PairBatch, with the identical
// four-phase structure and acceptance behavior (ok[i] is false exactly when
// G2.Unmarshal would reject raws[i]):
//
//  1. decode + curve check + Galbraith–Scott short-vector subgroup check;
//  2. one ~65-iteration ate Miller loop per element, lines on the fly;
//  3. easy part of the final exponentiation with ONE shared Fp12 inversion
//     (invalid/infinity slots are masked before the prefix chain — the
//     batch-inversion invariant of batch.go);
//  4. decomposed hard part per element.
func (pc *AtePrecomputedG1) PairBatch(raws [][]byte, dst []GT, ok []bool, scratch *PairScratch) {
	n := len(raws)
	if len(dst) != n || len(ok) != n {
		panic("bn254: PairBatch slice length mismatch")
	}
	ateOracleCheck()
	if scratch == nil {
		scratch = new(PairScratch)
	}
	scratch.grow(n)

	// Phase 1: decode + curve + GS subgroup checks.
	var q G2
	for i := range raws {
		st := g2DecodeBatch(&q, raws[i], true)
		scratch.state[i] = st
		if st == batchPoint {
			scratch.qx[i] = q.x
			scratch.qy[i] = q.y
		}
	}

	if pc.inf {
		for i := range raws {
			ok[i] = scratch.state[i] != batchInvalid
			dst[i].e.SetOne()
		}
		return
	}

	// Phase 2: ate Miller loops (lines on the fly, no allocation).
	for i := range raws {
		if scratch.state[i] == batchPoint {
			q.x = scratch.qx[i]
			q.y = scratch.qy[i]
			q.inf = false
			ateMillerInto(&dst[i].e, &pc.xp, &pc.yp, &q)
		}
	}

	// Phase 3: shared-inversion easy part (identical to the Tate batch).
	var acc fe12
	acc.SetOne()
	for i := range raws {
		if scratch.state[i] != batchPoint {
			continue
		}
		scratch.pre[i] = acc
		acc.Mul(&acc, &dst[i].e)
	}
	var inv fe12
	inv.Invert(&acc)
	for i := n - 1; i >= 0; i-- {
		if scratch.state[i] != batchPoint {
			continue
		}
		var fInv, g fe12
		fInv.Mul(&inv, &scratch.pre[i])
		inv.Mul(&inv, &dst[i].e)
		g.Conjugate(&dst[i].e)
		g.Mul(&g, &fInv) // f^(p⁶−1)
		var t fe12
		t.FrobeniusP2(&g)
		dst[i].e.Mul(&t, &g) // ^(p²+1): now cyclotomic
	}

	// Phase 4: decomposed hard part per element.
	for i := range raws {
		switch scratch.state[i] {
		case batchPoint:
			ok[i] = true
			finalExpHardDecomp(&dst[i].e, &dst[i].e)
		case batchInf:
			ok[i] = true
			dst[i].e.SetOne()
		default:
			ok[i] = false
			dst[i].e.SetOne()
		}
	}
}

// AtePrecomputedG2 caches the full ate line ladder of a fixed G2 point —
// the encrypt-side pattern, where the aggregated master public key is
// paired against a fresh G1 element per sealed message. Unlike the decrypt
// side, the fixed argument here IS the laddered one, so precompute recovers
// the line-replay win on top of the short loop.
type AtePrecomputedG2 struct {
	coeffs []ateLineCoeff
	inf    bool
}

// AtePrecomputeG2 runs the ate ladder for q once, for repeated v2 pairing
// against many G1 points.
func AtePrecomputeG2(q *G2) *AtePrecomputedG2 {
	if q.IsInfinity() {
		return &AtePrecomputedG2{inf: true}
	}
	ateOracleCheck()
	return &AtePrecomputedG2{coeffs: g2AteLines(q)}
}

// Pair computes AtePair(p, q) for the precomputed q.
func (pc *AtePrecomputedG2) Pair(p *G1) *GT {
	if pc.inf || p.IsInfinity() {
		return GTOne()
	}
	var f fe12
	ateEvalLinesInto(&f, pc.coeffs, &p.x, &p.y)
	return &GT{e: *finalExp(&f)}
}
