package bn254

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

// quickCfg bounds the number of property-test iterations so that the
// big.Int-heavy arithmetic stays fast under `go test`.
var quickCfg = &quick.Config{MaxCount: 20}

func randGFp2(t testing.TB) *gfP2 {
	t.Helper()
	c0, err := randFieldElement(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := randFieldElement(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return &gfP2{c0: c0, c1: c1}
}

func randGFp6(t testing.TB) *gfP6 {
	t.Helper()
	return &gfP6{c0: randGFp2(t), c1: randGFp2(t), c2: randGFp2(t)}
}

func randGFp12(t testing.TB) *gfP12 {
	t.Helper()
	return &gfP12{c0: randGFp6(t), c1: randGFp6(t)}
}

func TestFpSqrt(t *testing.T) {
	for i := 0; i < 30; i++ {
		a, err := randFieldElement(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		sq := fpSquare(a)
		r, ok := fpSqrt(sq)
		if !ok {
			t.Fatalf("square %v reported as non-residue", sq)
		}
		if fpSquare(r).Cmp(sq) != 0 {
			t.Fatalf("fpSqrt returned a non-root")
		}
	}
}

func TestFpSqrtNonResidue(t *testing.T) {
	// −1 is a non-residue mod P because P ≡ 3 (mod 4).
	if _, ok := fpSqrt(fpNeg(big.NewInt(1))); ok {
		t.Fatal("-1 must not have a square root mod P")
	}
}

func TestGFp2FieldLaws(t *testing.T) {
	mulComm := func() bool {
		a, b := randGFp2(t), randGFp2(t)
		return newGFp2().Mul(a, b).Equal(newGFp2().Mul(b, a))
	}
	mulAssoc := func() bool {
		a, b, c := randGFp2(t), randGFp2(t), randGFp2(t)
		l := newGFp2().Mul(newGFp2().Mul(a, b), c)
		r := newGFp2().Mul(a, newGFp2().Mul(b, c))
		return l.Equal(r)
	}
	distrib := func() bool {
		a, b, c := randGFp2(t), randGFp2(t), randGFp2(t)
		l := newGFp2().Mul(a, newGFp2().Add(b, c))
		r := newGFp2().Add(newGFp2().Mul(a, b), newGFp2().Mul(a, c))
		return l.Equal(r)
	}
	inverse := func() bool {
		a := randGFp2(t)
		if a.IsZero() {
			return true
		}
		return newGFp2().Mul(a, newGFp2().Invert(a)).IsOne()
	}
	square := func() bool {
		a := randGFp2(t)
		return newGFp2().Square(a).Equal(newGFp2().Mul(a, a))
	}
	for name, prop := range map[string]func() bool{
		"mul-commutative": mulComm,
		"mul-associative": mulAssoc,
		"distributive":    distrib,
		"inverse":         inverse,
		"square-is-mul":   square,
	} {
		if err := quick.Check(prop, quickCfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestGFp2SqrtRoundTrip(t *testing.T) {
	for i := 0; i < 10; i++ {
		a := randGFp2(t)
		sq := newGFp2().Square(a)
		r := newGFp2()
		if !r.Sqrt(sq) {
			t.Fatal("square of field element reported as non-square")
		}
		if !newGFp2().Square(r).Equal(sq) {
			t.Fatal("Sqrt returned a non-root")
		}
	}
}

func TestGFp2MulXi(t *testing.T) {
	xi := newGFp2().SetInts(big.NewInt(9), big.NewInt(1))
	for i := 0; i < 10; i++ {
		a := randGFp2(t)
		if !newGFp2().MulXi(a).Equal(newGFp2().Mul(a, xi)) {
			t.Fatal("MulXi disagrees with generic multiplication by ξ")
		}
	}
}

func TestGFp6FieldLaws(t *testing.T) {
	mulAssoc := func() bool {
		a, b, c := randGFp6(t), randGFp6(t), randGFp6(t)
		l := newGFp6().Mul(newGFp6().Mul(a, b), c)
		r := newGFp6().Mul(a, newGFp6().Mul(b, c))
		return l.Equal(r)
	}
	inverse := func() bool {
		a := randGFp6(t)
		if a.IsZero() {
			return true
		}
		return newGFp6().Mul(a, newGFp6().Invert(a)).IsOne()
	}
	distrib := func() bool {
		a, b, c := randGFp6(t), randGFp6(t), randGFp6(t)
		l := newGFp6().Mul(a, newGFp6().Add(b, c))
		r := newGFp6().Add(newGFp6().Mul(a, b), newGFp6().Mul(a, c))
		return l.Equal(r)
	}
	for name, prop := range map[string]func() bool{
		"mul-associative": mulAssoc,
		"inverse":         inverse,
		"distributive":    distrib,
	} {
		if err := quick.Check(prop, quickCfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestGFp6MulV(t *testing.T) {
	v := newGFp6()
	v.c1.SetOne() // the element v
	for i := 0; i < 10; i++ {
		a := randGFp6(t)
		if !newGFp6().MulV(a).Equal(newGFp6().Mul(a, v)) {
			t.Fatal("MulV disagrees with generic multiplication by v")
		}
	}
}

func TestGFp6VCubedIsXi(t *testing.T) {
	v := newGFp6()
	v.c1.SetOne()
	v3 := newGFp6().Mul(newGFp6().Mul(v, v), v)
	want := newGFp6()
	want.c0.SetInts(big.NewInt(9), big.NewInt(1))
	if !v3.Equal(want) {
		t.Fatalf("v³ = %v, want ξ", v3)
	}
}

func TestGFp12FieldLaws(t *testing.T) {
	mulAssoc := func() bool {
		a, b, c := randGFp12(t), randGFp12(t), randGFp12(t)
		l := newGFp12().Mul(newGFp12().Mul(a, b), c)
		r := newGFp12().Mul(a, newGFp12().Mul(b, c))
		return l.Equal(r)
	}
	inverse := func() bool {
		a := randGFp12(t)
		if a.IsZero() {
			return true
		}
		return newGFp12().Mul(a, newGFp12().Invert(a)).IsOne()
	}
	for name, prop := range map[string]func() bool{
		"mul-associative": mulAssoc,
		"inverse":         inverse,
	} {
		if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestGFp12WSquaredIsV(t *testing.T) {
	w := newGFp12()
	w.c1.SetOne() // the element w
	w2 := newGFp12().Mul(w, w)
	want := newGFp12()
	want.c0.c1.SetOne() // the element v
	if !w2.Equal(want) {
		t.Fatalf("w² != v")
	}
}

func TestGFp12ExpLaws(t *testing.T) {
	a := randGFp12(t)
	x, _ := RandomScalar(rand.Reader)
	y, _ := RandomScalar(rand.Reader)
	// a^x · a^y == a^(x+y)
	l := newGFp12().Mul(newGFp12().Exp(a, x), newGFp12().Exp(a, y))
	r := newGFp12().Exp(a, new(big.Int).Add(x, y))
	if !l.Equal(r) {
		t.Fatal("exponent addition law failed")
	}
}
