package bn254

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"
)

func randScalar(t testing.TB) *big.Int {
	t.Helper()
	k, err := RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestG1GeneratorOnCurve(t *testing.T) {
	if !G1Generator().IsOnCurve() {
		t.Fatal("G1 generator not on curve")
	}
}

func TestG1Order(t *testing.T) {
	if !new(G1).ScalarMult(G1Generator(), Order).IsInfinity() {
		t.Fatal("Order·G1 != ∞")
	}
}

func TestG1GroupLaws(t *testing.T) {
	g := G1Generator()
	a, b := randScalar(t), randScalar(t)
	pa := new(G1).ScalarMult(g, a)
	pb := new(G1).ScalarMult(g, b)

	// commutativity
	if !new(G1).Add(pa, pb).Equal(new(G1).Add(pb, pa)) {
		t.Fatal("G1 addition not commutative")
	}
	// aG + bG == (a+b)G
	sum := new(G1).Add(pa, pb)
	want := new(G1).ScalarMult(g, new(big.Int).Add(a, b))
	if !sum.Equal(want) {
		t.Fatal("aG + bG != (a+b)G")
	}
	// P + (−P) == ∞
	if !new(G1).Add(pa, new(G1).Neg(pa)).IsInfinity() {
		t.Fatal("P + (−P) != ∞")
	}
	// P + ∞ == P
	if !new(G1).Add(pa, new(G1).SetInfinity()).Equal(pa) {
		t.Fatal("P + ∞ != P")
	}
	// 2P == P + P
	if !new(G1).Double(pa).Equal(new(G1).Add(pa, pa)) {
		t.Fatal("Double != Add(P, P)")
	}
	// results stay on the curve
	if !sum.IsOnCurve() {
		t.Fatal("sum left the curve")
	}
}

func TestG1MarshalRoundTrip(t *testing.T) {
	p := new(G1).ScalarBaseMult(randScalar(t))
	q := new(G1)
	if err := q.Unmarshal(p.Marshal()); err != nil {
		t.Fatal(err)
	}
	if !p.Equal(q) {
		t.Fatal("G1 marshal round-trip failed")
	}

	inf := new(G1).SetInfinity()
	q2 := new(G1)
	if err := q2.Unmarshal(inf.Marshal()); err != nil {
		t.Fatal(err)
	}
	if !q2.IsInfinity() {
		t.Fatal("infinity round-trip failed")
	}
}

func TestG1UnmarshalRejectsBadPoints(t *testing.T) {
	bad := make([]byte, g1MarshalledSize)
	bad[31] = 5 // x=5, y=0: not on curve
	if err := new(G1).Unmarshal(bad); err == nil {
		t.Fatal("accepted off-curve point")
	}
	if err := new(G1).Unmarshal(bad[:10]); err == nil {
		t.Fatal("accepted short encoding")
	}
	// coordinate ≥ P
	tooBig := make([]byte, g1MarshalledSize)
	P.FillBytes(tooBig[:32])
	tooBig[63] = 2
	if err := new(G1).Unmarshal(tooBig); err == nil {
		t.Fatal("accepted out-of-range coordinate")
	}
}

func TestHashToG1(t *testing.T) {
	p := HashToG1("test", []byte("alice@example.org"))
	if !p.IsOnCurve() || p.IsInfinity() {
		t.Fatal("hash produced invalid point")
	}
	q := HashToG1("test", []byte("alice@example.org"))
	if !p.Equal(q) {
		t.Fatal("hash not deterministic")
	}
	r := HashToG1("test", []byte("bob@example.org"))
	if p.Equal(r) {
		t.Fatal("distinct messages hashed to same point")
	}
	s := HashToG1("other-domain", []byte("alice@example.org"))
	if p.Equal(s) {
		t.Fatal("domain separation failed")
	}
}

func TestG2GeneratorOnCurve(t *testing.T) {
	if !G2Generator().IsOnCurve() {
		t.Fatal("G2 generator not on twist")
	}
}

func TestG2Order(t *testing.T) {
	if !new(G2).ScalarMult(G2Generator(), Order).IsInfinity() {
		t.Fatal("Order·G2 != ∞")
	}
}

func TestG2GroupLaws(t *testing.T) {
	g := G2Generator()
	a, b := randScalar(t), randScalar(t)
	pa := new(G2).ScalarMult(g, a)
	pb := new(G2).ScalarMult(g, b)

	if !new(G2).Add(pa, pb).Equal(new(G2).Add(pb, pa)) {
		t.Fatal("G2 addition not commutative")
	}
	sum := new(G2).Add(pa, pb)
	want := new(G2).ScalarMult(g, new(big.Int).Add(a, b))
	if !sum.Equal(want) {
		t.Fatal("aG + bG != (a+b)G in G2")
	}
	if !new(G2).Add(pa, new(G2).Neg(pa)).IsInfinity() {
		t.Fatal("P + (−P) != ∞ in G2")
	}
	if !sum.IsOnCurve() {
		t.Fatal("G2 sum left the twist")
	}
}

func TestG2MarshalRoundTrip(t *testing.T) {
	p := new(G2).ScalarBaseMult(randScalar(t))
	q := new(G2)
	if err := q.Unmarshal(p.Marshal()); err != nil {
		t.Fatal(err)
	}
	if !p.Equal(q) {
		t.Fatal("G2 marshal round-trip failed")
	}
	if !bytes.Equal(p.Marshal(), q.Marshal()) {
		t.Fatal("re-marshal mismatch")
	}
}

func TestG2UnmarshalRejectsBadPoints(t *testing.T) {
	bad := make([]byte, g2MarshalledSize)
	bad[31] = 7
	if err := new(G2).Unmarshal(bad); err == nil {
		t.Fatal("accepted off-twist point")
	}
}

func TestGTMarshalRoundTrip(t *testing.T) {
	g := Pair(G1Generator(), G2Generator())
	h := new(GT)
	if err := h.Unmarshal(g.Marshal()); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("GT marshal round-trip failed")
	}
}
