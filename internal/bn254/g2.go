package bn254

import (
	"errors"
	"fmt"
	"math/big"
)

// feTwistB is the constant 3/ξ of the sextic twist E'(Fp2): y² = x³ + 3/ξ,
// in the Montgomery domain; feG2GenX/Y are the generator coordinates.
// All derived at startup from the shared decimal constants.
var feTwistB, feG2GenX, feG2GenY = deriveG2Constants()

func deriveG2Constants() (b, gx, gy fe2) {
	xi := fe2FromBig(big.NewInt(9), big.NewInt(1))
	b.Invert(&xi)
	b.MulFe(&b, &feCurveB)
	gx = fe2FromBig(g2GenXA, g2GenXB)
	gy = fe2FromBig(g2GenYA, g2GenYB)
	return
}

// init validates the derived limb-backend generator the same way the
// reference backend's init validates its copy: a mistyped constant or a
// broken twistB derivation must crash at startup, not ship invalid keys.
func init() {
	gen := G2Generator()
	if !gen.IsOnCurve() {
		panic("bn254: G2 generator is not on the twist curve")
	}
	if !gen.isInSubgroup() {
		panic("bn254: G2 generator does not have order Order")
	}
}

// G2 is a point on the sextic twist E'(Fp2): y² = x³ + 3/ξ, stored affine
// on the Montgomery limb backend, restricted to the order-Order subgroup.
// The zero value is NOT valid; use new(G2).SetInfinity(), G2Generator(),
// or an operation that sets the receiver.
type G2 struct {
	x, y fe2
	inf  bool
}

// G2Generator returns the conventional generator of the order-Order subgroup
// of the twist.
func G2Generator() *G2 {
	return &G2{x: feG2GenX, y: feG2GenY}
}

func (p *G2) String() string {
	if p.inf {
		return "G2(∞)"
	}
	return fmt.Sprintf("G2(%v, %v)", &p.x, &p.y)
}

// SetInfinity sets p to the identity element.
func (p *G2) SetInfinity() *G2 {
	*p = G2{inf: true}
	return p
}

// IsInfinity reports whether p is the identity element.
func (p *G2) IsInfinity() bool { return p.inf }

func (p *G2) Set(a *G2) *G2 {
	*p = *a
	return p
}

func (p *G2) Equal(a *G2) bool {
	if p.inf || a.inf {
		return p.inf == a.inf
	}
	return p.x.Equal(&a.x) && p.y.Equal(&a.y)
}

// IsOnCurve reports whether p satisfies the twist equation. It does NOT
// check subgroup membership; see Unmarshal.
func (p *G2) IsOnCurve() bool {
	if p.inf {
		return true
	}
	var y2, x3 fe2
	y2.Square(&p.y)
	x3.Square(&p.x)
	x3.Mul(&x3, &p.x)
	x3.Add(&x3, &feTwistB)
	return y2.Equal(&x3)
}

// Neg sets p = −a.
func (p *G2) Neg(a *G2) *G2 {
	if a.inf {
		return p.SetInfinity()
	}
	p.x = a.x
	p.y.Neg(&a.y)
	p.inf = false
	return p
}

// Add sets p = a + b (affine formulas; the scalar-mult path below is the
// inversion-free Jacobian ladder).
func (p *G2) Add(a, b *G2) *G2 {
	if a.inf {
		return p.Set(b)
	}
	if b.inf {
		return p.Set(a)
	}
	if a.x.Equal(&b.x) {
		if !a.y.Equal(&b.y) || a.y.IsZero() {
			return p.SetInfinity()
		}
		return p.Double(a)
	}
	var lambda, den fe2
	lambda.Sub(&b.y, &a.y)
	den.Sub(&b.x, &a.x)
	den.Invert(&den)
	lambda.Mul(&lambda, &den)
	var x3, y3 fe2
	x3.Square(&lambda)
	x3.Sub(&x3, &a.x)
	x3.Sub(&x3, &b.x)
	y3.Sub(&a.x, &x3)
	y3.Mul(&y3, &lambda)
	y3.Sub(&y3, &a.y)
	p.x, p.y, p.inf = x3, y3, false
	return p
}

// Double sets p = 2a.
func (p *G2) Double(a *G2) *G2 {
	if a.inf || a.y.IsZero() {
		return p.SetInfinity()
	}
	var lambda, den fe2
	lambda.Square(&a.x)
	var three fe2
	three.Double(&lambda)
	lambda.Add(&three, &lambda)
	den.Double(&a.y)
	den.Invert(&den)
	lambda.Mul(&lambda, &den)
	var x3, y3 fe2
	x3.Square(&lambda)
	x3.Sub(&x3, &a.x)
	x3.Sub(&x3, &a.x)
	y3.Sub(&a.x, &x3)
	y3.Mul(&y3, &lambda)
	y3.Sub(&y3, &a.y)
	p.x, p.y, p.inf = x3, y3, false
	return p
}

// g2Jac is a twist point in Jacobian coordinates; z = 0 encodes infinity.
type g2Jac struct {
	x, y, z fe2
}

func (j *g2Jac) setInfinity() { *j = g2Jac{} }

func (j *g2Jac) isInfinity() bool { return j.z.IsZero() }

func (j *g2Jac) fromAffine(p *G2) {
	if p.inf {
		j.setInfinity()
		return
	}
	j.x, j.y = p.x, p.y
	j.z.SetOne()
}

func (j *g2Jac) toAffine(p *G2) {
	if j.isInfinity() {
		p.SetInfinity()
		return
	}
	var zInv, zInv2, zInv3 fe2
	zInv.Invert(&j.z)
	zInv2.Square(&zInv)
	zInv3.Mul(&zInv2, &zInv)
	p.x.Mul(&j.x, &zInv2)
	p.y.Mul(&j.y, &zInv3)
	p.inf = false
}

func (j *g2Jac) double(a *g2Jac) {
	if a.isInfinity() {
		j.setInfinity()
		return
	}
	var A, B, C, D, E, F fe2
	A.Square(&a.x)
	B.Square(&a.y)
	C.Square(&B)
	D.Add(&a.x, &B)
	D.Square(&D)
	D.Sub(&D, &A)
	D.Sub(&D, &C)
	D.Double(&D)
	E.Double(&A)
	E.Add(&E, &A)
	F.Square(&E)
	var x3, y3, z3, t fe2
	t.Double(&D)
	x3.Sub(&F, &t)
	t.Sub(&D, &x3)
	y3.Mul(&E, &t)
	C.Double(&C)
	C.Double(&C)
	C.Double(&C)
	y3.Sub(&y3, &C)
	z3.Mul(&a.y, &a.z)
	z3.Double(&z3)
	j.x, j.y, j.z = x3, y3, z3
}

func (j *g2Jac) addMixed(a *g2Jac, q *G2) {
	if q.inf {
		*j = *a
		return
	}
	if a.isInfinity() {
		j.fromAffine(q)
		return
	}
	var zz, u2, s2, h, r fe2
	zz.Square(&a.z)
	u2.Mul(&q.x, &zz)
	s2.Mul(&q.y, &a.z)
	s2.Mul(&s2, &zz)
	h.Sub(&u2, &a.x)
	r.Sub(&s2, &a.y)
	if h.IsZero() {
		if r.IsZero() {
			j.double(a)
			return
		}
		j.setInfinity()
		return
	}
	var h2, h3, v fe2
	h2.Square(&h)
	h3.Mul(&h, &h2)
	v.Mul(&a.x, &h2)
	var x3, y3, z3, t fe2
	x3.Square(&r)
	x3.Sub(&x3, &h3)
	t.Double(&v)
	x3.Sub(&x3, &t)
	t.Sub(&v, &x3)
	y3.Mul(&r, &t)
	t.Mul(&a.y, &h3)
	y3.Sub(&y3, &t)
	z3.Mul(&a.z, &h)
	j.x, j.y, j.z = x3, y3, z3
}

// ScalarMult sets p = k·a. The scalar is reduced mod Order.
func (p *G2) ScalarMult(a *G2, k *big.Int) *G2 {
	kr := new(big.Int).Mod(k, Order)
	var acc g2Jac
	acc.setInfinity()
	for i := kr.BitLen() - 1; i >= 0; i-- {
		acc.double(&acc)
		if kr.Bit(i) == 1 {
			acc.addMixed(&acc, a)
		}
	}
	acc.toAffine(p)
	return p
}

// ScalarBaseMult sets p = k·G2gen, using the fixed-base comb table (see
// comb.go). Results are bit-identical to ScalarMult(G2Generator(), k).
func (p *G2) ScalarBaseMult(k *big.Int) *G2 {
	var buf [32]byte
	combScalarBytes(&buf, k)
	var acc g2Jac
	g2CombMult(&acc, &buf)
	acc.toAffine(p)
	return p
}

// isInSubgroup reports whether Order·p = ∞ (inversion-free check on the
// Jacobian ladder).
func (p *G2) isInSubgroup() bool {
	var acc g2Jac
	acc.setInfinity()
	for i := Order.BitLen() - 1; i >= 0; i-- {
		acc.double(&acc)
		if Order.Bit(i) == 1 {
			acc.addMixed(&acc, p)
		}
	}
	return acc.isInfinity()
}

// Marshal encodes p. Infinity encodes as all zeros.
func (p *G2) Marshal() []byte {
	out := make([]byte, g2MarshalledSize)
	if p.inf {
		return out
	}
	var buf [32]byte
	feBytes(&p.x.c0, &buf)
	copy(out[0:32], buf[:])
	feBytes(&p.x.c1, &buf)
	copy(out[32:64], buf[:])
	feBytes(&p.y.c0, &buf)
	copy(out[64:96], buf[:])
	feBytes(&p.y.c1, &buf)
	copy(out[96:128], buf[:])
	return out
}

// Unmarshal decodes a point previously encoded with Marshal. It validates
// both the curve equation and membership in the order-Order subgroup (the
// twist has composite order, so the subgroup check is required for points
// from untrusted sources).
func (p *G2) Unmarshal(data []byte) error {
	if len(data) != g2MarshalledSize {
		return errors.New("bn254: wrong G2 encoding length")
	}
	allZero := true
	for _, b := range data {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		p.SetInfinity()
		return nil
	}
	var coords [4]fe
	for i := range coords {
		if !feSetBytes(&coords[i], data[i*32:(i+1)*32]) {
			return errors.New("bn254: G2 coordinate out of range")
		}
	}
	p.x = fe2{c0: coords[0], c1: coords[1]}
	p.y = fe2{c0: coords[2], c1: coords[3]}
	p.inf = false
	if !p.IsOnCurve() {
		return errors.New("bn254: G2 point not on twist curve")
	}
	if !p.isInSubgroup() {
		return errors.New("bn254: G2 point not in prime-order subgroup")
	}
	return nil
}
