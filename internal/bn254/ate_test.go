package bn254

import (
	"crypto/rand"
	"math/big"
	"testing"
	"time"
)

// TestAteBilinearity pins the optimal-ate loop against the known-scalar
// bilinearity law on both pairings: AtePair(aP, bQ) = AtePair(P, Q)^(ab)
// and the same for the retained Tate oracle. This is the testable half of
// the fixed-exponent relation e_ate = e_tate^κ: both sides are reduced
// pairings on the same groups, so agreeing with bilinearity everywhere
// forces a fixed κ (κ itself is a ~3000-bit curve constant nobody needs).
func TestAteBilinearity(t *testing.T) {
	p, q := G1Generator(), G2Generator()
	gA := AtePair(p, q)
	gT := Pair(p, q)
	if gA.IsOne() {
		t.Fatal("ate pairing is degenerate on the generators")
	}
	if gA.Equal(gT) {
		t.Fatal("ate and tate values coincide on the generators; κ = 1 means the loops are not distinct")
	}
	for i := 0; i < 4; i++ {
		a, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		var ap G1
		var bq G2
		ap.ScalarMult(p, a)
		bq.ScalarMult(q, b)
		ab := new(big.Int).Mul(a, b)
		ab.Mod(ab, Order)
		if !AtePair(&ap, &bq).Equal(new(GT).Exp(gA, ab)) {
			t.Fatalf("ate bilinearity failed on trial %d", i)
		}
		if !Pair(&ap, &bq).Equal(new(GT).Exp(gT, ab)) {
			t.Fatalf("tate oracle bilinearity failed on trial %d", i)
		}
	}
}

// TestAtePairIdentity checks the identity conventions: infinity in either
// argument (and an erased precomputation) pairs to the identity of GT,
// matching Pair.
func TestAtePairIdentity(t *testing.T) {
	p, q := G1Generator(), G2Generator()
	inf1 := new(G1).SetInfinity()
	inf2 := new(G2).SetInfinity()
	if !AtePair(inf1, q).IsOne() || !AtePair(p, inf2).IsOne() || !AtePair(inf1, inf2).IsOne() {
		t.Fatal("AtePair with infinity is not the identity")
	}
	pre := AtePrecomputeG1(p)
	if !pre.Pair(inf2).IsOne() {
		t.Fatal("precomputed AtePair with infinite Q is not the identity")
	}
	pre.Erase()
	if !pre.Pair(q).IsOne() {
		t.Fatal("erased AtePrecomputedG1 does not pair to the identity")
	}
	if !AtePrecomputeG1(inf1).Pair(q).IsOne() || !AtePrecomputeG2(inf2).Pair(p).IsOne() {
		t.Fatal("precomputation of infinity does not pair to the identity")
	}
}

// TestAtePrecomputeReplay pins both fixed-argument handles against the
// scalar AtePair on random points: the fixed-G2 ladder replay and the
// fixed-G1 coordinate cache must be bit-identical to the on-the-fly loop.
func TestAtePrecomputeReplay(t *testing.T) {
	for i := 0; i < 4; i++ {
		a, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		p := new(G1).ScalarBaseMult(a)
		q := new(G2).ScalarBaseMult(b)
		want := AtePair(p, q)
		if got := AtePrecomputeG1(p).Pair(q); !got.Equal(want) {
			t.Fatalf("AtePrecomputedG1.Pair disagrees with AtePair on trial %d", i)
		}
		if got := AtePrecomputeG2(q).Pair(p); !got.Equal(want) {
			t.Fatalf("AtePrecomputedG2.Pair disagrees with AtePair on trial %d", i)
		}
	}
}

// TestGSSubgroupDifferential pins the Galbraith–Scott short-vector check
// against both the generic Order ladder and the ψ-eigenvalue check:
// identical accept/reject on subgroup points, random twist points outside
// the subgroup, and infinity.
func TestGSSubgroupDifferential(t *testing.T) {
	for i := 0; i < 10; i++ {
		k, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		q := new(G2).ScalarBaseMult(k)
		if !q.isInSubgroupGS() {
			t.Fatalf("GS check rejected subgroup point %v·G2", k)
		}
	}
	for i := 0; i < 10; i++ {
		p := randTwistPoint(t)
		ladder := p.isInSubgroup()
		gs := p.isInSubgroupGS()
		psi := p.isInSubgroupPsi()
		if ladder != gs || psi != gs {
			t.Fatalf("subgroup check disagreement on twist point %v: ladder=%v ψ=%v GS=%v", p, ladder, psi, gs)
		}
	}
	if !new(G2).SetInfinity().isInSubgroupGS() {
		t.Fatal("GS check rejected infinity")
	}
	// Small-multiple sanity: the generator and its doubles are in the
	// subgroup.
	for _, k := range []int64{1, 2, 3, 17} {
		q := new(G2).ScalarBaseMult(big.NewInt(k))
		if !q.isInSubgroupGS() {
			t.Fatalf("GS check rejected %d·G2", k)
		}
	}
}

// TestAtePairBatchDifferential pins the v2 batch element-wise against the
// scalar ate path (Unmarshal + AtePrecomputedG1.Pair) on the full invalid-
// shape corpus: acceptance must match Unmarshal exactly, invalid slots
// must not disturb their neighbors, and every valid value must equal the
// scalar loop's.
func TestAtePairBatchDifferential(t *testing.T) {
	kp, err := RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	p := new(G1).ScalarBaseMult(kp)
	pre := AtePrecomputeG1(p)
	raws := batchTestInputs(t)
	n := len(raws)
	dst := make([]GT, n)
	ok := make([]bool, n)
	pre.PairBatch(raws, dst, ok, NewPairScratch(n))
	for i, raw := range raws {
		var q G2
		uerr := q.Unmarshal(raw)
		if ok[i] != (uerr == nil) {
			t.Fatalf("element %d: batch ok=%v but Unmarshal err=%v", i, ok[i], uerr)
		}
		if uerr != nil {
			if !dst[i].IsOne() {
				t.Fatalf("element %d: invalid slot produced a non-identity value", i)
			}
			continue
		}
		if want := pre.Pair(&q); !dst[i].Equal(want) {
			t.Fatalf("element %d: batch value disagrees with scalar ate path", i)
		}
	}

	// The precomputation of infinity accepts/rejects identically and
	// yields the identity everywhere.
	infPre := AtePrecomputeG1(new(G1).SetInfinity())
	infPre.PairBatch(raws, dst, ok, nil)
	for i, raw := range raws {
		var q G2
		uerr := q.Unmarshal(raw)
		if ok[i] != (uerr == nil) {
			t.Fatalf("inf element %d: batch ok=%v but Unmarshal err=%v", i, ok[i], uerr)
		}
		if !dst[i].IsOne() {
			t.Fatalf("inf element %d: pairing with infinity is not the identity", i)
		}
	}
}

// TestAtePairBatchAllocations pins the v2 batch at zero heap allocations
// per call once the scratch is warm, like the v1 batch.
func TestAtePairBatchAllocations(t *testing.T) {
	k, err := RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	pre := AtePrecomputeG1(new(G1).ScalarBaseMult(k))
	const n = 4
	raws := make([][]byte, n)
	for i := range raws {
		ki, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		raws[i] = new(G2).ScalarBaseMult(ki).Marshal()
	}
	raws[1] = make([]byte, g2MarshalledSize)
	dst := make([]GT, n)
	ok := make([]bool, n)
	scratch := NewPairScratch(n)
	pre.PairBatch(raws, dst, ok, scratch)
	allocs := testing.AllocsPerRun(3, func() {
		pre.PairBatch(raws, dst, ok, scratch)
	})
	if allocs != 0 {
		t.Fatalf("ate PairBatch allocated %.1f times per batch; want 0", allocs)
	}
}

// TestAteBatchSpeedupPin guards the tentpole: the v2 ate batch must beat
// the v1 Tate batch on the same inputs by a clear margin. The acceptance
// target is 1.8x and the measured ratio is ~2x (a 65- vs 254-iteration
// Miller loop plus the short-vector subgroup check); the pin floor is 1.5x
// so scheduler noise cannot flake the suite while a real regression (a
// lost correction step, a generic subgroup ladder) still trips it.
// Skipped in -short mode.
func TestAteBatchSpeedupPin(t *testing.T) {
	if testing.Short() {
		t.Skip("relative perf pin skipped in -short mode")
	}
	k, err := RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	p := new(G1).ScalarBaseMult(k)
	tatePre := PrecomputeG1(p)
	atePre := AtePrecomputeG1(p)
	const n = 8
	raws := make([][]byte, n)
	for i := range raws {
		ki, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		raws[i] = new(G2).ScalarBaseMult(ki).Marshal()
	}
	dst := make([]GT, n)
	ok := make([]bool, n)
	scratch := NewPairScratch(n)
	atePre.PairBatch(raws, dst, ok, scratch) // warm scratch + oracle check

	best := func(trials int, f func()) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for i := 0; i < trials; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	ate := best(5, func() { atePre.PairBatch(raws, dst, ok, scratch) })
	tate := best(5, func() { tatePre.PairBatch(raws, dst, ok, scratch) })

	const floorNum, floorDen = 15, 10 // 1.5x
	if ate*floorNum > tate*floorDen {
		t.Errorf("ate batch %v is under %d.%dx the tate batch %v (ratio %.2fx)",
			ate, floorNum/floorDen, floorNum%floorDen, tate, float64(tate)/float64(ate))
	}
	t.Logf("ate batch %v vs tate batch %v: %.2fx (%d elements)",
		ate, tate, float64(tate)/float64(ate), n)
}

func BenchmarkAtePair(b *testing.B) {
	k, err := RandomScalar(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	p := new(G1).ScalarBaseMult(k)
	q := G2Generator()
	pre := AtePrecomputeG1(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pre.Pair(q)
	}
}

func BenchmarkAtePairBatch(b *testing.B) {
	k, err := RandomScalar(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	pre := AtePrecomputeG1(new(G1).ScalarBaseMult(k))
	const n = 32
	raws := make([][]byte, n)
	for i := range raws {
		ki, err := RandomScalar(rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		raws[i] = new(G2).ScalarBaseMult(ki).Marshal()
	}
	dst := make([]GT, n)
	ok := make([]bool, n)
	scratch := NewPairScratch(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pre.PairBatch(raws, dst, ok, scratch)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/pairing")
}
