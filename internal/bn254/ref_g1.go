package bn254

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
)

// refG1 is a point on E(Fp): y² = x³ + 3, in affine coordinates. The zero value
// is NOT valid; use new(refG1).SetInfinity(), refG1Generator(), or an operation
// that sets the receiver. E(Fp) has prime order Order, so every curve point
// other than infinity generates the full group.
type refG1 struct {
	x, y *big.Int
	inf  bool
}

// refG1Generator returns the conventional generator (1, 2).
func refG1Generator() *refG1 {
	return &refG1{x: big.NewInt(1), y: big.NewInt(2)}
}

func (p *refG1) String() string {
	if p.inf {
		return "refG1(∞)"
	}
	return fmt.Sprintf("refG1(%v, %v)", p.x, p.y)
}

// SetInfinity sets p to the identity element.
func (p *refG1) SetInfinity() *refG1 {
	p.x, p.y, p.inf = new(big.Int), new(big.Int), true
	return p
}

// IsInfinity reports whether p is the identity element.
func (p *refG1) IsInfinity() bool { return p.inf }

func (p *refG1) Set(a *refG1) *refG1 {
	p.x = new(big.Int).Set(a.x)
	p.y = new(big.Int).Set(a.y)
	p.inf = a.inf
	return p
}

func (p *refG1) Equal(a *refG1) bool {
	if p.inf || a.inf {
		return p.inf == a.inf
	}
	return p.x.Cmp(a.x) == 0 && p.y.Cmp(a.y) == 0
}

// IsOnCurve reports whether p satisfies y² = x³ + 3 (infinity counts as on
// the curve).
func (p *refG1) IsOnCurve() bool {
	if p.inf {
		return true
	}
	y2 := fpSquare(p.y)
	x3 := fpMul(fpSquare(p.x), p.x)
	return y2.Cmp(fpAdd(x3, curveB)) == 0
}

// Neg sets p = −a.
func (p *refG1) Neg(a *refG1) *refG1 {
	if a.inf {
		return p.SetInfinity()
	}
	p.x = new(big.Int).Set(a.x)
	p.y = fpNeg(a.y)
	p.inf = false
	return p
}

// Add sets p = a + b using affine chord-and-tangent formulas.
func (p *refG1) Add(a, b *refG1) *refG1 {
	if a.inf {
		return p.Set(b)
	}
	if b.inf {
		return p.Set(a)
	}
	if a.x.Cmp(b.x) == 0 {
		if a.y.Cmp(b.y) != 0 || a.y.Sign() == 0 {
			// a = −b (or a = b with y = 0, impossible here since
			// x³+3=0 has no roots paired with y=0 on this curve,
			// but handle it anyway).
			return p.SetInfinity()
		}
		return p.Double(a)
	}
	// λ = (by − ay) / (bx − ax)
	lambda := fpMul(fpSub(b.y, a.y), fpInv(fpSub(b.x, a.x)))
	x3 := fpSub(fpSub(fpSquare(lambda), a.x), b.x)
	y3 := fpSub(fpMul(lambda, fpSub(a.x, x3)), a.y)
	p.x, p.y, p.inf = x3, y3, false
	return p
}

// Double sets p = 2a.
func (p *refG1) Double(a *refG1) *refG1 {
	if a.inf || a.y.Sign() == 0 {
		return p.SetInfinity()
	}
	// λ = 3ax² / 2ay
	three := big.NewInt(3)
	lambda := fpMul(fpMul(three, fpSquare(a.x)), fpInv(fpDouble(a.y)))
	x3 := fpSub(fpSquare(lambda), fpDouble(a.x))
	y3 := fpSub(fpMul(lambda, fpSub(a.x, x3)), a.y)
	p.x, p.y, p.inf = x3, y3, false
	return p
}

// ScalarMult sets p = k·a. The scalar is reduced mod Order.
func (p *refG1) ScalarMult(a *refG1, k *big.Int) *refG1 {
	kr := new(big.Int).Mod(k, Order)
	acc := new(refG1).SetInfinity()
	base := new(refG1).Set(a)
	for i := kr.BitLen() - 1; i >= 0; i-- {
		acc.Double(acc)
		if kr.Bit(i) == 1 {
			acc.Add(acc, base)
		}
	}
	return p.Set(acc)
}

// ScalarBaseMult sets p = k·G where G is the conventional generator.
func (p *refG1) ScalarBaseMult(k *big.Int) *refG1 {
	return p.ScalarMult(refG1Generator(), k)
}

// g1MarshalledSize is the size of a marshalled refG1 point: x ‖ y, 32 bytes each.
const g1MarshalledSize = 64

// Marshal encodes p as x ‖ y (32-byte big-endian each). Infinity encodes as
// all zeros, which is unambiguous because (0, 0) is not on the curve.
func (p *refG1) Marshal() []byte {
	out := make([]byte, g1MarshalledSize)
	if p.inf {
		return out
	}
	p.x.FillBytes(out[:32])
	p.y.FillBytes(out[32:])
	return out
}

// Unmarshal decodes a point previously encoded with Marshal, validating that
// it lies on the curve.
func (p *refG1) Unmarshal(data []byte) error {
	if len(data) != g1MarshalledSize {
		return errors.New("bn254: wrong refG1 encoding length")
	}
	x := new(big.Int).SetBytes(data[:32])
	y := new(big.Int).SetBytes(data[32:])
	if x.Sign() == 0 && y.Sign() == 0 {
		p.SetInfinity()
		return nil
	}
	if x.Cmp(P) >= 0 || y.Cmp(P) >= 0 {
		return errors.New("bn254: refG1 coordinate out of range")
	}
	p.x, p.y, p.inf = x, y, false
	if !p.IsOnCurve() {
		return errors.New("bn254: refG1 point not on curve")
	}
	return nil
}

// refHashToG1 hashes an arbitrary message to a curve point using domain-
// separated try-and-increment. Because E(Fp) has prime order, the result is
// always a generator of refG1 (unless the negligible-probability identity is
// hit, which is rejected).
func refHashToG1(domain string, msg []byte) *refG1 {
	h := sha256.New()
	var ctr [4]byte
	for i := uint32(0); ; i++ {
		h.Reset()
		binary.BigEndian.PutUint32(ctr[:], i)
		h.Write([]byte("alpenhorn/bn254/hash-to-g1:"))
		h.Write([]byte(domain))
		h.Write([]byte{0})
		h.Write(msg)
		h.Write(ctr[:])
		digest := h.Sum(nil)
		x := new(big.Int).SetBytes(digest)
		x.Mod(x, P)
		y2 := fpAdd(fpMul(fpSquare(x), x), curveB)
		y, ok := fpSqrt(y2)
		if !ok {
			continue
		}
		// Choose the root deterministically from the hash so that the
		// map is a function of (domain, msg) alone.
		if digest[0]&1 == 1 {
			y = fpNeg(y)
		}
		if y.Sign() == 0 && x.Sign() == 0 {
			continue
		}
		return &refG1{x: x, y: y}
	}
}
