package bn254

import (
	"fmt"
	"math/big"
)

// gfP12 is an element of Fp12 = Fp6[w]/(w² − v), stored as c0 + c1·w.
// Note w⁶ = v³ = ξ, so w is a sixth root of ξ.
type gfP12 struct {
	c0, c1 *gfP6
}

func newGFp12() *gfP12 {
	return &gfP12{c0: newGFp6(), c1: newGFp6()}
}

func (e *gfP12) String() string {
	return fmt.Sprintf("(%v + %v·w)", e.c0, e.c1)
}

func (e *gfP12) Set(a *gfP12) *gfP12 {
	e.c0 = newGFp6().Set(a.c0)
	e.c1 = newGFp6().Set(a.c1)
	return e
}

func (e *gfP12) SetZero() *gfP12 {
	e.c0 = newGFp6()
	e.c1 = newGFp6()
	return e
}

func (e *gfP12) SetOne() *gfP12 {
	e.c0 = newGFp6().SetOne()
	e.c1 = newGFp6()
	return e
}

func (e *gfP12) IsZero() bool { return e.c0.IsZero() && e.c1.IsZero() }

func (e *gfP12) IsOne() bool { return e.c0.IsOne() && e.c1.IsZero() }

func (e *gfP12) Equal(a *gfP12) bool {
	return e.c0.Equal(a.c0) && e.c1.Equal(a.c1)
}

func (e *gfP12) Add(a, b *gfP12) *gfP12 {
	c0 := newGFp6().Add(a.c0, b.c0)
	c1 := newGFp6().Add(a.c1, b.c1)
	e.c0, e.c1 = c0, c1
	return e
}

func (e *gfP12) Sub(a, b *gfP12) *gfP12 {
	c0 := newGFp6().Sub(a.c0, b.c0)
	c1 := newGFp6().Sub(a.c1, b.c1)
	e.c0, e.c1 = c0, c1
	return e
}

func (e *gfP12) Neg(a *gfP12) *gfP12 {
	c0 := newGFp6().Neg(a.c0)
	c1 := newGFp6().Neg(a.c1)
	e.c0, e.c1 = c0, c1
	return e
}

// Mul sets e = a·b with the reduction w² = v, using Karatsuba (three Fp6
// multiplications):
//
//	v0 = a0b0, v1 = a1b1
//	e0 = v0 + v·v1
//	e1 = (a0+a1)(b0+b1) − v0 − v1
func (e *gfP12) Mul(a, b *gfP12) *gfP12 {
	v0 := newGFp6().Mul(a.c0, b.c0)
	v1 := newGFp6().Mul(a.c1, b.c1)
	cross := newGFp6().Mul(newGFp6().Add(a.c0, a.c1), newGFp6().Add(b.c0, b.c1))
	c1 := cross.Sub(cross.Sub(cross, v0), v1)
	c0 := newGFp6().Add(v0, newGFp6().MulV(v1))
	e.c0, e.c1 = c0, c1
	return e
}

// Square sets e = a² using the complex squaring shortcut (two Fp6
// multiplications): with t = a0·a1,
//
//	e0 = (a0+a1)(a0+v·a1) − t − v·t
//	e1 = 2t
func (e *gfP12) Square(a *gfP12) *gfP12 {
	t := newGFp6().Mul(a.c0, a.c1)
	s := newGFp6().Mul(
		newGFp6().Add(a.c0, a.c1),
		newGFp6().Add(a.c0, newGFp6().MulV(a.c1)))
	s.Sub(s, t)
	s.Sub(s, newGFp6().MulV(t))
	e.c0 = s
	e.c1 = newGFp6().Add(t, t)
	return e
}

// Conjugate sets e = a0 − a1·w. For the quadratic extension Fp12/Fp6 this is
// the nontrivial Galois automorphism, i.e. the p⁶-power Frobenius map.
func (e *gfP12) Conjugate(a *gfP12) *gfP12 {
	c0 := newGFp6().Set(a.c0)
	c1 := newGFp6().Neg(a.c1)
	e.c0, e.c1 = c0, c1
	return e
}

// Invert sets e = a⁻¹ = (a0 − a1·w) / (a0² − v·a1²).
func (e *gfP12) Invert(a *gfP12) *gfP12 {
	t := newGFp6().Sub(
		newGFp6().Square(a.c0),
		newGFp6().MulV(newGFp6().Square(a.c1)))
	if t.IsZero() {
		panic("bn254: inversion of zero in Fp12")
	}
	tInv := newGFp6().Invert(t)
	e.c0 = newGFp6().Mul(a.c0, tInv)
	e.c1 = newGFp6().Mul(newGFp6().Neg(a.c1), tInv)
	return e
}

// Exp sets e = a^k using square-and-multiply. Negative k is not supported.
func (e *gfP12) Exp(a *gfP12, k *big.Int) *gfP12 {
	if k.Sign() < 0 {
		panic("bn254: negative exponent in Fp12")
	}
	acc := newGFp12().SetOne()
	base := newGFp12().Set(a)
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc.Square(acc)
		if k.Bit(i) == 1 {
			acc.Mul(acc, base)
		}
	}
	return e.Set(acc)
}
