package bn254

import (
	"errors"
	"math/big"
)

// refGT is an element of the order-Order subgroup of Fp12*, the target group of
// the pairing. The zero value is NOT valid; use refGTOne(), refPair, or an
// operation that sets the receiver.
type refGT struct {
	e *gfP12
}

// refGTOne returns the identity element of refGT.
func refGTOne() *refGT {
	return &refGT{e: newGFp12().SetOne()}
}

func (g *refGT) String() string { return g.e.String() }

func (g *refGT) Set(a *refGT) *refGT {
	g.e = newGFp12().Set(a.e)
	return g
}

// IsOne reports whether g is the identity.
func (g *refGT) IsOne() bool { return g.e.IsOne() }

func (g *refGT) Equal(a *refGT) bool { return g.e.Equal(a.e) }

// Mul sets g = a·b (the refGT group operation).
func (g *refGT) Mul(a, b *refGT) *refGT {
	g.e = newGFp12().Mul(a.e, b.e)
	return g
}

// Invert sets g = a⁻¹.
func (g *refGT) Invert(a *refGT) *refGT {
	g.e = newGFp12().Invert(a.e)
	return g
}

// Exp sets g = a^k. The exponent is reduced mod Order.
func (g *refGT) Exp(a *refGT, k *big.Int) *refGT {
	kr := new(big.Int).Mod(k, Order)
	g.e = newGFp12().Exp(a.e, kr)
	return g
}

// gtMarshalledSize is the size of a marshalled refGT element: twelve 32-byte
// Fp coefficients.
const gtMarshalledSize = 384

// coeffs returns the twelve Fp coefficients of g in a fixed order.
func (g *refGT) coeffs() []*big.Int {
	return []*big.Int{
		g.e.c0.c0.c0, g.e.c0.c0.c1,
		g.e.c0.c1.c0, g.e.c0.c1.c1,
		g.e.c0.c2.c0, g.e.c0.c2.c1,
		g.e.c1.c0.c0, g.e.c1.c0.c1,
		g.e.c1.c1.c0, g.e.c1.c1.c1,
		g.e.c1.c2.c0, g.e.c1.c2.c1,
	}
}

// Marshal encodes g as twelve 32-byte big-endian coefficients.
func (g *refGT) Marshal() []byte {
	out := make([]byte, gtMarshalledSize)
	for i, c := range g.coeffs() {
		c.FillBytes(out[i*32 : (i+1)*32])
	}
	return out
}

// Unmarshal decodes an element encoded with Marshal. It checks coefficient
// ranges but not subgroup membership (checking would cost a full Order-sized
// exponentiation; protocol code never accepts raw refGT elements from
// untrusted sources).
func (g *refGT) Unmarshal(data []byte) error {
	if len(data) != gtMarshalledSize {
		return errors.New("bn254: wrong refGT encoding length")
	}
	g.e = newGFp12()
	for i, c := range g.coeffs() {
		c.SetBytes(data[i*32 : (i+1)*32])
		if c.Cmp(P) >= 0 {
			return errors.New("bn254: refGT coefficient out of range")
		}
	}
	return nil
}
