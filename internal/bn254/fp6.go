package bn254

import "fmt"

// gfP6 is an element of Fp6 = Fp2[v]/(v³ − ξ), stored as c0 + c1·v + c2·v²
// with ξ = 9 + i.
type gfP6 struct {
	c0, c1, c2 *gfP2
}

func newGFp6() *gfP6 {
	return &gfP6{c0: newGFp2(), c1: newGFp2(), c2: newGFp2()}
}

func (e *gfP6) String() string {
	return fmt.Sprintf("(%v + %v·v + %v·v²)", e.c0, e.c1, e.c2)
}

func (e *gfP6) Set(a *gfP6) *gfP6 {
	e.c0 = newGFp2().Set(a.c0)
	e.c1 = newGFp2().Set(a.c1)
	e.c2 = newGFp2().Set(a.c2)
	return e
}

func (e *gfP6) SetZero() *gfP6 {
	e.c0 = newGFp2()
	e.c1 = newGFp2()
	e.c2 = newGFp2()
	return e
}

func (e *gfP6) SetOne() *gfP6 {
	e.c0 = newGFp2().SetOne()
	e.c1 = newGFp2()
	e.c2 = newGFp2()
	return e
}

func (e *gfP6) IsZero() bool { return e.c0.IsZero() && e.c1.IsZero() && e.c2.IsZero() }

func (e *gfP6) IsOne() bool { return e.c0.IsOne() && e.c1.IsZero() && e.c2.IsZero() }

func (e *gfP6) Equal(a *gfP6) bool {
	return e.c0.Equal(a.c0) && e.c1.Equal(a.c1) && e.c2.Equal(a.c2)
}

func (e *gfP6) Add(a, b *gfP6) *gfP6 {
	c0 := newGFp2().Add(a.c0, b.c0)
	c1 := newGFp2().Add(a.c1, b.c1)
	c2 := newGFp2().Add(a.c2, b.c2)
	e.c0, e.c1, e.c2 = c0, c1, c2
	return e
}

func (e *gfP6) Sub(a, b *gfP6) *gfP6 {
	c0 := newGFp2().Sub(a.c0, b.c0)
	c1 := newGFp2().Sub(a.c1, b.c1)
	c2 := newGFp2().Sub(a.c2, b.c2)
	e.c0, e.c1, e.c2 = c0, c1, c2
	return e
}

func (e *gfP6) Neg(a *gfP6) *gfP6 {
	c0 := newGFp2().Neg(a.c0)
	c1 := newGFp2().Neg(a.c1)
	c2 := newGFp2().Neg(a.c2)
	e.c0, e.c1, e.c2 = c0, c1, c2
	return e
}

// Mul sets e = a·b with the reduction v³ = ξ, using the Karatsuba
// interpolation of Devegili et al. (six Fp2 multiplications):
//
//	v0 = a0b0, v1 = a1b1, v2 = a2b2
//	e0 = v0 + ξ((a1+a2)(b1+b2) − v1 − v2)
//	e1 = (a0+a1)(b0+b1) − v0 − v1 + ξ·v2
//	e2 = (a0+a2)(b0+b2) − v0 − v2 + v1
func (e *gfP6) Mul(a, b *gfP6) *gfP6 {
	v0 := newGFp2().Mul(a.c0, b.c0)
	v1 := newGFp2().Mul(a.c1, b.c1)
	v2 := newGFp2().Mul(a.c2, b.c2)

	t := newGFp2().Mul(newGFp2().Add(a.c1, a.c2), newGFp2().Add(b.c1, b.c2))
	t.Sub(t, v1)
	t.Sub(t, v2)
	c0 := newGFp2().Add(v0, t.MulXi(t))

	t1 := newGFp2().Mul(newGFp2().Add(a.c0, a.c1), newGFp2().Add(b.c0, b.c1))
	t1.Sub(t1, v0)
	t1.Sub(t1, v1)
	c1 := t1.Add(t1, newGFp2().MulXi(v2))

	t2 := newGFp2().Mul(newGFp2().Add(a.c0, a.c2), newGFp2().Add(b.c0, b.c2))
	t2.Sub(t2, v0)
	t2.Sub(t2, v2)
	c2 := t2.Add(t2, v1)

	e.c0, e.c1, e.c2 = c0, c1, c2
	return e
}

// MulScalarGFp2 sets e = a·k for k ∈ Fp2.
func (e *gfP6) MulScalarGFp2(a *gfP6, k *gfP2) *gfP6 {
	c0 := newGFp2().Mul(a.c0, k)
	c1 := newGFp2().Mul(a.c1, k)
	c2 := newGFp2().Mul(a.c2, k)
	e.c0, e.c1, e.c2 = c0, c1, c2
	return e
}

// MulV sets e = a·v: (c0 + c1·v + c2·v²)·v = ξ·c2 + c0·v + c1·v².
func (e *gfP6) MulV(a *gfP6) *gfP6 {
	c0 := newGFp2().MulXi(a.c2)
	c1 := newGFp2().Set(a.c0)
	c2 := newGFp2().Set(a.c1)
	e.c0, e.c1, e.c2 = c0, c1, c2
	return e
}

func (e *gfP6) Square(a *gfP6) *gfP6 {
	return e.Mul(a, a)
}

// Invert sets e = a⁻¹ using the standard formula for cubic extensions:
//
//	A = c0² − ξ·c1·c2,  B = ξ·c2² − c0·c1,  C = c1² − c0·c2
//	F = c0·A + ξ·c1·C + ξ·c2·B
//	a⁻¹ = (A + B·v + C·v²) / F
func (e *gfP6) Invert(a *gfP6) *gfP6 {
	A := newGFp2().Sub(
		newGFp2().Square(a.c0),
		newGFp2().MulXi(newGFp2().Mul(a.c1, a.c2)))
	B := newGFp2().Sub(
		newGFp2().MulXi(newGFp2().Square(a.c2)),
		newGFp2().Mul(a.c0, a.c1))
	C := newGFp2().Sub(
		newGFp2().Square(a.c1),
		newGFp2().Mul(a.c0, a.c2))

	F := newGFp2().Mul(a.c0, A)
	F.Add(F, newGFp2().MulXi(newGFp2().Mul(a.c1, C)))
	F.Add(F, newGFp2().MulXi(newGFp2().Mul(a.c2, B)))
	if F.IsZero() {
		panic("bn254: inversion of zero in Fp6")
	}
	Finv := newGFp2().Invert(F)

	e.c0 = newGFp2().Mul(A, Finv)
	e.c1 = newGFp2().Mul(B, Finv)
	e.c2 = newGFp2().Mul(C, Finv)
	return e
}
