package bn254

// Differential tests: the Montgomery limb backend (fe, fe2/6/12, G1/G2/GT,
// Pair) must agree bit-for-bit with the retained big.Int reference
// implementation (fp*, gfP*, refG1/refG2/refGT, refPair) on random inputs,
// and every wire encoding must be byte-identical between the two.

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"
)

func randFe(t testing.TB) (*big.Int, fe) {
	t.Helper()
	b, err := randFieldElement(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	var z fe
	feFromBig(&z, b)
	return b, z
}

func TestFeDifferentialFieldOps(t *testing.T) {
	for i := 0; i < 200; i++ {
		aBig, a := randFe(t)
		bBig, b := randFe(t)

		check := func(op string, ref *big.Int, got *fe) {
			t.Helper()
			if feToBig(got).Cmp(ref) != 0 {
				t.Fatalf("%s mismatch: ref=%v got=%v (a=%v b=%v)", op, ref, feToBig(got), aBig, bBig)
			}
		}

		var z fe
		feAdd(&z, &a, &b)
		check("add", fpAdd(aBig, bBig), &z)
		feSub(&z, &a, &b)
		check("sub", fpSub(aBig, bBig), &z)
		feNeg(&z, &a)
		check("neg", fpNeg(aBig), &z)
		feMul(&z, &a, &b)
		check("mul", fpMul(aBig, bBig), &z)
		feSquare(&z, &a)
		check("square", fpSquare(aBig), &z)
		feDouble(&z, &a)
		check("double", fpDouble(aBig), &z)
		feMulBy3(&z, &a)
		check("mul3", fpMul(aBig, big.NewInt(3)), &z)
		feMulBy9(&z, &a)
		check("mul9", fpMul(aBig, big.NewInt(9)), &z)
		if aBig.Sign() != 0 {
			feInv(&z, &a)
			check("inv", fpInv(aBig), &z)
		}
	}
}

func TestFeDifferentialSqrt(t *testing.T) {
	for i := 0; i < 40; i++ {
		aBig, a := randFe(t)
		refRoot, refOK := fpSqrt(aBig)
		var root fe
		ok := feSqrt(&root, &a)
		if ok != refOK {
			t.Fatalf("sqrt residue disagreement on %v: ref=%v got=%v", aBig, refOK, ok)
		}
		if ok && feToBig(&root).Cmp(refRoot) != 0 {
			t.Fatalf("sqrt root mismatch on %v: ref=%v got=%v", aBig, refRoot, feToBig(&root))
		}
	}
}

func TestFeDifferentialExp(t *testing.T) {
	for i := 0; i < 20; i++ {
		aBig, a := randFe(t)
		eBig, _ := randFe(t)
		var z fe
		feExp(&z, &a, eBig)
		if feToBig(&z).Cmp(fpExp(aBig, eBig)) != 0 {
			t.Fatalf("exp mismatch: a=%v e=%v", aBig, eBig)
		}
	}
}

func TestFeBytesRoundTrip(t *testing.T) {
	for i := 0; i < 100; i++ {
		aBig, a := randFe(t)
		var buf [32]byte
		feBytes(&a, &buf)
		var ref [32]byte
		aBig.FillBytes(ref[:])
		if buf != ref {
			t.Fatalf("byte encoding mismatch for %v: got %x want %x", aBig, buf, ref)
		}
		var back fe
		if !feSetBytes(&back, buf[:]) {
			t.Fatalf("canonical encoding rejected: %x", buf)
		}
		if !back.Equal(&a) {
			t.Fatalf("round trip changed value: %v", aBig)
		}
	}
	// Non-canonical encodings (≥ P) must be rejected.
	var buf [32]byte
	P.FillBytes(buf[:])
	var z fe
	if feSetBytes(&z, buf[:]) {
		t.Fatal("feSetBytes accepted P")
	}
}

func randRefGFp2(t testing.TB) *gfP2 {
	t.Helper()
	c0, err := randFieldElement(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := randFieldElement(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return &gfP2{c0: c0, c1: c1}
}

func fe2FromRef(a *gfP2) (z fe2) {
	feFromBig(&z.c0, a.c0)
	feFromBig(&z.c1, a.c1)
	return
}

func fe2EqualRef(t testing.TB, op string, got *fe2, ref *gfP2) {
	t.Helper()
	if feToBig(&got.c0).Cmp(ref.c0) != 0 || feToBig(&got.c1).Cmp(ref.c1) != 0 {
		t.Fatalf("%s mismatch: got %v want %v", op, got, ref)
	}
}

func TestFe2Differential(t *testing.T) {
	for i := 0; i < 50; i++ {
		aRef, bRef := randRefGFp2(t), randRefGFp2(t)
		a, b := fe2FromRef(aRef), fe2FromRef(bRef)

		var z fe2
		fe2EqualRef(t, "add", z.Add(&a, &b), newGFp2().Add(aRef, bRef))
		fe2EqualRef(t, "sub", z.Sub(&a, &b), newGFp2().Sub(aRef, bRef))
		fe2EqualRef(t, "mul", z.Mul(&a, &b), newGFp2().Mul(aRef, bRef))
		fe2EqualRef(t, "square", z.Square(&a), newGFp2().Square(aRef))
		fe2EqualRef(t, "mulxi", z.MulXi(&a), newGFp2().MulXi(aRef))
		fe2EqualRef(t, "conj", z.Conjugate(&a), newGFp2().Conjugate(aRef))
		if !aRef.IsZero() {
			fe2EqualRef(t, "inv", z.Invert(&a), newGFp2().Invert(aRef))
		}

		// Sqrt: same residue decision and same root choice.
		sqRef := newGFp2().Square(aRef)
		sq := fe2FromRef(sqRef)
		refRoot := newGFp2()
		if !refRoot.Sqrt(sqRef) {
			t.Fatal("reference Sqrt failed on a square")
		}
		if !z.Sqrt(&sq) {
			t.Fatal("limb Sqrt failed on a square")
		}
		fe2EqualRef(t, "sqrt", &z, refRoot)
	}
}

func TestFe6Fe12Differential(t *testing.T) {
	randRef6 := func() *gfP6 {
		return &gfP6{c0: randRefGFp2(t), c1: randRefGFp2(t), c2: randRefGFp2(t)}
	}
	fe6FromRef := func(a *gfP6) (z fe6) {
		z.c0, z.c1, z.c2 = fe2FromRef(a.c0), fe2FromRef(a.c1), fe2FromRef(a.c2)
		return
	}
	fe6Equal := func(op string, got *fe6, ref *gfP6) {
		t.Helper()
		fe2EqualRef(t, op+".c0", &got.c0, ref.c0)
		fe2EqualRef(t, op+".c1", &got.c1, ref.c1)
		fe2EqualRef(t, op+".c2", &got.c2, ref.c2)
	}
	for i := 0; i < 20; i++ {
		aRef, bRef := randRef6(), randRef6()
		a, b := fe6FromRef(aRef), fe6FromRef(bRef)
		var z fe6
		fe6Equal("mul", z.Mul(&a, &b), newGFp6().Mul(aRef, bRef))
		fe6Equal("square", z.Square(&a), newGFp6().Square(aRef))
		fe6Equal("mulv", z.MulV(&a), newGFp6().MulV(aRef))
		fe6Equal("inv", z.Invert(&a), newGFp6().Invert(aRef))

		a12Ref := &gfP12{c0: aRef, c1: bRef}
		c12Ref := &gfP12{c0: randRef6(), c1: randRef6()}
		a12 := fe12{c0: a, c1: b}
		c12 := fe12{c0: fe6FromRef(c12Ref.c0), c1: fe6FromRef(c12Ref.c1)}
		var z12 fe12
		fe6Equal("mul12.c0", &z12.Mul(&a12, &c12).c0, newGFp12().Mul(a12Ref, c12Ref).c0)
		fe6Equal("mul12.c1", &z12.c1, newGFp12().Mul(a12Ref, c12Ref).c1)
		fe6Equal("sq12.c0", &z12.Square(&a12).c0, newGFp12().Square(a12Ref).c0)
		fe6Equal("sq12.c1", &z12.c1, newGFp12().Square(a12Ref).c1)
		fe6Equal("inv12.c0", &z12.Invert(&a12).c0, newGFp12().Invert(a12Ref).c0)
		fe6Equal("inv12.c1", &z12.c1, newGFp12().Invert(a12Ref).c1)
	}
}

// TestFe12FrobeniusP2 pins FrobeniusP2 against a generic p² exponentiation
// on the reference tower.
func TestFe12FrobeniusP2(t *testing.T) {
	aRef := &gfP12{
		c0: &gfP6{c0: randRefGFp2(t), c1: randRefGFp2(t), c2: randRefGFp2(t)},
		c1: &gfP6{c0: randRefGFp2(t), c1: randRefGFp2(t), c2: randRefGFp2(t)},
	}
	var a fe12
	a.c0.c0, a.c0.c1, a.c0.c2 = fe2FromRef(aRef.c0.c0), fe2FromRef(aRef.c0.c1), fe2FromRef(aRef.c0.c2)
	a.c1.c0, a.c1.c1, a.c1.c2 = fe2FromRef(aRef.c1.c0), fe2FromRef(aRef.c1.c1), fe2FromRef(aRef.c1.c2)
	p2 := new(big.Int).Mul(P, P)
	want := newGFp12().Exp(aRef, p2)
	var got fe12
	got.FrobeniusP2(&a)
	fe2EqualRef(t, "frobp2 c0.c0", &got.c0.c0, want.c0.c0)
	fe2EqualRef(t, "frobp2 c0.c1", &got.c0.c1, want.c0.c1)
	fe2EqualRef(t, "frobp2 c0.c2", &got.c0.c2, want.c0.c2)
	fe2EqualRef(t, "frobp2 c1.c0", &got.c1.c0, want.c1.c0)
	fe2EqualRef(t, "frobp2 c1.c1", &got.c1.c1, want.c1.c1)
	fe2EqualRef(t, "frobp2 c1.c2", &got.c1.c2, want.c1.c2)
}

// TestCyclotomicSquareDifferential checks Granger-Scott squaring against
// the generic Square on elements of the cyclotomic subgroup (where it is
// defined), reached the same way the final exponentiation reaches them.
func TestCyclotomicSquareDifferential(t *testing.T) {
	k, err := RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	p := new(G1).ScalarBaseMult(k)
	q := G2Generator()
	f := evalLines(g1Lines(p), &q.x, &q.y)

	// Easy part + p²-fold puts f in G_{Φ6(p²)}.
	var inv, g fe12
	inv.Invert(f)
	g.Conjugate(f)
	g.Mul(&g, &inv)
	var cyc fe12
	cyc.FrobeniusP2(&g)
	cyc.Mul(&cyc, &g)

	var want, got fe12
	want.Square(&cyc)
	got.CyclotomicSquare(&cyc)
	if !got.Equal(&want) {
		t.Fatal("CyclotomicSquare disagrees with Square on a cyclotomic element")
	}
	// And through a few iterations, as the window exponentiation uses it.
	for i := 0; i < 5; i++ {
		want.Square(&want)
		got.CyclotomicSquare(&got)
		if !got.Equal(&want) {
			t.Fatalf("CyclotomicSquare diverges at iteration %d", i)
		}
	}
}

// TestG1DifferentialGroupOps pins scalar multiplication, addition, and
// hashing against the reference through the shared byte encodings.
func TestG1DifferentialGroupOps(t *testing.T) {
	for i := 0; i < 10; i++ {
		k, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		got := new(G1).ScalarBaseMult(k)
		want := new(refG1).ScalarBaseMult(k)
		if !bytes.Equal(got.Marshal(), want.Marshal()) {
			t.Fatalf("G1 scalar-base mismatch at k=%v", k)
		}
		k2 := new(big.Int).Add(k, big.NewInt(12345))
		sum := new(G1).Add(got, new(G1).ScalarBaseMult(k2))
		refSum := new(refG1).Add(want, new(refG1).ScalarBaseMult(k2))
		if !bytes.Equal(sum.Marshal(), refSum.Marshal()) {
			t.Fatalf("G1 add mismatch at k=%v", k)
		}
		dbl := new(G1).Double(got)
		refDbl := new(refG1).Double(want)
		if !bytes.Equal(dbl.Marshal(), refDbl.Marshal()) {
			t.Fatalf("G1 double mismatch at k=%v", k)
		}
	}
	for _, msg := range []string{"", "alice@example.org", "bob@example.org", "x"} {
		got := HashToG1("diff-test", []byte(msg))
		want := refHashToG1("diff-test", []byte(msg))
		if !bytes.Equal(got.Marshal(), want.Marshal()) {
			t.Fatalf("HashToG1 mismatch on %q", msg)
		}
	}
}

func TestG2DifferentialGroupOps(t *testing.T) {
	for i := 0; i < 6; i++ {
		k, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		got := new(G2).ScalarBaseMult(k)
		want := new(refG2).ScalarBaseMult(k)
		if !bytes.Equal(got.Marshal(), want.Marshal()) {
			t.Fatalf("G2 scalar-base mismatch at k=%v", k)
		}
		neg := new(G2).Neg(got)
		refNeg := new(refG2).Neg(want)
		if !bytes.Equal(neg.Marshal(), refNeg.Marshal()) {
			t.Fatalf("G2 neg mismatch at k=%v", k)
		}
		sum := new(G2).Add(got, G2Generator())
		refSum := new(refG2).Add(want, refG2Generator())
		if !bytes.Equal(sum.Marshal(), refSum.Marshal()) {
			t.Fatalf("G2 add mismatch at k=%v", k)
		}
	}
}

// TestPairDifferential is the headline cross-check: the limb pairing must
// produce byte-identical GT elements to the reference Tate pairing, so
// every sealed IBE ciphertext and BLS check transfers between backends.
func TestPairDifferential(t *testing.T) {
	cases := []struct {
		kp, kq *big.Int
	}{
		{big.NewInt(1), big.NewInt(1)},
		{big.NewInt(2), big.NewInt(3)},
		{big.NewInt(1234577), big.NewInt(9876541)},
	}
	if !testing.Short() {
		k1, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		k2, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, struct{ kp, kq *big.Int }{k1, k2})
	}
	for _, c := range cases {
		p := new(G1).ScalarBaseMult(c.kp)
		q := new(G2).ScalarBaseMult(c.kq)
		refP := new(refG1).ScalarBaseMult(c.kp)
		refQ := new(refG2).ScalarBaseMult(c.kq)
		got := Pair(p, q).Marshal()
		want := refPair(refP, refQ).Marshal()
		if !bytes.Equal(got, want) {
			t.Fatalf("pairing mismatch at kp=%v kq=%v", c.kp, c.kq)
		}
		// Fixed-argument precomputations must match the direct path.
		if !bytes.Equal(PrecomputeG1(p).Pair(q).Marshal(), got) {
			t.Fatalf("PrecomputeG1 pairing differs at kp=%v kq=%v", c.kp, c.kq)
		}
		if !bytes.Equal(PrecomputeG2(q).Pair(p).Marshal(), got) {
			t.Fatalf("PrecomputeG2 pairing differs at kp=%v kq=%v", c.kp, c.kq)
		}
	}
}

// TestPrecomputedG1Erase checks that Erase scrubs the key-equivalent line
// coefficients and degrades Pair to the identity (the erased-key shape).
func TestPrecomputedG1Erase(t *testing.T) {
	pre := PrecomputeG1(G1Generator())
	coeffs := pre.coeffs
	pre.Erase()
	for i := range coeffs {
		if !coeffs[i].cst.IsZero() || !coeffs[i].xm.IsZero() || !coeffs[i].ym.IsZero() {
			t.Fatal("Erase left line coefficients in memory")
		}
	}
	if !pre.Pair(G2Generator()).IsOne() {
		t.Fatal("erased precomputation should pair to the identity")
	}
}

// TestGeneratorEncodingPins pins the canonical encodings as fixed vectors
// shared by both backends.
func TestGeneratorEncodingPins(t *testing.T) {
	if !bytes.Equal(G1Generator().Marshal(), refG1Generator().Marshal()) {
		t.Fatal("G1 generator encodings differ")
	}
	if !bytes.Equal(G2Generator().Marshal(), refG2Generator().Marshal()) {
		t.Fatal("G2 generator encodings differ")
	}
	if !bytes.Equal(GTOne().Marshal(), refGTOne().Marshal()) {
		t.Fatal("GT identity encodings differ")
	}
	// Infinity encodings.
	if !bytes.Equal(new(G1).SetInfinity().Marshal(), new(refG1).SetInfinity().Marshal()) {
		t.Fatal("G1 infinity encodings differ")
	}
	if !bytes.Equal(new(G2).SetInfinity().Marshal(), new(refG2).SetInfinity().Marshal()) {
		t.Fatal("G2 infinity encodings differ")
	}
}

// TestUnmarshalDifferential checks that both backends accept and reject
// the same encodings.
func TestUnmarshalDifferential(t *testing.T) {
	k, err := RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	g1bytes := new(G1).ScalarBaseMult(k).Marshal()
	g2bytes := new(G2).ScalarBaseMult(k).Marshal()

	corrupt := func(b []byte, i int) []byte {
		c := append([]byte(nil), b...)
		c[i] ^= 1
		return c
	}
	for i := 0; i < len(g1bytes); i += 7 {
		data := corrupt(g1bytes, i)
		gotErr := new(G1).Unmarshal(data) != nil
		refErr := new(refG1).Unmarshal(data) != nil
		if gotErr != refErr {
			t.Fatalf("G1 acceptance disagreement at byte %d: limb=%v ref=%v", i, gotErr, refErr)
		}
	}
	for i := 0; i < len(g2bytes); i += 17 {
		data := corrupt(g2bytes, i)
		gotErr := new(G2).Unmarshal(data) != nil
		refErr := new(refG2).Unmarshal(data) != nil
		if gotErr != refErr {
			t.Fatalf("G2 acceptance disagreement at byte %d: limb=%v ref=%v", i, gotErr, refErr)
		}
	}
	// Round trips.
	p := new(G1)
	if err := p.Unmarshal(g1bytes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Marshal(), g1bytes) {
		t.Fatal("G1 unmarshal/marshal round trip changed bytes")
	}
	q := new(G2)
	if err := q.Unmarshal(g2bytes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(q.Marshal(), g2bytes) {
		t.Fatal("G2 unmarshal/marshal round trip changed bytes")
	}
}

// TestCombScalarBaseMultDifferential cross-checks the fixed-base comb
// tables bit-for-bit against the generic Jacobian ladder AND the big.Int
// reference, over random scalars and the edge scalars 0, 1, r−1, r (and a
// few beyond-r values to exercise the reduction path).
func TestCombScalarBaseMultDifferential(t *testing.T) {
	scalars := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		new(big.Int).Sub(Order, big.NewInt(1)),
		new(big.Int).Set(Order),
		new(big.Int).Add(Order, big.NewInt(1)),
		new(big.Int).Lsh(big.NewInt(1), 255),
	}
	for i := 0; i < 20; i++ {
		k, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		scalars = append(scalars, k)
	}
	for _, k := range scalars {
		comb1 := new(G1).ScalarBaseMult(k).Marshal()
		ladder1 := new(G1).ScalarMult(G1Generator(), k).Marshal()
		ref1 := new(refG1).ScalarBaseMult(k).Marshal()
		if !bytes.Equal(comb1, ladder1) || !bytes.Equal(comb1, ref1) {
			t.Fatalf("G1 comb mismatch for k=%v:\ncomb   %x\nladder %x\nref    %x", k, comb1, ladder1, ref1)
		}
		comb2 := new(G2).ScalarBaseMult(k).Marshal()
		ladder2 := new(G2).ScalarMult(G2Generator(), k).Marshal()
		ref2 := new(refG2).ScalarBaseMult(k).Marshal()
		if !bytes.Equal(comb2, ladder2) || !bytes.Equal(comb2, ref2) {
			t.Fatalf("G2 comb mismatch for k=%v:\ncomb   %x\nladder %x\nref    %x", k, comb2, ladder2, ref2)
		}
	}
	// The batched variant must match element-wise, including a zero scalar
	// (infinity) in the middle of the shared affine-conversion pass.
	ks := []*big.Int{scalars[3], big.NewInt(0), scalars[len(scalars)-1], big.NewInt(7)}
	batch := G2ScalarBaseMultBatch(ks)
	for i, k := range ks {
		want := new(G2).ScalarBaseMult(k)
		if !batch[i].Equal(want) {
			t.Fatalf("G2ScalarBaseMultBatch[%d] mismatch for k=%v", i, k)
		}
	}
}
