package bn254

import (
	"fmt"
	"math/big"
)

// fe12 is an element of Fp12 = Fp6[w]/(w² − v), stored as c0 + c1·w.
// Note w⁶ = v³ = ξ, so w is a sixth root of ξ. Limb-backend counterpart
// of gfP12.
type fe12 struct {
	c0, c1 fe6
}

func (e *fe12) String() string {
	return fmt.Sprintf("(%v + %v·w)", &e.c0, &e.c1)
}

func (e *fe12) Set(a *fe12) *fe12 {
	*e = *a
	return e
}

func (e *fe12) SetOne() *fe12 {
	e.c0.SetOne()
	e.c1.SetZero()
	return e
}

func (e *fe12) IsZero() bool { return e.c0.IsZero() && e.c1.IsZero() }

func (e *fe12) IsOne() bool { return e.c0.IsOne() && e.c1.IsZero() }

func (e *fe12) Equal(a *fe12) bool { return e.c0.Equal(&a.c0) && e.c1.Equal(&a.c1) }

// Mul sets e = a·b with the reduction w² = v, using Karatsuba (three Fp6
// multiplications):
//
//	v0 = a0b0, v1 = a1b1
//	e0 = v0 + v·v1
//	e1 = (a0+a1)(b0+b1) − v0 − v1
func (e *fe12) Mul(a, b *fe12) *fe12 {
	var v0, v1, cross, sa, sb fe6
	v0.Mul(&a.c0, &b.c0)
	v1.Mul(&a.c1, &b.c1)
	sa.Add(&a.c0, &a.c1)
	sb.Add(&b.c0, &b.c1)
	cross.Mul(&sa, &sb)
	cross.Sub(&cross, &v0)
	e.c1.Sub(&cross, &v1)
	var vv1 fe6
	vv1.MulV(&v1)
	e.c0.Add(&v0, &vv1)
	return e
}

// Square sets e = a² using the complex squaring shortcut (two Fp6
// multiplications): with t = a0·a1,
//
//	e0 = (a0+a1)(a0+v·a1) − t − v·t
//	e1 = 2t
func (e *fe12) Square(a *fe12) *fe12 {
	var t, s, sum, mix, vt fe6
	t.Mul(&a.c0, &a.c1)
	sum.Add(&a.c0, &a.c1)
	mix.MulV(&a.c1)
	mix.Add(&a.c0, &mix)
	s.Mul(&sum, &mix)
	s.Sub(&s, &t)
	vt.MulV(&t)
	s.Sub(&s, &vt)
	e.c0 = s
	e.c1.Add(&t, &t)
	return e
}

// MulLine sets e = a·ℓ for the sparse line value
//
//	ℓ = cst + b·w² + c·w³   (cst ∈ Fp, b, c ∈ Fp2)
//
// produced by Miller-loop line evaluations: in tower coordinates ℓ has
// cst at c0.c0.c0, b at c0.c1, and c at c1.c1. Karatsuba over the Fp6
// halves with the sparse fe6 products costs ~39 base-field
// multiplications instead of 54 for a generic Mul.
func (e *fe12) MulLine(a *fe12, cst *fe, b, c *fe2) *fe12 {
	// L0 = cst + b·v, L1 = c·v.
	var v0, v1, cross, sa fe6
	v0.mulBy01(&a.c0, cst, b)
	v1.mulBy1(&a.c1, c)
	var bc fe2
	bc.Add(b, c)
	sa.Add(&a.c0, &a.c1)
	cross.mulBy01(&sa, cst, &bc)
	cross.Sub(&cross, &v0)
	e.c1.Sub(&cross, &v1)
	var vv1 fe6
	vv1.MulV(&v1)
	e.c0.Add(&v0, &vv1)
	return e
}

// MulAteLine sets e = a·ℓ for the sparse optimal-ate line value
//
//	ℓ = c + b·w + la·w³   (c, b, la ∈ Fp2)
//
// produced by the ate Miller loop, whose ladder runs on the TWIST side
// (coefficients in Fp2, evaluation point in Fp — the mirror image of
// MulLine). In tower coordinates c sits at c0.c0, b at c1.c0, and la at
// c1.c1, so L0 = c and L1 = b + la·v. Karatsuba over the Fp6 halves with
// the sparse products costs ~15 Fp2 multiplications instead of 18 for a
// generic Mul.
func (e *fe12) MulAteLine(a *fe12, c, b, la *fe2) *fe12 {
	var v0, v1, cross, sa fe6
	v0.mulByFe2(&a.c0, c)
	v1.mulBy01fe2(&a.c1, b, la)
	var cb fe2
	cb.Add(c, b)
	sa.Add(&a.c0, &a.c1)
	cross.mulBy01fe2(&sa, &cb, la)
	cross.Sub(&cross, &v0)
	e.c1.Sub(&cross, &v1)
	var vv1 fe6
	vv1.MulV(&v1)
	e.c0.Add(&v0, &vv1)
	return e
}

// Conjugate sets e = a0 − a1·w: the p⁶-power Frobenius map.
func (e *fe12) Conjugate(a *fe12) *fe12 {
	e.c0 = a.c0
	e.c1.Neg(&a.c1)
	return e
}

// Invert sets e = a⁻¹ = (a0 − a1·w) / (a0² − v·a1²).
func (e *fe12) Invert(a *fe12) *fe12 {
	var t0, t1 fe6
	t0.Square(&a.c0)
	t1.Square(&a.c1)
	t1.MulV(&t1)
	t0.Sub(&t0, &t1)
	if t0.IsZero() {
		panic("bn254: inversion of zero in Fp12")
	}
	var tInv fe6
	tInv.Invert(&t0)
	e.c0.Mul(&a.c0, &tInv)
	var negC1 fe6
	negC1.Neg(&a.c1)
	e.c1.Mul(&negC1, &tInv)
	return e
}

// Exp sets e = a^k using plain square-and-multiply. Negative k is not
// supported.
func (e *fe12) Exp(a *fe12, k *big.Int) *fe12 {
	if k.Sign() < 0 {
		panic("bn254: negative exponent in Fp12")
	}
	var acc fe12
	acc.SetOne()
	base := *a
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc.Square(&acc)
		if k.Bit(i) == 1 {
			acc.Mul(&acc, &base)
		}
	}
	return e.Set(&acc)
}

// CyclotomicSquare sets e = a² for a in the cyclotomic subgroup
// G_{Φ6(p²)} (elements g with g^(p⁴−p²+1) = 1, e.g. anything already
// raised to (p⁶−1)(p²+1)). Granger-Scott squaring [eprint 2009/565 §3.2]
// exploits the subgroup structure to square with 9 Fp2 squarings — half
// the base-field multiplications of a generic Square. The result is WRONG
// for elements outside the subgroup; only the final exponentiation's hard
// part uses it, and the differential pairing tests pin the combination.
//
// Writing a = (x0 + x1·v + x2·v²) + (x3 + x4·v + x5·v²)·w:
//
//	e0 = 3(x4²·ξ + x0²) − 2x0      e3 = 3·2x1x5·ξ + 2x3
//	e1 = 3(x2²·ξ + x3²) − 2x1      e4 = 3·2x0x4 + 2x4
//	e2 = 3(x5²·ξ + x1²) − 2x2      e5 = 3·2x2x3 + 2x5
//
// (the −2x/+2x terms use the conjugate structure of the subgroup).
func (e *fe12) CyclotomicSquare(a *fe12) *fe12 {
	var t [9]fe2
	t[0].Square(&a.c1.c1) // x4²
	t[1].Square(&a.c0.c0) // x0²
	t[6].Add(&a.c1.c1, &a.c0.c0)
	t[6].Square(&t[6])
	t[6].Sub(&t[6], &t[0])
	t[6].Sub(&t[6], &t[1]) // 2x4x0
	t[2].Square(&a.c0.c2)  // x2²
	t[3].Square(&a.c1.c0)  // x3²
	t[7].Add(&a.c0.c2, &a.c1.c0)
	t[7].Square(&t[7])
	t[7].Sub(&t[7], &t[2])
	t[7].Sub(&t[7], &t[3]) // 2x2x3
	t[4].Square(&a.c1.c2)  // x5²
	t[5].Square(&a.c0.c1)  // x1²
	t[8].Add(&a.c1.c2, &a.c0.c1)
	t[8].Square(&t[8])
	t[8].Sub(&t[8], &t[4])
	t[8].Sub(&t[8], &t[5]) // 2x5x1
	t[8].MulXi(&t[8])      // 2x5x1·ξ

	t[0].MulXi(&t[0])
	t[0].Add(&t[0], &t[1]) // x4²·ξ + x0²
	t[2].MulXi(&t[2])
	t[2].Add(&t[2], &t[3]) // x2²·ξ + x3²
	t[4].MulXi(&t[4])
	t[4].Add(&t[4], &t[5]) // x5²·ξ + x1²

	var s fe2
	s.Sub(&t[0], &a.c0.c0)
	s.Double(&s)
	e.c0.c0.Add(&s, &t[0])
	s.Sub(&t[2], &a.c0.c1)
	s.Double(&s)
	e.c0.c1.Add(&s, &t[2])
	s.Sub(&t[4], &a.c0.c2)
	s.Double(&s)
	e.c0.c2.Add(&s, &t[4])

	s.Add(&t[8], &a.c1.c0)
	s.Double(&s)
	e.c1.c0.Add(&s, &t[8])
	s.Add(&t[6], &a.c1.c1)
	s.Double(&s)
	e.c1.c1.Add(&s, &t[6])
	s.Add(&t[7], &a.c1.c2)
	s.Double(&s)
	e.c1.c2.Add(&s, &t[7])
	return e
}

// CycloExpWindow sets e = a^k with a fixed 4-bit window (14 precomputed
// multiplications for ~3/4 of the per-bit multiplies) and cyclotomic
// squarings; the base (and so every power) must lie in the cyclotomic
// subgroup. It is the final exponentiation's ~760-bit hard part.
func (e *fe12) CycloExpWindow(a *fe12, k *big.Int) *fe12 {
	if k.Sign() < 0 {
		panic("bn254: negative exponent in Fp12")
	}
	var table [16]fe12
	table[0].SetOne()
	table[1] = *a
	for i := 2; i < 16; i++ {
		table[i].Mul(&table[i-1], a)
	}
	var acc fe12
	acc.SetOne()
	bits := k.BitLen()
	start := (bits - 1) / 4 * 4
	for i := start; i >= 0; i -= 4 {
		if i != start {
			acc.CyclotomicSquare(&acc)
			acc.CyclotomicSquare(&acc)
			acc.CyclotomicSquare(&acc)
			acc.CyclotomicSquare(&acc)
		}
		w := (k.Bit(i+3) << 3) | (k.Bit(i+2) << 2) | (k.Bit(i+1) << 1) | k.Bit(i)
		if w != 0 {
			acc.Mul(&acc, &table[w])
		}
	}
	return e.Set(&acc)
}

// FrobeniusP2 sets e = a^(p²). On the tower basis {w^k : k = 0..5} over
// Fp2 the map is coefficient-wise: Fp2 coefficients are fixed (they have
// order dividing p²−1) and w^k picks up γ^k with γ = ξ^((p²−1)/6). The γ
// powers are derived at startup, not hardcoded.
func (e *fe12) FrobeniusP2(a *fe12) *fe12 {
	// Basis slots as powers of w: c0.c0 = w⁰, c1.c0 = w¹, c0.c1 = w²,
	// c1.c1 = w³, c0.c2 = w⁴, c1.c2 = w⁵.
	e.c0.c0 = a.c0.c0
	e.c1.c0.Mul(&a.c1.c0, &frobGammaP2[0])
	e.c0.c1.Mul(&a.c0.c1, &frobGammaP2[1])
	e.c1.c1.Mul(&a.c1.c1, &frobGammaP2[2])
	e.c0.c2.Mul(&a.c0.c2, &frobGammaP2[3])
	e.c1.c2.Mul(&a.c1.c2, &frobGammaP2[4])
	return e
}

// frobGammaP2[k−1] = γ^k for k = 1..5, γ = ξ^((p²−1)/6) ∈ Fp2.
var frobGammaP2 = deriveFrobGammaP2()

func deriveFrobGammaP2() (g [5]fe2) {
	exp := new(big.Int).Mul(P, P)
	exp.Sub(exp, big.NewInt(1))
	if new(big.Int).Mod(exp, big.NewInt(6)).Sign() != 0 {
		panic("bn254: 6 does not divide p²−1")
	}
	exp.Div(exp, big.NewInt(6))
	xi := fe2FromBig(big.NewInt(9), big.NewInt(1))
	var gamma fe2
	gamma.Exp(&xi, exp)
	g[0] = gamma
	for i := 1; i < 5; i++ {
		g[i].Mul(&g[i-1], &gamma)
	}
	return
}
