package bn254

import "math/big"

// This file implements the reduced Tate pairing
//
//	Pair(P, Q) = f_{r,P}(ψ(Q))^((p¹²−1)/r)
//
// on the Montgomery limb backend, producing bit-identical values to the
// big.Int reference implementation (ref_pairing.go) while running the
// Miller loop inversion-free in Jacobian coordinates.
//
// The Miller loop iterates over the bits of r = Order with the G1 argument
// P carried as a Jacobian point T. Each doubling/addition step produces a
// LINE evaluated at the untwisted second argument ψ(Q) = (x_Q·w², y_Q·w³):
//
//	ℓ = cst + xm·x_Q·w² + ym·y_Q·w³
//
// with cst, xm, ym ∈ Fp depending only on P's ladder — not on Q. Scaling a
// line by any Fp factor is invisible to the reduced pairing (Fp ⊂ Fp6 and
// (p⁶−1) divides the final exponent — the same fact that licenses
// denominator elimination in the reference), so the Jacobian formulas
// clear denominators instead of inverting:
//
//	doubling:  cst = 3X³ − 2Y²,  xm = −3X²Z²,  ym = 2YZ³
//	addition:  cst = R·xₚ − HZ·yₚ,  xm = −R,  ym = HZ
//	           (H = xₚZ² − X, R = yₚZ³ − Y)
//
// Because the coefficient triples depend only on P, they double as a
// fixed-argument precomputation: PrecomputeG1 runs the ladder once and
// replays it against many Q's (the mailbox-scan decrypt pattern).
//
// The final exponentiation splits (p¹²−1)/r as
// (p⁶−1)·(p²+1)·(p⁴−p²+1)/r: the first factor is conj(f)·f⁻¹, the second
// one Frobenius-p² and a multiplication (constants derived at startup, not
// hardcoded), leaving a ~761-bit windowed exponentiation — half the work
// of the reference's generic (p⁶+1)/r exponent, for the identical value.

// finalExpH is (p⁴ − p² + 1)/Order, the generic tail of the final
// exponentiation.
var finalExpH = deriveFinalExpH()

func deriveFinalExpH() *big.Int {
	p2 := new(big.Int).Mul(P, P)
	p4 := new(big.Int).Mul(p2, p2)
	h := new(big.Int).Sub(p4, p2)
	h.Add(h, big.NewInt(1))
	rem := new(big.Int)
	h, rem = new(big.Int).QuoRem(h, Order, rem)
	if rem.Sign() != 0 {
		panic("bn254: Order does not divide p⁴ − p² + 1")
	}
	return h
}

// lineCoeff is one Miller-loop line: ℓ = cst + xm·x_Q·w² + ym·y_Q·w³.
// vertical marks degenerate steps whose line is a vertical (an Fp6 value),
// dropped under denominator elimination.
type lineCoeff struct {
	cst, xm, ym fe
	vertical    bool
}

// g1Lines runs the Tate Miller ladder on p and returns the line
// coefficients for every doubling/addition step, in evaluation order.
func g1Lines(p *G1) []lineCoeff {
	coeffs := make([]lineCoeff, 0, 2*Order.BitLen())
	var t g1Jac
	t.fromAffine(p)
	for i := Order.BitLen() - 2; i >= 0; i-- {
		coeffs = doubleStep(coeffs, &t)
		if Order.Bit(i) == 1 {
			coeffs = addStep(coeffs, &t, p)
		}
	}
	if !t.isInfinity() {
		panic("bn254: Miller loop did not terminate at infinity")
	}
	return coeffs
}

// doubleStep appends the tangent line at T and doubles T.
func doubleStep(coeffs []lineCoeff, t *g1Jac) []lineCoeff {
	if t.isInfinity() {
		return append(coeffs, lineCoeff{vertical: true})
	}
	var c lineCoeff
	var A, B, ZZ, tmp fe
	feSquare(&A, &t.x)  // X²
	feSquare(&B, &t.y)  // Y²
	feSquare(&ZZ, &t.z) // Z²
	// cst = 3X·A − 2B = 3X³ − 2Y²
	feMul(&c.cst, &t.x, &A)
	feMulBy3(&c.cst, &c.cst)
	feDouble(&tmp, &B)
	feSub(&c.cst, &c.cst, &tmp)
	// xm = −3A·ZZ = −3X²Z²
	feMulBy3(&c.xm, &A)
	feMul(&c.xm, &c.xm, &ZZ)
	feNeg(&c.xm, &c.xm)
	// ym = 2YZ·ZZ = 2YZ³
	feMul(&c.ym, &t.y, &t.z)
	feDouble(&c.ym, &c.ym)
	feMul(&c.ym, &c.ym, &ZZ)
	t.double(t)
	return append(coeffs, c)
}

// addStep appends the chord line through T and p, and sets T = T + p.
func addStep(coeffs []lineCoeff, t *g1Jac, p *G1) []lineCoeff {
	if t.isInfinity() {
		t.fromAffine(p)
		return append(coeffs, lineCoeff{vertical: true})
	}
	var zz, u2, s2, h, r fe
	feSquare(&zz, &t.z)
	feMul(&u2, &p.x, &zz)
	feMul(&s2, &p.y, &t.z)
	feMul(&s2, &s2, &zz)
	feSub(&h, &u2, &t.x) // H = xₚZ² − X
	feSub(&r, &s2, &t.y) // R = yₚZ³ − Y
	if h.IsZero() {
		if r.IsZero() {
			// T == p: the chord degenerates to the tangent
			// (unreachable for the prime-order ladder, handled for
			// parity with the reference).
			return doubleStep(coeffs, t)
		}
		// T == −p: vertical line, T + p = ∞.
		t.setInfinity()
		return append(coeffs, lineCoeff{vertical: true})
	}
	var c lineCoeff
	var hz fe
	feMul(&hz, &h, &t.z)
	// cst = R·xₚ − HZ·yₚ
	feMul(&c.cst, &r, &p.x)
	var tmp fe
	feMul(&tmp, &hz, &p.y)
	feSub(&c.cst, &c.cst, &tmp)
	feNeg(&c.xm, &r) // xm = −R
	c.ym = hz        // ym = HZ
	// Mixed addition reusing H and R.
	var h2, h3, v fe
	feSquare(&h2, &h)
	feMul(&h3, &h, &h2)
	feMul(&v, &t.x, &h2)
	var x3, y3, z3 fe
	feSquare(&x3, &r)
	feSub(&x3, &x3, &h3)
	feDouble(&tmp, &v)
	feSub(&x3, &x3, &tmp)
	feSub(&tmp, &v, &x3)
	feMul(&y3, &r, &tmp)
	feMul(&tmp, &t.y, &h3)
	feSub(&y3, &y3, &tmp)
	feMul(&z3, &t.z, &h)
	t.x, t.y, t.z = x3, y3, z3
	return append(coeffs, c)
}

// evalLines replays a line-coefficient ladder against Q = (xq, yq),
// returning the unreduced Miller value f_{r,P}(ψ(Q)) (up to Fp6 factors,
// which the final exponentiation kills).
func evalLines(coeffs []lineCoeff, xq, yq *fe2) *fe12 {
	f := new(fe12)
	evalLinesInto(f, coeffs, xq, yq)
	return f
}

// evalLinesInto is evalLines writing into caller-owned storage, so the
// batched scan pipeline can run Miller loops without allocating.
func evalLinesInto(f *fe12, coeffs []lineCoeff, xq, yq *fe2) {
	f.SetOne()
	k := 0
	apply := func() {
		c := &coeffs[k]
		k++
		if c.vertical {
			return
		}
		var b, cc fe2
		b.MulFe(xq, &c.xm)
		cc.MulFe(yq, &c.ym)
		f.MulLine(f, &c.cst, &b, &cc)
	}
	for i := Order.BitLen() - 2; i >= 0; i-- {
		f.Square(f)
		apply()
		if Order.Bit(i) == 1 {
			apply()
		}
	}
}

// finalExp maps a Miller value into GT:
// f ↦ f^((p¹²−1)/r) = ((conj(f)·f⁻¹)^(p²+1))^((p⁴−p²+1)/r).
func finalExp(f *fe12) *fe12 {
	var inv, g fe12
	inv.Invert(f)
	g.Conjugate(f)
	g.Mul(&g, &inv) // f^(p⁶−1)
	var t fe12
	t.FrobeniusP2(&g)
	t.Mul(&t, &g) // ^(p²+1); now in the cyclotomic subgroup
	out := new(fe12)
	out.CycloExpWindow(&t, finalExpH)
	return out
}

// finalExpDecomp is finalExp with the hard part evaluated through the
// Devegili–Scott Frobenius decomposition (finalExpHardDecomp) instead of
// the generic windowed exponentiation. The two agree on every input —
// finalExp stays as the slow differential oracle, and a pin test enforces
// both the equality and the speedup.
func finalExpDecomp(f *fe12) *fe12 {
	var inv, g fe12
	inv.Invert(f)
	g.Conjugate(f)
	g.Mul(&g, &inv) // f^(p⁶−1)
	var t fe12
	t.FrobeniusP2(&g)
	t.Mul(&t, &g) // ^(p²+1); now in the cyclotomic subgroup
	out := new(fe12)
	finalExpHardDecomp(out, &t)
	return out
}

// Pair computes the reduced Tate pairing e(p, q) ∈ GT. Pairing with the
// identity in either argument returns the identity of GT. It keeps the
// generic windowed final exponentiation as the differential oracle for
// the decomposed hard part used by the batch pipelines and PairingCheck.
func Pair(p *G1, q *G2) *GT {
	if p.IsInfinity() || q.IsInfinity() {
		return GTOne()
	}
	return &GT{e: *finalExp(evalLines(g1Lines(p), &q.x, &q.y))}
}

// PairingCheck reports whether ∏ e(p[i], q[i]) == 1. It is used by BLS
// signature verification: e(sig, G2) == e(H(m), pk) is checked as
// e(sig, −G2)·e(H(m), pk) == 1. The Miller values are multiplied before a
// single shared final exponentiation, taken through the decomposed hard
// part (the scalar Pair retains the windowed path as its oracle).
func PairingCheck(ps []*G1, qs []*G2) bool {
	if len(ps) != len(qs) {
		return false
	}
	var acc fe12
	acc.SetOne()
	nontrivial := false
	for i := range ps {
		if ps[i].IsInfinity() || qs[i].IsInfinity() {
			continue
		}
		acc.Mul(&acc, evalLines(g1Lines(ps[i]), &qs[i].x, &qs[i].y))
		nontrivial = true
	}
	if !nontrivial {
		return true
	}
	return finalExpDecomp(&acc).IsOne()
}

// PrecomputedG1 holds the Miller-loop line coefficients of a fixed G1
// point. In the Tate pairing the first argument carries the ladder, so a
// fixed P — an identity private key trial-decrypting a whole mailbox —
// pays for its point arithmetic once and replays ~380 coefficient triples
// against every Q.
type PrecomputedG1 struct {
	coeffs []lineCoeff
	inf    bool
}

// PrecomputeG1 runs the Miller ladder for p once, for repeated pairing
// against many G2 points.
func PrecomputeG1(p *G1) *PrecomputedG1 {
	if p.IsInfinity() {
		return &PrecomputedG1{inf: true}
	}
	return &PrecomputedG1{coeffs: g1Lines(p)}
}

// Erase zeroes the line coefficients in place. They fully determine the
// pairing of the fixed point (Pair works without the point itself), so
// key-erasure call sites must scrub them like the key. An erased
// precomputation behaves like the precomputation of infinity (Pair
// returns the identity), mirroring an erased key point.
func (pc *PrecomputedG1) Erase() {
	for i := range pc.coeffs {
		pc.coeffs[i] = lineCoeff{}
	}
	pc.coeffs = nil
	pc.inf = true
}

// Pair computes e(p, q) for the precomputed p, identical in value to
// Pair(p, q).
func (pc *PrecomputedG1) Pair(q *G2) *GT {
	if pc.inf || q.IsInfinity() {
		return GTOne()
	}
	return &GT{e: *finalExp(evalLines(pc.coeffs, &q.x, &q.y))}
}

// PrecomputedG2 caches the fixed G2 argument of repeated pairings — the
// aggregated master public key that Encrypt and cover-traffic generation
// pair against thousands of times per round. The Tate ladder runs on the
// G1 side, so the cacheable work for a fixed Q is its untwisted evaluation
// coordinates; the API exists so fixed-key call sites express the intent
// once and stay in the limb domain.
type PrecomputedG2 struct {
	xq, yq fe2
	inf    bool
}

// PrecomputeG2 prepares q for repeated pairing.
func PrecomputeG2(q *G2) *PrecomputedG2 {
	if q.IsInfinity() {
		return &PrecomputedG2{inf: true}
	}
	return &PrecomputedG2{xq: q.x, yq: q.y}
}

// Pair computes e(p, q) for the precomputed q, identical in value to
// Pair(p, q).
func (pc *PrecomputedG2) Pair(p *G1) *GT {
	if pc.inf || p.IsInfinity() {
		return GTOne()
	}
	return &GT{e: *finalExp(evalLines(g1Lines(p), &pc.xq, &pc.yq))}
}
