package bn254

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

// Property tests over the group structure that the higher layers
// (Anytrust-IBE key aggregation, BLS multisignatures, keywheel DH) depend
// on. Scalars are kept small-ish so each property check stays fast; the
// algebra is identical at any scalar size.

func smallScalar(k uint16) *big.Int {
	return big.NewInt(int64(k%1021) + 1)
}

func TestG1ScalarMultDistributes(t *testing.T) {
	g := G1Generator()
	prop := func(a, b uint16) bool {
		ka, kb := smallScalar(a), smallScalar(b)
		// (a+b)G == aG + bG
		lhs := new(G1).ScalarMult(g, new(big.Int).Add(ka, kb))
		rhs := new(G1).Add(new(G1).ScalarMult(g, ka), new(G1).ScalarMult(g, kb))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestG1ScalarMultAssociates(t *testing.T) {
	g := G1Generator()
	prop := func(a, b uint16) bool {
		ka, kb := smallScalar(a), smallScalar(b)
		// a(bG) == (ab)G
		lhs := new(G1).ScalarMult(new(G1).ScalarMult(g, kb), ka)
		rhs := new(G1).ScalarMult(g, new(big.Int).Mul(ka, kb))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestG2ScalarMultDistributes(t *testing.T) {
	g := G2Generator()
	prop := func(a, b uint16) bool {
		ka, kb := smallScalar(a), smallScalar(b)
		lhs := new(G2).ScalarMult(g, new(big.Int).Add(ka, kb))
		rhs := new(G2).Add(new(G2).ScalarMult(g, ka), new(G2).ScalarMult(g, kb))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

func TestG1MarshalRoundTripProperty(t *testing.T) {
	g := G1Generator()
	prop := func(a uint16) bool {
		p := new(G1).ScalarMult(g, smallScalar(a))
		q := new(G1)
		if err := q.Unmarshal(p.Marshal()); err != nil {
			return false
		}
		return p.Equal(q)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestG2MarshalRoundTripProperty(t *testing.T) {
	g := G2Generator()
	prop := func(a uint16) bool {
		p := new(G2).ScalarMult(g, smallScalar(a))
		q := new(G2)
		if err := q.Unmarshal(p.Marshal()); err != nil {
			return false
		}
		return p.Equal(q)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

func TestScalarMultMatchesRepeatedAddition(t *testing.T) {
	g := G1Generator()
	acc := new(G1).SetInfinity()
	for k := 1; k <= 8; k++ {
		acc.Add(acc, g)
		if !acc.Equal(new(G1).ScalarMult(g, big.NewInt(int64(k)))) {
			t.Fatalf("k=%d: repeated addition disagrees with ScalarMult", k)
		}
	}
}

func TestHashToG1Distribution(t *testing.T) {
	// Different inputs nearly always hit different points; collect a few
	// and ensure all distinct and on-curve.
	seen := make(map[string]bool)
	var buf [8]byte
	for i := 0; i < 24; i++ {
		if _, err := rand.Read(buf[:]); err != nil {
			t.Fatal(err)
		}
		p := HashToG1("dist", buf[:])
		if !p.IsOnCurve() {
			t.Fatal("hash output off-curve")
		}
		key := string(p.Marshal())
		if seen[key] {
			t.Fatal("hash collision on random inputs")
		}
		seen[key] = true
	}
}

func TestRandomScalarRange(t *testing.T) {
	for i := 0; i < 32; i++ {
		k, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if k.Sign() <= 0 || k.Cmp(Order) >= 0 {
			t.Fatalf("scalar out of range: %v", k)
		}
	}
}

func TestGTExpDistributes(t *testing.T) {
	e := Pair(G1Generator(), G2Generator())
	a, b := big.NewInt(712), big.NewInt(3001)
	lhs := new(GT).Mul(new(GT).Exp(e, a), new(GT).Exp(e, b))
	rhs := new(GT).Exp(e, new(big.Int).Add(a, b))
	if !lhs.Equal(rhs) {
		t.Fatal("GT exponent addition law failed")
	}
	// Inverse law: e^a · (e^a)^-1 == 1
	inv := new(GT).Invert(new(GT).Exp(e, a))
	if !new(GT).Mul(new(GT).Exp(e, a), inv).IsOne() {
		t.Fatal("GT inverse law failed")
	}
}
