package bn254

import (
	"math/big"
	"math/bits"
)

// fe is a base-field element in Montgomery form: the value represented is
// fe·R⁻¹ mod P with R = 2²⁵⁶, stored as four 64-bit limbs, least
// significant first. Elements are always kept fully reduced (< P), so limb
// equality is value equality.
//
// This is the limb backend that replaced the original big.Int field
// arithmetic (retained as the fp* reference implementation for
// differential tests). All operations are allocation-free; values live on
// the stack. The boundary-conversion rule: values enter the Montgomery
// domain in feFromBig/feSetBytes and leave it in feToBig/feBytes —
// everything in between (towers, curve arithmetic, the Miller loop)
// stays in-domain, so there are no Mod calls and no heap traffic on the
// pairing hot path.
type fe [4]uint64

// feAdd sets z = x + y mod P.
func feAdd(z, x, y *fe) {
	t0, c := bits.Add64(x[0], y[0], 0)
	t1, c := bits.Add64(x[1], y[1], c)
	t2, c := bits.Add64(x[2], y[2], c)
	t3, _ := bits.Add64(x[3], y[3], c)
	// x, y < P < 2²⁵⁴ so the sum fits without a carry out; one trial
	// subtraction both detects and performs the reduction.
	s0, b := bits.Sub64(t0, feP[0], 0)
	s1, b := bits.Sub64(t1, feP[1], b)
	s2, b := bits.Sub64(t2, feP[2], b)
	s3, b := bits.Sub64(t3, feP[3], b)
	if b == 0 {
		z[0], z[1], z[2], z[3] = s0, s1, s2, s3
	} else {
		z[0], z[1], z[2], z[3] = t0, t1, t2, t3
	}
}

// feDouble sets z = 2x mod P.
func feDouble(z, x *fe) { feAdd(z, x, x) }

// feReduce conditionally subtracts P once, for values in [0, 2P).
func feReduce(z *fe) {
	s0, b := bits.Sub64(z[0], feP[0], 0)
	s1, b := bits.Sub64(z[1], feP[1], b)
	s2, b := bits.Sub64(z[2], feP[2], b)
	s3, b := bits.Sub64(z[3], feP[3], b)
	if b == 0 {
		z[0], z[1], z[2], z[3] = s0, s1, s2, s3
	}
}

// feLessThanP reports whether z < P.
func feLessThanP(z *fe) bool {
	var b uint64
	_, b = bits.Sub64(z[0], feP[0], 0)
	_, b = bits.Sub64(z[1], feP[1], b)
	_, b = bits.Sub64(z[2], feP[2], b)
	_, b = bits.Sub64(z[3], feP[3], b)
	return b == 1
}

// feSub sets z = x − y mod P.
func feSub(z, x, y *fe) {
	var b uint64
	z[0], b = bits.Sub64(x[0], y[0], 0)
	z[1], b = bits.Sub64(x[1], y[1], b)
	z[2], b = bits.Sub64(x[2], y[2], b)
	z[3], b = bits.Sub64(x[3], y[3], b)
	if b != 0 {
		var c uint64
		z[0], c = bits.Add64(z[0], feP[0], 0)
		z[1], c = bits.Add64(z[1], feP[1], c)
		z[2], c = bits.Add64(z[2], feP[2], c)
		z[3], _ = bits.Add64(z[3], feP[3], c)
	}
}

// feNeg sets z = −x mod P.
func feNeg(z, x *fe) {
	if x.IsZero() {
		*z = fe{}
		return
	}
	var b uint64
	z[0], b = bits.Sub64(feP[0], x[0], 0)
	z[1], b = bits.Sub64(feP[1], x[1], b)
	z[2], b = bits.Sub64(feP[2], x[2], b)
	z[3], _ = bits.Sub64(feP[3], x[3], b)
}

// feMul sets z = x·y·R⁻¹ mod P: the Montgomery product. It computes the
// full 512-bit product (operand scanning, fully unrolled) and then applies
// word-by-word Montgomery reduction; inputs and output are fully reduced.
// Per row the invariant is textbook: x_i·y_j + t_{i+j} + carry < 2¹²⁸, so
// the high word never overflows when the two add-carries fold in.
func feMul(z, x, y *fe) {
	var t [8]uint64
	var carry, c, hi, lo uint64

	// Row 0: t = x0·y.
	hi, t[0] = bits.Mul64(x[0], y[0])
	carry = hi
	hi, lo = bits.Mul64(x[0], y[1])
	t[1], c = bits.Add64(lo, carry, 0)
	carry = hi + c
	hi, lo = bits.Mul64(x[0], y[2])
	t[2], c = bits.Add64(lo, carry, 0)
	carry = hi + c
	hi, lo = bits.Mul64(x[0], y[3])
	t[3], c = bits.Add64(lo, carry, 0)
	t[4] = hi + c

	// Rows 1-3: t += x_i·y << 64i.
	for i := 1; i < 4; i++ {
		xi := x[i]
		hi, lo = bits.Mul64(xi, y[0])
		lo, c = bits.Add64(lo, t[i], 0)
		hi += c
		t[i] = lo
		carry = hi
		hi, lo = bits.Mul64(xi, y[1])
		lo, c = bits.Add64(lo, t[i+1], 0)
		hi += c
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[i+1] = lo
		carry = hi
		hi, lo = bits.Mul64(xi, y[2])
		lo, c = bits.Add64(lo, t[i+2], 0)
		hi += c
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[i+2] = lo
		carry = hi
		hi, lo = bits.Mul64(xi, y[3])
		lo, c = bits.Add64(lo, t[i+3], 0)
		hi += c
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[i+3] = lo
		t[i+4] = hi
	}
	feMontReduce(z, &t)
}

// feSquare sets z = x²·R⁻¹ mod P.
func feSquare(z, x *fe) { feMul(z, x, x) }

// feMontReduce folds a 512-bit value t into z = t·R⁻¹ mod P. For inputs
// t < P·2²⁵⁶ (every product of reduced elements qualifies) the result
// fits in four limbs before the final conditional subtraction. Each round
// zeroes limb i by adding m·P with m = t_i·(−P⁻¹) mod 2⁶⁴; the round's
// carry lands on limb i+4 and the single carry bit e chains upward.
func feMontReduce(z *fe, t *[8]uint64) {
	var e, carry, c, hi, lo uint64
	for i := 0; i < 4; i++ {
		m := t[i] * feNP
		hi, lo = bits.Mul64(m, feP[0])
		_, c = bits.Add64(lo, t[i], 0) // low limb cancels by construction
		carry = hi + c
		hi, lo = bits.Mul64(m, feP[1])
		lo, c = bits.Add64(lo, t[i+1], 0)
		hi += c
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[i+1] = lo
		carry = hi
		hi, lo = bits.Mul64(m, feP[2])
		lo, c = bits.Add64(lo, t[i+2], 0)
		hi += c
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[i+2] = lo
		carry = hi
		hi, lo = bits.Mul64(m, feP[3])
		lo, c = bits.Add64(lo, t[i+3], 0)
		hi += c
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[i+3] = lo
		t[i+4], e = bits.Add64(t[i+4], hi, e)
	}
	z[0], z[1], z[2], z[3] = t[4], t[5], t[6], t[7]
	feReduce(z)
}

// feFromMont leaves the Montgomery domain: z = x·R⁻¹ mod P.
func feFromMont(z, x *fe) {
	t := [8]uint64{x[0], x[1], x[2], x[3]}
	feMontReduce(z, &t)
}

// IsZero reports whether the element is zero (in either domain).
func (x *fe) IsZero() bool { return x[0]|x[1]|x[2]|x[3] == 0 }

// Equal reports limb equality, which is value equality because elements
// are kept fully reduced.
func (x *fe) Equal(y *fe) bool {
	return x[0] == y[0] && x[1] == y[1] && x[2] == y[2] && x[3] == y[3]
}

// feExp sets z = x^e mod P (e ≥ 0, not secret) by square-and-multiply.
func feExp(z, x *fe, e *big.Int) {
	acc := feOne
	base := *x
	for i := e.BitLen() - 1; i >= 0; i-- {
		feSquare(&acc, &acc)
		if e.Bit(i) == 1 {
			feMul(&acc, &acc, &base)
		}
	}
	*z = acc
}

// feInv sets z = x⁻¹ mod P via Fermat (x^(P−2)). It panics on zero, which
// would indicate a bug in a caller (all callers guard against zero
// denominators), matching the fpInv reference.
func feInv(z, x *fe) {
	if x.IsZero() {
		panic("bn254: inversion of zero")
	}
	feExp(z, x, pMinus2)
}

// feSqrt sets z to the principal square root x^((P+1)/4) and reports
// whether x is a quadratic residue. The root agrees exactly with the
// fpSqrt reference, which callers rely on for deterministic hash-to-curve.
func feSqrt(z, x *fe) bool {
	var r, r2 fe
	feExp(&r, x, pSqrtExp)
	feSquare(&r2, &r)
	if !r2.Equal(x) {
		return false
	}
	*z = r
	return true
}

// feFromBig converts a (reduced or unreduced) big.Int into Montgomery form.
func feFromBig(z *fe, x *big.Int) {
	v := x
	if v.Sign() < 0 || v.Cmp(P) >= 0 {
		v = new(big.Int).Mod(x, P)
	}
	var raw fe
	feRawFromBig(&raw, v)
	feMul(z, &raw, &feR2)
}

// feRawFromBig converts a reduced big.Int into four little-endian limbs
// via the canonical byte encoding, independent of the platform's
// big.Word size (Bits() words are 32-bit on GOARCH=386/arm).
func feRawFromBig(raw *fe, v *big.Int) {
	var buf [32]byte
	v.FillBytes(buf[:])
	feRawSetBytes(raw, buf[:])
}

// feRawSetBytes decodes 32 big-endian bytes into little-endian limbs.
func feRawSetBytes(raw *fe, buf []byte) {
	for i := 0; i < 4; i++ {
		var limb uint64
		for j := 0; j < 8; j++ {
			limb = limb<<8 | uint64(buf[i*8+j])
		}
		raw[3-i] = limb
	}
}

// feToBig converts out of Montgomery form into a fresh big.Int.
func feToBig(x *fe) *big.Int {
	var raw fe
	feFromMont(&raw, x)
	var buf [32]byte
	feRawBytes(&raw, &buf)
	return new(big.Int).SetBytes(buf[:])
}

// feBytes writes the canonical 32-byte big-endian encoding of x into buf,
// matching big.Int.FillBytes on the represented value.
func feBytes(x *fe, buf *[32]byte) {
	var raw fe
	feFromMont(&raw, x)
	feRawBytes(&raw, buf)
}

// feRawBytes encodes four little-endian limbs as 32 big-endian bytes.
func feRawBytes(raw *fe, buf *[32]byte) {
	for i := 0; i < 4; i++ {
		limb := raw[3-i]
		for j := 0; j < 8; j++ {
			buf[i*8+j] = byte(limb >> (56 - 8*j))
		}
	}
}

// feSetBytes parses a 32-byte big-endian encoding, reporting whether the
// value is canonical (< P).
func feSetBytes(z *fe, buf []byte) bool {
	var raw fe
	feRawSetBytes(&raw, buf)
	if !feLessThanP(&raw) {
		return false
	}
	feMul(z, &raw, &feR2)
	return true
}

// feMulBy3 sets z = 3x via additions (cheaper than a Montgomery product).
func feMulBy3(z, x *fe) {
	var t fe
	feDouble(&t, x)
	feAdd(z, &t, x)
}

// feMulBy9 sets z = 9x = 8x + x.
func feMulBy9(z, x *fe) {
	var t fe
	feDouble(&t, x)
	feDouble(&t, &t)
	feDouble(&t, &t)
	feAdd(z, &t, x)
}
