package bn254

import (
	"math/big"
	"sync"
)

// Fixed-base comb tables (Lim–Lee) for the two generators.
//
// A 256-bit scalar is viewed as a combTeeth × combCols bit matrix: tooth j
// covers bits [j·combCols, (j+1)·combCols). Column col selects one bit from
// each tooth, forming an index idx = Σ_j bit(j·combCols + col)·2^j, and the
// precomputed table stores, for every nonzero idx,
//
//	combTable[idx−1] = Σ_{j: bit j of idx set} 2^(j·combCols)·G.
//
// The multiply then walks columns from most to least significant: one
// doubling plus at most one mixed addition per column — 31 doublings and
// ≤32 additions versus the generic ladder's 254 doublings and ~127
// additions. No table entry can be infinity: every combination scalar is a
// sum of distinct powers 2^(32j) with j ≤ 7, hence < 2^225 < Order, and
// the generators have order Order.
//
// Tables are built lazily on first use (two shared-inversion affine
// passes via the batch helpers: 8 spaced generators, then all 255
// combinations), and are strictly internal — scalar multiplication
// results remain bit-identical to the Jacobian ladder.
const (
	combTeeth = 8
	combCols  = 32
	combSize  = 1<<combTeeth - 1
)

var (
	g1CombOnce sync.Once
	g1CombTab  *[combSize]G1

	g2CombOnce sync.Once
	g2CombTab  *[combSize]G2
)

func g1Comb() *[combSize]G1 {
	g1CombOnce.Do(func() {
		// Spaced generators base[j] = 2^(32j)·G via 224 doublings.
		var spaced [combTeeth]g1Jac
		spaced[0].fromAffine(G1Generator())
		for j := 1; j < combTeeth; j++ {
			spaced[j] = spaced[j-1]
			for i := 0; i < combCols; i++ {
				spaced[j].double(&spaced[j])
			}
		}
		var base [combTeeth]G1
		g1JacBatchToAffine(spaced[:], base[:])

		var jacs [combSize]g1Jac
		for idx := 1; idx <= combSize; idx++ {
			low := idx & (-idx) // lowest set bit
			j := 0
			for 1<<j != low {
				j++
			}
			if idx == low {
				jacs[idx-1].fromAffine(&base[j])
			} else {
				jacs[idx-1].addMixed(&jacs[idx-low-1], &base[j])
			}
		}
		tab := new([combSize]G1)
		g1JacBatchToAffine(jacs[:], tab[:])
		for i := range tab {
			if tab[i].inf {
				panic("bn254: G1 comb table contains infinity")
			}
		}
		g1CombTab = tab
	})
	return g1CombTab
}

func g2Comb() *[combSize]G2 {
	g2CombOnce.Do(func() {
		var spaced [combTeeth]g2Jac
		spaced[0].fromAffine(G2Generator())
		for j := 1; j < combTeeth; j++ {
			spaced[j] = spaced[j-1]
			for i := 0; i < combCols; i++ {
				spaced[j].double(&spaced[j])
			}
		}
		var base [combTeeth]G2
		g2JacBatchToAffine(spaced[:], base[:])

		var jacs [combSize]g2Jac
		for idx := 1; idx <= combSize; idx++ {
			low := idx & (-idx)
			j := 0
			for 1<<j != low {
				j++
			}
			if idx == low {
				jacs[idx-1].fromAffine(&base[j])
			} else {
				jacs[idx-1].addMixed(&jacs[idx-low-1], &base[j])
			}
		}
		tab := new([combSize]G2)
		g2JacBatchToAffine(jacs[:], tab[:])
		for i := range tab {
			if tab[i].inf {
				panic("bn254: G2 comb table contains infinity")
			}
		}
		g2CombTab = tab
	})
	return g2CombTab
}

// combScalarBytes reduces k mod Order and fills buf with its 32-byte
// big-endian encoding.
func combScalarBytes(buf *[32]byte, k *big.Int) {
	kr := k
	if k.Sign() < 0 || k.Cmp(Order) >= 0 {
		kr = new(big.Int).Mod(k, Order)
	}
	kr.FillBytes(buf[:])
}

// combIndex extracts the comb digit for one column: bit j·combCols+col of
// the big-endian scalar encoding lands in bit j of the index.
func combIndex(buf *[32]byte, col int) int {
	idx := 0
	for j := 0; j < combTeeth; j++ {
		bit := j*combCols + col
		idx |= int(buf[31-bit>>3]>>(bit&7)&1) << j
	}
	return idx
}

func g1CombMult(acc *g1Jac, buf *[32]byte) {
	tab := g1Comb()
	acc.setInfinity()
	for col := combCols - 1; col >= 0; col-- {
		acc.double(acc)
		if idx := combIndex(buf, col); idx != 0 {
			acc.addMixed(acc, &tab[idx-1])
		}
	}
}

func g2CombMult(acc *g2Jac, buf *[32]byte) {
	tab := g2Comb()
	acc.setInfinity()
	for col := combCols - 1; col >= 0; col-- {
		acc.double(acc)
		if idx := combIndex(buf, col); idx != 0 {
			acc.addMixed(acc, &tab[idx-1])
		}
	}
}

// G2ScalarBaseMultBatch computes kᵢ·G2gen for a whole slice of scalars,
// running the comb ladders in Jacobian form and converting every result
// to affine in one shared-inversion pass. Used by batched noise
// generation; results are identical to calling ScalarBaseMult per scalar.
func G2ScalarBaseMultBatch(ks []*big.Int) []*G2 {
	jacs := make([]g2Jac, len(ks))
	var buf [32]byte
	for i, k := range ks {
		combScalarBytes(&buf, k)
		g2CombMult(&jacs[i], &buf)
	}
	pts := make([]G2, len(ks))
	g2JacBatchToAffine(jacs, pts)
	out := make([]*G2, len(ks))
	for i := range pts {
		out[i] = &pts[i]
	}
	return out
}
