package bn254

// Fuzz harnesses cross-checking the limb backend against the big.Int
// reference on arbitrary untrusted inputs. `go test` runs the seed corpus
// on every CI pass; `go test -fuzz=FuzzG1Unmarshal ./internal/bn254`
// explores further.

import (
	"bytes"
	"math/big"
	"testing"
)

func FuzzFeSetBytes(f *testing.F) {
	f.Add(make([]byte, 32))
	f.Add(bytes.Repeat([]byte{0xff}, 32))
	var pb [32]byte
	P.FillBytes(pb[:])
	f.Add(pb[:])
	pm := new(big.Int).Sub(P, big.NewInt(1))
	pm.FillBytes(pb[:])
	f.Add(pb[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) != 32 {
			return
		}
		v := new(big.Int).SetBytes(data)
		var z fe
		ok := feSetBytes(&z, data)
		if ok != (v.Cmp(P) < 0) {
			t.Fatalf("feSetBytes canonicality disagrees with big.Int on %x", data)
		}
		if ok {
			if feToBig(&z).Cmp(v) != 0 {
				t.Fatalf("feSetBytes value mismatch on %x", data)
			}
			var buf [32]byte
			feBytes(&z, &buf)
			if !bytes.Equal(buf[:], data) {
				t.Fatalf("feBytes round trip mismatch on %x", data)
			}
		}
	})
}

func FuzzG1Unmarshal(f *testing.F) {
	f.Add(G1Generator().Marshal())
	f.Add(make([]byte, g1MarshalledSize))
	f.Add(new(G1).ScalarBaseMult(big.NewInt(7)).Marshal())
	bad := G1Generator().Marshal()
	bad[63] ^= 1
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		p := new(G1)
		r := new(refG1)
		errLimb := p.Unmarshal(data)
		errRef := r.Unmarshal(data)
		if (errLimb == nil) != (errRef == nil) {
			t.Fatalf("G1 acceptance disagreement on %x: limb=%v ref=%v", data, errLimb, errRef)
		}
		if errLimb == nil && !bytes.Equal(p.Marshal(), r.Marshal()) {
			t.Fatalf("G1 re-encoding disagreement on %x", data)
		}
	})
}

func FuzzG2Unmarshal(f *testing.F) {
	f.Add(G2Generator().Marshal())
	f.Add(make([]byte, g2MarshalledSize))
	bad := G2Generator().Marshal()
	bad[127] ^= 1
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		// The reference subgroup check costs milliseconds; cap the work
		// per input by rejecting wrong lengths first, as both backends do.
		p := new(G2)
		r := new(refG2)
		errLimb := p.Unmarshal(data)
		errRef := r.Unmarshal(data)
		if (errLimb == nil) != (errRef == nil) {
			t.Fatalf("G2 acceptance disagreement on %x: limb=%v ref=%v", data, errLimb, errRef)
		}
		if errLimb == nil && !bytes.Equal(p.Marshal(), r.Marshal()) {
			t.Fatalf("G2 re-encoding disagreement on %x", data)
		}
	})
}
