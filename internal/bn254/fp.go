package bn254

import (
	"io"
	"math/big"
)

// Base-field helpers of the big.Int REFERENCE backend. All functions
// return values fully reduced mod P; receiver-free helpers keep aliasing
// rules trivial (results are always freshly allocated).
//
// The production arithmetic lives in fe.go (Montgomery limbs). These
// helpers and the gfP2/gfP6/gfP12 towers and refG1/refG2/refGT groups
// built on them are retained as the differential-testing oracle: slow,
// simple, and independent of the limb code's carry chains.

func fpNew() *big.Int { return new(big.Int) }

func fpAdd(a, b *big.Int) *big.Int {
	z := new(big.Int).Add(a, b)
	if z.Cmp(P) >= 0 {
		z.Sub(z, P)
	}
	return z
}

func fpSub(a, b *big.Int) *big.Int {
	z := new(big.Int).Sub(a, b)
	if z.Sign() < 0 {
		z.Add(z, P)
	}
	return z
}

func fpNeg(a *big.Int) *big.Int {
	if a.Sign() == 0 {
		return new(big.Int)
	}
	return new(big.Int).Sub(P, a)
}

func fpMul(a, b *big.Int) *big.Int {
	z := new(big.Int).Mul(a, b)
	return z.Mod(z, P)
}

func fpSquare(a *big.Int) *big.Int {
	z := new(big.Int).Mul(a, a)
	return z.Mod(z, P)
}

func fpDouble(a *big.Int) *big.Int { return fpAdd(a, a) }

// fpInv returns a⁻¹ mod P. It panics on zero, which would indicate a bug in
// a caller (all callers guard against zero denominators).
func fpInv(a *big.Int) *big.Int {
	if a.Sign() == 0 {
		panic("bn254: inversion of zero")
	}
	return new(big.Int).ModInverse(a, P)
}

func fpExp(a, e *big.Int) *big.Int {
	return new(big.Int).Exp(a, e, P)
}

// fpSqrt returns a square root of a mod P and true, or nil and false if a is
// a quadratic non-residue. P ≡ 3 (mod 4), so the root is a^((P+1)/4); the
// exponent is the hoisted pSqrtExp constant.
func fpSqrt(a *big.Int) (*big.Int, bool) {
	r := fpExp(a, pSqrtExp)
	if fpSquare(r).Cmp(new(big.Int).Mod(a, P)) != 0 {
		return nil, false
	}
	return r, true
}

// randMod returns a uniform element of [0, mod) read from r by rejection
// sampling with the hoisted 254-bit mask (both moduli of interest are 254
// bits). The byte-consumption pattern matches crypto/rand.Int exactly, so
// deterministic test streams are unaffected by the hoisting.
func randMod(r io.Reader, mod *big.Int) (*big.Int, error) {
	buf := make([]byte, randByteLen)
	k := new(big.Int)
	for {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		buf[0] &= randTopMask
		if k.SetBytes(buf); k.Cmp(mod) < 0 {
			return k, nil
		}
	}
}

// randFieldElement returns a uniform element of Fp read from r.
func randFieldElement(r io.Reader) (*big.Int, error) {
	return randMod(r, P)
}

// RandomScalar returns a uniform non-zero scalar in [1, Order-1] read from r.
func RandomScalar(r io.Reader) (*big.Int, error) {
	for {
		k, err := randMod(r, Order)
		if err != nil {
			return nil, err
		}
		if k.Sign() != 0 {
			return k, nil
		}
	}
}
