package bn254

import (
	"crypto/rand"
	"io"
	"math/big"
)

// Base-field helpers. All functions return values fully reduced mod P.
// Receiver-free helpers keep aliasing rules trivial: results are always
// freshly allocated.

func fpNew() *big.Int { return new(big.Int) }

func fpAdd(a, b *big.Int) *big.Int {
	z := new(big.Int).Add(a, b)
	if z.Cmp(P) >= 0 {
		z.Sub(z, P)
	}
	return z
}

func fpSub(a, b *big.Int) *big.Int {
	z := new(big.Int).Sub(a, b)
	if z.Sign() < 0 {
		z.Add(z, P)
	}
	return z
}

func fpNeg(a *big.Int) *big.Int {
	if a.Sign() == 0 {
		return new(big.Int)
	}
	return new(big.Int).Sub(P, a)
}

func fpMul(a, b *big.Int) *big.Int {
	z := new(big.Int).Mul(a, b)
	return z.Mod(z, P)
}

func fpSquare(a *big.Int) *big.Int {
	z := new(big.Int).Mul(a, a)
	return z.Mod(z, P)
}

func fpDouble(a *big.Int) *big.Int { return fpAdd(a, a) }

// fpInv returns a⁻¹ mod P. It panics on zero, which would indicate a bug in
// a caller (all callers guard against zero denominators).
func fpInv(a *big.Int) *big.Int {
	if a.Sign() == 0 {
		panic("bn254: inversion of zero")
	}
	return new(big.Int).ModInverse(a, P)
}

func fpExp(a, e *big.Int) *big.Int {
	return new(big.Int).Exp(a, e, P)
}

// fpSqrt returns a square root of a mod P and true, or nil and false if a is
// a quadratic non-residue. P ≡ 3 (mod 4), so the root is a^((P+1)/4).
func fpSqrt(a *big.Int) (*big.Int, bool) {
	exp := new(big.Int).Add(P, big.NewInt(1))
	exp.Rsh(exp, 2)
	r := fpExp(a, exp)
	if fpSquare(r).Cmp(new(big.Int).Mod(a, P)) != 0 {
		return nil, false
	}
	return r, true
}

// randFieldElement returns a uniform element of Fp read from r.
func randFieldElement(r io.Reader) (*big.Int, error) {
	return rand.Int(r, P)
}

// RandomScalar returns a uniform non-zero scalar in [1, Order-1] read from r.
func RandomScalar(r io.Reader) (*big.Int, error) {
	for {
		k, err := rand.Int(r, Order)
		if err != nil {
			return nil, err
		}
		if k.Sign() != 0 {
			return k, nil
		}
	}
}
