package bn254

// Montgomery-trick batch inversion: n field inversions cost one real
// inversion plus 3(n−1) multiplications by chaining prefix products.
// The scan pipeline (PairBatch), the comb-table construction, and the
// batched noise path all lean on it — one Fermat inversion (~380 base
// multiplications) is amortized across a whole batch.
//
// THE BATCH-INVERSION INVARIANT: a zero element anywhere in the chain
// zeroes every prefix product after it and poisons the whole pass, so
// every batch entry point must exclude degenerate slots from the chain
// before it starts — infinity points are skipped by their z = 0 mark,
// and invalid ciphertexts are filtered by the unmarshal phase before the
// shared easy-part inversion runs. Helpers here skip z = 0 slots; the
// fe12 pass in PairBatch skips slots whose validity flag is unset. A
// skipped slot contributes nothing to the chain, so one bad element can
// never corrupt its neighbors' inverses.

// g1JacBatchToAffine converts a slice of Jacobian points to affine with a
// single shared inversion. Infinity inputs (z = 0) are skipped in the
// inversion chain and set to affine infinity.
func g1JacBatchToAffine(jacs []g1Jac, out []G1) {
	n := len(jacs)
	if n == 0 {
		return
	}
	// pre[i] = product of the nonzero z's before index i.
	pre := make([]fe, n)
	acc := feOne
	for i := range jacs {
		pre[i] = acc
		if !jacs[i].z.IsZero() {
			feMul(&acc, &acc, &jacs[i].z)
		}
	}
	var inv fe
	feInv(&inv, &acc)
	for i := n - 1; i >= 0; i-- {
		if jacs[i].z.IsZero() {
			out[i].SetInfinity()
			continue
		}
		// inv = 1/Π_{j≤i} z_j here, so inv·pre[i] = 1/z_i.
		var zInv, zInv2, zInv3 fe
		feMul(&zInv, &inv, &pre[i])
		feMul(&inv, &inv, &jacs[i].z)
		feSquare(&zInv2, &zInv)
		feMul(&zInv3, &zInv2, &zInv)
		feMul(&out[i].x, &jacs[i].x, &zInv2)
		feMul(&out[i].y, &jacs[i].y, &zInv3)
		out[i].inf = false
	}
}

// g2JacBatchToAffine is g1JacBatchToAffine over the twist.
func g2JacBatchToAffine(jacs []g2Jac, out []G2) {
	n := len(jacs)
	if n == 0 {
		return
	}
	pre := make([]fe2, n)
	var acc fe2
	acc.SetOne()
	for i := range jacs {
		pre[i] = acc
		if !jacs[i].z.IsZero() {
			acc.Mul(&acc, &jacs[i].z)
		}
	}
	var inv fe2
	inv.Invert(&acc)
	for i := n - 1; i >= 0; i-- {
		if jacs[i].z.IsZero() {
			out[i].SetInfinity()
			continue
		}
		var zInv, zInv2, zInv3 fe2
		zInv.Mul(&inv, &pre[i])
		inv.Mul(&inv, &jacs[i].z)
		zInv2.Square(&zInv)
		zInv3.Mul(&zInv2, &zInv)
		out[i].x.Mul(&jacs[i].x, &zInv2)
		out[i].y.Mul(&jacs[i].y, &zInv3)
		out[i].inf = false
	}
}
