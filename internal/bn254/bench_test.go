package bn254

import (
	"crypto/rand"
	"testing"
	"time"
)

// TestLimbBackendSpeedupPin is the regression guard for the Montgomery
// limb backend: a full limb pairing must run at least 5x faster than the
// retained big.Int reference ON THE SAME MACHINE, measured back-to-back in
// one test. The measured ratio is ~30-50x, so the 5x floor has a wide
// non-flakiness margin while still catching a silent fallback to big.Int
// (or an accidentally quadratic limb path). Skipped in -short mode (the
// race-detector CI lane) where instrumentation skews both sides.
func TestLimbBackendSpeedupPin(t *testing.T) {
	if testing.Short() {
		t.Skip("relative perf pin skipped in -short mode")
	}
	k, err := RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	p := new(G1).ScalarBaseMult(k)
	q := new(G2).ScalarBaseMult(k)
	refP := new(refG1).ScalarBaseMult(k)
	refQ := new(refG2).ScalarBaseMult(k)

	// Best-of-N wall times to shed scheduler noise.
	best := func(n int, f func()) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for i := 0; i < n; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	limb := best(5, func() { Pair(p, q) })
	ref := best(2, func() { refPair(refP, refQ) })

	const floor = 5
	if limb*floor > ref {
		t.Fatalf("limb pairing %v is under %dx the big.Int reference %v (ratio %.1fx)",
			limb, floor, ref, float64(ref)/float64(limb))
	}
	t.Logf("limb pairing %v vs big.Int reference %v: %.1fx", limb, ref, float64(ref)/float64(limb))
}

func BenchmarkFeMul(b *testing.B) {
	k, _ := randFieldElement(rand.Reader)
	var x, z fe
	feFromBig(&x, k)
	z = x
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feMul(&z, &z, &x)
	}
}

func BenchmarkFpMulRef(b *testing.B) {
	k, _ := randFieldElement(rand.Reader)
	z := fpMul(k, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z = fpMul(z, k)
	}
	_ = z
}

func BenchmarkPair(b *testing.B) {
	k, _ := RandomScalar(rand.Reader)
	p := new(G1).ScalarBaseMult(k)
	q := new(G2).ScalarBaseMult(k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pair(p, q)
	}
}

func BenchmarkPairPrecomputedG1(b *testing.B) {
	k, _ := RandomScalar(rand.Reader)
	pre := PrecomputeG1(new(G1).ScalarBaseMult(k))
	q := new(G2).ScalarBaseMult(k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pre.Pair(q)
	}
}

func BenchmarkPairRef(b *testing.B) {
	k, _ := RandomScalar(rand.Reader)
	p := new(refG1).ScalarBaseMult(k)
	q := new(refG2).ScalarBaseMult(k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refPair(p, q)
	}
}

func BenchmarkG2Unmarshal(b *testing.B) {
	k, _ := RandomScalar(rand.Reader)
	data := new(G2).ScalarBaseMult(k).Marshal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := new(G2).Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkG2ScalarBaseMult(b *testing.B) {
	k, _ := RandomScalar(rand.Reader)
	p := new(G2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ScalarBaseMult(k)
	}
}

func BenchmarkHashToG1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		HashToG1("bench", []byte{byte(i), byte(i >> 8)})
	}
}
