package bn254

import (
	"math/big"
	"testing"
)

func TestPairNonDegenerate(t *testing.T) {
	e := Pair(G1Generator(), G2Generator())
	if e.IsOne() {
		t.Fatal("e(G1, G2) == 1: pairing degenerate")
	}
	// The output must have order dividing Order.
	if !new(GT).Exp(e, Order).IsOne() {
		t.Fatal("pairing output not in order-r subgroup")
	}
}

func TestPairBilinearity(t *testing.T) {
	a := big.NewInt(1234577)
	b := big.NewInt(9876541)

	pa := new(G1).ScalarBaseMult(a)
	qb := new(G2).ScalarBaseMult(b)

	// e(aP, bQ) == e(P, Q)^(ab)
	lhs := Pair(pa, qb)
	base := Pair(G1Generator(), G2Generator())
	rhs := new(GT).Exp(base, new(big.Int).Mul(a, b))
	if !lhs.Equal(rhs) {
		t.Fatal("e(aP, bQ) != e(P,Q)^(ab)")
	}

	// e(aP, Q) == e(P, aQ)
	l2 := Pair(pa, G2Generator())
	r2 := Pair(G1Generator(), new(G2).ScalarBaseMult(a))
	if !l2.Equal(r2) {
		t.Fatal("e(aP, Q) != e(P, aQ)")
	}
}

func TestPairAdditivity(t *testing.T) {
	// e(P1 + P2, Q) == e(P1, Q)·e(P2, Q) — this is the property
	// Anytrust-IBE and BLS multisignatures rely on.
	p1 := new(G1).ScalarBaseMult(big.NewInt(111))
	p2 := new(G1).ScalarBaseMult(big.NewInt(222))
	q := G2Generator()

	lhs := Pair(new(G1).Add(p1, p2), q)
	rhs := new(GT).Mul(Pair(p1, q), Pair(p2, q))
	if !lhs.Equal(rhs) {
		t.Fatal("pairing not additive in first argument")
	}

	// and in the second argument: e(P, Q1 + Q2) == e(P, Q1)·e(P, Q2)
	q1 := new(G2).ScalarBaseMult(big.NewInt(333))
	q2 := new(G2).ScalarBaseMult(big.NewInt(444))
	p := G1Generator()
	lhs2 := Pair(p, new(G2).Add(q1, q2))
	rhs2 := new(GT).Mul(Pair(p, q1), Pair(p, q2))
	if !lhs2.Equal(rhs2) {
		t.Fatal("pairing not additive in second argument")
	}
}

func TestPairWithInfinity(t *testing.T) {
	if !Pair(new(G1).SetInfinity(), G2Generator()).IsOne() {
		t.Fatal("e(∞, Q) != 1")
	}
	if !Pair(G1Generator(), new(G2).SetInfinity()).IsOne() {
		t.Fatal("e(P, ∞) != 1")
	}
}

func TestPairingCheck(t *testing.T) {
	// e(aP, Q)·e(−aP, Q) == 1
	a := big.NewInt(424242)
	pa := new(G1).ScalarBaseMult(a)
	na := new(G1).Neg(pa)
	if !PairingCheck([]*G1{pa, na}, []*G2{G2Generator(), G2Generator()}) {
		t.Fatal("PairingCheck failed on cancelling pair")
	}
	if PairingCheck([]*G1{pa, pa}, []*G2{G2Generator(), G2Generator()}) {
		t.Fatal("PairingCheck accepted non-cancelling pair")
	}
	if PairingCheck([]*G1{pa}, []*G2{}) {
		t.Fatal("PairingCheck accepted mismatched lengths")
	}
}

func BenchmarkPairing(b *testing.B) {
	p := G1Generator()
	q := G2Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pair(p, q)
	}
}

func BenchmarkG1ScalarMult(b *testing.B) {
	k, _ := RandomScalar(zeroReader{})
	_ = k
	k = big.NewInt(0).SetBytes([]byte("arbitrary-bench-scalar-32bytes!!"))
	g := G1Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		new(G1).ScalarMult(g, k)
	}
}

// zeroReader is an io.Reader of zeros used where deterministic scalars are
// fine for benchmarks.
type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 1
	}
	return len(p), nil
}
