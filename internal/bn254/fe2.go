package bn254

import (
	"fmt"
	"math/big"
)

// fe2 is an element of Fp2 = Fp[i]/(i²+1), stored as c0 + c1·i with both
// coefficients in Montgomery form. It is the limb-backend counterpart of
// the gfP2 reference type: a plain value type with no interior pointers,
// so tower elements live on the stack.
type fe2 struct {
	c0, c1 fe
}

func (e *fe2) String() string {
	return fmt.Sprintf("(%v + %v·i)", feToBig(&e.c0), feToBig(&e.c1))
}

func (e *fe2) Set(a *fe2) *fe2 {
	*e = *a
	return e
}

func (e *fe2) SetZero() *fe2 {
	*e = fe2{}
	return e
}

func (e *fe2) SetOne() *fe2 {
	e.c0 = feOne
	e.c1 = fe{}
	return e
}

func (e *fe2) IsZero() bool { return e.c0.IsZero() && e.c1.IsZero() }

func (e *fe2) IsOne() bool { return e.c0.Equal(&feOne) && e.c1.IsZero() }

func (e *fe2) Equal(a *fe2) bool { return e.c0.Equal(&a.c0) && e.c1.Equal(&a.c1) }

func (e *fe2) Add(a, b *fe2) *fe2 {
	feAdd(&e.c0, &a.c0, &b.c0)
	feAdd(&e.c1, &a.c1, &b.c1)
	return e
}

func (e *fe2) Sub(a, b *fe2) *fe2 {
	feSub(&e.c0, &a.c0, &b.c0)
	feSub(&e.c1, &a.c1, &b.c1)
	return e
}

func (e *fe2) Double(a *fe2) *fe2 {
	feDouble(&e.c0, &a.c0)
	feDouble(&e.c1, &a.c1)
	return e
}

func (e *fe2) Neg(a *fe2) *fe2 {
	feNeg(&e.c0, &a.c0)
	feNeg(&e.c1, &a.c1)
	return e
}

// Conjugate sets e = a0 − a1·i.
func (e *fe2) Conjugate(a *fe2) *fe2 {
	e.c0 = a.c0
	feNeg(&e.c1, &a.c1)
	return e
}

// Mul sets e = a·b = (a0b0 − a1b1) + (a0b1 + a1b0)·i, computed with
// Karatsuba (three base-field multiplications). Receiver may alias either
// operand.
func (e *fe2) Mul(a, b *fe2) *fe2 {
	var t0, t1, sa, sb, cross fe
	feMul(&t0, &a.c0, &b.c0)
	feMul(&t1, &a.c1, &b.c1)
	feAdd(&sa, &a.c0, &a.c1)
	feAdd(&sb, &b.c0, &b.c1)
	feMul(&cross, &sa, &sb)
	feSub(&e.c0, &t0, &t1)
	feSub(&cross, &cross, &t0)
	feSub(&e.c1, &cross, &t1)
	return e
}

// MulFe sets e = a·k for k ∈ Fp.
func (e *fe2) MulFe(a *fe2, k *fe) *fe2 {
	feMul(&e.c0, &a.c0, k)
	feMul(&e.c1, &a.c1, k)
	return e
}

// Square sets e = a² = (a0+a1)(a0−a1) + 2a0a1·i.
func (e *fe2) Square(a *fe2) *fe2 {
	var sum, diff, t1 fe
	feAdd(&sum, &a.c0, &a.c1)
	feSub(&diff, &a.c0, &a.c1)
	feMul(&t1, &a.c0, &a.c1)
	feMul(&e.c0, &sum, &diff)
	feDouble(&e.c1, &t1)
	return e
}

// Invert sets e = a⁻¹ = conj(a)/(a0² + a1²). Panics on zero.
func (e *fe2) Invert(a *fe2) *fe2 {
	var n0, n1, norm, inv fe
	feSquare(&n0, &a.c0)
	feSquare(&n1, &a.c1)
	feAdd(&norm, &n0, &n1)
	if norm.IsZero() {
		panic("bn254: inversion of zero in Fp2")
	}
	feInv(&inv, &norm)
	feMul(&e.c0, &a.c0, &inv)
	var negC1 fe
	feNeg(&negC1, &a.c1)
	feMul(&e.c1, &negC1, &inv)
	return e
}

// MulXi sets e = a·ξ where ξ = 9 + i is the Fp6 non-residue:
// (9a0 − a1) + (9a1 + a0)·i, via shift-and-add instead of full products.
func (e *fe2) MulXi(a *fe2) *fe2 {
	var n0, n1 fe
	feMulBy9(&n0, &a.c0)
	feMulBy9(&n1, &a.c1)
	feSub(&n0, &n0, &a.c1)
	feAdd(&e.c1, &n1, &a.c0)
	e.c0 = n0
	return e
}

// Exp sets e = a^k using square-and-multiply (k ≥ 0, not secret).
func (e *fe2) Exp(a *fe2, k *big.Int) *fe2 {
	var acc fe2
	acc.SetOne()
	base := *a
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc.Square(&acc)
		if k.Bit(i) == 1 {
			acc.Mul(&acc, &base)
		}
	}
	return e.Set(&acc)
}

// Sqrt sets e to a square root of a and returns true, or returns false if
// a is not a square in Fp2, mirroring the gfP2 reference root choices
// exactly (complex method for p ≡ 3 mod 4).
func (e *fe2) Sqrt(a *fe2) bool {
	if a.IsZero() {
		e.SetZero()
		return true
	}
	if a.c1.IsZero() {
		var r fe
		if feSqrt(&r, &a.c0) {
			e.c0, e.c1 = r, fe{}
			return true
		}
		var neg fe
		feNeg(&neg, &a.c0)
		if feSqrt(&r, &neg) {
			e.c0, e.c1 = fe{}, r
			return true
		}
		return false
	}
	var n0, n1, norm, alpha fe
	feSquare(&n0, &a.c0)
	feSquare(&n1, &a.c1)
	feAdd(&norm, &n0, &n1)
	if !feSqrt(&alpha, &norm) {
		return false
	}
	var delta, x0 fe
	feAdd(&delta, &a.c0, &alpha)
	feMul(&delta, &delta, &feHalf)
	if !feSqrt(&x0, &delta) {
		feSub(&delta, &a.c0, &alpha)
		feMul(&delta, &delta, &feHalf)
		if !feSqrt(&x0, &delta) {
			return false
		}
	}
	// x1 = a1 / (2·x0)
	var den, x1 fe
	feDouble(&den, &x0)
	feInv(&den, &den)
	feMul(&x1, &a.c1, &den)
	cand := fe2{c0: x0, c1: x1}
	var check fe2
	if !check.Square(&cand).Equal(a) {
		return false
	}
	return e.Set(&cand) != nil
}

// feHalf is 1/2 mod P in Montgomery form.
var feHalf = feDeriveHalf()

func feDeriveHalf() fe {
	var z fe
	half := new(big.Int).ModInverse(big.NewInt(2), P)
	feFromBig(&z, half)
	return z
}

// fe2FromBig converts big.Int coordinates into an fe2.
func fe2FromBig(a0, a1 *big.Int) (z fe2) {
	feFromBig(&z.c0, a0)
	feFromBig(&z.c1, a1)
	return
}
