// Package onionbox provides public-key authenticated encryption (a NaCl-box
// equivalent built from X25519 + AES-GCM) and the layered onion wrapping
// that Alpenhorn clients apply to requests before submitting them to the
// mixnet (Algorithm 1, step 3).
//
// Each layer uses a FRESH ephemeral sender key pair, so onions provide
// forward secrecy: once a mixnet server rotates its round key, recorded
// onions for that round become undecryptable.
package onionbox

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/sha256"
	"errors"
	"io"
)

// Overhead is the per-layer size expansion: a 32-byte ephemeral public key
// plus a 16-byte AEAD tag.
const Overhead = 32 + 16

// PublicKey is an X25519 public key used to receive boxes.
type PublicKey struct {
	k *ecdh.PublicKey
}

// PrivateKey is an X25519 private key.
type PrivateKey struct {
	k *ecdh.PrivateKey
}

// generateX25519 derives a fresh X25519 key from exactly 32 bytes of the
// reader. crypto/ecdh's own GenerateKey deliberately consumes a
// NONDETERMINISTIC number of bytes (randutil.MaybeReadByte), which would
// make runs with a fixed Config.Rand irreproducible; Alpenhorn's
// determinism tests compare whole mailboxes byte-for-byte across data
// planes, so key generation must consume a fixed-width stream. The
// resulting keys are identical in distribution (clamping happens inside
// the X25519 scalar multiplication per RFC 7748).
func generateX25519(rand io.Reader) (*ecdh.PrivateKey, error) {
	seed := make([]byte, 32)
	if _, err := io.ReadFull(rand, seed); err != nil {
		return nil, err
	}
	return ecdh.X25519().NewPrivateKey(seed)
}

// GenerateKey creates a new box key pair.
func GenerateKey(rand io.Reader) (*PublicKey, *PrivateKey, error) {
	priv, err := generateX25519(rand)
	if err != nil {
		return nil, nil, err
	}
	return &PublicKey{k: priv.PublicKey()}, &PrivateKey{k: priv}, nil
}

// Public returns the public key for k.
func (k *PrivateKey) Public() *PublicKey { return &PublicKey{k: k.k.PublicKey()} }

// Bytes returns the 32-byte encoding of the private key. It exists so the
// shards of one mixnet position — a single trust domain standing in for
// one logical server — can share a round key; nothing else should ever
// serialize a private key.
func (k *PrivateKey) Bytes() []byte { return k.k.Bytes() }

// UnmarshalPrivateKey decodes a 32-byte X25519 private key.
func UnmarshalPrivateKey(data []byte) (*PrivateKey, error) {
	k, err := ecdh.X25519().NewPrivateKey(data)
	if err != nil {
		return nil, err
	}
	return &PrivateKey{k: k}, nil
}

// Bytes returns the 32-byte encoding of the public key.
func (p *PublicKey) Bytes() []byte { return p.k.Bytes() }

// UnmarshalPublicKey decodes a 32-byte X25519 public key.
func UnmarshalPublicKey(data []byte) (*PublicKey, error) {
	k, err := ecdh.X25519().NewPublicKey(data)
	if err != nil {
		return nil, err
	}
	return &PublicKey{k: k}, nil
}

// deriveKey computes the AEAD key from the DH shared secret and the
// transcript of both public keys.
func deriveKey(shared, ephPub, recvPub []byte) []byte {
	h := sha256.New()
	h.Write([]byte("alpenhorn/onionbox/key:"))
	h.Write(shared)
	h.Write(ephPub)
	h.Write(recvPub)
	return h.Sum(nil)
}

func newGCM(key []byte) cipher.AEAD {
	block, err := aes.NewCipher(key)
	if err != nil {
		panic("onionbox: " + err.Error())
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		panic("onionbox: " + err.Error())
	}
	return gcm
}

// Seal encrypts msg to the recipient with a fresh ephemeral key. The output
// is len(msg)+Overhead bytes: ephemeral public key ‖ AEAD ciphertext.
func Seal(rand io.Reader, to *PublicKey, msg []byte) ([]byte, error) {
	eph, err := generateX25519(rand)
	if err != nil {
		return nil, err
	}
	shared, err := eph.ECDH(to.k)
	if err != nil {
		return nil, err
	}
	ephPub := eph.PublicKey().Bytes()
	key := deriveKey(shared, ephPub, to.k.Bytes())
	gcm := newGCM(key)
	nonce := make([]byte, gcm.NonceSize()) // fresh key per message: zero nonce is safe
	out := make([]byte, 0, len(msg)+Overhead)
	out = append(out, ephPub...)
	out = append(out, gcm.Seal(nil, nonce, msg, nil)...)
	return out, nil
}

// Open decrypts a box sealed to priv's public key.
func Open(priv *PrivateKey, box []byte) ([]byte, error) {
	if len(box) < Overhead {
		return nil, errors.New("onionbox: box too short")
	}
	ephPub, err := ecdh.X25519().NewPublicKey(box[:32])
	if err != nil {
		return nil, err
	}
	shared, err := priv.k.ECDH(ephPub)
	if err != nil {
		return nil, err
	}
	key := deriveKey(shared, box[:32], priv.k.PublicKey().Bytes())
	gcm := newGCM(key)
	nonce := make([]byte, gcm.NonceSize())
	msg, err := gcm.Open(nil, nonce, box[32:], nil)
	if err != nil {
		return nil, errors.New("onionbox: decryption failed")
	}
	return msg, nil
}

// WrapOnion encrypts msg under each hop key from last to first, so that
// hops[0] peels the outermost layer. This is exactly Algorithm 1 step 3:
// "Encryption happens in reverse, from server n to server 1."
func WrapOnion(rand io.Reader, hops []*PublicKey, msg []byte) ([]byte, error) {
	out := msg
	var err error
	for i := len(hops) - 1; i >= 0; i-- {
		out, err = Seal(rand, hops[i], out)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// OnionSize returns the size of an onion wrapping a msgLen-byte payload
// through n hops. All clients produce identical sizes, which is what makes
// cover traffic indistinguishable from real requests.
func OnionSize(msgLen, n int) int { return msgLen + n*Overhead }
