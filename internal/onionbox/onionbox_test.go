package onionbox

import (
	"bytes"
	"crypto/rand"
	"testing"
	"testing/quick"
)

func TestSealOpen(t *testing.T) {
	pub, priv, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("request payload")
	box, err := Seal(rand.Reader, pub, msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(box) != len(msg)+Overhead {
		t.Fatalf("box length %d, want %d", len(box), len(msg)+Overhead)
	}
	got, err := Open(priv, box)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("wrong plaintext")
	}
}

func TestOpenWrongKeyFails(t *testing.T) {
	pub, _, _ := GenerateKey(rand.Reader)
	_, wrongPriv, _ := GenerateKey(rand.Reader)
	box, _ := Seal(rand.Reader, pub, []byte("secret"))
	if _, err := Open(wrongPriv, box); err == nil {
		t.Fatal("opened with wrong key")
	}
}

func TestOpenCorruptedFails(t *testing.T) {
	pub, priv, _ := GenerateKey(rand.Reader)
	box, _ := Seal(rand.Reader, pub, []byte("secret"))
	for _, i := range []int{0, 31, 32, len(box) - 1} {
		bad := bytes.Clone(box)
		bad[i] ^= 1
		if _, err := Open(priv, bad); err == nil {
			t.Fatalf("opened corrupted box (byte %d)", i)
		}
	}
	if _, err := Open(priv, box[:Overhead-1]); err == nil {
		t.Fatal("opened truncated box")
	}
}

func TestSealRandomized(t *testing.T) {
	// Two seals of the same message must differ (fresh ephemeral keys),
	// otherwise the mixnet could link repeated requests.
	pub, _, _ := GenerateKey(rand.Reader)
	b1, _ := Seal(rand.Reader, pub, []byte("m"))
	b2, _ := Seal(rand.Reader, pub, []byte("m"))
	if bytes.Equal(b1, b2) {
		t.Fatal("sealing is deterministic")
	}
}

func TestWrapOnionPeelsInOrder(t *testing.T) {
	const hops = 3
	var pubs []*PublicKey
	var privs []*PrivateKey
	for i := 0; i < hops; i++ {
		pub, priv, err := GenerateKey(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		pubs = append(pubs, pub)
		privs = append(privs, priv)
	}
	msg := []byte("inner request")
	onion, err := WrapOnion(rand.Reader, pubs, msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(onion) != OnionSize(len(msg), hops) {
		t.Fatalf("onion size %d, want %d", len(onion), OnionSize(len(msg), hops))
	}
	// Peel in order: server 0 first.
	cur := onion
	for i := 0; i < hops; i++ {
		cur, err = Open(privs[i], cur)
		if err != nil {
			t.Fatalf("hop %d failed to peel: %v", i, err)
		}
	}
	if !bytes.Equal(cur, msg) {
		t.Fatal("wrong inner message")
	}

	// Peeling out of order must fail.
	if _, err := Open(privs[1], onion); err == nil {
		t.Fatal("hop 1 peeled hop 0's layer")
	}
}

func TestPublicKeyRoundTrip(t *testing.T) {
	pub, priv, _ := GenerateKey(rand.Reader)
	pub2, err := UnmarshalPublicKey(pub.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	box, _ := Seal(rand.Reader, pub2, []byte("m"))
	if _, err := Open(priv, box); err != nil {
		t.Fatal("round-tripped public key broke sealing")
	}
	if !bytes.Equal(priv.Public().Bytes(), pub.Bytes()) {
		t.Fatal("Public() mismatch")
	}
	if _, err := UnmarshalPublicKey([]byte("short")); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestSealOpenProperty(t *testing.T) {
	pub, priv, _ := GenerateKey(rand.Reader)
	roundTrip := func(msg []byte) bool {
		box, err := Seal(rand.Reader, pub, msg)
		if err != nil {
			return false
		}
		got, err := Open(priv, box)
		if err != nil {
			return false
		}
		return bytes.Equal(got, msg)
	}
	if err := quick.Check(roundTrip, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
