package coordinator

// This file is the coordinator's round SCHEDULER: the health-driven
// planning layer that sits between the per-round health records
// (RoundHealth, from mix.round.wait) and the next round's shard-group
// layout. Each round open captures a plan — which daemon serves each
// shard slot, which group member hosts the merge/build-lead role, what
// chunk size and data-plane deadline the round runs with — and each round
// close feeds the observed outcome back into a per-daemon scoreboard:
//
//   - A daemon that crashed, timed out, or failed locally is BENCHED:
//     the next plan replaces it with a hot spare from Spares (same
//     position, same shard slot — pinned members reject a changed group
//     size, so the group never shrinks). A daemon that merely aborted
//     because an upstream failed keeps its seat; the abort-reason codes
//     exist exactly so the scheduler can tell the difference.
//
//   - Every candidate — members, benched daemons, spares — is probed
//     with a short-timeout mix.info at plan time, so a daemon killed
//     BETWEEN rounds is caught before the round is burned, and a benched
//     daemon that restarted is re-admitted without operator action.
//
//   - The merge/build-lead role rotates round-robin across each shard
//     group (PinLead disables it), moving the per-position bandwidth
//     funnel and the mix.deal.* fan-out cost to a different member each
//     round. Rotation never changes the round's output: the permutation
//     is derived from the round key every member holds.
//
//   - The pipeline chunk size adapts (AdaptiveChunk) to the observed
//     round outcomes inside a bounded window around ChunkSize, shrinking
//     after failed or SLO-breaching rounds and recovering geometrically.
//
// The scoreboard is exported read-only (Scoreboard) and served to
// operators over the coordinator.status RPC.

import (
	"fmt"
	"sort"
	"time"

	"alpenhorn/internal/mixnet"
	"alpenhorn/internal/wire"
)

// Prober is the optional liveness surface of a Mixer: a cheap,
// short-timeout health check (rpc.MixerClient sends mix.info). The
// scheduler probes every candidate at plan time; Mixers that don't
// implement it (in-process servers) are assumed alive.
type Prober interface {
	Probe() error
}

// ShardPeerMixer is the optional peer-allowlist variant of ShardMixer's
// layout call: SetRoundShard plus the round's shard network — the dial
// addresses of every member planned into the group, spares included.
// Daemons that receive a peer list refuse mix.round.exportkey calls from
// any other host for the round, so only the planned group can pull the
// round's private key. rpc.MixerClient implements it.
type ShardPeerMixer interface {
	SetRoundShardPeers(service wire.Service, round uint32, index, count int, peers []string) error
}

// benchCooldownRounds is how many rounds a benched daemon sits out after
// its bench round even once it probes healthy again: re-admission needs
// both a successful probe AND a round of distance from the failure, so a
// daemon that is alive but keeps failing rounds (misbehaving rather than
// crashed) cannot flap back in on the very next plan.
const benchCooldownRounds = 1

// DaemonScore is one daemon's scheduling scoreboard entry: smoothed
// performance (EWMA duration and throughput), failure accounting by
// abort reason, and its current bench state. Snapshot type — Scoreboard
// returns copies.
type DaemonScore struct {
	Addr     string `json:"addr"`
	Position int    `json:"position"`
	Shard    int    `json:"shard"`
	// Spare marks a hot-spare daemon (drafted into benched slots) rather
	// than a configured group member.
	Spare bool `json:"spare,omitempty"`

	Rounds   uint64 `json:"rounds"`
	Failures uint64 `json:"failures"`
	// Aborts counts round failures by wire.Abort* reason code, which is
	// what lets the scheduler (and an operator reading coordinator.status)
	// tell a slow daemon from a crashed or misbehaving one.
	Aborts map[string]uint64 `json:"aborts,omitempty"`

	// EWMADurationMs / EWMAThroughputKBs smooth the daemon's self-reported
	// per-round duration and batch throughput (alpha = scoreAlpha).
	EWMADurationMs    float64 `json:"ewma_duration_ms"`
	EWMAThroughputKBs float64 `json:"ewma_throughput_kbs"`

	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
	Benched             bool   `json:"benched,omitempty"`
	BenchedRound        uint32 `json:"benched_round,omitempty"`
	Readmissions        uint64 `json:"readmissions,omitempty"`
	LastError           string `json:"last_error,omitempty"`
}

// Scoreboard is the scheduler's exported state: every known daemon's
// score plus the current adaptive chunk size per service. Served
// read-only over coordinator.status.
type Scoreboard struct {
	Daemons []DaemonScore  `json:"daemons"`
	Chunk   map[string]int `json:"chunk,omitempty"`
}

// scoreAlpha is the EWMA smoothing factor for duration/throughput.
const scoreAlpha = 0.3

// planKey identifies one open round's plan.
type planKey struct {
	service wire.Service
	round   uint32
}

// roundPlan is the scheduling decision for one round, captured at open
// and reused verbatim at close so benching between open and close can
// never split a round across two layouts.
type roundPlan struct {
	// groups is the round's actual membership per position: the
	// configured shard group with benched slots replaced by drafted
	// spares. Slot 0 is always the position's announcer (clients pin its
	// key), so it is never substituted.
	groups [][]Mixer
	// leads is the index WITHIN each group of the member hosting the
	// merge/build-lead role this round (rotation; 0 when pinned or
	// unsharded).
	leads []int
	// peers is each position's shard network — the members' dial
	// addresses — distributed with the layout so daemons can gate
	// mix.round.exportkey to the planned group. Nil for positions whose
	// members have no addresses (in-process).
	peers [][]string
	// chunkSize / deadlineMs are the round's data-plane parameters.
	chunkSize  int
	deadlineMs int64
	// drafted lists the spare addresses this plan holds, released when
	// the plan is dropped.
	drafted []string
}

// group returns position i's planned membership.
func (p *roundPlan) group(i int) []Mixer { return p.groups[i] }

// lead returns position i's lead index, clamped for safety.
func (p *roundPlan) lead(i int) int {
	li := p.leads[i]
	if li < 0 || li >= len(p.groups[i]) {
		return 0
	}
	return li
}

// daemonScore is the internal mutable counterpart of DaemonScore,
// guarded by Coordinator.mu.
type daemonScore struct {
	DaemonScore
}

// score returns (creating if needed) addr's scoreboard entry. Caller
// holds c.mu.
func (c *Coordinator) score(addr string) *daemonScore {
	if c.scores == nil {
		c.scores = make(map[string]*daemonScore)
	}
	sc, ok := c.scores[addr]
	if !ok {
		sc = &daemonScore{DaemonScore{Addr: addr, Aborts: make(map[string]uint64)}}
		c.scores[addr] = sc
	}
	return sc
}

// Scoreboard returns a snapshot of the scheduler's per-daemon scores and
// adaptive chunk state, sorted by position/shard/address. The slice and
// maps are copies; callers may keep them.
func (c *Coordinator) Scoreboard() Scoreboard {
	c.mu.Lock()
	defer c.mu.Unlock()
	sb := Scoreboard{}
	for _, sc := range c.scores {
		d := sc.DaemonScore
		d.Aborts = make(map[string]uint64, len(sc.Aborts))
		for k, v := range sc.Aborts {
			d.Aborts[k] = v
		}
		if len(d.Aborts) == 0 {
			d.Aborts = nil
		}
		sb.Daemons = append(sb.Daemons, d)
	}
	sort.Slice(sb.Daemons, func(i, j int) bool {
		a, b := sb.Daemons[i], sb.Daemons[j]
		if a.Position != b.Position {
			return a.Position < b.Position
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Addr < b.Addr
	})
	if len(c.chunkNow) > 0 {
		sb.Chunk = make(map[string]int, len(c.chunkNow))
		for svc, n := range c.chunkNow {
			sb.Chunk[fmt.Sprint(svc)] = n
		}
	}
	return sb
}

// addrOf returns a Mixer's dial address, or "" for in-process servers
// (which have no address and are never benched or probed).
func addrOf(m Mixer) string {
	if fm, ok := m.(ForwardMixer); ok {
		return fm.Addr()
	}
	return ""
}

// probe runs m's liveness check; Mixers without one count as alive.
func probe(m Mixer) bool {
	if p, ok := m.(Prober); ok {
		return p.Probe() == nil
	}
	return true
}

// baseChunk is the configured pipeline chunk size.
func (c *Coordinator) baseChunk() int {
	if c.ChunkSize > 0 {
		return c.ChunkSize
	}
	return mixnet.DefaultStreamChunk
}

// currentChunk is the chunk size the next round should run with: the
// adaptive value when AdaptiveChunk is on, the configured base otherwise.
func (c *Coordinator) currentChunk(service wire.Service) int {
	base := c.baseChunk()
	if !c.AdaptiveChunk {
		return base
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.chunkNow[service]; ok && n > 0 {
		return n
	}
	return base
}

// chunkWindow bounds the adaptive chunk size to [base/4, base*4] — the
// adaptation reacts to observed throughput but can never run away from
// the operator's configured order of magnitude.
func (c *Coordinator) chunkWindow() (min, max int) {
	base := c.baseChunk()
	min = base / 4
	if min < 1 {
		min = 1
	}
	return min, base * 4
}

// adaptChunk updates the service's chunk size from a closed round's
// outcome: a failed round or one whose slowest daemon breached the
// latency SLO halves the chunk (smaller chunks = finer pipelining and
// cheaper retries under churn); a clean round grows it geometrically
// back toward the window's top. Caller holds c.mu.
func (c *Coordinator) adaptChunk(h RoundHealth) {
	if !c.AdaptiveChunk || !h.Forwarded {
		return
	}
	min, max := c.chunkWindow()
	if c.chunkNow == nil {
		c.chunkNow = make(map[wire.Service]int)
	}
	cur, ok := c.chunkNow[h.Service]
	if !ok || cur <= 0 {
		cur = c.baseChunk()
	}
	slow := h.Err != ""
	if !slow && c.LatencySLO > 0 {
		for _, d := range h.Daemons {
			if d.Stats.Duration > c.LatencySLO {
				slow = true
				break
			}
		}
	}
	if slow {
		cur /= 2
	} else {
		cur += cur/4 + 1
	}
	if cur < min {
		cur = min
	}
	if cur > max {
		cur = max
	}
	c.chunkNow[h.Service] = cur
}

// benchReason classifies one daemon's round outcome for the scheduler:
// "" means the outcome does not warrant a bench (success, or an abort
// propagated from ANOTHER daemon's failure), anything else is the
// wire.Abort* code to charge the daemon with.
func benchReason(d DaemonRoundStats, slo time.Duration) string {
	if d.Err == "" {
		if slo > 0 && d.Stats.Duration > slo {
			return wire.AbortSlow
		}
		return ""
	}
	reason := d.Stats.AbortReason
	if reason == "" {
		// The daemon never reported: the coordinator's own wait failed,
		// which means the daemon itself is unreachable.
		reason = wire.AbortCrashed
	}
	if reason == wire.AbortUpstream {
		return ""
	}
	return reason
}

// updateScoreboard folds one closed round's per-daemon stats into the
// scheduler's scores, benching daemons whose failure was their own.
// Caller holds c.mu.
func (c *Coordinator) updateScoreboard(h RoundHealth) {
	for _, d := range h.Daemons {
		if d.Addr == "" {
			continue
		}
		sc := c.score(d.Addr)
		sc.Position, sc.Shard = d.Position, d.Shard
		sc.Rounds++
		reason := benchReason(d, c.LatencySLO)
		if d.Err == "" {
			sc.LastError = ""
			if reason == "" {
				sc.ConsecutiveFailures = 0
				durMs := float64(d.Stats.Duration) / float64(time.Millisecond)
				sc.EWMADurationMs = ewma(sc.EWMADurationMs, durMs)
				if d.Stats.Duration > 0 {
					kbs := float64(d.Stats.BytesIn+d.Stats.BytesOut) / 1024 / d.Stats.Duration.Seconds()
					sc.EWMAThroughputKBs = ewma(sc.EWMAThroughputKBs, kbs)
				}
				continue
			}
		} else {
			sc.LastError = d.Err
		}
		// Tally by the daemon's reported wire code (falling back to the
		// bench classification for daemons that never reported), so an
		// operator reading the scoreboard sees upstream aborts as such.
		code := d.Stats.AbortReason
		if code == "" {
			code = reason
		}
		sc.Aborts[code]++
		if reason == "" {
			// Upstream abort: not this daemon's fault, seat kept.
			continue
		}
		sc.Failures++
		sc.ConsecutiveFailures++
		if !sc.Benched {
			sc.Benched = true
			sc.BenchedRound = h.Round
			c.logf("scheduler: benching %s (pos %d shard %d): %s: %s",
				d.Addr, d.Position, d.Shard, reason, d.Err)
		}
	}
}

func ewma(prev, sample float64) float64 {
	if prev == 0 {
		return sample
	}
	return prev*(1-scoreAlpha) + sample*scoreAlpha
}

// planRound captures the scheduling decision for (service, round):
// probe every candidate, replace benched members with healthy spares,
// rotate the merge/build-lead role, and fix the round's chunk size and
// deadline. The plan is stored until dropPlan.
func (c *Coordinator) planRound(service wire.Service, round uint32) *roundPlan {
	plan := &roundPlan{
		chunkSize:  c.currentChunk(service),
		deadlineMs: int64(c.RoundDeadline / time.Millisecond),
	}
	for i := range c.Mixers {
		group := append([]Mixer(nil), c.shardGroup(i)...)
		c.patchGroup(service, round, i, group, plan)
		li := 0
		if len(group) > 1 && !c.PinLead {
			li = int(round % uint32(len(group)))
		}
		var peers []string
		for _, m := range group {
			addr := addrOf(m)
			if addr == "" {
				peers = nil
				break
			}
			peers = append(peers, addr)
		}
		plan.groups = append(plan.groups, group)
		plan.leads = append(plan.leads, li)
		plan.peers = append(plan.peers, peers)
	}
	c.mu.Lock()
	if c.plans == nil {
		c.plans = make(map[planKey]*roundPlan)
	}
	c.plans[planKey{service, round}] = plan
	if len(plan.drafted) > 0 {
		if c.draftedNow == nil {
			c.draftedNow = make(map[string]int)
		}
		for _, addr := range plan.drafted {
			c.draftedNow[addr]++
		}
	}
	c.mu.Unlock()
	return plan
}

// patchGroup probes position i's members, updates bench state, and
// substitutes drafted spares into benched non-announcer slots, mutating
// group in place.
func (c *Coordinator) patchGroup(service wire.Service, round uint32, pos int, group []Mixer, plan *roundPlan) {
	alive := make([]bool, len(group))
	_ = fanOut(len(group), func(s int) error {
		alive[s] = probe(group[s])
		return nil
	})
	for s, m := range group {
		addr := addrOf(m)
		if addr == "" {
			continue
		}
		c.mu.Lock()
		sc := c.score(addr)
		sc.Position, sc.Shard = pos, s
		if alive[s] {
			if sc.Benched && round > sc.BenchedRound+benchCooldownRounds {
				sc.Benched = false
				sc.ConsecutiveFailures = 0
				sc.Readmissions++
				c.mu.Unlock()
				c.logf("scheduler: re-admitting %s (pos %d shard %d) after recovery", addr, pos, s)
				continue
			}
		} else if !sc.Benched {
			sc.Benched = true
			sc.BenchedRound = round
			c.mu.Unlock()
			c.logf("scheduler: benching %s (pos %d shard %d): probe failed at plan time", addr, pos, s)
			c.mu.Lock()
		}
		benched := sc.Benched
		c.mu.Unlock()
		if !benched {
			continue
		}
		if s == 0 {
			// The announcer cannot be substituted: clients pin ITS signing
			// key, so a spare's announcement would never verify. The round
			// runs (and likely fails) with it; the bench stands until it
			// recovers.
			c.logf("scheduler: pos %d announcer %s is benched but irreplaceable; proceeding", pos, addr)
			continue
		}
		if spare := c.draftSpare(pos, plan); spare != nil {
			c.logf("scheduler: drafting spare %s into pos %d shard %d (benched %s)", addrOf(spare), pos, s, addr)
			group[s] = spare
		} else {
			c.logf("scheduler: pos %d shard %d (%s) benched with no spare available; proceeding", pos, s, addr)
		}
	}
}

// draftSpare returns the first healthy, un-drafted spare for position
// pos, marking it drafted in plan, or nil when the pool is exhausted.
func (c *Coordinator) draftSpare(pos int, plan *roundPlan) Mixer {
	if pos >= len(c.Spares) {
		return nil
	}
	for _, spare := range c.Spares[pos] {
		addr := addrOf(spare)
		if addr == "" {
			continue
		}
		c.mu.Lock()
		inUse := c.draftedNow[addr] > 0
		if !inUse {
			for _, d := range plan.drafted {
				if d == addr {
					inUse = true
					break
				}
			}
		}
		c.mu.Unlock()
		if inUse || !probe(spare) {
			continue
		}
		c.mu.Lock()
		sc := c.score(addr)
		sc.Spare = true
		sc.Position = pos
		c.mu.Unlock()
		plan.drafted = append(plan.drafted, addr)
		return spare
	}
	return nil
}

// plan returns the stored plan for (service, round), or a trivial plan
// over the configured groups for drivers that close rounds this
// coordinator never opened.
func (c *Coordinator) planFor(service wire.Service, round uint32) *roundPlan {
	c.mu.Lock()
	p := c.plans[planKey{service, round}]
	c.mu.Unlock()
	if p != nil {
		return p
	}
	p = &roundPlan{chunkSize: c.baseChunk()}
	for i := range c.Mixers {
		p.groups = append(p.groups, c.shardGroup(i))
		p.leads = append(p.leads, 0)
		p.peers = append(p.peers, nil)
	}
	return p
}

// dropPlan forgets (service, round)'s plan and releases its drafted
// spares back to the pool.
func (c *Coordinator) dropPlan(service wire.Service, round uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.plans[planKey{service, round}]
	if !ok {
		return
	}
	delete(c.plans, planKey{service, round})
	for _, addr := range p.drafted {
		if c.draftedNow[addr] > 0 {
			c.draftedNow[addr]--
		}
	}
}
